// Benchmarks mapping one-to-one onto the paper's tables and figures (see
// DESIGN.md's per-experiment index). Each benchmark regenerates its
// figure at a reduced scale and reports headline values as custom
// metrics, so `go test -bench=.` doubles as a smoke reproduction. Full
// paper-scale reproduction is `gocast-experiments -scale paper` (see
// EXPERIMENTS.md for recorded results).
package gocast

import (
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"gocast/internal/core"
	"gocast/internal/experiments"
	"gocast/internal/fec"
	"gocast/internal/netsim"
	"gocast/internal/obs"
	"gocast/internal/store"
	"gocast/internal/wire"
)

// benchScale is deliberately small: benchmarks must terminate quickly.
func benchScale() experiments.Scale {
	return experiments.Scale{
		Nodes:    128,
		Warmup:   80 * time.Second,
		Messages: 30,
		Rate:     100,
		Drain:    30 * time.Second,
		Seed:     1,
	}
}

func reportSeconds(b *testing.B, name, cell string) {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "s"), 64)
	if err != nil {
		b.Fatalf("bad cell %q: %v", cell, err)
	}
	b.ReportMetric(v, name)
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Figure1(1024, 20)
		if len(rep.Rows) != 20 {
			b.Fatal("figure 1 incomplete")
		}
	}
}

func BenchmarkFigure3a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Figure3(benchScale(), 0)
		reportSeconds(b, "gocast-p99-s", rep.Rows[0][4])
		reportSeconds(b, "gossip-p99-s", rep.Rows[3][4])
	}
}

func BenchmarkFigure3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Figure3(benchScale(), 0.20)
		reportSeconds(b, "gocast-p99-s", rep.Rows[0][4])
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		small := benchScale()
		large := small
		large.Nodes = small.Nodes * 4
		rep := experiments.Figure4(small, large, 0.20)
		reportSeconds(b, "small-max-s", rep.Rows[0][5])
		reportSeconds(b, "large-max-s", rep.Rows[2][5])
	}
}

// BenchmarkFigure4Sharded is BenchmarkFigure4 on the sharded engine at 8
// shards. Results are identical to the sequential run by construction —
// the small-max-s/large-max-s metrics must match BenchmarkFigure4's in
// any snapshot — so the only number this adds is wall clock, which on a
// multi-core runner should be a multiple below the sequential benchmark.
func BenchmarkFigure4Sharded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		small := benchScale()
		small.Shards = 8
		large := small
		large.Nodes = small.Nodes * 4
		rep := experiments.Figure4(small, large, 0.20)
		reportSeconds(b, "small-max-s", rep.Rows[0][5])
		reportSeconds(b, "large-max-s", rep.Rows[2][5])
	}
}

// BenchmarkScale100k pushes one 100,000-node point through the sharded
// engine — two orders of magnitude past the paper's 1,024-node tables
// and the size the sequential engine cannot turn around interactively.
// The horizon is deliberately short: the benchmark prices cost-per-event
// at size, not protocol quality over time.
func BenchmarkScale100k(b *testing.B) {
	if testing.Short() {
		b.Skip("100k-node point takes minutes per core")
	}
	for i := 0; i < b.N; i++ {
		sc := experiments.Scale{
			Warmup:   10 * time.Second,
			Messages: 3,
			Rate:     1,
			Drain:    10 * time.Second,
			Seed:     1,
			Shards:   runtime.NumCPU(),
		}
		rep := experiments.ScaleSweep(sc, []int{100_000})
		events, _ := strconv.ParseFloat(rep.Rows[0][3], 64)
		delivered, _ := strconv.ParseFloat(rep.Rows[0][7], 64)
		if delivered <= 0 {
			b.Fatal("no deliveries at 100k nodes")
		}
		b.ReportMetric(events/b.Elapsed().Seconds()/1e6, "Mev/s")
		b.ReportMetric(delivered, "delivered")
	}
}

func BenchmarkFigure5a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Figure5a(benchScale())
		frac, _ := strconv.ParseFloat(strings.TrimSuffix(rep.Rows[2][1], "%"), 64)
		b.ReportMetric(frac, "deg6-pct")
	}
}

func BenchmarkFigure5b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Figure5b(benchScale(), 80*time.Second, 20*time.Second)
		reportSeconds(b, "tree-link-s", rep.Rows[len(rep.Rows)-1][2])
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Figure6(benchScale(), []float64{0.25}, []int{0, 1})
		q1, _ := strconv.ParseFloat(rep.Rows[0][2], 64)
		b.ReportMetric(q1, "q-crand1")
	}
}

func BenchmarkGossipHearCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := benchScale()
		sc.Nodes = 256
		rep := experiments.HearCounts(sc, 5)
		max, _ := strconv.ParseFloat(rep.Rows[2][1], 64)
		b.ReportMetric(max, "max-hears")
	}
}

func BenchmarkRedundancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Redundancy(benchScale(), nil)
		dup, _ := strconv.ParseFloat(rep.Rows[0][2], 64)
		b.ReportMetric(dup, "p-dup-f0")
	}
}

func BenchmarkLinkChanges(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.LinkChanges(benchScale(), 60*time.Second, 10*time.Second)
		if len(rep.Rows) == 0 {
			b.Fatal("no link change data")
		}
	}
}

func BenchmarkRandomLinkSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := benchScale()
		sc.Warmup = 60 * time.Second
		rep := experiments.RandomLinkSweep(sc)
		if len(rep.Rows) != 6 {
			b.Fatal("sweep incomplete")
		}
	}
}

func BenchmarkDiameter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Diameter([]int{64, 128, 256}, 60*time.Second, 1)
		d, _ := strconv.Atoi(rep.Rows[len(rep.Rows)-1][1])
		b.ReportMetric(float64(d), "diameter-256")
	}
}

func BenchmarkLinkStress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// The stress factor needs a converged proximity overlay and a
		// non-trivial underlay to be meaningful; below this scale the
		// measurement is noise.
		sc := benchScale()
		sc.Nodes = 256
		sc.Warmup = 150 * time.Second
		sc.Messages = 60
		rep := experiments.LinkStress(sc, 128, 1000)
		gc, _ := strconv.ParseFloat(rep.Rows[0][1], 64)
		pg, _ := strconv.ParseFloat(rep.Rows[1][1], 64)
		if gc > 0 {
			b.ReportMetric(pg/gc, "stress-factor")
		}
	}
}

func BenchmarkFanoutSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := benchScale()
		sc.Nodes = 256
		rep := experiments.FanoutSweep(sc, []int{5, 9, 15})
		reportSeconds(b, "f5-mean-s", rep.Rows[0][1])
		reportSeconds(b, "f15-mean-s", rep.Rows[2][1])
	}
}

func BenchmarkAblateC1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := benchScale()
		sc.Warmup = 60 * time.Second
		rep := experiments.AblateC1(sc)
		reportSeconds(b, "paper-latency-s", rep.Rows[0][1])
		reportSeconds(b, "strict-latency-s", rep.Rows[1][1])
	}
}

func BenchmarkAblateDropTrigger(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := benchScale()
		sc.Warmup = 60 * time.Second
		rep := experiments.AblateDropTrigger(sc)
		churn, _ := strconv.ParseFloat(rep.Rows[1][1], 64)
		base, _ := strconv.ParseFloat(rep.Rows[0][1], 64)
		if base > 0 {
			b.ReportMetric(churn/base, "churn-ratio")
		}
	}
}

func BenchmarkAblateC4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := benchScale()
		sc.Warmup = 60 * time.Second
		rep := experiments.AblateC4(sc)
		if len(rep.Rows) != 2 {
			b.Fatal("ablation incomplete")
		}
	}
}

// BenchmarkStoreHotPath10k exercises the message store's full lifecycle
// at 10,000 messages per iteration: insert across 16 sources, point
// lookups, stabilization, and a GC sweep that reclaims everything.
func BenchmarkStoreHotPath10k(b *testing.B) {
	const msgs = 10_000
	payload := make([]byte, 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := store.NewMemory(store.Limits{
			MaxMessages: msgs,
			MaxBytes:    int64(msgs * len(payload)),
			Retention:   time.Second,
		})
		for k := 0; k < msgs; k++ {
			id := store.ID{Source: int32(k % 16), Seq: uint32(k / 16)}
			if !m.Put(id, payload, 0) {
				b.Fatal("duplicate put")
			}
		}
		for k := 0; k < msgs; k++ {
			id := store.ID{Source: int32(k % 16), Seq: uint32(k / 16)}
			if _, ok := m.Get(id); !ok {
				b.Fatal("lookup miss")
			}
			m.MarkStable(id, 0)
		}
		if res := m.GC(2 * time.Second); len(res.Reclaimed) != msgs {
			b.Fatalf("GC reclaimed %d, want %d", len(res.Reclaimed), msgs)
		}
	}
	b.ReportMetric(float64(3*msgs)*float64(b.N)/b.Elapsed().Seconds(), "ops/s")
}

// BenchmarkSyncDigestEncodeDecode round-trips a 256-source watermark
// digest through the wire codec — the fixed per-exchange cost of the
// anti-entropy sync protocol.
func BenchmarkSyncDigestEncodeDecode(b *testing.B) {
	req := &core.SyncRequest{}
	for s := 0; s < 256; s++ {
		req.Ranges = append(req.Ranges, store.SourceRange{
			Source: int32(s), Low: uint32(s * 7), High: uint32(s*7 + 1000),
		})
	}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = wire.Append(buf[:0], 1, req)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := wire.Decode(buf[4:]); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkFECEncode64K pins the coopcast coder's encode path: a 64 KiB
// payload split into 64 source symbols of 1 KiB plus 4 GF(256)
// Reed-Solomon repair symbols.
func BenchmarkFECEncode64K(b *testing.B) {
	p := fec.ParamsFor(64<<10, 1024, 4)
	coder, err := fec.NewRS(p)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coder.Encode(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFECDecode64K pins reconstruction in the worst realistic case:
// all 4 repair symbols in use (4 source symbols lost), forcing a full
// Gauss-Jordan elimination.
func BenchmarkFECDecode64K(b *testing.B) {
	p := fec.ParamsFor(64<<10, 1024, 4)
	coder, err := fec.NewRS(p)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	full, err := coder.Encode(payload)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		syms := make([][]byte, p.N())
		copy(syms, full)
		for j := 0; j < p.R; j++ {
			syms[j*3] = nil
		}
		if err := coder.Reconstruct(syms); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoopcastBulk64K is the end-to-end bulk-dissemination path on
// the simulator: one 64 KiB payload to a 32-node cluster as erasure-coded
// symbols — tree striping, gossip symbol adverts, per-symbol pulls, and
// 31 reassemblies per iteration.
func BenchmarkCoopcastBulk64K(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.CoopcastThreshold = 8 << 10
	cfg.FECSymbolSize = 1024
	cfg.FECRepair = 4
	payload := make([]byte, 64<<10)
	b.SetBytes(int64(len(payload)))
	for i := 0; i < b.N; i++ {
		c := netsim.New(netsim.Options{Nodes: 32, Seed: int64(i + 1), Config: cfg})
		c.BootstrapMembership(cfg.MemberViewSize / 2)
		c.WireRandom(cfg.TargetDegree() / 2)
		c.Start(0)
		c.Run(60 * time.Second)
		c.Inject(0, payload)
		c.Run(time.Minute)
		if got := c.ReceiveCounts()[0]; got != 32 {
			b.Fatalf("delivered to %d/32 nodes", got)
		}
		if s := c.SumCounters(); s.FECDecodes != 31 {
			b.Fatalf("FECDecodes = %d, want 31", s.FECDecodes)
		}
	}
}

// BenchmarkObsCounterInc pins the metrics-registry hot path: bumping a
// pre-looked-up counter from protocol code must stay at 0 allocs/op and a
// few ns, or instrumentation would pressure the GC on every forwarded
// message. The ResetTimer matters under bench.sh's -benchtime=1x: without
// it, b.N=1 bills the registry construction and first-use registration
// (~12 µs, 5 allocs) to the single timed op — the 2026-08-06 snapshot
// recorded exactly that harness artifact, not a hot-path regression.
func BenchmarkObsCounterInc(b *testing.B) {
	reg := obs.NewRegistry()
	c := reg.Counter("gocast_bench_events_total", "benchmark counter")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	b.StopTimer()
	if c.Value() != int64(b.N) {
		b.Fatalf("counter = %d, want %d", c.Value(), b.N)
	}
}

// BenchmarkObsCounterLookup pins the cost deliberately NOT paid per
// event: re-resolving a handle through Registry.lookup (mutex + map hit)
// on every bump. It exists to keep the cached-handle discipline honest —
// if instrumented code ever regresses to looking up by name in a loop,
// this is the per-op price it would pay.
func BenchmarkObsCounterLookup(b *testing.B) {
	reg := obs.NewRegistry()
	reg.Counter("gocast_bench_events_total", "benchmark counter")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.Counter("gocast_bench_events_total", "benchmark counter").Inc()
	}
}

// BenchmarkObsHistogramObserve pins the latency-histogram hot path
// (bucket search + atomic count and sum updates) at 0 allocs/op. See
// BenchmarkObsCounterInc for why the ResetTimer is load-bearing.
func BenchmarkObsHistogramObserve(b *testing.B) {
	reg := obs.NewRegistry()
	h := reg.Histogram("gocast_bench_latency_seconds", "benchmark histogram", obs.DefLatencyBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%1000) * 0.0001)
	}
	b.StopTimer()
	if h.Snapshot().Count != int64(b.N) {
		b.Fatal("histogram lost observations")
	}
}

// BenchmarkSimulationThroughput measures raw simulator speed: simulated
// protocol seconds per wall second at 256 nodes.
func BenchmarkSimulationThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := RunSimulation(SimOptions{Nodes: 256, Warmup: 60 * time.Second, Messages: 20, Seed: int64(i + 1)})
		if res.DeliveryRatio < 1 {
			b.Fatalf("delivery ratio %v", res.DeliveryRatio)
		}
	}
}
