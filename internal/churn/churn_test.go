package churn

import (
	"math"
	"testing"
	"time"
)

func TestScheduleDeterministic(t *testing.T) {
	p := Plan{Seed: 42, Duration: 30 * time.Minute, JoinPerMin: 1.5, LeavePerMin: 1.5, CrashPerMin: 2, RestartPerMin: 2}
	a, b := p.Schedule(), p.Schedule()
	if len(a) == 0 {
		t.Fatalf("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	q := p
	q.Seed = 43
	c := q.Schedule()
	same := len(a) == len(c)
	for i := 0; same && i < len(a); i++ {
		same = a[i] == c[i]
	}
	if same {
		t.Fatalf("different seeds produced identical schedules")
	}
}

func TestScheduleSortedAndBounded(t *testing.T) {
	p := Plan{Seed: 7, Duration: 10 * time.Minute, JoinPerMin: 3, CrashPerMin: 3}
	ev := p.Schedule()
	for i := 1; i < len(ev); i++ {
		if ev[i].At < ev[i-1].At {
			t.Fatalf("schedule not sorted at %d: %v after %v", i, ev[i], ev[i-1])
		}
	}
	for _, e := range ev {
		if e.At <= 0 || e.At >= p.Duration {
			t.Fatalf("event outside horizon: %v", e)
		}
		if e.Kind != Join && e.Kind != Crash {
			t.Fatalf("unexpected kind %v (rate zero)", e.Kind)
		}
	}
}

func TestScheduleApproximatesRates(t *testing.T) {
	p := Plan{Seed: 11, Duration: 8 * time.Hour, LeavePerMin: 2, RestartPerMin: 4}
	counts := map[Kind]int{}
	for _, e := range p.Schedule() {
		counts[e.Kind]++
	}
	mins := p.Duration.Minutes()
	for kind, rate := range map[Kind]float64{Leave: 2, Restart: 4} {
		got := float64(counts[kind]) / mins
		if math.Abs(got-rate)/rate > 0.15 {
			t.Fatalf("%v rate = %.2f/min over %v, want ~%.1f", kind, got, p.Duration, rate)
		}
	}
}

func TestRateIndependence(t *testing.T) {
	// Changing one kind's rate must not reshuffle another kind's arrivals.
	base := Plan{Seed: 5, Duration: time.Hour, CrashPerMin: 1, JoinPerMin: 1}
	crashes := func(p Plan) []Event {
		var out []Event
		for _, e := range p.Schedule() {
			if e.Kind == Crash {
				out = append(out, e)
			}
		}
		return out
	}
	a := crashes(base)
	mod := base
	mod.JoinPerMin = 10
	b := crashes(mod)
	if len(a) != len(b) {
		t.Fatalf("crash stream changed length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("crash stream reshuffled at %d", i)
		}
	}
}

func TestEventsPerMinute(t *testing.T) {
	p := Plan{JoinPerMin: 1, LeavePerMin: 2, CrashPerMin: 3, RestartPerMin: 4}
	if got := p.EventsPerMinute(); got != 10 {
		t.Fatalf("EventsPerMinute = %v, want 10", got)
	}
}
