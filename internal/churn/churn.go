// Package churn generates seeded, Poisson-scheduled membership churn
// plans: streams of join/leave/crash/restart events with exponential
// inter-arrival times. A Plan is declarative (mirroring the live fault
// layer's FaultPlan style) and substrate-agnostic — the same schedule
// drives the discrete-event simulator (internal/netsim) in virtual time
// and the live runtime (internal/live) in wall-clock time, so churn
// experiments are reproducible across both.
package churn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Kind enumerates churn event types.
type Kind uint8

const (
	// Join adds a brand-new node to the group.
	Join Kind = iota + 1
	// Leave makes a random node depart gracefully (obituary spreads).
	Leave
	// Crash kills a random node without warning.
	Crash
	// Restart revives a previously crashed or departed node under a
	// bumped incarnation.
	Restart
)

func (k Kind) String() string {
	switch k {
	case Join:
		return "join"
	case Leave:
		return "leave"
	case Crash:
		return "crash"
	case Restart:
		return "restart"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one scheduled churn action. The target node is chosen by the
// executor at fire time (only it knows which nodes are then eligible).
type Event struct {
	At   time.Duration
	Kind Kind
}

// Plan declares a churn workload: independent Poisson processes per event
// kind, all derived deterministically from Seed.
type Plan struct {
	// Seed makes the schedule (and the executors' target choices)
	// reproducible.
	Seed int64
	// Duration is the horizon over which events are generated.
	Duration time.Duration
	// Rates are expected events per minute for each kind; zero disables
	// the kind.
	JoinPerMin    float64
	LeavePerMin   float64
	CrashPerMin   float64
	RestartPerMin float64
}

// EventsPerMinute returns the plan's total expected event rate.
func (p Plan) EventsPerMinute() float64 {
	return p.JoinPerMin + p.LeavePerMin + p.CrashPerMin + p.RestartPerMin
}

// Schedule expands the plan into a deterministic, time-sorted event list.
// Each kind is an independent Poisson process (exponential inter-arrival
// times) with its own seed-derived stream, so changing one rate does not
// reshuffle the other kinds' arrival times.
func (p Plan) Schedule() []Event {
	var events []Event
	kinds := []struct {
		kind Kind
		rate float64
	}{
		{Join, p.JoinPerMin},
		{Leave, p.LeavePerMin},
		{Crash, p.CrashPerMin},
		{Restart, p.RestartPerMin},
	}
	for _, k := range kinds {
		if k.rate <= 0 || p.Duration <= 0 {
			continue
		}
		rng := rand.New(rand.NewSource(p.Seed ^ int64(k.kind)*0x5851f42d4c957f2d))
		mean := time.Duration(float64(time.Minute) / k.rate)
		for t := expDelay(rng, mean); t < p.Duration; t += expDelay(rng, mean) {
			events = append(events, Event{At: t, Kind: k.kind})
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		return events[i].Kind < events[j].Kind
	})
	return events
}

// expDelay draws an exponentially distributed delay with the given mean.
func expDelay(rng *rand.Rand, mean time.Duration) time.Duration {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	d := time.Duration(-math.Log(u) * float64(mean))
	if d <= 0 {
		d = 1
	}
	return d
}
