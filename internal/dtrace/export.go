package dtrace

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// MarshalJSON-friendly export of stitched traces is just json.Marshal on
// []*MessageTrace; this file adds the Chrome trace-event exporter.

// chromeEvent is one entry in Chrome's trace-event JSON format
// (chrome://tracing, Perfetto). Timestamps and durations are in
// microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int64          `json:"pid"`
	TID  int64          `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace writes the traces in Chrome trace-event format: one
// "process" per message (named msg src/seq), one "thread" per node, one
// complete event per span. Load the output in chrome://tracing or
// ui.perfetto.dev.
func WriteChromeTrace(w io.Writer, traces []*MessageTrace, spans []Span) error {
	f := chromeFile{TraceEvents: []chromeEvent{}}
	for i, t := range traces {
		pid := int64(i + 1)
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": formatMsg(t.Src, t.Seq)},
		})
		for _, s := range spans {
			if s.Src != t.Src || s.Seq != t.Seq {
				continue
			}
			ev := chromeEvent{
				Name: s.Kind.String(),
				Ph:   "X",
				PID:  pid,
				TID:  int64(s.Node),
				TS:   float64(s.Start) / float64(time.Microsecond),
				Dur:  float64(s.End-s.Start) / float64(time.Microsecond),
				Args: map[string]any{
					"from": s.From,
					"hops": s.Hops,
					"age":  s.Age.String(),
				},
			}
			if ev.Dur <= 0 {
				// Chrome hides zero-width slices; give point events a
				// visible 1µs footprint.
				ev.Dur = 1
			}
			if s.Aux != 0 {
				ev.Args["aux"] = s.Aux
			}
			f.TraceEvents = append(f.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// formatMsg renders a message ID as src/seq, the form /tracez?msg= and
// gocast-trace -msg accept.
func formatMsg(src int32, seq uint32) string {
	return strconv.FormatInt(int64(src), 10) + "/" + strconv.FormatUint(uint64(seq), 10)
}

// ParseMsg parses a src/seq message selector as produced by formatMsg.
func ParseMsg(s string) (src int32, seq uint32, err error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return 0, 0, fmt.Errorf("dtrace: message selector %q: want src/seq", s)
	}
	srcV, err := strconv.ParseInt(s[:slash], 10, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("dtrace: message selector %q: bad source: %v", s, err)
	}
	seqV, err := strconv.ParseUint(s[slash+1:], 10, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("dtrace: message selector %q: bad sequence: %v", s, err)
	}
	return int32(srcV), uint32(seqV), nil
}
