package dtrace

import (
	"fmt"
	"strings"
	"time"
)

// Render formats the trace as an ASCII dissemination tree, one line per
// delivery, with the latency attribution inline:
//
//	msg 0/12 deliveries=5 (tree=3 pull=1 sync=1) max_hops=3
//	└─ node 0 inject
//	   ├─ node 1 tree hops=1 age=12ms
//	   │  └─ node 4 pull hops=2 age=87ms wait=40ms rtt=21ms attempts=1
//	   └─ node 2 tree hops=1 age=13ms
func (t *MessageTrace) Render() string {
	var b strings.Builder
	tree, pull, sync, fec := t.Counts()
	fmt.Fprintf(&b, "msg %d/%d deliveries=%d (", t.Src, t.Seq, len(t.Deliveries))
	parts := []string{}
	for _, kv := range []struct {
		k string
		v int
	}{{"tree", tree}, {"pull", pull}, {"sync", sync}, {"fec", fec}} {
		if kv.v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", kv.k, kv.v))
		}
	}
	fmt.Fprintf(&b, "%s) max_hops=%d\n", strings.Join(parts, " "), t.MaxHops())

	if t.Root != nil {
		renderNode(&b, t.Root, "", "└─ ", "   ")
	}
	if len(t.Orphans) > 0 {
		fmt.Fprintf(&b, "orphans (sender's delivery not in trace):\n")
		for _, d := range t.Orphans {
			fmt.Fprintf(&b, "  %s (from %d)\n", deliveryLine(d), d.From)
		}
	}
	return b.String()
}

// renderNode emits one delivery line and recurses into its children.
func renderNode(b *strings.Builder, d *Delivery, prefix, branch, cont string) {
	fmt.Fprintf(b, "%s%s%s\n", prefix, branch, deliveryLine(d))
	for i, c := range d.Children {
		if i == len(d.Children)-1 {
			renderNode(b, c, prefix+cont, "└─ ", "   ")
		} else {
			renderNode(b, c, prefix+cont, "├─ ", "│  ")
		}
	}
}

// deliveryLine formats one delivery's attribution.
func deliveryLine(d *Delivery) string {
	var b strings.Builder
	fmt.Fprintf(&b, "node %d %s", d.Node, d.Via)
	if d.Via != "inject" {
		fmt.Fprintf(&b, " hops=%d age=%s", d.Hops, rdur(d.Age))
	}
	if d.Via == "pull" {
		fmt.Fprintf(&b, " wait=%s rtt=%s attempts=%d", rdur(d.Wait), rdur(d.RTT), d.Attempts)
	}
	if d.Via == "fec" {
		fmt.Fprintf(&b, " symbols=%d assembly=%s", d.Symbols, rdur(d.Assembly))
	}
	return b.String()
}

// rdur rounds durations for display without losing sub-millisecond
// latencies.
func rdur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.String()
	}
}
