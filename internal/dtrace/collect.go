package dtrace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Collect fetches every node's span buffer from its admin endpoint
// (GET <addr>/spans, served by obs.NewAdminHandler) and merges them for
// stitching. Addresses may be bare host:port or http:// URLs. Nodes
// that fail to answer are skipped; their failures come back joined in
// err alongside whatever spans were gathered, so a partial trace is
// still renderable.
func Collect(addrs []string, timeout time.Duration) ([]Span, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	client := &http.Client{Timeout: timeout}
	var spans []Span
	var errs []error
	for _, addr := range addrs {
		url := addr
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		url = strings.TrimSuffix(url, "/") + "/spans"
		got, err := fetchSpans(client, url)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", addr, err))
			continue
		}
		spans = append(spans, got...)
	}
	return spans, errors.Join(errs...)
}

// fetchSpans GETs one /spans endpoint and decodes its JSON array.
func fetchSpans(client *http.Client, url string) ([]Span, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return nil, fmt.Errorf("status %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var spans []Span
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		return nil, err
	}
	return spans, nil
}
