package dtrace

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestBufferRingEvictsOldest(t *testing.T) {
	b := NewBuffer(4)
	for i := 0; i < 6; i++ {
		b.Record(Span{Seq: uint32(i)})
	}
	if got := b.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := b.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	snap := b.Snapshot()
	for i, s := range snap {
		if want := uint32(i + 2); s.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d (oldest evicted, record order kept)", i, s.Seq, want)
		}
	}
}

func TestBufferDefaultsAndPartialSnapshot(t *testing.T) {
	b := NewBuffer(0)
	if b.Len() != 0 || b.Dropped() != 0 {
		t.Fatalf("fresh buffer not empty")
	}
	b.Record(Span{Seq: 9})
	snap := b.Snapshot()
	if len(snap) != 1 || snap[0].Seq != 9 {
		t.Fatalf("partial snapshot = %+v", snap)
	}
	// The snapshot is a copy, not a view.
	snap[0].Seq = 1
	if b.Snapshot()[0].Seq != 9 {
		t.Fatalf("snapshot aliases the ring")
	}
}

// sampleSpans builds a known dissemination: node 0 injects, 1 and 2 get
// tree pushes, 3 hears an advert from 2 and pulls, 4 syncs from 1.
func sampleSpans() []Span {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return []Span{
		{Src: 0, Seq: 7, Node: 0, From: -1, Kind: KindInject, Start: ms(0), End: ms(0)},
		{Src: 0, Seq: 7, Node: 1, From: 0, Kind: KindTreeDeliver, Hops: 1, Start: ms(10), End: ms(10), Age: ms(10)},
		{Src: 0, Seq: 7, Node: 2, From: 0, Kind: KindTreeDeliver, Hops: 1, Start: ms(12), End: ms(12), Age: ms(12)},
		{Src: 0, Seq: 7, Node: 3, From: 2, Kind: KindAdvert, Start: ms(40), End: ms(40), Age: ms(40)},
		{Src: 0, Seq: 7, Node: 3, From: 2, Kind: KindPull, Start: ms(40), End: ms(55), Aux: 1},
		{Src: 0, Seq: 7, Node: 3, From: 2, Kind: KindPullDeliver, Hops: 2, Start: ms(55), End: ms(70), Age: ms(70)},
		{Src: 0, Seq: 7, Node: 4, From: 1, Kind: KindSyncDeliver, Hops: 2, Start: ms(200), End: ms(200), Age: ms(200)},
	}
}

func TestStitchAttributesPaths(t *testing.T) {
	traces := Stitch(sampleSpans())
	if len(traces) != 1 {
		t.Fatalf("stitched %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Src != 0 || tr.Seq != 7 {
		t.Fatalf("trace identity = %d/%d", tr.Src, tr.Seq)
	}
	if tr.Root == nil || tr.Root.Node != 0 || tr.Root.Via != "inject" {
		t.Fatalf("root = %+v", tr.Root)
	}
	if len(tr.Orphans) != 0 {
		t.Fatalf("orphans = %+v", tr.Orphans)
	}
	tree, pull, sync, fec := tr.Counts()
	if tree != 2 || pull != 1 || sync != 1 || fec != 0 {
		t.Fatalf("counts tree=%d pull=%d sync=%d fec=%d", tree, pull, sync, fec)
	}
	if got := tr.MaxHops(); got != 2 {
		t.Fatalf("MaxHops = %d, want 2", got)
	}
	byNode := map[int32]*Delivery{}
	for _, d := range tr.Deliveries {
		byNode[d.Node] = d
	}
	p := byNode[3]
	if p.Via != "pull" || p.From != 2 {
		t.Fatalf("node 3 delivery = %+v", p)
	}
	if p.Wait != 15*time.Millisecond {
		t.Fatalf("pull wait = %v, want 15ms (advert at 40ms, request at 55ms)", p.Wait)
	}
	if p.RTT != 15*time.Millisecond {
		t.Fatalf("pull rtt = %v, want 15ms (request at 55ms, reply at 70ms)", p.RTT)
	}
	if p.Attempts != 1 {
		t.Fatalf("pull attempts = %d", p.Attempts)
	}
	// Tree structure: 1 and 2 hang off 0; 3 off 2; 4 off 1.
	if len(tr.Root.Children) != 2 {
		t.Fatalf("root children = %d", len(tr.Root.Children))
	}
	if len(byNode[2].Children) != 1 || byNode[2].Children[0].Node != 3 {
		t.Fatalf("node 2 children = %+v", byNode[2].Children)
	}
	if len(byNode[1].Children) != 1 || byNode[1].Children[0].Node != 4 {
		t.Fatalf("node 1 children = %+v", byNode[1].Children)
	}
}

func TestStitchOrderIndependent(t *testing.T) {
	base := sampleSpans()
	want, err := json.Marshal(Stitch(base))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]Span(nil), base...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got, _ := json.Marshal(Stitch(shuffled))
		if !bytes.Equal(got, want) {
			t.Fatalf("stitch depends on span order:\n%s\n--\n%s", got, want)
		}
	}
}

func TestStitchOrphansMissingSender(t *testing.T) {
	// Node 5 delivered from node 9, but node 9's spans are absent (evicted
	// or unscraped): 5 must surface as an orphan, not vanish.
	spans := append(sampleSpans(), Span{
		Src: 0, Seq: 7, Node: 5, From: 9, Kind: KindTreeDeliver, Hops: 3,
		Start: 80 * time.Millisecond, End: 80 * time.Millisecond, Age: 80 * time.Millisecond,
	})
	tr := Stitch(spans)[0]
	if len(tr.Orphans) != 1 || tr.Orphans[0].Node != 5 {
		t.Fatalf("orphans = %+v", tr.Orphans)
	}
	out := tr.Render()
	if !strings.Contains(out, "orphans") || !strings.Contains(out, "node 5") {
		t.Fatalf("render hides the orphan:\n%s", out)
	}
}

func TestStitchMultipleMessagesSorted(t *testing.T) {
	spans := []Span{
		{Src: 3, Seq: 1, Node: 3, From: -1, Kind: KindInject},
		{Src: 0, Seq: 2, Node: 0, From: -1, Kind: KindInject},
		{Src: 0, Seq: 1, Node: 0, From: -1, Kind: KindInject},
	}
	traces := Stitch(spans)
	if len(traces) != 3 {
		t.Fatalf("stitched %d traces, want 3", len(traces))
	}
	order := [][2]uint32{{0, 1}, {0, 2}, {3, 1}}
	for i, want := range order {
		if uint32(traces[i].Src) != want[0] || traces[i].Seq != want[1] {
			t.Fatalf("traces[%d] = %d/%d, want %d/%d", i, traces[i].Src, traces[i].Seq, want[0], want[1])
		}
	}
	if Find(traces, 3, 1) != traces[2] || Find(traces, 9, 9) != nil {
		t.Fatalf("Find misbehaves")
	}
}

func TestRenderShape(t *testing.T) {
	out := Stitch(sampleSpans())[0].Render()
	for _, want := range []string{
		"msg 0/7 deliveries=5 (tree=2 pull=1 sync=1) max_hops=2",
		"node 0 inject",
		"├─", "└─",
		"node 3 pull hops=2 age=70ms wait=15ms rtt=15ms attempts=1",
		"node 4 sync hops=2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render lacks %q:\n%s", want, out)
		}
	}
}

func TestParseMsgRoundTrip(t *testing.T) {
	src, seq, err := ParseMsg(formatMsg(-2, 4100000000))
	if err != nil || src != -2 || seq != 4100000000 {
		t.Fatalf("round trip = %d/%d, %v", src, seq, err)
	}
	for _, bad := range []string{"", "12", "a/1", "1/b", "1/-2", "99999999999/1"} {
		if _, _, err := ParseMsg(bad); err == nil {
			t.Errorf("ParseMsg(%q) accepted", bad)
		}
	}
}

func TestChromeTraceWellFormed(t *testing.T) {
	spans := sampleSpans()
	traces := Stitch(spans)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, traces, spans); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	// One metadata event plus one per span.
	if want := 1 + len(spans); len(f.TraceEvents) != want {
		t.Fatalf("%d trace events, want %d", len(f.TraceEvents), want)
	}
	if name := f.TraceEvents[0]["name"]; name != "process_name" {
		t.Fatalf("first event = %v, want process_name metadata", name)
	}
	for _, ev := range f.TraceEvents[1:] {
		if ev["ph"] != "X" {
			t.Fatalf("span event phase = %v, want X (complete)", ev["ph"])
		}
		if dur, ok := ev["dur"].(float64); !ok || dur <= 0 {
			t.Fatalf("span event without visible duration: %v", ev)
		}
	}
}
