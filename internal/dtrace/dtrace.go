// Package dtrace is GoCast's causal dissemination tracer: sampled,
// per-message delivery-path reconstruction across nodes.
//
// Sampled multicasts carry a small hop context on the wire (sampled bit,
// hop count, origin stamp). Every node the message touches records typed
// Spans — inject, tree delivery, gossip advert, pull request, pull
// delivery, sync catch-up, FEC symbol receipt, reassembly — into a
// bounded Buffer. A stitcher (Stitch) collects spans from all nodes and
// reconstructs each message's dissemination tree with per-delivery
// latency attribution: did this node get the message by tree push, by a
// gossip pull after loss, by anti-entropy sync, or by FEC reassembly,
// and where did the time go.
//
// The package is dependency-free (standard library only) so internal/core
// can emit Spans without importing the observability stack. Span is a
// small value type; recording one is a struct copy under a mutex, no
// allocation.
package dtrace

import (
	"fmt"
	"sync"
	"time"
)

// Kind is the type of one span. Delivery kinds (Inject, TreeDeliver,
// PullDeliver, SyncDeliver, Reassembly) mark the message landing on a
// node; the rest are waypoints attributed to the node's delivery.
type Kind uint8

// Span kinds.
const (
	// KindInject marks the origin: the application published the message
	// on this node. Point event.
	KindInject Kind = iota + 1
	// KindTreeDeliver marks a delivery via tree push. Point event at
	// receipt; Hops is the tree depth the message traveled.
	KindTreeDeliver
	// KindPullDeliver marks a delivery via a gossip pull reply.
	// Start is when the pull request was sent, End is receipt, so
	// End-Start is the pull RTT.
	KindPullDeliver
	// KindSyncDeliver marks a delivery via anti-entropy sync catch-up.
	// Point event at receipt.
	KindSyncDeliver
	// KindAdvert marks the node first hearing of the message in a gossip
	// digest. Point event; From is the advertising peer.
	KindAdvert
	// KindPull marks a pull request leaving the node. Start is when the
	// node learned of the message (advert time), End is the request send,
	// so End-Start is the deliberate pull wait; Aux is the attempt number
	// (1-based).
	KindPull
	// KindSymbolTree marks an FEC symbol arriving via tree push; Aux is
	// the symbol index.
	KindSymbolTree
	// KindSymbolPull marks an FEC symbol arriving via gossip pull or
	// sync; Aux is the symbol index.
	KindSymbolPull
	// KindReassembly marks an FEC decode completing: the coopcast message
	// is delivered. Start is first-symbol receipt, End is decode, Aux is
	// the number of symbols held at decode.
	KindReassembly
)

func (k Kind) String() string {
	switch k {
	case KindInject:
		return "inject"
	case KindTreeDeliver:
		return "tree-deliver"
	case KindPullDeliver:
		return "pull-deliver"
	case KindSyncDeliver:
		return "sync-deliver"
	case KindAdvert:
		return "advert"
	case KindPull:
		return "pull-req"
	case KindSymbolTree:
		return "symbol-tree"
	case KindSymbolPull:
		return "symbol-pull"
	case KindReassembly:
		return "reassembly"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// DeliveryKind reports whether k marks the message landing on a node.
func (k Kind) DeliveryKind() bool {
	switch k {
	case KindInject, KindTreeDeliver, KindPullDeliver, KindSyncDeliver, KindReassembly:
		return true
	}
	return false
}

// Span is one typed trace event recorded by one node for one sampled
// message. It is a flat value type: recording and snapshotting copy it,
// never point into protocol state.
//
// Start/End are the recording node's own clock (netsim: globally
// comparable virtual time; live: per-node monotonic time, NOT comparable
// across nodes — Age is the skew-free latency signal there). Point
// events have Start == End.
type Span struct {
	// Src and Seq identify the message (MessageID fields).
	Src int32  `json:"src"`
	Seq uint32 `json:"seq"`
	// Node recorded the span; From is the peer whose message triggered
	// it (-1 for local events like inject).
	Node int32 `json:"node"`
	From int32 `json:"from"`
	Kind Kind  `json:"kind"`
	// Hops is the hop count carried in the triggering message's hop
	// context (0 at the origin).
	Hops uint8 `json:"hops"`
	// Start and End bracket the span on the recording node's clock.
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`
	// Age is the protocol's skew-free age estimate for the message at
	// the event.
	Age time.Duration `json:"age"`
	// Aux is kind-specific: pull attempt number, symbol index, symbol
	// count at decode.
	Aux int64 `json:"aux,omitempty"`
}

// Buffer is a bounded ring of spans. Recording overwrites the oldest
// span once full; Dropped counts overwrites. Safe for concurrent use.
type Buffer struct {
	mu      sync.Mutex
	spans   []Span
	next    int
	full    bool
	dropped int64
}

// DefaultBufferCapacity is the per-node span ring size when the caller
// does not choose one.
const DefaultBufferCapacity = 4096

// NewBuffer returns a ring holding up to capacity spans (<= 0 selects
// DefaultBufferCapacity).
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = DefaultBufferCapacity
	}
	return &Buffer{spans: make([]Span, capacity)}
}

// Record appends one span, evicting the oldest if the ring is full.
func (b *Buffer) Record(s Span) {
	b.mu.Lock()
	if b.full {
		b.dropped++
	}
	b.spans[b.next] = s
	b.next++
	if b.next == len(b.spans) {
		b.next = 0
		b.full = true
	}
	b.mu.Unlock()
}

// Snapshot returns the buffered spans in record order.
func (b *Buffer) Snapshot() []Span {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.full {
		return append([]Span(nil), b.spans[:b.next]...)
	}
	out := make([]Span, 0, len(b.spans))
	out = append(out, b.spans[b.next:]...)
	out = append(out, b.spans[:b.next]...)
	return out
}

// Len returns the number of buffered spans.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.full {
		return len(b.spans)
	}
	return b.next
}

// Dropped returns how many spans were evicted to make room.
func (b *Buffer) Dropped() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}
