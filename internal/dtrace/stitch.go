package dtrace

import (
	"sort"
	"time"
)

// Delivery is one node's receipt of a traced message, with the latency
// attribution the stitcher derived from that node's spans.
type Delivery struct {
	Node int32 `json:"node"`
	// From is the peer that handed the message over (-1 at the origin;
	// for FEC deliveries, the peer that sent the first symbol).
	From int32 `json:"from"`
	// Via classifies the delivery path: "inject", "tree", "pull",
	// "sync", or "fec".
	Via string `json:"via"`
	// Hops is the overlay hop count the message traveled to reach here.
	Hops int `json:"hops"`
	// At is the delivery instant on the receiving node's clock (netsim:
	// comparable across nodes; live: per-node only).
	At time.Duration `json:"at"`
	// Age is the protocol's skew-free age estimate at delivery — the
	// cross-substrate latency attribution.
	Age time.Duration `json:"age"`
	// Wait is advert→pull-request time and RTT is request→reply time;
	// both are set only for pull deliveries.
	Wait time.Duration `json:"wait,omitempty"`
	RTT  time.Duration `json:"rtt,omitempty"`
	// Attempts counts pull requests sent before this delivery.
	Attempts int `json:"attempts,omitempty"`
	// Symbols and Assembly describe FEC deliveries: symbols held at
	// decode and first-symbol→decode time.
	Symbols  int           `json:"symbols,omitempty"`
	Assembly time.Duration `json:"assembly,omitempty"`

	// Children are the deliveries this node caused, sorted by node ID.
	// Excluded from JSON: the flat Deliveries list plus From encodes the
	// same tree without duplication.
	Children []*Delivery `json:"-"`
}

// MessageTrace is one message's stitched dissemination tree.
type MessageTrace struct {
	Src int32  `json:"src"`
	Seq uint32 `json:"seq"`
	// Deliveries is the flat list, sorted by node ID.
	Deliveries []*Delivery `json:"deliveries"`
	// Root is the inject delivery (nil when the origin's spans are
	// missing). Orphans are deliveries whose sender recorded no
	// delivery span (buffer eviction, unsampled node, missing fetch).
	Root    *Delivery   `json:"-"`
	Orphans []*Delivery `json:"-"`
}

// Counts tallies deliveries by path class (the inject itself is not
// counted).
func (t *MessageTrace) Counts() (tree, pull, sync, fec int) {
	for _, d := range t.Deliveries {
		switch d.Via {
		case "tree":
			tree++
		case "pull":
			pull++
		case "sync":
			sync++
		case "fec":
			fec++
		}
	}
	return
}

// MaxHops returns the largest hop count across deliveries.
func (t *MessageTrace) MaxHops() int {
	max := 0
	for _, d := range t.Deliveries {
		if d.Hops > max {
			max = d.Hops
		}
	}
	return max
}

// Find returns the trace for message src/seq, or nil.
func Find(traces []*MessageTrace, src int32, seq uint32) *MessageTrace {
	for _, t := range traces {
		if t.Src == src && t.Seq == seq {
			return t
		}
	}
	return nil
}

// msgKey groups spans by message.
type msgKey struct {
	src int32
	seq uint32
}

// Stitch groups spans by message and reconstructs each message's
// dissemination tree with per-delivery latency attribution. The input
// may mix spans from many nodes in any order; output is deterministic
// for a given span multiset (messages sorted by source then sequence,
// deliveries and children by node ID).
func Stitch(spans []Span) []*MessageTrace {
	// Sort a copy so grouping and per-node span order are input-order
	// independent.
	ss := append([]Span(nil), spans...)
	sort.Slice(ss, func(i, j int) bool {
		a, b := ss[i], ss[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Aux < b.Aux
	})

	var out []*MessageTrace
	for lo := 0; lo < len(ss); {
		hi := lo
		key := msgKey{ss[lo].Src, ss[lo].Seq}
		for hi < len(ss) && ss[hi].Src == key.src && ss[hi].Seq == key.seq {
			hi++
		}
		out = append(out, stitchOne(key, ss[lo:hi]))
		lo = hi
	}
	return out
}

// stitchOne builds one message's trace from its spans (sorted by node).
func stitchOne(key msgKey, spans []Span) *MessageTrace {
	t := &MessageTrace{Src: key.src, Seq: key.seq}
	for lo := 0; lo < len(spans); {
		hi := lo
		node := spans[lo].Node
		for hi < len(spans) && spans[hi].Node == node {
			hi++
		}
		if d := stitchNode(spans[lo:hi]); d != nil {
			t.Deliveries = append(t.Deliveries, d)
		}
		lo = hi
	}
	sort.Slice(t.Deliveries, func(i, j int) bool { return t.Deliveries[i].Node < t.Deliveries[j].Node })

	// Link the tree: each non-inject delivery hangs off the delivery
	// record of the peer it came from; unresolvable senders orphan.
	byNode := make(map[int32]*Delivery, len(t.Deliveries))
	for _, d := range t.Deliveries {
		byNode[d.Node] = d
		if d.Via == "inject" && t.Root == nil {
			t.Root = d
		}
	}
	for _, d := range t.Deliveries {
		if d == t.Root {
			continue
		}
		if p := byNode[d.From]; p != nil && p != d {
			p.Children = append(p.Children, d)
		} else {
			t.Orphans = append(t.Orphans, d)
		}
	}
	return t
}

// stitchNode condenses one node's spans for one message into a Delivery
// (nil when the node recorded waypoints but never a delivery).
func stitchNode(spans []Span) *Delivery {
	var deliver *Span
	var advert *Span
	var firstPull, lastPull *Span
	var firstSymbol *Span
	pulls := 0
	symbols := 0
	for i := range spans {
		s := &spans[i]
		switch {
		case s.Kind.DeliveryKind():
			if deliver == nil {
				deliver = s
			}
		case s.Kind == KindAdvert:
			if advert == nil {
				advert = s
			}
		case s.Kind == KindPull:
			pulls++
			if firstPull == nil {
				firstPull = s
			}
			lastPull = s
		case s.Kind == KindSymbolTree || s.Kind == KindSymbolPull:
			symbols++
			if firstSymbol == nil {
				firstSymbol = s
			}
		}
	}
	if deliver == nil {
		return nil
	}
	d := &Delivery{
		Node: deliver.Node,
		From: deliver.From,
		Hops: int(deliver.Hops),
		At:   deliver.End,
		Age:  deliver.Age,
	}
	switch deliver.Kind {
	case KindInject:
		d.Via = "inject"
	case KindTreeDeliver:
		d.Via = "tree"
	case KindPullDeliver:
		d.Via = "pull"
		d.RTT = deliver.End - deliver.Start
		if firstPull != nil {
			d.Wait = firstPull.End - firstPull.Start
		}
		d.Attempts = pulls
		if d.Attempts == 0 && lastPull == nil {
			d.Attempts = 1
		}
	case KindSyncDeliver:
		d.Via = "sync"
	case KindReassembly:
		d.Via = "fec"
		d.Symbols = symbols
		if deliver.Aux > 0 {
			d.Symbols = int(deliver.Aux)
		}
		d.Assembly = deliver.End - deliver.Start
		if firstSymbol != nil {
			d.From = firstSymbol.From
			d.Hops = int(firstSymbol.Hops)
		}
	}
	return d
}
