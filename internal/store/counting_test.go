package store

import (
	"testing"
	"time"
)

func TestCountingDelegatesAndCounts(t *testing.T) {
	c := NewCounting(NewMemory(Limits{Retention: time.Second}))
	if !c.Put(ID{Source: 1, Seq: 0}, []byte("x"), 0) {
		t.Fatal("Put not delegated")
	}
	if p, ok := c.Get(ID{Source: 1, Seq: 0}); !ok || string(p) != "x" {
		t.Fatal("Get not delegated")
	}
	c.Has(ID{Source: 1, Seq: 0})
	c.MarkStable(ID{Source: 1, Seq: 0}, 0)
	c.Unstable(ID{Source: 1, Seq: 0})
	c.Digest()
	c.Range(1, 0, 10, func(ID, []byte) bool { return true })
	c.GC(0)
	if c.Len() != 1 || c.Bytes() != 1 {
		t.Fatalf("Len/Bytes not delegated: %d %d", c.Len(), c.Bytes())
	}
	for _, m := range []string{"Put", "Get", "Has", "MarkStable", "Unstable", "Digest", "Range", "GC"} {
		if c.Calls(m) != 1 {
			t.Fatalf("Calls(%s) = %d", m, c.Calls(m))
		}
	}
	got := c.Counters()
	if got["calls_Put"] != 1 || got["puts"] != 1 {
		t.Fatalf("merged counters = %v", got)
	}
}
