package store

import (
	"sort"
	"time"

	"gocast/internal/metrics"
)

// Memory is the production in-memory MessageStore: a hash map for O(1)
// lookup, per-source sorted sequence indexes for ordered range scans and
// digests, FIFO eviction against the count and byte caps, and
// stability-based reclamation with an age fallback. It is not goroutine
// safe except for Counters, Len, and Bytes snapshots being internally
// consistent when driven from a single thread; core drives it from the
// node's event loop.
//
// Records live in a slab: the map stores slot indices into one flat
// []memRec, and dropped slots are recycled through a free list. In
// steady state Put costs zero allocations (amortized map and slab
// growth aside) where a map of *memRec would heap-allocate one record
// per message.
type Memory struct {
	limits Limits

	// recs maps the packed (source, seq) pair to the record's slab slot.
	// A uint64 key takes the runtime's fast map path, where the two-field
	// struct key would hash through the generic path on every Put/Get/Has.
	recs map[uint64]int32
	// slab backs every record, live or tombstoned; free lists the slots
	// of dropped tombstones for reuse. Slab pointers are only valid until
	// the next alloc — helpers re-derive &slab[i] after any growth.
	slab []memRec
	free []int32
	// bySource holds each source's live sequence numbers in ascending
	// order (payloads arrive in order per source on the hot path, so
	// inserts are usually appends). Drained sources keep their empty
	// slice so a source that cycles through GC and re-appears reuses the
	// capacity instead of reallocating; sources are node identities, so
	// the map is bounded by group size.
	bySource map[int32][]uint32
	// evictQ is insertion-ordered live IDs; eviction pops from the front,
	// lazily skipping records already reclaimed by GC.
	evictQ []ID
	bytes  int64
	live   int

	counters *metrics.AtomicCounter
}

type memRec struct {
	payload  []byte
	storedAt time.Duration
	// syms non-nil marks a symbol-granular (coopcast) record: the slice is
	// meta.N long with nil entries for symbols not yet held. The record
	// occupies one count-cap slot and one digest sequence number like a
	// whole record; its bytes accumulate symbol by symbol.
	syms    [][]byte
	symMeta SymbolMeta
	have    SymbolSet
	// releaseAt > 0 marks the record stable: every current neighbor had
	// the message at MarkStable time, and the payload may be reclaimed
	// once releaseAt passes.
	releaseAt time.Duration
	// reclaimed records linger as payload-less tombstones for duplicate
	// suppression until dropAt.
	reclaimed bool
	dropAt    time.Duration
}

var _ MessageStore = (*Memory)(nil)

// pk packs an ID into the uint64 map key.
func pk(id ID) uint64 { return uint64(uint32(id.Source))<<32 | uint64(id.Seq) }

// unpk reverses pk.
func unpk(k uint64) ID { return ID{Source: int32(k >> 32), Seq: uint32(k)} }

// NewMemory builds an empty bounded in-memory store. Nothing is
// pre-sized: simulations instantiate one store per node, most of which
// stay nearly empty, so reserving the count cap up front would multiply
// the swarm's footprint by orders of magnitude.
func NewMemory(limits Limits) *Memory {
	return &Memory{
		limits:   limits.withDefaults(),
		recs:     make(map[uint64]int32),
		bySource: make(map[int32][]uint32),
		counters: metrics.NewAtomicCounter(),
	}
}

// Limits returns the store's resolved (defaulted) limits.
func (m *Memory) Limits() Limits { return m.limits }

// alloc claims a zeroed slab slot, recycling a dropped one when possible.
func (m *Memory) alloc() int32 {
	if n := len(m.free); n > 0 {
		i := m.free[n-1]
		m.free = m.free[:n-1]
		m.slab[i] = memRec{}
		return i
	}
	if len(m.slab) == cap(m.slab) {
		// Doubling, except a store that has demonstrably grown large (past
		// 512 records) jumps straight to its count cap: one resize for the
		// rest of its life instead of several more allocate-zero-copy
		// rounds. Small stores — the overwhelming majority in a simulated
		// swarm — never overallocate.
		newCap := cap(m.slab) * 2
		if newCap < 32 {
			newCap = 32
		}
		if mm := m.limits.MaxMessages; mm > 0 && mm <= 1<<20 &&
			cap(m.slab) >= 512 && newCap < mm+1 {
			newCap = mm + 1
		}
		grown := make([]memRec, len(m.slab), newCap)
		copy(grown, m.slab)
		m.slab = grown
	}
	m.slab = append(m.slab, memRec{})
	return int32(len(m.slab) - 1)
}

// lookup resolves an ID to its slab record, nil if unknown.
func (m *Memory) lookup(id ID) *memRec {
	if i, ok := m.recs[pk(id)]; ok {
		return &m.slab[i]
	}
	return nil
}

// Put inserts a payload, evicting the oldest live records if the caps
// would be exceeded.
func (m *Memory) Put(id ID, payload []byte, now time.Duration) bool {
	k := pk(id)
	if _, ok := m.recs[k]; ok {
		m.counters.Inc("duplicate_puts", 1)
		return false
	}
	i := m.alloc()
	r := &m.slab[i]
	r.payload, r.storedAt = payload, now
	m.recs[k] = i
	m.insertSeq(id)
	m.evictQ = append(m.evictQ, id)
	m.bytes += int64(len(payload))
	m.live++
	m.counters.Inc("puts", 1)
	m.enforceCaps(now)
	return true
}

// enforceCaps reclaims the oldest live records until the count and byte
// caps hold again. The newest record is evicted only if it alone exceeds
// the byte cap.
func (m *Memory) enforceCaps(now time.Duration) {
	overCount := func() bool { return m.limits.MaxMessages > 0 && m.live > m.limits.MaxMessages }
	overBytes := func() bool { return m.limits.MaxBytes > 0 && m.bytes > m.limits.MaxBytes }
	for (overCount() || overBytes()) && len(m.evictQ) > 0 {
		id := m.evictQ[0]
		m.evictQ = m.evictQ[1:]
		r := m.lookup(id)
		if r == nil || r.reclaimed {
			continue // lazily skip records GC reclaimed first
		}
		m.reclaim(id, r, now)
		m.counters.Inc("evictions", 1)
	}
}

// reclaim frees the payload (or every held symbol) and leaves a tombstone.
func (m *Memory) reclaim(id ID, r *memRec, now time.Duration) {
	m.bytes -= int64(len(r.payload))
	for _, s := range r.syms {
		m.bytes -= int64(len(s))
	}
	r.payload = nil
	r.syms = nil
	r.have = SymbolSet{}
	r.reclaimed = true
	r.dropAt = now + m.limits.TombstoneFor
	m.live--
	m.removeSeq(id)
}

// Get returns the payload of a live whole record; symbol-granular records
// answer through GetSymbol / RangeSymbols instead.
func (m *Memory) Get(id ID) ([]byte, bool) {
	r := m.lookup(id)
	if r == nil || r.reclaimed || r.syms != nil {
		return nil, false
	}
	return r.payload, true
}

// PutSymbol inserts one symbol, creating the record on first contact.
func (m *Memory) PutSymbol(id ID, idx int, data []byte, meta SymbolMeta, now time.Duration) bool {
	if meta.K == 0 || meta.N < meta.K || int(meta.N) > SymbolWords*64 || idx < 0 || idx >= int(meta.N) {
		m.counters.Inc("rejected_symbol_puts", 1)
		return false
	}
	r := m.lookup(id)
	if r == nil {
		i := m.alloc()
		r = &m.slab[i]
		r.storedAt, r.syms, r.symMeta = now, make([][]byte, meta.N), meta
		m.recs[pk(id)] = i
		m.insertSeq(id)
		m.evictQ = append(m.evictQ, id)
		m.live++
		m.counters.Inc("puts", 1)
	}
	if r.reclaimed || r.syms == nil || r.symMeta != meta || r.have.Has(idx) {
		m.counters.Inc("duplicate_symbol_puts", 1)
		return false
	}
	r.syms[idx] = data
	r.have.Add(idx)
	m.bytes += int64(len(data))
	m.counters.Inc("symbol_puts", 1)
	m.enforceCaps(now)
	return true
}

// GetSymbol returns one held symbol of a live symbol-granular record.
func (m *Memory) GetSymbol(id ID, idx int) ([]byte, bool) {
	r := m.lookup(id)
	if r == nil || r.reclaimed || r.syms == nil || !r.have.Has(idx) {
		return nil, false
	}
	return r.syms[idx], true
}

// SymbolInfo reports a live symbol-granular record's geometry and bitmap.
func (m *Memory) SymbolInfo(id ID) (SymbolMeta, SymbolSet, bool) {
	r := m.lookup(id)
	if r == nil || r.reclaimed || r.syms == nil {
		return SymbolMeta{}, SymbolSet{}, false
	}
	return r.symMeta, r.have, true
}

// RangeSymbols visits held symbols in ascending index order.
func (m *Memory) RangeSymbols(id ID, visit func(idx int, data []byte) bool) {
	r := m.lookup(id)
	if r == nil || r.reclaimed || r.syms == nil {
		return
	}
	for i, s := range r.syms {
		if !r.have.Has(i) {
			continue
		}
		if !visit(i, s) {
			return
		}
	}
}

// Has reports whether the ID is known, live or tombstoned.
func (m *Memory) Has(id ID) bool {
	_, ok := m.recs[pk(id)]
	return ok
}

// MarkStable schedules reclamation Retention from now.
func (m *Memory) MarkStable(id ID, now time.Duration) {
	if r := m.lookup(id); r != nil && !r.reclaimed {
		r.releaseAt = now + m.limits.Retention
	}
}

// Unstable cancels a pending reclamation.
func (m *Memory) Unstable(id ID) {
	if r := m.lookup(id); r != nil && !r.reclaimed {
		r.releaseAt = 0
	}
}

// Digest summarizes live holdings as sorted per-source watermark ranges.
func (m *Memory) Digest() []SourceRange {
	return m.DigestAppend(nil)
}

// DigestAppend appends the digest to dst, reusing its capacity. Callers
// that summarize the store repeatedly (the sync responder path) pass a
// retained scratch slice to keep the per-exchange cost allocation-free.
func (m *Memory) DigestAppend(dst []SourceRange) []SourceRange {
	if cap(dst) < len(m.bySource) {
		dst = make([]SourceRange, 0, len(m.bySource))
	}
	out := dst[:0]
	for src, seqs := range m.bySource {
		if len(seqs) == 0 {
			continue
		}
		out = append(out, SourceRange{Source: src, Low: seqs[0], High: seqs[len(seqs)-1]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Source < out[j].Source })
	return out
}

// Range visits one source's live messages in [low, high] in ascending
// sequence order.
func (m *Memory) Range(source int32, low, high uint32, visit func(id ID, payload []byte) bool) {
	seqs := m.bySource[source]
	i := sort.Search(len(seqs), func(k int) bool { return seqs[k] >= low })
	for ; i < len(seqs) && seqs[i] <= high; i++ {
		id := ID{Source: source, Seq: seqs[i]}
		r := m.lookup(id)
		if r == nil || r.reclaimed {
			continue
		}
		if !visit(id, r.payload) {
			return
		}
	}
}

// GC sweeps: stable payloads past their release time and unstable payloads
// past MaxAge are reclaimed; expired tombstones are dropped and their slab
// slots recycled.
func (m *Memory) GC(now time.Duration) GCResult {
	var res GCResult
	for k, i := range m.recs {
		r := &m.slab[i]
		id := unpk(k)
		if r.reclaimed {
			if now >= r.dropAt {
				delete(m.recs, k)
				m.free = append(m.free, i)
				res.Dropped = append(res.Dropped, id)
				m.counters.Inc("tombstones_dropped", 1)
			}
			continue
		}
		if r.releaseAt > 0 && now >= r.releaseAt {
			m.reclaim(id, r, now)
			res.Reclaimed = append(res.Reclaimed, id)
			m.counters.Inc("reclaims_stable", 1)
		} else if now-r.storedAt >= m.limits.MaxAge {
			m.reclaim(id, r, now)
			res.Reclaimed = append(res.Reclaimed, id)
			m.counters.Inc("reclaims_aged", 1)
		}
	}
	// Compact the eviction queue: records reclaimed by this or earlier
	// sweeps no longer need an eviction slot, and leaving them would let
	// the queue grow without bound in steady state.
	q := m.evictQ[:0]
	for _, id := range m.evictQ {
		if r := m.lookup(id); r != nil && !r.reclaimed {
			q = append(q, id)
		}
	}
	m.evictQ = q
	return res
}

// Len returns the number of live records.
func (m *Memory) Len() int { return m.live }

// Bytes returns the live payload bytes held.
func (m *Memory) Bytes() int64 { return m.bytes }

// Counters snapshots the store's activity counters.
func (m *Memory) Counters() map[string]int64 { return m.counters.Snapshot() }

// insertSeq adds id.Seq to its source's sorted index.
func (m *Memory) insertSeq(id ID) {
	seqs := m.bySource[id.Source]
	if n := len(seqs); n == 0 || seqs[n-1] < id.Seq {
		m.bySource[id.Source] = append(seqs, id.Seq)
		return
	}
	i := sort.Search(len(seqs), func(k int) bool { return seqs[k] >= id.Seq })
	seqs = append(seqs, 0)
	copy(seqs[i+1:], seqs[i:])
	seqs[i] = id.Seq
	m.bySource[id.Source] = seqs
}

// removeSeq deletes id.Seq from its source's sorted index, keeping the
// drained slice (and its capacity) for the source's next burst.
func (m *Memory) removeSeq(id ID) {
	seqs := m.bySource[id.Source]
	i := sort.Search(len(seqs), func(k int) bool { return seqs[k] >= id.Seq })
	if i >= len(seqs) || seqs[i] != id.Seq {
		return
	}
	m.bySource[id.Source] = append(seqs[:i], seqs[i+1:]...)
}
