package store

import (
	"math"
	"reflect"
	"testing"
)

func TestMissingEmptyLocal(t *testing.T) {
	if got := Missing(nil, []SourceRange{{Source: 1, Low: 0, High: 5}}); got != nil {
		t.Fatalf("Missing(nil, ...) = %v", got)
	}
}

func TestMissingRemoteKnowsNothing(t *testing.T) {
	local := []SourceRange{{Source: 1, Low: 0, High: 5}, {Source: 2, Low: 3, High: 9}}
	got := Missing(local, nil)
	if !reflect.DeepEqual(got, local) {
		t.Fatalf("Missing vs empty remote = %v", got)
	}
}

func TestMissingAboveRemoteHigh(t *testing.T) {
	local := []SourceRange{{Source: 1, Low: 0, High: 10}}
	remote := []SourceRange{{Source: 1, Low: 0, High: 6}}
	want := []SourceRange{{Source: 1, Low: 7, High: 10}}
	if got := Missing(local, remote); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestMissingRespectsLocalLowAboveRemoteHigh(t *testing.T) {
	// Local reclaimed everything below 20; remote saw up to 6. The gap
	// 7..19 is gone on both sides — only 20..30 can be offered.
	local := []SourceRange{{Source: 1, Low: 20, High: 30}}
	remote := []SourceRange{{Source: 1, Low: 0, High: 6}}
	want := []SourceRange{{Source: 1, Low: 20, High: 30}}
	if got := Missing(local, remote); !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestMissingDoesNotResendBelowRemoteLow(t *testing.T) {
	// The remote advanced its low watermark past 5: it held and reclaimed
	// those messages, so nothing is missing.
	local := []SourceRange{{Source: 1, Low: 0, High: 5}}
	remote := []SourceRange{{Source: 1, Low: 6, High: 9}}
	if got := Missing(local, remote); got != nil {
		t.Fatalf("re-offered reclaimed messages: %v", got)
	}
}

func TestMissingMaxRangeNoOverflow(t *testing.T) {
	local := []SourceRange{{Source: 1, Low: 0, High: math.MaxUint32}}
	remote := []SourceRange{{Source: 1, Low: 0, High: math.MaxUint32}}
	if got := Missing(local, remote); got != nil {
		t.Fatalf("max-range digest produced %v", got)
	}
}

func TestMissingCoveredExactly(t *testing.T) {
	local := []SourceRange{{Source: 4, Low: 2, High: 8}}
	remote := []SourceRange{{Source: 4, Low: 2, High: 8}}
	if got := Missing(local, remote); got != nil {
		t.Fatalf("identical digests produced %v", got)
	}
}
