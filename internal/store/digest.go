package store

// Missing compares a local digest against a remote peer's digest and
// returns the sub-ranges of local holdings the remote does not cover:
// everything for sources absent from the remote digest, and sequence
// numbers above the remote's high watermark for shared sources.
//
// Sequence numbers below a remote low watermark are deliberately NOT
// reported: a remote that advanced its low watermark held (and reclaimed)
// those messages, so re-sending them would undo its garbage collection.
// In-range gaps are invisible to a watermark digest and are left to the
// regular gossip/pull path, which targets exactly the recently-announced
// IDs a gap consists of.
func Missing(local, remote []SourceRange) []SourceRange {
	if len(local) == 0 {
		return nil
	}
	theirs := make(map[int32]SourceRange, len(remote))
	for _, r := range remote {
		theirs[r.Source] = r
	}
	var out []SourceRange
	for _, l := range local {
		r, known := theirs[l.Source]
		if !known {
			out = append(out, l)
			continue
		}
		if l.High > r.High {
			lo := r.High + 1
			if lo < l.Low {
				lo = l.Low
			}
			out = append(out, SourceRange{Source: l.Source, Low: lo, High: l.High})
		}
	}
	return out
}
