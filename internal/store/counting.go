package store

import (
	"time"

	"gocast/internal/metrics"
)

// Counting wraps any MessageStore and counts every call, merging the call
// counts into the inner store's counters under a "calls_" prefix. It is
// the swap-in instrumentation double used by tests to verify that the
// dissemination path really goes through the store interface, and a
// template for other decorators (tracing, latency injection).
type Counting struct {
	Inner MessageStore
	calls *metrics.AtomicCounter
}

var _ MessageStore = (*Counting)(nil)

// NewCounting wraps inner with call counting.
func NewCounting(inner MessageStore) *Counting {
	return &Counting{Inner: inner, calls: metrics.NewAtomicCounter()}
}

// Calls returns how many times the named method was invoked.
func (c *Counting) Calls(method string) int64 { return c.calls.Get(method) }

func (c *Counting) Put(id ID, payload []byte, now time.Duration) bool {
	c.calls.Inc("Put", 1)
	return c.Inner.Put(id, payload, now)
}

func (c *Counting) Get(id ID) ([]byte, bool) {
	c.calls.Inc("Get", 1)
	return c.Inner.Get(id)
}

func (c *Counting) Has(id ID) bool {
	c.calls.Inc("Has", 1)
	return c.Inner.Has(id)
}

func (c *Counting) MarkStable(id ID, now time.Duration) {
	c.calls.Inc("MarkStable", 1)
	c.Inner.MarkStable(id, now)
}

func (c *Counting) Unstable(id ID) {
	c.calls.Inc("Unstable", 1)
	c.Inner.Unstable(id)
}

func (c *Counting) Digest() []SourceRange {
	c.calls.Inc("Digest", 1)
	return c.Inner.Digest()
}

func (c *Counting) Range(source int32, low, high uint32, visit func(id ID, payload []byte) bool) {
	c.calls.Inc("Range", 1)
	c.Inner.Range(source, low, high, visit)
}

func (c *Counting) PutSymbol(id ID, idx int, data []byte, meta SymbolMeta, now time.Duration) bool {
	c.calls.Inc("PutSymbol", 1)
	return c.Inner.PutSymbol(id, idx, data, meta, now)
}

func (c *Counting) GetSymbol(id ID, idx int) ([]byte, bool) {
	c.calls.Inc("GetSymbol", 1)
	return c.Inner.GetSymbol(id, idx)
}

func (c *Counting) SymbolInfo(id ID) (SymbolMeta, SymbolSet, bool) {
	c.calls.Inc("SymbolInfo", 1)
	return c.Inner.SymbolInfo(id)
}

func (c *Counting) RangeSymbols(id ID, visit func(idx int, data []byte) bool) {
	c.calls.Inc("RangeSymbols", 1)
	c.Inner.RangeSymbols(id, visit)
}

func (c *Counting) GC(now time.Duration) GCResult {
	c.calls.Inc("GC", 1)
	return c.Inner.GC(now)
}

func (c *Counting) Len() int     { return c.Inner.Len() }
func (c *Counting) Bytes() int64 { return c.Inner.Bytes() }

// Counters merges the inner store's counters with the call counts.
func (c *Counting) Counters() map[string]int64 {
	out := c.Inner.Counters()
	for name, v := range c.calls.Snapshot() {
		out["calls_"+name] = v
	}
	return out
}
