// Package store provides the bounded multicast message store behind
// GoCast's dissemination and anti-entropy recovery paths. The dissemination
// layer (internal/core) buffers every multicast payload so gossip pulls and
// digest-based sync can repair whatever the tree drops; this package owns
// that buffer's lifecycle — O(1) lookup, ordered per-source ID-range scans
// for sync, stability-based reclamation, and hard count/byte caps that keep
// memory flat under sustained traffic.
//
// The package is deliberately independent of internal/core (core imports
// it, not the other way around), so alternative implementations — disk
// spill, sharded, instrumented test doubles — can be swapped in through
// core's configuration without touching protocol code.
package store

import (
	"math/bits"
	"time"
)

// ID identifies one multicast message: the injecting node's ID (as a raw
// int32, mirroring core.NodeID) plus that node's local sequence number.
type ID struct {
	Source int32
	Seq    uint32
}

// SourceRange summarizes one source's stored messages as a low/high
// sequence watermark pair: the store holds (possibly with gaps) payloads
// for sequence numbers in [Low, High]. Digest exchanges between peers are
// vectors of these ranges.
type SourceRange struct {
	Source    int32
	Low, High uint32
}

// Limits bounds a store. The zero value selects the documented defaults.
type Limits struct {
	// MaxMessages caps live (payload-holding) records; the oldest are
	// evicted first. 0 selects DefaultMaxMessages; negative is unlimited.
	MaxMessages int
	// MaxBytes caps total payload bytes. 0 selects DefaultMaxBytes;
	// negative is unlimited.
	MaxBytes int64
	// Retention is how long a stable message's payload is kept for pulls
	// and sync after every neighbor was seen to have it (the paper's
	// waiting period b). 0 selects DefaultRetention.
	Retention time.Duration
	// MaxAge is the fallback bound for messages that never become stable
	// (e.g. a neighbor that never acknowledges): their payload is
	// reclaimed MaxAge after insertion regardless. 0 selects 2*Retention.
	MaxAge time.Duration
	// TombstoneFor is how long a reclaimed record lingers (payload freed)
	// purely for duplicate suppression before being forgotten entirely.
	// 0 selects Retention.
	TombstoneFor time.Duration
}

// Default limits.
const (
	DefaultMaxMessages = 16384
	DefaultMaxBytes    = 64 << 20 // 64 MiB
	DefaultRetention   = 2 * time.Minute
)

// withDefaults resolves zero fields to the documented defaults.
func (l Limits) withDefaults() Limits {
	if l.MaxMessages == 0 {
		l.MaxMessages = DefaultMaxMessages
	}
	if l.MaxBytes == 0 {
		l.MaxBytes = DefaultMaxBytes
	}
	if l.Retention <= 0 {
		l.Retention = DefaultRetention
	}
	if l.MaxAge <= 0 {
		l.MaxAge = 2 * l.Retention
	}
	if l.TombstoneFor <= 0 {
		l.TombstoneFor = l.Retention
	}
	return l
}

// SymbolMeta describes the erasure-coding geometry of a symbol-granular
// (coopcast) record: K source symbols, N total symbols, and the original
// payload length. Every holder derives the uniform symbol size as
// ceil(PayloadLen/K), so it is never stored or transmitted.
type SymbolMeta struct {
	K, N       uint16
	PayloadLen uint32
}

// SymbolWords is the fixed word count of a SymbolSet bitmap, sized for the
// coder's maximum of 256 symbols per message.
const SymbolWords = 4

// SymbolSet is a bitmap over the symbol indexes [0, 256) of one coopcast
// message. The zero value is empty; it is a small array, copy it freely.
type SymbolSet [SymbolWords]uint64

// Has reports whether symbol index i is in the set.
func (s *SymbolSet) Has(i int) bool {
	return uint(i) < SymbolWords*64 && s[i>>6]&(1<<(uint(i)&63)) != 0
}

// Add inserts symbol index i; out-of-range indexes are ignored.
func (s *SymbolSet) Add(i int) {
	if uint(i) < SymbolWords*64 {
		s[i>>6] |= 1 << (uint(i) & 63)
	}
}

// Remove deletes symbol index i.
func (s *SymbolSet) Remove(i int) {
	if uint(i) < SymbolWords*64 {
		s[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// Count returns the number of symbols in the set.
func (s *SymbolSet) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set holds no symbols.
func (s *SymbolSet) Empty() bool {
	return s[0]|s[1]|s[2]|s[3] == 0
}

// AnyNotIn reports whether the set holds a symbol that other lacks.
func (s *SymbolSet) AnyNotIn(other *SymbolSet) bool {
	for w := range s {
		if s[w]&^other[w] != 0 {
			return true
		}
	}
	return false
}

// GCResult reports one garbage-collection sweep.
type GCResult struct {
	// Reclaimed lists messages whose payload was freed this sweep (the
	// record lingers as a tombstone for duplicate suppression).
	Reclaimed []ID
	// Dropped lists records forgotten entirely; callers tracking
	// per-message state keyed by ID should discard theirs too.
	Dropped []ID
}

// MessageStore buffers multicast payloads between receipt and reclamation.
// Implementations are not required to be goroutine-safe: core drives the
// store from a node's single logical thread. All times are substrate clock
// readings supplied by the caller (simulated or real), never wall-clock
// reads taken by the store itself.
type MessageStore interface {
	// Put inserts a payload under id at time now. It reports false (and
	// stores nothing) if the ID is already present, reclaimed or not.
	// Inserting may evict the oldest live records to respect the caps.
	Put(id ID, payload []byte, now time.Duration) bool
	// Get returns the payload, or ok=false if the ID is absent, its
	// payload has been reclaimed or evicted, or the record is
	// symbol-granular (use GetSymbol / RangeSymbols for those).
	Get(id ID) (payload []byte, ok bool)
	// Has reports whether the ID is known at all — live or tombstoned —
	// for duplicate suppression.
	Has(id ID) bool
	// MarkStable records that every current overlay neighbor has the
	// message (heard or acked via gossip): its payload becomes
	// reclaimable Retention after now. Unknown or reclaimed IDs are
	// ignored.
	MarkStable(id ID, now time.Duration)
	// Unstable cancels a pending reclamation (a new neighbor appeared
	// that may still need the payload). Ignored for reclaimed IDs.
	Unstable(id ID)
	// Digest summarizes live holdings as per-source watermark ranges,
	// sorted by source for deterministic wire encoding. Symbol-granular
	// records contribute exactly one sequence number each, the same as
	// whole records, from their very first symbol: the digest's shape —
	// and therefore the watermark sync protocol's interior-hole caveat —
	// is unchanged by coopcast. A partially-assembled message sits inside
	// the watermark and is invisible to sync by design; the gossip
	// symbol-advert/pull layer owns completing it.
	Digest() []SourceRange
	// Range visits the live messages of one source with Low <= Seq <=
	// High in ascending sequence order, stopping early when visit
	// returns false. Symbol-granular records are visited with a nil
	// payload; callers page their symbols via SymbolInfo/RangeSymbols.
	Range(source int32, low, high uint32, visit func(id ID, payload []byte) bool)
	// PutSymbol inserts one erasure-coded symbol of a symbol-granular
	// (coopcast) record. The first symbol creates the record — which
	// occupies exactly one slot in the count cap, the digest, and the
	// eviction queue, same as a whole record — and fixes its geometry;
	// later symbols must match it. It reports false for duplicate or
	// out-of-range indexes, geometry mismatches, reclaimed records, and
	// IDs already held as whole payloads. Symbol bytes count against the
	// byte cap as they arrive, so a flood of partial messages evicts
	// oldest-first exactly like whole payloads.
	PutSymbol(id ID, idx int, data []byte, meta SymbolMeta, now time.Duration) bool
	// GetSymbol returns one held symbol of a live symbol-granular record.
	GetSymbol(id ID, idx int) (data []byte, ok bool)
	// SymbolInfo reports a live symbol-granular record's geometry and the
	// bitmap of symbols currently held. ok is false for whole records,
	// reclaimed records, and unknown IDs.
	SymbolInfo(id ID) (meta SymbolMeta, have SymbolSet, ok bool)
	// RangeSymbols visits a live symbol-granular record's held symbols in
	// ascending index order, stopping early when visit returns false.
	RangeSymbols(id ID, visit func(idx int, data []byte) bool)
	// GC performs one sweep at time now: stable payloads past their
	// retention window and unstable payloads past MaxAge are reclaimed;
	// tombstones past TombstoneFor are dropped. A symbol-granular record
	// that never completed (and so was never marked stable) falls under
	// the MaxAge fallback — partial messages cannot leak.
	GC(now time.Duration) GCResult
	// Len returns the number of live (payload-holding) records.
	Len() int
	// Bytes returns the total payload bytes currently held.
	Bytes() int64
	// Counters snapshots the store's activity counters (inserts,
	// evictions, reclaims, drops, ...).
	Counters() map[string]int64
}
