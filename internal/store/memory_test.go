package store

import (
	"fmt"
	"testing"
	"time"
)

func id(src int32, seq uint32) ID { return ID{Source: src, Seq: seq} }

func TestPutGetHasAndDuplicates(t *testing.T) {
	m := NewMemory(Limits{})
	if !m.Put(id(1, 0), []byte("a"), 0) {
		t.Fatal("first Put rejected")
	}
	if m.Put(id(1, 0), []byte("b"), 0) {
		t.Fatal("duplicate Put accepted")
	}
	p, ok := m.Get(id(1, 0))
	if !ok || string(p) != "a" {
		t.Fatalf("Get = %q, %v", p, ok)
	}
	if !m.Has(id(1, 0)) || m.Has(id(1, 1)) {
		t.Fatal("Has wrong")
	}
	if m.Len() != 1 || m.Bytes() != 1 {
		t.Fatalf("Len=%d Bytes=%d", m.Len(), m.Bytes())
	}
	if got := m.Counters()["duplicate_puts"]; got != 1 {
		t.Fatalf("duplicate_puts = %d", got)
	}
}

func TestNilPayloadIsStorable(t *testing.T) {
	// The simulator injects nil payloads; a nil payload must still count
	// as a live record (distinct from a reclaimed one).
	m := NewMemory(Limits{})
	m.Put(id(1, 0), nil, 0)
	if _, ok := m.Get(id(1, 0)); !ok {
		t.Fatal("nil payload not retrievable")
	}
	if m.Len() != 1 {
		t.Fatal("nil payload not live")
	}
}

func TestStabilityReclaimThenTombstoneDrop(t *testing.T) {
	lim := Limits{Retention: 10 * time.Second, TombstoneFor: 20 * time.Second}
	m := NewMemory(lim)
	m.Put(id(1, 0), []byte("xyz"), 0)
	m.MarkStable(id(1, 0), 5*time.Second)

	res := m.GC(14 * time.Second) // before releaseAt=15s
	if len(res.Reclaimed) != 0 {
		t.Fatal("reclaimed before retention elapsed")
	}
	res = m.GC(15 * time.Second)
	if len(res.Reclaimed) != 1 || res.Reclaimed[0] != id(1, 0) {
		t.Fatalf("Reclaimed = %v", res.Reclaimed)
	}
	if _, ok := m.Get(id(1, 0)); ok {
		t.Fatal("reclaimed payload still served")
	}
	if !m.Has(id(1, 0)) {
		t.Fatal("tombstone missing right after reclaim")
	}
	if m.Bytes() != 0 || m.Len() != 0 {
		t.Fatalf("Bytes=%d Len=%d after reclaim", m.Bytes(), m.Len())
	}

	res = m.GC(40 * time.Second) // past dropAt = 15s + 20s
	if len(res.Dropped) != 1 || res.Dropped[0] != id(1, 0) {
		t.Fatalf("Dropped = %v", res.Dropped)
	}
	if m.Has(id(1, 0)) {
		t.Fatal("tombstone survived its window")
	}
}

func TestUnstableCancelsReclaim(t *testing.T) {
	m := NewMemory(Limits{Retention: 10 * time.Second, MaxAge: time.Hour})
	m.Put(id(1, 0), []byte("x"), 0)
	m.MarkStable(id(1, 0), 0)
	m.Unstable(id(1, 0))
	if res := m.GC(30 * time.Second); len(res.Reclaimed) != 0 {
		t.Fatal("reclaimed a message made unstable again")
	}
}

func TestMaxAgeFallbackReclaimsUnstable(t *testing.T) {
	// A message that never becomes stable (slow neighbor) must still be
	// reclaimed after MaxAge so memory stays bounded.
	m := NewMemory(Limits{Retention: 10 * time.Second, MaxAge: 30 * time.Second})
	m.Put(id(1, 0), []byte("x"), 0)
	if res := m.GC(29 * time.Second); len(res.Reclaimed) != 0 {
		t.Fatal("reclaimed before MaxAge")
	}
	res := m.GC(30 * time.Second)
	if len(res.Reclaimed) != 1 {
		t.Fatal("MaxAge fallback did not reclaim")
	}
	if m.Counters()["reclaims_aged"] != 1 {
		t.Fatal("reclaims_aged counter not incremented")
	}
}

func TestCountCapEvictsOldestFirst(t *testing.T) {
	m := NewMemory(Limits{MaxMessages: 3})
	for seq := uint32(0); seq < 5; seq++ {
		m.Put(id(1, seq), []byte{byte(seq)}, time.Duration(seq))
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
	for seq := uint32(0); seq < 2; seq++ {
		if _, ok := m.Get(id(1, seq)); ok {
			t.Fatalf("seq %d should be evicted", seq)
		}
		if !m.Has(id(1, seq)) {
			t.Fatalf("evicted seq %d lost its dedup tombstone", seq)
		}
	}
	for seq := uint32(2); seq < 5; seq++ {
		if _, ok := m.Get(id(1, seq)); !ok {
			t.Fatalf("seq %d should survive", seq)
		}
	}
	if m.Counters()["evictions"] != 2 {
		t.Fatalf("evictions = %d", m.Counters()["evictions"])
	}
}

func TestByteCapHoldsUnderSustainedInsertes(t *testing.T) {
	const cap = 1000
	m := NewMemory(Limits{MaxBytes: cap})
	payload := make([]byte, 64)
	for seq := uint32(0); seq < 500; seq++ {
		m.Put(id(2, seq), payload, time.Duration(seq))
		if m.Bytes() > cap {
			t.Fatalf("bytes %d exceed cap %d at seq %d", m.Bytes(), cap, seq)
		}
	}
	if m.Len() == 0 {
		t.Fatal("store drained completely")
	}
}

func TestOversizedPayloadEvictsItself(t *testing.T) {
	m := NewMemory(Limits{MaxBytes: 10})
	m.Put(id(1, 0), make([]byte, 100), 0)
	if m.Bytes() > 10 {
		t.Fatalf("byte cap violated: %d", m.Bytes())
	}
	if !m.Has(id(1, 0)) {
		t.Fatal("oversized payload should leave a tombstone")
	}
}

func TestDigestAndRangeOrdering(t *testing.T) {
	m := NewMemory(Limits{})
	// Out-of-order arrival (pull responses) must still index correctly.
	for _, seq := range []uint32{5, 2, 9, 3} {
		m.Put(id(7, seq), []byte{byte(seq)}, 0)
	}
	m.Put(id(3, 1), []byte("z"), 0)
	d := m.Digest()
	if len(d) != 2 {
		t.Fatalf("digest = %v", d)
	}
	if d[0] != (SourceRange{Source: 3, Low: 1, High: 1}) {
		t.Fatalf("digest[0] = %v", d[0])
	}
	if d[1] != (SourceRange{Source: 7, Low: 2, High: 9}) {
		t.Fatalf("digest[1] = %v", d[1])
	}
	var got []uint32
	m.Range(7, 3, 8, func(i ID, _ []byte) bool {
		got = append(got, i.Seq)
		return true
	})
	if fmt.Sprint(got) != "[3 5]" {
		t.Fatalf("Range(7,3,8) visited %v", got)
	}
	// Early stop.
	got = nil
	m.Range(7, 0, 100, func(i ID, _ []byte) bool {
		got = append(got, i.Seq)
		return len(got) < 2
	})
	if len(got) != 2 {
		t.Fatalf("early stop visited %v", got)
	}
}

func TestDigestExcludesReclaimed(t *testing.T) {
	m := NewMemory(Limits{Retention: time.Second, MaxAge: time.Hour})
	m.Put(id(1, 0), []byte("a"), 0)
	m.Put(id(1, 1), []byte("b"), 0)
	m.MarkStable(id(1, 0), 0)
	m.GC(2 * time.Second)
	d := m.Digest()
	if len(d) != 1 || d[0].Low != 1 || d[0].High != 1 {
		t.Fatalf("digest after partial reclaim = %v", d)
	}
	var visited int
	m.Range(1, 0, 10, func(ID, []byte) bool { visited++; return true })
	if visited != 1 {
		t.Fatalf("Range visited %d live records, want 1", visited)
	}
}

func TestEvictQueueDoesNotGrowUnbounded(t *testing.T) {
	// Steady state: everything becomes stable and is reclaimed by GC, so
	// the eviction queue must be compacted by the sweeps.
	m := NewMemory(Limits{Retention: time.Second, TombstoneFor: time.Second})
	now := time.Duration(0)
	for round := 0; round < 50; round++ {
		for k := 0; k < 20; k++ {
			sid := id(1, uint32(round*20+k))
			m.Put(sid, []byte("p"), now)
			m.MarkStable(sid, now)
		}
		now += 5 * time.Second
		m.GC(now)
	}
	if len(m.evictQ) > 40 {
		t.Fatalf("eviction queue holds %d entries after steady-state GC", len(m.evictQ))
	}
}
