package store

import (
	"reflect"
	"testing"
	"time"
)

func symMeta(k, n uint16, plen uint32) SymbolMeta {
	return SymbolMeta{K: k, N: n, PayloadLen: plen}
}

func TestSymbolSetOps(t *testing.T) {
	var s SymbolSet
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("zero set not empty")
	}
	for _, i := range []int{0, 63, 64, 200, 255} {
		s.Add(i)
	}
	if s.Count() != 5 {
		t.Fatalf("Count = %d", s.Count())
	}
	for _, i := range []int{0, 63, 64, 200, 255} {
		if !s.Has(i) {
			t.Fatalf("missing bit %d", i)
		}
	}
	if s.Has(1) || s.Has(199) {
		t.Fatal("phantom bits")
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 4 {
		t.Fatal("Remove failed")
	}
	var other SymbolSet
	other.Add(63)
	if !s.AnyNotIn(&other) {
		t.Fatal("s holds 0,200,255 beyond other")
	}
	if other.AnyNotIn(&s) {
		t.Fatal("other is a subset of s")
	}
}

func TestPutSymbolLifecycle(t *testing.T) {
	m := NewMemory(Limits{})
	meta := symMeta(2, 3, 100)
	if !m.PutSymbol(id(1, 0), 0, make([]byte, 50), meta, 0) {
		t.Fatal("first symbol rejected")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d: a symbol record must occupy one slot", m.Len())
	}
	if m.Bytes() != 50 {
		t.Fatalf("Bytes = %d", m.Bytes())
	}
	// The record is symbol-granular: whole-payload Get must not see it.
	if _, ok := m.Get(id(1, 0)); ok {
		t.Fatal("Get returned a partial symbol record")
	}
	// Duplicate symbol, mismatched geometry, bad index: all rejected.
	if m.PutSymbol(id(1, 0), 0, make([]byte, 50), meta, 0) {
		t.Fatal("duplicate symbol accepted")
	}
	if m.PutSymbol(id(1, 0), 1, make([]byte, 50), symMeta(2, 4, 100), 0) {
		t.Fatal("geometry clash accepted")
	}
	if m.PutSymbol(id(1, 0), 3, make([]byte, 50), meta, 0) {
		t.Fatal("out-of-range index accepted")
	}
	if m.PutSymbol(id(2, 0), 0, nil, symMeta(0, 0, 0), 0) {
		t.Fatal("impossible geometry accepted")
	}
	gotMeta, have, ok := m.SymbolInfo(id(1, 0))
	if !ok || gotMeta != meta || have.Count() != 1 || !have.Has(0) {
		t.Fatalf("SymbolInfo = %+v %v %v", gotMeta, have, ok)
	}
	if _, ok := m.GetSymbol(id(1, 0), 1); ok {
		t.Fatal("GetSymbol returned a missing symbol")
	}
	m.PutSymbol(id(1, 0), 2, make([]byte, 50), meta, 0)
	var visited []int
	m.RangeSymbols(id(1, 0), func(idx int, data []byte) bool {
		visited = append(visited, idx)
		if len(data) != 50 {
			t.Fatalf("symbol %d has %d bytes", idx, len(data))
		}
		return true
	})
	if !reflect.DeepEqual(visited, []int{0, 2}) {
		t.Fatalf("RangeSymbols visited %v", visited)
	}
	if m.Bytes() != 100 {
		t.Fatalf("Bytes = %d after second symbol", m.Bytes())
	}
}

// TestSymbolRecordDigestShapeUnchanged is the watermark-caveat regression
// test: a symbol-granular record claims its sequence slot from the FIRST
// symbol, so the store's digest is identical whether a sequence is held
// whole, partially assembled, or fully assembled. Coopcast therefore does
// not widen the watermark digest's interior-hole caveat — a partial
// assembly sits inside the watermark exactly like a whole record, and is
// invisible to watermark sync BY DESIGN (the gossip symbol-advert/pull
// layer, not sync, owns completing it).
func TestSymbolRecordDigestShapeUnchanged(t *testing.T) {
	whole := NewMemory(Limits{})
	mixed := NewMemory(Limits{})
	for seq := uint32(0); seq <= 3; seq++ {
		whole.Put(id(7, seq), []byte("p"), 0)
	}
	mixed.Put(id(7, 0), []byte("p"), 0)
	mixed.Put(id(7, 1), []byte("p"), 0)
	// seq 2: partial coopcast assembly — 1 of 4 symbols held.
	mixed.PutSymbol(id(7, 2), 3, make([]byte, 25), symMeta(3, 4, 75), 0)
	mixed.Put(id(7, 3), []byte("p"), 0)

	dw, dm := whole.Digest(), mixed.Digest()
	if !reflect.DeepEqual(dw, dm) {
		t.Fatalf("digest shape changed by a partial symbol record:\nwhole: %v\nmixed: %v", dw, dm)
	}
	// A fully-complete peer offers nothing for seq 2: the partial is
	// inside the requester's watermark, hence invisible to sync.
	if missing := Missing(dw, dm); missing != nil {
		t.Fatalf("watermark sync sees the partial assembly: %v", missing)
	}
	// Completing the assembly must not move the digest either.
	for i := 0; i < 3; i++ {
		mixed.PutSymbol(id(7, 2), i, make([]byte, 25), symMeta(3, 4, 75), 0)
	}
	if got := mixed.Digest(); !reflect.DeepEqual(got, dw) {
		t.Fatalf("digest moved on assembly completion: %v", got)
	}
	// Range must visit the symbol record (with a nil payload marker) so
	// sync responders can page its symbols.
	var seqs []uint32
	var nilAt []uint32
	mixed.Range(7, 0, 10, func(rid ID, payload []byte) bool {
		seqs = append(seqs, rid.Seq)
		if payload == nil {
			nilAt = append(nilAt, rid.Seq)
		}
		return true
	})
	if !reflect.DeepEqual(seqs, []uint32{0, 1, 2, 3}) {
		t.Fatalf("Range visited %v", seqs)
	}
	if !reflect.DeepEqual(nilAt, []uint32{2}) {
		t.Fatalf("nil-payload markers at %v, want [2]", nilAt)
	}
}

// TestSymbolRecordMaxAgeGC pins the partial-assembly GC path: a record
// that never completes is never marked stable, so the MaxAge fallback
// reclaims it, frees its symbol bytes, and tombstones the ID.
func TestSymbolRecordMaxAgeGC(t *testing.T) {
	lim := Limits{Retention: 10 * time.Second, MaxAge: 30 * time.Second, TombstoneFor: 5 * time.Second}
	m := NewMemory(lim)
	meta := symMeta(4, 6, 100)
	m.PutSymbol(id(1, 0), 0, make([]byte, 25), meta, 0)
	m.PutSymbol(id(1, 0), 1, make([]byte, 25), meta, 0)

	if res := m.GC(29 * time.Second); len(res.Reclaimed) != 0 {
		t.Fatal("partial reclaimed before MaxAge")
	}
	res := m.GC(30 * time.Second)
	if len(res.Reclaimed) != 1 || res.Reclaimed[0] != id(1, 0) {
		t.Fatalf("Reclaimed = %v", res.Reclaimed)
	}
	if m.Bytes() != 0 || m.Len() != 0 {
		t.Fatalf("bytes=%d len=%d after reclaim", m.Bytes(), m.Len())
	}
	if _, _, ok := m.SymbolInfo(id(1, 0)); ok {
		t.Fatal("SymbolInfo answered for a tombstone")
	}
	// Late symbols for the tombstoned record are duplicates, not revivals.
	if m.PutSymbol(id(1, 0), 2, make([]byte, 25), meta, 31*time.Second) {
		t.Fatal("tombstoned record accepted a symbol")
	}
	if !m.Has(id(1, 0)) {
		t.Fatal("tombstone gone too early")
	}
}

// TestSymbolRecordsUnderByteCap checks cap enforcement sees symbol bytes:
// accumulating symbols past MaxBytes evicts oldest records like whole
// payloads do.
func TestSymbolRecordsUnderByteCap(t *testing.T) {
	m := NewMemory(Limits{MaxBytes: 100, MaxMessages: -1, TombstoneFor: time.Second})
	meta := symMeta(2, 2, 80)
	m.PutSymbol(id(1, 0), 0, make([]byte, 40), meta, 0)
	m.PutSymbol(id(1, 0), 1, make([]byte, 40), meta, 0)
	// Second record pushes total to 120 > 100: the older record must go.
	m.PutSymbol(id(1, 1), 0, make([]byte, 40), meta, time.Second)
	if _, _, ok := m.SymbolInfo(id(1, 0)); ok {
		t.Fatal("oldest symbol record survived the byte cap")
	}
	if m.Bytes() > 100 {
		t.Fatalf("Bytes = %d exceeds cap", m.Bytes())
	}
	if _, _, ok := m.SymbolInfo(id(1, 1)); !ok {
		t.Fatal("newest record evicted instead")
	}
}
