package netsim

import (
	"fmt"
	"testing"
	"time"

	"gocast/internal/core"
)

// deliveryRecord is one entry in the run's delivery trace: which node
// delivered which message at which virtual time, in delivery order.
type deliveryRecord struct {
	node int
	id   core.MessageID
	at   time.Duration
}

// runTracedScenario drives one fixed-seed scenario that leans on every
// pooled hot path — gossip rounds and pulls (wire-struct and msgState
// pools), kills and restarts (timer cancellation, lazy queue compaction,
// slab recycling), link churn (neighbor-slot retire/re-add) — and
// returns the full delivery trace plus every node's complete counter set.
func runTracedScenario(seed int64) ([]deliveryRecord, []core.Counters) {
	cfg := core.DefaultConfig()
	c := New(Options{Nodes: 48, Seed: seed, Config: cfg})
	c.BootstrapMembership(cfg.MemberViewSize / 2)
	c.WireRandom(cfg.TargetDegree() / 2)

	var trace []deliveryRecord
	for i := 0; i < c.Nodes(); i++ {
		i := i
		c.Node(i).OnDeliver(func(id core.MessageID, _ []byte, _ time.Duration) {
			trace = append(trace, deliveryRecord{node: i, id: id, at: c.Now()})
		})
	}

	c.Start(0)
	c.Run(60 * time.Second)
	for i := 0; i < 6; i++ {
		c.Inject(i*5, nil)
		c.Run(2 * time.Second)
	}
	// Churn stresses the scheduler's cancellation/compaction paths and the
	// neighbor-slot retire/re-add cycle mid-stream.
	c.Kill(7)
	c.Kill(19)
	c.Run(20 * time.Second)
	c.Restart(7, 3)
	c.Run(10 * time.Second)
	for i := 0; i < 6; i++ {
		c.Inject(i*7+1, nil)
		c.Run(2 * time.Second)
	}
	c.Run(30 * time.Second)

	stats := make([]core.Counters, c.Nodes())
	for i := range stats {
		stats[i] = c.Node(i).Stats()
	}
	return trace, stats
}

// TestDeterminismStatsAndTraces is the pooling regression gate: object
// pools, the 4-ary scheduler, lazy compaction, and neighbor bitmasks must
// not perturb event ordering or RNG draw sequence, so two runs of the
// same seed must agree on every delivery (node, message, virtual time,
// order) and on every node's complete protocol counter set — not just
// aggregate summaries, where compensating drifts could hide.
func TestDeterminismStatsAndTraces(t *testing.T) {
	t1, s1 := runTracedScenario(42)
	t2, s2 := runTracedScenario(42)

	if len(t1) != len(t2) {
		t.Fatalf("delivery trace lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("delivery trace diverges at %d: %+v vs %+v", i, t1[i], t2[i])
		}
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("node %d counters differ across identical runs:\n%+v\nvs\n%+v", i, s1[i], s2[i])
		}
	}
	if len(t1) == 0 {
		t.Fatal("scenario produced no deliveries; determinism check is vacuous")
	}
}

// TestFigureOutputStableAcrossSeeds guards the byte-level contract the
// figure tables rely on: the rendered report for a fixed seed is a pure
// function of the seed. Rendering twice must produce identical bytes.
func TestFigureOutputStableAcrossSeeds(t *testing.T) {
	render := func() string {
		c := New(Options{Nodes: 32, Seed: 9, Config: core.DefaultConfig()})
		c.BootstrapMembership(16)
		c.WireRandom(3)
		c.Start(0)
		c.Run(45 * time.Second)
		c.InjectStream(10, 100, nil)
		c.Run(20 * time.Second)
		h := c.DegreeHistogram()
		return fmt.Sprintf("%v|%v|%v|%d",
			c.Delays().CDF().Quantile(0.5), c.Delays().CDF().Max(),
			h.Fraction(6)+h.Fraction(7), c.SumCounters().GossipsSent)
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("fixed-seed figure rendering differs:\n%s\nvs\n%s", a, b)
	}
}
