package netsim

import (
	"math/rand"

	"gocast/internal/churn"
)

// ChurnOptions binds a declarative churn plan to a simulated cluster.
type ChurnOptions struct {
	// Plan is the seeded Poisson event schedule.
	Plan churn.Plan
	// Protected marks the first Protected slots churn-ineligible: they are
	// never chosen for leave, crash, or restart, so delivery atomicity can
	// be asserted over a stable core while the rest of the system churns.
	Protected int
	// MinAlive skips leave/crash events that would drop the live
	// population below this floor (0 = no floor beyond one node).
	MinAlive int
	// MaxNodes skips join events once the cluster holds this many slots
	// (0 = unbounded growth).
	MaxNodes int
}

// ChurnStats counts what the orchestrator actually did. Events can be
// skipped when no eligible target exists (e.g. a restart with nothing
// dead) or a floor/cap applies.
type ChurnStats struct {
	Joins, Leaves, Crashes, Restarts, Skipped int
}

// Events returns the number of executed (non-skipped) events.
func (s ChurnStats) Events() int { return s.Joins + s.Leaves + s.Crashes + s.Restarts }

// StartChurn schedules the plan's events on the simulation clock, relative
// to now. Targets are chosen at fire time from the then-eligible nodes
// using a stream derived from the plan seed, so a (plan, cluster-seed)
// pair replays identically. The returned stats fill in as the simulation
// advances.
func (c *Cluster) StartChurn(opts ChurnOptions) *ChurnStats {
	st := &ChurnStats{}
	rng := rand.New(rand.NewSource(opts.Plan.Seed ^ 0x00c0ffee))
	for _, ev := range opts.Plan.Schedule() {
		kind := ev.Kind
		c.Engine.After(ev.At, func() { c.churnStep(kind, opts, rng, st) })
	}
	return st
}

func (c *Cluster) churnStep(k churn.Kind, opts ChurnOptions, rng *rand.Rand, st *ChurnStats) {
	minAlive := opts.MinAlive
	if minAlive < 1 {
		minAlive = 1
	}
	switch k {
	case churn.Join:
		if opts.MaxNodes > 0 && len(c.nodes) >= opts.MaxNodes {
			st.Skipped++
			return
		}
		contact := c.pickLive(rng, 0)
		if contact < 0 {
			st.Skipped++
			return
		}
		c.AddNode(contact)
		st.Joins++
	case churn.Leave:
		i := c.pickLive(rng, opts.Protected)
		if i < 0 || c.AliveCount() <= minAlive {
			st.Skipped++
			return
		}
		c.Leave(i)
		st.Leaves++
	case churn.Crash:
		i := c.pickLive(rng, opts.Protected)
		if i < 0 || c.AliveCount() <= minAlive {
			st.Skipped++
			return
		}
		c.Kill(i)
		st.Crashes++
	case churn.Restart:
		i := c.pickDead(rng, opts.Protected)
		contact := c.pickLive(rng, 0)
		if i < 0 || contact < 0 {
			st.Skipped++
			return
		}
		c.Restart(i, contact)
		st.Restarts++
	}
}

// pickLive returns a uniformly random live slot with index >= minIdx, or
// -1 when none qualifies.
func (c *Cluster) pickLive(rng *rand.Rand, minIdx int) int {
	var cand []int
	for i := minIdx; i < len(c.nodes); i++ {
		if c.alive[i] {
			cand = append(cand, i)
		}
	}
	if len(cand) == 0 {
		return -1
	}
	return cand[rng.Intn(len(cand))]
}

// pickDead returns a uniformly random dead slot with index >= minIdx, or
// -1 when none qualifies.
func (c *Cluster) pickDead(rng *rand.Rand, minIdx int) int {
	var cand []int
	for i := minIdx; i < len(c.nodes); i++ {
		if !c.alive[i] {
			cand = append(cand, i)
		}
	}
	if len(cand) == 0 {
		return -1
	}
	return cand[rng.Intn(len(cand))]
}
