package netsim

import (
	"math/rand"
	"testing"
	"time"

	"gocast/internal/core"
)

// testEnv returns a fresh env speaking for node i's current life, for
// driving Cluster.send directly.
func (c *Cluster) testEnv(i int) *env {
	return &env{c: c, sh: c.shards[c.shardOf[i]], id: core.NodeID(i), gen: c.gen[i], rng: rand.New(rand.NewSource(99))}
}

// TestAdmissionCapsShedByClass pins the admission mechanics: each class
// sheds independently once its per-node in-flight cap fills, uncapped
// classes never shed, and delivering a message frees its slot.
func TestAdmissionCapsShedByClass(t *testing.T) {
	c := New(Options{Nodes: 4, Seed: 11, Config: core.DefaultConfig()})
	c.SetAdmission(AdmissionCaps{Repair: 4, Background: 2})
	e := c.testEnv(0)

	for i := 0; i < 10; i++ {
		c.send(e, 1, &core.SyncRequest{}, true)
	}
	for i := 0; i < 10; i++ {
		c.send(e, 1, &core.PullRequest{}, true)
	}
	for i := 0; i < 10; i++ {
		c.send(e, 1, &core.Gossip{}, false)
	}
	sheds := c.AdmissionSheds()
	if got := sheds[core.ClassBackground]; got != 8 {
		t.Errorf("background sheds = %d, want 8 (cap 2 of 10)", got)
	}
	if got := sheds[core.ClassRepair]; got != 6 {
		t.Errorf("repair sheds = %d, want 6 (cap 4 of 10)", got)
	}
	if got := sheds[core.ClassCritical]; got != 0 {
		t.Errorf("critical sheds = %d, want 0 (uncapped)", got)
	}

	// Draining the in-flight deliveries frees the slots: the same burst
	// admits the same prefix again.
	c.Run(time.Second)
	for i := 0; i < 3; i++ {
		c.send(e, 1, &core.SyncRequest{}, true)
	}
	if got := c.AdmissionSheds()[core.ClassBackground]; got != 9 {
		t.Errorf("background sheds after drain = %d, want 9 (2 re-admitted)", got)
	}
}

// TestAdmissionDisabledByDefault guards the hot path: without SetAdmission
// nothing is counted or shed, even under a heavy stream.
func TestAdmissionDisabledByDefault(t *testing.T) {
	cfg := core.DefaultConfig()
	c := New(Options{Nodes: 16, Seed: 12, Config: cfg})
	c.BootstrapMembership(8)
	c.WireRandom(3)
	c.Start(0)
	c.Run(2 * time.Second)
	c.InjectStream(50, 100, []byte("flood"))
	c.Run(5 * time.Second)
	for cls, n := range c.AdmissionSheds() {
		if n != 0 {
			t.Errorf("%v sheds = %d with admission disabled, want 0", cls, n)
		}
	}
	if c.inflight != nil {
		t.Error("inflight counters allocated without SetAdmission")
	}
}

// TestAdmissionFloodProtectsCritical runs a flood against tight Repair and
// Background caps: repair-layer traffic sheds, Critical tree forwards
// never do, and every tracked message still reaches every node — shed
// repair rounds are retried, so admission costs latency, not atomicity.
func TestAdmissionFloodProtectsCritical(t *testing.T) {
	cfg := core.DefaultConfig()
	c := New(Options{Nodes: 24, Seed: 13, Config: cfg})
	c.BootstrapMembership(12)
	c.WireRandom(3)
	c.Start(0)
	c.Run(5 * time.Second) // settle the overlay and tree
	// The Repair cap must leave retry headroom: a pull whose reply is shed
	// retries against other holders, and once it exhausts them the only
	// fallback is sync — whose watermark digest cannot express interior
	// store holes. A cap that starves pulls outright (1-2) turns transient
	// sheds into permanent losses; 8 pressures the flood peak while letting
	// the post-flood retries through.
	c.SetAdmission(AdmissionCaps{Repair: 8, Background: 1})
	c.InjectStream(100, 200, []byte("flood payload"))
	c.Run(60 * time.Second)

	sheds := c.AdmissionSheds()
	if got := sheds[core.ClassCritical]; got != 0 {
		t.Errorf("critical sheds = %d under flood, want 0", got)
	}
	if sheds[core.ClassRepair] == 0 {
		t.Error("repair sheds = 0, flood never pressured the caps")
	}
	if v := c.AtomicityViolations(10 * time.Second); v != 0 {
		t.Errorf("atomicity violations = %d with admission caps, want 0", v)
	}
	t.Logf("sheds under flood: critical=%d repair=%d background=%d",
		sheds[core.ClassCritical], sheds[core.ClassRepair], sheds[core.ClassBackground])
}
