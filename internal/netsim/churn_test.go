package netsim

import (
	"testing"
	"time"

	"gocast/internal/core"
)

func TestAddNodeJoinsAndReceives(t *testing.T) {
	cfg := core.DefaultConfig()
	c := buildCluster(t, 48, cfg, 20)
	c.Run(60 * time.Second)
	idx := c.AddNode(5)
	c.Run(60 * time.Second)
	n := c.Node(idx)
	if d := n.Degree(); d < cfg.TargetDegree()-1 {
		t.Fatalf("joiner degree = %d, want near %d", d, cfg.TargetDegree())
	}
	if _, attached := n.DistToRoot(); !attached {
		t.Fatalf("joiner never attached to the tree")
	}
	c.Inject(0, nil)
	c.Run(5 * time.Second)
	if rec := c.Delays(); rec.Misses() != 0 {
		t.Fatalf("misses with joiner present = %d", rec.Misses())
	}
}

func TestGracefulLeaveCleansNeighbors(t *testing.T) {
	cfg := core.DefaultConfig()
	c := buildCluster(t, 32, cfg, 21)
	c.Run(60 * time.Second)
	leaver := 9
	peers := c.Node(leaver).Neighbors()
	if len(peers) == 0 {
		t.Fatalf("node %d has no neighbors to notify", leaver)
	}
	c.Leave(leaver)
	c.Run(5 * time.Second)
	for _, p := range peers {
		for _, nb := range c.Node(int(p.ID)).Neighbors() {
			if int(nb.ID) == leaver {
				t.Fatalf("node %d still lists the departed node", p.ID)
			}
		}
	}
	c.Inject(c.randomLive(), nil)
	c.Run(5 * time.Second)
	if rec := c.Delays(); rec.Misses() != 0 {
		t.Fatalf("misses after graceful leave = %d", rec.Misses())
	}
}

func TestContinuousChurnKeepsDelivering(t *testing.T) {
	cfg := core.DefaultConfig()
	c := buildCluster(t, 48, cfg, 22)
	c.Run(60 * time.Second)
	// Interleave joins, graceful leaves, crashes, and messages.
	for round := 0; round < 6; round++ {
		switch round % 3 {
		case 0:
			c.AddNode(0)
		case 1:
			if v := c.randomLive(); v != 0 {
				c.Leave(v)
			}
		case 2:
			if v := c.randomLive(); v != 0 {
				c.Kill(v)
			}
		}
		c.Run(20 * time.Second)
		c.Inject(c.randomLive(), nil)
		c.Run(10 * time.Second)
	}
	rec := c.Delays()
	if rec.Misses() != 0 {
		t.Fatalf("misses under churn = %d (delivered %d)", rec.Misses(), rec.Count())
	}
	// Degrees must still be controlled after churn.
	h := c.DegreeHistogram()
	if h.Mean() > float64(cfg.TargetDegree())+1.5 {
		t.Errorf("mean degree after churn = %.2f, want near %d", h.Mean(), cfg.TargetDegree())
	}
	if q := c.LargestComponentRatio(); q < 1 {
		t.Errorf("overlay disconnected after churn: q=%.3f", q)
	}
}

func TestJoinDuringMessageStream(t *testing.T) {
	cfg := core.DefaultConfig()
	c := buildCluster(t, 32, cfg, 23)
	c.Run(60 * time.Second)
	c.InjectStream(50, 50, nil)
	c.Run(500 * time.Millisecond) // mid-stream
	c.AddNode(3)
	c.Run(30 * time.Second)
	// Messages injected before the join must not count the newcomer as a
	// miss; messages after it joined may reach it.
	rec := c.Delays()
	if rec.Misses() != 0 {
		t.Fatalf("misses = %d; late joiner must not be charged for old messages", rec.Misses())
	}
}
