package netsim

import (
	"testing"
	"time"

	"gocast/internal/churn"
	"gocast/internal/core"
)

func TestRestartRejoinsWithBumpedIncarnation(t *testing.T) {
	cfg := core.DefaultConfig()
	c := buildCluster(t, 32, cfg, 30)
	c.Run(60 * time.Second)

	victim := 9
	c.Kill(victim)
	c.Run(20 * time.Second)
	c.Restart(victim, 3)
	if got := c.Incarnation(victim); got != 1 {
		t.Fatalf("incarnation after restart = %d, want 1", got)
	}
	c.Run(90 * time.Second)

	n := c.Node(victim)
	if d := n.Degree(); d < cfg.TargetDegree()-1 {
		t.Errorf("restarted node degree = %d, want near %d", d, cfg.TargetDegree())
	}
	if _, attached := n.DistToRoot(); !attached {
		t.Errorf("restarted node never re-attached to the tree")
	}
	// No live node may hold a link to the victim's dead past life.
	for i := 0; i < c.Nodes(); i++ {
		if !c.Alive(i) || i == victim {
			continue
		}
		for _, nb := range c.Node(i).Neighbors() {
			if int(nb.ID) == victim && nb.Inc != 1 {
				t.Errorf("node %d linked to %d under incarnation %d, want 1", i, victim, nb.Inc)
			}
		}
	}
	if s := c.StaleLinks(); s != 0 {
		t.Errorf("stale links after restart settle = %d, want 0", s)
	}
	if got := c.SumCounters().RejoinsObserved; got == 0 {
		t.Errorf("no node observed the rejoin (RejoinsObserved = 0)")
	}
	if c.Restarts() != 1 {
		t.Errorf("Restarts() = %d, want 1", c.Restarts())
	}
	// The restart counts as a tree repair once the node re-attaches.
	if c.TreeRepairs().Count() == 0 {
		t.Errorf("no tree-repair latency recorded for the restart")
	}

	// The rejoined node participates in multicast again.
	c.Inject(0, nil)
	c.Run(5 * time.Second)
	if rec := c.Delays(); rec.Misses() != 0 {
		t.Fatalf("misses after restart = %d", rec.Misses())
	}
}

func TestRestartSoonAfterCrashIsClean(t *testing.T) {
	// Restarting before neighbors even detect the crash must not wedge the
	// overlay: dead-life timers are inert and detection of the old life's
	// broken connections is suppressed once the new life exists.
	cfg := core.DefaultConfig()
	c := buildCluster(t, 24, cfg, 31)
	c.Run(60 * time.Second)
	c.Kill(5)
	c.Run(100 * time.Millisecond) // well under DetectionDelay
	c.Restart(5, 0)
	c.Run(90 * time.Second)
	if s := c.StaleLinks(); s != 0 {
		t.Errorf("stale links = %d, want 0", s)
	}
	if q := c.LargestComponentRatio(); q < 1 {
		t.Errorf("overlay disconnected after quick restart: q=%.3f", q)
	}
	if d := c.Node(5).Degree(); d < cfg.TargetDegree()-1 {
		t.Errorf("quickly-restarted node degree = %d, want near %d", d, cfg.TargetDegree())
	}
}

func TestChurnOrchestratorDeterministic(t *testing.T) {
	plan := churn.Plan{
		Seed:          99,
		Duration:      5 * time.Minute,
		JoinPerMin:    1,
		LeavePerMin:   1,
		CrashPerMin:   2,
		RestartPerMin: 2,
	}
	run := func() (*Cluster, *ChurnStats) {
		c := buildCluster(t, 40, core.DefaultConfig(), 32)
		c.Run(60 * time.Second)
		st := c.StartChurn(ChurnOptions{Plan: plan, Protected: 8, MinAlive: 24, MaxNodes: 56})
		c.Run(plan.Duration)
		return c, st
	}
	c1, s1 := run()
	c2, s2 := run()
	if *s1 != *s2 {
		t.Fatalf("churn stats differ across identical runs: %+v vs %+v", *s1, *s2)
	}
	if s1.Events() == 0 {
		t.Fatalf("orchestrator executed no events: %+v", *s1)
	}
	if c1.Nodes() != c2.Nodes() {
		t.Fatalf("cluster sizes differ: %d vs %d", c1.Nodes(), c2.Nodes())
	}
	for i := 0; i < c1.Nodes(); i++ {
		if c1.Alive(i) != c2.Alive(i) || c1.Incarnation(i) != c2.Incarnation(i) {
			t.Fatalf("node %d state differs: alive %v/%v inc %d/%d",
				i, c1.Alive(i), c2.Alive(i), c1.Incarnation(i), c2.Incarnation(i))
		}
	}
	// Protected nodes must never have churned.
	for i := 0; i < 8; i++ {
		if !c1.Alive(i) || c1.Incarnation(i) != 0 {
			t.Errorf("protected node %d churned: alive=%v inc=%d", i, c1.Alive(i), c1.Incarnation(i))
		}
	}
}

// TestChurnSoak is the acceptance soak from the issue: >=50 sim nodes,
// >=30 virtual minutes of mixed crash/restart/leave/join churn at >=5
// events/min, with multicasts flowing throughout. It asserts zero
// atomicity violations among nodes that were stably up, overlay-degree
// recovery, and that no link ever settles on a dead incarnation.
func TestChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("churn soak skipped in -short mode")
	}
	cfg := core.DefaultConfig()
	const (
		nodes     = 60
		protected = 12
	)
	c := buildCluster(t, nodes, cfg, 33)
	c.Run(60 * time.Second)

	plan := churn.Plan{
		Seed:          77,
		Duration:      30 * time.Minute,
		JoinPerMin:    1,
		LeavePerMin:   1.5,
		CrashPerMin:   1.5,
		RestartPerMin: 2,
	}
	if plan.EventsPerMinute() < 5 {
		t.Fatalf("plan rate %.1f/min below the 5/min floor", plan.EventsPerMinute())
	}
	st := c.StartChurn(ChurnOptions{Plan: plan, Protected: protected, MinAlive: 40, MaxNodes: 90})

	// A multicast every 10 virtual seconds from a rotating stable source.
	for k := 0; int(k)*10 < int(plan.Duration/time.Second); k++ {
		src := k % protected
		c.Engine.After(time.Duration(k)*10*time.Second, func() { c.Inject(src, nil) })
	}

	c.Run(plan.Duration)
	// Let repair finish after the last event before judging state.
	c.Run(3 * time.Minute)

	if st.Events() == 0 || st.Restarts == 0 || st.Crashes == 0 || st.Leaves == 0 || st.Joins == 0 {
		t.Fatalf("soak did not exercise all event kinds: %+v", *st)
	}
	t.Logf("churn: %+v; cluster grew to %d slots, %d alive", *st, c.Nodes(), c.AliveCount())

	if v := c.AtomicityViolations(30 * time.Second); v != 0 {
		t.Errorf("atomicity violations among stably-up nodes = %d, want 0", v)
	}
	if s := c.StaleLinks(); s != 0 {
		t.Errorf("links to dead incarnations at end of soak = %d, want 0", s)
	}
	if q := c.LargestComponentRatio(); q < 1 {
		t.Errorf("overlay disconnected after soak: q=%.3f", q)
	}

	// Degree recovery: random degrees back at C..C+1 for nearly everyone,
	// and no live node far from target total degree.
	rh := c.RandDegreeHistogram()
	if got := rh.Fraction(cfg.CRand) + rh.Fraction(cfg.CRand+1); got < 0.9 {
		t.Errorf("fraction at random degree C..C+1 after soak = %.2f, want >= 0.9", got)
	}
	for i := 0; i < c.Nodes(); i++ {
		if !c.Alive(i) {
			continue
		}
		if d := c.Node(i).Degree(); d < cfg.TargetDegree()-2 || d > cfg.TargetDegree()+3 {
			t.Errorf("node %d degree %d far from target %d after soak", i, d, cfg.TargetDegree())
		}
	}

	rep := c.TreeRepairs()
	if rep.Count() == 0 {
		t.Errorf("no tree repairs recorded during soak")
	} else {
		cdf := rep.CDF()
		t.Logf("tree repairs: %d, p50=%v p99=%v", rep.Count(), cdf.Quantile(0.5), cdf.Quantile(0.99))
	}
	t.Logf("redelivered across restarts: %d", c.Redelivered())
	cnt := c.SumCounters()
	t.Logf("stale-inc rejects=%d obits recorded=%d honored=%d stale links dropped=%d rejoins=%d self-refutes=%d",
		cnt.StaleIncRejects, cnt.ObitsRecorded, cnt.ObitsHonored, cnt.StaleLinksDropped, cnt.RejoinsObserved, cnt.SelfRefutes)
}
