// Package netsim runs GoCast nodes (and baseline protocols) on the
// discrete-event simulator over a wide-area latency matrix, reproducing
// the methodology of the paper's evaluation: an event-driven simulation of
// message propagation, node failure, topology, and link latency, without
// packet-level detail.
package netsim

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"gocast/internal/core"
	"gocast/internal/dtrace"
	"gocast/internal/graph"
	"gocast/internal/latency"
	"gocast/internal/metrics"
	"gocast/internal/sim"
	"gocast/internal/trace"
)

// Observer sees every simulated transmission, letting experiments account
// traffic (e.g. per-underlay-link stress).
type Observer func(from, to core.NodeID, m core.Message)

// Options configures a simulated cluster.
type Options struct {
	// Nodes is the system size.
	Nodes int
	// Seed drives all randomness in the run.
	Seed int64
	// Config is the per-node protocol configuration.
	Config core.Config
	// Matrix provides pairwise latencies; synthesized from Seed when nil.
	// When Nodes exceeds the number of sites, multiple nodes share a site
	// (as in the paper, which had more nodes than measured DNS servers).
	Matrix *latency.Matrix
	// DetectionDelay is how long after a peer's death its overlay
	// neighbors get a connection-break notification (TCP reset model).
	DetectionDelay time.Duration
	// Observer, if set, sees every transmission.
	Observer Observer
	// Tracer, if set, records protocol events (link changes, parent
	// changes, deliveries) for debugging.
	Tracer *trace.Buffer
	// Spans, if set, collects dissemination trace spans from every node
	// (see internal/dtrace; sampling is controlled by
	// Config.TraceSampleEvery). The engine is single-threaded and virtual
	// time is globally comparable, so one shared buffer stitches exactly.
	Spans *dtrace.Buffer
	// Shards requests conservative parallel execution: nodes are
	// partitioned into region shards along the latency matrix's
	// geographic clusters, each shard advances on its own event engine
	// within latency-bounded lookahead windows, and cross-shard sends are
	// injected at window barriers (DESIGN.md §15). Results are identical
	// to a sequential run at the same seed regardless of the shard count.
	// 0 or 1 runs sequentially. The effective count may be lower than
	// requested (few sites, or no positive inter-shard latency floor —
	// e.g. every node on one site — falls back to sequential); clusters
	// with an Observer, Tracer, or Spans buffer always run sequentially,
	// since those record from inside node callbacks and assume a single
	// thread. Admission caps and link faults are incompatible with
	// sharded execution (SetAdmission / SetFaults panic).
	Shards int
}

// Cluster is a simulated GoCast deployment.
type Cluster struct {
	// Engine is the control engine: the clock the driver schedules
	// against (injection streams, churn plans, failure timers). In
	// sequential runs it is also the node engine; in sharded runs node
	// events live on per-shard engines and control events fire only at
	// window barriers, while every engine's clock agrees whenever the
	// driver can observe it.
	Engine *sim.Engine
	Matrix *latency.Matrix

	// shards holds the per-shard execution state (engine, pools,
	// outboxes); sequential runs have exactly one, sharing Engine.
	// shardOf maps each node slot to its shard, fixed at creation from
	// the node's site. group coordinates parallel windows (nil when
	// sequential). keySeq issues each slot's canonical event keys; it is
	// never reset (not even by Restart) so keys stay globally unique.
	shards  []*simShard
	shardOf []int
	group   *sim.ShardGroup
	keySeq  []uint32
	// cachedSiteShard is the site→shard assignment from latency.Partition
	// (all zeros when sequential), kept for nodes added at runtime.
	cachedSiteShard []int

	opts   Options
	rng    *rand.Rand
	siteOf []int
	nodes  []*core.Node
	alive  []bool
	joined []time.Duration // when each node's current life entered the system
	// firstJoin is when the slot first entered the system, never reset by
	// Restart — the baseline for judging whether a restarted node caught
	// up on messages its dead life missed (RecoveryViolations).
	firstJoin []time.Duration
	detect    bool
	linkLog   *metrics.TimeSeries // optional link-change recording

	// Churn state. incar is each node's current incarnation (bumped on
	// Restart); gen counts lives so that timers armed by a dead past life
	// can never fire into the new one.
	incar    []uint32
	gen      []int
	restarts int

	// Delivery accounting. recv rows are appended only between windows
	// (Inject runs on the control clock); cells are written by the
	// receiving node's shard, one writer per cell. redelivered is atomic
	// because two shards may count duplicates concurrently.
	msgIndex    map[core.MessageID]int
	msgIDs      []core.MessageID
	injectTimes []time.Duration
	sources     []int
	recv        [][]time.Duration // [msg][node] delivery time, -1 = never
	redelivered atomic.Int64      // deliveries repeated across a node's lives

	// Admission control (see SetAdmission). inflight counts each node's
	// queued inbound transmissions per class; over-cap sends are shed at
	// the sender, mirroring the live mailbox's prioritized admission so
	// flood scenarios reproduce deterministically in simulation.
	admission AdmissionCaps
	inflight  [][core.NumClasses]int
	admShed   [core.NumClasses]int64

	// Link-fault state (see faults.go). nil = no faults active.
	faults     *faultState
	faultStats FaultStats

	// Tree-repair accounting: when a node's parent becomes None, the
	// detach time is noted; the next re-attach records the repair latency.
	// detachedAt cells have one writer (the node's shard, or the fence);
	// the shared recorder needs the mutex because any shard may append.
	detachedAt []time.Duration
	repairs    *metrics.DelayRecorder
	repairMu   sync.Mutex
}

// simShard is one shard's execution state: its event engine, the
// free lists for the hot-path simulation records, and the outboxes
// buffering cross-shard sends until the next window barrier. Sequential
// clusters have exactly one shard whose engine is Cluster.Engine, so
// the hot path is the same code either way. Each engine is
// single-threaded, so plain slices suffice for the free lists:
// deliveryFree recycles the per-send delivery records (each with a
// prebuilt closure, so a send schedules without allocating); wrapFree
// recycles the env.After wrapper records that guard callbacks with the
// life check. The wire pools recycle Gossip/Multicast/PullRequest
// structs handed to core via the MessagePool capability and released
// after delivery — a struct sent across shards is released into (and
// thereafter recycled by) the receiver's shard, which is safe because
// ownership transfers at a barrier.
type simShard struct {
	idx int
	eng *sim.Engine

	// outbox[d] buffers sends destined for shard d; drained into d's
	// engine at each barrier. Never touched for d == idx.
	outbox [][]crossEvent

	deliveryFree []*delivery
	wrapFree     []*timerWrap
	gossipFree   []*core.Gossip
	mcFree       []*core.Multicast
	prFree       []*core.PullRequest
}

// crossEvent is one buffered cross-shard transmission: everything the
// destination shard needs to schedule the delivery under the same
// timestamp and canonical key the sender computed.
type crossEvent struct {
	at   time.Duration
	key  uint64
	from core.NodeID
	to   core.NodeID
	m    core.Message
}

// New builds a cluster; nodes are created but idle until Start.
func New(opts Options) *Cluster {
	if opts.Nodes <= 0 {
		panic("netsim: cluster needs at least one node")
	}
	if opts.DetectionDelay <= 0 {
		opts.DetectionDelay = time.Second
	}
	eng := sim.NewEngine(opts.Seed)
	mat := opts.Matrix
	if mat == nil {
		sites := opts.Nodes
		if sites > latency.KingSites {
			sites = latency.KingSites
		}
		mat = latency.Synthesize(sites, opts.Seed)
	}
	c := &Cluster{
		Engine:     eng,
		Matrix:     mat,
		opts:       opts,
		rng:        rand.New(rand.NewSource(opts.Seed ^ 0x5ca1ab1e)),
		siteOf:     make([]int, opts.Nodes),
		shardOf:    make([]int, opts.Nodes),
		keySeq:     make([]uint32, opts.Nodes),
		nodes:      make([]*core.Node, opts.Nodes),
		alive:      make([]bool, opts.Nodes),
		joined:     make([]time.Duration, opts.Nodes),
		firstJoin:  make([]time.Duration, opts.Nodes),
		incar:      make([]uint32, opts.Nodes),
		gen:        make([]int, opts.Nodes),
		detachedAt: make([]time.Duration, opts.Nodes),
		detect:     true,
		msgIndex:   make(map[core.MessageID]int),
		repairs:    metrics.NewDelayRecorder(),
	}
	c.buildShards()
	for i := 0; i < opts.Nodes; i++ {
		c.siteOf[i] = i % mat.Sites()
		c.shardOf[i] = c.siteShard()[c.siteOf[i]]
		c.alive[i] = true
		c.detachedAt[i] = -1
		c.nodes[i] = c.buildNode(i)
	}
	for _, n := range c.nodes {
		n.SetLandmarks(c.landmarkEntries())
	}
	return c
}

// buildShards partitions the latency matrix's sites and constructs the
// per-shard engines and the window coordinator. Requests that cannot be
// honored — one shard, observers that record from inside node callbacks,
// or a matrix with no positive inter-shard latency floor — fall back to
// a single shard sharing the control engine (plain sequential execution).
func (c *Cluster) buildShards() {
	want := c.opts.Shards
	if c.opts.Observer != nil || c.opts.Tracer != nil || c.opts.Spans != nil {
		want = 1
	}
	var siteShard []int
	var minOut []time.Duration
	if want > 1 {
		siteShard, minOut = latency.Partition(c.Matrix, want)
	}
	if len(minOut) <= 1 {
		sh := &simShard{idx: 0, eng: c.Engine, outbox: make([][]crossEvent, 1)}
		c.shards = []*simShard{sh}
		c.cachedSiteShard = make([]int, c.Matrix.Sites())
		return
	}
	c.cachedSiteShard = siteShard
	engines := make([]*sim.Engine, len(minOut))
	c.shards = make([]*simShard, len(minOut))
	for s := range c.shards {
		engines[s] = sim.NewEngine(c.opts.Seed ^ int64(0x5aa5<<8|s))
		c.shards[s] = &simShard{idx: s, eng: engines[s], outbox: make([][]crossEvent, len(minOut))}
	}
	c.group = sim.NewShardGroup(c.Engine, engines, minOut, c.drainCross)
}

// siteShard returns the site→shard assignment chosen at construction.
func (c *Cluster) siteShard() []int { return c.cachedSiteShard }

// EffectiveShards returns how many shards the cluster actually runs
// (1 = sequential), which may be fewer than Options.Shards requested.
func (c *Cluster) EffectiveShards() int { return len(c.shards) }

// ExecutedEvents returns the total number of simulation events fired
// across the control engine and every shard engine.
func (c *Cluster) ExecutedEvents() uint64 {
	total := c.Engine.Executed()
	if c.group != nil {
		for _, sh := range c.shards {
			total += sh.eng.Executed()
		}
	}
	return total
}

// nextKey issues slot id's next canonical event key: slot-major, with a
// per-slot monotonic counter that survives restarts. Keys order
// same-instant events identically on every engine, which is what makes
// sharded results byte-identical to sequential ones (see sim.ScheduleKeyed).
// Only slot id's own shard (or the fence) draws keys for id, so the
// counters need no synchronization.
func (c *Cluster) nextKey(id core.NodeID) uint64 {
	c.keySeq[id]++
	return uint64(uint32(id)+1)<<32 | uint64(c.keySeq[id])
}

// drainCross injects every buffered cross-shard send into its
// destination shard's engine. The group calls it only at barriers, when
// all shard goroutines are parked, so it may touch every shard freely.
func (c *Cluster) drainCross() {
	for _, src := range c.shards {
		for dst, evs := range src.outbox {
			if len(evs) == 0 {
				continue
			}
			d := c.shards[dst]
			for i := range evs {
				ev := &evs[i]
				dl := d.getDelivery(c)
				dl.from, dl.to, dl.m = ev.from, ev.to, ev.m
				dl.cls, dl.counted = 0, false
				d.eng.ScheduleKeyed(ev.at, ev.key, dl.run)
				ev.m = nil
			}
			src.outbox[dst] = evs[:0]
		}
	}
}

// buildNode constructs a protocol instance for slot i with a fresh env of
// the slot's current generation and wires the delivery, tree-repair, and
// trace observers. It does not start the node.
func (c *Cluster) buildNode(i int) *core.Node {
	sh := c.shards[c.shardOf[i]]
	e := &env{c: c, sh: sh, id: core.NodeID(i), gen: c.gen[i], rng: rand.New(rand.NewSource(c.rng.Int63()))}
	n := core.New(core.NodeID(i), c.opts.Config, e)
	n.SetIncarnation(c.incar[i])
	idx := i
	n.OnDeliver(func(id core.MessageID, _ []byte, _ time.Duration) {
		c.recordDelivery(id, idx, sh.eng.Now())
		if tb := c.opts.Tracer; tb != nil {
			tb.Addf(c.Engine.Now(), trace.KindDeliver, int32(idx), int32(id.Source), "msg=%s", id)
		}
	})
	n.OnParentChange(func(old, new core.NodeID) {
		c.noteParentChange(idx, new, sh.eng.Now())
		if tb := c.opts.Tracer; tb != nil {
			tb.Addf(c.Engine.Now(), trace.KindParentChange, int32(idx), int32(new), "old=%d", old)
		}
	})
	if tb := c.opts.Tracer; tb != nil {
		n.OnLinkChange(func(added bool, kind core.LinkKind, peer core.NodeID, rtt time.Duration) {
			k := trace.KindLinkDown
			if added {
				k = trace.KindLinkUp
			}
			tb.Addf(c.Engine.Now(), k, int32(idx), int32(peer), "%s rtt=%v", kind, rtt)
		})
	}
	if c.opts.Spans != nil {
		n.SetObserver(&spanSink{buf: c.opts.Spans})
	}
	return n
}

// spanSink is the observer netsim installs when Options.Spans is set: it
// forwards dissemination trace spans to the shared buffer and ignores the
// metric hooks (the simulator has its own accounting).
type spanSink struct {
	buf *dtrace.Buffer
}

func (s *spanSink) ObserveSpan(sp dtrace.Span)                     { s.buf.Record(sp) }
func (s *spanSink) ObserveTreeForward(time.Duration)               {}
func (s *spanSink) ObserveGossipRound(time.Duration)               {}
func (s *spanSink) ObservePullRTT(time.Duration)                   {}
func (s *spanSink) ObserveSyncPage(int, int64)                     {}
func (s *spanSink) ObserveTreeRepair(time.Duration)                {}
func (s *spanSink) ObserveStoreGC(int, int, time.Duration)         {}
func (s *spanSink) ObserveReassembly(time.Duration)                {}
func (s *spanSink) Event(core.ObsEvent, core.NodeID, int64, int64) {}

// Spans snapshots the cluster-wide dissemination span buffer (nil Options.
// Spans yields nil).
func (c *Cluster) Spans() []dtrace.Span {
	if c.opts.Spans == nil {
		return nil
	}
	return c.opts.Spans.Snapshot()
}

// landmarkEntries returns the landmark set (the first LandmarkCount slots)
// with each landmark's current incarnation.
func (c *Cluster) landmarkEntries() []core.Entry {
	lc := c.opts.Config.LandmarkCount
	if lc > len(c.nodes) {
		lc = len(c.nodes)
	}
	lms := make([]core.Entry, lc)
	for i := range lms {
		lms[i] = core.Entry{ID: core.NodeID(i), Inc: c.incar[i]}
	}
	return lms
}

// noteParentChange tracks tree-repair latency: the time from losing the
// parent (or restarting) to re-attaching anywhere. now is the clock of
// the shard the change happened on; detachedAt[i] has a single writer
// at any time, but the recorder is shared across shards.
func (c *Cluster) noteParentChange(i int, newParent core.NodeID, now time.Duration) {
	if newParent == core.None {
		if c.detachedAt[i] < 0 {
			c.detachedAt[i] = now
		}
		return
	}
	if c.detachedAt[i] >= 0 {
		c.repairMu.Lock()
		c.repairs.Add(now - c.detachedAt[i])
		c.repairMu.Unlock()
		c.detachedAt[i] = -1
	}
}

// Node returns the i-th node (for inspection; drive it only through the
// cluster to preserve determinism).
func (c *Cluster) Node(i int) *core.Node { return c.nodes[i] }

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Alive reports whether node i is alive.
func (c *Cluster) Alive(i int) bool { return c.alive[i] }

// AliveCount returns the number of live nodes.
func (c *Cluster) AliveCount() int {
	n := 0
	for _, a := range c.alive {
		if a {
			n++
		}
	}
	return n
}

// OneWay returns the simulated one-way latency between two nodes.
func (c *Cluster) OneWay(i, j int) time.Duration {
	return c.Matrix.OneWay(c.siteOf[i], c.siteOf[j])
}

// RTT returns the simulated round-trip time between two nodes.
func (c *Cluster) RTT(i, j int) time.Duration { return 2 * c.OneWay(i, j) }

// BootstrapMembership gives every node a uniformly random partial view of
// the given size (distinct entries, sampled without replacement), as the
// membership protocol would have established.
func (c *Cluster) BootstrapMembership(viewSize int) {
	n := len(c.nodes)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < n; i++ {
		// Partial Fisher-Yates: the first viewSize entries of perm become
		// a uniform sample without replacement.
		k := viewSize
		if k > n-1 {
			k = n - 1
		}
		taken := 0
		for pos := 0; taken < k && pos < n; pos++ {
			swap := pos + c.rng.Intn(n-pos)
			perm[pos], perm[swap] = perm[swap], perm[pos]
			if perm[pos] == i {
				continue
			}
			c.learn(i, perm[pos])
			taken++
		}
	}
}

func (c *Cluster) learn(i, j int) {
	c.nodes[i].SeedMembers([]core.Entry{{ID: core.NodeID(j)}})
}

// WireRandom creates the paper's initial topology: every node initiates
// `initiate` connections to distinct random nodes, classified as random
// links (the adaptation protocols then reshape the overlay). Average
// degree after wiring is 2*initiate.
func (c *Cluster) WireRandom(initiate int) {
	n := len(c.nodes)
	type pair struct{ a, b int }
	linked := make(map[pair]bool)
	for i := 0; i < n; i++ {
		// Bound retries so a small cluster that cannot satisfy the target
		// (initiate*n > C(n,2) pairs) wires what it can instead of spinning.
		retries := 4 * n
		for k := 0; k < initiate && retries > 0; k++ {
			j := c.rng.Intn(n)
			a, b := i, j
			if a > b {
				a, b = b, a
			}
			if i == j || linked[pair{a, b}] {
				k-- // retry
				retries--
				continue
			}
			linked[pair{a, b}] = true
			c.WireLink(i, j, core.Random)
		}
	}
}

// WireLink installs one overlay link directly at both endpoints.
func (c *Cluster) WireLink(i, j int, kind core.LinkKind) {
	rtt := c.RTT(i, j)
	c.nodes[i].AddNeighborDirect(core.Entry{ID: core.NodeID(j)}, kind, rtt)
	c.nodes[j].AddNeighborDirect(core.Entry{ID: core.NodeID(i)}, kind, rtt)
}

// Start designates node `root` as the tree root and starts every node.
func (c *Cluster) Start(root int) {
	c.nodes[root].BecomeRoot()
	for _, n := range c.nodes {
		n.Start()
	}
}

// Run advances the simulation by d. Sharded clusters run the window
// protocol; sequential ones drive the engine directly. Either way every
// engine's clock ends parked at the same instant and all events due in
// the interval have fired, so Run calls can be freely interleaved with
// driver calls (Inject, Kill, ...).
func (c *Cluster) Run(d time.Duration) {
	target := c.Engine.Now() + d
	if c.group != nil {
		c.group.Run(target)
		return
	}
	c.Engine.Run(target)
}

// Now returns the current simulated time.
func (c *Cluster) Now() time.Duration { return c.Engine.Now() }

// SetMaintenance toggles maintenance on every live node; the paper's
// stress tests disable all repair before killing nodes.
func (c *Cluster) SetMaintenance(on bool) {
	for i, n := range c.nodes {
		if c.alive[i] {
			n.SetMaintenance(on)
		}
	}
}

// SetDetection toggles connection-break notifications.
func (c *Cluster) SetDetection(on bool) { c.detect = on }

// AdmissionCaps bounds each node's in-flight inbound transmissions per
// message class; 0 leaves a class unbounded. It is the simulation mirror
// of the live mailbox's prioritized lanes: Background should carry the
// smallest cap so it sheds first under flood, Critical the largest (or
// none) so tree traffic survives.
type AdmissionCaps struct {
	Critical   int
	Repair     int
	Background int
}

func (a AdmissionCaps) capFor(cls core.Class) int {
	switch cls {
	case core.ClassCritical:
		return a.Critical
	case core.ClassRepair:
		return a.Repair
	default:
		return a.Background
	}
}

// SetAdmission installs per-node per-class in-flight caps; the zero value
// disables admission control (the default). Over-cap sends are shed at
// the sender and counted in AdmissionSheds.
func (c *Cluster) SetAdmission(caps AdmissionCaps) {
	if len(c.shards) > 1 && caps != (AdmissionCaps{}) {
		panic("netsim: admission caps require sequential execution (Options.Shards <= 1)")
	}
	c.admission = caps
	if c.inflight == nil && caps != (AdmissionCaps{}) {
		c.inflight = make([][core.NumClasses]int, len(c.nodes))
	}
}

// AdmissionSheds returns how many transmissions each class has shed to
// admission caps since the cluster was built.
func (c *Cluster) AdmissionSheds() map[core.Class]int64 {
	out := make(map[core.Class]int64, core.NumClasses)
	for cls := core.Class(0); cls < core.NumClasses; cls++ {
		out[cls] = c.admShed[cls]
	}
	return out
}

// Kill fails node i immediately: its timers stop, queued and future
// traffic to and from it is dropped. If detection is enabled its overlay
// neighbors learn of the break after DetectionDelay.
func (c *Cluster) Kill(i int) {
	if !c.alive[i] {
		return
	}
	neighbors := c.nodes[i].Neighbors()
	c.alive[i] = false
	c.detachedAt[i] = -1
	c.nodes[i].Stop()
	if !c.detect {
		return
	}
	genAtKill := c.gen[i]
	at := c.Engine.Now() + c.opts.DetectionDelay
	for _, nb := range neighbors {
		peer := int(nb.ID)
		// The notification is an event of the peer, so it is scheduled on
		// the peer's shard engine (Kill runs at a fence, where all engine
		// clocks agree). Unkeyed: control events sort before node events
		// at the same instant on every engine, identically in both modes.
		c.shards[c.shardOf[peer]].eng.Schedule(at, func() {
			// Skip if the dead node already restarted: the peer's broken
			// connection belonged to the old life, and the new life holds
			// (or is negotiating) a distinct one.
			if c.alive[peer] && c.gen[i] == genAtKill {
				c.nodes[peer].PeerDown(core.NodeID(i))
			}
		})
	}
}

// KillFraction kills ceil(frac*n) uniformly random live nodes and returns
// their indexes.
func (c *Cluster) KillFraction(frac float64) []int {
	var live []int
	for i, a := range c.alive {
		if a {
			live = append(live, i)
		}
	}
	k := int(frac*float64(len(live)) + 0.5)
	c.rng.Shuffle(len(live), func(a, b int) { live[a], live[b] = live[b], live[a] })
	killed := live[:k]
	for _, i := range killed {
		c.Kill(i)
	}
	return killed
}

// AddNode grows the system at runtime: a fresh node is created, started,
// and joins the overlay through `contact` using the join protocol
// (Section 2.2.1). It returns the new node's index.
func (c *Cluster) AddNode(contact int) int {
	i := len(c.nodes)
	c.siteOf = append(c.siteOf, i%c.Matrix.Sites())
	c.shardOf = append(c.shardOf, c.cachedSiteShard[i%c.Matrix.Sites()])
	c.keySeq = append(c.keySeq, 0)
	c.alive = append(c.alive, true)
	c.joined = append(c.joined, c.Engine.Now())
	c.firstJoin = append(c.firstJoin, c.Engine.Now())
	c.incar = append(c.incar, 0)
	c.gen = append(c.gen, 0)
	c.detachedAt = append(c.detachedAt, -1)
	// Extend existing delivery rows so the newcomer can be accounted for
	// messages injected after it joined (rows injected before stay -1).
	for m := range c.recv {
		c.recv[m] = append(c.recv[m], -1)
	}
	c.nodes = append(c.nodes, nil)
	n := c.buildNode(i)
	c.nodes[i] = n
	n.SetLandmarks(c.landmarkEntries())
	n.Start()
	n.Join(core.Entry{ID: core.NodeID(contact), Inc: c.incar[contact]})
	return i
}

// Restart revives a dead node under the same ID with a bumped incarnation:
// a brand-new protocol instance (empty view, empty overlay, fresh delivery
// dedup state) that re-measures landmarks and rejoins through `contact`.
// Timers and in-flight sends belonging to the dead past life are inert.
func (c *Cluster) Restart(i, contact int) {
	if c.alive[i] {
		panic("netsim: Restart of a live node")
	}
	c.incar[i]++
	c.gen[i]++
	c.restarts++
	c.alive[i] = true
	c.joined[i] = c.Engine.Now()
	// Time-to-reattach after a restart is a tree-repair latency.
	c.detachedAt[i] = c.Engine.Now()
	n := c.buildNode(i)
	c.nodes[i] = n
	n.SetLandmarks(c.landmarkEntries())
	n.Start()
	if contact >= 0 && contact < len(c.nodes) && c.alive[contact] {
		n.Join(core.Entry{ID: core.NodeID(contact), Inc: c.incar[contact]})
	}
}

// Restarts returns how many node restarts the cluster has performed.
func (c *Cluster) Restarts() int { return c.restarts }

// Incarnation returns node i's current incarnation number.
func (c *Cluster) Incarnation(i int) uint32 { return c.incar[i] }

// Leave makes node i depart gracefully (Drop notifications to neighbors)
// and marks it dead.
func (c *Cluster) Leave(i int) {
	if !c.alive[i] {
		return
	}
	c.nodes[i].Leave()
	c.alive[i] = false
	c.detachedAt[i] = -1
}

// Inject starts a multicast at node `from` and tracks its deliveries.
func (c *Cluster) Inject(from int, payload []byte) core.MessageID {
	idx := len(c.injectTimes)
	c.injectTimes = append(c.injectTimes, c.Engine.Now())
	c.sources = append(c.sources, from)
	row := make([]time.Duration, len(c.nodes))
	for i := range row {
		row[i] = -1
	}
	c.recv = append(c.recv, row)
	// Register before Multicast: the source's own delivery is synchronous.
	id := c.nodes[from].NextMessageID()
	c.msgIndex[id] = idx
	c.msgIDs = append(c.msgIDs, id)
	if got := c.nodes[from].Multicast(payload); got != id {
		panic("netsim: message ID prediction mismatch")
	}
	return id
}

// InjectStream schedules `count` multicasts at the given rate from random
// live source nodes, starting one interval from now.
func (c *Cluster) InjectStream(count int, perSecond float64, payload []byte) {
	interval := time.Duration(float64(time.Second) / perSecond)
	for k := 1; k <= count; k++ {
		c.Engine.After(time.Duration(k)*interval, func() {
			src := c.randomLive()
			if src >= 0 {
				c.Inject(src, payload)
			}
		})
	}
}

func (c *Cluster) randomLive() int {
	n := len(c.nodes)
	for tries := 0; tries < 4*n; tries++ {
		i := c.rng.Intn(n)
		if c.alive[i] {
			return i
		}
	}
	return -1
}

func (c *Cluster) recordDelivery(id core.MessageID, node int, now time.Duration) {
	idx, ok := c.msgIndex[id]
	if !ok {
		return
	}
	if c.recv[idx][node] < 0 {
		c.recv[idx][node] = now
	} else {
		// Second delivery of the same message at the same slot: only
		// possible across a restart, when the new life's dedup state is
		// empty. An application-visible duplicate.
		c.redelivered.Add(1)
	}
}

// Redelivered counts application-level duplicate deliveries — the same
// tracked message delivered twice at one slot, which only happens when a
// restarted life re-receives a message its past life already delivered.
func (c *Cluster) Redelivered() int { return int(c.redelivered.Load()) }

// TreeRepairs returns the distribution of tree-repair latencies: the time
// from losing a parent (or restarting) to re-attaching to the tree.
func (c *Cluster) TreeRepairs() *metrics.DelayRecorder { return c.repairs }

// RecoveryViolations counts (message, node) pairs where a live node never
// received a message injected after the slot FIRST entered the system —
// including messages its dead past lives missed while down. Where
// AtomicityViolations judges only stably-up nodes (a restarted life is
// excused from its predecessor's gaps), this metric demands full catch-up:
// it reaches zero only when the store-sync protocol has backfilled every
// restarted node. Messages injected less than `grace` ago are not judged.
func (c *Cluster) RecoveryViolations(grace time.Duration) int {
	now := c.Engine.Now()
	v := 0
	for m := range c.recv {
		if c.injectTimes[m]+grace > now {
			continue
		}
		for i := range c.nodes {
			if !c.alive[i] || c.firstJoin[i] > c.injectTimes[m] {
				continue
			}
			if c.recv[m][i] < 0 {
				v++
			}
		}
	}
	return v
}

// AtomicityViolations counts (message, node) pairs where a node that was
// stably up for the message's whole lifetime — alive now, and in its
// current life since before the injection — never received it. Only
// messages injected at least `grace` before now are judged, so messages
// still propagating are not counted.
func (c *Cluster) AtomicityViolations(grace time.Duration) int {
	now := c.Engine.Now()
	v := 0
	for m := range c.recv {
		if c.injectTimes[m]+grace > now {
			continue
		}
		for i := range c.nodes {
			if !c.alive[i] || c.joined[i] > c.injectTimes[m] {
				continue
			}
			if c.recv[m][i] < 0 {
				v++
			}
		}
	}
	return v
}

// AtomicityOffenders returns the message IDs that AtomicityViolations
// would count against — messages old enough to judge that at least one
// stably-up node never received — in injection order. When dissemination
// tracing is on (Options.Spans), stitching a trace for one of these shows
// exactly where its dissemination tree stopped short.
func (c *Cluster) AtomicityOffenders(grace time.Duration) []core.MessageID {
	now := c.Engine.Now()
	var out []core.MessageID
	for m := range c.recv {
		if c.injectTimes[m]+grace > now {
			continue
		}
		for i := range c.nodes {
			if !c.alive[i] || c.joined[i] > c.injectTimes[m] {
				continue
			}
			if c.recv[m][i] < 0 {
				out = append(out, c.msgIDs[m])
				break
			}
		}
	}
	return out
}

// StaleLinks counts overlay links at live nodes whose neighbor entry holds
// an incarnation older than the peer's current one — a link formed with a
// dead past life that was never torn down. The churn acceptance criterion
// is that this settles to zero.
func (c *Cluster) StaleLinks() int {
	stale := 0
	for i, n := range c.nodes {
		if !c.alive[i] {
			continue
		}
		for _, nb := range n.Neighbors() {
			j := int(nb.ID)
			if j >= 0 && j < len(c.incar) && c.alive[j] && nb.Inc < c.incar[j] {
				stale++
			}
		}
	}
	return stale
}

// Delays builds the delivery-delay distribution over every (message, live
// node) pair, the quantity plotted in Figures 3 and 4. Dead nodes are
// excluded; nodes that never received a message are recorded as misses.
func (c *Cluster) Delays() *metrics.DelayRecorder {
	rec := metrics.NewDelayRecorder()
	for m := range c.recv {
		for i := range c.nodes {
			if !c.alive[i] || c.joined[i] > c.injectTimes[m] {
				// Dead nodes and nodes that joined after the injection
				// are not expected receivers.
				continue
			}
			at := c.recv[m][i]
			if at < 0 {
				rec.AddMiss()
				continue
			}
			rec.Add(at - c.injectTimes[m])
		}
	}
	return rec
}

// ReceiveCounts returns, for each message, how many live nodes received it
// (used by the reliability censuses).
func (c *Cluster) ReceiveCounts() []int {
	out := make([]int, len(c.recv))
	for m := range c.recv {
		for i := range c.nodes {
			if c.alive[i] && c.recv[m][i] >= 0 {
				out[m]++
			}
		}
	}
	return out
}

// Messages returns the number of injected (tracked) messages.
func (c *Cluster) Messages() int { return len(c.injectTimes) }

// DegreeHistogram returns the total-degree distribution over live nodes.
func (c *Cluster) DegreeHistogram() *metrics.IntHistogram {
	h := metrics.NewIntHistogram()
	for i, n := range c.nodes {
		if c.alive[i] {
			h.Add(n.Degree())
		}
	}
	return h
}

// RandDegreeHistogram returns the random-degree distribution (live nodes).
func (c *Cluster) RandDegreeHistogram() *metrics.IntHistogram {
	h := metrics.NewIntHistogram()
	for i, n := range c.nodes {
		if c.alive[i] {
			h.Add(n.RandDegree())
		}
	}
	return h
}

// NearDegreeHistogram returns the nearby-degree distribution (live nodes).
func (c *Cluster) NearDegreeHistogram() *metrics.IntHistogram {
	h := metrics.NewIntHistogram()
	for i, n := range c.nodes {
		if c.alive[i] {
			h.Add(n.NearDegree())
		}
	}
	return h
}

// OverlayGraph snapshots the overlay as an undirected graph (an edge per
// link acknowledged by at least one endpoint).
func (c *Cluster) OverlayGraph() *graph.Undirected {
	g := graph.NewUndirected(len(c.nodes))
	for i, n := range c.nodes {
		for _, nb := range n.Neighbors() {
			if int(nb.ID) > i {
				g.AddEdge(i, int(nb.ID))
			}
		}
	}
	return g
}

// LargestComponentRatio returns q = |largest component| / |live nodes|
// over the overlay restricted to live nodes (Figure 6's metric).
func (c *Cluster) LargestComponentRatio() float64 {
	largest, alive := c.OverlayGraph().LargestComponent(c.alive)
	if alive == 0 {
		return 0
	}
	return float64(largest) / float64(alive)
}

// AvgOverlayLinkLatency returns the mean one-way latency over distinct
// overlay links among live nodes (Figure 5b, "overlay" curve).
func (c *Cluster) AvgOverlayLinkLatency() time.Duration {
	var sum time.Duration
	count := 0
	for i, n := range c.nodes {
		if !c.alive[i] {
			continue
		}
		for _, nb := range n.Neighbors() {
			j := int(nb.ID)
			if j > i && c.alive[j] {
				sum += c.OneWay(i, j)
				count++
			}
		}
	}
	if count == 0 {
		return 0
	}
	return sum / time.Duration(count)
}

// AvgTreeLinkLatency returns the mean one-way latency over tree links
// (parent edges) among live nodes (Figure 5b, "tree" curve).
func (c *Cluster) AvgTreeLinkLatency() time.Duration {
	var sum time.Duration
	count := 0
	for i, n := range c.nodes {
		if !c.alive[i] {
			continue
		}
		p := n.Parent()
		if p == core.None || !c.alive[int(p)] {
			continue
		}
		sum += c.OneWay(i, int(p))
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / time.Duration(count)
}

// TreeSpans reports whether parent pointers connect every live node to the
// root (i.e. the tree covers the system).
func (c *Cluster) TreeSpans(root int) bool {
	g := graph.NewUndirected(len(c.nodes))
	for i, n := range c.nodes {
		if !c.alive[i] {
			continue
		}
		if p := n.Parent(); p != core.None && c.alive[int(p)] {
			g.AddEdge(i, int(p))
		}
	}
	uf := graph.NewUnionFind(len(c.nodes))
	for i, n := range c.nodes {
		if !c.alive[i] {
			continue
		}
		if p := n.Parent(); p != core.None && c.alive[int(p)] {
			uf.Union(i, int(p))
		}
	}
	for i := range c.nodes {
		if c.alive[i] && !uf.Connected(i, root) {
			return false
		}
	}
	return true
}

// SumCounters aggregates all nodes' protocol counters.
func (c *Cluster) SumCounters() core.Counters {
	var t core.Counters
	for _, n := range c.nodes {
		s := n.Stats()
		t.Injected += s.Injected
		t.Delivered += s.Delivered
		t.PayloadsRecv += s.PayloadsRecv
		t.Duplicates += s.Duplicates
		t.TreeForwards += s.TreeForwards
		t.GossipsSent += s.GossipsSent
		t.GossipsRecv += s.GossipsRecv
		t.IDsAnnounced += s.IDsAnnounced
		t.PullsSent += s.PullsSent
		t.PullsServed += s.PullsServed
		t.PullRetries += s.PullRetries
		t.Reannounced += s.Reannounced
		t.SyncRequestsSent += s.SyncRequestsSent
		t.SyncRequestsRecv += s.SyncRequestsRecv
		t.SyncRepliesSent += s.SyncRepliesSent
		t.SyncRepliesRecv += s.SyncRepliesRecv
		t.SyncItemsSent += s.SyncItemsSent
		t.SyncItemsRecv += s.SyncItemsRecv
		t.SyncBytesSent += s.SyncBytesSent
		t.PullMissesSent += s.PullMissesSent
		t.PullMissesRecv += s.PullMissesRecv
		t.AddsSent += s.AddsSent
		t.AddsAccepted += s.AddsAccepted
		t.AddsRejected += s.AddsRejected
		t.LinkAdds += s.LinkAdds
		t.LinkDrops += s.LinkDrops
		t.Rebalances += s.Rebalances
		t.PingsSent += s.PingsSent
		t.TreeAdverts += s.TreeAdverts
		t.RootTakeovers += s.RootTakeovers
		t.PeerDowns += s.PeerDowns
		t.StaleIncRejects += s.StaleIncRejects
		t.ObitsRecorded += s.ObitsRecorded
		t.ObitsHonored += s.ObitsHonored
		t.StaleLinksDropped += s.StaleLinksDropped
		t.RejoinsObserved += s.RejoinsObserved
		t.SelfRefutes += s.SelfRefutes
		t.SymbolsSent += s.SymbolsSent
		t.SymbolsRecv += s.SymbolsRecv
		t.SymbolsServed += s.SymbolsServed
		t.SymbolDups += s.SymbolDups
		t.SymbolsRejected += s.SymbolsRejected
		t.SymbolPullsSent += s.SymbolPullsSent
		t.FECDecodes += s.FECDecodes
		t.FECDecodeFailures += s.FECDecodeFailures
	}
	return t
}

// env adapts the cluster to core.Env for one life of one node. gen pins
// the life: after a Restart the slot's generation advances, so timers and
// sends armed by the dead past life are silently discarded. sh is the
// node's shard; all of the node's events, timers, and pooled records
// live there.
type env struct {
	c   *Cluster
	sh  *simShard
	id  core.NodeID
	gen int
	rng *rand.Rand
}

var (
	_ core.Env         = (*env)(nil)
	_ core.MessagePool = (*env)(nil)
)

// timerWrap is one pooled env.After record: run is built once and guards
// the callback with the life check, so arming a timer in steady state
// allocates nothing. A record recycles itself when it fires; a record
// whose timer is cancelled is simply dropped (the engine releases the run
// closure, and the record is garbage-collected).
type timerWrap struct {
	env *env
	fn  func()
	run func()
}

func (sh *simShard) getWrap() *timerWrap {
	if n := len(sh.wrapFree) - 1; n >= 0 {
		w := sh.wrapFree[n]
		sh.wrapFree = sh.wrapFree[:n]
		return w
	}
	w := &timerWrap{}
	w.run = func() {
		e, fn := w.env, w.fn
		w.env, w.fn = nil, nil
		sh.wrapFree = append(sh.wrapFree, w)
		if e.live() {
			fn()
		}
	}
	return w
}

// delivery is one pooled in-flight transmission: run is built once and
// rewritten fields make scheduling a send allocation-free.
type delivery struct {
	c       *Cluster
	from    core.NodeID
	to      core.NodeID
	m       core.Message
	cls     core.Class
	counted bool // holds an inflight admission slot for (to, cls)
	run     func()
}

func (sh *simShard) getDelivery(c *Cluster) *delivery {
	if n := len(sh.deliveryFree) - 1; n >= 0 {
		d := sh.deliveryFree[n]
		sh.deliveryFree = sh.deliveryFree[:n]
		return d
	}
	d := &delivery{c: c}
	d.run = func() {
		from, to, m := d.from, d.to, d.m
		d.m = nil
		if d.counted {
			d.counted = false
			c.inflight[to][d.cls]--
		}
		sh.deliveryFree = append(sh.deliveryFree, d)
		// Delivered to whichever life currently owns the address; the
		// receiver's stale-incarnation guards reject dead-past-life traffic.
		if c.alive[to] {
			c.nodes[to].HandleMessage(from, m)
		}
		sh.releaseMsg(m)
	}
	return d
}

// Wire-struct pools. Get hands core a struct with slice fields truncated
// but capacity retained; releaseMsg returns it after the receiver ran (or
// the transmission was dropped). Receivers retain nothing from these
// structs except payload slices and Entry values, both of which live
// outside the pooled records, so recycling is safe.

func (e *env) GetGossip() *core.Gossip {
	sh := e.sh
	if n := len(sh.gossipFree) - 1; n >= 0 {
		g := sh.gossipFree[n]
		sh.gossipFree = sh.gossipFree[:n]
		return g
	}
	return &core.Gossip{}
}

func (e *env) GetMulticast() *core.Multicast {
	sh := e.sh
	if n := len(sh.mcFree) - 1; n >= 0 {
		m := sh.mcFree[n]
		sh.mcFree = sh.mcFree[:n]
		return m
	}
	return &core.Multicast{}
}

func (e *env) GetPullRequest() *core.PullRequest {
	sh := e.sh
	if n := len(sh.prFree) - 1; n >= 0 {
		p := sh.prFree[n]
		sh.prFree = sh.prFree[:n]
		return p
	}
	return &core.PullRequest{}
}

// releaseMsg returns a pooled wire struct to this shard's free list.
// Every Gossip/Multicast/PullRequest flowing through Cluster.send
// originates from the pools above (core obtains them via the
// MessagePool capability); other message kinds are left to the garbage
// collector. A struct that crossed shards is released into the
// receiving shard's pool — safe, since it changed owners at a barrier.
func (sh *simShard) releaseMsg(m core.Message) {
	switch v := m.(type) {
	case *core.Gossip:
		v.IDs = v.IDs[:0]
		v.Members = v.Members[:0]
		v.Obits = v.Obits[:0]
		v.Syms = v.Syms[:0]
		v.Degrees = core.Degrees{}
		sh.gossipFree = append(sh.gossipFree, v)
	case *core.Multicast:
		*v = core.Multicast{}
		sh.mcFree = append(sh.mcFree, v)
	case *core.PullRequest:
		v.IDs = v.IDs[:0]
		sh.prFree = append(sh.prFree, v)
	}
}

// live reports whether this env's life is still the slot's current one.
func (e *env) live() bool {
	id := int(e.id)
	return e.c.alive[id] && e.c.gen[id] == e.gen
}

func (e *env) Now() time.Duration { return e.sh.eng.Now() }

func (e *env) Rand(n int) int {
	if n <= 0 {
		return 0
	}
	return e.rng.Intn(n)
}

func (e *env) Learn(core.Entry) {}

func (e *env) After(d time.Duration, fn func()) core.Timer {
	w := e.sh.getWrap()
	w.env = e
	w.fn = fn
	h := e.sh.eng.ScheduleKeyed(e.sh.eng.Now()+d, e.c.nextKey(e.id), w.run)
	return core.MakeTimer(e.sh.eng, uint64(h))
}

func (e *env) Send(to core.NodeID, m core.Message) { e.c.send(e, to, m, true) }

func (e *env) SendDatagram(to core.NodeID, m core.Message) { e.c.send(e, to, m, false) }

// send takes ownership of m: core hands each pooled wire struct to exactly
// one Send call, so every path out of here — dropped or delivered — must
// end in releaseMsg. It runs on the sender's shard; deliveries within
// the shard are scheduled directly, deliveries to another shard are
// buffered in the outbox and injected at the next window barrier
// (always in the future: the arrival lags by at least the inter-shard
// latency floor that bounds the window).
func (c *Cluster) send(from *env, to core.NodeID, m core.Message, reliable bool) {
	sh := from.sh
	if int(to) < 0 || int(to) >= len(c.nodes) || from.id == to || !from.live() {
		sh.releaseMsg(m)
		return
	}
	if c.opts.Observer != nil {
		c.opts.Observer(from.id, to, m)
	}
	if !c.alive[to] {
		if reliable && c.detect {
			// The sender's TCP connection to the dead peer resets — unless
			// the peer restarts first, in which case the new life's
			// connection supersedes the broken one. The reset is the
			// sender's own event: it stays on the sender's shard and
			// carries the sender's next canonical key.
			toGen := c.gen[to]
			sh.eng.ScheduleKeyed(sh.eng.Now()+c.opts.DetectionDelay, c.nextKey(from.id), func() {
				if from.live() && c.gen[to] == toGen {
					c.nodes[from.id].PeerDown(to)
				}
			})
		}
		sh.releaseMsg(m)
		return
	}
	// Link faults (partitions, loss, delay, bandwidth queueing). Blocked
	// and dropped transmissions are silent blackholes: detection is the
	// protocol's job, recovery gossip's. Sequential-only (SetFaults
	// panics on sharded clusters).
	extra, ok := c.judgeFault(int(from.id), int(to), m.WireSize(), sh.eng.Now())
	if !ok {
		sh.releaseMsg(m)
		return
	}
	counted := false
	var cls core.Class
	if c.inflight != nil {
		cls = core.ClassOf(m)
		if cap := c.admission.capFor(cls); cap > 0 {
			if c.inflight[to][cls] >= cap {
				c.admShed[cls]++
				sh.releaseMsg(m)
				return
			}
			c.inflight[to][cls]++
			counted = true
		}
	}
	at := sh.eng.Now() + c.OneWay(int(from.id), int(to)) + extra
	key := c.nextKey(from.id)
	if dst := c.shardOf[to]; dst != sh.idx {
		sh.outbox[dst] = append(sh.outbox[dst], crossEvent{at: at, key: key, from: from.id, to: to, m: m})
		return
	}
	dl := sh.getDelivery(c)
	dl.from, dl.to, dl.m = from.id, to, m
	dl.cls, dl.counted = cls, counted
	sh.eng.ScheduleKeyed(at, key, dl.run)
}
