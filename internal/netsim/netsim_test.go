package netsim

import (
	"testing"
	"time"

	"gocast/internal/core"
)

// buildCluster assembles a started cluster following the paper's setup:
// random bootstrap membership, C_degree/2 random links per node, node 0 as
// root.
func buildCluster(t testing.TB, nodes int, cfg core.Config, seed int64) *Cluster {
	t.Helper()
	c := New(Options{Nodes: nodes, Seed: seed, Config: cfg})
	c.BootstrapMembership(cfg.MemberViewSize / 2)
	c.WireRandom(cfg.TargetDegree() / 2)
	c.Start(0)
	return c
}

func TestOverlayDegreesConverge(t *testing.T) {
	cfg := core.DefaultConfig()
	c := buildCluster(t, 64, cfg, 1)
	c.Run(120 * time.Second)

	h := c.DegreeHistogram()
	if got := h.Fraction(6) + h.Fraction(7); got < 0.8 {
		t.Errorf("fraction of nodes at degree 6-7 = %.2f, want >= 0.8", got)
	}
	rh := c.RandDegreeHistogram()
	if got := rh.Fraction(cfg.CRand) + rh.Fraction(cfg.CRand+1); got < 0.9 {
		t.Errorf("fraction at random degree C..C+1 = %.2f, want >= 0.9", got)
	}
	nh := c.NearDegreeHistogram()
	if got := nh.Fraction(cfg.CNear) + nh.Fraction(cfg.CNear+1); got < 0.8 {
		t.Errorf("fraction at nearby degree C..C+1 = %.2f, want >= 0.8", got)
	}
}

func TestOverlayStaysConnected(t *testing.T) {
	c := buildCluster(t, 64, core.DefaultConfig(), 2)
	for i := 0; i < 12; i++ {
		c.Run(10 * time.Second)
		if q := c.LargestComponentRatio(); q < 1 {
			t.Fatalf("overlay disconnected at t=%v (q=%.3f)", c.Now(), q)
		}
	}
}

func TestProximityLowersLinkLatency(t *testing.T) {
	c := buildCluster(t, 96, core.DefaultConfig(), 3)
	initial := c.AvgOverlayLinkLatency()
	c.Run(120 * time.Second)
	final := c.AvgOverlayLinkLatency()
	if final*2 > initial {
		t.Errorf("overlay link latency %v -> %v; want at least 2x improvement", initial, final)
	}
}

func TestTreeSpansAndIsEfficient(t *testing.T) {
	c := buildCluster(t, 64, core.DefaultConfig(), 4)
	c.Run(120 * time.Second)
	if !c.TreeSpans(0) {
		t.Fatalf("tree does not span all nodes after stabilization")
	}
	tree := c.AvgTreeLinkLatency()
	overlay := c.AvgOverlayLinkLatency()
	if tree > overlay {
		t.Errorf("tree link latency %v should not exceed overlay average %v", tree, overlay)
	}
}

func TestMulticastReachesAllNodes(t *testing.T) {
	c := buildCluster(t, 64, core.DefaultConfig(), 5)
	c.Run(60 * time.Second)
	c.Inject(7, []byte("hello"))
	c.Run(5 * time.Second)
	counts := c.ReceiveCounts()
	if counts[0] != 64 {
		t.Fatalf("message reached %d/64 nodes", counts[0])
	}
	rec := c.Delays()
	if rec.Misses() != 0 {
		t.Fatalf("misses = %d, want 0", rec.Misses())
	}
	cdf := rec.CDF()
	if cdf.Max() > time.Second {
		t.Errorf("max delay %v, want < 1s on a 64-node stabilized system", cdf.Max())
	}
}

func TestMulticastSurvivesFailuresWithoutRepair(t *testing.T) {
	c := buildCluster(t, 64, core.DefaultConfig(), 6)
	c.Run(60 * time.Second)
	// Paper stress test: freeze all repair, kill 20%, then multicast.
	c.SetMaintenance(false)
	c.SetDetection(false)
	c.KillFraction(0.20)
	for i := 0; i < 10; i++ {
		src := c.randomLive()
		c.Inject(src, nil)
	}
	c.Run(30 * time.Second)
	rec := c.Delays()
	if rec.Misses() != 0 {
		t.Fatalf("misses = %d, want 0: gossip must cover tree fragments", rec.Misses())
	}
}

func TestSelfHealingAfterFailures(t *testing.T) {
	cfg := core.DefaultConfig()
	c := buildCluster(t, 64, cfg, 7)
	c.Run(60 * time.Second)
	c.KillFraction(0.20) // detection and maintenance stay on
	c.Run(60 * time.Second)
	rh := c.RandDegreeHistogram()
	if got := rh.Fraction(cfg.CRand) + rh.Fraction(cfg.CRand+1); got < 0.9 {
		t.Errorf("random degrees after healing: %.2f at C..C+1, want >= 0.9", got)
	}
	if q := c.LargestComponentRatio(); q < 1 {
		t.Errorf("overlay still partitioned after healing: q=%.3f", q)
	}
	c.Inject(c.randomLive(), nil)
	c.Run(5 * time.Second)
	if rec := c.Delays(); rec.Misses() != 0 {
		t.Errorf("misses after healing = %d, want 0", rec.Misses())
	}
}

func TestRootFailover(t *testing.T) {
	cfg := core.DefaultConfig()
	c := buildCluster(t, 32, cfg, 8)
	c.Run(60 * time.Second)
	c.Kill(0) // the root
	c.Run(2 * cfg.RootTimeout)
	roots := map[core.NodeID]bool{}
	for i := 1; i < 32; i++ {
		roots[c.Node(i).Root()] = true
	}
	if len(roots) != 1 {
		t.Fatalf("system did not converge to a single root: %v", roots)
	}
	for r := range roots {
		if r == 0 {
			t.Fatalf("nodes still believe the dead node is root")
		}
		if !c.Alive(int(r)) {
			t.Fatalf("converged root %d is dead", r)
		}
	}
	c.Inject(c.randomLive(), nil)
	c.Run(5 * time.Second)
	if rec := c.Delays(); rec.Misses() != 0 {
		t.Errorf("misses after root failover = %d", rec.Misses())
	}
}

func TestGossipOnlyVariantsDeliver(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  core.Config
	}{
		{name: "proximity overlay", cfg: core.ProximityOverlayConfig()},
		{name: "random overlay", cfg: core.RandomOverlayConfig()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := buildCluster(t, 48, tc.cfg, 9)
			c.Run(60 * time.Second)
			c.Inject(3, nil)
			c.Run(20 * time.Second)
			if rec := c.Delays(); rec.Misses() != 0 {
				t.Fatalf("misses = %d, want 0", rec.Misses())
			}
			if tf := c.SumCounters().TreeForwards; tf != 0 {
				t.Errorf("tree forwards = %d, want 0 with tree disabled", tf)
			}
		})
	}
}

func TestGoCastFasterThanGossipOnlyVariant(t *testing.T) {
	delay := func(cfg core.Config) time.Duration {
		c := buildCluster(t, 64, cfg, 10)
		c.Run(60 * time.Second)
		for i := 0; i < 5; i++ {
			c.Inject(c.randomLive(), nil)
			c.Run(10 * time.Second)
		}
		return c.Delays().CDF().Quantile(0.99)
	}
	gocast := delay(core.DefaultConfig())
	gossip := delay(core.ProximityOverlayConfig())
	if gocast >= gossip {
		t.Errorf("GoCast p99 %v should beat proximity-overlay p99 %v", gocast, gossip)
	}
}

func TestNoDuplicateDeliveries(t *testing.T) {
	c := New(Options{Nodes: 32, Seed: 11, Config: core.DefaultConfig()})
	c.BootstrapMembership(24)
	c.WireRandom(3)
	seen := make(map[string]int)
	for i := 0; i < 32; i++ {
		idx := i
		c.Node(i).OnDeliver(func(id core.MessageID, _ []byte, _ time.Duration) {
			key := id.String() + "@" + string(rune(idx))
			seen[key]++
		})
	}
	c.Start(0)
	c.Run(30 * time.Second)
	for i := 0; i < 5; i++ {
		c.Node(i).Multicast(nil)
	}
	c.Run(10 * time.Second)
	for k, v := range seen {
		if v != 1 {
			t.Fatalf("delivery %q happened %d times", k, v)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, time.Duration) {
		c := buildCluster(t, 32, core.DefaultConfig(), 42)
		c.Run(30 * time.Second)
		c.Inject(1, nil)
		c.Run(5 * time.Second)
		return c.SumCounters().GossipsSent, c.Delays().CDF().Max()
	}
	g1, d1 := run()
	g2, d2 := run()
	if g1 != g2 || d1 != d2 {
		t.Fatalf("same seed diverged: gossips %d vs %d, max delay %v vs %v", g1, g2, d1, d2)
	}
}

func TestJoinViaProtocol(t *testing.T) {
	cfg := core.DefaultConfig()
	c := buildCluster(t, 32, cfg, 12)
	c.Run(30 * time.Second)
	// A fresh simulated node joins through the join protocol: here we use
	// an existing isolated node by wiring none and joining node 5.
	// Instead, spin a new cluster where one node starts with no links.
	c2 := New(Options{Nodes: 16, Seed: 13, Config: cfg})
	c2.BootstrapMembership(12)
	// Wire all but node 15.
	for i := 0; i < 15; i++ {
		j := (i + 1) % 15
		c2.WireLink(i, j, core.Random)
		c2.WireLink(i, (i+3)%15, core.Random)
	}
	c2.Start(0)
	c2.Node(15).Join(core.Entry{ID: 4})
	c2.Run(60 * time.Second)
	if d := c2.Node(15).Degree(); d < cfg.CRand+cfg.CNear-1 {
		t.Fatalf("joiner degree = %d, want near target %d", d, cfg.TargetDegree())
	}
	c2.Inject(15, nil)
	c2.Run(5 * time.Second)
	if rec := c2.Delays(); rec.Misses() != 0 {
		t.Fatalf("misses after join = %d", rec.Misses())
	}
}
