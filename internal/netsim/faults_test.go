package netsim

import (
	"testing"
	"time"

	"gocast/internal/core"
)

// fastTestConfig returns protocol timing that converges quickly in
// virtual minutes, shared by the fault-model tests.
func fastTestConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.SyncInterval = 5 * time.Second
	cfg.HeartbeatPeriod = 5 * time.Second
	cfg.RootTimeout = 15 * time.Second
	return cfg
}

func buildFaultTestCluster(t *testing.T, n int, seed int64) *Cluster {
	t.Helper()
	cfg := fastTestConfig()
	c := New(Options{Nodes: n, Seed: seed, Config: cfg})
	c.BootstrapMembership(cfg.MemberViewSize / 2)
	c.WireRandom(cfg.TargetDegree() / 2)
	c.Start(0)
	c.Run(60 * time.Second)
	return c
}

// TestFaultPartitionBlocksAndHeals cuts the cluster in two, checks that
// messages cannot cross, clears the partition, and checks sync repairs the
// backlog.
func TestFaultPartitionBlocksAndHeals(t *testing.T) {
	const n = 24
	c := buildFaultTestCluster(t, n, 11)

	left := make([]int, 0, n/2)
	right := make([]int, 0, n/2)
	for i := 0; i < n; i++ {
		if i < n/2 {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	c.SetFaults(&FaultSpec{Seed: 1, Partition: [][]int{left, right}})
	c.Inject(0, nil)
	c.Run(30 * time.Second)
	if got := c.FaultStats().Blocked; got == 0 {
		t.Fatalf("partition blocked no traffic")
	}
	// The message must not have crossed to the right side.
	counts := c.ReceiveCounts()
	if counts[0] > n/2 {
		t.Fatalf("message crossed the partition: %d receivers", counts[0])
	}
	c.SetFaults(nil)
	c.Run(2 * time.Minute)
	if v := c.AtomicityViolations(30 * time.Second); v != 0 {
		t.Fatalf("after heal: %d atomicity violations", v)
	}
}

// TestFaultLossIsSeededAndCounted checks that probabilistic loss fires
// deterministically for a given seed and is counted.
func TestFaultLossIsSeededAndCounted(t *testing.T) {
	run := func() (FaultStats, int) {
		c := buildFaultTestCluster(t, 16, 7)
		c.SetFaults(&FaultSpec{Seed: 99, Rules: []LinkFault{{Loss: 0.3}}})
		for i := 0; i < 5; i++ {
			c.Inject(i%16, nil)
			c.Run(2 * time.Second)
		}
		c.Run(2 * time.Minute)
		return c.FaultStats(), c.AtomicityViolations(30 * time.Second)
	}
	s1, v1 := run()
	s2, v2 := run()
	if s1.Dropped == 0 {
		t.Fatalf("loss dropped nothing")
	}
	if s1 != s2 || v1 != v2 {
		t.Fatalf("seeded loss not deterministic: %+v/%d vs %+v/%d", s1, v1, s2, v2)
	}
	// Gossip pulls must have repaired every loss while faults were active.
	if v1 != 0 {
		t.Fatalf("%d atomicity violations under 30%% loss", v1)
	}
}

// TestFaultBandwidthFIFOQueueing pins the FIFO serialization model
// directly against judgeFault: back-to-back transmissions on a capped
// link queue behind each other, an idle link recovers, and distinct
// endpoint pairs keep independent clocks.
func TestFaultBandwidthFIFOQueueing(t *testing.T) {
	c := New(Options{Nodes: 4, Seed: 1})
	// 1 KiB/s cap on everything node 0 sends.
	c.SetFaults(&FaultSpec{Seed: 1, Rules: []LinkFault{
		{From: NodeRange{0, 1}, BytesPerSec: 1024},
	}})
	now := 10 * time.Second
	// First 2 KiB message: 2 s serialization from an idle link.
	d1, ok := c.judgeFault(0, 1, 2048, now)
	if !ok || d1 != 2*time.Second {
		t.Fatalf("first send: delay %v ok=%v, want 2s", d1, ok)
	}
	// Second message at the same instant queues behind the first: 4 s.
	d2, ok := c.judgeFault(0, 1, 2048, now)
	if !ok || d2 != 4*time.Second {
		t.Fatalf("queued send: delay %v ok=%v, want 4s (FIFO)", d2, ok)
	}
	// A different destination pair has its own clock: 1 s for 1 KiB.
	d3, ok := c.judgeFault(0, 2, 1024, now)
	if !ok || d3 != time.Second {
		t.Fatalf("independent link: delay %v ok=%v, want 1s", d3, ok)
	}
	// Reverse direction is uncapped.
	d4, ok := c.judgeFault(1, 0, 4096, now)
	if !ok || d4 != 0 {
		t.Fatalf("uncapped direction: delay %v ok=%v, want 0", d4, ok)
	}
	// After the link drains, a later send sees only its own serialization.
	d5, ok := c.judgeFault(0, 1, 1024, now+time.Minute)
	if !ok || d5 != time.Second {
		t.Fatalf("drained link: delay %v ok=%v, want 1s", d5, ok)
	}
	if got := c.FaultStats().Throttled; got != 4 {
		t.Fatalf("Throttled = %d, want 4 (every capped send paid serialization)", got)
	}
}

// TestFaultSlowLinkDelays checks Extra delay applies and is cleared by
// SetFaults(nil).
func TestFaultSlowLinkDelays(t *testing.T) {
	c := buildFaultTestCluster(t, 16, 5)
	c.SetFaults(&FaultSpec{Seed: 1, Rules: []LinkFault{{Extra: 200 * time.Millisecond}}})
	c.Inject(0, nil)
	c.Run(time.Minute)
	if c.FaultStats().Delayed == 0 {
		t.Fatalf("slow rule delayed nothing")
	}
	slowCDF := c.Delays().CDF()
	if slowCDF.Quantile(0.5) < 200*time.Millisecond {
		t.Fatalf("p50 delay %v under a 200ms universal slow link", slowCDF.Quantile(0.5))
	}
	c.SetFaults(nil)
	before := c.FaultStats()
	c.Inject(0, nil)
	c.Run(time.Minute)
	if c.FaultStats() != before {
		t.Fatalf("cleared faults still judging traffic")
	}
}
