package netsim

import (
	"testing"
	"time"

	"gocast/internal/core"
	"gocast/internal/latency"
	"gocast/internal/trace"
)

func TestLatencySymmetryAndSiteMapping(t *testing.T) {
	c := New(Options{Nodes: 20, Seed: 1, Config: core.DefaultConfig(),
		Matrix: latency.Synthesize(8, 1)})
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if c.OneWay(i, j) != c.OneWay(j, i) {
				t.Fatalf("asymmetric latency between %d and %d", i, j)
			}
			if c.RTT(i, j) != 2*c.OneWay(i, j) {
				t.Fatalf("RTT != 2x one-way for %d,%d", i, j)
			}
		}
	}
	// Nodes 20 > sites 8: co-located nodes see the local latency.
	if got := c.OneWay(0, 8); got != latency.LocalOneWay {
		t.Fatalf("co-located latency = %v, want %v", got, latency.LocalOneWay)
	}
}

func TestBootstrapMembershipPopulatesViews(t *testing.T) {
	cfg := core.DefaultConfig()
	c := New(Options{Nodes: 40, Seed: 2, Config: cfg})
	c.BootstrapMembership(16)
	for i := 0; i < 40; i++ {
		if got := c.Node(i).MemberCount(); got < 8 {
			t.Fatalf("node %d has %d members after bootstrap, want >= 8", i, got)
		}
	}
}

func TestWireRandomDegreeAndSymmetry(t *testing.T) {
	cfg := core.DefaultConfig()
	c := New(Options{Nodes: 30, Seed: 3, Config: cfg})
	c.WireRandom(3)
	total := 0
	for i := 0; i < 30; i++ {
		n := c.Node(i)
		total += n.Degree()
		for _, nb := range n.Neighbors() {
			found := false
			for _, back := range c.Node(int(nb.ID)).Neighbors() {
				if int(back.ID) == i {
					found = true
				}
			}
			if !found {
				t.Fatalf("asymmetric wired link %d-%d", i, nb.ID)
			}
			if nb.Kind != core.Random {
				t.Fatalf("initial links must be random, got %v", nb.Kind)
			}
		}
	}
	if mean := float64(total) / 30; mean != 6 {
		t.Fatalf("mean initial degree = %v, want exactly 6 (3 initiated each)", mean)
	}
}

func TestObserverSeesAllTraffic(t *testing.T) {
	cfg := core.DefaultConfig()
	var msgs, bytes int64
	c := New(Options{Nodes: 16, Seed: 4, Config: cfg,
		Observer: func(from, to core.NodeID, m core.Message) {
			msgs++
			bytes += int64(m.WireSize())
			if from == to {
				t.Errorf("self-transmission observed")
			}
		}})
	c.BootstrapMembership(12)
	c.WireRandom(3)
	c.Start(0)
	c.Run(10 * time.Second)
	if msgs == 0 || bytes == 0 {
		t.Fatalf("observer saw nothing: %d msgs, %d bytes", msgs, bytes)
	}
}

func TestKillDropsInFlightDelivery(t *testing.T) {
	cfg := core.DefaultConfig()
	c := buildCluster(t, 24, cfg, 5)
	c.Run(30 * time.Second)
	victim := 7
	before := c.Node(victim).Stats().GossipsRecv
	c.Kill(victim)
	c.Kill(victim) // idempotent
	c.Run(10 * time.Second)
	if got := c.Node(victim).Stats().GossipsRecv; got != before {
		t.Fatalf("dead node kept receiving gossips: %d -> %d", before, got)
	}
	if c.AliveCount() != 23 {
		t.Fatalf("alive = %d, want 23", c.AliveCount())
	}
}

func TestDetectionDelayGovernsPeerDown(t *testing.T) {
	cfg := core.DefaultConfig()
	c := New(Options{Nodes: 8, Seed: 6, Config: cfg, DetectionDelay: 2 * time.Second})
	c.BootstrapMembership(6)
	c.WireRandom(2)
	c.Start(0)
	c.Run(20 * time.Second)
	victim := 3
	peers := c.Node(victim).Neighbors()
	if len(peers) == 0 {
		t.Fatalf("victim has no neighbors")
	}
	c.Kill(victim)
	// Before the detection delay the survivors still list the victim.
	c.Run(time.Second)
	still := false
	for _, p := range peers {
		for _, nb := range c.Node(int(p.ID)).Neighbors() {
			if int(nb.ID) == victim {
				still = true
			}
		}
	}
	if !still {
		t.Fatalf("link dropped before the detection delay elapsed")
	}
	// Well after the delay, the victim must be gone everywhere.
	c.Run(10 * time.Second)
	for _, p := range peers {
		for _, nb := range c.Node(int(p.ID)).Neighbors() {
			if int(nb.ID) == victim {
				t.Fatalf("node %d still lists the dead victim", p.ID)
			}
		}
	}
}

func TestReceiveCountsAndMessages(t *testing.T) {
	cfg := core.DefaultConfig()
	c := buildCluster(t, 16, cfg, 7)
	c.Run(30 * time.Second)
	c.Inject(0, nil)
	c.Inject(1, nil)
	c.Run(5 * time.Second)
	if c.Messages() != 2 {
		t.Fatalf("messages = %d", c.Messages())
	}
	for m, got := range c.ReceiveCounts() {
		if got != 16 {
			t.Fatalf("message %d reached %d/16", m, got)
		}
	}
}

func TestTreeSpansAfterWarmup(t *testing.T) {
	c := buildCluster(t, 48, core.DefaultConfig(), 8)
	c.Run(120 * time.Second)
	if !c.TreeSpans(0) {
		t.Fatalf("tree does not span at steady state")
	}
}

func TestTracerRecordsProtocolEvents(t *testing.T) {
	cfg := core.DefaultConfig()
	tb := trace.NewBuffer(4096)
	c := New(Options{Nodes: 16, Seed: 9, Config: cfg, Tracer: tb})
	c.BootstrapMembership(12)
	c.WireRandom(3)
	c.Start(0)
	c.Run(30 * time.Second)
	c.Inject(2, nil)
	c.Run(5 * time.Second)
	if got := tb.Query(trace.Filter{Kinds: []trace.Kind{trace.KindDeliver}, Node: -1}); len(got) == 0 {
		t.Errorf("no delivery events traced")
	}
	if got := tb.Query(trace.Filter{Kinds: []trace.Kind{trace.KindParentChange}, Node: -1}); len(got) == 0 {
		t.Errorf("no parent-change events traced")
	}
	if got := tb.Query(trace.Filter{Kinds: []trace.Kind{trace.KindLinkUp, trace.KindLinkDown}, Node: -1}); len(got) == 0 {
		t.Errorf("no link events traced")
	}
}

func TestPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("want panic for zero-node cluster")
		}
	}()
	New(Options{Nodes: 0, Seed: 1, Config: core.DefaultConfig()})
}
