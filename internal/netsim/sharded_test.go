package netsim

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"gocast/internal/core"
	"gocast/internal/latency"
)

// shardWorkload drives one full simulation — warmup, churn (kills,
// restarts, a runtime join), a tracked message stream, drain — at the
// given shard count and returns the cluster for fingerprinting. Every
// piece of randomness hangs off the seed, so two calls with different
// shard counts must produce identical results if the barrier protocol
// is sound.
func shardWorkload(t *testing.T, shards int, seed int64) *Cluster {
	t.Helper()
	c := New(Options{
		Nodes:  160,
		Seed:   seed,
		Config: core.DefaultConfig(),
		Shards: shards,
	})
	c.BootstrapMembership(c.opts.Config.MemberViewSize / 2)
	c.WireRandom(c.opts.Config.TargetDegree() / 2)
	c.Start(0)
	c.Run(40 * time.Second)

	killed := c.KillFraction(0.05)
	c.InjectStream(25, 5, []byte("shard-oracle"))
	c.Run(3 * time.Second)
	for _, i := range killed {
		c.Restart(i, 0)
	}
	c.AddNode(1)
	c.Run(20 * time.Second)
	return c
}

// fingerprint reduces a finished run to a byte string covering every
// externally observable result: the exact per-(message, node) delivery
// times, per-node protocol counters, churn accounting, and the repair
// latency distribution (as a sorted multiset — cross-shard completion
// order is not deterministic, the set of samples is).
func fingerprint(c *Cluster) string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes=%d alive=%d restarts=%d redelivered=%d\n",
		c.Nodes(), c.AliveCount(), c.Restarts(), c.Redelivered())
	for m := range c.recv {
		fmt.Fprintf(&b, "msg%d@%d src=%d:", m, c.injectTimes[m], c.sources[m])
		for i := range c.recv[m] {
			fmt.Fprintf(&b, " %d", c.recv[m][i])
		}
		b.WriteByte('\n')
	}
	for i := 0; i < c.Nodes(); i++ {
		fmt.Fprintf(&b, "node%d alive=%v inc=%d stats=%+v parent=%d\n",
			i, c.Alive(i), c.Incarnation(i), c.Node(i).Stats(), c.Node(i).Parent())
	}
	cdf := c.TreeRepairs().CDF()
	fmt.Fprintf(&b, "repairs n=%d p50=%d p99=%d max=%d\n",
		c.TreeRepairs().Count(), cdf.Quantile(0.5), cdf.Quantile(0.99), cdf.Max())
	fmt.Fprintf(&b, "atomicity=%d recovery=%d stale=%d\n",
		c.AtomicityViolations(5*time.Second), c.RecoveryViolations(5*time.Second), c.StaleLinks())
	return b.String()
}

// TestShardedMatchesSequentialOracle is the shard barrier protocol's
// regression net: the same seeded workload — churn, restarts, a runtime
// join, and a tracked message stream — must produce results identical
// to the sequential oracle at every shard count. Run under -race this
// also exercises the barrier protocol's happens-before edges.
func TestShardedMatchesSequentialOracle(t *testing.T) {
	counts := []int{1, 2, 7, runtime.NumCPU()}
	want := ""
	wantEff := 0
	for _, shards := range counts {
		c := shardWorkload(t, shards, 20260808)
		got := fingerprint(c)
		if shards == 1 {
			if c.EffectiveShards() != 1 {
				t.Fatalf("shards=1: EffectiveShards = %d", c.EffectiveShards())
			}
			want = got
			continue
		}
		if shards >= 2 && c.EffectiveShards() < 2 {
			t.Fatalf("shards=%d: expected parallel execution, got EffectiveShards=%d", shards, c.EffectiveShards())
		}
		wantEff++
		if got != want {
			t.Errorf("shards=%d (effective %d): results diverge from sequential oracle\n%s",
				shards, c.EffectiveShards(), firstDiff(want, got))
		}
	}
	if wantEff == 0 {
		t.Fatal("no parallel configuration was exercised")
	}
}

// TestShardedDeterministicAcrossRuns pins run-to-run determinism of the
// parallel engine itself: same seed, same shard count, byte-identical
// results even though OS scheduling interleaves the shard goroutines
// differently each time.
func TestShardedDeterministicAcrossRuns(t *testing.T) {
	a := fingerprint(shardWorkload(t, 4, 7))
	b := fingerprint(shardWorkload(t, 4, 7))
	if a != b {
		t.Errorf("sharded run not reproducible across runs\n%s", firstDiff(a, b))
	}
}

// TestShardedOneSiteFallsBackSequential is the adversarial zero-
// lookahead case: with every node on a single site there is no
// inter-region latency floor, no safe window, and therefore no legal
// partition — the cluster must fall back to sequential execution and
// still run correctly.
func TestShardedOneSiteFallsBackSequential(t *testing.T) {
	c := New(Options{
		Nodes:  32,
		Seed:   3,
		Config: core.DefaultConfig(),
		Matrix: latency.NewMatrix(1),
		Shards: 8,
	})
	if c.EffectiveShards() != 1 {
		t.Fatalf("one-site cluster: EffectiveShards = %d, want 1", c.EffectiveShards())
	}
	c.BootstrapMembership(8)
	c.WireRandom(3)
	c.Start(0)
	c.Run(20 * time.Second)
	c.Inject(1, []byte("local"))
	c.Run(5 * time.Second)
	if v := c.AtomicityViolations(2 * time.Second); v != 0 {
		t.Errorf("one-site fallback run: %d atomicity violations", v)
	}
}

// TestShardedZeroMatrixFallsBackSequential covers the other degenerate
// partition: an unlabeled matrix with unset (zero) cross-site entries
// has no positive latency floor between any cut, so sharding must be
// refused rather than produce an unsafe window.
func TestShardedZeroMatrixFallsBackSequential(t *testing.T) {
	c := New(Options{
		Nodes:  8,
		Seed:   5,
		Config: core.DefaultConfig(),
		Matrix: latency.NewMatrix(4), // all-zero off-diagonals
		Shards: 4,
	})
	if c.EffectiveShards() != 1 {
		t.Fatalf("zero-matrix cluster: EffectiveShards = %d, want 1", c.EffectiveShards())
	}
}

// firstDiff renders the first differing line of two multi-line strings,
// with one line of context, keeping failure output readable.
func firstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d:\n  oracle:  %s\n  sharded: %s", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(la), len(lb))
}
