package netsim

import (
	"math/rand"
	"time"
)

// Link-fault model for the simulated network. A FaultSpec declares the
// currently-active network faults — partitions, probabilistic loss, extra
// delay/jitter, and bandwidth-capped links with FIFO queueing — and
// Cluster.SetFaults installs it on the send path. Unlike the live
// runtime's FaultController (internal/live/fault.go), which wraps
// transports and phases itself over wall time, the netsim model is a
// point-in-time state: callers (the scenario engine) schedule SetFaults
// calls on the simulation clock to phase faults in and out, which keeps
// every fault decision on the deterministic event loop.
//
// Blocked and dropped transmissions are silent blackholes, matching the
// live fault layer's semantics: a partitioned TCP peer looks stalled, not
// dead, and detection is the protocol's job (keepalive timeouts), recovery
// gossip's (pulls and sync after heal).

// NodeRange selects the node-index interval [Lo, Hi). The zero value
// matches every node.
type NodeRange struct {
	Lo, Hi int
}

// matches reports whether i falls in the range (zero value = all).
func (r NodeRange) matches(i int) bool {
	if r.Lo == 0 && r.Hi == 0 {
		return true
	}
	return i >= r.Lo && i < r.Hi
}

// LinkFault shapes traffic from From-nodes to To-nodes (directed; wrap a
// pair of rules for symmetric faults). Zero-valued ranges are wildcards.
type LinkFault struct {
	From, To NodeRange
	// Loss is the probability a matching transmission is silently lost
	// (reliable and datagram alike: netsim models one channel).
	Loss float64
	// Extra is a fixed additional one-way delay; Jitter adds a further
	// uniform [0, Jitter) on top.
	Extra  time.Duration
	Jitter time.Duration
	// BytesPerSec, when positive, models the directed (from, to) link as a
	// serial line: each message occupies it for WireSize/rate, queueing
	// FIFO behind earlier transmissions. Delivery happens at
	// depart + propagation, where depart = max(now, linkFree) + WireSize/rate.
	// The paper's simulator models latency only; this is the queueing
	// fidelity ROADMAP item 3 calls for.
	BytesPerSec int64
}

// FaultSpec is the complete active fault state. Installing a new spec
// replaces the previous one (and resets per-link queueing clocks).
type FaultSpec struct {
	// Seed drives loss and jitter randomness. The scenario engine derives
	// it from the scenario's master seed so a run replays exactly.
	Seed int64
	// Partition lists node-index cells; traffic between nodes in different
	// cells is blocked both ways. Nodes in no cell are unaffected.
	Partition [][]int
	// Rules are evaluated independently; every matching rule applies.
	Rules []LinkFault
}

// FaultStats counts fault-model verdicts since the cluster was built
// (cumulative across SetFaults calls).
type FaultStats struct {
	Blocked   int64 // transmissions blocked by a partition
	Dropped   int64 // transmissions lost to probabilistic loss
	Delayed   int64 // transmissions delivered late (extra delay/jitter)
	Throttled int64 // transmissions queued behind a bandwidth cap
}

// faultState is the installed form of a FaultSpec.
type faultState struct {
	rng   *rand.Rand
	cell  map[int]int // node -> partition cell
	rules []LinkFault
	// linkFree tracks each capped directed link's virtual transmission
	// clock: the time at which the link next frees up, keyed by
	// rule-index and endpoint pair.
	linkFree map[linkKey]time.Duration
}

type linkKey struct {
	rule     int
	from, to int
}

// SetFaults installs spec as the active link-fault state; nil clears all
// faults. Queueing clocks start fresh: a newly capped link is idle.
func (c *Cluster) SetFaults(spec *FaultSpec) {
	if spec == nil {
		c.faults = nil
		return
	}
	if len(c.shards) > 1 {
		panic("netsim: link faults require sequential execution (Options.Shards <= 1)")
	}
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	st := &faultState{
		rng:   rand.New(rand.NewSource(seed)),
		rules: append([]LinkFault(nil), spec.Rules...),
	}
	if len(spec.Partition) > 0 {
		st.cell = make(map[int]int)
		for ci, cell := range spec.Partition {
			for _, i := range cell {
				st.cell[i] = ci
			}
		}
	}
	for _, r := range st.rules {
		if r.BytesPerSec > 0 {
			st.linkFree = make(map[linkKey]time.Duration)
			break
		}
	}
	c.faults = st
}

// FaultStats returns the cumulative fault-model counters.
func (c *Cluster) FaultStats() FaultStats { return c.faultStats }

// judgeFault evaluates the active fault state for one transmission and
// returns the extra delivery delay. ok=false means the transmission is
// lost (partition block or probabilistic loss).
func (c *Cluster) judgeFault(from, to, size int, now time.Duration) (extra time.Duration, ok bool) {
	f := c.faults
	if f == nil {
		return 0, true
	}
	if f.cell != nil {
		cf, okF := f.cell[from]
		ct, okT := f.cell[to]
		if okF && okT && cf != ct {
			c.faultStats.Blocked++
			return 0, false
		}
	}
	throttled := false
	for ri := range f.rules {
		r := &f.rules[ri]
		if !r.From.matches(from) || !r.To.matches(to) {
			continue
		}
		if r.Loss > 0 && f.rng.Float64() < r.Loss {
			c.faultStats.Dropped++
			return 0, false
		}
		extra += r.Extra
		if r.Jitter > 0 {
			extra += time.Duration(f.rng.Int63n(int64(r.Jitter)))
		}
		if r.BytesPerSec > 0 && size > 0 {
			// FIFO serialization: the message departs once the link frees
			// and its own bytes have been clocked out.
			key := linkKey{rule: ri, from: from, to: to}
			free := f.linkFree[key]
			if free < now {
				free = now
			}
			depart := free + time.Duration(int64(size)*int64(time.Second)/r.BytesPerSec)
			f.linkFree[key] = depart
			if q := depart - now; q > 0 {
				extra += q
				throttled = true
			}
		}
	}
	if throttled {
		c.faultStats.Throttled++
	} else if extra > 0 {
		c.faultStats.Delayed++
	}
	return extra, true
}
