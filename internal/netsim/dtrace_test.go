package netsim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"gocast/internal/core"
	"gocast/internal/dtrace"
)

// runTracedLossy boots a traced cluster, injects messages under 10% loss,
// and returns the stitched traces plus the raw span snapshot.
func runTracedLossy(t testing.TB, seed int64) ([]*dtrace.MessageTrace, []dtrace.Span) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.TraceSampleEvery = 1
	spans := dtrace.NewBuffer(64 * 8 * 16)
	c := New(Options{Nodes: 64, Seed: seed, Config: cfg, Spans: spans})
	c.BootstrapMembership(cfg.MemberViewSize / 2)
	c.WireRandom(cfg.TargetDegree() / 2)
	c.Start(0)
	c.Run(90 * time.Second)

	c.SetFaults(&FaultSpec{Seed: seed + 1, Rules: []LinkFault{{Loss: 0.10}}})
	c.InjectStream(8, 100, nil)
	c.Run(30 * time.Second)

	got := c.Spans()
	if d := spans.Dropped(); d != 0 {
		t.Fatalf("span buffer evicted %d spans; size the buffer for the run", d)
	}
	return dtrace.Stitch(got), got
}

// TestTracingDistinguishesTreeFromPullRecovery is the tracing acceptance
// criterion: under 10% message loss with every message sampled, the
// stitched traces attribute each delivery to its path — most rode the
// tree, and the losses were recovered by gossip pull — and the rendered
// tree shows both.
func TestTracingDistinguishesTreeFromPullRecovery(t *testing.T) {
	traces, _ := runTracedLossy(t, 21)
	if len(traces) != 8 {
		t.Fatalf("stitched %d messages, want 8", len(traces))
	}
	var totTree, totPull int
	for _, tr := range traces {
		if tr.Root == nil {
			t.Fatalf("msg %d/%d: no inject span stitched as root", tr.Src, tr.Seq)
		}
		if len(tr.Orphans) != 0 {
			t.Fatalf("msg %d/%d: %d orphan deliveries with a complete shared buffer", tr.Src, tr.Seq, len(tr.Orphans))
		}
		if len(tr.Deliveries) != 64 {
			t.Fatalf("msg %d/%d: %d deliveries traced, want all 64", tr.Src, tr.Seq, len(tr.Deliveries))
		}
		tree, pull, _, _ := tr.Counts()
		totTree += tree
		totPull += pull
		for _, d := range tr.Deliveries {
			if d.Via == "pull" && d.RTT <= 0 {
				t.Errorf("msg %d/%d node %d: pull delivery without request-to-reply RTT", tr.Src, tr.Seq, d.Node)
			}
			if d.Via != "inject" && d.Hops <= 0 {
				t.Errorf("msg %d/%d node %d: %s delivery with hop count %d", tr.Src, tr.Seq, d.Node, d.Via, d.Hops)
			}
		}
	}
	if totTree == 0 || totPull == 0 {
		t.Fatalf("deliveries: tree=%d pull=%d; 10%% loss must leave both tree pushes and pull recoveries", totTree, totPull)
	}

	// The rendered tree names both path classes with their attribution.
	out := traces[0].Render()
	if !strings.Contains(out, "inject") || !strings.Contains(out, "tree") {
		t.Fatalf("render lacks inject/tree lines:\n%s", out)
	}
	rendered := ""
	for _, tr := range traces {
		rendered += tr.Render()
	}
	if !strings.Contains(rendered, " pull ") || !strings.Contains(rendered, "rtt=") {
		t.Fatalf("no rendered pull recovery with rtt attribution across 8 messages:\n%s", rendered)
	}
}

// TestTracingDeterministic pins that the whole tracing pipeline — span
// emission on the virtual clock, stitching, rendering, Chrome export —
// is a pure function of the seed.
func TestTracingDeterministic(t *testing.T) {
	traces1, spans1 := runTracedLossy(t, 33)
	traces2, spans2 := runTracedLossy(t, 33)

	j1, err := json.Marshal(traces1)
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(traces2)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("stitched traces differ across identical runs:\n%s\n--\n%s", j1, j2)
	}

	var c1, c2 bytes.Buffer
	if err := dtrace.WriteChromeTrace(&c1, traces1, spans1); err != nil {
		t.Fatal(err)
	}
	_ = dtrace.WriteChromeTrace(&c2, traces2, spans2)
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Fatalf("chrome trace export differs across identical runs")
	}

	r1, r2 := "", ""
	for i := range traces1 {
		r1 += traces1[i].Render()
		r2 += traces2[i].Render()
	}
	if r1 != r2 {
		t.Fatalf("rendered trees differ across identical runs:\n%s\n--\n%s", r1, r2)
	}
}

// TestTracingOffLeavesNoSpans pins the sampling contract: with
// TraceSampleEvery unset nothing reaches the span buffer even when an
// observer is installed.
func TestTracingOffLeavesNoSpans(t *testing.T) {
	cfg := core.DefaultConfig()
	spans := dtrace.NewBuffer(1024)
	c := New(Options{Nodes: 16, Seed: 5, Config: cfg, Spans: spans})
	c.BootstrapMembership(cfg.MemberViewSize / 2)
	c.WireRandom(cfg.TargetDegree() / 2)
	c.Start(0)
	c.Run(60 * time.Second)
	c.InjectStream(4, 100, nil)
	c.Run(20 * time.Second)
	if got := spans.Len(); got != 0 {
		t.Fatalf("sampling off but %d spans recorded", got)
	}
}
