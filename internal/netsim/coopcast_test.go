package netsim

import (
	"math/rand"
	"testing"
	"time"

	"gocast/internal/core"
)

// coopcastTestConfig enables erasure-coded bulk dissemination on top of
// the shared fast-converging test timing.
func coopcastTestConfig() core.Config {
	cfg := fastTestConfig()
	cfg.CoopcastThreshold = 8 << 10
	cfg.FECSymbolSize = 1024
	cfg.FECRepair = 4
	return cfg
}

// TestCoopcastLossyLinksReassemble disseminates a 64 KiB payload under 8%
// uniform link loss: tree stripes lose symbols, gossip adverts plus
// per-symbol pulls repair the gaps, and every node must reconstruct from
// whichever K-subset reaches it — the end-to-end any-K-of-N property.
func TestCoopcastLossyLinksReassemble(t *testing.T) {
	const n = 24
	cfg := coopcastTestConfig()
	c := New(Options{Nodes: n, Seed: 13, Config: cfg})
	c.BootstrapMembership(cfg.MemberViewSize / 2)
	c.WireRandom(cfg.TargetDegree() / 2)
	c.Start(0)
	c.Run(60 * time.Second)

	c.SetFaults(&FaultSpec{Seed: 5, Rules: []LinkFault{{Loss: 0.08}}})
	payload := make([]byte, 64<<10)
	rand.New(rand.NewSource(21)).Read(payload)
	c.Inject(0, payload)
	c.Run(2 * time.Minute)

	if got := c.ReceiveCounts()[0]; got != n {
		t.Fatalf("delivered to %d/%d nodes under loss", got, n)
	}
	if v := c.AtomicityViolations(30 * time.Second); v != 0 {
		t.Fatalf("%d atomicity violations", v)
	}
	s := c.SumCounters()
	if s.SymbolsSent == 0 {
		t.Fatalf("no tree-striped symbols sent")
	}
	// 23 receivers must each decode once; the source never decodes.
	if s.FECDecodes != n-1 {
		t.Fatalf("FECDecodes = %d, want %d", s.FECDecodes, n-1)
	}
	if s.FECDecodeFailures != 0 {
		t.Fatalf("%d decode failures", s.FECDecodeFailures)
	}
	if s.SymbolPullsSent == 0 || s.SymbolsServed == 0 {
		t.Fatalf("loss repaired without symbol pulls (pulls=%d served=%d): loss model inert?",
			s.SymbolPullsSent, s.SymbolsServed)
	}
	if fs := c.FaultStats(); fs.Dropped == 0 {
		t.Fatalf("loss rule dropped nothing")
	}
}

// TestCoopcastDisabledMatchesWholePath pins that a zero threshold keeps
// the classic whole-payload path: same cluster, same payload, no symbol
// traffic at all.
func TestCoopcastDisabledMatchesWholePath(t *testing.T) {
	const n = 16
	cfg := fastTestConfig()
	c := New(Options{Nodes: n, Seed: 13, Config: cfg})
	c.BootstrapMembership(cfg.MemberViewSize / 2)
	c.WireRandom(cfg.TargetDegree() / 2)
	c.Start(0)
	c.Run(60 * time.Second)

	payload := make([]byte, 64<<10)
	c.Inject(0, payload)
	c.Run(time.Minute)

	if got := c.ReceiveCounts()[0]; got != n {
		t.Fatalf("delivered to %d/%d nodes", got, n)
	}
	s := c.SumCounters()
	if s.SymbolsSent != 0 || s.SymbolsRecv != 0 || s.SymbolPullsSent != 0 || s.FECDecodes != 0 {
		t.Fatalf("symbol traffic with coopcast disabled: %+v", s)
	}
}
