package netsim

import (
	"testing"
	"time"

	"gocast/internal/core"
)

// downWhilePublishing kills the victim, injects `count` tracked messages
// at 2/s while it is down, then restarts it through `contact`.
func downWhilePublishing(c *Cluster, victim, contact, count int, payload []byte) {
	c.Kill(victim)
	for k := 0; k < count; k++ {
		src := k % 8
		if src == victim {
			src = 8
		}
		s := src
		c.Engine.After(time.Duration(k)*500*time.Millisecond, func() { c.Inject(s, payload) })
	}
	c.Run(time.Duration(count) * 500 * time.Millisecond)
	c.Restart(victim, contact)
}

// TestRestartCatchesUpViaSync is the tentpole acceptance scenario: a node
// misses >= 50 messages while down, restarts with a bumped incarnation,
// and converges to zero recovery violations within bounded virtual time —
// with the backlog arriving through the digest sync protocol, not through
// gossip pulls.
func TestRestartCatchesUpViaSync(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.SyncInterval = 10 * time.Second
	c := buildCluster(t, 32, cfg, 44)
	c.Run(60 * time.Second)

	const victim, contact, missed = 9, 3, 60
	downWhilePublishing(c, victim, contact, missed, []byte("payload-while-down"))
	c.Run(60 * time.Second)

	if v := c.RecoveryViolations(10 * time.Second); v != 0 {
		t.Fatalf("recovery violations = %d, want 0 (restarted node did not catch up)", v)
	}
	st := c.Node(victim).Stats()
	if st.SyncItemsRecv < missed {
		t.Errorf("victim recovered %d items via sync, want >= %d", st.SyncItemsRecv, missed)
	}
	if st.PullsSent != 0 {
		t.Errorf("victim issued %d pulls; backlog recovery must ride the sync protocol", st.PullsSent)
	}
	// The whole cluster must agree: no stably-up node is missing anything
	// either (the sync traffic must not have disturbed dissemination).
	if v := c.AtomicityViolations(10 * time.Second); v != 0 {
		t.Errorf("atomicity violations among stably-up nodes = %d, want 0", v)
	}
}

// TestRestartWithoutSyncLeavesGaps is the control: the identical scenario
// with the sync protocol disabled leaves the restarted node permanently
// missing the messages published while it was down — gossip announces each
// ID at most once per neighbor, so there is no other path to the backlog.
func TestRestartWithoutSyncLeavesGaps(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.SyncInterval = -1
	c := buildCluster(t, 32, cfg, 44)
	c.Run(60 * time.Second)

	const victim, contact, missed = 9, 3, 60
	downWhilePublishing(c, victim, contact, missed, []byte("payload-while-down"))
	c.Run(2 * time.Minute)

	if v := c.RecoveryViolations(10 * time.Second); v == 0 {
		t.Fatalf("recovery violations = 0 without sync; the control scenario no longer isolates the protocol")
	} else if v != missed {
		t.Logf("recovery violations without sync = %d (missed %d)", v, missed)
	}
	// The gaps are invisible to the stably-up criterion, which excuses
	// restarted lives — exactly the blind spot sync exists to close.
	if v := c.AtomicityViolations(10 * time.Second); v != 0 {
		t.Errorf("atomicity violations among stably-up nodes = %d, want 0", v)
	}
}

// TestSyncPacingUnderByteCap puts the same catch-up through a tight
// SyncBatchBytes budget: every SyncReply must respect the cap (allowing
// the one guaranteed item), the transfer must self-pace request-by-request
// via the More loop, and the victim must still converge.
func TestSyncPacingUnderByteCap(t *testing.T) {
	const (
		victim      = 9
		contact     = 3
		missed      = 60
		payloadSize = 200
		batchBytes  = 2 << 10
	)
	cfg := core.DefaultConfig()
	cfg.SyncInterval = 10 * time.Second
	cfg.SyncBatchBytes = batchBytes

	type replyStat struct{ items, bytes int }
	var replies []replyStat
	requests := 0
	c := New(Options{
		Nodes:  32,
		Seed:   45,
		Config: cfg,
		Observer: func(from, to core.NodeID, m core.Message) {
			switch v := m.(type) {
			case *core.SyncReply:
				if int(to) == victim {
					s := replyStat{items: len(v.Items)}
					for _, it := range v.Items {
						s.bytes += len(it.Payload)
					}
					replies = append(replies, s)
				}
			case *core.SyncRequest:
				if int(from) == victim {
					requests++
				}
			}
		},
	})
	c.BootstrapMembership(cfg.MemberViewSize / 2)
	c.WireRandom(cfg.TargetDegree() / 2)
	c.Start(0)
	c.Run(60 * time.Second)

	// The 60 missed payloads alone span ~6 batch budgets, so catch-up for
	// this slow consumer cannot fit one reply.
	downWhilePublishing(c, victim, contact, missed, make([]byte, payloadSize))
	for k := 0; k < missed; k++ {
		// Publishing continues during catch-up.
		c.Engine.After(time.Duration(k)*500*time.Millisecond, func() {
			if s := c.randomLive(); s >= 0 {
				c.Inject(s, make([]byte, payloadSize))
			}
		})
	}
	c.Run(2 * time.Minute)

	if v := c.RecoveryViolations(10 * time.Second); v != 0 {
		t.Fatalf("recovery violations under byte cap = %d, want 0", v)
	}
	if len(replies) == 0 {
		t.Fatalf("no sync replies observed toward the victim")
	}
	for i, r := range replies {
		if r.bytes > batchBytes+payloadSize {
			t.Errorf("reply %d carried %d payload bytes, budget %d", i, r.bytes, batchBytes)
		}
	}
	// 60 missed messages of 200 bytes (~12 KiB) against a 2 KiB budget
	// need at least 6 reply batches: the More loop must have split the
	// transfer into several request/reply exchanges.
	if len(replies) < 6 {
		t.Errorf("transfer used %d reply batches; expected the More loop to paginate", len(replies))
	}
	if requests < len(replies) {
		t.Errorf("replies (%d) outnumber victim requests (%d): pacing must be request-driven", len(replies), requests)
	}
}
