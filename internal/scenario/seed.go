package scenario

// Seed threading: every random stream in a scenario run derives from the
// single master seed via SubSeed(master, label). The labels are stable
// strings ("faults", "churn/phase-2", "traffic/pubs", ...), so adding a new
// consumer never perturbs existing streams — the property that keeps old
// scenario reports byte-stable across engine changes. The live substrate
// uses the same derivation, which is what lets a wall-clock run replay its
// exact fault schedule from -seed even though protocol timing floats.

// SubSeed derives a deterministic sub-seed from a master seed and a stream
// label using an FNV-1a fold. Identical (master, label) always yields the
// same sub-seed; distinct labels decorrelate streams.
func SubSeed(master int64, label string) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= uint64(master>>(8*i)) & 0xff
		h *= prime64
	}
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	s := int64(h)
	if s == 0 {
		// math/rand.NewSource(0) is legal but some layers treat 0 as
		// "unseeded"; nudge away from it.
		s = 1
	}
	return s
}
