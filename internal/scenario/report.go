package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Invariant names as they appear in reports.
const (
	InvAtomicity       = "atomicity"
	InvTreeValid       = "tree-valid"
	InvConvergence     = "convergence"
	InvRecovery        = "recovery"
	InvNoCriticalSheds = "no-critical-sheds"
)

// Violation is one invariant breach, anchored to the phase and scenario
// time it was detected at.
type Violation struct {
	Invariant string        `json:"invariant"`
	Phase     string        `json:"phase"`
	At        time.Duration `json:"at"`
	Detail    string        `json:"detail"`
	// Trace is the stitched dissemination trace of one offending message
	// (rendered ASCII tree, see internal/dtrace), attached when the
	// substrate can reconstruct it — today, atomicity failures on netsim.
	// JSON-only: Render omits it so report text stays compact and
	// byte-identical whether or not tracing captured the offender.
	Trace string `json:"trace,omitempty"`
}

// InvariantResult is the end-of-run verdict for one invariant.
type InvariantResult struct {
	Name   string `json:"name"`
	Status string `json:"status"` // "pass", "FAIL", "skipped"
	Detail string `json:"detail,omitempty"`
}

// PhaseResult summarizes one executed phase.
type PhaseResult struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`
	// Faults counts faults injected during the phase, by kind.
	Faults map[string]int64 `json:"faults,omitempty"`
	// Checks and Violations count continuous invariant evaluations.
	Checks     int `json:"checks"`
	Violations int `json:"violations"`
}

// Report is a completed run's verdict. On the netsim substrate every
// field is a pure function of (scenario, seed): Render output is
// byte-identical across runs, which the determinism tests assert.
type Report struct {
	Scenario  string        `json:"scenario"`
	Substrate string        `json:"substrate"`
	Seed      int64         `json:"seed"`
	Nodes     int           `json:"nodes"`
	Duration  time.Duration `json:"duration"` // scenario time

	Phases     []PhaseResult     `json:"phases"`
	Invariants []InvariantResult `json:"invariants"`
	Violations []Violation       `json:"violations,omitempty"`
	// ViolationsTotal counts every detection; Violations keeps at most
	// violationCap examples per (invariant, phase) so reports stay small.
	ViolationsTotal int `json:"violations_total"`

	Published   int64            `json:"published"`
	ChurnEvents int64            `json:"churn_events"`
	FaultCounts map[string]int64 `json:"fault_counts,omitempty"`

	Passed bool `json:"passed"`
}

// violationCap bounds recorded examples per (invariant, phase).
const violationCap = 5

// Failed returns the names of invariants that failed.
func (r *Report) Failed() []string {
	var out []string
	for _, iv := range r.Invariants {
		if iv.Status == "FAIL" {
			out = append(out, iv.Name)
		}
	}
	return out
}

// Render formats the report as a fixed-width text block. All times are
// scenario time, so netsim renderings are deterministic.
func (r *Report) Render() string {
	var b strings.Builder
	verdict := "PASS"
	if !r.Passed {
		verdict = "FAIL"
	}
	fmt.Fprintf(&b, "scenario %s [%s] seed=%d nodes=%d duration=%s: %s\n",
		r.Scenario, r.Substrate, r.Seed, r.Nodes, r.Duration, verdict)

	fmt.Fprintf(&b, "  phases:\n")
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "    %-18s %8s..%-8s checks=%-3d violations=%-3d %s\n",
			p.Name, p.Start, p.End, p.Checks, p.Violations, renderKinds(p.Faults))
	}

	fmt.Fprintf(&b, "  invariants:\n")
	for _, iv := range r.Invariants {
		line := fmt.Sprintf("    %-18s %s", iv.Name, iv.Status)
		if iv.Detail != "" {
			line += "  (" + iv.Detail + ")"
		}
		b.WriteString(line + "\n")
	}

	if len(r.Violations) > 0 {
		fmt.Fprintf(&b, "  violations (%d total, first %d shown per invariant+phase):\n",
			r.ViolationsTotal, violationCap)
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "    [%s] phase=%s at=%s: %s\n", v.Invariant, v.Phase, v.At, v.Detail)
		}
	}

	fmt.Fprintf(&b, "  traffic: published=%d churn_events=%d %s\n",
		r.Published, r.ChurnEvents, renderKinds(r.FaultCounts))
	return b.String()
}

// renderKinds formats a count map deterministically (sorted keys, zero
// entries skipped).
func renderKinds(m map[string]int64) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k, v := range m {
		if v != 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return strings.Join(parts, " ")
}
