package scenario

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"gocast/internal/churn"
	"gocast/internal/core"
)

// Options configures one scenario run.
type Options struct {
	// Substrate selects the backend: "netsim" (default) or "live".
	Substrate string
	// Seed overrides the scenario's declared seed when nonzero.
	Seed int64
	// Metrics, when set, receives gocast_scenario_* updates.
	Metrics *Metrics
	// Progress, when set, is updated live for /statusz.
	Progress *Progress
	// Config overrides the netsim protocol config (zero value = default
	// scenario timing). Ignored on the live substrate. Used by tests to
	// break the protocol deliberately (e.g. disable sync) and prove the
	// invariant checker bites.
	Config *core.Config
}

// Run executes a scenario and returns its report. The error is non-nil
// only for structural problems (invalid scenario, unknown substrate);
// invariant failures are reported in Report.Passed / Report.Violations.
func Run(s *Scenario, opts Options) (*Report, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	seed := s.Seed
	if opts.Seed != 0 {
		seed = opts.Seed
	}
	var sub substrate
	switch opts.Substrate {
	case "", "netsim":
		cfg := netsimConfig()
		if opts.Config != nil {
			cfg = *opts.Config
		}
		if s.CoopcastThreshold > 0 {
			cfg.CoopcastThreshold = s.CoopcastThreshold
		}
		sub = newNetsimSub(s, seed, cfg)
	case "live":
		sub = newLiveSub(s, seed)
	default:
		return nil, fmt.Errorf("scenario: unknown substrate %q", opts.Substrate)
	}
	defer sub.close()

	e := &engine{s: s, seed: seed, sub: sub, m: opts.Metrics, prog: opts.Progress}
	e.rep = &Report{
		Scenario:  s.Name,
		Substrate: sub.name(),
		Seed:      seed,
		Nodes:     s.TotalNodes(),
	}
	e.prog.update(func(p *ProgressSnapshot) {
		*p = ProgressSnapshot{Scenario: s.Name, Substrate: sub.name(), Seed: seed, Phase: "warmup", PhaseIndex: -1}
	})
	e.run()
	return e.rep, nil
}

// engine drives one scenario run over a substrate.
type engine struct {
	s    *Scenario
	seed int64
	sub  substrate
	m    *Metrics
	prog *Progress
	rep  *Report

	phaseName   string
	trafficStop atomic.Bool
	// perInvPhase caps recorded violation examples per (invariant, phase).
	perInvPhase map[[2]string]int
	// latched invariants are only recorded once per phase after tripping.
	shedsSeen int64
	checks    int64
	viols     int64
}

func (e *engine) run() {
	s := e.s
	e.perInvPhase = make(map[[2]string]int)
	e.phaseName = "warmup"
	e.startTraffic()
	if s.Warmup > 0 {
		e.sub.run(time.Duration(s.Warmup))
	}

	for i := range s.Phases {
		e.runPhase(i)
	}

	e.drainAndJudge()
}

// startTraffic launches the steady publisher pumps. Traffic begins at
// warmup end and stops when the drain begins, so end-of-run grace windows
// judge a closed message set.
func (e *engine) startTraffic() {
	s := e.s
	for _, g := range s.Groups {
		if g.Role != RolePublisher || g.Rate <= 0 {
			continue
		}
		lo, hi, _ := s.GroupRange(g.Name)
		rng := rand.New(rand.NewSource(SubSeed(e.seed, "traffic/"+g.Name)))
		interval := time.Duration(float64(time.Second) / g.Rate)
		payload := make([]byte, g.Payload)
		seq := 0
		var pump func()
		pump = func() {
			if e.trafficStop.Load() {
				return
			}
			i := lo + seq%(hi-lo)
			seq++
			if e.sub.alive(i) {
				e.sub.publish(i, payload)
			}
			// Jitter the cadence ±25% so publishes do not phase-lock with
			// protocol timers; the stream stays seed-deterministic.
			j := interval/2 + time.Duration(rng.Int63n(int64(interval)))
			e.sub.after(j, pump)
		}
		e.sub.after(time.Duration(s.Warmup)+interval, pump)
	}
}

// runPhase installs phase i's faults, runs its duration under continuous
// checks, and clears the faults at the barrier.
func (e *engine) runPhase(i int) {
	s := e.s
	p := &s.Phases[i]
	e.phaseName = p.Name
	start := e.sub.now()
	e.m.phaseTransition(i)
	e.prog.update(func(ps *ProgressSnapshot) {
		ps.Phase = p.Name
		ps.PhaseIndex = i
		ps.Elapsed = start
	})

	pr := PhaseResult{Name: p.Name, Start: start, Faults: make(map[string]int64)}
	checksBefore, violsBefore := e.checks, e.viols

	faults := e.compileFaults(i, p)
	var flapStop *atomic.Bool
	if p.Flap != nil {
		flapStop = e.startFlap(i, p, faults, &pr)
	} else if !faults.empty() {
		e.sub.setFaults(faults)
		for kind, n := range installKinds(p) {
			pr.Faults[kind] += n
			e.m.FaultInjected(kind, n)
		}
	}
	churnBefore := e.sub.churnEvents()
	if p.Churn != nil {
		e.startChurn(i, p)
	}
	var floodStop *atomic.Bool
	if p.Flood != nil {
		floodStop = e.startFlood(i, p, &pr)
	}
	if p.Rolling != nil {
		e.startRolling(i, p, &pr)
	}

	e.runChecked(time.Duration(p.Duration))

	// Phase barrier: faults clear, pumps stop, counters land.
	if flapStop != nil {
		flapStop.Store(true)
	}
	if floodStop != nil {
		floodStop.Store(true)
	}
	e.sub.setFaults(&compiledFaults{})
	if n := e.sub.churnEvents() - churnBefore; n > 0 {
		pr.Faults["churn"] += n
		e.m.FaultInjected("churn", n)
	}
	pr.End = e.sub.now()
	pr.Checks = int(e.checks - checksBefore)
	pr.Violations = int(e.viols - violsBefore)
	e.rep.Phases = append(e.rep.Phases, pr)
}

// compileFaults resolves a phase's group-level fault declarations to node
// indexes.
func (e *engine) compileFaults(i int, p *Phase) *compiledFaults {
	s := e.s
	f := &compiledFaults{
		seed: SubSeed(e.seed, fmt.Sprintf("faults/%d", i)),
		loss: p.Loss,
	}
	cells := p.Partition
	if p.Flap != nil {
		cells = p.Flap.Cells
	}
	for _, cell := range cells {
		var idx []int
		for _, name := range cell {
			lo, hi, _ := s.GroupRange(name)
			for k := lo; k < hi; k++ {
				idx = append(idx, k)
			}
		}
		f.partition = append(f.partition, idx)
	}
	for _, l := range p.Links {
		cl := compiledLink{
			delay:       time.Duration(l.Delay),
			jitter:      time.Duration(l.Jitter),
			bytesPerSec: l.BytesPerSec,
		}
		if l.From != "" {
			cl.fromLo, cl.fromHi, _ = s.GroupRange(l.From)
		}
		if l.To != "" {
			cl.toLo, cl.toHi, _ = s.GroupRange(l.To)
		}
		f.links = append(f.links, cl)
	}
	return f
}

// installKinds maps a phase's static fault declarations to kind counts
// for metrics and the report (one install per kind per phase; churn,
// flood, flap, and rolling are counted per event elsewhere).
func installKinds(p *Phase) map[string]int64 {
	out := make(map[string]int64)
	if p.Partition != nil {
		out["partition"] = 1
	}
	if p.Loss > 0 {
		out["loss"] = 1
	}
	if len(p.Links) > 0 {
		out["link"] = int64(len(p.Links))
	}
	return out
}

// startFlap installs the flap's partition and schedules toggles every
// half period until the phase ends.
func (e *engine) startFlap(i int, p *Phase, faults *compiledFaults, pr *PhaseResult) *atomic.Bool {
	stop := &atomic.Bool{}
	on := true
	e.sub.setFaults(faults)
	pr.Faults["flap"]++
	e.m.FaultInjected("flap", 1)
	half := time.Duration(p.Flap.Period) / 2
	var toggle func()
	toggle = func() {
		if stop.Load() {
			return
		}
		on = !on
		if on {
			e.sub.setFaults(faults)
		} else {
			// Heal: keep non-partition faults (loss/links) active.
			healed := *faults
			healed.partition = nil
			e.sub.setFaults(&healed)
		}
		pr.Faults["flap"]++
		e.m.FaultInjected("flap", 1)
		e.sub.after(half, toggle)
	}
	e.sub.after(half, toggle)
	return stop
}

func (e *engine) startChurn(i int, p *Phase) {
	s := e.s
	prot := protectedCount(s)
	if prot < 1 {
		prot = 1 // never churn the root slot
	}
	n := s.TotalNodes()
	e.sub.startChurn(churnSpec{
		plan: churn.Plan{
			Seed:          SubSeed(e.seed, fmt.Sprintf("churn/%d", i)),
			Duration:      time.Duration(p.Duration),
			JoinPerMin:    p.Churn.JoinPerMin,
			LeavePerMin:   p.Churn.LeavePerMin,
			CrashPerMin:   p.Churn.CrashPerMin,
			RestartPerMin: p.Churn.RestartPerMin,
		},
		protected: prot,
		minAlive:  n / 2,
		maxNodes:  n + n/2,
	})
}

// startFlood pumps extra publishes from the target group for the phase.
func (e *engine) startFlood(i int, p *Phase, pr *PhaseResult) *atomic.Bool {
	s := e.s
	stop := &atomic.Bool{}
	lo, hi, _ := s.GroupRange(p.Flood.Group)
	rng := rand.New(rand.NewSource(SubSeed(e.seed, fmt.Sprintf("flood/%d", i))))
	interval := time.Duration(float64(time.Second) / p.Flood.PerSec)
	if interval <= 0 {
		interval = time.Millisecond
	}
	payload := make([]byte, p.Flood.Payload)
	seq := 0
	var pump func()
	pump = func() {
		if stop.Load() {
			return
		}
		idx := lo + seq%(hi-lo)
		seq++
		if e.sub.alive(idx) && e.sub.publish(idx, payload) {
			pr.Faults["flood"]++
			e.m.FaultInjected("flood", 1)
		}
		j := interval/2 + time.Duration(rng.Int63n(int64(interval)))
		e.sub.after(j, pump)
	}
	e.sub.after(interval, pump)
	return stop
}

// startRolling schedules the rolling restart chain: every Every, crash
// the next group member and restart it Downtime later.
func (e *engine) startRolling(i int, p *Phase, pr *PhaseResult) {
	s := e.s
	lo, hi, _ := s.GroupRange(p.Rolling.Group)
	every := time.Duration(p.Rolling.Every)
	down := time.Duration(p.Rolling.Downtime)
	k := 0
	for at := every; at+down <= time.Duration(p.Duration); at += every {
		idx := lo + k%(hi-lo)
		k++
		target := idx
		e.sub.after(at, func() {
			if e.sub.alive(target) {
				e.sub.crash(target)
				pr.Faults["rolling"]++
				e.m.FaultInjected("rolling", 1)
			}
		})
		e.sub.after(at+down, func() {
			if !e.sub.alive(target) {
				e.sub.restart(target)
			}
		})
	}
}

// runChecked advances scenario time in CheckEvery chunks, running the
// continuous invariants between chunks.
func (e *engine) runChecked(d time.Duration) {
	step := e.s.checkEvery()
	for elapsed := time.Duration(0); elapsed < d; {
		chunk := step
		if rest := d - elapsed; rest < chunk {
			chunk = rest
		}
		e.sub.run(chunk)
		elapsed += chunk
		e.continuousCheck()
	}
}

// continuousCheck evaluates the invariants that must hold even while
// faults are live: tree validity and no Critical sheds.
func (e *engine) continuousCheck() {
	inv := e.s.Invariants
	before := e.viols
	if inv.TreeValid {
		e.checkTree()
	}
	if inv.NoCriticalSheds {
		if sheds := e.sub.criticalSheds(); sheds > e.shedsSeen {
			e.violate(InvNoCriticalSheds,
				fmt.Sprintf("%d Critical-class messages shed (was %d)", sheds, e.shedsSeen))
			e.shedsSeen = sheds
		}
	}
	e.checks++
	e.m.check(int(e.viols - before))
	e.prog.update(func(ps *ProgressSnapshot) {
		ps.Elapsed = e.sub.now()
		ps.Checks = e.checks
		ps.Violations = e.viols
	})
}

// checkTree verifies the embedded tree is acyclic and degree-bounded over
// the live membership. Partitioned segments may hold separate roots; what
// can never legitimately happen is a parent cycle or a degree blowout.
func (e *engine) checkTree() {
	n := e.sub.nodeCount()
	maxDeg := e.s.Invariants.MaxDegree
	if maxDeg == 0 {
		maxDeg = defaultMaxDegree()
	}
	parent := make([]int, n)
	for i := 0; i < n; i++ {
		parent[i] = -1
		if !e.sub.alive(i) {
			continue
		}
		p, _, deg := e.sub.treeNode(i)
		parent[i] = p
		if deg > maxDeg {
			e.violate(InvTreeValid, fmt.Sprintf("node %d degree %d exceeds bound %d", i, deg, maxDeg))
		}
	}
	// Cycle detection via iterative coloring: state 0 unvisited, 1 on
	// current path, 2 done.
	state := make([]uint8, n)
	for i := 0; i < n; i++ {
		if !e.sub.alive(i) || state[i] != 0 {
			continue
		}
		var path []int
		j := i
		for j >= 0 && j < n && e.sub.alive(j) && state[j] == 0 {
			state[j] = 1
			path = append(path, j)
			j = parent[j]
		}
		if j >= 0 && j < n && state[j] == 1 {
			e.violate(InvTreeValid, fmt.Sprintf("parent cycle through node %d", j))
		}
		for _, k := range path {
			state[k] = 2
		}
	}
}

// defaultMaxDegree derives the degree bound from the protocol's target:
// C_rand + C_near plus the adaptation slack, plus transient headroom for
// in-flight link handoffs.
func defaultMaxDegree() int {
	cfg := core.DefaultConfig()
	return cfg.TargetDegree() + cfg.DegreeSlack + 2
}

// violate records one invariant breach (capped per invariant+phase).
func (e *engine) violate(inv, detail string) {
	e.viols++
	e.rep.ViolationsTotal++
	key := [2]string{inv, e.phaseName}
	if e.perInvPhase[key] >= violationCap {
		return
	}
	e.perInvPhase[key]++
	e.rep.Violations = append(e.rep.Violations, Violation{
		Invariant: inv,
		Phase:     e.phaseName,
		At:        e.sub.now(),
		Detail:    detail,
	})
}

// drainAndJudge stops traffic, lets the system settle, polls convergence
// against its deadline, then runs the end-of-run invariants and fills the
// final report.
func (e *engine) drainAndJudge() {
	s := e.s
	inv := s.Invariants
	e.phaseName = "drain"
	e.trafficStop.Store(true)
	e.m.phaseTransition(len(s.Phases))
	e.prog.update(func(ps *ProgressSnapshot) {
		ps.Phase = "drain"
		ps.PhaseIndex = len(s.Phases)
	})

	drainStart := e.sub.now()
	drain := time.Duration(s.Drain)
	deadline := time.Duration(inv.ConvergeWithin)
	if deadline <= 0 {
		deadline = time.Duration(DefaultInvariants().ConvergeWithin)
	}
	if inv.Convergence && drain < deadline {
		drain = deadline
	}
	step := s.checkEvery()
	convergedAt := time.Duration(-1)
	lastReason := ""
	for elapsed := time.Duration(0); elapsed < drain; {
		chunk := step
		if rest := drain - elapsed; rest < chunk {
			chunk = rest
		}
		e.sub.run(chunk)
		elapsed += chunk
		e.continuousCheck()
		if inv.Convergence {
			if reason := e.sub.converged(); reason == "" {
				if convergedAt < 0 {
					convergedAt = e.sub.now() - drainStart
				}
				lastReason = ""
			} else {
				lastReason = reason
				convergedAt = -1
			}
		}
	}

	// End-of-run verdicts.
	add := func(name, status, detail string) {
		e.rep.Invariants = append(e.rep.Invariants, InvariantResult{Name: name, Status: status, Detail: detail})
	}
	judge := func(name string, enabled bool, fail bool, detail, passDetail string) {
		if !enabled {
			add(name, "skipped", "")
			return
		}
		e.checks++
		e.m.check(0)
		if fail {
			e.violate(name, detail)
			e.m.check(1)
			add(name, "FAIL", detail)
		} else {
			add(name, "pass", passDetail)
		}
	}

	grace := time.Duration(inv.Grace)
	if grace <= 0 {
		grace = 30 * time.Second
	}
	av := 0
	if inv.Atomicity {
		av = e.sub.atomicityViolations(grace)
	}
	judge(InvAtomicity, inv.Atomicity, av > 0,
		fmt.Sprintf("%d (message, stable-node) deliveries missing after %s grace", av, grace),
		fmt.Sprintf("%d published, 0 missing", e.sub.published()))
	if av > 0 {
		// Attach one offender's stitched dissemination trace to the
		// violation judge just recorded, showing where its tree stopped
		// short (JSON-only; Render stays trace-free).
		if tr := e.sub.offenderTrace(grace); tr != "" {
			for i := len(e.rep.Violations) - 1; i >= 0; i-- {
				if e.rep.Violations[i].Invariant == InvAtomicity {
					e.rep.Violations[i].Trace = tr
					break
				}
			}
		}
	}

	// Tree validity's end verdict summarizes the continuous checks.
	treeViols := 0
	for _, v := range e.rep.Violations {
		if v.Invariant == InvTreeValid {
			treeViols++
		}
	}
	judge(InvTreeValid, inv.TreeValid, treeViols > 0,
		fmt.Sprintf("%d structural violations during run", treeViols),
		"acyclic and degree-bounded at every check")

	switch {
	case !inv.Convergence:
		add(InvConvergence, "skipped", "")
	case convergedAt >= 0 && convergedAt <= deadline:
		e.checks++
		e.m.check(0)
		add(InvConvergence, "pass", fmt.Sprintf("converged %s after faults cleared (deadline %s)", convergedAt, deadline))
	default:
		detail := fmt.Sprintf("not converged within %s", deadline)
		if lastReason != "" {
			detail += ": " + lastReason
		} else if convergedAt > deadline {
			detail = fmt.Sprintf("converged at %s, after the %s deadline", convergedAt, deadline)
		}
		e.violate(InvConvergence, detail)
		e.m.check(1)
		add(InvConvergence, "FAIL", detail)
	}

	if rv, ok := e.sub.recoveryViolations(grace); !ok {
		add(InvRecovery, "skipped", "substrate cannot judge per-life recovery")
	} else {
		judge(InvRecovery, inv.Recovery, rv > 0,
			fmt.Sprintf("%d deliveries never recovered by sync", rv),
			"every restarted node caught up by sync")
	}

	sheds := e.sub.criticalSheds()
	judge(InvNoCriticalSheds, inv.NoCriticalSheds, sheds > 0,
		fmt.Sprintf("%d Critical-class messages shed", sheds),
		"0 Critical-class sheds")

	e.rep.Duration = e.sub.now()
	e.rep.Published = e.sub.published()
	e.rep.ChurnEvents = e.sub.churnEvents()
	e.rep.FaultCounts = e.sub.faultCounters()
	e.rep.Passed = len(e.rep.Failed()) == 0 && e.rep.ViolationsTotal == 0
	e.prog.update(func(ps *ProgressSnapshot) {
		ps.Done = true
		ps.Elapsed = e.rep.Duration
		ps.Checks = e.checks
		ps.Violations = e.viols
	})
}
