package scenario

import (
	"sync"
	"time"

	"gocast/internal/obs"
)

// Metrics surfaces a run's chaos state through an obs.Registry as
// gocast_scenario_* series, scrapeable from /metrics and summarized in
// /statusz via Progress. One Metrics may be shared across sequential runs
// (counters accumulate, as Prometheus expects).
type Metrics struct {
	reg *obs.Registry

	PhaseTransitions    *obs.Counter
	InvariantChecks     *obs.Counter
	InvariantViolations *obs.Counter
	Phase               *obs.Gauge

	mu     sync.Mutex
	faults map[string]*obs.Counter
}

// NewMetrics registers the scenario series on r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		reg: r,
		PhaseTransitions: r.Counter("gocast_scenario_phase_transitions_total",
			"Scenario phase boundaries crossed."),
		InvariantChecks: r.Counter("gocast_scenario_invariant_checks_total",
			"Invariant evaluations performed (continuous and end-of-run)."),
		InvariantViolations: r.Counter("gocast_scenario_invariant_violations_total",
			"Invariant violations detected."),
		Phase: r.Gauge("gocast_scenario_phase",
			"Index of the running scenario phase (-1 warmup/idle, N = len(phases) drain)."),
	}
}

// FaultInjected counts one injected fault of the given kind
// (gocast_scenario_faults_<kind>_total).
func (m *Metrics) FaultInjected(kind string, n int64) {
	if m == nil || n == 0 {
		return
	}
	m.mu.Lock()
	c := m.faults[kind]
	if c == nil {
		if m.faults == nil {
			m.faults = make(map[string]*obs.Counter)
		}
		c = m.reg.Counter("gocast_scenario_faults_"+kind+"_total",
			"Faults of kind "+kind+" injected by the scenario engine.")
		m.faults[kind] = c
	}
	m.mu.Unlock()
	c.Add(n)
}

// nil-safe helpers: the engine runs fine without metrics.

func (m *Metrics) phaseTransition(idx int) {
	if m == nil {
		return
	}
	m.PhaseTransitions.Inc()
	m.Phase.Set(int64(idx))
}

func (m *Metrics) check(violations int) {
	if m == nil {
		return
	}
	m.InvariantChecks.Inc()
	if violations > 0 {
		m.InvariantViolations.Add(int64(violations))
	}
}

// Progress is a mutex-guarded live view of a run, for /statusz. The
// engine updates it at phase boundaries and invariant checks.
type Progress struct {
	mu   sync.Mutex
	snap ProgressSnapshot
}

// ProgressSnapshot is one observation of a running scenario.
type ProgressSnapshot struct {
	Scenario   string        `json:"scenario"`
	Substrate  string        `json:"substrate"`
	Seed       int64         `json:"seed"`
	Phase      string        `json:"phase"`
	PhaseIndex int           `json:"phase_index"`
	Elapsed    time.Duration `json:"elapsed"`
	Checks     int64         `json:"checks"`
	Violations int64         `json:"violations"`
	Done       bool          `json:"done"`
}

// Snapshot returns the latest observation.
func (p *Progress) Snapshot() ProgressSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snap
}

func (p *Progress) update(fn func(*ProgressSnapshot)) {
	if p == nil {
		return
	}
	p.mu.Lock()
	fn(&p.snap)
	p.mu.Unlock()
}
