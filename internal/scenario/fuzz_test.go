package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzParse drives the scenario parser with arbitrary bytes. Properties:
// Parse never panics, and any accepted document survives a canonical
// re-marshal/re-parse round trip to a deeply equal scenario. Seeds come
// from the committed library files, a handful of malformed documents, and
// the committed corpus under testdata/fuzz/FuzzParse; CI runs this for a
// short smoke burst on every push (see .github/workflows/ci.yml).
func FuzzParse(f *testing.F) {
	files, _ := filepath.Glob(filepath.Join(scenariosDir, "*.json"))
	for _, path := range files {
		if data, err := os.ReadFile(path); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte(minimalScenario()))
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","groups":[{"name":"g","role":"publisher","nodes":2}],"phases":[{"name":"p","duration":"0s"}]}`))
	f.Add([]byte(`{"name":"x","groups":[{"name":"g","role":"publisher","nodes":2}],"phases":[{"name":"p","duration":"1s","partition":[["g"],["g"]]}]}`))
	f.Add([]byte(`{"name":"x","groups":[{"name":"g","role":"publisher","nodes":2}],"phases":[{"name":"p","duration":"1e9"}]}`))
	f.Add([]byte(`{"name":" ","groups":[],"phases":null}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		out, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("accepted scenario does not re-marshal: %v", err)
		}
		back, err := Parse(out)
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(back, s) {
			t.Fatalf("round trip changed the scenario:\nin:  %+v\nout: %+v", s, back)
		}
	})
}
