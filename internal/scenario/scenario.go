// Package scenario is a declarative chaos-scenario engine for GoCast.
//
// A Scenario declares node groups with traffic roles, a timeline of fault
// phases (partitions, link flaps, loss, slow links, bandwidth caps, churn
// bursts, overload floods, rolling restarts), and the invariants that must
// hold while the faults are live. One engine runs the same scenario on two
// substrates:
//
//   - netsim: virtual time, fully deterministic. Every random decision —
//     fault schedule, churn events, traffic timing, protocol behavior —
//     derives from the single scenario seed, so two runs of the same
//     scenario+seed produce byte-identical invariant reports.
//   - live: wall clock over the in-memory transport, the same schedule
//     scaled by LiveScale. The fault/churn/traffic schedule is still
//     seed-deterministic; only protocol-internal timing floats.
//
// Scenarios are plain data: committed JSON files under scenarios/ load with
// Load, and the library in library.go builds the same values in Go.
package scenario

import (
	"fmt"
	"sort"
	"time"
)

// Role describes what a node group does with application traffic.
type Role string

const (
	// RolePublisher nodes publish multicast payloads at Group.Rate.
	RolePublisher Role = "publisher"
	// RoleSubscriber nodes only receive (all nodes receive; the role is
	// documentation plus a target for faults).
	RoleSubscriber Role = "subscriber"
	// RoleBystander nodes neither publish nor are flooded; they exist to
	// carry overlay structure and be churned/partitioned.
	RoleBystander Role = "bystander"
)

// Group declares a contiguous block of nodes with a shared role. Groups
// occupy node indexes in declaration order: the first group starts at node
// 0 (which is also the tree root), the next starts where it ended, and so
// on. Protected groups must be declared before unprotected ones so churn
// guardrails can protect a prefix.
type Group struct {
	Name string `json:"name"`
	Role Role   `json:"role"`
	// Nodes is the group's size.
	Nodes int `json:"nodes"`
	// Rate is the group's aggregate publish rate in messages/second
	// (publishers only). Individual publishes round-robin group members.
	Rate float64 `json:"rate,omitempty"`
	// Payload is the publish payload size in bytes.
	Payload int `json:"payload,omitempty"`
	// Protected exempts the group from churn (never crashed/left) and
	// rolling restarts targeting other groups.
	Protected bool `json:"protected,omitempty"`
}

// LinkRule shapes traffic from one group to another for the duration of a
// phase. Empty From/To mean "all groups". Rules are directed; declare two
// for symmetric shaping.
type LinkRule struct {
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// Delay adds fixed one-way latency; Jitter adds uniform [0, Jitter).
	Delay  Duration `json:"delay,omitempty"`
	Jitter Duration `json:"jitter,omitempty"`
	// BytesPerSec caps the directed links with FIFO queueing (netsim) or
	// token-bucket pacing (live).
	BytesPerSec int64 `json:"bytes_per_sec,omitempty"`
}

// Flap toggles a partition on and off for the phase: Period/2 partitioned,
// Period/2 healed, starting partitioned at the phase boundary.
type Flap struct {
	// Cells lists group names per partition cell, as in Phase.Partition.
	Cells [][]string `json:"cells"`
	// Period is one full on+off cycle.
	Period Duration `json:"period"`
}

// ChurnBurst runs a Poisson churn plan (internal/churn) for the phase.
// Rates are events per minute of scenario time.
type ChurnBurst struct {
	JoinPerMin    float64 `json:"join_per_min,omitempty"`
	LeavePerMin   float64 `json:"leave_per_min,omitempty"`
	CrashPerMin   float64 `json:"crash_per_min,omitempty"`
	RestartPerMin float64 `json:"restart_per_min,omitempty"`
}

// Flood directs an overload burst at the governor: the named group
// publishes PerSec messages/second of Payload bytes for the phase,
// on top of its declared steady rate.
type Flood struct {
	Group   string  `json:"group"`
	PerSec  float64 `json:"per_sec"`
	Payload int     `json:"payload,omitempty"`
}

// Rolling restarts the named group one node at a time: every Every, the
// next member crashes and restarts after Downtime.
type Rolling struct {
	Group    string   `json:"group"`
	Every    Duration `json:"every"`
	Downtime Duration `json:"downtime"`
}

// Phase is one segment of the fault timeline. All faults declared in a
// phase start at its beginning and clear at its end (phase barrier).
type Phase struct {
	Name     string   `json:"name"`
	Duration Duration `json:"duration"`
	// Partition splits the cluster into cells of whole groups; traffic
	// between cells is blocked. Groups in no cell are unaffected.
	Partition [][]string `json:"partition,omitempty"`
	// Flap toggles a partition at Flap.Period instead of holding it.
	Flap *Flap `json:"flap,omitempty"`
	// Loss drops each transmission with this probability, cluster-wide.
	Loss float64 `json:"loss,omitempty"`
	// Links shape delay/bandwidth between groups.
	Links []LinkRule `json:"links,omitempty"`
	// Churn runs a Poisson churn burst for the phase.
	Churn *ChurnBurst `json:"churn,omitempty"`
	// Flood floods the governor via one group's publishers.
	Flood *Flood `json:"flood,omitempty"`
	// Rolling restarts a group one node at a time.
	Rolling *Rolling `json:"rolling,omitempty"`
}

// Invariants declares the checks the engine enforces. The zero value
// enables everything with default deadlines; explicit false disables.
type Invariants struct {
	// Atomicity: every message reaches every node alive from publish until
	// check time (+Grace for propagation). Checked at scenario end.
	Atomicity bool     `json:"atomicity"`
	Grace     Duration `json:"grace,omitempty"`
	// TreeValid: the tree is acyclic and degree-bounded at every
	// continuous check. MaxDegree 0 means TargetDegree+DegreeSlack+2.
	TreeValid bool `json:"tree_valid"`
	MaxDegree int  `json:"max_degree,omitempty"`
	// Convergence: within ConvergeWithin after the last phase clears, the
	// overlay is one connected component, every live node agrees on one
	// root, and no stale links to dead incarnations remain.
	Convergence    bool     `json:"convergence"`
	ConvergeWithin Duration `json:"converge_within,omitempty"`
	// Recovery: restarted nodes recover messages they missed (netsim
	// RecoveryViolations == 0). Skipped on the live substrate.
	Recovery bool `json:"recovery"`
	// NoCriticalSheds: the overload layer never sheds a Critical-class
	// message, checked continuously.
	NoCriticalSheds bool `json:"no_critical_sheds"`
}

// DefaultInvariants enables every check with default deadlines.
func DefaultInvariants() Invariants {
	return Invariants{
		Atomicity:       true,
		Grace:           30 * Duration(time.Second),
		TreeValid:       true,
		Convergence:     true,
		ConvergeWithin:  2 * Duration(time.Minute),
		Recovery:        true,
		NoCriticalSheds: true,
	}
}

// Scenario is a complete declarative chaos run.
type Scenario struct {
	Name string `json:"name"`
	// Seed is the master seed. Every random stream in the run — faults,
	// churn, traffic, and (on netsim) the protocol itself — derives from
	// it via SubSeed, so -seed replays the exact schedule.
	Seed   int64   `json:"seed"`
	Groups []Group `json:"groups"`
	// Warmup runs the cluster fault-free before the first phase so the
	// overlay converges from bootstrap.
	Warmup Duration `json:"warmup"`
	Phases []Phase  `json:"phases"`
	// Drain runs fault-free after the last phase before end-of-run checks
	// (convergence deadline counts from the start of drain).
	Drain      Duration   `json:"drain"`
	Invariants Invariants `json:"invariants"`
	// CheckEvery is the continuous-invariant cadence. Default 5s.
	CheckEvery Duration `json:"check_every,omitempty"`
	// LiveScale compresses every scenario duration on the live substrate
	// (e.g. 0.05 turns a 2-minute netsim phase into 6 wall seconds).
	// Default 0.05. Netsim ignores it.
	LiveScale float64 `json:"live_scale,omitempty"`
	// CoopcastThreshold enables erasure-coded bulk dissemination on both
	// substrates: payloads at or above this many bytes are striped as FEC
	// symbols down the tree and repaired symbol-by-symbol through gossip.
	// Zero keeps the classic whole-payload path.
	CoopcastThreshold int `json:"coopcast_threshold,omitempty"`
}

// TotalNodes is the sum of group sizes.
func (s *Scenario) TotalNodes() int {
	n := 0
	for _, g := range s.Groups {
		n += g.Nodes
	}
	return n
}

// GroupRange returns the node-index interval [lo, hi) a group occupies, or
// ok=false if the name is unknown.
func (s *Scenario) GroupRange(name string) (lo, hi int, ok bool) {
	at := 0
	for _, g := range s.Groups {
		if g.Name == name {
			return at, at + g.Nodes, true
		}
		at += g.Nodes
	}
	return 0, 0, false
}

// checkEvery returns the effective continuous-check cadence.
func (s *Scenario) checkEvery() time.Duration {
	if s.CheckEvery > 0 {
		return time.Duration(s.CheckEvery)
	}
	return 5 * time.Second
}

// liveScale returns the effective live-substrate time compression.
func (s *Scenario) liveScale() float64 {
	if s.LiveScale > 0 {
		return s.LiveScale
	}
	return 0.05
}

// Validate checks structural well-formedness: it is the single gate both
// Load and the engine run behind, and the surface the parser fuzz target
// exercises. It returns the first problem found.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: name required")
	}
	if len(s.Groups) == 0 {
		return fmt.Errorf("scenario %s: at least one group required", s.Name)
	}
	names := make(map[string]bool, len(s.Groups))
	protectedDone := false
	for i, g := range s.Groups {
		if g.Name == "" {
			return fmt.Errorf("scenario %s: group %d: name required", s.Name, i)
		}
		if names[g.Name] {
			return fmt.Errorf("scenario %s: duplicate group %q", s.Name, g.Name)
		}
		names[g.Name] = true
		switch g.Role {
		case RolePublisher, RoleSubscriber, RoleBystander:
		default:
			return fmt.Errorf("scenario %s: group %q: unknown role %q", s.Name, g.Name, g.Role)
		}
		if g.Nodes <= 0 {
			return fmt.Errorf("scenario %s: group %q: nodes must be positive", s.Name, g.Name)
		}
		if g.Rate < 0 || g.Payload < 0 {
			return fmt.Errorf("scenario %s: group %q: negative rate or payload", s.Name, g.Name)
		}
		if g.Rate > 0 && g.Role != RolePublisher {
			return fmt.Errorf("scenario %s: group %q: rate set on non-publisher", s.Name, g.Name)
		}
		if g.Protected && protectedDone {
			return fmt.Errorf("scenario %s: protected group %q must precede unprotected groups", s.Name, g.Name)
		}
		if !g.Protected {
			protectedDone = true
		}
	}
	if n := s.TotalNodes(); n < 2 {
		return fmt.Errorf("scenario %s: need at least 2 nodes, have %d", s.Name, n)
	} else if n > 4096 {
		return fmt.Errorf("scenario %s: %d nodes exceeds the 4096 cap", s.Name, n)
	}
	if s.Warmup < 0 || s.Drain < 0 || s.CheckEvery < 0 {
		return fmt.Errorf("scenario %s: negative warmup/drain/check_every", s.Name)
	}
	if s.LiveScale < 0 || s.LiveScale > 1 {
		return fmt.Errorf("scenario %s: live_scale must be in (0, 1]", s.Name)
	}
	if s.CoopcastThreshold < 0 {
		return fmt.Errorf("scenario %s: negative coopcast_threshold", s.Name)
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario %s: at least one phase required", s.Name)
	}
	for i := range s.Phases {
		if err := s.validatePhase(i, names); err != nil {
			return err
		}
	}
	inv := s.Invariants
	if inv.Grace < 0 || inv.ConvergeWithin < 0 || inv.MaxDegree < 0 {
		return fmt.Errorf("scenario %s: negative invariant deadline", s.Name)
	}
	return nil
}

func (s *Scenario) validatePhase(i int, groups map[string]bool) error {
	p := &s.Phases[i]
	where := fmt.Sprintf("scenario %s: phase %d (%s)", s.Name, i, p.Name)
	if p.Name == "" {
		return fmt.Errorf("scenario %s: phase %d: name required", s.Name, i)
	}
	if p.Duration <= 0 {
		return fmt.Errorf("%s: duration must be positive", where)
	}
	checkCells := func(cells [][]string) error {
		if len(cells) < 2 {
			return fmt.Errorf("%s: partition needs at least 2 cells", where)
		}
		seen := make(map[string]bool)
		for _, cell := range cells {
			if len(cell) == 0 {
				return fmt.Errorf("%s: empty partition cell", where)
			}
			for _, name := range cell {
				if !groups[name] {
					return fmt.Errorf("%s: partition references unknown group %q", where, name)
				}
				if seen[name] {
					return fmt.Errorf("%s: group %q appears in two partition cells", where, name)
				}
				seen[name] = true
			}
		}
		return nil
	}
	if p.Partition != nil {
		if p.Flap != nil {
			return fmt.Errorf("%s: partition and flap are mutually exclusive", where)
		}
		if err := checkCells(p.Partition); err != nil {
			return err
		}
	}
	if p.Flap != nil {
		if p.Flap.Period <= 0 {
			return fmt.Errorf("%s: flap period must be positive", where)
		}
		if time.Duration(p.Flap.Period) > time.Duration(p.Duration) {
			return fmt.Errorf("%s: flap period exceeds phase duration", where)
		}
		if err := checkCells(p.Flap.Cells); err != nil {
			return err
		}
	}
	if p.Loss < 0 || p.Loss >= 1 {
		return fmt.Errorf("%s: loss must be in [0, 1)", where)
	}
	for j, l := range p.Links {
		if l.From != "" && !groups[l.From] {
			return fmt.Errorf("%s: link %d: unknown group %q", where, j, l.From)
		}
		if l.To != "" && !groups[l.To] {
			return fmt.Errorf("%s: link %d: unknown group %q", where, j, l.To)
		}
		if l.Delay < 0 || l.Jitter < 0 || l.BytesPerSec < 0 {
			return fmt.Errorf("%s: link %d: negative delay/jitter/bandwidth", where, j)
		}
		if l.Delay == 0 && l.Jitter == 0 && l.BytesPerSec == 0 {
			return fmt.Errorf("%s: link %d: no effect declared", where, j)
		}
	}
	if c := p.Churn; c != nil {
		if c.JoinPerMin < 0 || c.LeavePerMin < 0 || c.CrashPerMin < 0 || c.RestartPerMin < 0 {
			return fmt.Errorf("%s: negative churn rate", where)
		}
		if c.JoinPerMin == 0 && c.LeavePerMin == 0 && c.CrashPerMin == 0 && c.RestartPerMin == 0 {
			return fmt.Errorf("%s: churn burst with all-zero rates", where)
		}
	}
	if f := p.Flood; f != nil {
		if !groups[f.Group] {
			return fmt.Errorf("%s: flood targets unknown group %q", where, f.Group)
		}
		if f.PerSec <= 0 {
			return fmt.Errorf("%s: flood rate must be positive", where)
		}
		if f.Payload < 0 {
			return fmt.Errorf("%s: negative flood payload", where)
		}
	}
	if r := p.Rolling; r != nil {
		if !groups[r.Group] {
			return fmt.Errorf("%s: rolling restart targets unknown group %q", where, r.Group)
		}
		lo, hi, _ := s.GroupRange(r.Group)
		if lo == 0 && hi > 0 {
			return fmt.Errorf("%s: rolling restart may not target the root's group %q", where, r.Group)
		}
		if r.Every <= 0 || r.Downtime <= 0 {
			return fmt.Errorf("%s: rolling every/downtime must be positive", where)
		}
		if r.Downtime >= r.Every {
			return fmt.Errorf("%s: rolling downtime must be shorter than the interval", where)
		}
	}
	return nil
}

// FaultKinds returns the sorted set of fault kinds a scenario injects,
// for metrics and report headers.
func (s *Scenario) FaultKinds() []string {
	kinds := make(map[string]bool)
	for _, p := range s.Phases {
		if p.Partition != nil {
			kinds["partition"] = true
		}
		if p.Flap != nil {
			kinds["flap"] = true
		}
		if p.Loss > 0 {
			kinds["loss"] = true
		}
		if len(p.Links) > 0 {
			kinds["link"] = true
		}
		if p.Churn != nil {
			kinds["churn"] = true
		}
		if p.Flood != nil {
			kinds["flood"] = true
		}
		if p.Rolling != nil {
			kinds["rolling"] = true
		}
	}
	out := make([]string, 0, len(kinds))
	for k := range kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
