package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestDurationRoundTrip pins the two accepted wire forms: Go duration
// strings and raw nanosecond numbers, both surviving a marshal cycle.
func TestDurationRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{`"90s"`, 90 * time.Second},
		{`"2m30s"`, 2*time.Minute + 30*time.Second},
		{`"150ms"`, 150 * time.Millisecond},
		{`1000000000`, time.Second},
		{`0`, 0},
	}
	for _, c := range cases {
		var d Duration
		if err := json.Unmarshal([]byte(c.in), &d); err != nil {
			t.Errorf("unmarshal %s: %v", c.in, err)
			continue
		}
		if time.Duration(d) != c.want {
			t.Errorf("unmarshal %s = %v, want %v", c.in, time.Duration(d), c.want)
		}
		out, err := json.Marshal(d)
		if err != nil {
			t.Errorf("marshal %v: %v", c.want, err)
			continue
		}
		var back Duration
		if err := json.Unmarshal(out, &back); err != nil || back != d {
			t.Errorf("round-trip %s -> %s -> %v (err %v)", c.in, out, time.Duration(back), err)
		}
	}
	for _, bad := range []string{`"90x"`, `"s"`, `true`, `["1s"]`, `{"d":"1s"}`} {
		var d Duration
		if err := json.Unmarshal([]byte(bad), &d); err == nil {
			t.Errorf("unmarshal %s: expected error, got %v", bad, time.Duration(d))
		}
	}
}

// minimalScenario returns a scenario document that parses and validates.
func minimalScenario() string {
	return `{
  "name": "mini",
  "seed": 1,
  "groups": [
    {"name": "a", "role": "publisher", "nodes": 4, "rate": 1, "protected": true},
    {"name": "b", "role": "subscriber", "nodes": 4}
  ],
  "warmup": "30s",
  "phases": [{"name": "quiet", "duration": "30s"}],
  "drain": "30s",
  "invariants": {"atomicity": true, "tree_valid": true, "convergence": true, "recovery": true, "no_critical_sheds": true}
}`
}

// TestParseRejectsMalformed walks the malformed-input table: every entry
// must fail with an error mentioning the offending part, and none may
// panic.
func TestParseRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring expected in the error
	}{
		{"empty", ``, "parse"},
		{"not-json", `hello`, "parse"},
		{"trailing-data", minimalScenario() + `{"again": true}`, "trailing data"},
		{"unknown-field", `{"name":"x","bogus":1}`, "bogus"},
		{"no-groups", `{"name":"x","phases":[{"name":"p","duration":"1s"}]}`, "group"},
		{"bad-role", strings.Replace(minimalScenario(), `"subscriber"`, `"listener"`, 1), "role"},
		{"duplicate-group", strings.Replace(minimalScenario(), `"name": "b"`, `"name": "a"`, 1), "duplicate"},
		{"rate-on-bystander", strings.Replace(minimalScenario(), `"role": "subscriber", "nodes": 4`, `"role": "bystander", "nodes": 4, "rate": 2`, 1), "rate"},
		{"zero-duration-phase", strings.Replace(minimalScenario(), `{"name": "quiet", "duration": "30s"}`, `{"name": "quiet", "duration": "0s"}`, 1), "duration"},
		{"negative-duration-phase", strings.Replace(minimalScenario(), `"duration": "30s"`, `"duration": "-5s"`, 1), "duration"},
		{"one-cell-partition", strings.Replace(minimalScenario(), `"duration": "30s"}`, `"duration": "30s", "partition": [["a","b"]]}`, 1), "partition"},
		{"overlapping-partition", strings.Replace(minimalScenario(), `"duration": "30s"}`, `"duration": "30s", "partition": [["a"],["a","b"]]}`, 1), "partition"},
		{"unknown-partition-group", strings.Replace(minimalScenario(), `"duration": "30s"}`, `"duration": "30s", "partition": [["a"],["zz"]]}`, 1), "zz"},
		{"loss-over-one", strings.Replace(minimalScenario(), `"duration": "30s"}`, `"duration": "30s", "loss": 1.5}`, 1), "loss"},
		{"flood-unknown-group", strings.Replace(minimalScenario(), `"duration": "30s"}`, `"duration": "30s", "flood": {"group":"zz","per_sec":5}}`, 1), "zz"},
		{"bad-duration-string", strings.Replace(minimalScenario(), `"30s"`, `"30q"`, 1), "duration"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.doc))
			if err == nil {
				t.Fatalf("parse accepted malformed input")
			}
			if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(c.want)) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

// TestParseAcceptsMinimal pins the happy path and Load on a temp file.
func TestParseAcceptsMinimal(t *testing.T) {
	s, err := Parse([]byte(minimalScenario()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "mini" || s.TotalNodes() != 8 {
		t.Fatalf("parsed scenario wrong: %+v", s)
	}
	path := filepath.Join(t.TempDir(), "mini.json")
	if err := os.WriteFile(path, []byte(minimalScenario()), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("load of a missing file succeeded")
	}
}

// scenariosDir is the committed scenario library on disk, relative to
// this package.
const scenariosDir = "../../scenarios"

// marshalScenario renders a scenario in the committed canonical form.
func marshalScenario(s *Scenario) []byte {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(out, '\n')
}

// TestLibraryMatchesCommittedFiles keeps scenarios/*.json in lockstep
// with Library(): same set of names, byte-identical canonical JSON, and
// each file parses back to a deeply equal scenario. Run with
// SCENARIO_WRITE=1 to regenerate the files after editing the library.
func TestLibraryMatchesCommittedFiles(t *testing.T) {
	if os.Getenv("SCENARIO_WRITE") != "" {
		for _, s := range Library() {
			path := filepath.Join(scenariosDir, s.Name+".json")
			if err := os.WriteFile(path, marshalScenario(s), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %s", path)
		}
	}
	files, err := filepath.Glob(filepath.Join(scenariosDir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	lib := Library()
	if len(files) != len(lib) {
		t.Errorf("scenarios/ holds %d files, library holds %d scenarios", len(files), len(lib))
	}
	for _, s := range lib {
		path := filepath.Join(scenariosDir, s.Name+".json")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("%s: %v (regenerate with SCENARIO_WRITE=1 go test ./internal/scenario/ -run TestLibraryMatchesCommittedFiles)", s.Name, err)
			continue
		}
		if want := marshalScenario(s); string(data) != string(want) {
			t.Errorf("%s: committed file out of date with Library() (regenerate with SCENARIO_WRITE=1)", s.Name)
		}
		parsed, err := Parse(data)
		if err != nil {
			t.Errorf("%s: committed file does not parse: %v", s.Name, err)
			continue
		}
		if !reflect.DeepEqual(parsed, s) {
			t.Errorf("%s: committed file parses to a different scenario", s.Name)
		}
	}
}
