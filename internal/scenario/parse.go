package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Duration is a time.Duration that marshals to/from JSON as either a
// Go duration string ("90s", "2m30s") or a number of nanoseconds. It
// keeps scenario files human-writable without a dependency beyond
// encoding/json.
type Duration time.Duration

// MarshalJSON renders the duration as its Go string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "2m30s" strings or raw nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case string:
		parsed, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("invalid duration %q: %w", x, err)
		}
		*d = Duration(parsed)
	case float64:
		*d = Duration(x)
	default:
		return fmt.Errorf("duration must be a string or number, got %T", v)
	}
	return nil
}

// String renders the duration in Go form.
func (d Duration) String() string { return time.Duration(d).String() }

// Parse decodes a scenario from JSON bytes and validates it. Unknown
// fields are rejected so typos in committed scenario files fail loudly
// instead of silently declaring nothing.
func Parse(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	// Trailing garbage after the document is an error too.
	if dec.More() {
		return nil, fmt.Errorf("scenario: parse: trailing data after document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}
