package scenario

import "time"

// Library returns the committed chaos-scenario library. Each scenario is
// also committed as JSON under scenarios/ (kept in lockstep by
// TestLibraryMatchesCommittedFiles) so the runner, the docs, and the fuzz
// corpus share one source of truth.
//
// Sizing: every scenario fits in a few virtual minutes on netsim; the
// live-tagged ones (split-brain-heal, churn-storm) compress to seconds of
// wall clock via LiveScale.
func Library() []*Scenario {
	d := func(v time.Duration) Duration { return Duration(v) }
	inv := DefaultInvariants()

	return []*Scenario{
		{
			// A clean split through the overlay, then heal: the classic
			// partition experiment. Sync must backfill the minority side's
			// missed messages after the heal.
			Name: "split-brain-heal",
			Seed: 41,
			Groups: []Group{
				{Name: "west", Role: RolePublisher, Nodes: 16, Rate: 2, Payload: 256, Protected: true},
				{Name: "east", Role: RoleSubscriber, Nodes: 16},
			},
			Warmup: d(60 * time.Second),
			Phases: []Phase{
				{Name: "split", Duration: d(90 * time.Second), Partition: [][]string{{"west"}, {"east"}}},
			},
			Drain:      d(150 * time.Second),
			Invariants: inv,
			LiveScale:  0.05,
		},
		{
			// Sustained random loss plus delay spikes on every link: gossip
			// pulls must repair what the tree drops, continuously.
			Name: "flaky-core-links",
			Seed: 42,
			Groups: []Group{
				{Name: "pubs", Role: RolePublisher, Nodes: 4, Rate: 2, Payload: 256, Protected: true},
				{Name: "subs", Role: RoleSubscriber, Nodes: 28},
			},
			Warmup: d(60 * time.Second),
			Phases: []Phase{
				{Name: "lossy", Duration: d(90 * time.Second), Loss: 0.15},
				{
					Name:     "lossy-and-slow",
					Duration: d(90 * time.Second),
					Loss:     0.1,
					Links: []LinkRule{
						{Delay: d(100 * time.Millisecond), Jitter: d(50 * time.Millisecond)},
					},
				},
			},
			Drain:      d(150 * time.Second),
			Invariants: inv,
			LiveScale:  0.05,
		},
		{
			// A Poisson storm of crashes, restarts, joins, and graceful
			// leaves against a protected publishing core.
			Name: "churn-storm",
			Seed: 43,
			Groups: []Group{
				{Name: "core", Role: RolePublisher, Nodes: 8, Rate: 2, Payload: 256, Protected: true},
				{Name: "pool", Role: RoleBystander, Nodes: 24},
			},
			Warmup: d(60 * time.Second),
			Phases: []Phase{
				{
					Name:     "storm",
					Duration: d(3 * time.Minute),
					Churn: &ChurnBurst{
						JoinPerMin:    3,
						LeavePerMin:   5,
						CrashPerMin:   5,
						RestartPerMin: 7,
					},
				},
			},
			Drain:      d(150 * time.Second),
			Invariants: inv,
			LiveScale:  0.05,
		},
		{
			// An overload flood from one group while the membership churns
			// underneath: admission must shed Repair/Background, never
			// Critical, and the admitted messages must still deliver.
			Name: "flood-under-churn",
			Seed: 44,
			Groups: []Group{
				{Name: "pubs", Role: RolePublisher, Nodes: 8, Rate: 1, Payload: 256, Protected: true},
				{Name: "pool", Role: RoleBystander, Nodes: 24},
			},
			Warmup: d(60 * time.Second),
			Phases: []Phase{
				{
					Name:     "flood",
					Duration: d(2 * time.Minute),
					Flood:    &Flood{Group: "pubs", PerSec: 25, Payload: 512},
					Churn: &ChurnBurst{
						CrashPerMin:   3,
						RestartPerMin: 4,
					},
				},
			},
			Drain:      d(150 * time.Second),
			Invariants: inv,
			LiveScale:  0.05,
		},
		{
			// Leaf nodes behind slow, then bandwidth-starved links: FIFO
			// queueing delays deliveries but must not break atomicity or
			// pull the tree apart.
			Name: "slow-leaf-cascade",
			Seed: 45,
			Groups: []Group{
				{Name: "core", Role: RolePublisher, Nodes: 8, Rate: 2, Payload: 256, Protected: true},
				{Name: "leaves", Role: RoleSubscriber, Nodes: 24},
			},
			Warmup: d(60 * time.Second),
			Phases: []Phase{
				{
					Name:     "slow-leaves",
					Duration: d(90 * time.Second),
					Links: []LinkRule{
						{To: "leaves", Delay: d(150 * time.Millisecond), Jitter: d(50 * time.Millisecond)},
					},
				},
				{
					Name:     "starved-leaves",
					Duration: d(90 * time.Second),
					Links: []LinkRule{
						{To: "leaves", Delay: d(50 * time.Millisecond), BytesPerSec: 256 << 10},
					},
				},
			},
			Drain:      d(150 * time.Second),
			Invariants: inv,
			LiveScale:  0.05,
		},
		{
			// Large payloads over lossy, then bandwidth-starved leaf links:
			// erasure-coded coopcast dissemination stripes symbols down the
			// tree and repairs per-symbol through gossip pulls. Atomicity
			// must hold with zero violations even though no single link ever
			// carries a whole payload.
			Name:              "bulk-distribution",
			Seed:              47,
			CoopcastThreshold: 8 << 10,
			Groups: []Group{
				{Name: "pubs", Role: RolePublisher, Nodes: 4, Rate: 0.5, Payload: 64 << 10, Protected: true},
				{Name: "leaves", Role: RoleSubscriber, Nodes: 20},
			},
			Warmup: d(60 * time.Second),
			Phases: []Phase{
				{Name: "lossy-bulk", Duration: d(90 * time.Second), Loss: 0.08},
				{
					Name:     "starved-leaves-bulk",
					Duration: d(90 * time.Second),
					Loss:     0.05,
					Links: []LinkRule{
						{To: "leaves", Delay: d(50 * time.Millisecond), BytesPerSec: 512 << 10},
					},
				},
			},
			Drain:      d(150 * time.Second),
			Invariants: inv,
			LiveScale:  0.05,
		},
		{
			// A rolling restart sweep across the worker group — the planned
			// maintenance case. Restarted nodes must catch up by sync.
			Name: "rolling-restart",
			Seed: 46,
			Groups: []Group{
				{Name: "core", Role: RolePublisher, Nodes: 8, Rate: 2, Payload: 256, Protected: true},
				{Name: "workers", Role: RoleSubscriber, Nodes: 24},
			},
			Warmup: d(60 * time.Second),
			Phases: []Phase{
				{
					Name:     "roll",
					Duration: d(3 * time.Minute),
					Rolling:  &Rolling{Group: "workers", Every: d(15 * time.Second), Downtime: d(5 * time.Second)},
				},
			},
			Drain:      d(150 * time.Second),
			Invariants: inv,
			LiveScale:  0.05,
		},
	}
}

// Find returns the library scenario with the given name, or nil.
func Find(name string) *Scenario {
	for _, s := range Library() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// LiveCompatible reports whether a library scenario is exercised on the
// live substrate in short test runs.
func LiveCompatible(name string) bool {
	return name == "split-brain-heal" || name == "churn-storm" || name == "bulk-distribution"
}
