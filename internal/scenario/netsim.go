package scenario

import (
	"fmt"
	"time"

	"gocast/internal/core"
	"gocast/internal/dtrace"
	"gocast/internal/netsim"
)

// netsimSub runs a scenario on the discrete-event simulator. Everything —
// protocol, faults, churn, traffic — executes on one virtual clock seeded
// from the scenario master seed, so a run is a pure function of
// (scenario, seed).
type netsimSub struct {
	c     *netsim.Cluster
	spans *dtrace.Buffer
	start time.Duration
	pubs  int64
	churn []*netsim.ChurnStats
}

// netsimConfig is the protocol timing scenarios run under: the paper's
// structure with periods short enough that warmup/drain measured in
// virtual minutes suffices for convergence and sync-based recovery.
func netsimConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.HeartbeatPeriod = 5 * time.Second
	cfg.RootTimeout = 15 * time.Second
	cfg.SyncInterval = 5 * time.Second
	cfg.QuarantineWindow = 5 * time.Second
	return cfg
}

func newNetsimSub(s *Scenario, seed int64, cfg core.Config) *netsimSub {
	n := s.TotalNodes()
	// Trace every message so an atomicity failure can name its offender's
	// dissemination path. The ring holds recent spans only; an old
	// offender's trace may be partial, which still beats a bare count.
	if cfg.TraceSampleEvery == 0 {
		cfg.TraceSampleEvery = 1
	}
	spans := dtrace.NewBuffer(8 * dtrace.DefaultBufferCapacity)
	c := netsim.New(netsim.Options{
		Nodes:  n,
		Seed:   SubSeed(seed, "netsim"),
		Config: cfg,
		Spans:  spans,
	})
	c.BootstrapMembership(cfg.MemberViewSize / 2)
	init := cfg.TargetDegree() / 2
	if init < 1 {
		init = 1
	}
	c.WireRandom(init)
	c.Start(0)
	// Give the overload invariant teeth in simulation: bound Repair and
	// Background admission the way the live mailbox lanes do, leave
	// Critical unbounded, and assert zero Critical sheds.
	if hasFlood(s) {
		c.SetAdmission(netsim.AdmissionCaps{Repair: 64, Background: 8})
	}
	return &netsimSub{c: c, spans: spans, start: c.Now()}
}

func hasFlood(s *Scenario) bool {
	for _, p := range s.Phases {
		if p.Flood != nil {
			return true
		}
	}
	return false
}

func (n *netsimSub) name() string                     { return "netsim" }
func (n *netsimSub) now() time.Duration               { return n.c.Now() - n.start }
func (n *netsimSub) run(d time.Duration)              { n.c.Run(d) }
func (n *netsimSub) after(d time.Duration, fn func()) { n.c.Engine.After(d, fn) }
func (n *netsimSub) nodeCount() int                   { return n.c.Nodes() }
func (n *netsimSub) alive(i int) bool                 { return i < n.c.Nodes() && n.c.Alive(i) }

func (n *netsimSub) publish(i int, payload []byte) bool {
	if !n.alive(i) {
		return false
	}
	n.c.Inject(i, payload)
	n.pubs++
	return true
}

func (n *netsimSub) setFaults(f *compiledFaults) {
	if f.empty() {
		n.c.SetFaults(nil)
		return
	}
	spec := &netsim.FaultSpec{Seed: f.seed, Partition: f.partition}
	if f.loss > 0 {
		spec.Rules = append(spec.Rules, netsim.LinkFault{Loss: f.loss})
	}
	for _, l := range f.links {
		spec.Rules = append(spec.Rules, netsim.LinkFault{
			From:        netsim.NodeRange{Lo: l.fromLo, Hi: l.fromHi},
			To:          netsim.NodeRange{Lo: l.toLo, Hi: l.toHi},
			Extra:       l.delay,
			Jitter:      l.jitter,
			BytesPerSec: l.bytesPerSec,
		})
	}
	n.c.SetFaults(spec)
}

func (n *netsimSub) startChurn(cs churnSpec) {
	st := n.c.StartChurn(netsim.ChurnOptions{
		Plan:      cs.plan,
		Protected: cs.protected,
		MinAlive:  cs.minAlive,
		MaxNodes:  cs.maxNodes,
	})
	n.churn = append(n.churn, st)
}

func (n *netsimSub) churnEvents() int64 {
	var total int64
	for _, st := range n.churn {
		total += int64(st.Events())
	}
	return total
}

func (n *netsimSub) crash(i int) { n.c.Kill(i) }

func (n *netsimSub) restart(i int) {
	contact := 0
	if i == 0 {
		contact = 1
	}
	if !n.c.Alive(contact) {
		return
	}
	n.c.Restart(i, contact)
}

func (n *netsimSub) treeNode(i int) (parent, root, degree int) {
	nd := n.c.Node(i)
	p, r := int(nd.Parent()), int(nd.Root())
	if p == i {
		p = -1
	}
	return p, r, nd.Degree()
}

func (n *netsimSub) converged() string {
	if s := n.c.StaleLinks(); s != 0 {
		return fmt.Sprintf("%d stale links to dead incarnations", s)
	}
	if r := n.c.LargestComponentRatio(); r < 1 {
		return fmt.Sprintf("overlay split: largest component holds %.0f%% of live nodes", r*100)
	}
	root := -1
	for i := 0; i < n.c.Nodes(); i++ {
		if !n.c.Alive(i) {
			continue
		}
		r := int(n.c.Node(i).Root())
		if root == -1 {
			root = r
		} else if r != root {
			return fmt.Sprintf("root disagreement: node %d says %d, others say %d", i, r, root)
		}
	}
	if root >= 0 && !n.c.Alive(root) {
		return fmt.Sprintf("agreed root %d is dead", root)
	}
	if root >= 0 && !n.c.TreeSpans(root) {
		return "tree does not span the live membership"
	}
	return ""
}

func (n *netsimSub) atomicityViolations(grace time.Duration) int {
	return n.c.AtomicityViolations(grace)
}

func (n *netsimSub) offenderTrace(grace time.Duration) string {
	offenders := n.c.AtomicityOffenders(grace)
	if len(offenders) == 0 {
		return ""
	}
	traces := dtrace.Stitch(n.spans.Snapshot())
	// Prefer the newest offender: its spans are least likely to have been
	// evicted from the ring.
	for i := len(offenders) - 1; i >= 0; i-- {
		id := offenders[i]
		if t := dtrace.Find(traces, int32(id.Source), id.Seq); t != nil {
			return t.Render()
		}
	}
	return ""
}

func (n *netsimSub) recoveryViolations(grace time.Duration) (int, bool) {
	return n.c.RecoveryViolations(grace), true
}

func (n *netsimSub) criticalSheds() int64 {
	return n.c.AdmissionSheds()[core.ClassCritical]
}

func (n *netsimSub) faultCounters() map[string]int64 {
	fs := n.c.FaultStats()
	return map[string]int64{
		"fault_blocked":   fs.Blocked,
		"fault_dropped":   fs.Dropped,
		"fault_delayed":   fs.Delayed,
		"fault_throttled": fs.Throttled,
	}
}

func (n *netsimSub) published() int64 { return n.pubs }

func (n *netsimSub) close() {}
