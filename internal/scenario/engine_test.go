package scenario

import (
	"strings"
	"testing"
	"time"

	"gocast/internal/core"
	"gocast/internal/obs"
)

const (
	second = time.Second
	minute = time.Minute
)

// TestLibraryValidates pins that every committed scenario is well-formed.
func TestLibraryValidates(t *testing.T) {
	lib := Library()
	if len(lib) != 7 {
		t.Fatalf("library holds %d scenarios, want 7", len(lib))
	}
	for _, s := range lib {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

// runTwice runs a scenario twice on netsim and returns both rendered
// reports.
func runTwice(t *testing.T, s *Scenario) (string, string, *Report) {
	t.Helper()
	r1, err := Run(s, Options{Substrate: "netsim"})
	if err != nil {
		t.Fatalf("%s run 1: %v", s.Name, err)
	}
	r2, err := Run(s, Options{Substrate: "netsim"})
	if err != nil {
		t.Fatalf("%s run 2: %v", s.Name, err)
	}
	return r1.Render(), r2.Render(), r1
}

// TestScenarioNetsimDeterministicAndPassing is the acceptance gate: every
// library scenario passes its invariants on netsim, and two runs of the
// same scenario+seed produce byte-identical reports (which cover the
// fault schedule: per-phase fault counts and the fault-layer verdict
// counters). Short mode runs the two live-tagged scenarios; the full
// library runs in the long CI chaos job.
func TestScenarioNetsimDeterministicAndPassing(t *testing.T) {
	for _, s := range Library() {
		if testing.Short() && !LiveCompatible(s.Name) {
			continue
		}
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			a, b, rep := runTwice(t, s)
			if a != b {
				t.Errorf("%s: reports differ across identical runs:\n--- run1\n%s\n--- run2\n%s", s.Name, a, b)
			}
			if !rep.Passed {
				t.Errorf("%s: invariants failed:\n%s", s.Name, a)
			}
		})
	}
}

// TestScenarioSeedChangesSchedule sanity-checks that the master seed
// actually drives the run: different seeds produce different fault
// activity.
func TestScenarioSeedChangesSchedule(t *testing.T) {
	s := Find("flaky-core-links")
	r1, err := Run(s, Options{Substrate: "netsim", Seed: 1001})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(s, Options{Substrate: "netsim", Seed: 2002})
	if err != nil {
		t.Fatal(err)
	}
	if r1.FaultCounts["fault_dropped"] == r2.FaultCounts["fault_dropped"] {
		t.Errorf("identical drop counts (%d) under different seeds — seed not threaded",
			r1.FaultCounts["fault_dropped"])
	}
}

// TestBrokenInvariantBites disables anti-entropy sync and reruns the
// split-brain scenario: with the repair path gone, the partition's losses
// can never heal, and the checker must fail the run naming the violated
// invariant, its phase, and the scenario time.
func TestBrokenInvariantBites(t *testing.T) {
	cfg := netsimConfig()
	cfg.SyncInterval = -1 // disable sync: partitions can no longer heal the backlog
	s := Find("split-brain-heal")
	rep, err := Run(s, Options{Substrate: "netsim", Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Passed {
		t.Fatalf("run passed with sync disabled — the atomicity checker did not bite:\n%s", rep.Render())
	}
	found := false
	trace := ""
	for _, v := range rep.Violations {
		if v.Invariant == InvAtomicity && v.Phase != "" && v.At > 0 {
			found = true
			if v.Trace != "" {
				trace = v.Trace
			}
		}
	}
	if !found {
		t.Fatalf("no atomicity violation naming phase and time:\n%s", rep.Render())
	}
	// The netsim substrate traces every message, so the failure carries
	// one offender's stitched dissemination tree (JSON-only).
	if trace == "" {
		t.Fatalf("atomicity violation has no offender trace attached:\n%s", rep.Render())
	}
	if !strings.Contains(trace, "msg ") || !strings.Contains(trace, "inject") {
		t.Fatalf("offender trace does not look like a rendered dissemination tree:\n%s", trace)
	}
	out := rep.Render()
	if !strings.Contains(out, "FAIL") || !strings.Contains(out, InvAtomicity) {
		t.Fatalf("report does not name the failed invariant:\n%s", out)
	}
	if strings.Contains(out, "inject") {
		t.Fatalf("Render leaked the offender trace (must stay JSON-only):\n%s", out)
	}
}

// TestFlapTogglesPartition covers the flap fault: the partition toggles
// on and off through the phase, and the run still passes.
func TestFlapTogglesPartition(t *testing.T) {
	s := &Scenario{
		Name: "flap-test",
		Seed: 9,
		Groups: []Group{
			{Name: "a", Role: RolePublisher, Nodes: 12, Rate: 2, Payload: 64, Protected: true},
			{Name: "b", Role: RoleSubscriber, Nodes: 12},
		},
		Warmup: Duration(60 * second),
		Phases: []Phase{{
			Name:     "flapping",
			Duration: Duration(2 * minute),
			Flap:     &Flap{Cells: [][]string{{"a"}, {"b"}}, Period: Duration(30 * second)},
		}},
		Drain:      Duration(150 * second),
		Invariants: DefaultInvariants(),
	}
	rep, err := Run(s, Options{Substrate: "netsim"})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed {
		t.Fatalf("flap scenario failed:\n%s", rep.Render())
	}
	if rep.Phases[0].Faults["flap"] < 3 {
		t.Fatalf("flap toggled %d times, want >= 3", rep.Phases[0].Faults["flap"])
	}
	if rep.FaultCounts["fault_blocked"] == 0 {
		t.Fatal("flapping partition blocked no traffic")
	}
}

// TestScenarioLive runs the live-tagged scenarios on the wall-clock
// substrate. LiveScale compresses each into a few seconds.
func TestScenarioLive(t *testing.T) {
	for _, name := range []string{"split-brain-heal", "churn-storm", "bulk-distribution"} {
		name := name
		t.Run(name, func(t *testing.T) {
			s := Find(name)
			rep, err := Run(s, Options{Substrate: "live"})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Passed {
				t.Errorf("%s failed on live substrate:\n%s", name, rep.Render())
			}
			if rep.Published == 0 {
				t.Errorf("%s published no traffic", name)
			}
		})
	}
}

// TestScenarioMetricsAndProgress checks the obs wiring: counters move and
// the progress snapshot completes.
func TestScenarioMetricsAndProgress(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	var prog Progress
	s := Find("split-brain-heal")
	if _, err := Run(s, Options{Substrate: "netsim", Metrics: m, Progress: &prog}); err != nil {
		t.Fatal(err)
	}
	if m.PhaseTransitions.Value() == 0 || m.InvariantChecks.Value() == 0 {
		t.Fatalf("scenario metrics did not move: transitions=%d checks=%d",
			m.PhaseTransitions.Value(), m.InvariantChecks.Value())
	}
	snap := prog.Snapshot()
	if !snap.Done || snap.Scenario != "split-brain-heal" {
		t.Fatalf("progress snapshot incomplete: %+v", snap)
	}
}

// TestDefaultMaxDegreeSane guards the derived degree bound against config
// drift.
func TestDefaultMaxDegreeSane(t *testing.T) {
	cfg := core.DefaultConfig()
	if got := defaultMaxDegree(); got <= cfg.TargetDegree() {
		t.Fatalf("defaultMaxDegree %d not above TargetDegree %d", got, cfg.TargetDegree())
	}
}

// TestSubSeedStability pins the seed derivation: stable across calls,
// distinct across labels.
func TestSubSeedStability(t *testing.T) {
	a := SubSeed(7, "faults")
	if a != SubSeed(7, "faults") {
		t.Fatal("SubSeed not stable")
	}
	if a == SubSeed(7, "churn/0") || a == SubSeed(8, "faults") {
		t.Fatal("SubSeed does not separate streams")
	}
	if SubSeed(0, "") == 0 {
		t.Fatal("SubSeed returned the 'unseeded' sentinel 0")
	}
}
