package scenario

import (
	"time"

	"gocast/internal/churn"
)

// compiledLink is a LinkRule resolved to node-index ranges. Zero-valued
// ranges ({0,0}) match every node, mirroring netsim.NodeRange.
type compiledLink struct {
	fromLo, fromHi int
	toLo, toHi     int
	delay, jitter  time.Duration
	bytesPerSec    int64
}

// compiledFaults is a phase's fault state resolved to node indexes; the
// zero value means "no faults" and clears everything when installed.
type compiledFaults struct {
	// seed drives loss/jitter randomness in the substrate's fault layer,
	// derived from the scenario master seed.
	seed      int64
	partition [][]int
	loss      float64
	links     []compiledLink
}

func (f *compiledFaults) empty() bool {
	return f == nil || (len(f.partition) == 0 && f.loss == 0 && len(f.links) == 0)
}

// churnSpec carries one phase's churn burst to a substrate.
type churnSpec struct {
	plan      churn.Plan
	protected int
	minAlive  int
	maxNodes  int
}

// substrate is the execution backend a scenario runs on. Durations passed
// in are scenario time; the live substrate scales them to wall time
// internally. Node indexes are stable slot numbers on both substrates
// (core.NodeID == index).
type substrate interface {
	name() string
	// now returns elapsed scenario time since the run began.
	now() time.Duration
	// run advances the scenario clock by d (virtual advance or scaled
	// sleep).
	run(d time.Duration)
	// after schedules fn at now+d on the scenario clock. Callbacks run on
	// the substrate's event context; keep them short.
	after(d time.Duration, fn func())
	nodeCount() int
	alive(i int) bool
	// publish starts a multicast at node i; false if rejected (dead node
	// or overload backpressure).
	publish(i int, payload []byte) bool
	// setFaults replaces the active fault state (empty = clear).
	setFaults(f *compiledFaults)
	// startChurn launches a churn burst; events execute on the substrate
	// clock and stop at the plan horizon.
	startChurn(cs churnSpec)
	// churnEvents returns cumulative executed churn events.
	churnEvents() int64
	crash(i int)
	restart(i int)
	// treeNode reports node i's tree position: parent and root as node
	// indexes (-1 when unknown/self), and current overlay degree.
	treeNode(i int) (parent, root, degree int)
	// converged returns "" when the overlay is converged — one connected
	// component, one agreed live root, no stale links — or the reason it
	// is not.
	converged() string
	// atomicityViolations counts (message, stable-node) pairs that missed
	// a delivery, judging only messages older than grace.
	atomicityViolations(grace time.Duration) int
	// offenderTrace returns the rendered dissemination trace of one
	// message that violated atomicity ("" when the substrate records no
	// spans or no offender was traced).
	offenderTrace(grace time.Duration) string
	// recoveryViolations counts deliveries restarted nodes never caught
	// up on; ok=false means the substrate cannot judge this (live).
	recoveryViolations(grace time.Duration) (n int, ok bool)
	// criticalSheds returns cumulative Critical-class sheds.
	criticalSheds() int64
	// faultCounters snapshots the substrate fault layer's verdict
	// counters (blocked/dropped/delayed/...).
	faultCounters() map[string]int64
	// published returns how many scenario multicasts were accepted.
	published() int64
	close()
}
