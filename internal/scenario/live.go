package scenario

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"gocast/internal/churn"
	"gocast/internal/core"
	"gocast/internal/latency"
	"gocast/internal/live"
)

// liveSub runs a scenario on the wall-clock runtime over the in-memory
// transport. Scenario durations are compressed by the scenario's
// LiveScale; the fault/churn/traffic schedule still derives from the
// master seed (satellite: one scenario-owned RNG threads through
// live.NewFaultControllerRand and the churn plan seeds), so a run replays
// its exact fault schedule even though protocol timing floats.
type liveSub struct {
	c       *live.Cluster
	ctl     *live.FaultController
	scale   float64
	start   time.Time
	initial int

	mu sync.Mutex
	// got records every observed delivery: message -> receiving slots.
	got map[core.MessageID]map[int]bool
	// tracked lists the scenario's own publishes in order.
	tracked []core.MessageID
	pubAt   map[core.MessageID]time.Time
	// disturbed marks slots the scenario crashed/restarted (rolling) —
	// excluded from atomicity judgment alongside churned slots.
	disturbed map[int]bool
	churned   bool
	protected int
	churnRuns sync.WaitGroup
	churnged  int64
	timers    []*time.Timer
	closed    bool
}

func newLiveSub(s *Scenario, seed int64) *liveSub {
	ls := &liveSub{
		scale:     s.liveScale(),
		initial:   s.TotalNodes(),
		got:       make(map[core.MessageID]map[int]bool),
		pubAt:     make(map[core.MessageID]time.Time),
		disturbed: make(map[int]bool),
		protected: protectedCount(s),
	}
	ls.ctl = live.NewFaultControllerRand(
		live.FaultPlan{},
		rand.New(rand.NewSource(SubSeed(seed, "faults"))),
	)
	// Give the in-memory fabric the same wide-area latency diversity
	// netsim runs under (scaled to the compressed wall clock). The
	// proximity-replacement sweep — the only mechanism that rewires a
	// degree-saturated overlay, e.g. re-merging two healed partition
	// halves — needs heavy-tailed pairwise latencies to ever fire; a flat
	// fabric leaves a split-brain permanent. Sized past churn's growth
	// ceiling so joined nodes get sites too.
	mat := latency.Synthesize(2*s.TotalNodes(), SubSeed(seed, "latency"))
	scale := ls.scale
	cfg := live.FastConfig()
	if s.CoopcastThreshold > 0 {
		cfg.CoopcastThreshold = s.CoopcastThreshold
	}
	ls.c = live.NewCluster(live.ClusterOptions{
		Nodes:  s.TotalNodes(),
		Config: cfg,
		Seed:   SubSeed(seed, "live"),
		Faults: ls.ctl,
		PairLatency: func(i, j int) time.Duration {
			n := mat.Sites()
			return time.Duration(float64(mat.OneWay(i%n, j%n)) * scale)
		},
		OnDeliver: func(node int, id core.MessageID, _ []byte) {
			ls.mu.Lock()
			m := ls.got[id]
			if m == nil {
				m = make(map[int]bool)
				ls.got[id] = m
			}
			m[node] = true
			ls.mu.Unlock()
		},
	})
	ls.start = time.Now()
	return ls
}

// protectedCount returns how many leading slots belong to Protected
// groups.
func protectedCount(s *Scenario) int {
	n := 0
	for _, g := range s.Groups {
		if !g.Protected {
			break
		}
		n += g.Nodes
	}
	return n
}

func (l *liveSub) name() string { return "live" }

// now converts wall time back to scenario time.
func (l *liveSub) now() time.Duration {
	return time.Duration(float64(time.Since(l.start)) / l.scale)
}

func (l *liveSub) run(d time.Duration) {
	time.Sleep(time.Duration(float64(d) * l.scale))
}

func (l *liveSub) after(d time.Duration, fn func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	t := time.AfterFunc(time.Duration(float64(d)*l.scale), fn)
	l.timers = append(l.timers, t)
}

func (l *liveSub) nodeCount() int { return l.c.Size() }

func (l *liveSub) alive(i int) bool {
	n := l.c.Node(i)
	return n != nil && !n.Stopped()
}

func (l *liveSub) publish(i int, payload []byte) bool {
	n := l.c.Node(i)
	if n == nil || n.Stopped() {
		return false
	}
	id, err := n.Publish(payload)
	if err != nil {
		// ErrOverloaded while Shedding is graceful degradation, not a
		// scenario failure; the no-critical-sheds invariant guards the
		// messages that were admitted.
		return false
	}
	l.mu.Lock()
	l.tracked = append(l.tracked, id)
	l.pubAt[id] = time.Now()
	l.mu.Unlock()
	return true
}

// setFaults re-expresses the compiled fault state as one open-ended
// FaultPhase on the shared controller. Per-pair rules enumerate the
// concrete "mem-<i>" endpoint addresses.
func (l *liveSub) setFaults(f *compiledFaults) {
	l.ctl.Clear()
	if f.empty() {
		return
	}
	at := l.ctl.Elapsed()
	p := live.FaultPhase{Start: at, End: 0} // End<=Start: holds until Clear
	for _, cell := range f.partition {
		addrs := make([]string, len(cell))
		for k, i := range cell {
			addrs[k] = fmt.Sprintf("mem-%d", i)
		}
		p.Partition = append(p.Partition, addrs)
	}
	if f.loss > 0 {
		p.Drop = f.loss
		p.DropReliable = f.loss
	}
	n := l.c.Size()
	clampHi := func(hi int) int {
		if hi == 0 || hi > n {
			return n
		}
		return hi
	}
	for _, link := range f.links {
		fLo, fHi := link.fromLo, clampHi(link.fromHi)
		tLo, tHi := link.toLo, clampHi(link.toHi)
		if link.fromLo == 0 && link.fromHi == 0 {
			fLo, fHi = 0, n
		}
		if link.toLo == 0 && link.toHi == 0 {
			tLo, tHi = 0, n
		}
		for from := fLo; from < fHi; from++ {
			for to := tLo; to < tHi; to++ {
				if from == to {
					continue
				}
				fa, ta := fmt.Sprintf("mem-%d", from), fmt.Sprintf("mem-%d", to)
				// Scale delays with the schedule so a slow link stays
				// proportionate to the compressed phase; fold jitter in at
				// its midpoint (per-pair jitter is a netsim-only fidelity).
				extra := time.Duration(float64(link.delay+link.jitter/2) * l.scale)
				if extra > 0 {
					p.Slow = append(p.Slow, live.SlowLink{From: fa, To: ta, Extra: extra})
				}
				if link.bytesPerSec > 0 {
					// Scale the rate up so bytes-per-scenario-second are
					// preserved under time compression.
					p.Bandwidth = append(p.Bandwidth, live.BandwidthCap{
						From: fa, To: ta,
						BytesPerSec: int64(float64(link.bytesPerSec) / l.scale),
					})
				}
			}
		}
	}
	l.ctl.AddPhase(p)
}

func (l *liveSub) startChurn(cs churnSpec) {
	l.mu.Lock()
	l.churned = true
	l.mu.Unlock()
	// Compress the plan: same expected event count in scale× the time.
	plan := churn.Plan{
		Seed:          cs.plan.Seed,
		Duration:      time.Duration(float64(cs.plan.Duration) * l.scale),
		JoinPerMin:    cs.plan.JoinPerMin / l.scale,
		LeavePerMin:   cs.plan.LeavePerMin / l.scale,
		CrashPerMin:   cs.plan.CrashPerMin / l.scale,
		RestartPerMin: cs.plan.RestartPerMin / l.scale,
	}
	l.churnRuns.Add(1)
	go func() {
		defer l.churnRuns.Done()
		st := l.c.RunChurn(live.ChurnOptions{
			Plan:      plan,
			Protected: cs.protected,
			MinAlive:  cs.minAlive,
			MaxNodes:  cs.maxNodes,
		})
		l.mu.Lock()
		l.churnged += int64(st.Events())
		l.mu.Unlock()
	}()
}

func (l *liveSub) churnEvents() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.churnged
}

func (l *liveSub) crash(i int) {
	l.mu.Lock()
	l.disturbed[i] = true
	l.mu.Unlock()
	l.c.Crash(i)
}

func (l *liveSub) restart(i int) {
	l.c.Restart(i)
}

func (l *liveSub) treeNode(i int) (parent, root, degree int) {
	n := l.c.Node(i)
	if n == nil || n.Stopped() {
		return -1, -1, 0
	}
	p, r := int(n.Parent()), int(n.Root())
	if p == i {
		p = -1
	}
	return p, r, n.Degree()
}

func (l *liveSub) converged() string {
	n := l.c.Size()
	running := make([]bool, n)
	count := 0
	for i := 0; i < n; i++ {
		if l.alive(i) {
			running[i] = true
			count++
		}
	}
	if count == 0 {
		return "no running nodes"
	}
	// Stale links + adjacency in one sweep.
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		if !running[i] {
			continue
		}
		for _, nb := range l.c.Node(i).Neighbors() {
			j := int(nb.ID)
			if j < 0 || j >= n {
				continue
			}
			if running[j] && nb.Inc < l.c.Incarnation(j) {
				return fmt.Sprintf("node %d holds a stale link to %d (inc %d < %d)", i, j, nb.Inc, l.c.Incarnation(j))
			}
			adj[i] = append(adj[i], j)
		}
	}
	// Connectivity over running nodes.
	first := -1
	for i := 0; i < n; i++ {
		if running[i] {
			first = i
			break
		}
	}
	seen := make([]bool, n)
	queue := []int{first}
	seen[first] = true
	reached := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		reached++
		for _, j := range adj[i] {
			if running[j] && !seen[j] {
				seen[j] = true
				queue = append(queue, j)
			}
		}
	}
	if reached < count {
		return fmt.Sprintf("overlay split: %d of %d running nodes reachable", reached, count)
	}
	// Root agreement.
	root := -1
	for i := 0; i < n; i++ {
		if !running[i] {
			continue
		}
		r := int(l.c.Node(i).Root())
		if root == -1 {
			root = r
		} else if r != root {
			return fmt.Sprintf("root disagreement: node %d says %d, others say %d", i, r, root)
		}
	}
	if root < 0 || root >= n || !l.alive(root) {
		return fmt.Sprintf("agreed root %d is not running", root)
	}
	return ""
}

// atomicityViolations judges the slots that were never disturbed: initial
// nodes the scenario itself did not crash/restart, excluding every
// unprotected slot once churn has run (churn targets are not individually
// reported by the churn layer). grace is expressed in scenario time.
func (l *liveSub) atomicityViolations(grace time.Duration) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	cutoff := time.Now().Add(-time.Duration(float64(grace) * l.scale))
	v := 0
	for i := 0; i < l.initial; i++ {
		if l.disturbed[i] || (l.churned && i >= l.protected) || !l.alive(i) {
			continue
		}
		for _, id := range l.tracked {
			if l.pubAt[id].After(cutoff) {
				continue
			}
			if !l.got[id][i] {
				v++
			}
		}
	}
	return v
}

// offenderTrace is unavailable on the live substrate: scenario clusters
// run with sampling off (wall-clock runs keep the multicast path cold),
// so there are no spans to stitch an offender from.
func (l *liveSub) offenderTrace(time.Duration) string { return "" }

func (l *liveSub) recoveryViolations(time.Duration) (int, bool) { return 0, false }

func (l *liveSub) criticalSheds() int64 {
	var total int64
	for i := 0; i < l.c.Size(); i++ {
		if n := l.c.Node(i); n != nil {
			total += n.OverloadStats()["shed_critical"]
		}
	}
	return total
}

func (l *liveSub) faultCounters() map[string]int64 {
	out := make(map[string]int64)
	for k, v := range l.ctl.Counters() {
		out[k] = v
	}
	return out
}

func (l *liveSub) published() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return int64(len(l.tracked))
}

func (l *liveSub) close() {
	l.mu.Lock()
	l.closed = true
	timers := l.timers
	l.timers = nil
	l.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
	l.churnRuns.Wait()
	l.c.Close()
}
