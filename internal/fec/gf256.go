package fec

// GF(256) arithmetic over the AES-adjacent primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), with log/exp tables built once at
// init. Multiplication is two table lookups and one add; inversion is one
// lookup. The tables cost 768 bytes and make symbol-rate coding cheap
// enough that encode/decode throughput is memory-bound, not ALU-bound.

const gfPoly = 0x11d

var (
	gfExp [512]byte // doubled so mul can skip the mod-255 reduction
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfInv returns the multiplicative inverse of a non-zero element.
func gfInv(a byte) byte {
	return gfExp[255-int(gfLog[a])]
}

// gfDiv divides a by a non-zero b.
func gfDiv(a, b byte) byte {
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// mulAddRow accumulates dst ^= c * src byte-wise. c == 0 is a no-op and
// c == 1 a plain XOR, the two cases the systematic layout hits most.
func mulAddRow(dst, src []byte, c byte) {
	switch c {
	case 0:
		return
	case 1:
		for i, v := range src {
			dst[i] ^= v
		}
	default:
		logC := int(gfLog[c])
		for i, v := range src {
			if v != 0 {
				dst[i] ^= gfExp[logC+int(gfLog[v])]
			}
		}
	}
}
