package fec

import (
	"bytes"
	"math/rand"
	"testing"
)

func randPayload(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// TestGFFieldAxioms sanity-checks the table arithmetic: every non-zero
// element has an inverse, and mul distributes over XOR (addition).
func TestGFFieldAxioms(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a*inv(a) = %d for a=%d", got, a)
		}
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10000; trial++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity failed for %d,%d,%d", a, b, c)
		}
		if b != 0 && gfMul(gfDiv(a, b), b) != a {
			t.Fatalf("div/mul roundtrip failed for %d,%d", a, b)
		}
	}
}

// TestAnyKOfN is the MDS property the protocol depends on: for a spread of
// geometries, every sampled K-subset of the N symbols reconstructs the
// payload exactly.
func TestAnyKOfN(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, g := range []struct{ k, r, sym int }{
		{1, 1, 64}, // degenerate K=1: every symbol is the payload
		{4, 2, 128},
		{8, 4, 256},
		{13, 3, 37}, // odd sizes exercise padding
		{64, 4, 1024},
		{252, 4, 16}, // K+R at the MaxSymbols bound
	} {
		p := Params{K: g.k, R: g.r, SymbolSize: g.sym}
		rs, err := NewRS(p)
		if err != nil {
			t.Fatalf("NewRS(%+v): %v", p, err)
		}
		// A payload that does not fill the last symbol, exercising padding.
		payloadLen := g.k*g.sym - g.sym/2
		payload := randPayload(payloadLen, int64(g.k))
		full, err := rs.Encode(payload)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", p, err)
		}
		trials := 40
		if p.N() <= 8 {
			trials = 200 // small geometries: hit most subsets
		}
		for trial := 0; trial < trials; trial++ {
			keep := rng.Perm(p.N())[:g.k]
			syms := make([][]byte, p.N())
			for _, i := range keep {
				syms[i] = full[i]
			}
			if err := rs.Reconstruct(syms); err != nil {
				t.Fatalf("Reconstruct(%+v, keep=%v): %v", p, keep, err)
			}
			for i := range syms {
				if !bytes.Equal(syms[i], full[i]) {
					t.Fatalf("geometry %+v keep=%v: symbol %d mismatches", p, keep, i)
				}
			}
			if got := Join(syms, p, payloadLen); !bytes.Equal(got, payload) {
				t.Fatalf("geometry %+v keep=%v: payload mismatches", p, keep)
			}
		}
	}
}

// TestReconstructErrors pins the failure modes: short sets and mis-sized
// symbols are rejected, and received buffers are never mutated.
func TestReconstructErrors(t *testing.T) {
	p := Params{K: 4, R: 2, SymbolSize: 32}
	rs, err := NewRS(p)
	if err != nil {
		t.Fatal(err)
	}
	payload := randPayload(4*32, 3)
	full, err := rs.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}

	short := make([][]byte, p.N())
	short[0], short[5] = full[0], full[5]
	if err := rs.Reconstruct(short); err == nil {
		t.Fatal("Reconstruct with K-1 symbols succeeded")
	}

	bad := make([][]byte, p.N())
	copy(bad, full)
	bad[2] = full[2][:31]
	if err := rs.Reconstruct(bad); err == nil {
		t.Fatal("Reconstruct accepted a mis-sized symbol")
	}

	if _, err := NewRS(Params{K: 200, R: 100, SymbolSize: 1}); err == nil {
		t.Fatal("NewRS accepted K+R > MaxSymbols")
	}
	if _, err := rs.Encode(randPayload(4*32+1, 4)); err == nil {
		t.Fatal("Encode accepted an oversized payload")
	}

	// Received buffers must survive decoding untouched.
	orig := append([]byte(nil), full[4]...)
	syms := make([][]byte, p.N())
	syms[0], syms[1], syms[4], syms[5] = full[0], full[1], full[4], full[5]
	if err := rs.Reconstruct(syms); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full[4], orig) {
		t.Fatal("Reconstruct mutated a received repair symbol")
	}
}

// TestXORCoder checks the single-parity coder against every single-loss
// pattern and pins its R=1 restriction.
func TestXORCoder(t *testing.T) {
	p := Params{K: 6, R: 1, SymbolSize: 100}
	x, err := NewXOR(p)
	if err != nil {
		t.Fatal(err)
	}
	payload := randPayload(6*100-17, 5)
	full, err := x.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	for lost := 0; lost < p.N(); lost++ {
		syms := make([][]byte, p.N())
		copy(syms, full)
		syms[lost] = nil
		if err := x.Reconstruct(syms); err != nil {
			t.Fatalf("lost=%d: %v", lost, err)
		}
		if !bytes.Equal(syms[lost], full[lost]) {
			t.Fatalf("lost=%d: recovered symbol mismatches", lost)
		}
	}
	if _, err := NewXOR(Params{K: 4, R: 2, SymbolSize: 8}); err == nil {
		t.Fatal("NewXOR accepted R=2")
	}
}

// TestParamsFor pins the geometry derivation both sides of the wire use.
func TestParamsFor(t *testing.T) {
	for _, tc := range []struct {
		payload, symSize, repair int
		wantK, wantSym           int
	}{
		{100, 1024, 2, 1, 100},          // tiny payload: one symbol
		{64 << 10, 1024, 4, 64, 1024},   // exact fit
		{100000, 1024, 4, 98, 1021},     // symbol size re-derived from K
		{10 << 20, 1024, 4, 252, 41611}, // clamped to MaxSymbols-R
		{0, 1024, 4, 1, 0},              // empty payload still valid K
	} {
		p := ParamsFor(tc.payload, tc.symSize, tc.repair)
		if p.K != tc.wantK || p.SymbolSize != tc.wantSym {
			t.Errorf("ParamsFor(%d,%d,%d) = K=%d sym=%d, want K=%d sym=%d",
				tc.payload, tc.symSize, tc.repair, p.K, p.SymbolSize, tc.wantK, tc.wantSym)
		}
		if tc.payload > 0 {
			if p.K*p.SymbolSize < tc.payload {
				t.Errorf("ParamsFor(%d,%d,%d): K*SymbolSize=%d does not cover payload",
					tc.payload, tc.symSize, tc.repair, p.K*p.SymbolSize)
			}
			if p.SymbolSize != SymbolSizeFor(tc.payload, p.K) {
				t.Errorf("ParamsFor(%d,%d,%d): SymbolSize not canonical", tc.payload, tc.symSize, tc.repair)
			}
		}
	}
}

func benchCoder(b *testing.B, payloadLen int, decode bool) {
	p := ParamsFor(payloadLen, 1024, 4)
	rs, err := NewRS(p)
	if err != nil {
		b.Fatal(err)
	}
	payload := randPayload(payloadLen, 1)
	full, err := rs.Encode(payload)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(payloadLen))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !decode {
			if _, err := rs.Encode(payload); err != nil {
				b.Fatal(err)
			}
			continue
		}
		// Worst realistic case: all R repair symbols needed (R source
		// symbols lost), forcing a full elimination.
		syms := make([][]byte, p.N())
		copy(syms, full)
		for j := 0; j < p.R; j++ {
			syms[j*2] = nil
		}
		if err := rs.Reconstruct(syms); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncode64K(b *testing.B)  { benchCoder(b, 64<<10, false) }
func BenchmarkEncode256K(b *testing.B) { benchCoder(b, 256<<10, false) }
func BenchmarkDecode64K(b *testing.B)  { benchCoder(b, 64<<10, true) }
func BenchmarkDecode256K(b *testing.B) { benchCoder(b, 256<<10, true) }
