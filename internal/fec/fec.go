// Package fec provides the systematic erasure coders behind GoCast's
// coopcast dissemination mode (DESIGN.md §13): a payload is split into K
// source symbols of a fixed size plus R repair symbols, and any K of the
// N = K+R symbols reconstruct the payload. The protocol pushes different
// symbols down different tree links and repairs per-symbol over gossip, so
// the coder's job is purely local: deterministic Encode on the sender,
// order-insensitive Reconstruct on receivers.
//
// Two coders are provided. RS is the default: a Reed-Solomon code over
// GF(256) whose parity rows form a Cauchy matrix, which makes the code MDS
// (every K×K submatrix of the generator is invertible, so *any* K symbols
// decode) for any K+R <= MaxSymbols. XOR is the degenerate single-parity
// variant (R = 1) kept as the trivial reference implementation and as the
// cheapest option when only one loss per message need be absorbed.
//
// The package is independent of internal/core; core imports it.
package fec

import (
	"errors"
	"fmt"
)

// MaxSymbols bounds K+R: the Cauchy construction indexes symbols by field
// elements of GF(256), so at most 256 distinct symbols exist per message.
// Protocol bitmaps (4×uint64) assume the same bound.
const MaxSymbols = 256

var (
	// ErrShortSet reports fewer than K symbols available for decoding.
	ErrShortSet = errors.New("fec: fewer than K symbols available")
	// ErrBadParams reports an invalid (K, R, SymbolSize) combination.
	ErrBadParams = errors.New("fec: invalid coding parameters")
	// ErrBadSymbol reports a symbol whose length differs from SymbolSize.
	ErrBadSymbol = errors.New("fec: symbol has wrong length")
)

// Params fixes one message's coding geometry.
type Params struct {
	// K is the number of source symbols (the decode threshold).
	K int
	// R is the number of repair symbols.
	R int
	// SymbolSize is the byte length of every symbol; the last source
	// symbol is zero-padded to it.
	SymbolSize int
}

// N is the total symbol count K+R.
func (p Params) N() int { return p.K + p.R }

// Valid reports whether the geometry is usable.
func (p Params) Valid() bool {
	return p.K >= 1 && p.R >= 0 && p.SymbolSize >= 1 && p.K+p.R <= MaxSymbols
}

// SymbolSizeFor returns the canonical symbol size for a payload split into
// k source symbols: ceil(payloadLen/k). Sender and receivers derive the
// same value from (payloadLen, K) carried on the wire, so the symbol size
// itself never needs to be transmitted.
func SymbolSizeFor(payloadLen, k int) int {
	if k <= 0 {
		return 0
	}
	return (payloadLen + k - 1) / k
}

// ParamsFor derives coding parameters for a payload: K = ceil(len/size)
// source symbols of roughly the requested size, clamped so K+repair fits
// MaxSymbols (very large payloads get proportionally larger symbols), and
// SymbolSize recomputed canonically from the final K.
func ParamsFor(payloadLen, symbolSize, repair int) Params {
	if symbolSize < 1 {
		symbolSize = 1
	}
	if repair < 0 {
		repair = 0
	}
	if repair > MaxSymbols-1 {
		repair = MaxSymbols - 1
	}
	k := (payloadLen + symbolSize - 1) / symbolSize
	if k < 1 {
		k = 1
	}
	if k+repair > MaxSymbols {
		k = MaxSymbols - repair
	}
	return Params{K: k, R: repair, SymbolSize: SymbolSizeFor(payloadLen, k)}
}

// Coder encodes a payload into N symbols and reconstructs missing symbols
// from any K present ones. Implementations are stateless after
// construction and safe for concurrent use.
type Coder interface {
	Params() Params
	// Encode splits the payload into K source symbols (the last one
	// zero-padded) and computes R repair symbols, returning all N in
	// index order. Source symbols alias the payload where possible.
	Encode(payload []byte) ([][]byte, error)
	// Reconstruct fills every nil slot of an N-length symbol vector in
	// place, given at least K non-nil symbols. Non-nil symbols are not
	// modified.
	Reconstruct(symbols [][]byte) error
}

// Join concatenates the K source symbols back into the original payload
// of the given length. Symbols 0..K-1 must be non-nil (call Reconstruct
// first).
func Join(symbols [][]byte, p Params, payloadLen int) []byte {
	out := make([]byte, 0, payloadLen)
	for i := 0; i < p.K && len(out) < payloadLen; i++ {
		rest := payloadLen - len(out)
		s := symbols[i]
		if rest < len(s) {
			s = s[:rest]
		}
		out = append(out, s...)
	}
	return out
}

// split cuts the payload into K source symbols of SymbolSize. All but the
// last alias the payload; the last is copied so it can be zero-padded.
func split(payload []byte, p Params) ([][]byte, error) {
	if len(payload) > p.K*p.SymbolSize {
		return nil, fmt.Errorf("%w: payload %d bytes exceeds K*SymbolSize %d",
			ErrBadParams, len(payload), p.K*p.SymbolSize)
	}
	out := make([][]byte, p.N())
	for i := 0; i < p.K; i++ {
		lo := i * p.SymbolSize
		hi := lo + p.SymbolSize
		if hi <= len(payload) {
			out[i] = payload[lo:hi:hi]
			continue
		}
		s := make([]byte, p.SymbolSize)
		if lo < len(payload) {
			copy(s, payload[lo:])
		}
		out[i] = s
	}
	return out, nil
}

// RS is the Cauchy Reed-Solomon coder over GF(256). Repair row i is
// parity[i][j] = 1/(x_i ⊕ y_j) with x_i = K+i and y_j = j: the x and y
// element sets are disjoint, so the matrix is Cauchy and every square
// submatrix of [I; parity] is invertible — the MDS property the coopcast
// protocol relies on ("any K of N symbols reconstruct").
type RS struct {
	p      Params
	parity [][]byte // R rows × K cols
}

var _ Coder = (*RS)(nil)

// NewRS builds the coder for one geometry.
func NewRS(p Params) (*RS, error) {
	if !p.Valid() {
		return nil, fmt.Errorf("%w: K=%d R=%d SymbolSize=%d", ErrBadParams, p.K, p.R, p.SymbolSize)
	}
	rs := &RS{p: p, parity: make([][]byte, p.R)}
	for i := 0; i < p.R; i++ {
		row := make([]byte, p.K)
		for j := 0; j < p.K; j++ {
			row[j] = gfInv(byte(p.K+i) ^ byte(j))
		}
		rs.parity[i] = row
	}
	return rs, nil
}

// Params returns the coder's geometry.
func (rs *RS) Params() Params { return rs.p }

// Encode produces the N symbols of a payload.
func (rs *RS) Encode(payload []byte) ([][]byte, error) {
	syms, err := split(payload, rs.p)
	if err != nil {
		return nil, err
	}
	for i := 0; i < rs.p.R; i++ {
		rep := make([]byte, rs.p.SymbolSize)
		for j := 0; j < rs.p.K; j++ {
			mulAddRow(rep, syms[j], rs.parity[i][j])
		}
		syms[rs.p.K+i] = rep
	}
	return syms, nil
}

// Reconstruct fills every missing symbol in place from any K present ones.
func (rs *RS) Reconstruct(symbols [][]byte) error {
	p := rs.p
	if len(symbols) != p.N() {
		return fmt.Errorf("%w: got %d slots, want %d", ErrBadParams, len(symbols), p.N())
	}
	have := 0
	missingSrc := 0
	for i, s := range symbols {
		if s == nil {
			if i < p.K {
				missingSrc++
			}
			continue
		}
		if len(s) != p.SymbolSize {
			return fmt.Errorf("%w: symbol %d is %d bytes, want %d", ErrBadSymbol, i, len(s), p.SymbolSize)
		}
		have++
	}
	if have < p.K {
		return fmt.Errorf("%w: have %d, K=%d", ErrShortSet, have, p.K)
	}
	if missingSrc > 0 {
		if err := rs.solveSources(symbols); err != nil {
			return err
		}
	}
	// With all sources present, missing repair symbols are re-derived by
	// straight encoding.
	for i := 0; i < p.R; i++ {
		if symbols[p.K+i] != nil {
			continue
		}
		rep := make([]byte, p.SymbolSize)
		for j := 0; j < p.K; j++ {
			mulAddRow(rep, symbols[j], rs.parity[i][j])
		}
		symbols[p.K+i] = rep
	}
	return nil
}

// solveSources recovers the missing source symbols by Gaussian elimination
// over the K×K system formed by K received symbols: a received source j
// contributes the unit row e_j, a received repair i its Cauchy row. The
// Cauchy structure guarantees the chosen square system is invertible.
func (rs *RS) solveSources(symbols [][]byte) error {
	p := rs.p
	// Pick K received symbols, sources first (their unit rows make the
	// elimination cheaper).
	rows := make([][]byte, 0, p.K) // coefficient rows, K wide
	data := make([][]byte, 0, p.K) // matching right-hand-side symbols
	for j := 0; j < p.K && len(rows) < p.K; j++ {
		if symbols[j] != nil {
			row := make([]byte, p.K)
			row[j] = 1
			rows = append(rows, row)
			data = append(data, symbols[j])
		}
	}
	for i := 0; i < p.R && len(rows) < p.K; i++ {
		if symbols[p.K+i] != nil {
			rows = append(rows, append([]byte(nil), rs.parity[i]...))
			data = append(data, symbols[p.K+i])
		}
	}
	// Gauss-Jordan: reduce [rows | I] to [I | inv]. Right-hand sides are
	// carried as symbol buffers, mutated by the same row operations, so at
	// the end data[j] IS source symbol j.
	rhs := make([][]byte, p.K)
	for i, d := range data {
		// Copy: the elimination mutates buffers, and callers' received
		// symbols must not be touched.
		rhs[i] = append([]byte(nil), d...)
	}
	for col := 0; col < p.K; col++ {
		// Find a pivot at or below row col.
		piv := -1
		for r := col; r < p.K; r++ {
			if rows[r][col] != 0 {
				piv = r
				break
			}
		}
		if piv < 0 {
			return fmt.Errorf("fec: singular decode matrix at column %d", col)
		}
		rows[col], rows[piv] = rows[piv], rows[col]
		rhs[col], rhs[piv] = rhs[piv], rhs[col]
		// Normalize the pivot row.
		if c := rows[col][col]; c != 1 {
			inv := gfInv(c)
			for j := col; j < p.K; j++ {
				rows[col][j] = gfMul(rows[col][j], inv)
			}
			scaleRow(rhs[col], inv)
		}
		// Eliminate the column everywhere else.
		for r := 0; r < p.K; r++ {
			if r == col || rows[r][col] == 0 {
				continue
			}
			c := rows[r][col]
			for j := col; j < p.K; j++ {
				rows[r][j] ^= gfMul(c, rows[col][j])
			}
			mulAddRow(rhs[r], rhs[col], c)
		}
	}
	for j := 0; j < p.K; j++ {
		if symbols[j] == nil {
			symbols[j] = rhs[j]
		}
	}
	return nil
}

// scaleRow multiplies a symbol buffer by a field constant in place.
func scaleRow(s []byte, c byte) {
	if c == 1 {
		return
	}
	logC := int(gfLog[c])
	for i, v := range s {
		if v != 0 {
			s[i] = gfExp[logC+int(gfLog[v])]
		}
	}
}

// XOR is the single-parity coder: one repair symbol equal to the XOR of
// all source symbols, recovering any single loss. It exists as the
// trivial reference coder; RS with R=1 is equivalent but pays table
// lookups XOR does not need.
type XOR struct {
	p Params
}

var _ Coder = (*XOR)(nil)

// NewXOR builds the single-parity coder; R must be exactly 1.
func NewXOR(p Params) (*XOR, error) {
	if !p.Valid() || p.R != 1 {
		return nil, fmt.Errorf("%w: XOR coder requires R=1 (got K=%d R=%d)", ErrBadParams, p.K, p.R)
	}
	return &XOR{p: p}, nil
}

// Params returns the coder's geometry.
func (x *XOR) Params() Params { return x.p }

// Encode produces K source symbols plus the parity symbol.
func (x *XOR) Encode(payload []byte) ([][]byte, error) {
	syms, err := split(payload, x.p)
	if err != nil {
		return nil, err
	}
	rep := make([]byte, x.p.SymbolSize)
	for j := 0; j < x.p.K; j++ {
		mulAddRow(rep, syms[j], 1)
	}
	syms[x.p.K] = rep
	return syms, nil
}

// Reconstruct recovers at most one missing symbol (source or parity).
func (x *XOR) Reconstruct(symbols [][]byte) error {
	p := x.p
	if len(symbols) != p.N() {
		return fmt.Errorf("%w: got %d slots, want %d", ErrBadParams, len(symbols), p.N())
	}
	missing := -1
	have := 0
	for i, s := range symbols {
		if s == nil {
			missing = i
			continue
		}
		if len(s) != p.SymbolSize {
			return fmt.Errorf("%w: symbol %d is %d bytes, want %d", ErrBadSymbol, i, len(s), p.SymbolSize)
		}
		have++
	}
	if have < p.K {
		return fmt.Errorf("%w: have %d, K=%d", ErrShortSet, have, p.K)
	}
	if missing < 0 {
		return nil
	}
	rec := make([]byte, p.SymbolSize)
	for i, s := range symbols {
		if i != missing {
			mulAddRow(rec, s, 1)
		}
	}
	symbols[missing] = rec
	return nil
}
