// Package fec provides the systematic erasure coders behind GoCast's
// coopcast dissemination mode (DESIGN.md §13): a payload is split into K
// source symbols of a fixed size plus R repair symbols, and any K of the
// N = K+R symbols reconstruct the payload. The protocol pushes different
// symbols down different tree links and repairs per-symbol over gossip, so
// the coder's job is purely local: deterministic Encode on the sender,
// order-insensitive Reconstruct on receivers.
//
// Two coders are provided. RS is the default: a Reed-Solomon code over
// GF(256) whose parity rows form a Cauchy matrix, which makes the code MDS
// (every K×K submatrix of the generator is invertible, so *any* K symbols
// decode) for any K+R <= MaxSymbols. XOR is the degenerate single-parity
// variant (R = 1) kept as the trivial reference implementation and as the
// cheapest option when only one loss per message need be absorbed.
//
// The package is independent of internal/core; core imports it.
package fec

import (
	"errors"
	"fmt"
	"sync"
)

// MaxSymbols bounds K+R: the Cauchy construction indexes symbols by field
// elements of GF(256), so at most 256 distinct symbols exist per message.
// Protocol bitmaps (4×uint64) assume the same bound.
const MaxSymbols = 256

var (
	// ErrShortSet reports fewer than K symbols available for decoding.
	ErrShortSet = errors.New("fec: fewer than K symbols available")
	// ErrBadParams reports an invalid (K, R, SymbolSize) combination.
	ErrBadParams = errors.New("fec: invalid coding parameters")
	// ErrBadSymbol reports a symbol whose length differs from SymbolSize.
	ErrBadSymbol = errors.New("fec: symbol has wrong length")
)

// Params fixes one message's coding geometry.
type Params struct {
	// K is the number of source symbols (the decode threshold).
	K int
	// R is the number of repair symbols.
	R int
	// SymbolSize is the byte length of every symbol; the last source
	// symbol is zero-padded to it.
	SymbolSize int
}

// N is the total symbol count K+R.
func (p Params) N() int { return p.K + p.R }

// Valid reports whether the geometry is usable.
func (p Params) Valid() bool {
	return p.K >= 1 && p.R >= 0 && p.SymbolSize >= 1 && p.K+p.R <= MaxSymbols
}

// SymbolSizeFor returns the canonical symbol size for a payload split into
// k source symbols: ceil(payloadLen/k). Sender and receivers derive the
// same value from (payloadLen, K) carried on the wire, so the symbol size
// itself never needs to be transmitted.
func SymbolSizeFor(payloadLen, k int) int {
	if k <= 0 {
		return 0
	}
	return (payloadLen + k - 1) / k
}

// ParamsFor derives coding parameters for a payload: K = ceil(len/size)
// source symbols of roughly the requested size, clamped so K+repair fits
// MaxSymbols (very large payloads get proportionally larger symbols), and
// SymbolSize recomputed canonically from the final K.
func ParamsFor(payloadLen, symbolSize, repair int) Params {
	if symbolSize < 1 {
		symbolSize = 1
	}
	if repair < 0 {
		repair = 0
	}
	if repair > MaxSymbols-1 {
		repair = MaxSymbols - 1
	}
	k := (payloadLen + symbolSize - 1) / symbolSize
	if k < 1 {
		k = 1
	}
	if k+repair > MaxSymbols {
		k = MaxSymbols - repair
	}
	return Params{K: k, R: repair, SymbolSize: SymbolSizeFor(payloadLen, k)}
}

// Coder encodes a payload into N symbols and reconstructs missing symbols
// from any K present ones. Implementations are stateless after
// construction and safe for concurrent use.
type Coder interface {
	Params() Params
	// Encode splits the payload into K source symbols (the last one
	// zero-padded) and computes R repair symbols, returning all N in
	// index order. Source symbols alias the payload where possible.
	Encode(payload []byte) ([][]byte, error)
	// Reconstruct fills every nil slot of an N-length symbol vector in
	// place, given at least K non-nil symbols. Non-nil symbols are not
	// modified.
	Reconstruct(symbols [][]byte) error
}

// Join concatenates the K source symbols back into the original payload
// of the given length. Symbols 0..K-1 must be non-nil (call Reconstruct
// first).
func Join(symbols [][]byte, p Params, payloadLen int) []byte {
	out := make([]byte, 0, payloadLen)
	for i := 0; i < p.K && len(out) < payloadLen; i++ {
		rest := payloadLen - len(out)
		s := symbols[i]
		if rest < len(s) {
			s = s[:rest]
		}
		out = append(out, s...)
	}
	return out
}

// split cuts the payload into K source symbols of SymbolSize. All but the
// last alias the payload; the last is copied so it can be zero-padded.
func split(payload []byte, p Params) ([][]byte, error) {
	if len(payload) > p.K*p.SymbolSize {
		return nil, fmt.Errorf("%w: payload %d bytes exceeds K*SymbolSize %d",
			ErrBadParams, len(payload), p.K*p.SymbolSize)
	}
	out := make([][]byte, p.N())
	for i := 0; i < p.K; i++ {
		lo := i * p.SymbolSize
		hi := lo + p.SymbolSize
		if hi <= len(payload) {
			out[i] = payload[lo:hi:hi]
			continue
		}
		s := make([]byte, p.SymbolSize)
		if lo < len(payload) {
			copy(s, payload[lo:])
		}
		out[i] = s
	}
	return out, nil
}

// RS is the Cauchy Reed-Solomon coder over GF(256). Repair row i is
// parity[i][j] = 1/(x_i ⊕ y_j) with x_i = K+i and y_j = j: the x and y
// element sets are disjoint, so the matrix is Cauchy and every square
// submatrix of [I; parity] is invertible — the MDS property the coopcast
// protocol relies on ("any K of N symbols reconstruct").
//
// Decode working memory is recycled through a sync.Pool, so the coder
// stays safe for concurrent use while steady-state Reconstruct allocates
// only the recovered symbols themselves (one slab per call).
type RS struct {
	p       Params
	parity  [][]byte  // R rows × K cols
	scratch sync.Pool // *rsScratch
}

// rsScratch is one decode's reusable working set, sized once per coder
// geometry: at most R sources can be missing (more is ErrShortSet), so
// every piece is R-bounded.
type rsScratch struct {
	miss []int    // missing source indexes
	reps []int    // repair indexes drafted into the system
	acc  [][]byte // per-drafted-repair accumulator, SymbolSize each
	mat  []byte   // m×m Cauchy submatrix, mutated by the inversion
	inv  []byte   // its inverse
}

var _ Coder = (*RS)(nil)

// NewRS builds the coder for one geometry.
func NewRS(p Params) (*RS, error) {
	if !p.Valid() {
		return nil, fmt.Errorf("%w: K=%d R=%d SymbolSize=%d", ErrBadParams, p.K, p.R, p.SymbolSize)
	}
	rs := &RS{p: p, parity: make([][]byte, p.R)}
	for i := 0; i < p.R; i++ {
		row := make([]byte, p.K)
		for j := 0; j < p.K; j++ {
			row[j] = gfInv(byte(p.K+i) ^ byte(j))
		}
		rs.parity[i] = row
	}
	rs.scratch.New = func() any {
		sc := &rsScratch{
			miss: make([]int, 0, p.R),
			reps: make([]int, 0, p.R),
			acc:  make([][]byte, p.R),
			mat:  make([]byte, p.R*p.R),
			inv:  make([]byte, p.R*p.R),
		}
		for i := range sc.acc {
			sc.acc[i] = make([]byte, p.SymbolSize)
		}
		return sc
	}
	return rs, nil
}

// Params returns the coder's geometry.
func (rs *RS) Params() Params { return rs.p }

// Encode produces the N symbols of a payload.
func (rs *RS) Encode(payload []byte) ([][]byte, error) {
	syms, err := split(payload, rs.p)
	if err != nil {
		return nil, err
	}
	for i := 0; i < rs.p.R; i++ {
		rep := make([]byte, rs.p.SymbolSize)
		for j := 0; j < rs.p.K; j++ {
			mulAddRow(rep, syms[j], rs.parity[i][j])
		}
		syms[rs.p.K+i] = rep
	}
	return syms, nil
}

// Reconstruct fills every missing symbol in place from any K present ones.
func (rs *RS) Reconstruct(symbols [][]byte) error {
	p := rs.p
	if len(symbols) != p.N() {
		return fmt.Errorf("%w: got %d slots, want %d", ErrBadParams, len(symbols), p.N())
	}
	have := 0
	missingSrc := 0
	for i, s := range symbols {
		if s == nil {
			if i < p.K {
				missingSrc++
			}
			continue
		}
		if len(s) != p.SymbolSize {
			return fmt.Errorf("%w: symbol %d is %d bytes, want %d", ErrBadSymbol, i, len(s), p.SymbolSize)
		}
		have++
	}
	if have < p.K {
		return fmt.Errorf("%w: have %d, K=%d", ErrShortSet, have, p.K)
	}
	if missingSrc > 0 {
		if err := rs.solveSources(symbols); err != nil {
			return err
		}
	}
	// With all sources present, missing repair symbols are re-derived by
	// straight encoding.
	for i := 0; i < p.R; i++ {
		if symbols[p.K+i] != nil {
			continue
		}
		rep := make([]byte, p.SymbolSize)
		for j := 0; j < p.K; j++ {
			mulAddRow(rep, symbols[j], rs.parity[i][j])
		}
		symbols[p.K+i] = rep
	}
	return nil
}

// solveSources recovers the missing source symbols. Rather than
// eliminating the full K×K system of received symbols, it subtracts every
// present source's contribution from m received repair symbols (m = the
// number of missing sources, at most R) and solves the residual m×m
// system restricted to the missing columns — the work that used to be
// O(K²·SymbolSize) with K row allocations is O((K+m)·m·SymbolSize) with
// pooled scratch. The m×m matrix is a square submatrix of the Cauchy
// parity block, hence invertible.
func (rs *RS) solveSources(symbols [][]byte) error {
	p := rs.p
	sc := rs.scratch.Get().(*rsScratch)
	defer rs.scratch.Put(sc)
	miss := sc.miss[:0]
	for j := 0; j < p.K; j++ {
		if symbols[j] == nil {
			miss = append(miss, j)
		}
	}
	m := len(miss)
	reps := sc.reps[:0]
	for i := 0; i < p.R && len(reps) < m; i++ {
		if symbols[p.K+i] != nil {
			reps = append(reps, i)
		}
	}
	if len(reps) < m {
		// Unreachable after Reconstruct's have >= K check; kept as a guard.
		return fmt.Errorf("%w: %d sources missing, %d repairs held", ErrShortSet, m, len(reps))
	}
	// acc[ri] = repair_{reps[ri]} ⊕ Σ_{present j} parity[reps[ri]][j]·src_j:
	// what the missing sources must still account for.
	for ri, i := range reps {
		acc := sc.acc[ri]
		copy(acc, symbols[p.K+i])
		row := rs.parity[i]
		for j := 0; j < p.K; j++ {
			if symbols[j] != nil {
				mulAddRow(acc, symbols[j], row[j])
			}
		}
	}
	mat, inv := sc.mat[:m*m], sc.inv[:m*m]
	for ri, i := range reps {
		for ci, j := range miss {
			mat[ri*m+ci] = rs.parity[i][j]
		}
	}
	if err := gfInvertMatrix(mat, inv, m); err != nil {
		return err
	}
	// One slab for all recovered symbols; full-slice expressions keep a
	// later append on one from clobbering its neighbor.
	slab := make([]byte, m*p.SymbolSize)
	for ci, j := range miss {
		out := slab[ci*p.SymbolSize : (ci+1)*p.SymbolSize : (ci+1)*p.SymbolSize]
		for ri := range reps {
			mulAddRow(out, sc.acc[ri], inv[ci*m+ri])
		}
		symbols[j] = out
	}
	sc.miss, sc.reps = miss, reps
	return nil
}

// gfInvertMatrix inverts the n×n row-major matrix mat into inv by
// Gauss-Jordan elimination, destroying mat.
func gfInvertMatrix(mat, inv []byte, n int) error {
	for i := range inv {
		inv[i] = 0
	}
	for i := 0; i < n; i++ {
		inv[i*n+i] = 1
	}
	for col := 0; col < n; col++ {
		piv := -1
		for r := col; r < n; r++ {
			if mat[r*n+col] != 0 {
				piv = r
				break
			}
		}
		if piv < 0 {
			return fmt.Errorf("fec: singular decode matrix at column %d", col)
		}
		if piv != col {
			for j := 0; j < n; j++ {
				mat[col*n+j], mat[piv*n+j] = mat[piv*n+j], mat[col*n+j]
				inv[col*n+j], inv[piv*n+j] = inv[piv*n+j], inv[col*n+j]
			}
		}
		if c := mat[col*n+col]; c != 1 {
			ic := gfInv(c)
			for j := 0; j < n; j++ {
				mat[col*n+j] = gfMul(mat[col*n+j], ic)
				inv[col*n+j] = gfMul(inv[col*n+j], ic)
			}
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			c := mat[r*n+col]
			if c == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				mat[r*n+j] ^= gfMul(c, mat[col*n+j])
				inv[r*n+j] ^= gfMul(c, inv[col*n+j])
			}
		}
	}
	return nil
}

// XOR is the single-parity coder: one repair symbol equal to the XOR of
// all source symbols, recovering any single loss. It exists as the
// trivial reference coder; RS with R=1 is equivalent but pays table
// lookups XOR does not need.
type XOR struct {
	p Params
}

var _ Coder = (*XOR)(nil)

// NewXOR builds the single-parity coder; R must be exactly 1.
func NewXOR(p Params) (*XOR, error) {
	if !p.Valid() || p.R != 1 {
		return nil, fmt.Errorf("%w: XOR coder requires R=1 (got K=%d R=%d)", ErrBadParams, p.K, p.R)
	}
	return &XOR{p: p}, nil
}

// Params returns the coder's geometry.
func (x *XOR) Params() Params { return x.p }

// Encode produces K source symbols plus the parity symbol.
func (x *XOR) Encode(payload []byte) ([][]byte, error) {
	syms, err := split(payload, x.p)
	if err != nil {
		return nil, err
	}
	rep := make([]byte, x.p.SymbolSize)
	for j := 0; j < x.p.K; j++ {
		mulAddRow(rep, syms[j], 1)
	}
	syms[x.p.K] = rep
	return syms, nil
}

// Reconstruct recovers at most one missing symbol (source or parity).
func (x *XOR) Reconstruct(symbols [][]byte) error {
	p := x.p
	if len(symbols) != p.N() {
		return fmt.Errorf("%w: got %d slots, want %d", ErrBadParams, len(symbols), p.N())
	}
	missing := -1
	have := 0
	for i, s := range symbols {
		if s == nil {
			missing = i
			continue
		}
		if len(s) != p.SymbolSize {
			return fmt.Errorf("%w: symbol %d is %d bytes, want %d", ErrBadSymbol, i, len(s), p.SymbolSize)
		}
		have++
	}
	if have < p.K {
		return fmt.Errorf("%w: have %d, K=%d", ErrShortSet, have, p.K)
	}
	if missing < 0 {
		return nil
	}
	rec := make([]byte, p.SymbolSize)
	for i, s := range symbols {
		if i != missing {
			mulAddRow(rec, s, 1)
		}
	}
	symbols[missing] = rec
	return nil
}
