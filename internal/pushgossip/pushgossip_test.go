package pushgossip

import (
	"testing"
	"time"
)

func TestSingleMessageSpreads(t *testing.T) {
	s := New(Options{Nodes: 128, Seed: 1, Fanout: 8, GossipPeriod: 100 * time.Millisecond})
	s.Inject(0)
	s.Run(30 * time.Second)
	rec := s.Delays()
	if got := rec.DeliveryRatio(); got < 0.99 {
		t.Fatalf("delivery ratio = %.3f with fanout 8, want >= 0.99", got)
	}
}

func TestLowFanoutMissesSomeNodes(t *testing.T) {
	// With fanout 2 on 256 nodes, some nodes should miss some of many
	// messages (ln 256 ≈ 5.5 > 2): the paper's core criticism.
	s := New(Options{Nodes: 256, Seed: 2, Fanout: 2, GossipPeriod: 50 * time.Millisecond})
	for i := 0; i < 20; i++ {
		s.Inject(i % 256)
	}
	s.Run(60 * time.Second)
	if rec := s.Delays(); rec.Misses() == 0 {
		t.Fatalf("fanout 2 delivered everything; expected misses")
	}
}

func TestNoWaitIsFasterThanPeriodic(t *testing.T) {
	mean := func(period time.Duration) time.Duration {
		s := New(Options{Nodes: 128, Seed: 3, Fanout: 6, GossipPeriod: period})
		s.Inject(0)
		s.Run(30 * time.Second)
		return s.Delays().CDF().Mean()
	}
	periodic := mean(100 * time.Millisecond)
	noWait := mean(0)
	if noWait >= periodic {
		t.Fatalf("no-wait mean %v should beat periodic mean %v", noWait, periodic)
	}
}

func TestHearHistogramVariance(t *testing.T) {
	// Complete randomness: hear counts should range from 0 to far above
	// the fanout (Section 1 cites 0 to ~19 for F=5, n=1024).
	s := New(Options{Nodes: 512, Seed: 4, Fanout: 5, GossipPeriod: 100 * time.Millisecond})
	for i := 0; i < 20; i++ {
		s.Inject(i)
	}
	s.Run(60 * time.Second)
	h := s.HearHistogram()
	if h.Max() < 10 {
		t.Errorf("max hear count = %d, want heavy tail >= 10", h.Max())
	}
	if h.Fraction(0) == 0 {
		t.Logf("note: no node missed every gossip in this run (possible)")
	}
	if mean := h.Mean(); mean < 4 || mean > 6 {
		t.Errorf("mean hear count = %.2f, want ~Fanout (5)", mean)
	}
}

func TestFailuresReduceDelivery(t *testing.T) {
	run := func(kill float64) float64 {
		s := New(Options{Nodes: 256, Seed: 5, Fanout: 4, GossipPeriod: 100 * time.Millisecond})
		s.KillFraction(kill)
		for i := 0; i < 10; i++ {
			if src := s.randomLive(); src >= 0 {
				s.Inject(src)
			}
		}
		s.Run(60 * time.Second)
		return s.Delays().DeliveryRatio()
	}
	healthy := run(0)
	faulty := run(0.3)
	if faulty > healthy {
		t.Fatalf("delivery with 30%% failures (%.4f) should not beat healthy (%.4f)", faulty, healthy)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (time.Duration, int) {
		s := New(Options{Nodes: 128, Seed: 7, Fanout: 5, GossipPeriod: 100 * time.Millisecond})
		s.Inject(3)
		s.Run(20 * time.Second)
		return s.Delays().CDF().Max(), s.Delays().Misses()
	}
	d1, m1 := run()
	d2, m2 := run()
	if d1 != d2 || m1 != m2 {
		t.Fatalf("same seed diverged: %v/%d vs %v/%d", d1, m1, d2, m2)
	}
}

func TestObserverSeesTraffic(t *testing.T) {
	var transmissions, bytes int
	s := New(Options{
		Nodes: 64, Seed: 8, Fanout: 5, GossipPeriod: 100 * time.Millisecond,
		PayloadSize: 1000,
		Observer:    func(_, _, b int) { transmissions++; bytes += b },
	})
	s.Inject(0)
	s.Run(10 * time.Second)
	if transmissions == 0 || bytes == 0 {
		t.Fatalf("observer saw no traffic")
	}
}

func TestKillFractionCounts(t *testing.T) {
	s := New(Options{Nodes: 100, Seed: 9, Fanout: 5, GossipPeriod: time.Second})
	killed := s.KillFraction(0.2)
	if len(killed) != 20 {
		t.Fatalf("killed %d nodes, want 20", len(killed))
	}
	if got := s.AliveCount(); got != 80 {
		t.Fatalf("alive = %d, want 80", got)
	}
}
