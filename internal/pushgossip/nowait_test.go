package pushgossip

import (
	"testing"
	"time"
)

func TestNoWaitAnnouncesExactlyFanout(t *testing.T) {
	// In the no-wait variant the source announces to exactly Fanout
	// distinct nodes immediately; with a single message and no relays yet,
	// the first wave of gossips equals the fanout.
	gossips := 0
	s := New(Options{
		Nodes: 64, Seed: 1, Fanout: 5, GossipPeriod: 0,
		Observer: func(_, _, bytes int) {
			if bytes == 8+12*1 { // a gossip frame carrying exactly one ID
				gossips++
			}
		},
	})
	s.Inject(0)
	// Run just long enough for the first wave (one-way latency < 400 ms)
	// but not for second-generation announcements: receivers only gossip
	// after pulling the payload (3 more hops).
	s.Run(300 * time.Millisecond)
	if gossips < 5 {
		t.Fatalf("first-wave gossips = %d, want >= fanout 5", gossips)
	}
}

func TestPeriodicAnnouncesSpreadOverRounds(t *testing.T) {
	// In the periodic variant a holder announces a message to one random
	// node per period, F times: the source's announcements take F periods.
	s := New(Options{Nodes: 32, Seed: 2, Fanout: 4, GossipPeriod: 200 * time.Millisecond})
	s.Inject(0)
	s.Run(time.Second) // ~5 periods, enough for the source's 4 rounds
	h := s.HearHistogram()
	total := 0
	for v := 1; v <= h.Max(); v++ {
		total += int(float64(h.Total()) * h.Fraction(v) * float64(v) / 1)
	}
	if h.Mean() == 0 {
		t.Fatalf("no announcements observed")
	}
}

func TestInjectFromDeadNodeImpossibleViaStream(t *testing.T) {
	s := New(Options{Nodes: 16, Seed: 3, Fanout: 3, GossipPeriod: 100 * time.Millisecond})
	for i := 1; i < 16; i++ {
		s.Kill(i)
	}
	s.InjectStream(5, 100)
	s.Run(5 * time.Second)
	// Only node 0 is alive: it must be the source of every message, and
	// each message reaches exactly the one live node.
	for m, row := range s.recv {
		if row[0] < 0 {
			t.Fatalf("message %d not delivered to its live source", m)
		}
	}
	if got := s.Delays().DeliveryRatio(); got != 1 {
		t.Fatalf("delivery ratio over live nodes = %v", got)
	}
}

func TestHearHistogramCountsOnlyTrackedMessages(t *testing.T) {
	s := New(Options{Nodes: 32, Seed: 4, Fanout: 3, GossipPeriod: 50 * time.Millisecond})
	s.Inject(0)
	s.Run(10 * time.Second)
	h := s.HearHistogram()
	if h.Total() != 32 {
		t.Fatalf("histogram entries = %d, want one per live node", h.Total())
	}
}
