// Package pushgossip implements the baseline protocols GoCast is compared
// against in Section 3: a push-based gossip multicast in the style of
// Bimodal Multicast, and its "no-wait" variant.
//
// In the push-based protocol every node, once per gossip period t, sends a
// summary of recently received message IDs to one uniformly random node;
// each message ID is gossiped to Fanout random nodes in total (one per
// period). A receiver that learns of an unknown message requests it from
// the gossip's sender. In the no-wait variant (t = 0) a node announces a
// freshly received message to Fanout random nodes immediately, revealing
// the protocol's fundamental delay floor. Both variants are oblivious to
// network topology — the property responsible for their high bottleneck
// link stress and their e^{-e^{ln n - F}} reliability.
package pushgossip

import (
	"math/rand"
	"time"

	"gocast/internal/latency"
	"gocast/internal/metrics"
	"gocast/internal/sim"
)

// Options configures a push-gossip simulation.
type Options struct {
	// Nodes is the system size.
	Nodes int
	// Seed drives all randomness.
	Seed int64
	// Fanout is F: how many random nodes hear each message ID from each
	// holder.
	Fanout int
	// GossipPeriod is t. Zero selects the no-wait variant.
	GossipPeriod time.Duration
	// PullRetry re-requests an unanswered pull after this long.
	PullRetry time.Duration
	// PayloadSize is the modeled payload size in bytes (accounting only).
	PayloadSize int
	// Matrix provides latencies; synthesized from Seed when nil.
	Matrix *latency.Matrix
	// Observer, if set, sees every transmission (for traffic accounting).
	Observer func(from, to, wireBytes int)
}

// Sim is a running push-gossip system.
type Sim struct {
	Engine *sim.Engine
	Matrix *latency.Matrix

	opts   Options
	rng    *rand.Rand
	siteOf []int
	nodes  []*node
	alive  []bool

	injectTimes []time.Duration
	recv        [][]time.Duration // [msg][node] delivery time, -1 = never
	hears       [][]int32         // [msg][node] times the ID was heard
}

type node struct {
	s   *Sim
	id  int
	rng *rand.Rand

	// have[m] = true once the payload of message m was received.
	have map[int]bool
	// announce[m] = remaining number of random targets to gossip m to.
	announce map[int]int
	// pending pulls: message -> holders known to have it.
	pending map[int]*pull
}

type pull struct {
	holders []int
	next    int
	timer   sim.Timer
}

// message types (modelled, not serialized)
type gossipMsg struct{ ids []int }
type pullMsg struct{ ids []int }
type payloadMsg struct{ id int }

// New builds and starts a push-gossip simulation.
func New(opts Options) *Sim {
	if opts.Nodes <= 0 {
		panic("pushgossip: need at least one node")
	}
	if opts.Fanout <= 0 {
		opts.Fanout = 5
	}
	if opts.PullRetry <= 0 {
		opts.PullRetry = time.Second
	}
	eng := sim.NewEngine(opts.Seed)
	mat := opts.Matrix
	if mat == nil {
		sites := opts.Nodes
		if sites > latency.KingSites {
			sites = latency.KingSites
		}
		mat = latency.Synthesize(sites, opts.Seed)
	}
	s := &Sim{
		Engine: eng,
		Matrix: mat,
		opts:   opts,
		rng:    rand.New(rand.NewSource(opts.Seed ^ 0x90551b)),
		siteOf: make([]int, opts.Nodes),
		nodes:  make([]*node, opts.Nodes),
		alive:  make([]bool, opts.Nodes),
	}
	for i := 0; i < opts.Nodes; i++ {
		s.siteOf[i] = i % mat.Sites()
		s.alive[i] = true
		s.nodes[i] = &node{
			s:        s,
			id:       i,
			rng:      rand.New(rand.NewSource(s.rng.Int63())),
			have:     make(map[int]bool),
			announce: make(map[int]int),
			pending:  make(map[int]*pull),
		}
	}
	if opts.GossipPeriod > 0 {
		for _, n := range s.nodes {
			n := n
			phase := time.Duration(n.rng.Int63n(int64(opts.GossipPeriod) + 1))
			eng.After(phase, n.gossipTick)
		}
	}
	return s
}

// Run advances the simulation by d.
func (s *Sim) Run(d time.Duration) { s.Engine.Run(s.Engine.Now() + d) }

// Now returns the simulated time.
func (s *Sim) Now() time.Duration { return s.Engine.Now() }

// Kill fails node i.
func (s *Sim) Kill(i int) { s.alive[i] = false }

// KillFraction kills ceil(frac*live) uniformly random live nodes.
func (s *Sim) KillFraction(frac float64) []int {
	var live []int
	for i, a := range s.alive {
		if a {
			live = append(live, i)
		}
	}
	k := int(frac*float64(len(live)) + 0.5)
	s.rng.Shuffle(len(live), func(a, b int) { live[a], live[b] = live[b], live[a] })
	killed := live[:k]
	for _, i := range killed {
		s.Kill(i)
	}
	return killed
}

// AliveCount returns the number of live nodes.
func (s *Sim) AliveCount() int {
	c := 0
	for _, a := range s.alive {
		if a {
			c++
		}
	}
	return c
}

// Inject starts a multicast at node from and returns its message index.
func (s *Sim) Inject(from int) int {
	m := len(s.injectTimes)
	s.injectTimes = append(s.injectTimes, s.Engine.Now())
	row := make([]time.Duration, len(s.nodes))
	for i := range row {
		row[i] = -1
	}
	s.recv = append(s.recv, row)
	s.hears = append(s.hears, make([]int32, len(s.nodes)))
	s.nodes[from].receivePayload(m, true)
	return m
}

// InjectStream schedules `count` multicasts at the given rate from random
// live sources.
func (s *Sim) InjectStream(count int, perSecond float64) {
	interval := time.Duration(float64(time.Second) / perSecond)
	for k := 1; k <= count; k++ {
		s.Engine.After(time.Duration(k)*interval, func() {
			if src := s.randomLive(); src >= 0 {
				s.Inject(src)
			}
		})
	}
}

func (s *Sim) randomLive() int {
	n := len(s.nodes)
	for tries := 0; tries < 4*n; tries++ {
		if i := s.rng.Intn(n); s.alive[i] {
			return i
		}
	}
	return -1
}

// Delays builds the delay distribution over (message, live node) pairs.
func (s *Sim) Delays() *metrics.DelayRecorder {
	rec := metrics.NewDelayRecorder()
	for m := range s.recv {
		for i := range s.nodes {
			if !s.alive[i] {
				continue
			}
			if at := s.recv[m][i]; at >= 0 {
				rec.Add(at - s.injectTimes[m])
			} else {
				rec.AddMiss()
			}
		}
	}
	return rec
}

// HearHistogram returns the distribution of how many times live nodes
// heard gossip announcements for each message (Section 1: with F=5 about
// 0.7% of nodes never hear a message while some hear it ~19 times).
func (s *Sim) HearHistogram() *metrics.IntHistogram {
	h := metrics.NewIntHistogram()
	for m := range s.hears {
		for i := range s.nodes {
			if s.alive[i] {
				h.Add(int(s.hears[m][i]))
			}
		}
	}
	return h
}

// Messages returns the number of injected messages.
func (s *Sim) Messages() int { return len(s.injectTimes) }

// send models a transmission with one-way latency.
func (s *Sim) send(from, to, bytes int, deliver func()) {
	if from == to || !s.alive[from] {
		return
	}
	if s.opts.Observer != nil {
		s.opts.Observer(from, to, bytes)
	}
	if !s.alive[to] {
		return
	}
	d := s.Matrix.OneWay(s.siteOf[from], s.siteOf[to])
	s.Engine.After(d, func() {
		if s.alive[to] {
			deliver()
		}
	})
}

// --- node behaviour ---

// receivePayload handles a payload arriving (or being injected).
func (n *node) receivePayload(m int, injected bool) {
	if n.have[m] {
		return
	}
	n.have[m] = true
	if p, ok := n.pending[m]; ok {
		p.timer.Stop()
		delete(n.pending, m)
	}
	n.s.recv[m][n.id] = n.s.Engine.Now()
	_ = injected
	if n.s.opts.GossipPeriod == 0 {
		n.announceNoWait(m)
	} else {
		n.announce[m] = n.s.opts.Fanout
	}
}

// announceNoWait gossips the ID to Fanout distinct random nodes at once.
func (n *node) announceNoWait(m int) {
	targets := n.randomTargets(n.s.opts.Fanout)
	for _, t := range targets {
		n.sendGossip(t, []int{m})
	}
}

// gossipTick is the periodic gossip in the Bimodal-like variant: one
// random target per period, carrying every ID with announcements left.
func (n *node) gossipTick() {
	if !n.s.alive[n.id] {
		return
	}
	n.s.Engine.After(n.s.opts.GossipPeriod, n.gossipTick)
	if len(n.announce) == 0 {
		return
	}
	ids := make([]int, 0, len(n.announce))
	for m, left := range n.announce {
		if left > 0 {
			ids = append(ids, m)
		}
	}
	if len(ids) == 0 {
		return
	}
	sortInts(ids)
	for _, m := range ids {
		if n.announce[m]--; n.announce[m] <= 0 {
			delete(n.announce, m)
		}
	}
	target := n.randomTargets(1)
	if len(target) == 0 {
		return
	}
	n.sendGossip(target[0], ids)
}

// randomTargets picks k distinct uniform nodes other than self. The choice
// is oblivious: dead nodes can be chosen (the sender cannot know).
func (n *node) randomTargets(k int) []int {
	total := len(n.s.nodes)
	if k > total-1 {
		k = total - 1
	}
	out := make([]int, 0, k)
	seen := map[int]bool{n.id: true}
	for len(out) < k {
		t := n.rng.Intn(total)
		if seen[t] {
			continue
		}
		seen[t] = true
		out = append(out, t)
	}
	return out
}

func (n *node) sendGossip(to int, ids []int) {
	bytes := 8 + 12*len(ids)
	n.s.send(n.id, to, bytes, func() {
		n.s.nodes[to].handleGossip(n.id, ids)
	})
}

func (n *node) handleGossip(from int, ids []int) {
	var want []int
	for _, m := range ids {
		if m < len(n.s.hears) {
			n.s.hears[m][n.id]++
		}
		if n.have[m] {
			continue
		}
		if p, ok := n.pending[m]; ok {
			p.holders = append(p.holders, from)
			continue
		}
		p := &pull{holders: []int{from}, next: 1}
		n.pending[m] = p
		want = append(want, m)
		p.timer = n.startRetry(m)
	}
	if len(want) > 0 {
		n.sendPull(from, want)
	}
}

func (n *node) sendPull(to int, ids []int) {
	bytes := 8 + 8*len(ids)
	n.s.send(n.id, to, bytes, func() {
		n.s.nodes[to].handlePull(n.id, ids)
	})
}

func (n *node) handlePull(from int, ids []int) {
	for _, m := range ids {
		if !n.have[m] {
			continue
		}
		m := m
		bytes := 16 + n.s.opts.PayloadSize
		n.s.send(n.id, from, bytes, func() {
			n.s.nodes[from].receivePayload(m, false)
		})
	}
}

func (n *node) startRetry(m int) sim.Timer {
	return n.s.Engine.After(n.s.opts.PullRetry, func() {
		p, ok := n.pending[m]
		if !ok || !n.s.alive[n.id] {
			return
		}
		if p.next >= len(p.holders)+3 {
			delete(n.pending, m) // give up; a later gossip may revive it
			return
		}
		holder := p.holders[p.next%len(p.holders)]
		p.next++
		n.sendPull(holder, []int{m})
		p.timer = n.startRetry(m)
	})
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
