package live

import (
	"testing"
	"time"

	"gocast/internal/churn"
	"gocast/internal/core"
)

// awaitRunningDegree waits until every running node has at least min
// neighbors.
func awaitRunningDegree(c *Cluster, min int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ok := true
		for i := 0; i < c.Size(); i++ {
			if n := c.Node(i); !n.Stopped() && n.Degree() < min {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
		time.Sleep(50 * time.Millisecond)
	}
	return false
}

func TestLiveRestartRejoinsWithBumpedIncarnation(t *testing.T) {
	c := NewCluster(ClusterOptions{Nodes: 10, Config: FastConfig(), Seed: 50})
	defer c.Close()
	if !c.AwaitDegree(2, 10*time.Second) {
		t.Fatalf("cluster never converged")
	}

	victim := 7
	c.Crash(victim)
	time.Sleep(2 * time.Second) // let neighbors detect and quarantine
	if !c.Restart(victim) {
		t.Fatalf("Restart(%d) refused", victim)
	}
	if got := c.Incarnation(victim); got != 1 {
		t.Fatalf("incarnation after restart = %d, want 1", got)
	}
	if got := c.Node(victim).Entry().Inc; got != 1 {
		t.Fatalf("restarted node's entry carries Inc %d, want 1", got)
	}
	if !awaitRunningDegree(c, 2, 15*time.Second) {
		t.Fatalf("restarted node never rebuilt its overlay (degree %d)", c.Node(victim).Degree())
	}

	// No running node may hold a link to the victim's dead past life.
	deadline := time.Now().Add(10 * time.Second)
	for {
		stale := 0
		for i := 0; i < c.Size(); i++ {
			n := c.Node(i)
			if n.Stopped() || i == victim {
				continue
			}
			for _, nb := range n.Neighbors() {
				if int(nb.ID) == victim && nb.Inc != 1 {
					stale++
				}
			}
		}
		if stale == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d links to the dead incarnation remain", stale)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The rejoin shows up in the churn counters of at least one peer.
	var rejoins int64
	for i := 0; i < c.Size(); i++ {
		if n := c.Node(i); !n.Stopped() {
			rejoins += n.ChurnStats()["rejoins_observed"]
		}
	}
	if rejoins == 0 {
		t.Errorf("no peer observed the rejoin")
	}

	// And the revived node participates in dissemination again.
	id := c.Node(0).Multicast([]byte("after-restart"))
	deadline = time.Now().Add(10 * time.Second)
	for !c.Node(victim).Seen(id) {
		if time.Now().After(deadline) {
			t.Fatalf("restarted node never received a post-restart multicast")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestLiveChurnSoak runs the wall-clock churn orchestrator against an
// in-memory cluster: joins, graceful leaves, crashes, and restarts while
// multicasts flow, then checks the group heals and no link settles on a
// dead incarnation. Guarded by -short; see README for the soak matrix.
func TestLiveChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("live churn soak skipped in -short mode")
	}
	const protected = 5
	c := NewCluster(ClusterOptions{Nodes: 16, Config: FastConfig(), Seed: 51})
	defer c.Close()
	if !c.AwaitDegree(2, 15*time.Second) {
		t.Fatalf("cluster never converged")
	}

	stop := make(chan struct{})
	go func() {
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		for k := 0; ; k++ {
			select {
			case <-stop:
				return
			case <-tick.C:
				c.Node(k % protected).Multicast([]byte("churn-payload"))
			}
		}
	}()

	plan := churn.Plan{
		Seed:          52,
		Duration:      40 * time.Second,
		JoinPerMin:    6,
		LeavePerMin:   6,
		CrashPerMin:   9,
		RestartPerMin: 9,
	}
	st := c.RunChurn(ChurnOptions{Plan: plan, Protected: protected, MinAlive: 10, MaxNodes: 24})
	close(stop)
	t.Logf("live churn: %+v; %d slots, %d running, %d restarts", st, c.Size(), c.AliveCount(), c.Restarts())
	// The event/skip pattern is deterministic for a given plan seed: the
	// schedule is fixed and eligibility depends only on prior churn ops.
	if st.Joins == 0 || st.Leaves == 0 || st.Crashes == 0 || st.Restarts == 0 {
		t.Fatalf("soak did not exercise all event kinds: %+v", st)
	}

	// Heal, then judge: overlay rebuilt and incarnation-clean.
	if !awaitRunningDegree(c, 2, 20*time.Second) {
		t.Fatalf("running nodes did not recover degree after churn")
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		stale := 0
		for i := 0; i < c.Size(); i++ {
			n := c.Node(i)
			if n.Stopped() {
				continue
			}
			for _, nb := range n.Neighbors() {
				j := int(nb.ID)
				if j < c.Size() && !c.Node(j).Stopped() && nb.Inc < c.Incarnation(j) {
					stale++
				}
			}
		}
		if stale == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d stale-incarnation links remain after churn", stale)
		}
		time.Sleep(200 * time.Millisecond)
	}

	// A fresh multicast reaches every running node.
	id := c.Node(0).Multicast([]byte("final"))
	deadline = time.Now().Add(15 * time.Second)
	for {
		missing := 0
		for i := 0; i < c.Size(); i++ {
			if n := c.Node(i); !n.Stopped() && !n.Seen(id) {
				missing++
			}
		}
		if missing == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d running nodes never received the final multicast", missing)
		}
		time.Sleep(100 * time.Millisecond)
	}

	var cs core.Counters
	for i := 0; i < c.Size(); i++ {
		if n := c.Node(i); !n.Stopped() {
			s := n.Stats()
			cs.StaleIncRejects += s.StaleIncRejects
			cs.ObitsRecorded += s.ObitsRecorded
			cs.RejoinsObserved += s.RejoinsObserved
		}
	}
	t.Logf("counters: stale-inc rejects=%d obits=%d rejoins=%d", cs.StaleIncRejects, cs.ObitsRecorded, cs.RejoinsObserved)
}
