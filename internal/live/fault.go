// Fault injection for live transports. A FaultController evaluates a
// declarative FaultPlan — phases of drops, delays, duplicates, reorders,
// partitions, and slow links over time — and FaultTransport applies the
// verdicts on the send side of any Transport (MemTransport or
// TCPTransport alike). All randomness comes from the plan's seed, so a
// chaos run is reproducible given the same message timing.
package live

import (
	"math/rand"
	"sync"
	"time"

	"gocast/internal/core"
	"gocast/internal/metrics"
)

// Fault counter names, visible in FaultController.Counters snapshots.
const (
	CtrFaultBlocked    = "fault_blocked"    // messages blocked by a partition or one-way rule
	CtrFaultDropped    = "fault_dropped"    // messages lost to a probabilistic drop
	CtrFaultDelayed    = "fault_delayed"    // messages delivered late (delay/jitter/slow link)
	CtrFaultDuplicated = "fault_duplicated" // messages delivered twice
	CtrFaultReordered  = "fault_reordered"  // messages held back to force reordering
	CtrFaultThrottled  = "fault_throttled"  // messages delayed by a bandwidth cap
	CtrFaultPassed     = "fault_passed"     // messages forwarded unharmed
)

// FaultPlan declares a schedule of network faults. Phase times are
// relative to the controller's creation.
type FaultPlan struct {
	// Seed drives all fault randomness (0 means 1).
	Seed int64
	// Phases are evaluated independently; every phase active at a
	// message's send time applies to it.
	Phases []FaultPhase
}

// Direction names an ordered endpoint pair for asymmetric rules. Empty
// strings are wildcards.
type Direction struct {
	From, To string
}

// SlowLink adds Extra delay to traffic matching From→To (empty strings
// are wildcards).
type SlowLink struct {
	From, To string
	Extra    time.Duration
}

// BandwidthCap throttles From→To traffic (empty strings are wildcards) to
// BytesPerSec, modeled as a serial link with a virtual transmission clock:
// each message occupies the link for WireSize/rate and is delivered when
// its transmission would complete. Burst grants that many bytes of
// queued transmission before delay accrues, so short spikes pass
// unthrottled. Each matching (rule, from, to) pair has its own clock.
type BandwidthCap struct {
	From, To    string
	BytesPerSec int64
	Burst       int64
}

// FaultPhase is one time window of faults, e.g. "from t=5s to t=15s,
// partition {A,B} | {C,D} and drop 10% of datagrams elsewhere".
type FaultPhase struct {
	// Start and End bound the phase (relative to controller creation).
	// End <= Start means the phase never expires.
	Start, End time.Duration

	// Drop is the probability a datagram is silently lost.
	Drop float64
	// DropReliable is the probability a reliable send is silently lost
	// (a blackhole: the sender is NOT told, mirroring a stalled TCP peer;
	// the protocol's keepalives and gossip pulls must compensate).
	DropReliable float64
	// Delay is a fixed extra delivery delay; Jitter adds a further
	// uniform [0, Jitter) on top. Applied to both channels.
	Delay  time.Duration
	Jitter time.Duration
	// Duplicate is the probability a message is delivered twice.
	Duplicate float64
	// Reorder is the probability a message is held back ReorderDelay
	// (default 20ms) so later sends overtake it.
	Reorder      float64
	ReorderDelay time.Duration

	// Partition lists address groups; traffic between addresses in
	// different groups is blocked both ways. Addresses in no group are
	// unaffected.
	Partition [][]string
	// OneWay blocks matching From→To traffic only — an asymmetric
	// partition.
	OneWay []Direction
	// Slow adds per-pair extra delay.
	Slow []SlowLink
	// Bandwidth caps per-pair throughput (see BandwidthCap).
	Bandwidth []BandwidthCap
}

// active reports whether the phase covers time t.
func (p *FaultPhase) active(t time.Duration) bool {
	return t >= p.Start && (p.End <= p.Start || t < p.End)
}

// blocks reports whether the phase forbids from→to traffic entirely.
func (p *FaultPhase) blocks(from, to string) bool {
	for _, d := range p.OneWay {
		if matchAddr(d.From, from) && matchAddr(d.To, to) {
			return true
		}
	}
	if len(p.Partition) > 0 {
		gf, gt := groupOf(p.Partition, from), groupOf(p.Partition, to)
		if gf >= 0 && gt >= 0 && gf != gt {
			return true
		}
	}
	return false
}

func matchAddr(pattern, addr string) bool { return pattern == "" || pattern == addr }

func groupOf(groups [][]string, addr string) int {
	for i, g := range groups {
		for _, a := range g {
			if a == addr {
				return i
			}
		}
	}
	return -1
}

// FaultController owns a fault plan's clock, RNG, and counters, shared by
// every FaultTransport wrapped through it so pairwise rules (partitions)
// are consistent across endpoints.
type FaultController struct {
	mu       sync.Mutex
	rng      *rand.Rand
	phases   []FaultPhase
	start    time.Time
	counters *metrics.AtomicCounter
	// bwFree tracks each capped link's virtual transmission clock: the
	// controller-relative time at which the link next frees up.
	bwFree map[bwKey]time.Duration
}

// bwKey identifies one bandwidth rule's state for one concrete endpoint
// pair (wildcard rules keep a clock per matched pair).
type bwKey struct {
	phase, rule int
	from, to    string
}

// NewFaultController starts a controller; phase times count from now.
func NewFaultController(plan FaultPlan) *FaultController {
	seed := plan.Seed
	if seed == 0 {
		seed = 1
	}
	return NewFaultControllerRand(plan, rand.New(rand.NewSource(seed)))
}

// NewFaultControllerRand starts a controller drawing all fault randomness
// from the caller's RNG instead of one derived from plan.Seed. The
// scenario engine uses this to thread a single scenario-owned seeded
// stream through the fault layer, so a live chaos run replays its exact
// fault schedule from one -seed. The controller owns rng after this call;
// do not share it with other consumers.
func NewFaultControllerRand(plan FaultPlan, rng *rand.Rand) *FaultController {
	return &FaultController{
		rng:      rng,
		phases:   append([]FaultPhase(nil), plan.Phases...),
		start:    time.Now(),
		counters: metrics.NewAtomicCounter(),
		bwFree:   make(map[bwKey]time.Duration),
	}
}

// Elapsed returns the controller's clock, for computing phase times of
// dynamically added phases.
func (c *FaultController) Elapsed() time.Duration { return time.Since(c.start) }

// AddPhase appends a phase at runtime (chaos mid-test).
func (c *FaultController) AddPhase(p FaultPhase) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.phases = append(c.phases, p)
}

// Clear removes all phases; traffic flows unharmed afterwards.
func (c *FaultController) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.phases = nil
	c.bwFree = make(map[bwKey]time.Duration)
}

// Counters returns a snapshot of the fault counters (see the CtrFault*
// constants).
func (c *FaultController) Counters() map[string]int64 { return c.counters.Snapshot() }

// Wrap returns a Transport applying this controller's faults on top of
// inner. Wrap every endpoint of a group through the same controller so
// partitions are symmetric.
func (c *FaultController) Wrap(inner Transport) *FaultTransport {
	return &FaultTransport{inner: inner, ctl: c}
}

// faultVerdict is the composed outcome of all active phases for one send.
type faultVerdict struct {
	drop  bool
	delay time.Duration
	dup   bool
}

// judge composes every active phase's effect on one from→to send, ignoring
// bandwidth caps (size 0 occupies no link time).
func (c *FaultController) judge(from, to string, reliable bool) faultVerdict {
	return c.judgeSized(from, to, reliable, 0)
}

// judgeSized composes every active phase's effect on one from→to send of
// the given wire size.
func (c *FaultController) judgeSized(from, to string, reliable bool, size int) faultVerdict {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Since(c.start)
	var v faultVerdict
	anyActive := false
	throttled := false
	for i := range c.phases {
		p := &c.phases[i]
		if !p.active(now) {
			continue
		}
		anyActive = true
		if p.blocks(from, to) {
			c.counters.Inc(CtrFaultBlocked, 1)
			v.drop = true
			continue
		}
		prob := p.Drop
		if reliable {
			prob = p.DropReliable
		}
		if prob > 0 && c.rng.Float64() < prob {
			c.counters.Inc(CtrFaultDropped, 1)
			v.drop = true
			continue
		}
		v.delay += p.Delay
		if p.Jitter > 0 {
			v.delay += time.Duration(c.rng.Int63n(int64(p.Jitter)))
		}
		for _, s := range p.Slow {
			if matchAddr(s.From, from) && matchAddr(s.To, to) {
				v.delay += s.Extra
			}
		}
		if size > 0 {
			for ri := range p.Bandwidth {
				bc := &p.Bandwidth[ri]
				if bc.BytesPerSec <= 0 || !matchAddr(bc.From, from) || !matchAddr(bc.To, to) {
					continue
				}
				key := bwKey{phase: i, rule: ri, from: from, to: to}
				free := c.bwFree[key]
				if free < now {
					free = now
				}
				free += time.Duration(int64(size) * int64(time.Second) / bc.BytesPerSec)
				c.bwFree[key] = free
				delay := free - now
				if bc.Burst > 0 {
					delay -= time.Duration(bc.Burst * int64(time.Second) / bc.BytesPerSec)
				}
				if delay > 0 {
					v.delay += delay
					throttled = true
				}
			}
		}
		if p.Reorder > 0 && c.rng.Float64() < p.Reorder {
			rd := p.ReorderDelay
			if rd <= 0 {
				rd = 20 * time.Millisecond
			}
			v.delay += rd
			c.counters.Inc(CtrFaultReordered, 1)
		}
		if p.Duplicate > 0 && c.rng.Float64() < p.Duplicate {
			v.dup = true
			c.counters.Inc(CtrFaultDuplicated, 1)
		}
	}
	if v.drop {
		return v
	}
	if throttled {
		c.counters.Inc(CtrFaultThrottled, 1)
	}
	if v.delay > 0 {
		c.counters.Inc(CtrFaultDelayed, 1)
	} else if anyActive {
		c.counters.Inc(CtrFaultPassed, 1)
	}
	return v
}

// FaultTransport applies a FaultController's verdicts to the send side of
// an inner Transport. Receiving, handlers, and Close pass straight
// through; because every endpoint of a test group is wrapped, send-side
// injection faults the whole fabric.
type FaultTransport struct {
	inner Transport
	ctl   *FaultController
}

var _ Transport = (*FaultTransport)(nil)

// Inner returns the wrapped transport (e.g. to reach MemTransport.SetFrom
// or TCPTransport.Stats).
func (f *FaultTransport) Inner() Transport { return f.inner }

// Addr returns the inner endpoint's address.
func (f *FaultTransport) Addr() string { return f.inner.Addr() }

// SetHandlers registers the inbound callbacks on the inner transport.
func (f *FaultTransport) SetHandlers(h Handler, fh FailureHandler) { f.inner.SetHandlers(h, fh) }

// Close closes the inner transport.
func (f *FaultTransport) Close() error { return f.inner.Close() }

// Stats merges the inner transport's counters (if it exposes any) with
// the controller's fault counters.
func (f *FaultTransport) Stats() map[string]int64 {
	out := f.ctl.Counters()
	if s, ok := f.inner.(interface{ Stats() map[string]int64 }); ok {
		for k, v := range s.Stats() {
			out[k] = v
		}
	}
	return out
}

// Send delivers m reliably unless an active fault phase blocks or drops
// it. Blocked reliable sends are silent blackholes by design: like a
// stalled TCP peer, detection is the protocol's job (keepalive timeouts),
// and recovery is gossip's (pulls after heal).
func (f *FaultTransport) Send(addr string, to core.NodeID, m core.Message) {
	f.dispatch(addr, to, m, true)
}

// SendDatagram delivers m best-effort through the fault model.
func (f *FaultTransport) SendDatagram(addr string, to core.NodeID, m core.Message) {
	f.dispatch(addr, to, m, false)
}

func (f *FaultTransport) dispatch(addr string, to core.NodeID, m core.Message, reliable bool) {
	v := f.ctl.judgeSized(f.inner.Addr(), addr, reliable, m.WireSize())
	if v.drop {
		return
	}
	send := func() {
		if reliable {
			f.inner.Send(addr, to, m)
		} else {
			f.inner.SendDatagram(addr, to, m)
		}
	}
	if v.delay <= 0 {
		send()
	} else {
		time.AfterFunc(v.delay, send)
	}
	if v.dup {
		time.AfterFunc(v.delay+time.Millisecond, send)
	}
}
