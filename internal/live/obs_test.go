package live

import (
	"strings"
	"testing"
	"time"

	"gocast/internal/obs/promtest"
	"gocast/internal/trace"
)

// TestHealthFlipsUnhealthyOnPartition pins the /healthz acceptance
// criterion: a node that loses every overlay neighbor (here: its only peer
// is killed) reports unhealthy once failure detection notices.
func TestHealthFlipsUnhealthyOnPartition(t *testing.T) {
	c := NewCluster(ClusterOptions{Nodes: 2, Config: FastConfig(), Seed: 11})
	defer c.Close()
	if !c.AwaitDegree(1, 10*time.Second) {
		t.Fatalf("pair never linked")
	}
	if err := c.Node(0).Health(); err != nil {
		t.Fatalf("linked node unhealthy: %v", err)
	}

	c.Node(1).Kill()
	deadline := time.Now().Add(15 * time.Second)
	for {
		err := c.Node(0).Health()
		if err != nil {
			if !strings.Contains(err.Error(), "disconnected") {
				t.Fatalf("unexpected health error: %v", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivor never turned unhealthy after losing its only neighbor")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// A stopped node is unhealthy by definition.
	if err := c.Node(1).Health(); err == nil {
		t.Fatalf("killed node reports healthy")
	}
}

// TestObsMetricsAndTraceWiring drives one multicast through a pair and
// checks that the registry histograms and the trace ring observed it.
func TestObsMetricsAndTraceWiring(t *testing.T) {
	c := NewCluster(ClusterOptions{Nodes: 2, Config: FastConfig(), Seed: 12})
	defer c.Close()
	if !c.AwaitDegree(1, 10*time.Second) {
		t.Fatalf("pair never linked")
	}
	// Wait for the first heartbeat wave to attach node 1 to the tree —
	// and for node 0 to process the TreeParent notice and count node 1
	// as a child — so the multicast below travels as a tree push (not a
	// gossip pull).
	deadline := time.Now().Add(10 * time.Second)
	for c.Node(1).Parent() != 0 || len(c.Node(0).TreeNeighbors()) == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("node 1 never attached to the tree")
		}
		time.Sleep(20 * time.Millisecond)
	}
	id := c.Node(0).Multicast([]byte("trace me"))
	deadline = time.Now().Add(5 * time.Second)
	for !c.Node(1).Seen(id) {
		if time.Now().After(deadline) {
			t.Fatalf("multicast never delivered")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The receiver got the payload over a tree link, so its tree-forward
	// latency histogram must have at least one observation.
	var forwardCount, gossipCount int64
	for _, m := range c.Node(1).Registry().Gather() {
		switch m.Name {
		case "gocast_core_tree_forward_latency_seconds":
			forwardCount = m.Hist.Count
		case "gocast_core_gossip_round_duration_seconds":
			gossipCount = m.Hist.Count
		}
	}
	if forwardCount < 1 {
		t.Errorf("tree-forward latency histogram empty on the receiver")
	}
	if gossipCount < 1 {
		t.Errorf("gossip round duration histogram empty")
	}

	// Both ends traced the message: a send on the source, a delivery on
	// both (the source delivers locally too).
	tb := c.Node(1).Trace()
	if tb == nil {
		t.Fatalf("trace ring disabled by default")
	}
	delivers := tb.Query(trace.Filter{Kinds: []trace.Kind{trace.KindDeliver}, Node: -1})
	if len(delivers) == 0 {
		t.Errorf("receiver trace has no deliver events: %s", tb.Summary())
	}
	ups := tb.Query(trace.Filter{Kinds: []trace.Kind{trace.KindLinkUp}, Node: -1})
	if len(ups) == 0 {
		t.Errorf("receiver trace has no link-up events: %s", tb.Summary())
	}
}

// TestTraceMetricsConformance drives a traced multicast through a pair
// and strict-parses the receiver's Prometheus exposition: every
// gocast_trace_* family (and the FEC assembly gauge) must be present,
// well-typed, and reflect the traced delivery.
func TestTraceMetricsConformance(t *testing.T) {
	cfg := FastConfig()
	cfg.TraceSampleEvery = 1
	c := NewCluster(ClusterOptions{Nodes: 2, Config: cfg, Seed: 14})
	defer c.Close()
	if !c.AwaitDegree(1, 10*time.Second) {
		t.Fatalf("pair never linked")
	}
	id := c.Node(0).Multicast([]byte("trace metrics"))
	deadline := time.Now().Add(5 * time.Second)
	for !c.Node(1).Seen(id) {
		if time.Now().After(deadline) {
			t.Fatalf("multicast never delivered")
		}
		time.Sleep(20 * time.Millisecond)
	}

	var sb strings.Builder
	if err := c.Node(1).Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	families := promtest.Parse(t, text)
	for name, wantType := range map[string]string{
		"gocast_trace_spans_recorded_total": "counter",
		"gocast_trace_spans_dropped_total":  "counter",
		"gocast_trace_delivery_age_seconds": "histogram",
		"gocast_fec_assembling":             "gauge",
	} {
		f, ok := families[name]
		if !ok {
			t.Fatalf("family %s missing from exposition:\n%s", name, text)
		}
		if !f.Help || f.Type != wantType {
			t.Errorf("family %s: help=%v type=%q, want help and %q", name, f.Help, f.Type, wantType)
		}
		if !promtest.ValidName(name) {
			t.Errorf("family name %q invalid", name)
		}
	}
	if got := families["gocast_trace_spans_recorded_total"].Samples["gocast_trace_spans_recorded_total"]; got < 1 {
		t.Errorf("spans_recorded_total = %v after a traced delivery, want >= 1", got)
	}
	if got := families["gocast_trace_delivery_age_seconds"].Samples["gocast_trace_delivery_age_seconds_count"]; got < 1 {
		t.Errorf("delivery age histogram count = %v, want >= 1", got)
	}
	if got := families["gocast_trace_spans_dropped_total"].Samples["gocast_trace_spans_dropped_total"]; got != 0 {
		t.Errorf("spans_dropped_total = %v, want 0", got)
	}

	// The receiver's span buffer holds the delivery for /spans scraping.
	found := false
	for _, s := range c.Node(1).Spans() {
		if s.Src == int32(id.Source) && s.Seq == id.Seq && s.Kind.DeliveryKind() {
			found = true
		}
	}
	if !found {
		t.Errorf("receiver span buffer has no delivery span for %v: %+v", id, c.Node(1).Spans())
	}
}

// TestStatusSnapshotSurvivesStop checks /statusz's data source before and
// after a stop.
func TestStatusSnapshotSurvivesStop(t *testing.T) {
	c := NewCluster(ClusterOptions{Nodes: 2, Config: FastConfig(), Seed: 13})
	defer c.Close()
	if !c.AwaitDegree(1, 10*time.Second) {
		t.Fatalf("pair never linked")
	}
	st := c.Node(1).Status()
	if st.ID != 1 || st.Degree < 1 || st.Addr == "" {
		t.Fatalf("status = %+v", st)
	}
	if st.Stopped {
		t.Fatalf("running node reports stopped")
	}
	c.Node(1).Close()
	st = c.Node(1).Status()
	if !st.Stopped {
		t.Fatalf("stopped node's status lacks Stopped")
	}
	if st.ID != 1 {
		t.Fatalf("post-stop status lost identity: %+v", st)
	}
}

// TestTraceSampling checks the 1-in-N trace knob: with a large sampling
// divisor only a fraction of events lands in the ring.
func TestTraceSampling(t *testing.T) {
	net := NewMemNetwork(time.Millisecond, 7)
	n := NewNode(NodeOptions{ID: 1, Config: FastConfig(), Transport: net.Endpoint("s1"), Seed: 1, TraceSample: 1000})
	defer n.Close()
	n.BecomeRoot()
	for i := 0; i < 50; i++ {
		n.Multicast([]byte("x"))
	}
	// 50 local deliveries at 1-in-1000 sampling: at most one event (the
	// first) may be recorded.
	if got := n.Trace().Len(); got > 1 {
		t.Fatalf("trace recorded %d events at 1-in-1000 sampling, want <= 1", got)
	}

	// Negative capacity disables the ring entirely.
	n2 := NewNode(NodeOptions{ID: 2, Config: FastConfig(), Transport: net.Endpoint("s2"), Seed: 2, TraceCapacity: -1})
	defer n2.Close()
	if n2.Trace() != nil {
		t.Fatalf("TraceCapacity<0 still allocated a ring")
	}
}
