package live

import (
	"sync"
	"testing"
	"time"

	"gocast/internal/core"
)

func TestMemClusterConvergesAndDelivers(t *testing.T) {
	var mu sync.Mutex
	got := map[int][]byte{}
	c := NewCluster(ClusterOptions{
		Nodes:  12,
		Config: FastConfig(),
		Seed:   1,
		OnDeliver: func(node int, _ core.MessageID, payload []byte) {
			mu.Lock()
			got[node] = payload
			mu.Unlock()
		},
	})
	defer c.Close()
	if !c.AwaitDegree(2, 15*time.Second) {
		t.Fatalf("cluster did not wire itself up")
	}
	c.Node(3).Multicast([]byte("live"))
	deadline := time.Now().Add(15 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 12 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/12 nodes delivered", n)
		}
		time.Sleep(50 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for node, payload := range got {
		if string(payload) != "live" {
			t.Fatalf("node %d got %q", node, payload)
		}
	}
}

func TestMemClusterSurvivesKills(t *testing.T) {
	var mu sync.Mutex
	delivered := map[int]int{}
	c := NewCluster(ClusterOptions{
		Nodes:  12,
		Config: FastConfig(),
		Seed:   2,
		OnDeliver: func(node int, _ core.MessageID, _ []byte) {
			mu.Lock()
			delivered[node]++
			mu.Unlock()
		},
	})
	defer c.Close()
	if !c.AwaitDegree(2, 15*time.Second) {
		t.Fatalf("cluster did not wire itself up")
	}
	// Kill two non-root nodes abruptly (no goodbye).
	c.Node(4).Kill()
	c.Node(7).Kill()
	time.Sleep(2 * time.Second) // let failure detection run
	c.Node(1).Multicast([]byte("after-failure"))
	deadline := time.Now().Add(15 * time.Second)
	for {
		mu.Lock()
		n := len(delivered)
		mu.Unlock()
		if n >= 10 {
			return // all 10 survivors delivered
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/10 survivors delivered", n)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func TestMemNetworkPartitionTriggersFailure(t *testing.T) {
	net := NewMemNetwork(time.Millisecond, 1)
	a := net.Endpoint("a")
	a.SetFrom(1)
	b := net.Endpoint("b")
	b.SetFrom(2)
	failed := make(chan core.NodeID, 1)
	a.SetHandlers(func(core.NodeID, core.Message) {}, func(peer core.NodeID) {
		select {
		case failed <- peer:
		default:
		}
	})
	b.SetHandlers(func(core.NodeID, core.Message) {}, nil)
	b.Close()
	a.Send("b", 2, &core.TreeParent{})
	select {
	case peer := <-failed:
		if peer != 2 {
			t.Fatalf("failure reported for %d, want 2", peer)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("no failure notification for a closed endpoint")
	}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	ta, err := NewTCPTransport(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	tb, err := NewTCPTransport(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	gotTCP := make(chan core.Message, 1)
	gotUDP := make(chan core.Message, 1)
	tb.SetHandlers(func(from core.NodeID, m core.Message) {
		if from != 1 {
			t.Errorf("from = %d, want 1", from)
		}
		switch m.(type) {
		case *core.Multicast:
			gotTCP <- m
		case *core.Ping:
			gotUDP <- m
		}
	}, nil)
	ta.SetHandlers(func(core.NodeID, core.Message) {}, nil)

	ta.Send(tb.Addr(), 2, &core.Multicast{ID: core.MessageID{Source: 1, Seq: 5}, Payload: []byte("x")})
	select {
	case m := <-gotTCP:
		if string(m.(*core.Multicast).Payload) != "x" {
			t.Fatalf("payload corrupted")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("TCP frame not delivered")
	}

	ta.SendDatagram(tb.Addr(), 2, &core.Ping{From: core.Entry{ID: 1, Addr: ta.Addr()}, Nonce: 9})
	select {
	case m := <-gotUDP:
		if m.(*core.Ping).Nonce != 9 {
			t.Fatalf("nonce corrupted")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("UDP datagram not delivered")
	}
}

func TestTCPTransportFailureNotification(t *testing.T) {
	ta, err := NewTCPTransport(1, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ta.Close()
	failed := make(chan core.NodeID, 4)
	ta.SetHandlers(func(core.NodeID, core.Message) {}, func(peer core.NodeID) {
		failed <- peer
	})
	// Dial an address where nothing listens.
	ta.Send("127.0.0.1:1", 42, &core.TreeParent{})
	select {
	case peer := <-failed:
		if peer != 42 {
			t.Fatalf("failure for %d, want 42", peer)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("no failure notification for refused connection")
	}
}

func TestTCPClusterDelivers(t *testing.T) {
	const n = 6
	cfg := FastConfig()
	var mu sync.Mutex
	got := map[core.NodeID]bool{}
	nodes := make([]*Node, 0, n)
	for i := 0; i < n; i++ {
		tr, err := NewTCPTransport(core.NodeID(i), "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		id := core.NodeID(i)
		node := NewNode(NodeOptions{
			ID:        id,
			Config:    cfg,
			Transport: tr,
			Seed:      int64(100 + i),
			OnDeliver: func(core.MessageID, []byte, time.Duration) {
				mu.Lock()
				got[id] = true
				mu.Unlock()
			},
		})
		nodes = append(nodes, node)
	}
	defer func() {
		for _, node := range nodes {
			node.Close()
		}
	}()
	landmarks := []core.Entry{nodes[0].Entry(), nodes[1].Entry()}
	for _, node := range nodes {
		node.SetLandmarks(landmarks)
	}
	nodes[0].BecomeRoot()
	for i := 1; i < n; i++ {
		nodes[i].Join(nodes[0].Entry())
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		ok := true
		for _, node := range nodes {
			if node.Degree() < 2 {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("TCP cluster did not converge")
		}
		time.Sleep(100 * time.Millisecond)
	}
	nodes[2].Multicast([]byte("tcp"))
	for {
		mu.Lock()
		cnt := len(got)
		mu.Unlock()
		if cnt == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered to %d/%d over TCP", cnt, n)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func TestNodeCloseIsIdempotentAndGraceful(t *testing.T) {
	c := NewCluster(ClusterOptions{Nodes: 4, Config: FastConfig(), Seed: 3})
	if !c.AwaitDegree(1, 10*time.Second) {
		t.Fatalf("cluster did not wire up")
	}
	n := c.Node(2)
	n.Close()
	n.Close() // idempotent
	// The survivors should drop the departed node promptly (Leave sends
	// Drop messages).
	deadline := time.Now().Add(10 * time.Second)
	for {
		gone := true
		for _, i := range []int{0, 1, 3} {
			for _, nb := range c.Node(i).Neighbors() {
				if nb.ID == 2 {
					gone = false
				}
			}
		}
		if gone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("departed node still someone's neighbor")
		}
		time.Sleep(50 * time.Millisecond)
	}
	c.Close()
}

func TestMulticastFromAPIIsThreadSafe(t *testing.T) {
	c := NewCluster(ClusterOptions{Nodes: 4, Config: FastConfig(), Seed: 4})
	defer c.Close()
	var wg sync.WaitGroup
	ids := make(chan core.MessageID, 40)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 10; k++ {
				ids <- c.Node(g).Multicast(nil)
			}
		}(g)
	}
	wg.Wait()
	close(ids)
	seen := map[core.MessageID]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate message ID %v", id)
		}
		seen[id] = true
	}
	if len(seen) != 40 {
		t.Fatalf("got %d IDs, want 40", len(seen))
	}
}
