package live

import (
	"errors"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"gocast/internal/core"
)

// Overload protection for the live runtime. Three cooperating pieces:
//
//   - A prioritized mailbox replaces the node's single bounded channel.
//     Every unit of event-loop work is admitted under a core.Class:
//     Critical work (tree forwards, membership, timers, API calls) gets a
//     dedicated lane with blocking admission — the natural backpressure
//     path for TCP readLoops and local callers — while Repair and
//     Background work is admitted non-blocking and shed when its lane
//     fills, Background first.
//
//   - A degradation governor samples queue occupancy (mailbox lanes plus
//     the transport's per-peer outbound rings, when the transport reports
//     them), shed activity, and the optional memory budget, and drives the
//     node through Healthy -> Degraded -> Shedding with hysteresis on the
//     way back down. Degraded stretches the core's periodic gossip/sync
//     intervals (core.SetOverload); Shedding additionally rejects new
//     local publishes with ErrOverloaded.
//
//   - Panic containment: every closure the event loop runs is wrapped in
//     a recover so one bad callback (a panicking OnDeliver, a protocol
//     bug) is counted and surfaced through Health() instead of killing
//     the whole process.

// ErrOverloaded reports a publish rejected because the node is in the
// Shedding state: its queues (or memory budget) are saturated and admitting
// new local traffic would force it to drop higher-value forwarding work.
// Callers should back off and retry; the node recovers automatically once
// pressure drains.
var ErrOverloaded = errors.New("live: node overloaded, publish rejected")

// OverloadOptions tunes the live node's overload protection. The zero value
// selects the defaults documented per field.
type OverloadOptions struct {
	// MailboxCritical caps the Critical mailbox lane (default 1024).
	// Admission to this lane blocks the poster while it is full — that is
	// the hard budget: Critical work is never shed, it backpressures.
	MailboxCritical int
	// MailboxRepair caps the Repair lane (default 512); overflow is shed.
	MailboxRepair int
	// MailboxBackground caps the Background lane (default 256); overflow
	// is shed first.
	MailboxBackground int
	// MemBudget is an approximate byte budget covering the message store
	// plus queued outbound frames. While usage exceeds 75% of the budget
	// the governor holds the node at least Degraded; at or above 100% it
	// enters Shedding. 0 disables budget pressure.
	MemBudget int64
	// ShedPolicy selects the admission policy: "priority" (the default)
	// classes and sheds as described above; "off" disables classing — all
	// work is admitted through the blocking Critical lane, reproducing the
	// pre-overload-protection behavior.
	ShedPolicy string
	// DegradeAt is the worst-lane occupancy fraction at which the node
	// leaves Healthy (default 0.5). Recovery requires occupancy below
	// DegradeAt/2 for HysteresisTicks consecutive evaluations.
	DegradeAt float64
	// ShedAt is the critical-lane occupancy fraction at which the node
	// enters Shedding (default 0.85). Leaving Shedding requires critical
	// occupancy below ShedAt/2 for HysteresisTicks consecutive
	// evaluations.
	ShedAt float64
	// EvalInterval is the governor's sampling period (default 100ms). The
	// transport may additionally kick an immediate evaluation when a
	// queue crosses its pressure watermark.
	EvalInterval time.Duration
	// HysteresisTicks is how many consecutive below-threshold evaluations
	// a downward transition requires (default 3). One "hysteresis window"
	// is HysteresisTicks * EvalInterval.
	HysteresisTicks int
	// Logf receives overload log lines (state transitions, rate-limited
	// shed reports, recovered panics). Defaults to log.Printf.
	Logf func(format string, args ...any)
}

const (
	defMailboxCritical   = 1024
	defMailboxRepair     = 512
	defMailboxBackground = 256
	defDegradeAt         = 0.5
	defShedAt            = 0.85
	defEvalInterval      = 100 * time.Millisecond
	defHysteresisTicks   = 3

	// shedLogInterval rate-limits the "mailbox shedding" log line.
	shedLogInterval = 5 * time.Second
)

func (o OverloadOptions) withDefaults() OverloadOptions {
	if o.MailboxCritical <= 0 {
		o.MailboxCritical = defMailboxCritical
	}
	if o.MailboxRepair <= 0 {
		o.MailboxRepair = defMailboxRepair
	}
	if o.MailboxBackground <= 0 {
		o.MailboxBackground = defMailboxBackground
	}
	if o.ShedPolicy != "off" {
		o.ShedPolicy = "priority"
	}
	if o.DegradeAt <= 0 || o.DegradeAt > 1 {
		o.DegradeAt = defDegradeAt
	}
	if o.ShedAt <= 0 || o.ShedAt > 1 {
		o.ShedAt = defShedAt
	}
	if o.EvalInterval <= 0 {
		o.EvalInterval = defEvalInterval
	}
	if o.HysteresisTicks <= 0 {
		o.HysteresisTicks = defHysteresisTicks
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// QueuePressure reports a transport's outbound queue occupancy to the
// overload governor. Fractions are relative to the per-class soft caps;
// Critical may exceed 1.0 while a ring grows toward its hard cap.
type QueuePressure struct {
	// Critical is the worst per-peer Critical-ring occupancy.
	Critical float64
	// Worst is the worst occupancy across all classes and peers.
	Worst float64
	// QueuedBytes is the total frame bytes queued across all peers.
	QueuedBytes int64
}

// queuePressurer is implemented by transports that expose outbound queue
// occupancy (TCPTransport does). The governor polls it each evaluation.
type queuePressurer interface{ QueuePressure() QueuePressure }

// pressureNotifier is implemented by transports that can kick the governor
// when a queue crosses its watermark, so Shedding engages without waiting
// for the next periodic evaluation.
type pressureNotifier interface{ SetPressureHandler(func()) }

// admit is the outcome of a mailbox push.
type admit int8

const (
	admitOK admit = iota
	admitShed
	admitStopped
)

// funcRing is a circular buffer of closures that grows lazily up to a fixed
// capacity.
type funcRing struct {
	buf  []func()
	head int
	n    int
	cap  int
}

func (r *funcRing) full() bool { return r.n >= r.cap }

func (r *funcRing) push(fn func()) bool {
	if r.n >= r.cap {
		return false
	}
	if r.n == len(r.buf) {
		grown := len(r.buf) * 2
		if grown < 16 {
			grown = 16
		}
		if grown > r.cap {
			grown = r.cap
		}
		nb := make([]func(), grown)
		for i := 0; i < r.n; i++ {
			nb[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf = nb
		r.head = 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = fn
	r.n++
	return true
}

func (r *funcRing) pop() (func(), bool) {
	if r.n == 0 {
		return nil, false
	}
	fn := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return fn, true
}

// mailbox is the node's prioritized event queue: one lane per core.Class,
// popped Critical first. Critical admission may block (backpressure);
// Repair and Background admission never blocks and sheds on overflow.
type mailbox struct {
	mu       sync.Mutex
	space    sync.Cond // signaled when the Critical lane frees a slot or on stop
	rings    [core.NumClasses]funcRing
	priority bool // false = ShedPolicy "off": everything through Critical
	stopped  bool
	shed     [core.NumClasses]int64

	// wake carries at most one token; the loop drains all lanes per token.
	wake chan struct{}
}

func newMailbox(caps [core.NumClasses]int, priority bool) *mailbox {
	mb := &mailbox{priority: priority, wake: make(chan struct{}, 1)}
	mb.space.L = &mb.mu
	for c := range mb.rings {
		mb.rings[c].cap = caps[c]
	}
	return mb
}

// push admits fn under class cls. When wait is true and cls is Critical the
// caller blocks until a slot frees (or the mailbox stops); otherwise a full
// lane sheds immediately.
func (mb *mailbox) push(cls core.Class, fn func(), wait bool) admit {
	if !mb.priority {
		cls = core.ClassCritical
	}
	mb.mu.Lock()
	r := &mb.rings[cls]
	if wait && cls == core.ClassCritical {
		for r.full() && !mb.stopped {
			mb.space.Wait()
		}
	}
	if mb.stopped {
		mb.mu.Unlock()
		return admitStopped
	}
	if !r.push(fn) {
		mb.shed[cls]++
		mb.mu.Unlock()
		return admitShed
	}
	mb.mu.Unlock()
	select {
	case mb.wake <- struct{}{}:
	default:
	}
	return admitOK
}

// pop dequeues the highest-priority pending closure.
func (mb *mailbox) pop() (func(), bool) {
	mb.mu.Lock()
	for c := range mb.rings {
		if fn, ok := mb.rings[c].pop(); ok {
			if core.Class(c) == core.ClassCritical {
				mb.space.Signal()
			}
			mb.mu.Unlock()
			return fn, true
		}
	}
	mb.mu.Unlock()
	return nil, false
}

// stop marks the mailbox closed and releases every poster blocked on the
// Critical lane. Queued work remains poppable for the stop drain.
func (mb *mailbox) stop() {
	mb.mu.Lock()
	mb.stopped = true
	mb.space.Broadcast()
	mb.mu.Unlock()
	select {
	case mb.wake <- struct{}{}:
	default:
	}
}

// pressure returns the Critical-lane occupancy fraction and the worst
// occupancy across all lanes.
func (mb *mailbox) pressure() (crit, worst float64) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for c := range mb.rings {
		f := float64(mb.rings[c].n) / float64(mb.rings[c].cap)
		if core.Class(c) == core.ClassCritical {
			crit = f
		}
		if f > worst {
			worst = f
		}
	}
	return crit, worst
}

// shedTotal returns the cumulative shed count across all lanes.
func (mb *mailbox) shedTotal() int64 {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return mb.shed[0] + mb.shed[1] + mb.shed[2]
}

// depths snapshots the per-lane queue depths (tests, status surfacing).
func (mb *mailbox) depths() [core.NumClasses]int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	var out [core.NumClasses]int
	for c := range mb.rings {
		out[c] = mb.rings[c].n
	}
	return out
}

// governor is the node-level degradation state machine. The mutable state
// (cur, below, lastShed) is touched only on the event loop; level mirrors
// cur atomically for lock-free reads from Publish and accessors.
type governor struct {
	opts OverloadOptions

	level atomicLevel

	// Event-loop-only state.
	cur      core.OverloadLevel
	below    int
	lastShed int64
}

// atomicLevel is a tiny typed wrapper so readers cannot forget the cast.
type atomicLevel struct{ v atomic.Int32 }

func (a *atomicLevel) store(l core.OverloadLevel) { a.v.Store(int32(l)) }
func (a *atomicLevel) load() core.OverloadLevel   { return core.OverloadLevel(a.v.Load()) }

// step advances the state machine one evaluation given the observed
// pressure signals and returns the (possibly unchanged) level. Upward
// transitions are immediate; downward transitions require
// HysteresisTicks consecutive below-threshold evaluations.
//
//	crit      worst Critical occupancy (mailbox lane or transport ring)
//	worst     worst occupancy across every lane/ring/class
//	memFrac   memory use as a fraction of MemBudget (0 when unbudgeted)
//	shedDelta units shed since the previous evaluation
func (g *governor) step(crit, worst, memFrac float64, shedDelta int64) core.OverloadLevel {
	degradeIn := worst >= g.opts.DegradeAt || shedDelta > 0 || memFrac >= 0.75
	shedIn := crit >= g.opts.ShedAt || memFrac >= 1
	degradeOut := worst < g.opts.DegradeAt/2 && shedDelta == 0 && memFrac < 0.75
	shedOut := crit < g.opts.ShedAt/2 && memFrac < 1

	next := g.cur
	switch g.cur {
	case core.OverloadHealthy:
		if shedIn {
			next = core.OverloadShedding
		} else if degradeIn {
			next = core.OverloadDegraded
		}
	case core.OverloadDegraded:
		if shedIn {
			next = core.OverloadShedding
			g.below = 0
		} else if degradeOut {
			if g.below++; g.below >= g.opts.HysteresisTicks {
				next = core.OverloadHealthy
			}
		} else {
			g.below = 0
		}
	case core.OverloadShedding:
		if shedOut {
			if g.below++; g.below >= g.opts.HysteresisTicks {
				if degradeOut {
					next = core.OverloadHealthy
				} else {
					next = core.OverloadDegraded
				}
			}
		} else {
			g.below = 0
		}
	}
	if next != g.cur {
		g.below = 0
		g.cur = next
		g.level.store(next)
	}
	return next
}
