package live

import (
	"sync/atomic"
	"testing"
	"time"

	"gocast/internal/core"
)

// --- judge unit tests: deterministic, no sleeps -------------------------

func TestFaultPhasePartitionBlocksBothWays(t *testing.T) {
	ctl := NewFaultController(FaultPlan{Seed: 7, Phases: []FaultPhase{{
		Partition: [][]string{{"a", "b"}, {"c"}},
	}}})
	if !ctl.judge("a", "c", true).drop {
		t.Errorf("a->c not blocked across the partition")
	}
	if !ctl.judge("c", "a", false).drop {
		t.Errorf("c->a not blocked across the partition")
	}
	if ctl.judge("a", "b", true).drop {
		t.Errorf("same-group traffic blocked")
	}
	if ctl.judge("a", "zzz", true).drop {
		t.Errorf("traffic to an unlisted address blocked")
	}
	if got := ctl.Counters()[CtrFaultBlocked]; got != 2 {
		t.Errorf("fault_blocked = %d, want 2", got)
	}
}

func TestFaultPhaseOneWayIsAsymmetric(t *testing.T) {
	ctl := NewFaultController(FaultPlan{Phases: []FaultPhase{{
		OneWay: []Direction{{From: "a", To: "b"}},
	}}})
	if !ctl.judge("a", "b", true).drop {
		t.Errorf("a->b not blocked by one-way rule")
	}
	if ctl.judge("b", "a", true).drop {
		t.Errorf("reverse direction blocked by one-way rule")
	}
	// Wildcard: empty From matches any sender.
	ctl = NewFaultController(FaultPlan{Phases: []FaultPhase{{
		OneWay: []Direction{{To: "b"}},
	}}})
	if !ctl.judge("anyone", "b", false).drop {
		t.Errorf("wildcard one-way rule did not match")
	}
}

func TestFaultPhaseSlowLinkAddsDelay(t *testing.T) {
	ctl := NewFaultController(FaultPlan{Phases: []FaultPhase{{
		Slow: []SlowLink{{From: "a", Extra: 50 * time.Millisecond}},
	}}})
	if d := ctl.judge("a", "b", true).delay; d != 50*time.Millisecond {
		t.Errorf("a->b delay = %v, want 50ms", d)
	}
	if d := ctl.judge("b", "a", true).delay; d != 0 {
		t.Errorf("b->a delay = %v, want 0", d)
	}
}

func TestFaultPhaseWindowing(t *testing.T) {
	ctl := NewFaultController(FaultPlan{Phases: []FaultPhase{{
		Start: time.Hour, End: 2 * time.Hour, Drop: 1,
	}}})
	if ctl.judge("a", "b", false).drop {
		t.Errorf("phase applied before its Start")
	}
	// End <= Start means the phase never expires.
	ctl = NewFaultController(FaultPlan{Phases: []FaultPhase{{Drop: 1}}})
	if !ctl.judge("a", "b", false).drop {
		t.Errorf("open-ended phase not applied")
	}
	if ctl.judge("a", "b", true).drop {
		t.Errorf("Drop applied to a reliable send (DropReliable is separate)")
	}
}

func TestFaultPhaseDropReliableSeparateFromDrop(t *testing.T) {
	ctl := NewFaultController(FaultPlan{Phases: []FaultPhase{{DropReliable: 1}}})
	if !ctl.judge("a", "b", true).drop {
		t.Errorf("DropReliable=1 did not drop a reliable send")
	}
	if ctl.judge("a", "b", false).drop {
		t.Errorf("DropReliable applied to a datagram")
	}
}

// --- shared conformance suite over both transports ----------------------

// The acceptance criterion: the fault layer behaves identically whether it
// wraps MemTransport or TCPTransport. One scenario, two factories.
func testFaultTransportConformance(t *testing.T, mk func(t *testing.T, ctl *FaultController) (a, b Transport, cleanup func())) {
	t.Helper()
	ctl := NewFaultController(FaultPlan{Seed: 42})
	a, b, cleanup := mk(t, ctl)
	defer cleanup()

	var rel, dg atomic.Int64
	b.SetHandlers(func(from core.NodeID, m core.Message) {
		switch m.(type) {
		case *core.TreeParent:
			rel.Add(1)
		case *core.Ping:
			dg.Add(1)
		}
	}, nil)
	a.SetHandlers(func(core.NodeID, core.Message) {}, nil)

	relMsg := &core.TreeParent{On: true}
	dgMsg := &core.Ping{From: core.Entry{ID: 1, Addr: a.Addr()}, Nonce: 1}

	// 1. Clean fabric: both channels deliver.
	a.Send(b.Addr(), 2, relMsg)
	waitCount(t, &rel, 1, "reliable send through a clean fault layer")
	sendUntilCount(t, &dg, 1, func() { a.SendDatagram(b.Addr(), 2, dgMsg) })

	// 2. Full datagram loss: datagrams stop, reliable unaffected.
	ctl.AddPhase(FaultPhase{Drop: 1})
	dgBase := dg.Load()
	for i := 0; i < 10; i++ {
		a.SendDatagram(b.Addr(), 2, dgMsg)
	}
	a.Send(b.Addr(), 2, relMsg)
	waitCount(t, &rel, 2, "reliable send during datagram loss")
	time.Sleep(150 * time.Millisecond)
	if got := dg.Load(); got != dgBase {
		t.Errorf("datagrams leaked through Drop=1: %d extra", got-dgBase)
	}

	// 3. Partition: reliable sends blackholed silently.
	ctl.Clear()
	ctl.AddPhase(FaultPhase{Partition: [][]string{{a.Addr()}, {b.Addr()}}})
	a.Send(b.Addr(), 2, relMsg)
	time.Sleep(250 * time.Millisecond)
	if got := rel.Load(); got != 2 {
		t.Errorf("reliable send crossed a partition (count %d)", got)
	}
	if ctl.Counters()[CtrFaultBlocked] == 0 {
		t.Errorf("partition block not counted")
	}

	// 4. Heal: traffic flows again.
	ctl.Clear()
	a.Send(b.Addr(), 2, relMsg)
	waitCount(t, &rel, 3, "reliable send after heal")

	// 5. Duplication: one send, two deliveries.
	ctl.AddPhase(FaultPhase{Duplicate: 1})
	a.Send(b.Addr(), 2, relMsg)
	waitCount(t, &rel, 5, "duplicated reliable send")

	// 6. The wrapper surfaces the controller's counters through Stats.
	if ft, ok := a.(*FaultTransport); ok {
		if ft.Stats()[CtrFaultDuplicated] == 0 {
			t.Errorf("FaultTransport.Stats missing fault counters")
		}
	} else {
		t.Errorf("factory did not return a *FaultTransport")
	}
}

func TestFaultTransportOverMem(t *testing.T) {
	testFaultTransportConformance(t, func(t *testing.T, ctl *FaultController) (Transport, Transport, func()) {
		net := NewMemNetwork(0, 1)
		ea := net.Endpoint("a")
		ea.SetFrom(1)
		eb := net.Endpoint("b")
		eb.SetFrom(2)
		return ctl.Wrap(ea), ctl.Wrap(eb), func() {
			ea.Close()
			eb.Close()
		}
	})
}

func TestFaultTransportOverTCP(t *testing.T) {
	testFaultTransportConformance(t, func(t *testing.T, ctl *FaultController) (Transport, Transport, func()) {
		ta, err := NewTCPTransport(1, "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen a: %v", err)
		}
		tb, err := NewTCPTransport(2, "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen b: %v", err)
		}
		return ctl.Wrap(ta), ctl.Wrap(tb), func() {
			ta.Close()
			tb.Close()
		}
	})
}

// waitCount polls until the counter reaches at least want.
func waitCount(t *testing.T, c *atomic.Int64, want int64, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s: count %d, want >= %d", what, c.Load(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sendUntilCount retries a lossy send (e.g. UDP) until the counter moves.
func sendUntilCount(t *testing.T, c *atomic.Int64, want int64, send func()) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("datagram never arrived (count %d, want >= %d)", c.Load(), want)
		}
		send()
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFaultPhaseBandwidthCapThrottles pins the virtual-clock model: a
// capped link delays each message by its queued transmission time minus
// the burst allowance, directionally, with independent clocks per pair.
func TestFaultPhaseBandwidthCapThrottles(t *testing.T) {
	ctl := NewFaultController(FaultPlan{Phases: []FaultPhase{{
		Bandwidth: []BandwidthCap{{From: "a", BytesPerSec: 1000, Burst: 100}},
	}}})

	// 500 B at 1000 B/s occupies the link 500ms; the 100 B burst grants
	// 100ms for free.
	d1 := ctl.judgeSized("a", "b", true, 500).delay
	if d1 < 350*time.Millisecond || d1 > 400*time.Millisecond {
		t.Errorf("first capped send delay = %v, want ~400ms", d1)
	}
	// Back-to-back: the link is already busy, so the second send queues
	// behind the first.
	d2 := ctl.judgeSized("a", "b", true, 500).delay
	if d2 < 850*time.Millisecond || d2 > 900*time.Millisecond {
		t.Errorf("second capped send delay = %v, want ~900ms", d2)
	}
	// The reverse direction is uncapped.
	if d := ctl.judgeSized("b", "a", true, 500).delay; d != 0 {
		t.Errorf("reverse direction delay = %v, want 0", d)
	}
	// A different destination pair gets its own clock under the wildcard
	// rule: only the burst-adjusted transmission time, no queueing behind
	// a->b.
	d3 := ctl.judgeSized("a", "c", true, 500).delay
	if d3 < 350*time.Millisecond || d3 > 400*time.Millisecond {
		t.Errorf("independent pair delay = %v, want ~400ms", d3)
	}
	if ctl.Counters()[CtrFaultThrottled] != 3 {
		t.Errorf("fault_throttled = %d, want 3", ctl.Counters()[CtrFaultThrottled])
	}

	// Small messages within the burst pass unthrottled.
	ctl2 := NewFaultController(FaultPlan{Phases: []FaultPhase{{
		Bandwidth: []BandwidthCap{{BytesPerSec: 1 << 20, Burst: 64 << 10}},
	}}})
	if d := ctl2.judgeSized("a", "b", true, 100).delay; d != 0 {
		t.Errorf("burst-sized send delay = %v, want 0", d)
	}

	// Clear resets the virtual clocks along with the phases.
	ctl.Clear()
	ctl.AddPhase(FaultPhase{Bandwidth: []BandwidthCap{{BytesPerSec: 1000}}})
	d4 := ctl.judgeSized("a", "b", true, 100).delay
	if d4 > 150*time.Millisecond {
		t.Errorf("post-Clear delay = %v, want fresh clock (~100ms)", d4)
	}
}

// TestFaultBandwidthCapConformance sends a burst of sized frames through a
// capped FaultTransport fabric (the end-to-end analogue of the slow-link
// conformance) and checks the arrival spread matches the serialization
// time the cap implies.
func TestFaultBandwidthCapConformance(t *testing.T) {
	ctl := NewFaultController(FaultPlan{Seed: 7})
	net := NewMemNetwork(0, 1)
	ea := net.Endpoint("a")
	ea.SetFrom(1)
	eb := net.Endpoint("b")
	eb.SetFrom(2)
	a, b := ctl.Wrap(ea), ctl.Wrap(eb)
	defer ea.Close()
	defer eb.Close()

	var got atomic.Int64
	var lastArrival atomic.Int64
	start := time.Now()
	b.SetHandlers(func(from core.NodeID, m core.Message) {
		got.Add(1)
		lastArrival.Store(int64(time.Since(start)))
	}, nil)
	a.SetHandlers(func(core.NodeID, core.Message) {}, nil)

	msg := &core.Multicast{ID: core.MessageID{Source: 1, Seq: 1}, Payload: make([]byte, 1000)}
	rate := int64(10 * msg.WireSize()) // the link carries 10 frames/s
	ctl.AddPhase(FaultPhase{Bandwidth: []BandwidthCap{{From: "a", To: "b", BytesPerSec: rate}}})

	const frames = 5
	for i := 0; i < frames; i++ {
		a.Send(b.Addr(), 2, msg)
	}
	deadline := time.After(5 * time.Second)
	for got.Load() < frames {
		select {
		case <-deadline:
			t.Fatalf("only %d/%d frames arrived through the capped link", got.Load(), frames)
		case <-time.After(10 * time.Millisecond):
		}
	}
	// 5 frames at 10 frames/s serialize over ~500ms; allow generous slack
	// below but require well over half the nominal spread.
	if spread := time.Duration(lastArrival.Load()); spread < 300*time.Millisecond {
		t.Errorf("arrival spread %v, want >= 300ms for a %d B/s cap", spread, rate)
	}
	if ctl.Counters()[CtrFaultThrottled] == 0 {
		t.Errorf("fault_throttled not counted on the capped fabric")
	}
}
