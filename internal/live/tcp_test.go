package live

import (
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gocast/internal/core"
)

// fastTCPOptions returns resilience tuning suitable for tests: quick
// redials, no idle reaping.
func fastTCPOptions() TCPOptions {
	return TCPOptions{
		DialTimeout:   time.Second,
		RedialBackoff: 20 * time.Millisecond,
		IdleTimeout:   -1,
	}
}

func mustTCP(t *testing.T, id core.NodeID, opts TCPOptions) *TCPTransport {
	t.Helper()
	tr, err := NewTCPTransportWithOptions(id, "127.0.0.1:0", opts)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	return tr
}

// TestTCPRedialRestoresLinkAfterCut cuts every open connection and checks
// the next send transparently re-establishes the link: delivery succeeds,
// the redial counters move, and no failure is reported to the protocol.
func TestTCPRedialRestoresLinkAfterCut(t *testing.T) {
	a := mustTCP(t, 1, fastTCPOptions())
	defer a.Close()
	b := mustTCP(t, 2, fastTCPOptions())
	defer b.Close()

	var got, failed atomic.Int64
	b.SetHandlers(func(core.NodeID, core.Message) { got.Add(1) }, nil)
	a.SetHandlers(func(core.NodeID, core.Message) {}, func(core.NodeID) { failed.Add(1) })

	a.Send(b.Addr(), 2, &core.TreeParent{On: true})
	waitCount(t, &got, 1, "initial send")

	if n := a.DropConnections(); n == 0 {
		t.Fatalf("no connections to cut")
	}
	a.Send(b.Addr(), 2, &core.TreeParent{On: true})
	waitCount(t, &got, 2, "send after the connection was cut")

	s := a.Stats()
	if s[CtrRedials] < 1 {
		t.Errorf("tcp_redials = %d, want >= 1", s[CtrRedials])
	}
	if s[CtrWriteErrors] < 1 {
		t.Errorf("tcp_write_errors = %d, want >= 1", s[CtrWriteErrors])
	}
	if s[CtrFramesRequeue] < 1 {
		t.Errorf("tcp_frames_requeued = %d, want >= 1", s[CtrFramesRequeue])
	}
	if failed.Load() != 0 {
		t.Errorf("transient connection cut reported as a peer failure")
	}
}

// TestTCPRedialExhaustionReportsPeerDown sends toward a dead address and
// checks the failure is reported only after the configured attempts.
func TestTCPRedialExhaustionReportsPeerDown(t *testing.T) {
	opts := fastTCPOptions()
	opts.RedialAttempts = 2
	a := mustTCP(t, 1, opts)
	defer a.Close()

	failures := make(chan core.NodeID, 1)
	a.SetHandlers(func(core.NodeID, core.Message) {}, func(p core.NodeID) { failures <- p })

	// A port that was just freed: connection refused, instantly.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	dead := ln.Addr().String()
	ln.Close()

	a.Send(dead, 9, &core.TreeParent{})
	select {
	case p := <-failures:
		if p != 9 {
			t.Fatalf("failure reported for peer %d, want 9", p)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("peer never reported down")
	}
	s := a.Stats()
	if s[CtrDialErrors] != 3 { // initial attempt + RedialAttempts retries
		t.Errorf("tcp_dial_errors = %d, want 3", s[CtrDialErrors])
	}
	if s[CtrPeersFailed] != 1 {
		t.Errorf("tcp_peers_failed = %d, want 1", s[CtrPeersFailed])
	}
	if s[CtrFramesDropped] < 1 {
		t.Errorf("tcp_frames_dropped = %d, want >= 1", s[CtrFramesDropped])
	}
}

// TestTCPWriteDeadlineUnwedgesStalledPeer writes at a sink that accepts
// but never reads; once the kernel buffers fill, only the write deadline
// can unblock the writer goroutine.
func TestTCPWriteDeadlineUnwedgesStalledPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	var (
		mu    sync.Mutex
		conns []net.Conn
	)
	defer func() {
		mu.Lock()
		for _, c := range conns {
			c.Close()
		}
		mu.Unlock()
	}()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c) // never read from it
			mu.Unlock()
		}
	}()

	opts := fastTCPOptions()
	opts.WriteTimeout = 200 * time.Millisecond
	a := mustTCP(t, 1, opts)
	defer a.Close()
	a.SetHandlers(func(core.NodeID, core.Message) {}, nil)

	payload := make([]byte, 512*1024)
	for i := 0; i < 16; i++ { // ~8 MB, far beyond loopback socket buffers
		a.Send(ln.Addr().String(), 9, &core.Multicast{ID: core.MessageID{Source: 1, Seq: uint32(i)}, Payload: payload})
	}
	deadline := time.Now().Add(10 * time.Second)
	for a.Stats()[CtrWriteErrors] == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("write deadline never fired against a stalled peer")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestTCPIdleConnectionsReaped checks inactivity reaping is silent and the
// next send transparently redials.
func TestTCPIdleConnectionsReaped(t *testing.T) {
	opts := fastTCPOptions()
	opts.IdleTimeout = 300 * time.Millisecond
	a := mustTCP(t, 1, opts)
	defer a.Close()
	b := mustTCP(t, 2, fastTCPOptions())
	defer b.Close()

	var got, failed atomic.Int64
	b.SetHandlers(func(core.NodeID, core.Message) { got.Add(1) }, nil)
	a.SetHandlers(func(core.NodeID, core.Message) {}, func(core.NodeID) { failed.Add(1) })

	a.Send(b.Addr(), 2, &core.TreeParent{})
	waitCount(t, &got, 1, "initial send")

	deadline := time.Now().Add(10 * time.Second)
	for a.Stats()[CtrIdleReaped] == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle connection never reaped")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if failed.Load() != 0 {
		t.Errorf("idle reap reported a peer failure")
	}
	a.Send(b.Addr(), 2, &core.TreeParent{})
	waitCount(t, &got, 2, "send after idle reap")
}

// TestTCPEncodeErrorsCountedAndLoggedOnce checks satellite behavior: a
// frame that cannot serialize is counted every time but logged only once
// per peer.
func TestTCPEncodeErrorsCountedAndLoggedOnce(t *testing.T) {
	var logs atomic.Int64
	opts := fastTCPOptions()
	opts.Logf = func(string, ...any) { logs.Add(1) }
	a := mustTCP(t, 1, opts)
	defer a.Close()
	a.SetHandlers(func(core.NodeID, core.Message) {}, nil)

	bad := &core.JoinRequest{From: core.Entry{ID: 3, Addr: strings.Repeat("x", 70000)}}
	a.Send("127.0.0.1:1", 3, bad)
	a.Send("127.0.0.1:1", 3, bad)
	a.SendDatagram("127.0.0.1:1", 3, bad)
	if got := a.Stats()[CtrEncodeErrors]; got != 3 {
		t.Errorf("tcp_encode_errors = %d, want 3", got)
	}
	if got := logs.Load(); got != 1 {
		t.Errorf("encode error logged %d times, want once per peer", got)
	}
	// A different peer gets its own log line.
	a.Send("127.0.0.1:2", 4, bad)
	if got := logs.Load(); got != 2 {
		t.Errorf("second peer's encode error not logged (logs %d)", got)
	}
}
