package live

import (
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gocast/internal/core"
)

// fastTCPOptions returns resilience tuning suitable for tests: quick
// redials, no idle reaping.
func fastTCPOptions() TCPOptions {
	return TCPOptions{
		DialTimeout:   time.Second,
		RedialBackoff: 20 * time.Millisecond,
		IdleTimeout:   -1,
	}
}

func mustTCP(t *testing.T, id core.NodeID, opts TCPOptions) *TCPTransport {
	t.Helper()
	tr, err := NewTCPTransportWithOptions(id, "127.0.0.1:0", opts)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	return tr
}

// TestTCPRedialRestoresLinkAfterCut cuts every open connection and checks
// the next send transparently re-establishes the link: delivery succeeds,
// the redial counters move, and no failure is reported to the protocol.
func TestTCPRedialRestoresLinkAfterCut(t *testing.T) {
	a := mustTCP(t, 1, fastTCPOptions())
	defer a.Close()
	b := mustTCP(t, 2, fastTCPOptions())
	defer b.Close()

	var got, failed atomic.Int64
	b.SetHandlers(func(core.NodeID, core.Message) { got.Add(1) }, nil)
	a.SetHandlers(func(core.NodeID, core.Message) {}, func(core.NodeID) { failed.Add(1) })

	a.Send(b.Addr(), 2, &core.TreeParent{On: true})
	waitCount(t, &got, 1, "initial send")

	if n := a.DropConnections(); n == 0 {
		t.Fatalf("no connections to cut")
	}
	a.Send(b.Addr(), 2, &core.TreeParent{On: true})
	waitCount(t, &got, 2, "send after the connection was cut")

	s := a.Stats()
	if s[CtrRedials] < 1 {
		t.Errorf("tcp_redials = %d, want >= 1", s[CtrRedials])
	}
	if s[CtrWriteErrors] < 1 {
		t.Errorf("tcp_write_errors = %d, want >= 1", s[CtrWriteErrors])
	}
	if s[CtrFramesRequeue] < 1 {
		t.Errorf("tcp_frames_requeued = %d, want >= 1", s[CtrFramesRequeue])
	}
	if failed.Load() != 0 {
		t.Errorf("transient connection cut reported as a peer failure")
	}
}

// TestTCPRedialExhaustionReportsPeerDown sends toward a dead address and
// checks the failure is reported only after the configured attempts.
func TestTCPRedialExhaustionReportsPeerDown(t *testing.T) {
	opts := fastTCPOptions()
	opts.RedialAttempts = 2
	a := mustTCP(t, 1, opts)
	defer a.Close()

	failures := make(chan core.NodeID, 1)
	a.SetHandlers(func(core.NodeID, core.Message) {}, func(p core.NodeID) { failures <- p })

	// A port that was just freed: connection refused, instantly.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	dead := ln.Addr().String()
	ln.Close()

	a.Send(dead, 9, &core.TreeParent{})
	select {
	case p := <-failures:
		if p != 9 {
			t.Fatalf("failure reported for peer %d, want 9", p)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("peer never reported down")
	}
	s := a.Stats()
	if s[CtrDialErrors] != 3 { // initial attempt + RedialAttempts retries
		t.Errorf("tcp_dial_errors = %d, want 3", s[CtrDialErrors])
	}
	if s[CtrPeersFailed] != 1 {
		t.Errorf("tcp_peers_failed = %d, want 1", s[CtrPeersFailed])
	}
	if s[CtrFramesDropped] < 1 {
		t.Errorf("tcp_frames_dropped = %d, want >= 1", s[CtrFramesDropped])
	}
}

// TestTCPWriteDeadlineUnwedgesStalledPeer writes at a sink that accepts
// but never reads; once the kernel buffers fill, only the write deadline
// can unblock the writer goroutine.
func TestTCPWriteDeadlineUnwedgesStalledPeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	var (
		mu    sync.Mutex
		conns []net.Conn
	)
	defer func() {
		mu.Lock()
		for _, c := range conns {
			c.Close()
		}
		mu.Unlock()
	}()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c) // never read from it
			mu.Unlock()
		}
	}()

	opts := fastTCPOptions()
	opts.WriteTimeout = 200 * time.Millisecond
	a := mustTCP(t, 1, opts)
	defer a.Close()
	a.SetHandlers(func(core.NodeID, core.Message) {}, nil)

	payload := make([]byte, 512*1024)
	for i := 0; i < 16; i++ { // ~8 MB, far beyond loopback socket buffers
		a.Send(ln.Addr().String(), 9, &core.Multicast{ID: core.MessageID{Source: 1, Seq: uint32(i)}, Payload: payload})
	}
	deadline := time.Now().Add(10 * time.Second)
	for a.Stats()[CtrWriteErrors] == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("write deadline never fired against a stalled peer")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestTCPIdleConnectionsReaped checks inactivity reaping is silent and the
// next send transparently redials.
func TestTCPIdleConnectionsReaped(t *testing.T) {
	opts := fastTCPOptions()
	opts.IdleTimeout = 300 * time.Millisecond
	a := mustTCP(t, 1, opts)
	defer a.Close()
	b := mustTCP(t, 2, fastTCPOptions())
	defer b.Close()

	var got, failed atomic.Int64
	b.SetHandlers(func(core.NodeID, core.Message) { got.Add(1) }, nil)
	a.SetHandlers(func(core.NodeID, core.Message) {}, func(core.NodeID) { failed.Add(1) })

	a.Send(b.Addr(), 2, &core.TreeParent{})
	waitCount(t, &got, 1, "initial send")

	deadline := time.Now().Add(10 * time.Second)
	for a.Stats()[CtrIdleReaped] == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle connection never reaped")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if failed.Load() != 0 {
		t.Errorf("idle reap reported a peer failure")
	}
	a.Send(b.Addr(), 2, &core.TreeParent{})
	waitCount(t, &got, 2, "send after idle reap")
}

// TestTCPEncodeErrorsCountedAndLoggedOnce checks satellite behavior: a
// frame that cannot serialize is counted every time but logged only once
// per peer.
func TestTCPEncodeErrorsCountedAndLoggedOnce(t *testing.T) {
	var logs atomic.Int64
	opts := fastTCPOptions()
	opts.Logf = func(string, ...any) { logs.Add(1) }
	a := mustTCP(t, 1, opts)
	defer a.Close()
	a.SetHandlers(func(core.NodeID, core.Message) {}, nil)

	bad := &core.JoinRequest{From: core.Entry{ID: 3, Addr: strings.Repeat("x", 70000)}}
	a.Send("127.0.0.1:1", 3, bad)
	a.Send("127.0.0.1:1", 3, bad)
	a.SendDatagram("127.0.0.1:1", 3, bad)
	if got := a.Stats()[CtrEncodeErrors]; got != 3 {
		t.Errorf("tcp_encode_errors = %d, want 3", got)
	}
	if got := logs.Load(); got != 1 {
		t.Errorf("encode error logged %d times, want once per peer", got)
	}
	// A different peer gets its own log line.
	a.Send("127.0.0.1:2", 4, bad)
	if got := logs.Load(); got != 2 {
		t.Errorf("second peer's encode error not logged (logs %d)", got)
	}
}

// deadTCPAddr returns a localhost address that refuses connections: a
// listener is opened to reserve the port, then closed.
func deadTCPAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestTCPQueueClassingUnderFlood pins the per-peer overflow semantics: a
// Background flood toward an unreachable peer sheds Background (and then
// Repair) frames while Critical frames keep being admitted into the
// elastic ring — the peer is never dropped — and every drop is attributed
// to its class. Only pushing Critical past its hard cap overflows and
// drops the peer.
func TestTCPQueueClassingUnderFlood(t *testing.T) {
	tr := mustTCP(t, 1, TCPOptions{
		DialTimeout:       200 * time.Millisecond,
		RedialAttempts:    1000,
		RedialBackoff:     time.Hour, // park the writer after the first refused dial
		RedialBackoffMax:  time.Hour,
		IdleTimeout:       -1,
		QueueCritical:     8,
		QueueCriticalHard: 32,
		QueueRepair:       4,
		QueueBackground:   4,
		Logf:              t.Logf,
	})
	defer tr.Close()
	dead := deadTCPAddr(t)

	for i := 0; i < 100; i++ {
		tr.Send(dead, 2, &core.SyncRequest{}) // Background
	}
	for i := 0; i < 50; i++ {
		tr.Send(dead, 2, &core.PullRequest{}) // Repair
	}
	for i := 0; i < 20; i++ {
		tr.Send(dead, 2, &core.Gossip{}) // Critical, past the soft cap of 8
	}

	st := tr.Stats()
	if st[CtrQueueOverflow] != 0 {
		t.Fatalf("queue_overflows = %d during class flood, want 0 (peer must survive)", st[CtrQueueOverflow])
	}
	if st[CtrDroppedCritical] != 0 {
		t.Errorf("dropped_critical = %d, want 0", st[CtrDroppedCritical])
	}
	if st[CtrDroppedBackground] != 96 {
		t.Errorf("dropped_background = %d, want 96", st[CtrDroppedBackground])
	}
	if st[CtrDroppedRepair] != 46 {
		t.Errorf("dropped_repair = %d, want 46", st[CtrDroppedRepair])
	}
	if st[CtrFramesDropped] != 96+46 {
		t.Errorf("frames_dropped = %d, want %d", st[CtrFramesDropped], 96+46)
	}

	tr.mu.Lock()
	pc := tr.conns[dead]
	tr.mu.Unlock()
	if pc == nil {
		t.Fatal("peer was dropped by the class flood")
	}
	per, _ := pc.queuedPerClass()
	if per[core.ClassCritical] != 20 || per[core.ClassRepair] != 4 || per[core.ClassBackground] != 4 {
		t.Fatalf("queued per class = %v, want [20 4 4]", per)
	}

	// The governor view reflects the elastic Critical ring: > 1.0 of the
	// soft cap but below the hard cap.
	qp := tr.QueuePressure()
	if qp.Critical <= 1 || qp.QueuedBytes == 0 {
		t.Fatalf("QueuePressure = %+v, want Critical > 1 with queued bytes", qp)
	}

	// Pushing Critical past the hard cap (32) is a real overflow: the
	// peer is dropped and every queued frame is attributed.
	for i := 0; i < 13; i++ {
		tr.Send(dead, 2, &core.Gossip{})
	}
	st = tr.Stats()
	if st[CtrQueueOverflow] != 1 {
		t.Fatalf("queue_overflows = %d after hard-cap breach, want 1", st[CtrQueueOverflow])
	}
	// 1 overflowed frame + 32 queued Critical frames.
	if st[CtrDroppedCritical] != 33 {
		t.Errorf("dropped_critical = %d, want 33", st[CtrDroppedCritical])
	}
	if st[CtrDroppedRepair] != 46+4 || st[CtrDroppedBackground] != 96+4 {
		t.Errorf("post-overflow drops repair=%d background=%d, want 50/100",
			st[CtrDroppedRepair], st[CtrDroppedBackground])
	}
}

// TestTCPSlowPeerPausesBackground pins the flow-control hysteresis: a
// peer whose write-latency EWMA crosses SlowWriteThreshold is paused —
// Background enqueues shed immediately, Repair sheds above half its ring —
// and resumes only once the EWMA falls below half the threshold.
func TestTCPSlowPeerPausesBackground(t *testing.T) {
	tr := mustTCP(t, 1, TCPOptions{
		DialTimeout:        200 * time.Millisecond,
		RedialAttempts:     1000,
		RedialBackoff:      time.Hour,
		RedialBackoffMax:   time.Hour,
		IdleTimeout:        -1,
		SlowWriteThreshold: 100 * time.Millisecond,
		QueueRepair:        8,
		Logf:               t.Logf,
	})
	defer tr.Close()
	dead := deadTCPAddr(t)

	tr.Send(dead, 2, &core.Gossip{}) // materialize the peer
	tr.mu.Lock()
	pc := tr.conns[dead]
	tr.mu.Unlock()

	// Drive the EWMA over the threshold: each 800ms sample adds 100ms.
	for i := 0; i < 16 && !pc.slow.Load(); i++ {
		tr.noteWriteLatency(pc, 800*time.Millisecond)
	}
	if !pc.slow.Load() {
		t.Fatal("peer not marked slow after sustained slow writes")
	}
	if got := tr.Stats()[CtrPeerPauses]; got != 1 {
		t.Fatalf("peer_pauses = %d, want 1", got)
	}

	// Background sheds outright while paused; Repair still admits below
	// half its ring.
	tr.Send(dead, 2, &core.SyncRequest{})
	if got := tr.Stats()[CtrDroppedBackground]; got != 1 {
		t.Fatalf("dropped_background = %d while slow, want 1", got)
	}
	for i := 0; i < 8; i++ {
		tr.Send(dead, 2, &core.PullRequest{})
	}
	if got := tr.Stats()[CtrDroppedRepair]; got != 4 {
		t.Fatalf("dropped_repair = %d while slow, want 4 (half ring admitted)", got)
	}

	// Fast writes recover the peer only after the EWMA decays below half
	// the threshold.
	for i := 0; i < 64 && pc.slow.Load(); i++ {
		tr.noteWriteLatency(pc, time.Millisecond)
	}
	if pc.slow.Load() {
		t.Fatal("peer did not resume after EWMA decayed")
	}
	if got := tr.Stats()[CtrPeerResumes]; got != 1 {
		t.Fatalf("peer_resumes = %d, want 1", got)
	}
	tr.Send(dead, 2, &core.SyncRequest{})
	if got := tr.Stats()[CtrDroppedBackground]; got != 1 {
		t.Fatalf("dropped_background = %d after resume, want still 1", got)
	}
}
