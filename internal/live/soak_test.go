package live

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gocast/internal/core"
)

// TestSoakChurnAndTraffic runs a live in-process group for several seconds
// of wall time under concurrent multicasts, abrupt kills, graceful leaves,
// and joins, checking that the group keeps delivering and that survivors'
// overlay state stays sane. Skipped with -short.
func TestSoakChurnAndTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const base = 20
	var (
		mu        sync.Mutex
		delivered = map[core.MessageID]map[core.NodeID]bool{}
	)
	record := func(node core.NodeID) core.DeliverFunc {
		return func(id core.MessageID, _ []byte, _ time.Duration) {
			mu.Lock()
			if delivered[id] == nil {
				delivered[id] = map[core.NodeID]bool{}
			}
			delivered[id][node] = true
			mu.Unlock()
		}
	}

	net := NewMemNetwork(time.Millisecond, 1)
	cfg := FastConfig()
	nodes := map[core.NodeID]*Node{}
	var nextID core.NodeID
	newNode := func() *Node {
		id := nextID
		nextID++
		ep := net.Endpoint(fmt.Sprintf("soak-%d", id))
		n := NewNode(NodeOptions{
			ID: id, Config: cfg, Transport: ep,
			Seed:      int64(id) + 99,
			OnDeliver: record(id),
		})
		nodes[id] = n
		return n
	}
	root := newNode()
	root.BecomeRoot()
	root.SetLandmarks([]core.Entry{root.Entry()})
	for i := 1; i < base; i++ {
		n := newNode()
		n.SetLandmarks([]core.Entry{root.Entry()})
		n.Join(root.Entry())
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	// Wait for the overlay to form.
	deadline := time.Now().Add(20 * time.Second)
	for {
		ok := true
		for _, n := range nodes {
			if n.Degree() < 2 {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("overlay did not form")
		}
		time.Sleep(50 * time.Millisecond)
	}

	dead := map[core.NodeID]bool{}
	var sent []core.MessageID
	pick := func(k int) *Node {
		i := 0
		for id, n := range nodes {
			if dead[id] {
				continue
			}
			if i == k%len(nodes) {
				return n
			}
			i++
		}
		return root
	}
	for round := 0; round < 30; round++ {
		sent = append(sent, pick(round*7).Multicast([]byte("soak")))
		switch round {
		case 8:
			victim := pick(3)
			if victim != root {
				dead[victim.ID()] = true
				victim.Kill()
			}
		case 15:
			leaver := pick(11)
			if leaver != root && !dead[leaver.ID()] {
				dead[leaver.ID()] = true
				leaver.Close()
			}
		case 22:
			n := newNode()
			n.SetLandmarks([]core.Entry{root.Entry()})
			n.Join(root.Entry())
		}
		time.Sleep(150 * time.Millisecond)
	}

	// Every message must reach every node that was alive for the whole
	// run (conservative: check only the always-alive set).
	time.Sleep(4 * time.Second)
	mu.Lock()
	defer mu.Unlock()
	for _, id := range sent {
		for nid := range nodes {
			if dead[nid] || nid >= base { // skip churned and late joiners
				continue
			}
			if !delivered[id][nid] {
				t.Errorf("node %d missed message %s", nid, id)
			}
		}
	}
}
