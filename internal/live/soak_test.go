package live

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gocast/internal/core"
)

// TestSoakChurnAndTraffic runs a live in-process group for several seconds
// of wall time under concurrent multicasts, abrupt kills, graceful leaves,
// and joins, checking that the group keeps delivering and that survivors'
// overlay state stays sane. Skipped with -short.
func TestSoakChurnAndTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const base = 20
	var (
		mu        sync.Mutex
		delivered = map[core.MessageID]map[core.NodeID]bool{}
	)
	record := func(node core.NodeID) core.DeliverFunc {
		return func(id core.MessageID, _ []byte, _ time.Duration) {
			mu.Lock()
			if delivered[id] == nil {
				delivered[id] = map[core.NodeID]bool{}
			}
			delivered[id][node] = true
			mu.Unlock()
		}
	}

	net := NewMemNetwork(time.Millisecond, 1)
	cfg := FastConfig()
	nodes := map[core.NodeID]*Node{}
	var nextID core.NodeID
	newNode := func() *Node {
		id := nextID
		nextID++
		ep := net.Endpoint(fmt.Sprintf("soak-%d", id))
		n := NewNode(NodeOptions{
			ID: id, Config: cfg, Transport: ep,
			Seed:      int64(id) + 99,
			OnDeliver: record(id),
		})
		nodes[id] = n
		return n
	}
	root := newNode()
	root.BecomeRoot()
	root.SetLandmarks([]core.Entry{root.Entry()})
	for i := 1; i < base; i++ {
		n := newNode()
		n.SetLandmarks([]core.Entry{root.Entry()})
		n.Join(root.Entry())
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	// Wait for the overlay to form.
	deadline := time.Now().Add(20 * time.Second)
	for {
		ok := true
		for _, n := range nodes {
			if n.Degree() < 2 {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("overlay did not form")
		}
		time.Sleep(50 * time.Millisecond)
	}

	dead := map[core.NodeID]bool{}
	var sent []core.MessageID
	pick := func(k int) *Node {
		i := 0
		for id, n := range nodes {
			if dead[id] {
				continue
			}
			if i == k%len(nodes) {
				return n
			}
			i++
		}
		return root
	}
	for round := 0; round < 30; round++ {
		sent = append(sent, pick(round*7).Multicast([]byte("soak")))
		switch round {
		case 8:
			victim := pick(3)
			if victim != root {
				dead[victim.ID()] = true
				victim.Kill()
			}
		case 15:
			leaver := pick(11)
			if leaver != root && !dead[leaver.ID()] {
				dead[leaver.ID()] = true
				leaver.Close()
			}
		case 22:
			n := newNode()
			n.SetLandmarks([]core.Entry{root.Entry()})
			n.Join(root.Entry())
		}
		time.Sleep(150 * time.Millisecond)
	}

	// Every message must reach every node that was alive for the whole
	// run (conservative: check only the always-alive set).
	time.Sleep(4 * time.Second)
	mu.Lock()
	defer mu.Unlock()
	for _, id := range sent {
		for nid := range nodes {
			if dead[nid] || nid >= base { // skip churned and late joiners
				continue
			}
			if !delivered[id][nid] {
				t.Errorf("node %d missed message %s", nid, id)
			}
		}
	}
}

// deliveryLog tracks which cluster node has seen which message.
type deliveryLog struct {
	mu  sync.Mutex
	got map[core.MessageID]map[int]bool
}

func newDeliveryLog() *deliveryLog {
	return &deliveryLog{got: map[core.MessageID]map[int]bool{}}
}

func (l *deliveryLog) record(node int, id core.MessageID, _ []byte) {
	l.mu.Lock()
	if l.got[id] == nil {
		l.got[id] = map[int]bool{}
	}
	l.got[id][node] = true
	l.mu.Unlock()
}

// missing counts (message, node) pairs not yet delivered, skipping nodes
// for which skip returns true.
func (l *deliveryLog) missing(sent []core.MessageID, nodes int, skip func(int) bool) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, id := range sent {
		for i := 0; i < nodes; i++ {
			if skip != nil && skip(i) {
				continue
			}
			if !l.got[id][i] {
				n++
			}
		}
	}
	return n
}

func awaitFullDelivery(t *testing.T, l *deliveryLog, sent []core.MessageID, nodes int, skip func(int) bool, timeout time.Duration, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		m := l.missing(sent, nodes, skip)
		if m == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: %d (message, node) pairs undelivered", what, m)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestSoakPartitionHealDelivery injects a 2-second two-sided partition
// into a running cluster and checks that after the fault clears the
// overlay degree re-converges and every message — including those
// multicast mid-partition on both sides — eventually reaches every node.
// This exercises the whole recovery chain: fault-layer blackholes,
// keepalive link teardown, membership re-learning, link re-formation, and
// gossip re-announcement of retired messages. Skipped with -short.
func TestSoakPartitionHealDelivery(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const n = 12
	log := newDeliveryLog()
	ctl := NewFaultController(FaultPlan{Seed: 5})
	c := NewCluster(ClusterOptions{
		Nodes:     n,
		Config:    FastConfig(),
		Seed:      11,
		Faults:    ctl,
		OnDeliver: log.record,
	})
	defer c.Close()
	if !c.AwaitDegree(2, 20*time.Second) {
		t.Fatalf("cluster never converged")
	}

	var sent []core.MessageID
	sent = append(sent, c.Node(0).Multicast([]byte("pre-partition")))
	awaitFullDelivery(t, log, sent, n, nil, 20*time.Second, "pre-partition message")

	// Partition nodes 0..7 from 8..11 for two seconds.
	var sideA, sideB []string
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("mem-%d", i)
		if i < 8 {
			sideA = append(sideA, addr)
		} else {
			sideB = append(sideB, addr)
		}
	}
	start := ctl.Elapsed()
	ctl.AddPhase(FaultPhase{
		Start:     start,
		End:       start + 2*time.Second,
		Partition: [][]string{sideA, sideB},
	})

	time.Sleep(400 * time.Millisecond)
	sent = append(sent, c.Node(2).Multicast([]byte("during-side-a")))
	sent = append(sent, c.Node(9).Multicast([]byte("during-side-b")))
	time.Sleep(2 * time.Second) // outlive the phase

	sent = append(sent, c.Node(5).Multicast([]byte("post-heal")))

	if ctl.Counters()[CtrFaultBlocked] == 0 {
		t.Fatalf("partition phase blocked nothing; the fault wiring is broken")
	}
	if !c.AwaitDegree(2, 30*time.Second) {
		t.Fatalf("overlay degree never re-converged after the heal")
	}
	awaitFullDelivery(t, log, sent, n, nil, 45*time.Second, "post-heal reconciliation")
}

// TestSoakTCPConnectionCutMidStream streams multicasts over a real TCP
// cluster, abruptly cuts every connection of one node mid-stream, and
// checks that backoff redial restores the links transparently: every
// message is delivered everywhere, the redial counters move, and the
// protocol layer never sees a peer failure. Skipped with -short.
func TestSoakTCPConnectionCutMidStream(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const n = 5
	cfg := FastConfig()
	log := newDeliveryLog()
	opts := TCPOptions{
		DialTimeout:    time.Second,
		WriteTimeout:   2 * time.Second,
		RedialAttempts: 8,
		RedialBackoff:  30 * time.Millisecond,
		IdleTimeout:    -1,
	}
	transports := make([]*TCPTransport, 0, n)
	nodes := make([]*Node, 0, n)
	for i := 0; i < n; i++ {
		tr, err := NewTCPTransportWithOptions(core.NodeID(i), "127.0.0.1:0", opts)
		if err != nil {
			t.Fatal(err)
		}
		idx := i
		transports = append(transports, tr)
		nodes = append(nodes, NewNode(NodeOptions{
			ID:        core.NodeID(i),
			Config:    cfg,
			Transport: tr,
			Seed:      int64(2000 + i),
			OnDeliver: func(id core.MessageID, payload []byte, _ time.Duration) {
				log.record(idx, id, payload)
			},
		}))
	}
	defer func() {
		for _, node := range nodes {
			node.Close()
		}
	}()
	landmarks := []core.Entry{nodes[0].Entry(), nodes[1].Entry()}
	for _, node := range nodes {
		node.SetLandmarks(landmarks)
	}
	nodes[0].BecomeRoot()
	for i := 1; i < n; i++ {
		nodes[i].Join(nodes[0].Entry())
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		ok := true
		for _, node := range nodes {
			if node.Degree() < 2 {
				ok = false
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("TCP cluster did not converge")
		}
		time.Sleep(100 * time.Millisecond)
	}

	var sent []core.MessageID
	for i := 0; i < 12; i++ {
		sent = append(sent, nodes[i%n].Multicast([]byte("stream")))
		if i == 5 {
			if cut := transports[2].DropConnections(); cut == 0 {
				t.Fatalf("mid-stream cut found no connections")
			}
		}
		time.Sleep(100 * time.Millisecond)
	}

	awaitFullDelivery(t, log, sent, n, nil, 30*time.Second, "stream after connection cut")

	var redials int64
	for _, tr := range transports {
		redials += tr.Stats()[CtrRedials]
	}
	if redials < 1 {
		t.Errorf("no redials recorded after cutting %s's connections", nodes[2].Addr())
	}
	// The cut must have been absorbed below the protocol: redial succeeded
	// well within the keepalive timeout, so no peer was reported down.
	for i, node := range nodes {
		if pd := node.Stats().PeerDowns; pd != 0 {
			t.Errorf("node %d saw %d peer-down reports for a transient cut", i, pd)
		}
	}
}

// TestSoakChaosBackground runs a cluster under continuous mild chaos —
// datagram loss, duplication, reordering, jitter — with one abrupt kill,
// checking the group still delivers everything to the survivors. Skipped
// with -short.
func TestSoakChaosBackground(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const n = 10
	const victim = 7
	log := newDeliveryLog()
	ctl := NewFaultController(FaultPlan{Seed: 9, Phases: []FaultPhase{{
		Drop:      0.2,
		Duplicate: 0.2,
		Reorder:   0.2,
		Jitter:    2 * time.Millisecond,
	}}})
	c := NewCluster(ClusterOptions{
		Nodes:     n,
		Config:    FastConfig(),
		Seed:      17,
		Faults:    ctl,
		OnDeliver: log.record,
	})
	defer c.Close()
	if !c.AwaitDegree(2, 30*time.Second) {
		t.Fatalf("cluster never converged under background chaos")
	}

	var sent []core.MessageID
	for i := 0; i < 10; i++ {
		sender := i % n
		if sender == victim {
			sender = 0
		}
		sent = append(sent, c.Node(sender).Multicast([]byte("chaos")))
		if i == 4 {
			c.Node(victim).Kill()
		}
		time.Sleep(150 * time.Millisecond)
	}

	skip := func(i int) bool { return i == victim }
	awaitFullDelivery(t, log, sent, n, skip, 30*time.Second, "chaos delivery")
	counters := ctl.Counters()
	if counters[CtrFaultDropped] == 0 || counters[CtrFaultDuplicated] == 0 {
		t.Errorf("chaos phase injected nothing: %v", counters)
	}
}
