package live

import (
	"sync"
	"testing"
	"time"

	"gocast/internal/core"
)

// TestNodeAPIAfterKillReturnsZeroValues pins the documented post-stop
// semantics: accessors return zero values promptly, never hang, and
// Multicast injects nothing.
func TestNodeAPIAfterKillReturnsZeroValues(t *testing.T) {
	net := NewMemNetwork(time.Millisecond, 9)
	n := NewNode(NodeOptions{ID: 1, Config: FastConfig(), Transport: net.Endpoint("n1"), Seed: 1})
	n.BecomeRoot()
	if n.Stopped() {
		t.Fatalf("fresh node reports stopped")
	}
	if id := n.Multicast([]byte("x")); id == (core.MessageID{}) {
		t.Fatalf("live multicast returned the zero MessageID")
	}

	n.Kill()
	if !n.Stopped() {
		t.Fatalf("killed node does not report stopped")
	}
	if id := n.Multicast([]byte("y")); id != (core.MessageID{}) {
		t.Errorf("post-kill Multicast returned %v, want zero", id)
	}
	if d := n.Degree(); d != 0 {
		t.Errorf("post-kill Degree = %d, want 0", d)
	}
	if nbs := n.Neighbors(); nbs != nil {
		t.Errorf("post-kill Neighbors = %v, want nil", nbs)
	}
	if n.Seen(core.MessageID{Source: 1, Seq: 0}) {
		t.Errorf("post-kill Seen leaked state")
	}
	// Stats freeze at the final pre-stop snapshot instead of zeroing: the
	// one multicast injected above must survive the Kill.
	if s := n.Stats(); s.Injected != 1 || s.Delivered != 1 {
		t.Errorf("post-kill Stats = %+v, want the frozen pre-stop snapshot (Injected=1, Delivered=1)", s)
	}
	// Stopping again is idempotent, in either form.
	n.Kill()
	n.Close()
}

// TestSetDatagramLossConcurrentWithTraffic exercises the satellite race
// fix: retuning loss while delivery goroutines evaluate the drop function
// must be safe (validated under -race).
func TestSetDatagramLossConcurrentWithTraffic(t *testing.T) {
	net := NewMemNetwork(0, 5)
	a := net.Endpoint("a")
	a.SetFrom(1)
	b := net.Endpoint("b")
	b.SetFrom(2)
	a.SetHandlers(func(core.NodeID, core.Message) {}, nil)
	b.SetHandlers(func(core.NodeID, core.Message) {}, nil)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			net.SetDatagramLoss(float64(i%3) / 3)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			a.SendDatagram("b", 2, &core.TreeParent{})
		}
	}()
	wg.Wait()
	// Let in-flight deliveries finish before the endpoints close.
	time.Sleep(50 * time.Millisecond)
	a.Close()
	b.Close()
}
