package live

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"gocast/internal/core"
	"gocast/internal/dtrace"
	"gocast/internal/obs"
	"gocast/internal/trace"
)

// defaultTraceCapacity sizes the per-node trace ring when NodeOptions does
// not specify one.
const defaultTraceCapacity = 1024

// StatusSnapshot is a point-in-time view of one node, served by /statusz.
type StatusSnapshot struct {
	ID            core.NodeID `json:"id"`
	Addr          string      `json:"addr"`
	Incarnation   uint32      `json:"incarnation"`
	Degree        int         `json:"degree"`
	Members       int         `json:"members"`
	Parent        core.NodeID `json:"parent"`
	Root          core.NodeID `json:"root"`
	DistToRoot    string      `json:"dist_to_root,omitempty"`
	StoreMessages int         `json:"store_messages"`
	StoreBytes    int64       `json:"store_bytes"`
	// FECAssembling counts coopcast messages currently mid-reassembly
	// (first symbol received, not yet decoded or failed);
	// FECOldestAssembly is the age of the oldest such assembly.
	FECAssembling     int    `json:"fec_assembling"`
	FECOldestAssembly string `json:"fec_oldest_assembly,omitempty"`
	Overload          string `json:"overload"`
	Stopped           bool   `json:"stopped"`
}

// nodeObs adapts core.Observer onto the metrics registry and the trace
// ring. All methods run on the node's event loop; the histogram and
// counter handles are captured once so the hot path stays allocation-free.
type nodeObs struct {
	n *Node

	treeForward *obs.Histogram
	gossipRound *obs.Histogram
	pullRTT     *obs.Histogram
	treeRepair  *obs.Histogram
	gcSweep     *obs.Histogram
	syncPage    *obs.Histogram
	reassembly  *obs.Histogram

	syncPages   *obs.Counter
	gcReclaimed *obs.Counter
	gcDropped   *obs.Counter

	// Dissemination trace handles (see ObserveSpan). spanAge only sees
	// delivery-kind spans, giving the per-delivery end-to-end latency
	// distribution of sampled messages.
	spansRecorded *obs.Counter
	spanAge       *obs.Histogram

	sample  int   // record every sample-th protocol event (<=1 = all)
	evCount int64 // event-loop only, no atomics needed
}

var (
	_ core.Observer     = (*nodeObs)(nil)
	_ core.SpanObserver = (*nodeObs)(nil)
)

// ObserveSpan records one dissemination trace span into the node's span
// ring (no-op when span recording is disabled). Only sampled messages
// produce spans, so this path is cold unless Config.TraceSampleEvery is
// set.
func (o *nodeObs) ObserveSpan(s dtrace.Span) {
	if o.n.sbuf == nil {
		return
	}
	o.n.sbuf.Record(s)
	o.spansRecorded.Inc()
	if s.Kind.DeliveryKind() {
		o.spanAge.ObserveDuration(s.Age)
	}
}

func (o *nodeObs) ObserveTreeForward(age time.Duration) { o.treeForward.ObserveDuration(age) }
func (o *nodeObs) ObserveGossipRound(d time.Duration)   { o.gossipRound.ObserveDuration(d) }
func (o *nodeObs) ObservePullRTT(d time.Duration)       { o.pullRTT.ObserveDuration(d) }
func (o *nodeObs) ObserveTreeRepair(d time.Duration)    { o.treeRepair.ObserveDuration(d) }
func (o *nodeObs) ObserveReassembly(d time.Duration)    { o.reassembly.ObserveDuration(d) }

func (o *nodeObs) ObserveSyncPage(items int, bytes int64) {
	o.syncPages.Inc()
	o.syncPage.Observe(float64(bytes))
}

func (o *nodeObs) ObserveStoreGC(reclaimed, dropped int, d time.Duration) {
	o.gcSweep.ObserveDuration(d)
	o.gcReclaimed.Add(int64(reclaimed))
	o.gcDropped.Add(int64(dropped))
}

func (o *nodeObs) Event(ev core.ObsEvent, peer core.NodeID, a, b int64) {
	if o.n.tbuf == nil {
		return
	}
	o.evCount++
	if o.sample > 1 && (o.evCount-1)%int64(o.sample) != 0 {
		return
	}
	e := trace.Event{At: o.n.env.Now(), Node: int32(o.n.opts.ID), Peer: int32(peer)}
	switch ev {
	case core.EvSend:
		id := core.UnpackMessageID(a)
		e.Kind = trace.KindSend
		e.Detail = fmt.Sprintf("msg=%d/%d", id.Source, id.Seq)
	case core.EvDeliver:
		id := core.UnpackMessageID(a)
		e.Kind = trace.KindDeliver
		e.Detail = fmt.Sprintf("msg=%d/%d age=%v", id.Source, id.Seq, time.Duration(b))
	case core.EvLinkUp:
		e.Kind = trace.KindLinkUp
		e.Detail = fmt.Sprintf("kind=%v rtt=%v", core.LinkKind(a), time.Duration(b))
	case core.EvLinkDown:
		e.Kind = trace.KindLinkDown
		e.Detail = fmt.Sprintf("kind=%v rtt=%v", core.LinkKind(a), time.Duration(b))
	case core.EvParent:
		e.Kind = trace.KindParentChange
		e.Detail = fmt.Sprintf("%d -> %d", a, b)
	case core.EvRoot:
		e.Kind = trace.KindRootChange
		e.Detail = fmt.Sprintf("%d -> %d", a, b)
	case core.EvPull:
		id := core.UnpackMessageID(a)
		e.Kind = trace.KindPull
		e.Detail = fmt.Sprintf("msg=%d/%d attempt=%d", id.Source, id.Seq, b)
	default:
		return
	}
	o.n.tbuf.Add(e)
}

// setupObs wires the node's registry, trace ring, and core observer. Called
// from NewNode before the event loop starts.
func (n *Node) setupObs() {
	reg := n.opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	n.reg = reg
	capa := n.opts.TraceCapacity
	if capa == 0 {
		capa = defaultTraceCapacity
	}
	if capa > 0 {
		n.tbuf = trace.NewBuffer(capa)
	}
	if n.opts.SpanCapacity >= 0 {
		n.sbuf = dtrace.NewBuffer(n.opts.SpanCapacity)
	}
	n.coreN.SetObserver(&nodeObs{
		n:           n,
		sample:      n.opts.TraceSample,
		treeForward: reg.Histogram("gocast_core_tree_forward_latency_seconds", "estimated injection-to-delivery age of payloads received over tree links", nil),
		gossipRound: reg.Histogram("gocast_core_gossip_round_duration_seconds", "wall time spent building and sending one gossip summary", nil),
		pullRTT:     reg.Histogram("gocast_core_pull_rtt_seconds", "time from sending a PullRequest to the pulled payload landing", nil),
		treeRepair:  reg.Histogram("gocast_core_tree_repair_duration_seconds", "time spent detached from the tree after losing the parent", nil),
		gcSweep:     reg.Histogram("gocast_store_gc_sweep_duration_seconds", "duration of one message-store GC sweep", nil),
		syncPage:    reg.Histogram("gocast_sync_page_bytes", "payload bytes per served anti-entropy reply batch", obs.DefByteBuckets),
		reassembly:  reg.Histogram("gocast_fec_reassembly_seconds", "time from a coopcast message's first symbol arriving to the payload decoding", nil),
		syncPages:   reg.Counter("gocast_sync_pages_served_total", "anti-entropy reply batches served"),
		gcReclaimed: reg.Counter("gocast_store_gc_reclaimed_total", "payloads reclaimed by store GC sweeps"),
		gcDropped:   reg.Counter("gocast_store_gc_dropped_total", "records dropped entirely by store GC sweeps"),

		spansRecorded: reg.Counter("gocast_trace_spans_recorded_total", "dissemination trace spans recorded into the span ring"),
		spanAge:       reg.Histogram("gocast_trace_delivery_age_seconds", "estimated injection-to-delivery age per delivery span of sampled messages", nil),
	})
	// Pre-registered so the family exists (at zero) from the first scrape.
	reg.Counter("gocast_trace_spans_dropped_total", "dissemination trace spans evicted from the full span ring")
	reg.Gauge("gocast_fec_assembling", "coopcast messages currently mid-reassembly (first symbol received, not decoded or failed)")
	// Overload-protection surfaces. The handles are captured so the shed
	// and publish-reject paths never touch the registry map.
	n.mbDropped = reg.Counter("gocast_live_mailbox_dropped_total", "event-loop work units shed by the prioritized mailbox (all classes)")
	n.mbShed = [core.NumClasses]*obs.Counter{
		core.ClassCritical:   reg.Counter("gocast_overload_shed_critical_total", "Critical-class work shed under overload (should stay zero)"),
		core.ClassRepair:     reg.Counter("gocast_overload_shed_repair_total", "Repair-class work shed under overload"),
		core.ClassBackground: reg.Counter("gocast_overload_shed_background_total", "Background-class work shed under overload"),
	}
	n.loopPanics = reg.Counter("gocast_live_loop_panics_total", "panics recovered on the node's event loop")
	n.pubRejected = reg.Counter("gocast_overload_publish_rejected_total", "local publishes rejected with ErrOverloaded while Shedding")
	n.ovState = reg.Gauge("gocast_overload_state", "degradation level: 0 healthy, 1 degraded, 2 shedding")
	n.ovTrans = reg.Counter("gocast_overload_transitions_total", "overload state-machine transitions")
	// Pre-register the transport counter families present in the transport
	// chain, so e.g. gocast_transport_tcp_redials_total exists (at zero)
	// from the very first scrape rather than appearing after the first
	// redial.
	for t := n.opts.Transport; t != nil; {
		if ft, ok := t.(*FaultTransport); ok {
			for _, c := range []string{CtrFaultBlocked, CtrFaultDropped, CtrFaultDelayed,
				CtrFaultDuplicated, CtrFaultReordered, CtrFaultThrottled, CtrFaultPassed} {
				reg.Counter("gocast_transport_"+c+"_total", "transport counter "+c)
			}
			t = ft.Inner()
			continue
		}
		if _, ok := t.(*TCPTransport); ok {
			for _, c := range []string{CtrDials, CtrDialErrors, CtrRedials, CtrBackoffResets,
				CtrWriteErrors, CtrFramesRequeue, CtrFramesDropped, CtrQueueOverflow,
				CtrEncodeErrors, CtrIdleReaped, CtrPeersFailed,
				CtrDroppedCritical, CtrDroppedRepair, CtrDroppedBackground,
				CtrPeerPauses, CtrPeerResumes} {
				reg.Counter("gocast_transport_"+c+"_total", "transport counter "+c)
			}
		}
		break
	}
	reg.AddCollector(n.collect)
}

// collect mirrors the node's protocol, store, and transport state into the
// registry and refreshes the cached stats/status snapshots. It runs at
// scrape time (as a registry collector) and from the stats accessors. Once
// the node has stopped, the core-side mirror is skipped and the registry
// keeps the values of the final collect performed during Close/Kill.
func (n *Node) collect() {
	n.obsMu.Lock()
	defer n.obsMu.Unlock()
	var (
		s            core.Counters
		inc          uint32
		degree       int
		members      int
		parent, root core.NodeID
		dist         time.Duration
		distOK       bool
		storeCtr     map[string]int64
		storeLen     int
		storeBytes   int64
		assembling   int
		oldestAsm    time.Duration
	)
	if err := n.call(func() {
		s = n.coreN.Stats()
		inc = n.coreN.Incarnation()
		degree = n.coreN.Degree()
		members = n.coreN.MemberCount()
		parent = n.coreN.Parent()
		root = n.coreN.Root()
		dist, distOK = n.coreN.DistToRoot()
		st := n.coreN.Store()
		storeCtr = st.Counters()
		storeLen = st.Len()
		storeBytes = st.Bytes()
		assembling, oldestAsm = n.coreN.Assembling()
	}); err == nil {
		n.lastStats = s
		n.lastStatus = StatusSnapshot{
			ID:            n.opts.ID,
			Addr:          n.opts.Transport.Addr(),
			Incarnation:   inc,
			Degree:        degree,
			Members:       members,
			Parent:        parent,
			Root:          root,
			StoreMessages: storeLen,
			StoreBytes:    storeBytes,
			FECAssembling: assembling,
		}
		if distOK {
			n.lastStatus.DistToRoot = dist.String()
		}
		if assembling > 0 {
			n.lastStatus.FECOldestAssembly = oldestAsm.String()
		}
		n.oldestAsm = oldestAsm
		n.mirrorCore(s, inc, degree, members, storeCtr, storeLen, storeBytes)
		n.reg.Gauge("gocast_fec_assembling", "coopcast messages currently mid-reassembly (first symbol received, not decoded or failed)").Set(int64(assembling))
	}
	if n.sbuf != nil {
		n.reg.Counter("gocast_trace_spans_dropped_total", "dissemination trace spans evicted from the full span ring").Set(n.sbuf.Dropped())
	}
	// Transport counters stay readable after the node stops.
	if ts, ok := n.opts.Transport.(interface{ Stats() map[string]int64 }); ok {
		for k, v := range ts.Stats() {
			n.reg.Counter("gocast_transport_"+k+"_total", "transport counter "+k).Set(v)
		}
	}
}

// mirrorCore copies one consistent core snapshot into the registry. Metric
// names are chosen so that stripping the gocast_<group>_ prefix and _total
// suffix reproduces the keys the legacy per-group stats maps used.
func (n *Node) mirrorCore(s core.Counters, inc uint32, degree, members int, storeCtr map[string]int64, storeLen int, storeBytes int64) {
	set := func(name string, v int64) {
		n.reg.Counter(name, "core protocol counter (see core.Counters)").Set(v)
	}
	// Dissemination and overlay maintenance.
	set("gocast_core_injected_total", s.Injected)
	set("gocast_core_delivered_total", s.Delivered)
	set("gocast_core_payloads_recv_total", s.PayloadsRecv)
	set("gocast_core_duplicates_total", s.Duplicates)
	set("gocast_core_tree_forwards_total", s.TreeForwards)
	set("gocast_core_gossips_sent_total", s.GossipsSent)
	set("gocast_core_gossips_recv_total", s.GossipsRecv)
	set("gocast_core_ids_announced_total", s.IDsAnnounced)
	set("gocast_core_pulls_sent_total", s.PullsSent)
	set("gocast_core_pulls_served_total", s.PullsServed)
	set("gocast_core_pull_retries_total", s.PullRetries)
	set("gocast_core_reannounced_total", s.Reannounced)
	set("gocast_core_adds_sent_total", s.AddsSent)
	set("gocast_core_adds_accepted_total", s.AddsAccepted)
	set("gocast_core_adds_rejected_total", s.AddsRejected)
	set("gocast_core_link_adds_total", s.LinkAdds)
	set("gocast_core_link_drops_total", s.LinkDrops)
	set("gocast_core_rebalances_total", s.Rebalances)
	set("gocast_core_pings_sent_total", s.PingsSent)
	set("gocast_core_tree_adverts_total", s.TreeAdverts)
	set("gocast_core_root_takeovers_total", s.RootTakeovers)
	set("gocast_core_peer_downs_total", s.PeerDowns)
	// Anti-entropy sync.
	set("gocast_sync_requests_sent_total", s.SyncRequestsSent)
	set("gocast_sync_requests_recv_total", s.SyncRequestsRecv)
	set("gocast_sync_replies_sent_total", s.SyncRepliesSent)
	set("gocast_sync_replies_recv_total", s.SyncRepliesRecv)
	set("gocast_sync_items_sent_total", s.SyncItemsSent)
	set("gocast_sync_items_recv_total", s.SyncItemsRecv)
	set("gocast_sync_bytes_sent_total", s.SyncBytesSent)
	set("gocast_sync_pull_misses_sent_total", s.PullMissesSent)
	set("gocast_sync_pull_misses_recv_total", s.PullMissesRecv)
	// Churn hygiene.
	set("gocast_churn_stale_inc_rejects_total", s.StaleIncRejects)
	set("gocast_churn_obits_recorded_total", s.ObitsRecorded)
	set("gocast_churn_obits_honored_total", s.ObitsHonored)
	set("gocast_churn_stale_links_dropped_total", s.StaleLinksDropped)
	set("gocast_churn_rejoins_observed_total", s.RejoinsObserved)
	set("gocast_churn_self_refutes_total", s.SelfRefutes)
	// Erasure-coded bulk dissemination (coopcast).
	set("gocast_fec_symbols_sent_total", s.SymbolsSent)
	set("gocast_fec_symbols_recv_total", s.SymbolsRecv)
	set("gocast_fec_symbols_served_total", s.SymbolsServed)
	set("gocast_fec_symbol_dups_total", s.SymbolDups)
	set("gocast_fec_symbols_rejected_total", s.SymbolsRejected)
	set("gocast_fec_symbol_pulls_sent_total", s.SymbolPullsSent)
	set("gocast_fec_decodes_total", s.FECDecodes)
	set("gocast_fec_decode_failures_total", s.FECDecodeFailures)
	n.reg.Gauge("gocast_churn_incarnation", "this node's current incarnation number").Set(int64(inc))
	// Overlay and membership occupancy.
	n.reg.Gauge("gocast_core_degree", "current overlay degree").Set(int64(degree))
	n.reg.Gauge("gocast_core_members", "current partial-view member count").Set(int64(members))
	// Store occupancy and activity.
	for k, v := range storeCtr {
		n.reg.Counter("gocast_store_"+k+"_total", "message store counter "+k).Set(v)
	}
	n.reg.Gauge("gocast_store_live_messages", "payloads currently buffered in the message store").Set(int64(storeLen))
	n.reg.Gauge("gocast_store_live_bytes", "payload bytes currently buffered in the message store").Set(storeBytes)
}

// statsView snapshots the registry's gocast_<group>_* counters and gauges
// as a flat map, stripping the group prefix and the counter _total suffix —
// the shape the per-group stats accessors have always returned. Histograms
// are omitted (scrape /metrics for those). Unlike the pre-registry
// implementations, the view stays available after Close/Kill, returning the
// final collected values instead of zeros.
func (n *Node) statsView(group string) map[string]int64 {
	prefix := "gocast_" + group + "_"
	out := map[string]int64{}
	for _, m := range n.reg.Gather() {
		if m.Type == obs.TypeHistogram || !strings.HasPrefix(m.Name, prefix) {
			continue
		}
		key := strings.TrimPrefix(m.Name, prefix)
		if m.Type == obs.TypeCounter {
			key = strings.TrimSuffix(key, "_total")
		}
		out[key] = m.Value
	}
	return out
}

// Registry returns the node's metrics registry (never nil). When
// NodeOptions.Registry was set, this is that shared registry.
func (n *Node) Registry() *obs.Registry { return n.reg }

// Trace returns the node's protocol event ring, or nil when tracing was
// disabled with a negative NodeOptions.TraceCapacity.
func (n *Node) Trace() *trace.Buffer { return n.tbuf }

// Status returns a point-in-time view of the node for /statusz-style
// surfacing. After Close/Kill it reports the last state collected before
// the stop, with Stopped set.
func (n *Node) Status() StatusSnapshot {
	n.collect()
	n.obsMu.Lock()
	defer n.obsMu.Unlock()
	st := n.lastStatus
	st.Overload = n.gov.level.load().String()
	st.Stopped = n.Stopped()
	return st
}

// Health reports nil while the node looks able to participate in the
// group: running, aware of a tree root, and — once it has ever held an
// overlay link — still connected to at least one neighbor. The error text
// becomes the /healthz failure body.
func (n *Node) Health() error {
	if n.Stopped() {
		return ErrStopped
	}
	if n.panicked.Load() {
		return fmt.Errorf("event loop recovered %d panic(s); node state may be inconsistent", n.loopPanics.Value())
	}
	if n.gov.level.load() == core.OverloadShedding {
		return errors.New("overloaded: shedding new publishes")
	}
	n.collect()
	n.obsMu.Lock()
	defer n.obsMu.Unlock()
	if n.lastStats.LinkAdds > 0 && n.lastStatus.Degree == 0 {
		return fmt.Errorf("overlay disconnected: no neighbors left (%d members known)", n.lastStatus.Members)
	}
	if n.coreN.Config().EnableTree && n.lastStatus.Root == core.None {
		return errors.New("no tree root known")
	}
	// A reassembly older than ReclaimAfter (half the store's MaxAge) has
	// outlived every repair mechanism's expected horizon: symbols stopped
	// arriving and the assembly is effectively stuck until the store GC
	// abandons it.
	if stuck := n.coreN.Config().ReclaimAfter; n.lastStatus.FECAssembling > 0 && n.oldestAsm > stuck {
		return fmt.Errorf("stuck FEC assembly: oldest of %d in-progress reassemblies is %v old (limit %v)",
			n.lastStatus.FECAssembling, n.oldestAsm, stuck)
	}
	return nil
}
