package live

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gocast/internal/core"
	"gocast/internal/metrics"
	"gocast/internal/wire"
)

// Transport counter names, visible in Stats snapshots. The redial counters
// are how soak tests (and operators) verify that a broken link was
// re-established by backoff rather than torn down.
const (
	CtrDials         = "tcp_dials"           // successful outbound connections
	CtrDialErrors    = "tcp_dial_errors"     // failed dial attempts
	CtrRedials       = "tcp_redials"         // successful dials that replaced a prior connection or retry
	CtrBackoffResets = "tcp_backoff_resets"  // backoff returned to its base after a successful redial
	CtrWriteErrors   = "tcp_write_errors"    // frame writes that failed (broken pipe, deadline)
	CtrFramesRequeue = "tcp_frames_requeued" // frames salvaged from a broken connection and resent
	CtrFramesDropped = "tcp_frames_dropped"  // reliable frames abandoned (peer declared down or queue overflow)
	CtrQueueOverflow = "tcp_queue_overflows" // times a peer queue saturated and the peer was dropped
	CtrEncodeErrors  = "tcp_encode_errors"   // frames that failed wire serialization
	CtrIdleReaped    = "tcp_idle_reaped"     // outbound connections reaped for inactivity
	CtrPeersFailed   = "tcp_peers_failed"    // peers reported down after redial attempts were exhausted
)

// TCPOptions tunes the transport's resilience behavior. The zero value is
// replaced field-by-field with the defaults documented below.
type TCPOptions struct {
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// WriteTimeout is the per-frame write deadline; a peer that stalls
	// longer than this has its connection broken and redialed so the
	// writer goroutine can never wedge forever (default 10s).
	WriteTimeout time.Duration
	// RedialAttempts is how many consecutive failed dials are tolerated
	// before the peer is reported to the FailureHandler (default 3;
	// negative disables redial entirely — first failure reports).
	RedialAttempts int
	// RedialBackoff is the initial redial backoff; each failed attempt
	// doubles it, jittered to [0.5x, 1.5x) (default 100ms).
	RedialBackoff time.Duration
	// RedialBackoffMax caps the exponential backoff (default 3s).
	RedialBackoffMax time.Duration
	// IdleTimeout reaps outbound connections with no traffic for this
	// long; reaping is silent (no failure report) and the next Send
	// redials (default 5m; negative disables reaping).
	IdleTimeout time.Duration
	// Logf receives rare diagnostic lines, e.g. the once-per-peer encode
	// error report (default log.Printf).
	Logf func(format string, args ...any)
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	switch {
	case o.RedialAttempts == 0:
		o.RedialAttempts = 3
	case o.RedialAttempts < 0:
		o.RedialAttempts = 0
	}
	if o.RedialBackoff <= 0 {
		o.RedialBackoff = 100 * time.Millisecond
	}
	if o.RedialBackoffMax <= 0 {
		o.RedialBackoffMax = 3 * time.Second
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 5 * time.Minute
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// TCPTransport carries reliable traffic over TCP connections (one per
// peer, dialed on demand, as the paper's pre-established connections
// between overlay neighbors) and datagrams over UDP on the same port
// number.
//
// The transport is resilient: a broken or stalled connection is redialed
// with exponential backoff, and frames queued (or caught mid-write) when
// the pipe broke are resent on the new connection. Only after
// RedialAttempts consecutive failed dials is the peer reported to the
// FailureHandler — so the protocol layer hears about persistent failures,
// not transient network blips.
type TCPTransport struct {
	id   core.NodeID
	ln   net.Listener
	udp  *net.UDPConn
	addr string
	opts TCPOptions

	counters *metrics.AtomicCounter

	mu         sync.Mutex
	conns      map[string]*peerConn
	inbound    map[net.Conn]bool
	handler    Handler
	failure    FailureHandler
	closed     bool
	encLogged  map[string]bool // peers whose encode errors were already logged
	wg         sync.WaitGroup
	stopReaper chan struct{}
}

var _ Transport = (*TCPTransport)(nil)

// peerConn is an outbound connection with a writer goroutine, so the
// node's event loop never blocks on the network. The queue survives
// redials: frames enqueued while the connection is down are delivered
// once it is re-established.
type peerConn struct {
	addr     string
	to       core.NodeID
	queue    chan []byte
	done     chan struct{}
	once     sync.Once
	conn     net.Conn     // guarded by the transport mutex
	lastUsed atomic.Int64 // unix nanos of the last Send toward this peer
}

func (pc *peerConn) stop() { pc.once.Do(func() { close(pc.done) }) }

const outboundQueue = 256

// errPeerStopped signals the writer loop that its peer was dropped or the
// transport closed.
var errPeerStopped = errors.New("live: peer stopped")

// NewTCPTransport listens on listenAddr (e.g. "127.0.0.1:0") for both TCP
// and UDP with default resilience options. id is stamped on outgoing
// frames.
func NewTCPTransport(id core.NodeID, listenAddr string) (*TCPTransport, error) {
	return NewTCPTransportWithOptions(id, listenAddr, TCPOptions{})
}

// NewTCPTransportWithOptions listens on listenAddr with explicit
// reconnect/deadline tuning.
func NewTCPTransportWithOptions(id core.NodeID, listenAddr string, opts TCPOptions) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("live: listen tcp: %w", err)
	}
	udpAddr, err := net.ResolveUDPAddr("udp", ln.Addr().String())
	if err != nil {
		ln.Close()
		return nil, err
	}
	udp, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("live: listen udp: %w", err)
	}
	t := &TCPTransport{
		id:         id,
		ln:         ln,
		udp:        udp,
		addr:       ln.Addr().String(),
		opts:       opts.withDefaults(),
		counters:   metrics.NewAtomicCounter(),
		conns:      make(map[string]*peerConn),
		inbound:    make(map[net.Conn]bool),
		encLogged:  make(map[string]bool),
		stopReaper: make(chan struct{}),
	}
	t.wg.Add(2)
	go t.acceptLoop()
	go t.udpLoop()
	if t.opts.IdleTimeout > 0 {
		t.wg.Add(1)
		go t.reapLoop()
	}
	return t, nil
}

// Addr returns the listening address.
func (t *TCPTransport) Addr() string { return t.addr }

// Stats returns a snapshot of the transport's counters (see the Ctr*
// constants for the names).
func (t *TCPTransport) Stats() map[string]int64 { return t.counters.Snapshot() }

// SetHandlers registers the inbound callbacks.
func (t *TCPTransport) SetHandlers(h Handler, f FailureHandler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
	t.failure = f
}

func (t *TCPTransport) handlers() (Handler, FailureHandler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.handler, t.failure
}

// encodeError counts a wire serialization failure and logs it once per
// peer (they indicate a bug or an oversized payload, not a network issue).
func (t *TCPTransport) encodeError(addr string, err error) {
	t.counters.Inc(CtrEncodeErrors, 1)
	t.mu.Lock()
	logged := t.encLogged[addr]
	if !logged {
		t.encLogged[addr] = true
	}
	t.mu.Unlock()
	if !logged {
		t.opts.Logf("live: node %d: dropping unencodable frame for %s: %v", t.id, addr, err)
	}
}

// Send queues a reliable frame toward addr, dialing if needed.
func (t *TCPTransport) Send(addr string, to core.NodeID, m core.Message) {
	buf, err := wire.Append(nil, t.id, m)
	if err != nil {
		t.encodeError(addr, err)
		return
	}
	pc := t.peer(addr, to)
	if pc == nil {
		return
	}
	pc.lastUsed.Store(time.Now().UnixNano())
	select {
	case <-pc.done:
	case pc.queue <- buf:
	default:
		// Peer writer saturated beyond the queue bound; treat like a
		// broken pipe so the protocol reacts instead of the caller
		// blocking. The queued frames are lost with the peer.
		t.counters.Inc(CtrQueueOverflow, 1)
		t.counters.Inc(CtrFramesDropped, int64(len(pc.queue))+1)
		t.dropPeer(pc, true)
	}
}

// SendDatagram sends one UDP packet; network errors and oversized frames
// are dropped silently, as UDP semantics dictate, but serialization
// failures are counted.
func (t *TCPTransport) SendDatagram(addr string, to core.NodeID, m core.Message) {
	buf, err := wire.Append(nil, t.id, m)
	if err != nil {
		t.encodeError(addr, err)
		return
	}
	if len(buf) > 60000 {
		return
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return
	}
	_, _ = t.udp.WriteToUDP(buf, ua)
}

// peer returns (creating if necessary) the outbound connection state.
func (t *TCPTransport) peer(addr string, to core.NodeID) *peerConn {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	if pc, ok := t.conns[addr]; ok {
		return pc
	}
	pc := &peerConn{
		addr:  addr,
		to:    to,
		queue: make(chan []byte, outboundQueue),
		done:  make(chan struct{}),
	}
	pc.lastUsed.Store(time.Now().UnixNano())
	t.conns[addr] = pc
	t.wg.Add(1)
	go t.writeLoop(pc)
	return pc
}

// writeLoop owns one peer's connection lifecycle: dial (with backoff
// across failures), drain the frame queue onto the connection, and on a
// broken pipe salvage the failed frame and redial. It exits when the peer
// is stopped or redial attempts are exhausted.
func (t *TCPTransport) writeLoop(pc *peerConn) {
	defer t.wg.Done()
	backoff := t.opts.RedialBackoff
	failures := 0
	hadConn := false
	var pending []byte // frame that failed mid-write, resent first
	for {
		conn, err := t.dialPeer(pc)
		if err != nil {
			if errors.Is(err, errPeerStopped) {
				return
			}
			t.counters.Inc(CtrDialErrors, 1)
			failures++
			if failures > t.opts.RedialAttempts {
				t.counters.Inc(CtrPeersFailed, 1)
				dropped := int64(len(pc.queue))
				if pending != nil {
					dropped++
				}
				if dropped > 0 {
					t.counters.Inc(CtrFramesDropped, dropped)
				}
				t.dropPeer(pc, true)
				return
			}
			if !t.pause(pc, withJitter(backoff)) {
				return
			}
			backoff *= 2
			if backoff > t.opts.RedialBackoffMax {
				backoff = t.opts.RedialBackoffMax
			}
			continue
		}
		t.counters.Inc(CtrDials, 1)
		if hadConn || failures > 0 {
			t.counters.Inc(CtrRedials, 1)
		}
		if failures > 0 {
			t.counters.Inc(CtrBackoffResets, 1)
		}
		failures = 0
		backoff = t.opts.RedialBackoff
		hadConn = true
		if !t.writeFrames(pc, conn, &pending) {
			return
		}
		// Connection broke; loop redials. Frames still queued (and the
		// salvaged pending frame) survive for the next connection. The
		// short pause keeps a flapping peer from inducing a dial hot-loop.
		if !t.pause(pc, withJitter(backoff)) {
			return
		}
	}
}

// dialPeer dials with the configured timeout, registers the connection,
// and starts its read loop. Inbound frames can arrive on outbound
// connections too.
func (t *TCPTransport) dialPeer(pc *peerConn) (net.Conn, error) {
	select {
	case <-pc.done:
		return nil, errPeerStopped
	default:
	}
	d := net.Dialer{Timeout: t.opts.DialTimeout}
	conn, err := d.Dial("tcp", pc.addr)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil, errPeerStopped
	}
	select {
	case <-pc.done:
		t.mu.Unlock()
		conn.Close()
		return nil, errPeerStopped
	default:
	}
	pc.conn = conn
	t.mu.Unlock()
	t.wg.Add(1)
	go t.readLoop(conn)
	return conn, nil
}

// writeFrames pumps queued frames onto conn until the peer stops (returns
// false) or a write fails (returns true to redial; the failed frame is
// left in *pending for resend).
func (t *TCPTransport) writeFrames(pc *peerConn, conn net.Conn, pending *[]byte) bool {
	for {
		buf := *pending
		if buf == nil {
			select {
			case <-pc.done:
				conn.Close()
				return false
			case buf = <-pc.queue:
			}
		}
		conn.SetWriteDeadline(time.Now().Add(t.opts.WriteTimeout))
		if _, err := conn.Write(buf); err != nil {
			// A partial write is fine to retry: the broken connection is
			// discarded wholesale, so the remote never sees a frame
			// spliced across connections.
			*pending = buf
			t.counters.Inc(CtrWriteErrors, 1)
			t.counters.Inc(CtrFramesRequeue, 1)
			conn.Close()
			t.mu.Lock()
			if pc.conn == conn {
				pc.conn = nil
			}
			t.mu.Unlock()
			return true
		}
		*pending = nil
	}
}

// pause sleeps d or until the peer stops; it reports whether to continue.
func (t *TCPTransport) pause(pc *peerConn, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-pc.done:
		return false
	case <-timer.C:
		return true
	}
}

// withJitter spreads d uniformly over [0.5d, 1.5d) so redial storms from
// many peers decorrelate.
func withJitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// dropPeer removes the connection and reports the failure once.
func (t *TCPTransport) dropPeer(pc *peerConn, notify bool) {
	t.mu.Lock()
	cur, ok := t.conns[pc.addr]
	if ok && cur == pc {
		delete(t.conns, pc.addr)
	}
	closed := t.closed
	fail := t.failure
	conn := pc.conn
	t.mu.Unlock()
	pc.stop()
	if conn != nil {
		conn.Close()
	}
	if ok && cur == pc && notify && !closed && fail != nil {
		fail(pc.to)
	}
}

// DropConnections abruptly closes every open TCP connection (outbound and
// inbound) without touching peer state — simulating a transient network
// reset for chaos tests. Queued and in-flight frames are resent after the
// automatic backoff redial; no failure is reported. It returns how many
// connections were cut.
func (t *TCPTransport) DropConnections() int {
	t.mu.Lock()
	var conns []net.Conn
	for _, pc := range t.conns {
		if pc.conn != nil {
			conns = append(conns, pc.conn)
		}
	}
	for c := range t.inbound {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return len(conns)
}

// reapLoop periodically stops outbound connections that have carried no
// Send for IdleTimeout. Reaping is silent: the peer is not reported down,
// and the next Send toward it simply redials.
func (t *TCPTransport) reapLoop() {
	defer t.wg.Done()
	period := t.opts.IdleTimeout / 4
	if period < time.Second {
		period = time.Second
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-t.stopReaper:
			return
		case <-ticker.C:
		}
		cutoff := time.Now().Add(-t.opts.IdleTimeout).UnixNano()
		t.mu.Lock()
		var idle []*peerConn
		for _, pc := range t.conns {
			if pc.lastUsed.Load() < cutoff && len(pc.queue) == 0 {
				idle = append(idle, pc)
			}
		}
		t.mu.Unlock()
		for _, pc := range idle {
			t.counters.Inc(CtrIdleReaped, 1)
			t.dropPeer(pc, false)
		}
	}
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCPTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return
	}
	t.inbound[conn] = true
	t.mu.Unlock()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	for {
		from, m, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		h, _ := t.handlers()
		if h != nil {
			h(from, m)
		}
	}
}

func (t *TCPTransport) udpLoop() {
	defer t.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, _, err := t.udp.ReadFromUDP(buf)
		if err != nil {
			return
		}
		if n < 4 {
			continue
		}
		from, m, err := wire.Decode(buf[4:n])
		if err != nil {
			continue
		}
		h, _ := t.handlers()
		if h != nil {
			h(from, m)
		}
	}
}

// Close shuts the listeners and all connections down and waits for the
// transport's goroutines to exit.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	type closing struct {
		pc   *peerConn
		conn net.Conn
	}
	conns := make([]closing, 0, len(t.conns))
	for _, pc := range t.conns {
		conns = append(conns, closing{pc: pc, conn: pc.conn})
	}
	t.conns = make(map[string]*peerConn)
	ins := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		ins = append(ins, c)
	}
	t.mu.Unlock()

	close(t.stopReaper)
	t.ln.Close()
	t.udp.Close()
	for _, c := range ins {
		c.Close()
	}
	for _, c := range conns {
		c.pc.stop()
		if c.conn != nil {
			c.conn.Close()
		}
	}
	t.wg.Wait()
	return nil
}
