package live

import (
	"fmt"
	"net"
	"sync"

	"gocast/internal/core"
	"gocast/internal/wire"
)

// TCPTransport carries reliable traffic over TCP connections (one per
// peer, dialed on demand, as the paper's pre-established connections
// between overlay neighbors) and datagrams over UDP on the same port
// number.
type TCPTransport struct {
	id   core.NodeID
	ln   net.Listener
	udp  *net.UDPConn
	addr string

	mu      sync.Mutex
	conns   map[string]*peerConn
	inbound map[net.Conn]bool
	handler Handler
	failure FailureHandler
	closed  bool
	wg      sync.WaitGroup
}

var _ Transport = (*TCPTransport)(nil)

// peerConn is an outbound connection with a writer goroutine, so the
// node's event loop never blocks on the network.
type peerConn struct {
	addr  string
	to    core.NodeID
	queue chan []byte
	done  chan struct{}
	once  sync.Once
	conn  net.Conn
}

func (pc *peerConn) stop() { pc.once.Do(func() { close(pc.done) }) }

const outboundQueue = 256

// NewTCPTransport listens on listenAddr (e.g. "127.0.0.1:0") for both TCP
// and UDP. id is stamped on outgoing frames.
func NewTCPTransport(id core.NodeID, listenAddr string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("live: listen tcp: %w", err)
	}
	udpAddr, err := net.ResolveUDPAddr("udp", ln.Addr().String())
	if err != nil {
		ln.Close()
		return nil, err
	}
	udp, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("live: listen udp: %w", err)
	}
	t := &TCPTransport{
		id:      id,
		ln:      ln,
		udp:     udp,
		addr:    ln.Addr().String(),
		conns:   make(map[string]*peerConn),
		inbound: make(map[net.Conn]bool),
	}
	t.wg.Add(2)
	go t.acceptLoop()
	go t.udpLoop()
	return t, nil
}

// Addr returns the listening address.
func (t *TCPTransport) Addr() string { return t.addr }

// SetHandlers registers the inbound callbacks.
func (t *TCPTransport) SetHandlers(h Handler, f FailureHandler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
	t.failure = f
}

func (t *TCPTransport) handlers() (Handler, FailureHandler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.handler, t.failure
}

// Send queues a reliable frame toward addr, dialing if needed.
func (t *TCPTransport) Send(addr string, to core.NodeID, m core.Message) {
	buf, err := wire.Append(nil, t.id, m)
	if err != nil {
		return
	}
	pc := t.peer(addr, to)
	if pc == nil {
		return
	}
	select {
	case <-pc.done:
	case pc.queue <- buf:
	default:
		// Peer writer saturated; treat like a broken pipe.
		t.dropPeer(pc, true)
	}
}

// SendDatagram sends one UDP packet; errors and oversized frames are
// dropped silently, as UDP semantics dictate.
func (t *TCPTransport) SendDatagram(addr string, to core.NodeID, m core.Message) {
	buf, err := wire.Append(nil, t.id, m)
	if err != nil || len(buf) > 60000 {
		return
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return
	}
	_, _ = t.udp.WriteToUDP(buf, ua)
}

// peer returns (creating if necessary) the outbound connection state.
func (t *TCPTransport) peer(addr string, to core.NodeID) *peerConn {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	if pc, ok := t.conns[addr]; ok {
		return pc
	}
	pc := &peerConn{
		addr:  addr,
		to:    to,
		queue: make(chan []byte, outboundQueue),
		done:  make(chan struct{}),
	}
	t.conns[addr] = pc
	t.wg.Add(1)
	go t.writeLoop(pc)
	return pc
}

func (t *TCPTransport) writeLoop(pc *peerConn) {
	defer t.wg.Done()
	conn, err := net.Dial("tcp", pc.addr)
	if err != nil {
		t.dropPeer(pc, true)
		return
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return
	}
	pc.conn = conn
	t.mu.Unlock()
	// Inbound frames can arrive on outbound connections too.
	t.wg.Add(1)
	go t.readLoop(conn)
	for {
		select {
		case <-pc.done:
			conn.Close()
			return
		case buf := <-pc.queue:
			if _, err := conn.Write(buf); err != nil {
				t.dropPeer(pc, true)
				return
			}
		}
	}
}

// dropPeer removes the connection and reports the failure once.
func (t *TCPTransport) dropPeer(pc *peerConn, notify bool) {
	t.mu.Lock()
	cur, ok := t.conns[pc.addr]
	if ok && cur == pc {
		delete(t.conns, pc.addr)
	}
	closed := t.closed
	fail := t.failure
	conn := pc.conn
	t.mu.Unlock()
	pc.stop()
	if conn != nil {
		conn.Close()
	}
	if ok && cur == pc && notify && !closed && fail != nil {
		fail(pc.to)
	}
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCPTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return
	}
	t.inbound[conn] = true
	t.mu.Unlock()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	for {
		from, m, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		h, _ := t.handlers()
		if h != nil {
			h(from, m)
		}
	}
}

func (t *TCPTransport) udpLoop() {
	defer t.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, _, err := t.udp.ReadFromUDP(buf)
		if err != nil {
			return
		}
		if n < 4 {
			continue
		}
		from, m, err := wire.Decode(buf[4:n])
		if err != nil {
			continue
		}
		h, _ := t.handlers()
		if h != nil {
			h(from, m)
		}
	}
}

// Close shuts the listeners and all connections down and waits for the
// transport's goroutines to exit.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	type closing struct {
		pc   *peerConn
		conn net.Conn
	}
	conns := make([]closing, 0, len(t.conns))
	for _, pc := range t.conns {
		conns = append(conns, closing{pc: pc, conn: pc.conn})
	}
	t.conns = make(map[string]*peerConn)
	ins := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		ins = append(ins, c)
	}
	t.mu.Unlock()

	t.ln.Close()
	t.udp.Close()
	for _, c := range ins {
		c.Close()
	}
	for _, c := range conns {
		c.pc.stop()
		if c.conn != nil {
			c.conn.Close()
		}
	}
	t.wg.Wait()
	return nil
}
