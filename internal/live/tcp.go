package live

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gocast/internal/core"
	"gocast/internal/metrics"
	"gocast/internal/wire"
)

// Transport counter names, visible in Stats snapshots. The redial counters
// are how soak tests (and operators) verify that a broken link was
// re-established by backoff rather than torn down.
const (
	CtrDials         = "tcp_dials"           // successful outbound connections
	CtrDialErrors    = "tcp_dial_errors"     // failed dial attempts
	CtrRedials       = "tcp_redials"         // successful dials that replaced a prior connection or retry
	CtrBackoffResets = "tcp_backoff_resets"  // backoff returned to its base after a successful redial
	CtrWriteErrors   = "tcp_write_errors"    // frame writes that failed (broken pipe, deadline)
	CtrFramesRequeue = "tcp_frames_requeued" // frames salvaged from a broken connection and resent
	CtrFramesDropped = "tcp_frames_dropped"  // reliable frames abandoned, all classes (shed, peer down, overflow)
	CtrQueueOverflow = "tcp_queue_overflows" // times the Critical ring hit its hard cap and the peer was dropped
	CtrEncodeErrors  = "tcp_encode_errors"   // frames that failed wire serialization
	CtrIdleReaped    = "tcp_idle_reaped"     // outbound connections reaped for inactivity
	CtrPeersFailed   = "tcp_peers_failed"    // peers reported down after redial attempts were exhausted

	// Per-class drop attribution and flow control (overload protection).
	CtrDroppedCritical   = "tcp_frames_dropped_critical"   // Critical frames lost (peer drop or hard-cap overflow)
	CtrDroppedRepair     = "tcp_frames_dropped_repair"     // Repair frames shed or lost
	CtrDroppedBackground = "tcp_frames_dropped_background" // Background frames shed or lost
	CtrPeerPauses        = "tcp_peer_pauses"               // peers marked slow (Background/Repair paused)
	CtrPeerResumes       = "tcp_peer_resumes"              // slow peers recovered
)

// ctrDroppedByClass maps a core.Class to its drop-attribution counter.
var ctrDroppedByClass = [core.NumClasses]string{
	core.ClassCritical:   CtrDroppedCritical,
	core.ClassRepair:     CtrDroppedRepair,
	core.ClassBackground: CtrDroppedBackground,
}

// TCPOptions tunes the transport's resilience behavior. The zero value is
// replaced field-by-field with the defaults documented below.
type TCPOptions struct {
	// DialTimeout bounds each connection attempt (default 5s).
	DialTimeout time.Duration
	// WriteTimeout is the per-frame write deadline; a peer that stalls
	// longer than this has its connection broken and redialed so the
	// writer goroutine can never wedge forever (default 10s).
	WriteTimeout time.Duration
	// RedialAttempts is how many consecutive failed dials are tolerated
	// before the peer is reported to the FailureHandler (default 3;
	// negative disables redial entirely — first failure reports).
	RedialAttempts int
	// RedialBackoff is the initial redial backoff; each failed attempt
	// doubles it, jittered to [0.5x, 1.5x) (default 100ms).
	RedialBackoff time.Duration
	// RedialBackoffMax caps the exponential backoff (default 3s).
	RedialBackoffMax time.Duration
	// IdleTimeout reaps outbound connections with no traffic for this
	// long; reaping is silent (no failure report) and the next Send
	// redials (default 5m; negative disables reaping).
	IdleTimeout time.Duration
	// Logf receives rare diagnostic lines, e.g. the once-per-peer encode
	// error report (default log.Printf).
	Logf func(format string, args ...any)

	// QueueCritical is the per-peer Critical-class ring's soft cap
	// (default 256). The ring may grow past it up to QueueCriticalHard
	// while the overload governor reacts; occupancy beyond the soft cap
	// reads as pressure > 1.0.
	QueueCritical int
	// QueueCriticalHard is the Critical ring's hard cap (default
	// 4*QueueCritical). Only when it is exceeded is the peer declared
	// overflowed and dropped — the pre-classing behavior, now reserved
	// for a truly wedged peer.
	QueueCriticalHard int
	// QueueRepair caps the per-peer Repair ring (default 128); overflow
	// sheds the frame, not the peer (gossip re-announces and anti-entropy
	// sync recover the content later).
	QueueRepair int
	// QueueBackground caps the per-peer Background ring (default 64);
	// overflow sheds the frame.
	QueueBackground int
	// SlowWriteThreshold marks a peer slow when its per-frame write
	// latency EWMA exceeds it; a slow peer has Background traffic paused
	// and Repair traffic halved until the EWMA falls below half the
	// threshold (default 200ms; negative disables flow control).
	SlowWriteThreshold time.Duration
	// ShedPolicy mirrors OverloadOptions.ShedPolicy: "priority" (default)
	// classes frames as above; "off" sends every class through the
	// Critical ring with the soft cap as its hard cap, reproducing the
	// single-queue pre-classing behavior.
	ShedPolicy string
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 10 * time.Second
	}
	switch {
	case o.RedialAttempts == 0:
		o.RedialAttempts = 3
	case o.RedialAttempts < 0:
		o.RedialAttempts = 0
	}
	if o.RedialBackoff <= 0 {
		o.RedialBackoff = 100 * time.Millisecond
	}
	if o.RedialBackoffMax <= 0 {
		o.RedialBackoffMax = 3 * time.Second
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 5 * time.Minute
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	if o.QueueCritical <= 0 {
		o.QueueCritical = 256
	}
	if o.QueueCriticalHard <= 0 {
		o.QueueCriticalHard = 4 * o.QueueCritical
	}
	if o.QueueCriticalHard < o.QueueCritical {
		o.QueueCriticalHard = o.QueueCritical
	}
	if o.QueueRepair <= 0 {
		o.QueueRepair = 128
	}
	if o.QueueBackground <= 0 {
		o.QueueBackground = 64
	}
	if o.SlowWriteThreshold == 0 {
		o.SlowWriteThreshold = 200 * time.Millisecond
	}
	if o.ShedPolicy != "off" {
		o.ShedPolicy = "priority"
	}
	if o.ShedPolicy == "off" {
		// Single-queue compatibility: everything Critical, no elastic
		// headroom beyond the soft cap.
		o.QueueCriticalHard = o.QueueCritical
	}
	return o
}

// TCPTransport carries reliable traffic over TCP connections (one per
// peer, dialed on demand, as the paper's pre-established connections
// between overlay neighbors) and datagrams over UDP on the same port
// number.
//
// The transport is resilient: a broken or stalled connection is redialed
// with exponential backoff, and frames queued (or caught mid-write) when
// the pipe broke are resent on the new connection. Only after
// RedialAttempts consecutive failed dials is the peer reported to the
// FailureHandler — so the protocol layer hears about persistent failures,
// not transient network blips.
type TCPTransport struct {
	id   core.NodeID
	ln   net.Listener
	udp  *net.UDPConn
	addr string
	opts TCPOptions

	counters *metrics.AtomicCounter

	// lastPressure rate-limits pressure-handler kicks (unix nanos).
	lastPressure atomic.Int64

	mu         sync.Mutex
	conns      map[string]*peerConn
	inbound    map[net.Conn]bool
	handler    Handler
	failure    FailureHandler
	pressureH  func()
	closed     bool
	encLogged  map[string]bool // peers whose encode errors were already logged
	wg         sync.WaitGroup
	stopReaper chan struct{}
}

var _ Transport = (*TCPTransport)(nil)

// frameRing is a circular buffer of encoded frames that grows lazily up to
// a fixed capacity, tracking its queued byte total.
type frameRing struct {
	buf   [][]byte
	head  int
	n     int
	cap   int
	bytes int64
}

func (r *frameRing) push(b []byte) bool {
	if r.n >= r.cap {
		return false
	}
	if r.n == len(r.buf) {
		grown := len(r.buf) * 2
		if grown < 16 {
			grown = 16
		}
		if grown > r.cap {
			grown = r.cap
		}
		nb := make([][]byte, grown)
		for i := 0; i < r.n; i++ {
			nb[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf = nb
		r.head = 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = b
	r.n++
	r.bytes += int64(len(b))
	return true
}

func (r *frameRing) pop() ([]byte, bool) {
	if r.n == 0 {
		return nil, false
	}
	b := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	r.bytes -= int64(len(b))
	return b, true
}

// enqResult is the outcome of admitting a frame to a peer's queue.
type enqResult int8

const (
	enqOK       enqResult = iota
	enqShed               // frame dropped, peer survives
	enqOverflow           // Critical hard cap exceeded: peer must be dropped
	enqStopped            // peer already stopped
)

// peerConn is an outbound connection with a writer goroutine, so the
// node's event loop never blocks on the network. Frames are queued in one
// ring per admission class, drained Critical first; the rings survive
// redials, so frames enqueued while the connection is down are delivered
// once it is re-established.
type peerConn struct {
	addr     string
	to       core.NodeID
	done     chan struct{}
	once     sync.Once
	conn     net.Conn     // guarded by the transport mutex
	lastUsed atomic.Int64 // unix nanos of the last Send toward this peer

	qmu   sync.Mutex
	rings [core.NumClasses]frameRing
	wake  chan struct{} // carries at most one token; writer drains per token

	// Flow control: a peer whose per-frame write latency EWMA exceeds
	// SlowWriteThreshold is "slow" — Background enqueues pause and Repair
	// halves — until the EWMA falls below half the threshold.
	slow   atomic.Bool
	ewmaNs atomic.Int64
}

func (pc *peerConn) stop() { pc.once.Do(func() { close(pc.done) }) }

// enqueue admits one encoded frame under class cls, returning the outcome
// and (on success) the Critical ring depth for the caller's watermark
// check. The Critical ring's cap is the hard cap; soft-cap policy lives in
// the caller.
func (pc *peerConn) enqueue(cls core.Class, buf []byte) (res enqResult, critDepth int) {
	select {
	case <-pc.done:
		return enqStopped, 0
	default:
	}
	pc.qmu.Lock()
	r := &pc.rings[cls]
	switch cls {
	case core.ClassBackground:
		if pc.slow.Load() || r.n >= r.cap {
			pc.qmu.Unlock()
			return enqShed, 0
		}
	case core.ClassRepair:
		if r.n >= r.cap || (pc.slow.Load() && r.n >= r.cap/2) {
			pc.qmu.Unlock()
			return enqShed, 0
		}
	}
	if !r.push(buf) {
		pc.qmu.Unlock()
		if cls == core.ClassCritical {
			return enqOverflow, 0
		}
		return enqShed, 0
	}
	critDepth = pc.rings[core.ClassCritical].n
	pc.qmu.Unlock()
	select {
	case pc.wake <- struct{}{}:
	default:
	}
	return enqOK, critDepth
}

// popFrame dequeues the highest-priority queued frame.
func (pc *peerConn) popFrame() ([]byte, bool) {
	pc.qmu.Lock()
	defer pc.qmu.Unlock()
	for c := range pc.rings {
		if b, ok := pc.rings[c].pop(); ok {
			return b, true
		}
	}
	return nil, false
}

// queuedPerClass snapshots the per-class queue depths (drop accounting,
// idle reaping).
func (pc *peerConn) queuedPerClass() (out [core.NumClasses]int64, total int64) {
	pc.qmu.Lock()
	defer pc.qmu.Unlock()
	for c := range pc.rings {
		out[c] = int64(pc.rings[c].n)
		total += out[c]
	}
	return out, total
}

// pressure reports this peer's ring occupancy relative to the soft caps.
func (pc *peerConn) pressure(critSoft, repairCap, bgCap int) (crit, worst float64, bytes int64) {
	pc.qmu.Lock()
	defer pc.qmu.Unlock()
	crit = float64(pc.rings[core.ClassCritical].n) / float64(critSoft)
	worst = crit
	if f := float64(pc.rings[core.ClassRepair].n) / float64(repairCap); f > worst {
		worst = f
	}
	if f := float64(pc.rings[core.ClassBackground].n) / float64(bgCap); f > worst {
		worst = f
	}
	for c := range pc.rings {
		bytes += pc.rings[c].bytes
	}
	return crit, worst, bytes
}

// errPeerStopped signals the writer loop that its peer was dropped or the
// transport closed.
var errPeerStopped = errors.New("live: peer stopped")

// NewTCPTransport listens on listenAddr (e.g. "127.0.0.1:0") for both TCP
// and UDP with default resilience options. id is stamped on outgoing
// frames.
func NewTCPTransport(id core.NodeID, listenAddr string) (*TCPTransport, error) {
	return NewTCPTransportWithOptions(id, listenAddr, TCPOptions{})
}

// NewTCPTransportWithOptions listens on listenAddr with explicit
// reconnect/deadline tuning.
func NewTCPTransportWithOptions(id core.NodeID, listenAddr string, opts TCPOptions) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("live: listen tcp: %w", err)
	}
	udpAddr, err := net.ResolveUDPAddr("udp", ln.Addr().String())
	if err != nil {
		ln.Close()
		return nil, err
	}
	udp, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		ln.Close()
		return nil, fmt.Errorf("live: listen udp: %w", err)
	}
	t := &TCPTransport{
		id:         id,
		ln:         ln,
		udp:        udp,
		addr:       ln.Addr().String(),
		opts:       opts.withDefaults(),
		counters:   metrics.NewAtomicCounter(),
		conns:      make(map[string]*peerConn),
		inbound:    make(map[net.Conn]bool),
		encLogged:  make(map[string]bool),
		stopReaper: make(chan struct{}),
	}
	t.wg.Add(2)
	go t.acceptLoop()
	go t.udpLoop()
	if t.opts.IdleTimeout > 0 {
		t.wg.Add(1)
		go t.reapLoop()
	}
	return t, nil
}

// Addr returns the listening address.
func (t *TCPTransport) Addr() string { return t.addr }

// Stats returns a snapshot of the transport's counters (see the Ctr*
// constants for the names).
func (t *TCPTransport) Stats() map[string]int64 { return t.counters.Snapshot() }

// SetHandlers registers the inbound callbacks.
func (t *TCPTransport) SetHandlers(h Handler, f FailureHandler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
	t.failure = f
}

func (t *TCPTransport) handlers() (Handler, FailureHandler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.handler, t.failure
}

// encodeError counts a wire serialization failure and logs it once per
// peer (they indicate a bug or an oversized payload, not a network issue).
func (t *TCPTransport) encodeError(addr string, err error) {
	t.counters.Inc(CtrEncodeErrors, 1)
	t.mu.Lock()
	logged := t.encLogged[addr]
	if !logged {
		t.encLogged[addr] = true
	}
	t.mu.Unlock()
	if !logged {
		t.opts.Logf("live: node %d: dropping unencodable frame for %s: %v", t.id, addr, err)
	}
}

// Send queues a reliable frame toward addr, dialing if needed. The frame
// is admitted under its message class: a full Background or Repair ring
// (or a slow peer) sheds the frame — the gossip/sync machinery recovers
// the content later — while Critical frames ride the elastic ring and
// only a hard-cap overflow (a truly wedged peer) drops the peer.
func (t *TCPTransport) Send(addr string, to core.NodeID, m core.Message) {
	cls := core.ClassOf(m)
	if t.opts.ShedPolicy == "off" {
		cls = core.ClassCritical
	}
	buf, err := wire.Append(nil, t.id, m)
	if err != nil {
		t.encodeError(addr, err)
		return
	}
	pc := t.peer(addr, to)
	if pc == nil {
		return
	}
	pc.lastUsed.Store(time.Now().UnixNano())
	res, critDepth := pc.enqueue(cls, buf)
	switch res {
	case enqOK:
		// Crossing half the Critical soft cap kicks the overload governor
		// so Shedding can engage before the ring saturates. Past the soft
		// cap the ring is racing toward its hard cap — a flood can cover
		// that distance inside the rate-limit window, so escalation
		// notifies unconditionally.
		if cls == core.ClassCritical && critDepth*2 >= t.opts.QueueCritical {
			t.notifyPressure(critDepth >= t.opts.QueueCritical)
		}
	case enqShed:
		t.counters.Inc(CtrFramesDropped, 1)
		t.counters.Inc(ctrDroppedByClass[cls], 1)
	case enqOverflow:
		// Critical hard cap exceeded; treat like a broken pipe so the
		// protocol reacts instead of the caller blocking. The queued
		// frames are lost with the peer.
		t.counters.Inc(CtrQueueOverflow, 1)
		t.counters.Inc(CtrFramesDropped, 1)
		t.counters.Inc(ctrDroppedByClass[cls], 1)
		t.countQueuedDrops(pc)
		t.dropPeer(pc, true)
	}
}

// countQueuedDrops attributes every frame still queued on pc to the drop
// counters (called when the peer is being abandoned).
func (t *TCPTransport) countQueuedDrops(pc *peerConn) {
	perClass, total := pc.queuedPerClass()
	if total == 0 {
		return
	}
	t.counters.Inc(CtrFramesDropped, total)
	for c, n := range perClass {
		if n > 0 {
			t.counters.Inc(ctrDroppedByClass[c], n)
		}
	}
}

// notifyPressure invokes the registered pressure handler, rate-limited so
// a hot Send path cannot spam the governor; force bypasses the rate limit
// for escalations that must reach the governor before the next window.
func (t *TCPTransport) notifyPressure(force bool) {
	now := time.Now().UnixNano()
	last := t.lastPressure.Load()
	if !force && (now-last < int64(10*time.Millisecond) || !t.lastPressure.CompareAndSwap(last, now)) {
		return
	}
	t.mu.Lock()
	h := t.pressureH
	t.mu.Unlock()
	if h != nil {
		h()
	}
}

// SetPressureHandler registers a callback kicked (rate-limited) whenever a
// peer's Critical ring crosses half its soft cap. The live node uses it to
// run an immediate overload evaluation.
func (t *TCPTransport) SetPressureHandler(fn func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pressureH = fn
}

// QueuePressure reports the worst per-peer ring occupancy and the total
// queued bytes across peers, for the overload governor.
func (t *TCPTransport) QueuePressure() QueuePressure {
	t.mu.Lock()
	pcs := make([]*peerConn, 0, len(t.conns))
	for _, pc := range t.conns {
		pcs = append(pcs, pc)
	}
	t.mu.Unlock()
	var out QueuePressure
	for _, pc := range pcs {
		crit, worst, bytes := pc.pressure(t.opts.QueueCritical, t.opts.QueueRepair, t.opts.QueueBackground)
		if crit > out.Critical {
			out.Critical = crit
		}
		if worst > out.Worst {
			out.Worst = worst
		}
		out.QueuedBytes += bytes
	}
	return out
}

// SendDatagram sends one UDP packet; network errors and oversized frames
// are dropped silently, as UDP semantics dictate, but serialization
// failures are counted.
func (t *TCPTransport) SendDatagram(addr string, to core.NodeID, m core.Message) {
	buf, err := wire.Append(nil, t.id, m)
	if err != nil {
		t.encodeError(addr, err)
		return
	}
	if len(buf) > 60000 {
		return
	}
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return
	}
	_, _ = t.udp.WriteToUDP(buf, ua)
}

// peer returns (creating if necessary) the outbound connection state.
func (t *TCPTransport) peer(addr string, to core.NodeID) *peerConn {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	if pc, ok := t.conns[addr]; ok {
		return pc
	}
	pc := &peerConn{
		addr: addr,
		to:   to,
		done: make(chan struct{}),
		wake: make(chan struct{}, 1),
	}
	pc.rings[core.ClassCritical].cap = t.opts.QueueCriticalHard
	pc.rings[core.ClassRepair].cap = t.opts.QueueRepair
	pc.rings[core.ClassBackground].cap = t.opts.QueueBackground
	pc.lastUsed.Store(time.Now().UnixNano())
	t.conns[addr] = pc
	t.wg.Add(1)
	go t.writeLoop(pc)
	return pc
}

// writeLoop owns one peer's connection lifecycle: dial (with backoff
// across failures), drain the frame queue onto the connection, and on a
// broken pipe salvage the failed frame and redial. It exits when the peer
// is stopped or redial attempts are exhausted.
func (t *TCPTransport) writeLoop(pc *peerConn) {
	defer t.wg.Done()
	backoff := t.opts.RedialBackoff
	failures := 0
	hadConn := false
	var pending []byte // frame that failed mid-write, resent first
	for {
		conn, err := t.dialPeer(pc)
		if err != nil {
			if errors.Is(err, errPeerStopped) {
				return
			}
			t.counters.Inc(CtrDialErrors, 1)
			failures++
			if failures > t.opts.RedialAttempts {
				t.counters.Inc(CtrPeersFailed, 1)
				t.countQueuedDrops(pc)
				if pending != nil {
					// The salvaged in-flight frame is lost with the peer;
					// its class was erased when it left the ring, so it
					// counts in the total only.
					t.counters.Inc(CtrFramesDropped, 1)
				}
				t.dropPeer(pc, true)
				return
			}
			if !t.pause(pc, withJitter(backoff)) {
				return
			}
			backoff *= 2
			if backoff > t.opts.RedialBackoffMax {
				backoff = t.opts.RedialBackoffMax
			}
			continue
		}
		t.counters.Inc(CtrDials, 1)
		if hadConn || failures > 0 {
			t.counters.Inc(CtrRedials, 1)
		}
		if failures > 0 {
			t.counters.Inc(CtrBackoffResets, 1)
		}
		failures = 0
		backoff = t.opts.RedialBackoff
		hadConn = true
		if !t.writeFrames(pc, conn, &pending) {
			return
		}
		// Connection broke; loop redials. Frames still queued (and the
		// salvaged pending frame) survive for the next connection. The
		// short pause keeps a flapping peer from inducing a dial hot-loop.
		if !t.pause(pc, withJitter(backoff)) {
			return
		}
	}
}

// dialPeer dials with the configured timeout, registers the connection,
// and starts its read loop. Inbound frames can arrive on outbound
// connections too.
func (t *TCPTransport) dialPeer(pc *peerConn) (net.Conn, error) {
	select {
	case <-pc.done:
		return nil, errPeerStopped
	default:
	}
	d := net.Dialer{Timeout: t.opts.DialTimeout}
	conn, err := d.Dial("tcp", pc.addr)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil, errPeerStopped
	}
	select {
	case <-pc.done:
		t.mu.Unlock()
		conn.Close()
		return nil, errPeerStopped
	default:
	}
	pc.conn = conn
	t.mu.Unlock()
	t.wg.Add(1)
	go t.readLoop(conn)
	return conn, nil
}

// writeFrames pumps queued frames onto conn, Critical first, until the
// peer stops (returns false) or a write fails (returns true to redial; the
// failed frame is left in *pending for resend). Each write's latency feeds
// the peer's flow-control EWMA.
func (t *TCPTransport) writeFrames(pc *peerConn, conn net.Conn, pending *[]byte) bool {
	for {
		buf := *pending
		for buf == nil {
			var ok bool
			if buf, ok = pc.popFrame(); ok {
				break
			}
			select {
			case <-pc.done:
				conn.Close()
				return false
			case <-pc.wake:
			}
		}
		start := time.Now()
		conn.SetWriteDeadline(start.Add(t.opts.WriteTimeout))
		if _, err := conn.Write(buf); err != nil {
			// A partial write is fine to retry: the broken connection is
			// discarded wholesale, so the remote never sees a frame
			// spliced across connections.
			*pending = buf
			t.counters.Inc(CtrWriteErrors, 1)
			t.counters.Inc(CtrFramesRequeue, 1)
			conn.Close()
			t.mu.Lock()
			if pc.conn == conn {
				pc.conn = nil
			}
			t.mu.Unlock()
			return true
		}
		*pending = nil
		t.noteWriteLatency(pc, time.Since(start))
	}
}

// noteWriteLatency feeds one frame's write duration into the peer's EWMA
// and flips its slow flag with hysteresis: pause above the threshold,
// resume below half of it.
func (t *TCPTransport) noteWriteLatency(pc *peerConn, d time.Duration) {
	thresh := t.opts.SlowWriteThreshold
	if thresh <= 0 {
		return
	}
	old := pc.ewmaNs.Load()
	ewma := old + (int64(d)-old)/8
	pc.ewmaNs.Store(ewma)
	switch {
	case !pc.slow.Load() && ewma > int64(thresh):
		pc.slow.Store(true)
		t.counters.Inc(CtrPeerPauses, 1)
		t.notifyPressure(false)
	case pc.slow.Load() && ewma < int64(thresh)/2:
		pc.slow.Store(false)
		t.counters.Inc(CtrPeerResumes, 1)
	}
}

// pause sleeps d or until the peer stops; it reports whether to continue.
func (t *TCPTransport) pause(pc *peerConn, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-pc.done:
		return false
	case <-timer.C:
		return true
	}
}

// withJitter spreads d uniformly over [0.5d, 1.5d) so redial storms from
// many peers decorrelate.
func withJitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// dropPeer removes the connection and reports the failure once.
func (t *TCPTransport) dropPeer(pc *peerConn, notify bool) {
	t.mu.Lock()
	cur, ok := t.conns[pc.addr]
	if ok && cur == pc {
		delete(t.conns, pc.addr)
	}
	closed := t.closed
	fail := t.failure
	conn := pc.conn
	t.mu.Unlock()
	pc.stop()
	if conn != nil {
		conn.Close()
	}
	if ok && cur == pc && notify && !closed && fail != nil {
		fail(pc.to)
	}
}

// DropConnections abruptly closes every open TCP connection (outbound and
// inbound) without touching peer state — simulating a transient network
// reset for chaos tests. Queued and in-flight frames are resent after the
// automatic backoff redial; no failure is reported. It returns how many
// connections were cut.
func (t *TCPTransport) DropConnections() int {
	t.mu.Lock()
	var conns []net.Conn
	for _, pc := range t.conns {
		if pc.conn != nil {
			conns = append(conns, pc.conn)
		}
	}
	for c := range t.inbound {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return len(conns)
}

// reapLoop periodically stops outbound connections that have carried no
// Send for IdleTimeout. Reaping is silent: the peer is not reported down,
// and the next Send toward it simply redials.
func (t *TCPTransport) reapLoop() {
	defer t.wg.Done()
	period := t.opts.IdleTimeout / 4
	if period < time.Second {
		period = time.Second
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-t.stopReaper:
			return
		case <-ticker.C:
		}
		cutoff := time.Now().Add(-t.opts.IdleTimeout).UnixNano()
		t.mu.Lock()
		var idle []*peerConn
		for _, pc := range t.conns {
			if _, queued := pc.queuedPerClass(); pc.lastUsed.Load() < cutoff && queued == 0 {
				idle = append(idle, pc)
			}
		}
		t.mu.Unlock()
		for _, pc := range idle {
			t.counters.Inc(CtrIdleReaped, 1)
			t.dropPeer(pc, false)
		}
	}
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCPTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return
	}
	t.inbound[conn] = true
	t.mu.Unlock()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	for {
		from, m, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		h, _ := t.handlers()
		if h != nil {
			h(from, m)
		}
	}
}

func (t *TCPTransport) udpLoop() {
	defer t.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, _, err := t.udp.ReadFromUDP(buf)
		if err != nil {
			return
		}
		if n < 4 {
			continue
		}
		from, m, err := wire.Decode(buf[4:n])
		if err != nil {
			continue
		}
		h, _ := t.handlers()
		if h != nil {
			h(from, m)
		}
	}
}

// Close shuts the listeners and all connections down and waits for the
// transport's goroutines to exit.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	type closing struct {
		pc   *peerConn
		conn net.Conn
	}
	conns := make([]closing, 0, len(t.conns))
	for _, pc := range t.conns {
		conns = append(conns, closing{pc: pc, conn: pc.conn})
	}
	t.conns = make(map[string]*peerConn)
	ins := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		ins = append(ins, c)
	}
	t.mu.Unlock()

	close(t.stopReaper)
	t.ln.Close()
	t.udp.Close()
	for _, c := range ins {
		c.Close()
	}
	for _, c := range conns {
		c.pc.stop()
		if c.conn != nil {
			c.conn.Close()
		}
	}
	t.wg.Wait()
	return nil
}
