package live

import (
	"sync"
	"testing"
	"time"

	"gocast/internal/core"
)

func TestMemNetworkDatagramLoss(t *testing.T) {
	net := NewMemNetwork(0, 1)
	net.SetDatagramLoss(1.0) // drop everything
	a := net.Endpoint("a")
	a.SetFrom(1)
	b := net.Endpoint("b")
	b.SetFrom(2)
	var (
		mu  sync.Mutex
		got int
	)
	b.SetHandlers(func(core.NodeID, core.Message) {
		mu.Lock()
		got++
		mu.Unlock()
	}, nil)
	a.SetHandlers(func(core.NodeID, core.Message) {}, nil)
	for i := 0; i < 20; i++ {
		a.SendDatagram("b", 2, &core.TreeParent{})
	}
	// Reliable sends are unaffected by datagram loss.
	a.Send("b", 2, &core.TreeParent{On: true})
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := got
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("reliable send lost (got %d)", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if got != 1 {
		t.Fatalf("datagrams leaked through full loss: %d deliveries", got)
	}
}

func TestMemNetworkPartitionAndHeal(t *testing.T) {
	net := NewMemNetwork(time.Millisecond, 2)
	a := net.Endpoint("a")
	a.SetFrom(1)
	b := net.Endpoint("b")
	b.SetFrom(2)
	var (
		mu  sync.Mutex
		got int
	)
	b.SetHandlers(func(core.NodeID, core.Message) {
		mu.Lock()
		got++
		mu.Unlock()
	}, nil)
	failures := make(chan core.NodeID, 8)
	a.SetHandlers(func(core.NodeID, core.Message) {}, func(peer core.NodeID) {
		failures <- peer
	})

	net.Partition("b")
	a.Send("b", 2, &core.TreeParent{})
	select {
	case <-failures:
	case <-time.After(5 * time.Second):
		t.Fatalf("partitioned target did not trigger failure")
	}

	net.Heal(b)
	a.Send("b", 2, &core.TreeParent{})
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := got
		mu.Unlock()
		if n == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("healed endpoint unreachable")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestMemNetworkCustomLatency(t *testing.T) {
	net := NewMemNetwork(0, 3)
	net.SetLatency(func(from, to string) time.Duration { return 80 * time.Millisecond })
	a := net.Endpoint("a")
	a.SetFrom(1)
	b := net.Endpoint("b")
	b.SetFrom(2)
	done := make(chan time.Time, 1)
	b.SetHandlers(func(core.NodeID, core.Message) { done <- time.Now() }, nil)
	a.SetHandlers(func(core.NodeID, core.Message) {}, nil)
	start := time.Now()
	a.Send("b", 2, &core.TreeParent{})
	select {
	case at := <-done:
		if d := at.Sub(start); d < 70*time.Millisecond {
			t.Fatalf("latency function ignored: delivered after %v", d)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("message never delivered")
	}
}

func TestClosedEndpointSendsNothing(t *testing.T) {
	net := NewMemNetwork(0, 4)
	a := net.Endpoint("a")
	a.SetFrom(1)
	b := net.Endpoint("b")
	b.SetFrom(2)
	var (
		mu  sync.Mutex
		got int
	)
	b.SetHandlers(func(core.NodeID, core.Message) {
		mu.Lock()
		got++
		mu.Unlock()
	}, nil)
	a.Close()
	a.Send("b", 2, &core.TreeParent{})
	time.Sleep(100 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if got != 0 {
		t.Fatalf("closed endpoint delivered %d messages", got)
	}
}
