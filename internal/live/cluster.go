package live

import (
	"fmt"
	"time"

	"gocast/internal/core"
)

// ClusterOptions configures an in-process cluster over a MemNetwork.
type ClusterOptions struct {
	// Nodes is the cluster size.
	Nodes int
	// Config is the shared protocol configuration. FastConfig is a good
	// starting point for in-process use.
	Config core.Config
	// Latency is the simulated base network latency (default 2 ms).
	Latency time.Duration
	// Seed drives randomness.
	Seed int64
	// OnDeliver, if set, observes every delivery as (node index, message,
	// payload). Called on node event loops: do not block.
	OnDeliver func(node int, id core.MessageID, payload []byte)
	// Faults, if set, wraps every endpoint in the controller's fault
	// injection layer (drops, delays, partitions, ...). Endpoint
	// addresses are "mem-<index>", which is what FaultPhase rules match
	// against.
	Faults *FaultController
}

// Cluster is a group of live nodes connected by an in-memory network —
// the quickest way to run a real (wall-clock) GoCast group inside one
// process.
type Cluster struct {
	Net   *MemNetwork
	nodes []*Node
}

// FastConfig returns protocol timing scaled for in-process clusters:
// the same structure as the paper's parameters with much shorter periods,
// so a cluster converges in seconds of wall time.
func FastConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.GossipPeriod = 20 * time.Millisecond
	cfg.MaintainPeriod = 20 * time.Millisecond
	cfg.HeartbeatPeriod = time.Second
	cfg.NeighborTimeout = time.Second
	cfg.RootTimeout = 3 * time.Second
	cfg.PullRetry = 200 * time.Millisecond
	cfg.ReclaimAfter = 30 * time.Second
	return cfg
}

// NewCluster boots a cluster: node 0 becomes the root and every other
// node joins through it.
func NewCluster(opts ClusterOptions) *Cluster {
	if opts.Nodes <= 0 {
		panic("live: cluster needs at least one node")
	}
	if opts.Latency <= 0 {
		opts.Latency = 2 * time.Millisecond
	}
	c := &Cluster{Net: NewMemNetwork(opts.Latency, opts.Seed)}
	landmarks := make([]core.Entry, 0, opts.Config.LandmarkCount)
	for i := 0; i < opts.Nodes; i++ {
		idx := i
		ep := c.Net.Endpoint(fmt.Sprintf("mem-%d", i))
		var tr Transport = ep
		if opts.Faults != nil {
			tr = opts.Faults.Wrap(ep)
		}
		var deliver core.DeliverFunc
		if opts.OnDeliver != nil {
			deliver = func(id core.MessageID, payload []byte, _ time.Duration) {
				opts.OnDeliver(idx, id, payload)
			}
		}
		n := NewNode(NodeOptions{
			ID:        core.NodeID(i),
			Config:    opts.Config,
			Transport: tr,
			Seed:      opts.Seed + int64(i),
			OnDeliver: deliver,
		})
		if len(landmarks) < opts.Config.LandmarkCount {
			landmarks = append(landmarks, n.Entry())
		}
		c.nodes = append(c.nodes, n)
	}
	for _, n := range c.nodes {
		n.SetLandmarks(landmarks)
	}
	c.nodes[0].BecomeRoot()
	for i := 1; i < opts.Nodes; i++ {
		c.nodes[i].Join(c.nodes[0].Entry())
	}
	return c
}

// Node returns the i-th node.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Size returns the cluster size.
func (c *Cluster) Size() int { return len(c.nodes) }

// AwaitDegree blocks until every node has at least min overlay neighbors
// or the timeout expires; it reports success.
func (c *Cluster) AwaitDegree(min int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ok := true
		for _, n := range c.nodes {
			if n.Degree() < min {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
		time.Sleep(50 * time.Millisecond)
	}
	return false
}

// Close shuts every node down.
func (c *Cluster) Close() {
	for _, n := range c.nodes {
		n.Close()
	}
}
