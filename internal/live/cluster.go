package live

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"gocast/internal/churn"
	"gocast/internal/core"
	"gocast/internal/metrics"
)

// ClusterOptions configures an in-process cluster over a MemNetwork.
type ClusterOptions struct {
	// Nodes is the cluster size.
	Nodes int
	// Config is the shared protocol configuration. FastConfig is a good
	// starting point for in-process use.
	Config core.Config
	// Latency is the simulated base network latency (default 2 ms).
	Latency time.Duration
	// PairLatency, if set, gives each ordered slot pair its own one-way
	// latency, overriding the flat Latency base. Realistic latency
	// diversity matters for more than fidelity: the proximity-replacement
	// sweep (overlay condition C4) only ever rewires a saturated overlay
	// when some candidate is clearly closer than a current neighbor, so a
	// latency-flat fabric can leave two healed partition halves stably
	// unconnected forever.
	PairLatency func(i, j int) time.Duration
	// Seed drives randomness.
	Seed int64
	// OnDeliver, if set, observes every delivery as (node index, message,
	// payload). Called on node event loops: do not block.
	OnDeliver func(node int, id core.MessageID, payload []byte)
	// Faults, if set, wraps every endpoint in the controller's fault
	// injection layer (drops, delays, partitions, ...). Endpoint
	// addresses are "mem-<index>", which is what FaultPhase rules match
	// against.
	Faults *FaultController
}

// Cluster is a group of live nodes connected by an in-memory network —
// the quickest way to run a real (wall-clock) GoCast group inside one
// process. Its membership methods (AddNode, Crash, Leave, Restart,
// RunChurn) are safe for concurrent use with the accessors.
type Cluster struct {
	Net *MemNetwork

	mu       sync.Mutex
	opts     ClusterOptions
	nodes    []*Node
	incar    []uint32
	restarts int

	// counters tracks cluster-level churn activity ("joins", "leaves",
	// "crashes", "restarts", "skipped") for monitoring.
	counters *metrics.AtomicCounter
}

// FastConfig returns protocol timing scaled for in-process clusters:
// the same structure as the paper's parameters with much shorter periods,
// so a cluster converges in seconds of wall time.
func FastConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.GossipPeriod = 20 * time.Millisecond
	cfg.MaintainPeriod = 20 * time.Millisecond
	cfg.HeartbeatPeriod = time.Second
	cfg.NeighborTimeout = time.Second
	cfg.RootTimeout = 3 * time.Second
	cfg.PullRetry = 200 * time.Millisecond
	cfg.ReclaimAfter = 30 * time.Second
	cfg.QuarantineWindow = 2 * time.Second
	cfg.SyncInterval = 2 * time.Second
	return cfg
}

// NewCluster boots a cluster: node 0 becomes the root and every other
// node joins through it.
func NewCluster(opts ClusterOptions) *Cluster {
	if opts.Nodes <= 0 {
		panic("live: cluster needs at least one node")
	}
	if opts.Latency <= 0 {
		opts.Latency = 2 * time.Millisecond
	}
	c := &Cluster{Net: NewMemNetwork(opts.Latency, opts.Seed), opts: opts, counters: metrics.NewAtomicCounter()}
	if opts.PairLatency != nil {
		base := opts.Latency
		fn := opts.PairLatency
		c.Net.SetLatency(func(from, to string) time.Duration {
			i, iok := memSlot(from)
			j, jok := memSlot(to)
			if !iok || !jok {
				return base
			}
			return fn(i, j)
		})
	}
	for i := 0; i < opts.Nodes; i++ {
		c.incar = append(c.incar, 0)
		c.nodes = append(c.nodes, c.newNode(i))
	}
	landmarks := c.landmarkEntries()
	for _, n := range c.nodes {
		n.SetLandmarks(landmarks)
	}
	c.nodes[0].BecomeRoot()
	for i := 1; i < opts.Nodes; i++ {
		c.nodes[i].Join(c.nodes[0].Entry())
	}
	return c
}

// memSlot parses a cluster endpoint address ("mem-<i>") back to its slot
// index.
func memSlot(addr string) (int, bool) {
	const prefix = "mem-"
	if len(addr) <= len(prefix) || addr[:len(prefix)] != prefix {
		return 0, false
	}
	n := 0
	for _, c := range addr[len(prefix):] {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// newNode builds (and starts) a live node for slot i at its current
// incarnation. Callers hold c.mu or are single-threaded setup code.
func (c *Cluster) newNode(i int) *Node {
	idx := i
	ep := c.Net.Endpoint(fmt.Sprintf("mem-%d", i))
	var tr Transport = ep
	if c.opts.Faults != nil {
		tr = c.opts.Faults.Wrap(ep)
	}
	var deliver core.DeliverFunc
	if c.opts.OnDeliver != nil {
		deliver = func(id core.MessageID, payload []byte, _ time.Duration) {
			c.opts.OnDeliver(idx, id, payload)
		}
	}
	return NewNode(NodeOptions{
		ID:          core.NodeID(i),
		Config:      c.opts.Config,
		Transport:   tr,
		Seed:        c.opts.Seed + int64(i) + int64(c.incar[i])<<32,
		Incarnation: c.incar[i],
		OnDeliver:   deliver,
	})
}

// landmarkEntries snapshots the landmark set (the first LandmarkCount
// slots) at their current incarnations. Callers hold c.mu or are
// single-threaded setup code.
func (c *Cluster) landmarkEntries() []core.Entry {
	lc := c.opts.Config.LandmarkCount
	if lc > len(c.nodes) {
		lc = len(c.nodes)
	}
	lms := make([]core.Entry, 0, lc)
	for i := 0; i < lc; i++ {
		lms = append(lms, c.nodes[i].Entry())
	}
	return lms
}

// Node returns the i-th node (its current life, if the slot restarted).
func (c *Cluster) Node(i int) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[i]
}

// Size returns the cluster size (slots, including stopped ones).
func (c *Cluster) Size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.nodes)
}

// AliveCount returns the number of running nodes.
func (c *Cluster) AliveCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, nd := range c.nodes {
		if !nd.Stopped() {
			n++
		}
	}
	return n
}

// Incarnation returns slot i's current incarnation number.
func (c *Cluster) Incarnation(i int) uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.incar[i]
}

// Restarts returns how many node restarts the cluster has performed.
func (c *Cluster) Restarts() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.restarts
}

// ChurnCounters snapshots the cluster-level churn counters ("joins",
// "leaves", "crashes", "restarts", "skipped"), in the same map shape as
// the per-node ChurnStats accessor.
func (c *Cluster) ChurnCounters() map[string]int64 {
	return c.counters.Snapshot()
}

// AddNode grows the group by one node, joining through a running contact.
// It returns the new slot index, or -1 if no contact is running.
func (c *Cluster) AddNode() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	contact := c.lockedPickRunning(0, nil)
	if contact < 0 {
		return -1
	}
	i := len(c.nodes)
	c.incar = append(c.incar, 0)
	c.nodes = append(c.nodes, nil)
	n := c.newNode(i)
	c.nodes[i] = n
	n.SetLandmarks(c.landmarkEntries())
	n.Join(c.nodes[contact].Entry())
	c.counters.Inc("joins", 1)
	return i
}

// Crash kills slot i abruptly (no departure notice).
func (c *Cluster) Crash(i int) {
	if n := c.Node(i); !n.Stopped() {
		n.Kill()
		c.counters.Inc("crashes", 1)
	}
}

// Leave makes slot i depart gracefully; its obituary spreads via gossip.
func (c *Cluster) Leave(i int) {
	if n := c.Node(i); !n.Stopped() {
		n.Close()
		c.counters.Inc("leaves", 1)
	}
}

// Restart revives a stopped slot under a bumped incarnation: a fresh node
// owns the slot's address again, re-measures landmarks, and rejoins
// through a running contact. It reports whether a restart happened (the
// slot must be stopped and a contact must exist).
func (c *Cluster) Restart(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.nodes[i].Stopped() {
		return false
	}
	contact := c.lockedPickRunning(0, nil)
	if contact < 0 {
		return false
	}
	c.incar[i]++
	c.restarts++
	n := c.newNode(i)
	c.nodes[i] = n
	n.SetLandmarks(c.landmarkEntries())
	n.Join(c.nodes[contact].Entry())
	c.counters.Inc("restarts", 1)
	return true
}

// lockedPickRunning returns a running slot with index >= minIdx (using rng
// when given, else the first), or -1. Caller holds c.mu.
func (c *Cluster) lockedPickRunning(minIdx int, rng *rand.Rand) int {
	var cand []int
	for i := minIdx; i < len(c.nodes); i++ {
		if !c.nodes[i].Stopped() {
			cand = append(cand, i)
		}
	}
	if len(cand) == 0 {
		return -1
	}
	if rng == nil {
		return cand[0]
	}
	return cand[rng.Intn(len(cand))]
}

// lockedPickStopped is lockedPickRunning's dual for dead slots.
func (c *Cluster) lockedPickStopped(minIdx int, rng *rand.Rand) int {
	var cand []int
	for i := minIdx; i < len(c.nodes); i++ {
		if c.nodes[i].Stopped() {
			cand = append(cand, i)
		}
	}
	if len(cand) == 0 {
		return -1
	}
	return cand[rng.Intn(len(cand))]
}

// ChurnOptions binds a churn plan to a live cluster, mirroring the
// simulator's orchestrator.
type ChurnOptions struct {
	// Plan is the seeded Poisson event schedule, executed in wall time.
	Plan churn.Plan
	// Protected marks the first Protected slots churn-ineligible.
	Protected int
	// MinAlive skips leave/crash events that would drop the running
	// population below this floor (0 = no floor beyond one node).
	MinAlive int
	// MaxNodes skips join events at this many slots (0 = unbounded).
	MaxNodes int
}

// ChurnStats counts what RunChurn actually did.
type ChurnStats struct {
	Joins, Leaves, Crashes, Restarts, Skipped int
}

// Events returns the number of executed (non-skipped) events.
func (s ChurnStats) Events() int { return s.Joins + s.Leaves + s.Crashes + s.Restarts }

// RunChurn executes the plan against the cluster in wall-clock time,
// blocking until the horizon passes. Target choices come from a stream
// derived from the plan seed; timing is wall-clock and therefore only the
// event order, not the exact interleaving with protocol traffic, is
// reproducible.
func (c *Cluster) RunChurn(opts ChurnOptions) ChurnStats {
	var st ChurnStats
	rng := rand.New(rand.NewSource(opts.Plan.Seed ^ 0x00c0ffee))
	start := time.Now()
	for _, ev := range opts.Plan.Schedule() {
		if d := ev.At - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		c.churnStep(ev.Kind, opts, rng, &st)
	}
	if d := opts.Plan.Duration - time.Since(start); d > 0 {
		time.Sleep(d)
	}
	return st
}

func (c *Cluster) churnStep(k churn.Kind, opts ChurnOptions, rng *rand.Rand, st *ChurnStats) {
	minAlive := opts.MinAlive
	if minAlive < 1 {
		minAlive = 1
	}
	skip := func() {
		st.Skipped++
		c.counters.Inc("skipped", 1)
	}
	switch k {
	case churn.Join:
		if opts.MaxNodes > 0 && c.Size() >= opts.MaxNodes {
			skip()
			return
		}
		if c.AddNode() < 0 {
			skip()
			return
		}
		st.Joins++
	case churn.Leave, churn.Crash:
		c.mu.Lock()
		i := c.lockedPickRunning(opts.Protected, rng)
		c.mu.Unlock()
		if i < 0 || c.AliveCount() <= minAlive {
			skip()
			return
		}
		if k == churn.Leave {
			c.Leave(i)
			st.Leaves++
		} else {
			c.Crash(i)
			st.Crashes++
		}
	case churn.Restart:
		c.mu.Lock()
		i := c.lockedPickStopped(opts.Protected, rng)
		c.mu.Unlock()
		if i < 0 || !c.Restart(i) {
			skip()
			return
		}
		st.Restarts++
	}
}

// AwaitDegree blocks until every running node has at least min overlay
// neighbors or the timeout expires; it reports success.
func (c *Cluster) AwaitDegree(min int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ok := true
		for _, n := range c.snapshot() {
			if !n.Stopped() && n.Degree() < min {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
		time.Sleep(50 * time.Millisecond)
	}
	return false
}

// snapshot copies the node slice under the lock.
func (c *Cluster) snapshot() []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Node(nil), c.nodes...)
}

// Close shuts every node down.
func (c *Cluster) Close() {
	for _, n := range c.snapshot() {
		n.Close()
	}
}
