package live

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"gocast/internal/core"
)

// TestCoopcastBulkDelivery drives the erasure-coded bulk path over the
// live substrate: a payload above CoopcastThreshold must leave the
// publisher as striped symbols, be reassembled by FEC decode on the
// receivers, and arrive byte-identical.
func TestCoopcastBulkDelivery(t *testing.T) {
	cfg := FastConfig()
	cfg.CoopcastThreshold = 1 << 10
	var mu sync.Mutex
	got := make(map[int][]byte)
	c := NewCluster(ClusterOptions{
		Nodes:  3,
		Config: cfg,
		Seed:   7,
		OnDeliver: func(node int, _ core.MessageID, payload []byte) {
			mu.Lock()
			got[node] = append([]byte(nil), payload...)
			mu.Unlock()
		},
	})
	defer c.Close()
	if !c.AwaitDegree(2, 10*time.Second) {
		t.Fatal("cluster never formed")
	}
	payload := make([]byte, 8<<10)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if _, err := c.Node(0).Publish(payload); err != nil {
		t.Fatalf("publish: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 3 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < 3; i++ {
		if !bytes.Equal(got[i], payload) {
			t.Fatalf("node %d: payload mismatch (got %d bytes)", i, len(got[i]))
		}
	}
	var sent, decodes int64
	for i := 0; i < 3; i++ {
		s := c.Node(i).Stats()
		sent += s.SymbolsSent
		decodes += s.FECDecodes
	}
	if sent == 0 {
		t.Fatal("no symbols sent: bulk payload took the whole-message path")
	}
	if decodes != 2 {
		t.Fatalf("FEC decodes = %d, want 2 (one per receiver)", decodes)
	}
}
