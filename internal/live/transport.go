// Package live runs GoCast nodes in real time: each node's protocol state
// machine (internal/core) is driven by a single mailbox goroutine, and
// messages travel over a pluggable Transport — an in-memory fabric for
// tests and in-process clusters, or TCP+UDP for real deployments.
package live

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"gocast/internal/core"
)

// Handler receives inbound messages. Implementations are called from
// transport goroutines and must not block for long.
type Handler func(from core.NodeID, m core.Message)

// FailureHandler is told that the reliable channel toward a node broke.
type FailureHandler func(peer core.NodeID)

// Transport moves protocol messages between live nodes.
type Transport interface {
	// Addr returns the endpoint's advertised address.
	Addr() string
	// Send delivers m reliably to the peer at addr; a broken channel is
	// reported through the failure handler (possibly asynchronously).
	Send(addr string, to core.NodeID, m core.Message)
	// SendDatagram delivers m best-effort.
	SendDatagram(addr string, to core.NodeID, m core.Message)
	// SetHandlers registers inbound and failure callbacks; must be called
	// before any traffic flows.
	SetHandlers(h Handler, f FailureHandler)
	// Close stops the endpoint.
	Close() error
}

// ErrClosed is returned by transports used after Close.
var ErrClosed = errors.New("live: transport closed")

// MemNetwork is an in-memory message fabric connecting MemTransport
// endpoints, with optional per-pair latency — handy for tests and for
// running sizable GoCast clusters inside one process.
type MemNetwork struct {
	mu      sync.Mutex
	eps     map[string]*MemTransport
	latency func(from, to string) time.Duration
	rng     *rand.Rand
	// Drop, when set, is consulted per message; return true to lose it
	// (applies to datagrams only, mirroring UDP).
	drop func() bool
}

// NewMemNetwork returns an empty fabric with the given base latency
// (plus up to 20% jitter). Zero latency delivers synchronously-ish via
// goroutines.
func NewMemNetwork(base time.Duration, seed int64) *MemNetwork {
	rng := rand.New(rand.NewSource(seed))
	n := &MemNetwork{
		eps: make(map[string]*MemTransport),
		rng: rng,
	}
	n.latency = func(from, to string) time.Duration {
		if base <= 0 {
			return 0
		}
		n.mu.Lock()
		j := n.rng.Int63n(int64(base)/5 + 1)
		n.mu.Unlock()
		return base + time.Duration(j)
	}
	return n
}

// SetLatency replaces the per-pair latency function.
func (n *MemNetwork) SetLatency(fn func(from, to string) time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = fn
}

// SetDatagramLoss makes datagrams drop with probability p.
func (n *MemNetwork) SetDatagramLoss(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	// The closure is invoked from delivery goroutines; n.rng is not
	// goroutine-safe, so take the fabric lock like the latency closure does.
	n.drop = func() bool {
		n.mu.Lock()
		defer n.mu.Unlock()
		return n.rng.Float64() < p
	}
}

// Endpoint creates and registers a transport with the given address.
func (n *MemNetwork) Endpoint(addr string) *MemTransport {
	n.mu.Lock()
	defer n.mu.Unlock()
	t := &MemTransport{net: n, addr: addr}
	n.eps[addr] = t
	return t
}

// Partition removes an endpoint from the fabric without closing it,
// simulating a network partition of that node.
func (n *MemNetwork) Partition(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.eps, addr)
}

// Heal re-registers a previously partitioned endpoint.
func (n *MemNetwork) Heal(t *MemTransport) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.eps[t.addr] = t
}

func (n *MemNetwork) lookup(addr string) *MemTransport {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.eps[addr]
}

// MemTransport is one endpoint on a MemNetwork.
type MemTransport struct {
	net    *MemNetwork
	addr   string
	fromID core.NodeID

	mu      sync.Mutex
	handler Handler
	failure FailureHandler
	closed  bool
}

var _ Transport = (*MemTransport)(nil)

// Addr returns the endpoint's address.
func (t *MemTransport) Addr() string { return t.addr }

// SetHandlers registers the inbound callbacks.
func (t *MemTransport) SetHandlers(h Handler, f FailureHandler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
	t.failure = f
}

// Send delivers reliably: a missing or closed target triggers the failure
// handler (like a TCP reset).
func (t *MemTransport) Send(addr string, to core.NodeID, m core.Message) {
	t.deliver(addr, to, m, true)
}

// SendDatagram delivers best-effort: losses and dead targets are silent.
func (t *MemTransport) SendDatagram(addr string, to core.NodeID, m core.Message) {
	t.deliver(addr, to, m, false)
}

func (t *MemTransport) deliver(addr string, to core.NodeID, m core.Message, reliable bool) {
	t.mu.Lock()
	closed := t.closed
	fail := t.failure
	t.mu.Unlock()
	if closed {
		return
	}
	target := t.net.lookup(addr)
	if target == nil || target.isClosed() {
		if reliable && fail != nil {
			go fail(to)
		}
		return
	}
	if !reliable {
		t.net.mu.Lock()
		drop := t.net.drop
		t.net.mu.Unlock()
		if drop != nil && drop() {
			return
		}
	}
	t.net.mu.Lock()
	lat := t.net.latency
	t.net.mu.Unlock()
	d := lat(t.addr, addr)
	from := t.fromID
	deliver := func() {
		target.mu.Lock()
		h := target.handler
		closed := target.closed
		target.mu.Unlock()
		if h != nil && !closed {
			h(from, m)
		}
	}
	if d <= 0 {
		go deliver()
		return
	}
	time.AfterFunc(d, deliver)
}

// SetFrom records the node ID that owns this endpoint; receivers see it
// as the message sender. Must be set before any traffic flows.
func (t *MemTransport) SetFrom(id core.NodeID) { t.fromID = id }

// isClosed reports whether Close was called.
func (t *MemTransport) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// Close deregisters the endpoint.
func (t *MemTransport) Close() error {
	t.mu.Lock()
	t.closed = true
	t.mu.Unlock()
	t.net.Partition(t.addr)
	return nil
}
