package live

import (
	"errors"
	"testing"
	"time"

	"gocast/internal/core"
)

// overloadTestNode builds a single node on a private MemNetwork with a
// quiet governor (long eval interval) so tests can drive the mailbox and
// state machine directly.
func overloadTestNode(t *testing.T, ov OverloadOptions) *Node {
	t.Helper()
	if ov.EvalInterval == 0 {
		ov.EvalInterval = time.Hour
	}
	if ov.Logf == nil {
		ov.Logf = t.Logf
	}
	net := NewMemNetwork(0, 1)
	n := NewNode(NodeOptions{
		ID:        1,
		Config:    core.DefaultConfig(),
		Transport: net.Endpoint("n1"),
		Seed:      1,
		Overload:  ov,
	})
	t.Cleanup(n.Close)
	n.BecomeRoot()
	return n
}

// TestMailboxOverflowCountsDrops pins the fix for the silent tryPost drop:
// overflowing a mailbox lane increments gocast_live_mailbox_dropped_total
// and attributes the shed to the right class.
func TestMailboxOverflowCountsDrops(t *testing.T) {
	n := overloadTestNode(t, OverloadOptions{MailboxBackground: 4})

	// Park the event loop so nothing drains.
	gate := make(chan struct{})
	n.post(func() { <-gate })

	admitted, shed := 0, 0
	for i := 0; i < 10; i++ {
		if n.enqueue(core.ClassBackground, false, func() {}) {
			admitted++
		} else {
			shed++
		}
	}
	// Release the loop before touching the stats views: they collect via
	// the event loop.
	close(gate)
	if admitted != 4 || shed != 6 {
		t.Fatalf("admitted=%d shed=%d, want 4 admitted and 6 shed", admitted, shed)
	}
	if got := n.mbDropped.Value(); got != 6 {
		t.Errorf("gocast_live_mailbox_dropped_total = %d, want 6", got)
	}
	if got := n.OverloadStats()["shed_background"]; got != 6 {
		t.Errorf("shed_background = %d, want 6", got)
	}
	if got := n.OverloadStats()["shed_critical"]; got != 0 {
		t.Errorf("shed_critical = %d, want 0", got)
	}
	if got := n.statsView("live")["mailbox_dropped"]; got != 6 {
		t.Errorf("statsView(live)[mailbox_dropped] = %d, want 6", got)
	}
}

// TestMailboxPriorityOrdering pins the admission order: Critical work runs
// before queued Repair work, which runs before queued Background work,
// regardless of enqueue order.
func TestMailboxPriorityOrdering(t *testing.T) {
	n := overloadTestNode(t, OverloadOptions{})

	gate := make(chan struct{})
	n.post(func() { <-gate })

	var order []string
	done := make(chan struct{})
	n.enqueue(core.ClassBackground, false, func() { order = append(order, "background") })
	n.enqueue(core.ClassRepair, false, func() { order = append(order, "repair") })
	n.enqueue(core.ClassCritical, false, func() {
		order = append(order, "critical")
	})
	n.enqueue(core.ClassBackground, false, func() {
		order = append(order, "background2")
		close(done)
	})
	close(gate)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("queued work did not run")
	}
	want := []string{"critical", "repair", "background", "background2"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

// TestShedPolicyOffDisablesClassing verifies the "off" escape hatch: all
// classes share the blocking Critical lane, so Background work is neither
// shed nor reordered.
func TestShedPolicyOffDisablesClassing(t *testing.T) {
	n := overloadTestNode(t, OverloadOptions{ShedPolicy: "off", MailboxBackground: 1})

	gate := make(chan struct{})
	n.post(func() { <-gate })
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		last := i == 7
		if !n.enqueue(core.ClassBackground, false, func() {
			if last {
				close(done)
			}
		}) {
			t.Fatalf("enqueue %d shed with policy off", i)
		}
	}
	close(gate)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("queued work did not run")
	}
	if got := n.mbDropped.Value(); got != 0 {
		t.Fatalf("policy off shed %d units, want 0", got)
	}
}

// TestLoopPanicRecovered pins satellite (b): a panicking callback on the
// event loop is recovered, counted, marks the node unhealthy, and the loop
// keeps serving.
func TestLoopPanicRecovered(t *testing.T) {
	n := overloadTestNode(t, OverloadOptions{})
	if err := n.Health(); err != nil {
		t.Fatalf("pre-panic Health() = %v, want nil", err)
	}

	n.post(func() { panic("injected test panic") })

	// The loop must survive: a follow-up call still completes.
	deadline := time.After(5 * time.Second)
	for n.loopPanics.Value() == 0 {
		select {
		case <-deadline:
			t.Fatal("panic was not recovered/counted")
		case <-time.After(time.Millisecond):
		}
	}
	if d := n.Degree(); d != 0 {
		t.Fatalf("Degree() after panic = %d, want 0 (loop should keep serving)", d)
	}
	if got := n.loopPanics.Value(); got != 1 {
		t.Errorf("gocast_live_loop_panics_total = %d, want 1", got)
	}
	if err := n.Health(); err == nil {
		t.Error("Health() = nil after event-loop panic, want unhealthy")
	}
}

// TestPublishSheddingRejects pins the backpressure API: while the node is
// Shedding, Publish returns ErrOverloaded without sending, Multicast
// returns the zero ID, and recovery re-admits publishes.
func TestPublishSheddingRejects(t *testing.T) {
	n := overloadTestNode(t, OverloadOptions{})

	if _, err := n.Publish([]byte("ok")); err != nil {
		t.Fatalf("healthy Publish: %v", err)
	}
	n.gov.level.store(core.OverloadShedding)
	if _, err := n.Publish([]byte("no")); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("shedding Publish err = %v, want ErrOverloaded", err)
	}
	if id := n.Multicast([]byte("no")); id != (core.MessageID{}) {
		t.Fatalf("shedding Multicast id = %v, want zero", id)
	}
	if got := n.pubRejected.Value(); got != 2 {
		t.Errorf("publish_rejected = %d, want 2", got)
	}
	if err := n.Health(); err == nil {
		t.Error("Health() = nil while Shedding, want unhealthy")
	}
	n.gov.level.store(core.OverloadHealthy)
	if _, err := n.Publish([]byte("again")); err != nil {
		t.Fatalf("recovered Publish: %v", err)
	}
}

// TestGovernorHysteresis drives the state machine directly through a
// pressure spike and release, pinning the transition rules: upward moves
// are immediate, downward moves need HysteresisTicks consecutive calm
// evaluations, and a pressure bounce resets the countdown.
func TestGovernorHysteresis(t *testing.T) {
	g := &governor{opts: OverloadOptions{}.withDefaults()}
	h := g.opts.HysteresisTicks

	if got := g.step(0, 0, 0, 0); got != core.OverloadHealthy {
		t.Fatalf("idle step -> %v, want healthy", got)
	}
	// Background congestion degrades but does not shed.
	if got := g.step(0, 0.6, 0, 0); got != core.OverloadDegraded {
		t.Fatalf("worst=0.6 -> %v, want degraded", got)
	}
	// Critical saturation sheds immediately.
	if got := g.step(0.9, 0.9, 0, 0); got != core.OverloadShedding {
		t.Fatalf("crit=0.9 -> %v, want shedding", got)
	}
	// Calm evaluations: no transition until the hysteresis window elapses.
	for i := 0; i < h-1; i++ {
		if got := g.step(0, 0, 0, 0); got != core.OverloadShedding {
			t.Fatalf("calm step %d -> %v, want still shedding", i, got)
		}
	}
	// A bounce resets the countdown.
	if got := g.step(0.9, 0.9, 0, 0); got != core.OverloadShedding {
		t.Fatalf("bounce -> %v, want shedding", got)
	}
	for i := 0; i < h-1; i++ {
		if got := g.step(0, 0, 0, 0); got != core.OverloadShedding {
			t.Fatalf("post-bounce calm step %d -> %v, want still shedding", i, got)
		}
	}
	// The final calm step completes the window; fully calm skips Degraded.
	if got := g.step(0, 0, 0, 0); got != core.OverloadHealthy {
		t.Fatalf("final calm step -> %v, want healthy", got)
	}

	// Memory budget pressure alone degrades, then sheds at the budget.
	if got := g.step(0, 0, 0.8, 0); got != core.OverloadDegraded {
		t.Fatalf("mem=0.8 -> %v, want degraded", got)
	}
	if got := g.step(0, 0, 1.1, 0); got != core.OverloadShedding {
		t.Fatalf("mem=1.1 -> %v, want shedding", got)
	}
	// Mem pressure clears but repair queues stay busy: exit Shedding into
	// Degraded (not Healthy) after the window.
	for i := 0; i < h; i++ {
		g.step(0, 0.6, 0, 0)
	}
	if g.cur != core.OverloadDegraded {
		t.Fatalf("busy exit -> %v, want degraded", g.cur)
	}
	// Shed activity alone keeps the node out of Healthy.
	for i := 0; i < 2*h; i++ {
		g.step(0, 0, 0, 5)
	}
	if g.cur != core.OverloadDegraded {
		t.Fatalf("shedding activity -> %v, want degraded", g.cur)
	}
}
