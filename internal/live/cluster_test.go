package live

import (
	"testing"
	"time"

	"gocast/internal/core"
)

func TestFastConfigKeepsPaperStructure(t *testing.T) {
	cfg := FastConfig()
	if cfg.CRand != 1 || cfg.CNear != 5 {
		t.Fatalf("FastConfig changed degree targets: %d+%d", cfg.CRand, cfg.CNear)
	}
	if !cfg.EnableTree {
		t.Fatalf("FastConfig disabled the tree")
	}
	if cfg.GossipPeriod >= 100*time.Millisecond {
		t.Fatalf("FastConfig should tighten the gossip period, got %v", cfg.GossipPeriod)
	}
}

func TestAwaitDegreeTimesOutHonestly(t *testing.T) {
	// A single-node cluster can never reach degree 1.
	c := NewCluster(ClusterOptions{Nodes: 1, Config: FastConfig(), Seed: 1})
	defer c.Close()
	start := time.Now()
	if c.AwaitDegree(1, 300*time.Millisecond) {
		t.Fatalf("AwaitDegree reported success on an isolated node")
	}
	if time.Since(start) < 250*time.Millisecond {
		t.Fatalf("AwaitDegree returned before its timeout")
	}
}

func TestClusterSizeAndAccessors(t *testing.T) {
	c := NewCluster(ClusterOptions{Nodes: 3, Config: FastConfig(), Seed: 2})
	defer c.Close()
	if c.Size() != 3 {
		t.Fatalf("Size = %d", c.Size())
	}
	for i := 0; i < 3; i++ {
		n := c.Node(i)
		if n.ID() != core.NodeID(i) {
			t.Fatalf("node %d has ID %d", i, n.ID())
		}
		if n.Addr() == "" {
			t.Fatalf("node %d has no address", i)
		}
		if n.Entry().Addr != n.Addr() {
			t.Fatalf("entry address mismatch")
		}
	}
	// Node 0 is the initial root.
	if c.Node(0).Root() != 0 {
		t.Fatalf("root = %d, want 0", c.Node(0).Root())
	}
}

func TestSyncAndStoreStatsSurfacing(t *testing.T) {
	c := NewCluster(ClusterOptions{Nodes: 2, Config: FastConfig(), Seed: 3})
	defer c.Close()
	if !c.AwaitDegree(1, 10*time.Second) {
		t.Fatalf("pair never linked")
	}
	id := c.Node(0).Multicast([]byte("observable"))

	deadline := time.Now().Add(5 * time.Second)
	for !c.Node(1).Seen(id) {
		if time.Now().After(deadline) {
			t.Fatalf("multicast never delivered")
		}
		time.Sleep(20 * time.Millisecond)
	}

	ss := c.Node(1).SyncStats()
	for _, key := range []string{"requests_sent", "items_recv", "pull_misses_sent"} {
		if _, ok := ss[key]; !ok {
			t.Errorf("SyncStats missing %q (have %v)", key, ss)
		}
	}
	st := c.Node(0).StoreStats()
	if st["puts"] < 1 {
		t.Errorf("source store recorded %d puts, want >= 1", st["puts"])
	}
	if st["live_messages"] < 1 || st["live_bytes"] < int64(len("observable")) {
		t.Errorf("store occupancy = %d msgs / %d bytes, want the multicast held live",
			st["live_messages"], st["live_bytes"])
	}

	// Stopped nodes keep answering with the final pre-stop snapshot frozen
	// in the registry — stats never zero out or block after Kill.
	preStop := c.Node(1).StoreStats()
	c.Node(1).Kill()
	if got := c.Node(1).StoreStats(); got["puts"] < preStop["puts"] || got["live_messages"] < preStop["live_messages"] {
		t.Errorf("StoreStats on a stopped node = %v, want at least the pre-stop values %v", got, preStop)
	}
	if got := c.Node(1).SyncStats(); got["requests_sent"] < ss["requests_sent"] {
		t.Errorf("SyncStats on a stopped node = %v, want at least the pre-stop values", got)
	}
}
