package live

import (
	"errors"
	"sync"
	"testing"
	"time"

	"gocast/internal/core"
)

// runFloodOverload drives the end-to-end overload scenario over real TCP:
// a root publisher floods large payloads at a receiver whose OnDeliver is
// deliberately slow, so backpressure cascades receiver mailbox -> kernel
// socket buffers -> publisher Critical ring -> overload governor. The
// publisher must travel Healthy -> Shedding -> Healthy, reject publishes
// with ErrOverloaded while Shedding, never drop a peer or a Critical
// frame, and deliver every admitted message.
func runFloodOverload(t *testing.T, floodFor time.Duration) {
	t.Helper()
	cfg := FastConfig()
	// The flood starves the receiver's event loop for hundreds of
	// milliseconds at a time, which delays its gossip keepalives.
	// FastConfig's 1s NeighborTimeout would misread that as death and
	// detach the tree child mid-flood — the exact failure mode overload
	// protection exists to avoid — so give liveness detection room: the
	// test asserts zero PeerDowns instead.
	cfg.HeartbeatPeriod = 5 * time.Second
	cfg.NeighborTimeout = 30 * time.Second
	cfg.RootTimeout = 60 * time.Second

	ptr := mustTCP(t, 0, TCPOptions{
		RedialBackoff: 20 * time.Millisecond,
		IdleTimeout:   -1,
		QueueCritical: 64, // small soft cap so ring pressure builds fast
	})
	rtr := mustTCP(t, 1, fastTCPOptions())

	quiet := func(string, ...any) {}
	pub := NewNode(NodeOptions{
		ID: 0, Config: cfg, Transport: ptr, Seed: 1,
		Overload: OverloadOptions{EvalInterval: 20 * time.Millisecond, Logf: quiet},
	})
	defer pub.Close()

	var mu sync.Mutex
	got := make(map[core.MessageID]bool)
	recv := NewNode(NodeOptions{
		ID: 1, Config: cfg, Transport: rtr, Seed: 2,
		Overload: OverloadOptions{MailboxCritical: 256, Logf: quiet},
		OnDeliver: func(id core.MessageID, _ []byte, _ time.Duration) {
			mu.Lock()
			got[id] = true
			mu.Unlock()
			time.Sleep(2 * time.Millisecond) // the slow consumer
		},
	})
	defer recv.Close()

	pub.BecomeRoot()
	pub.SetLandmarks([]core.Entry{pub.Entry()})
	recv.Join(pub.Entry())
	waitFor(t, 5*time.Second, "receiver joined the tree", func() bool {
		return recv.Parent() == 0
	})

	// Flood: publish as fast as the node admits — far beyond the
	// receiver's sustainable drain rate — for at least floodFor and until
	// Shedding has been observed.
	payload := make([]byte, 32<<10)
	var admitted []core.MessageID
	var rejected int64
	start := time.Now()
	for time.Since(start) < floodFor || rejected == 0 {
		if time.Since(start) > floodFor+20*time.Second {
			t.Fatalf("publisher never entered Shedding (overload=%v stats=%v)",
				pub.Overload(), pub.OverloadStats())
		}
		id, err := pub.Publish(payload)
		switch {
		case err == nil:
			admitted = append(admitted, id)
		case errors.Is(err, ErrOverloaded):
			rejected++
			time.Sleep(time.Millisecond) // the producer's backoff
		default:
			t.Fatalf("Publish: %v", err)
		}
	}

	// Recovery: once the flood stops, the queues drain and the governor
	// walks back to Healthy after its hysteresis window.
	waitFor(t, 30*time.Second, "publisher recovered to Healthy", func() bool {
		return pub.Overload() == core.OverloadHealthy
	})

	// Atomic delivery: every admitted message reaches the receiver; the
	// shed ones were rejected at the source, never silently dropped.
	waitFor(t, 30*time.Second, "all admitted messages delivered", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= len(admitted)
	})
	mu.Lock()
	for _, id := range admitted {
		if !got[id] {
			t.Errorf("admitted message %s never delivered", id)
		}
	}
	mu.Unlock()

	if pd := pub.Stats().PeerDowns; pd != 0 {
		t.Errorf("publisher declared %d peers down during the flood, want 0", pd)
	}
	ts := ptr.Stats()
	if ts[CtrQueueOverflow] != 0 {
		t.Errorf("tcp_queue_overflows = %d, want 0 (no peer may be dropped for queue pressure)", ts[CtrQueueOverflow])
	}
	if ts[CtrDroppedCritical] != 0 {
		t.Errorf("tcp_frames_dropped_critical = %d, want 0", ts[CtrDroppedCritical])
	}
	for _, n := range []*Node{pub, recv} {
		if shed := n.OverloadStats()["shed_critical"]; shed != 0 {
			t.Errorf("node %d shed %d Critical mailbox units, want 0", n.ID(), shed)
		}
	}
	ov := pub.OverloadStats()
	if ov["publish_rejected"] != rejected {
		t.Errorf("gocast_overload_publish_rejected_total = %d, want %d", ov["publish_rejected"], rejected)
	}
	if ov["transitions"] < 2 {
		t.Errorf("gocast_overload_transitions_total = %d, want >= 2 (up and back down)", ov["transitions"])
	}
	if ov["state"] != int64(core.OverloadHealthy) {
		t.Errorf("gocast_overload_state = %d, want %d (healthy)", ov["state"], int64(core.OverloadHealthy))
	}
	t.Logf("flood: admitted=%d rejected=%d transitions=%d tcp=%v",
		len(admitted), rejected, ov["transitions"],
		map[string]int64{"overflow": ts[CtrQueueOverflow], "dropped_critical": ts[CtrDroppedCritical]})
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestOverloadFloodSmoke is the CI-sized flood: long enough to force the
// full Healthy -> Shedding -> Healthy round trip, short enough for -race.
func TestOverloadFloodSmoke(t *testing.T) {
	runFloodOverload(t, 300*time.Millisecond)
}

// TestOverloadFloodSoak sustains the flood an order of magnitude longer,
// exercising store eviction churn and repeated governor evaluations under
// pressure. Skipped with -short.
func TestOverloadFloodSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("full flood soak skipped with -short")
	}
	runFloodOverload(t, 8*time.Second)
}
