package live

import (
	"errors"
	"math/rand"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"gocast/internal/core"
	"gocast/internal/dtrace"
	"gocast/internal/obs"
	"gocast/internal/trace"
)

// ErrStopped reports an API call against a node after Close or Kill.
var ErrStopped = errors.New("live: node stopped")

// NodeOptions configures a live node.
type NodeOptions struct {
	// ID must be unique across the group.
	ID core.NodeID
	// Config is the protocol configuration; zero-ish values are repaired
	// by core.
	Config core.Config
	// Transport carries the node's traffic. The runner takes ownership
	// and closes it on Close.
	Transport Transport
	// Seed drives the node's local randomness (timer phases, sampling).
	Seed int64
	// Incarnation is the node's starting incarnation number. A process
	// rejoining under an ID it used in a previous life must pass a higher
	// value than it ever used before, or the group will treat its traffic
	// as a dead past life's.
	Incarnation uint32
	// OnDeliver receives each multicast exactly once. Called on the
	// node's event loop: do not block, and do not call the node's own
	// methods from inside it (hand work to another goroutine instead) —
	// they wait on the same loop and would deadlock.
	OnDeliver core.DeliverFunc
	// Registry receives the node's metrics. Nil creates a private registry
	// (retrievable via Registry()), so the stats accessors always work.
	// Share one registry across nodes only in single-node processes:
	// metric names carry no node label, so two nodes sharing a registry
	// would overwrite each other's mirrors.
	Registry *obs.Registry
	// TraceCapacity sizes the protocol event trace ring: 0 selects the
	// default (1024 events), negative disables tracing entirely.
	TraceCapacity int
	// TraceSample records every Nth protocol event in the trace ring
	// (0 and 1 record all). Latency histograms are never sampled.
	TraceSample int
	// SpanCapacity sizes the dissemination trace span ring (see
	// internal/dtrace): 0 selects the dtrace default (4096 spans),
	// negative disables span recording entirely. Spans are only produced
	// for sampled messages (Config.TraceSampleEvery), so the ring stays
	// empty unless sampling is on somewhere in the group.
	SpanCapacity int
	// Overload tunes the prioritized mailbox, the degradation governor,
	// and the memory budget (see OverloadOptions). The zero value selects
	// the defaults.
	Overload OverloadOptions
}

// Node hosts one GoCast protocol instance on real time. All protocol work
// happens on a single mailbox goroutine; the exported methods are safe for
// concurrent use. After Close or Kill, live accessors (Degree, Parent, ...)
// return zero values — Stopped reports that state, and the internal call
// path yields ErrStopped — and never block; the stats accessors instead
// keep returning the final pre-stop snapshot frozen in the registry.
type Node struct {
	opts  NodeOptions
	coreN *core.Node
	env   *liveEnv

	mb      *mailbox
	gov     *governor
	qp      queuePressurer // transport queue occupancy source, nil if none
	stopped chan struct{}
	once    sync.Once

	// Panic containment: set when a recovered event-loop panic has
	// occurred (Health turns unhealthy until restart).
	panicked atomic.Bool

	// Observability surfaces (see obs.go). reg is never nil; tbuf is nil
	// when tracing is disabled, sbuf when span recording is disabled.
	// lastStats/lastStatus cache the most recent collect so stats stay
	// readable after Close/Kill.
	reg        *obs.Registry
	tbuf       *trace.Buffer
	sbuf       *dtrace.Buffer
	obsMu      sync.Mutex
	lastStats  core.Counters
	lastStatus StatusSnapshot
	oldestAsm  time.Duration // age of the oldest in-progress FEC assembly at last collect

	// Overload metric handles (captured in setupObs so the shed path is
	// allocation-free) and the rate limiter for the shed log line.
	mbDropped   *obs.Counter
	mbShed      [core.NumClasses]*obs.Counter
	loopPanics  *obs.Counter
	pubRejected *obs.Counter
	ovState     *obs.Gauge
	ovTrans     *obs.Counter
	lastShedLog atomic.Int64
}

// NewNode builds and starts a live node. It is immediately ready to
// Join a group (or to be joined, if it is the first).
func NewNode(opts NodeOptions) *Node {
	opts.Overload = opts.Overload.withDefaults()
	n := &Node{
		opts:    opts,
		stopped: make(chan struct{}),
	}
	n.mb = newMailbox([core.NumClasses]int{
		core.ClassCritical:   opts.Overload.MailboxCritical,
		core.ClassRepair:     opts.Overload.MailboxRepair,
		core.ClassBackground: opts.Overload.MailboxBackground,
	}, opts.Overload.ShedPolicy != "off")
	n.gov = &governor{opts: opts.Overload}
	env := &liveEnv{
		n:     n,
		start: time.Now(),
		rng:   rand.New(rand.NewSource(opts.Seed ^ int64(opts.ID)<<20)),
		addrs: make(map[core.NodeID]string),
	}
	n.env = env
	n.coreN = core.New(opts.ID, opts.Config, env)
	n.coreN.SetAddr(opts.Transport.Addr())
	n.coreN.SetIncarnation(opts.Incarnation)
	if opts.OnDeliver != nil {
		n.coreN.OnDeliver(opts.OnDeliver)
	}
	// Unwrap fault-injection layers so the underlying MemTransport still
	// learns its owning node ID, and so the governor finds the transport's
	// queue-pressure surface regardless of wrapping.
	inner := opts.Transport
	for {
		ft, ok := inner.(*FaultTransport)
		if !ok {
			break
		}
		inner = ft.Inner()
	}
	if mt, ok := inner.(*MemTransport); ok {
		mt.SetFrom(opts.ID)
	}
	if qp, ok := inner.(queuePressurer); ok {
		n.qp = qp
	}
	n.setupObs()
	opts.Transport.SetHandlers(
		func(from core.NodeID, m core.Message) {
			// Inbound work is admitted under its message class: Critical
			// traffic blocks the transport's read path when the lane is
			// full (backpressure propagates to the sender), Repair and
			// Background traffic is shed instead.
			cls := core.ClassOf(m)
			n.enqueue(cls, cls == core.ClassCritical, func() {
				n.coreN.HandleMessage(from, m)
			})
		},
		func(peer core.NodeID) {
			// Failure notifications may originate from the event loop
			// itself (a send hitting a dead peer); never block on the
			// mailbox or the loop deadlocks. A dropped notification is
			// harmless: the keepalive timeout catches the failure.
			n.tryPost(func() { n.coreN.PeerDown(peer) })
		},
	)
	if pn, ok := inner.(pressureNotifier); ok {
		// A queue crossing its watermark kicks an immediate evaluation so
		// Shedding engages without waiting for the periodic tick.
		pn.SetPressureHandler(func() { n.tryPost(n.govEval) })
	}
	go n.loop()
	n.post(func() { n.coreN.Start() })
	n.armGovernor()
	return n
}

// ID returns the node's identifier.
func (n *Node) ID() core.NodeID { return n.opts.ID }

// Addr returns the node's transport address.
func (n *Node) Addr() string { return n.opts.Transport.Addr() }

// Entry returns the node's contact entry for bootstrapping others.
func (n *Node) Entry() core.Entry {
	return core.Entry{ID: n.opts.ID, Inc: n.opts.Incarnation, Addr: n.Addr()}
}

// Incarnation returns the node's incarnation number.
func (n *Node) Incarnation() uint32 { return n.opts.Incarnation }

// BecomeRoot designates this node as the initial tree root.
func (n *Node) BecomeRoot() {
	n.call(func() { n.coreN.BecomeRoot() })
}

// Join bootstraps through a node already in the group.
func (n *Node) Join(contact core.Entry) {
	n.call(func() { n.coreN.Join(contact) })
}

// SetLandmarks installs the latency-estimation landmark set.
func (n *Node) SetLandmarks(ls []core.Entry) {
	n.call(func() { n.coreN.SetLandmarks(ls) })
}

// Multicast injects a message into the group and returns its ID. On a
// stopped node nothing is sent and the zero MessageID is returned; while
// the node is Shedding the publish is rejected (also returning the zero
// ID). Use Publish to distinguish those outcomes.
func (n *Node) Multicast(payload []byte) core.MessageID {
	id, _ := n.Publish(payload)
	return id
}

// Publish injects a message into the group and returns its ID. It returns
// ErrOverloaded (and sends nothing) while the node is in the Shedding
// state — the caller should back off and retry — and ErrStopped after
// Close/Kill.
func (n *Node) Publish(payload []byte) (core.MessageID, error) {
	var id core.MessageID
	if n.gov.level.load() == core.OverloadShedding {
		n.pubRejected.Inc()
		return id, ErrOverloaded
	}
	if err := n.call(func() { id = n.coreN.Multicast(payload) }); err != nil {
		return id, err
	}
	return id, nil
}

// Overload returns the node's current degradation level.
func (n *Node) Overload() core.OverloadLevel { return n.gov.level.load() }

// OverloadStats snapshots the overload-protection counters (sheds per
// class, publish rejections, state transitions) in the same map shape as
// TransportStats.
func (n *Node) OverloadStats() map[string]int64 { return n.statsView("overload") }

// Degree returns the node's current overlay degree.
func (n *Node) Degree() int {
	var d int
	n.call(func() { d = n.coreN.Degree() })
	return d
}

// Neighbors snapshots the node's overlay links.
func (n *Node) Neighbors() []core.NeighborInfo {
	var out []core.NeighborInfo
	n.call(func() { out = n.coreN.Neighbors() })
	return out
}

// Root returns the node's view of the tree root.
func (n *Node) Root() core.NodeID {
	var r core.NodeID
	n.call(func() { r = n.coreN.Root() })
	return r
}

// Parent returns the node's tree parent.
func (n *Node) Parent() core.NodeID {
	var p core.NodeID
	n.call(func() { p = n.coreN.Parent() })
	return p
}

// TreeNeighbors snapshots the node's tree links (parent plus children).
func (n *Node) TreeNeighbors() []core.NodeID {
	var out []core.NodeID
	n.call(func() { out = n.coreN.TreeNeighbors() })
	return out
}

// Stats snapshots the node's protocol counters. After Close/Kill it
// returns the final pre-stop snapshot instead of zeros.
func (n *Node) Stats() core.Counters {
	n.collect()
	n.obsMu.Lock()
	defer n.obsMu.Unlock()
	return n.lastStats
}

// TransportStats snapshots the transport's counters, if the transport
// exposes them (TCPTransport and FaultTransport do); otherwise nil. It
// remains available after the node stops.
func (n *Node) TransportStats() map[string]int64 {
	out := n.statsView("transport")
	if len(out) == 0 {
		return nil
	}
	return out
}

// ChurnStats snapshots the node's churn-resilience counters in the same
// map shape as TransportStats, for /stats-style surfacing.
func (n *Node) ChurnStats() map[string]int64 { return n.statsView("churn") }

// SyncStats snapshots the anti-entropy sync and pull-miss counters in the
// same map shape as TransportStats, for /stats-style surfacing.
func (n *Node) SyncStats() map[string]int64 { return n.statsView("sync") }

// StoreStats snapshots the message store's occupancy and activity counters
// (puts, evictions, reclaims, ...).
func (n *Node) StoreStats() map[string]int64 { return n.statsView("store") }

// Spans snapshots the node's dissemination trace span ring in record
// order, or nil when span recording was disabled with a negative
// NodeOptions.SpanCapacity. Safe for concurrent use; feed the result
// (merged across nodes) to dtrace.Stitch.
func (n *Node) Spans() []dtrace.Span {
	if n.sbuf == nil {
		return nil
	}
	return n.sbuf.Snapshot()
}

// Seen reports whether the node has received the message.
func (n *Node) Seen(id core.MessageID) bool {
	var ok bool
	n.call(func() { ok = n.coreN.Seen(id) })
	return ok
}

// Close leaves the group gracefully and stops the node.
func (n *Node) Close() {
	n.once.Do(func() {
		n.call(func() { n.coreN.Leave() })
		n.collect() // freeze the final counters in the registry
		close(n.stopped)
		n.mb.stop()
		_ = n.opts.Transport.Close()
	})
}

// Kill stops the node abruptly without notifying anyone (for failure
// testing).
func (n *Node) Kill() {
	n.once.Do(func() {
		n.call(func() { n.coreN.Stop() })
		n.collect() // freeze the final counters in the registry
		close(n.stopped)
		n.mb.stop()
		_ = n.opts.Transport.Close()
	})
}

// enqueue admits fn to the mailbox under class cls, counting and
// rate-limited-logging sheds. It reports whether the work was admitted.
func (n *Node) enqueue(cls core.Class, wait bool, fn func()) bool {
	switch n.mb.push(cls, fn, wait) {
	case admitOK:
		return true
	case admitShed:
		n.noteMailboxShed(cls)
		return false
	default:
		return false
	}
}

// noteMailboxShed accounts one shed unit of class cls and emits the
// rate-limited overload log line.
func (n *Node) noteMailboxShed(cls core.Class) {
	n.mbDropped.Inc()
	n.mbShed[cls].Inc()
	now := time.Now().UnixNano()
	last := n.lastShedLog.Load()
	if now-last >= int64(shedLogInterval) && n.lastShedLog.CompareAndSwap(last, now) {
		n.opts.Overload.Logf("live: node %d: mailbox shedding (dropped=%d critical=%d repair=%d background=%d)",
			n.opts.ID, n.mbDropped.Value(),
			n.mbShed[core.ClassCritical].Value(), n.mbShed[core.ClassRepair].Value(),
			n.mbShed[core.ClassBackground].Value())
	}
}

// post enqueues Critical work for the event loop, blocking while the lane
// is full; it drops work once stopped.
func (n *Node) post(fn func()) {
	n.enqueue(core.ClassCritical, true, fn)
}

// tryPost enqueues Critical work without ever blocking, dropping it if
// the lane is full or the node stopped.
func (n *Node) tryPost(fn func()) {
	n.enqueue(core.ClassCritical, false, fn)
}

// call runs fn on the event loop and waits for it. After Close or Kill it
// returns ErrStopped without running fn (best effort: a call already
// queued when the node stops may still execute during the stop drain, in
// which case nil is returned). Public accessors built on call therefore
// return their documented zero values once the node has stopped.
func (n *Node) call(fn func()) error {
	select {
	case <-n.stopped:
		return ErrStopped
	default:
	}
	done := make(chan struct{})
	if !n.enqueue(core.ClassCritical, true, func() {
		defer close(done)
		fn()
	}) {
		return ErrStopped
	}
	select {
	case <-done:
		return nil
	case <-n.stopped:
		// The stop drain may still run the queued fn; report whichever
		// outcome is already decided without blocking.
		select {
		case <-done:
			return nil
		default:
			return ErrStopped
		}
	}
}

// Stopped reports whether Close or Kill has been called. API calls on a
// stopped node return zero values (internally ErrStopped).
func (n *Node) Stopped() bool {
	select {
	case <-n.stopped:
		return true
	default:
		return false
	}
}

func (n *Node) loop() {
	for {
		select {
		case <-n.stopped:
			// Drain whatever was queued so callers blocked in call()
			// observe their closure executed or the stop.
			for {
				fn, ok := n.mb.pop()
				if !ok {
					return
				}
				n.runSafe(fn)
			}
		case <-n.mb.wake:
			for {
				fn, ok := n.mb.pop()
				if !ok {
					break
				}
				n.runSafe(fn)
			}
		}
	}
}

// runSafe executes one unit of event-loop work, containing panics: a
// panicking callback (OnDeliver, a protocol bug) is counted, logged with
// its stack, and marks the node unhealthy — without killing the process
// or the loop.
func (n *Node) runSafe(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			n.panicked.Store(true)
			n.loopPanics.Inc()
			n.opts.Overload.Logf("live: node %d: event loop panic recovered: %v\n%s",
				n.opts.ID, r, debug.Stack())
		}
	}()
	fn()
}

// armGovernor schedules the periodic overload evaluation. The timer
// goroutine blocks on the Critical lane like any other poster, so under
// saturation evaluations are paced by the loop rather than piling up.
func (n *Node) armGovernor() {
	time.AfterFunc(n.opts.Overload.EvalInterval, func() {
		if n.Stopped() {
			return
		}
		n.post(n.govEval)
		if n.Stopped() {
			return
		}
		n.armGovernor()
	})
}

// govEval runs one governor evaluation on the event loop: sample queue
// occupancy and budget pressure, advance the state machine, and apply any
// transition to the core node and the metrics.
func (n *Node) govEval() {
	crit, worst := n.mb.pressure()
	var queuedBytes int64
	if n.qp != nil {
		p := n.qp.QueuePressure()
		if p.Critical > crit {
			crit = p.Critical
		}
		if p.Worst > worst {
			worst = p.Worst
		}
		queuedBytes = p.QueuedBytes
	}
	shedNow := n.mb.shedTotal()
	shedDelta := shedNow - n.gov.lastShed
	n.gov.lastShed = shedNow
	var memFrac float64
	if b := n.opts.Overload.MemBudget; b > 0 {
		memFrac = float64(n.coreN.Store().Bytes()+queuedBytes) / float64(b)
	}
	was := n.gov.cur
	now := n.gov.step(crit, worst, memFrac, shedDelta)
	if now != was {
		n.ovState.Set(int64(now))
		n.ovTrans.Inc()
		n.coreN.SetOverload(now)
		n.opts.Overload.Logf("live: node %d: overload %s -> %s (critical=%.2f worst=%.2f mem=%.2f shed=%d)",
			n.opts.ID, was, now, crit, worst, memFrac, shedDelta)
	}
}

// liveEnv adapts real time and the transport to core.Env. All methods are
// invoked from the node's event loop.
type liveEnv struct {
	n     *Node
	start time.Time
	rng   *rand.Rand
	addrs map[core.NodeID]string
}

var _ core.Env = (*liveEnv)(nil)

func (e *liveEnv) Now() time.Duration { return time.Since(e.start) }

func (e *liveEnv) Rand(n int) int {
	if n <= 0 {
		return 0
	}
	return e.rng.Intn(n)
}

func (e *liveEnv) Learn(entry core.Entry) {
	if entry.Addr != "" {
		e.addrs[entry.ID] = entry.Addr
	}
}

func (e *liveEnv) Send(to core.NodeID, m core.Message) {
	if addr, ok := e.addrs[to]; ok {
		e.n.opts.Transport.Send(addr, to, m)
	}
}

func (e *liveEnv) SendDatagram(to core.NodeID, m core.Message) {
	if addr, ok := e.addrs[to]; ok {
		e.n.opts.Transport.SendDatagram(addr, to, m)
	}
}

func (e *liveEnv) After(d time.Duration, fn func()) core.Timer {
	t := &liveTimer{}
	t.t = time.AfterFunc(d, func() {
		e.n.post(func() {
			if !t.stopped.Load() {
				fn()
			}
		})
	})
	return core.MakeTimer(t, 0)
}

type liveTimer struct {
	t       *time.Timer
	stopped atomic.Bool
}

// CancelTimer makes *liveTimer a core.TimerCanceller; the id is unused
// because each wall-clock timer has its own canceller.
func (t *liveTimer) CancelTimer(uint64) bool {
	t.stopped.Store(true)
	return t.t.Stop()
}
