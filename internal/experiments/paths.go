package experiments

import (
	"fmt"
	"time"

	"gocast/internal/core"
	"gocast/internal/dtrace"
	"gocast/internal/netsim"
)

// Paths traces every injected multicast through a lossy network and
// reports, per message, how the group actually received it: how many
// deliveries rode the multicast tree versus being recovered by gossip
// pull or anti-entropy sync, how deep the dissemination tree went, and
// the latency attribution of each path class. This is the dissemination
// tracing (internal/dtrace) counterpart of the delay figures: where
// Figure 3 shows *when* messages arrive, Paths shows *how*.
//
// Every message is sampled (TraceSampleEvery=1) and the network drops
// the given fraction of transmissions (default 10%), so the pull-repair
// machinery is exercised on every run. Deterministic per seed.
func Paths(sc Scale, loss float64) *Report {
	if loss <= 0 {
		loss = 0.10
	}
	msgs := sc.Messages
	if msgs > 16 {
		// Tracing every delivery of every message: keep the message count
		// small enough that the span buffer holds the whole run.
		msgs = 16
	}
	cfg := core.DefaultConfig()
	cfg.TraceSampleEvery = 1
	spans := dtrace.NewBuffer(sc.Nodes * msgs * 8)

	c := netsim.New(netsim.Options{Nodes: sc.Nodes, Seed: sc.Seed, Config: cfg, Spans: spans})
	c.BootstrapMembership(cfg.MemberViewSize / 2)
	c.WireRandom(cfg.TargetDegree() / 2)
	c.Start(0)
	c.Run(sc.Warmup)

	c.SetFaults(&netsim.FaultSpec{
		Seed:  sc.Seed + 41,
		Rules: []netsim.LinkFault{{Loss: loss}},
	})
	c.InjectStream(msgs, sc.Rate, nil)
	c.Run(time.Duration(float64(msgs)/sc.Rate*float64(time.Second)) + sc.Drain)
	c.SetFaults(nil)

	rep := &Report{
		Name:   fmt.Sprintf("Dissemination paths: delivery attribution at %.0f%% loss", loss*100),
		Header: []string{"msg", "deliveries", "tree", "pull", "sync", "fec", "max-hops", "tree-p50", "pull-p50", "pull-wait-p50"},
	}
	traces := dtrace.Stitch(c.Spans())
	var totTree, totPull, totSync, totFec int
	var treeAges, pullAges, pullWaits []time.Duration
	for _, t := range traces {
		tree, pull, sync, fec := t.Counts()
		totTree += tree
		totPull += pull
		totSync += sync
		totFec += fec
		var msgTree, msgPull, msgWait []time.Duration
		for _, d := range t.Deliveries {
			switch d.Via {
			case "tree":
				msgTree = append(msgTree, d.Age)
			case "pull":
				msgPull = append(msgPull, d.Age)
				msgWait = append(msgWait, d.Wait)
			}
		}
		treeAges = append(treeAges, msgTree...)
		pullAges = append(pullAges, msgPull...)
		pullWaits = append(pullWaits, msgWait...)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d/%d", t.Src, t.Seq),
			fmt.Sprintf("%d", len(t.Deliveries)),
			fmt.Sprintf("%d", tree),
			fmt.Sprintf("%d", pull),
			fmt.Sprintf("%d", sync),
			fmt.Sprintf("%d", fec),
			fmt.Sprintf("%d", t.MaxHops()),
			fmtDur(median(msgTree)),
			fmtDur(median(msgPull)),
			fmtDur(median(msgWait)),
		})
	}
	total := totTree + totPull + totSync + totFec
	if total > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"%d deliveries traced: %.1f%% tree push, %.1f%% pull-recovered, %.1f%% sync, %.1f%% fec",
			total,
			100*float64(totTree)/float64(total),
			100*float64(totPull)/float64(total),
			100*float64(totSync)/float64(total),
			100*float64(totFec)/float64(total)))
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("group-wide p50 age: tree %s, pull %s (advert-to-request wait p50 %s)",
			fmtDur(median(treeAges)), fmtDur(median(pullAges)), fmtDur(median(pullWaits))),
		fmt.Sprintf("%d nodes, %d messages at %.0f/s after %v adaptation, every message traced, seed %d",
			sc.Nodes, msgs, sc.Rate, sc.Warmup, sc.Seed),
		fmt.Sprintf("span buffer: %d recorded, %d evicted (want 0)", spans.Len(), spans.Dropped()),
		"render any one tree: gocast-trace -in <(curl .../spans) -msg src/seq; in-process, dtrace.Stitch + Render",
	)
	return rep
}

// median returns the middle value of an unsorted duration sample (0 when
// empty). The sample is small; a sort-free selection is not worth it.
func median(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), ds...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}
