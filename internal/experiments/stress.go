package experiments

import (
	"fmt"
	"time"

	"gocast/internal/core"
	"gocast/internal/netsim"
	"gocast/internal/pushgossip"
	"gocast/internal/underlay"
)

// LinkStress reproduces adaptation summary (4): mapped onto an AS-level
// underlay, GoCast imposes 4-7x less traffic on bottleneck physical links
// than push gossip with fanout 5, because its neighbor set (and hence its
// gossip and payload traffic) is proximity-aware while random gossip
// crosses the backbone constantly.
//
// Both systems run the same workload on the same underlay: end-to-end
// latencies are the underlay's shortest-path distances, every transmission
// is routed along its shortest path, and per-physical-link bytes are
// accumulated.
func LinkStress(sc Scale, ases, payload int) *Report {
	g := underlay.Generate(ases, 2, sc.Seed)
	router := underlay.NewRouter(g)
	matrix := router.Matrix()
	asOf := func(node int) int { return node % ases }

	// GoCast on the underlay.
	gcStress := underlay.NewStress(router)
	cfg := core.DefaultConfig()
	c := netsim.New(netsim.Options{
		Nodes:  sc.Nodes,
		Seed:   sc.Seed,
		Config: cfg,
		Matrix: matrix,
		Observer: func(from, to core.NodeID, m core.Message) {
			gcStress.AddTransmission(asOf(int(from)), asOf(int(to)), m.WireSize())
		},
	})
	c.BootstrapMembership(cfg.MemberViewSize / 2)
	c.WireRandom(cfg.TargetDegree() / 2)
	c.Start(0)
	c.Run(sc.Warmup)
	// Only count the steady state: the one-off adaptation warmup is not
	// what the paper's per-message stress compares.
	warmupMax := gcStress.Max()
	gcStress.Reset()
	c.InjectStream(sc.Messages, sc.Rate, make([]byte, payload))
	c.Run(time.Duration(float64(sc.Messages)/sc.Rate*float64(time.Second)) + sc.Drain)
	gcMax := gcStress.Max()
	gcTotal := gcStress.Total()

	// Push gossip (fanout 5) on the same underlay and workload.
	pgStress := underlay.NewStress(router)
	s := pushgossip.New(pushgossip.Options{
		Nodes:        sc.Nodes,
		Seed:         sc.Seed,
		Fanout:       5,
		GossipPeriod: 100 * time.Millisecond,
		PayloadSize:  payload,
		Matrix:       matrix,
		Observer: func(from, to, bytes int) {
			pgStress.AddTransmission(asOf(from), asOf(to), bytes)
		},
	})
	s.InjectStream(sc.Messages, sc.Rate)
	s.Run(time.Duration(float64(sc.Messages)/sc.Rate*float64(time.Second)) + sc.Drain)
	pgMax := pgStress.Max()
	pgTotal := pgStress.Total()

	rep := &Report{
		Name:   fmt.Sprintf("Adaptation summary (4): bottleneck link stress (%d ASes, %d nodes)", ases, sc.Nodes),
		Header: []string{"protocol", "bottleneck bytes", "total bytes", "links used"},
		Rows: [][]string{
			{"gocast", fmt.Sprintf("%d", gcMax), fmt.Sprintf("%d", gcTotal), fmt.Sprintf("%d", gcStress.Links())},
			{"gossip F=5", fmt.Sprintf("%d", pgMax), fmt.Sprintf("%d", pgTotal), fmt.Sprintf("%d", pgStress.Links())},
		},
	}
	if gcMax > 0 {
		rep.Notes = append(rep.Notes,
			fmt.Sprintf("bottleneck reduction factor: %.1fx (paper: 4-7x)", float64(pgMax)/float64(gcMax)))
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("gocast max link bytes during adaptation warmup: %d (excluded from comparison)", warmupMax))
	return rep
}

// FanoutSweep reproduces adaptation summary (5): raising the push-gossip
// fanout from 5 to 9 trims the delay only ~5%, and 15 adds nothing,
// because the number of gossip rounds needed shrinks only logarithmically.
func FanoutSweep(sc Scale, fanouts []int) *Report {
	if len(fanouts) == 0 {
		fanouts = []int{5, 7, 9, 12, 15}
	}
	rep := &Report{
		Name:   "Adaptation summary (5): push-gossip delay vs fanout",
		Header: []string{"fanout", "mean", "p90", "p99", "delivered"},
	}
	for _, f := range fanouts {
		s := pushgossip.New(pushgossip.Options{
			Nodes:        sc.Nodes,
			Seed:         sc.Seed,
			Fanout:       f,
			GossipPeriod: 100 * time.Millisecond,
		})
		s.InjectStream(sc.Messages, sc.Rate)
		s.Run(time.Duration(float64(sc.Messages)/sc.Rate*float64(time.Second)) + sc.Drain)
		rec := s.Delays()
		cdf := rec.CDF()
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", f),
			fmtDur(cdf.Mean()),
			fmtDur(cdf.Quantile(0.90)),
			fmtDur(cdf.Quantile(0.99)),
			fmt.Sprintf("%.4f", rec.DeliveryRatio()),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper: fanout 5 -> 9 cuts delay ~5%; 9 -> 15 has virtually no impact")
	return rep
}
