package experiments

import (
	"fmt"
	"os"
	"testing"
	"time"
)

// TestDiameterSweepBig measures the overlay diameter at the paper's
// largest scales. It takes many minutes, so it only runs when explicitly
// requested:
//
//	GOCAST_BIG=1 go test ./internal/experiments -run TestDiameterSweepBig -v
func TestDiameterSweepBig(t *testing.T) {
	if os.Getenv("GOCAST_BIG") == "" {
		t.Skip("set GOCAST_BIG=1 to run the 4096/8192-node diameter sweep")
	}
	rep := Diameter([]int{4096, 8192}, 300*time.Second, 1)
	fmt.Println(rep.String())
}
