package experiments

import (
	"fmt"
	"time"

	"gocast/internal/core"
	"gocast/internal/netsim"
	"gocast/internal/underlay"
)

// Coopcast measures erasure-coded bulk dissemination against the classic
// whole-payload path on a lossy AS-level underlay. For each payload size,
// the same cluster and workload run twice — coopcast off and on — and the
// report compares:
//
//   - max per-physical-link bytes (underlay link-stress harness): the
//     striping rule sends each symbol down ONE tree link, so no link
//     carries the whole payload, while whole-payload tree push puts every
//     byte on every tree link;
//   - repair traffic under loss: whole-mode repair re-sends the entire
//     payload per pull, coopcast re-sends only the missing symbols — the
//     average repair transfer stays near the symbol size no matter how
//     large the payload grows (sublinear in payload size).
//
// Delivery must stay total in both modes; loss is repaired by pulls (and
// the sync backstop), never given up on.
func Coopcast(sc Scale, payloads []int, loss float64) *Report {
	if len(payloads) == 0 {
		payloads = []int{64 << 10, 256 << 10}
	}
	nodes := sc.Nodes
	if nodes > 128 {
		nodes = 128 // bulk payloads: modest group, big messages
	}
	const ases = 32
	const msgs = 3

	type result struct {
		delivered   int
		maxASLink   int64
		maxPeerLink int64
		repairXfers int64
		repairBytes int64
		decodeFails int64
		symbolPulls int64
	}

	run := func(coopcast bool, payload int) result {
		cfg := core.DefaultConfig()
		if coopcast {
			cfg.CoopcastThreshold = 32 << 10
			cfg.FECSymbolSize = 1024
			cfg.FECRepair = 4
		}
		g := underlay.Generate(ases, 2, sc.Seed)
		router := underlay.NewRouter(g)
		stress := underlay.NewStress(router)
		asOf := func(node int) int { return node % ases }
		var repairBytes, repairXfers int64
		// perLink tallies bytes per directed node pair: the hottest single
		// link is where whole-payload tree push concentrates load and where
		// striping's per-link relief shows.
		perLink := map[int64]int64{}
		c := netsim.New(netsim.Options{
			Nodes:  nodes,
			Seed:   sc.Seed,
			Config: cfg,
			Matrix: router.Matrix(),
			Observer: func(from, to core.NodeID, m core.Message) {
				stress.AddTransmission(asOf(int(from)), asOf(int(to)), m.WireSize())
				perLink[int64(from)<<32|int64(uint32(to))] += int64(m.WireSize())
				// Repair traffic: everything that re-transfers payload
				// bytes outside the primary tree push.
				switch v := m.(type) {
				case *core.Multicast:
					if !v.ViaTree {
						repairBytes += int64(m.WireSize())
						repairXfers++
					}
				case *core.Symbol:
					if !v.ViaTree {
						repairBytes += int64(m.WireSize())
						repairXfers++
					}
				case *core.PullRequest, *core.SymbolPull:
					repairBytes += int64(m.WireSize())
				case *core.SyncReply:
					if len(v.Items) > 0 || len(v.Syms) > 0 {
						repairBytes += int64(m.WireSize())
						repairXfers += int64(len(v.Items) + len(v.Syms))
					}
				}
			},
		})
		c.BootstrapMembership(cfg.MemberViewSize / 2)
		c.WireRandom(cfg.TargetDegree() / 2)
		c.Start(0)
		c.Run(sc.Warmup)
		// Steady state reached: count only the dissemination phase.
		stress.Reset()
		repairBytes, repairXfers = 0, 0
		perLink = map[int64]int64{}
		c.SetFaults(&netsim.FaultSpec{Seed: sc.Seed + 3, Rules: []netsim.LinkFault{{Loss: loss}}})
		for i := 0; i < msgs; i++ {
			c.Inject((i*17)%nodes, make([]byte, payload))
			c.Run(10 * time.Second)
		}
		c.Run(90 * time.Second)
		delivered := nodes
		for _, got := range c.ReceiveCounts() {
			if got < delivered {
				delivered = got
			}
		}
		var maxPeer int64
		for _, b := range perLink {
			if b > maxPeer {
				maxPeer = b
			}
		}
		s := c.SumCounters()
		return result{
			delivered:   delivered,
			maxASLink:   stress.Max(),
			maxPeerLink: maxPeer,
			repairXfers: repairXfers,
			repairBytes: repairBytes,
			decodeFails: s.FECDecodeFailures,
			symbolPulls: s.SymbolPullsSent,
		}
	}

	rep := &Report{
		Name: fmt.Sprintf("Coopcast: erasure-coded bulk dissemination (%d nodes, %d ASes, %.0f%% loss)",
			nodes, ases, loss*100),
		Header: []string{"payload", "mode", "delivered", "max peer-link bytes", "max AS-link bytes", "repair xfers", "repair bytes", "avg repair xfer"},
	}
	for _, payload := range payloads {
		whole := run(false, payload)
		coop := run(true, payload)
		row := func(mode string, r result) []string {
			avg := int64(0)
			if r.repairXfers > 0 {
				avg = r.repairBytes / r.repairXfers
			}
			return []string{
				fmt.Sprintf("%dKiB", payload>>10), mode,
				fmt.Sprintf("%d/%d", r.delivered, nodes),
				fmt.Sprintf("%d", r.maxPeerLink),
				fmt.Sprintf("%d", r.maxASLink),
				fmt.Sprintf("%d", r.repairXfers),
				fmt.Sprintf("%d", r.repairBytes),
				fmt.Sprintf("%d", avg),
			}
		}
		rep.Rows = append(rep.Rows, row("whole", whole), row("coopcast", coop))
		if coop.maxPeerLink > 0 {
			rep.Notes = append(rep.Notes, fmt.Sprintf(
				"%dKiB: hottest-link reduction %.1fx; avg repair transfer %d B vs %d B (symbol-sized, sublinear in payload)",
				payload>>10,
				float64(whole.maxPeerLink)/float64(coop.maxPeerLink),
				avgOf(coop.repairBytes, coop.repairXfers),
				avgOf(whole.repairBytes, whole.repairXfers)))
		}
		if coop.decodeFails > 0 {
			rep.Notes = append(rep.Notes, fmt.Sprintf("%dKiB: %d FEC decode failures (unexpected)", payload>>10, coop.decodeFails))
		}
		if coop.symbolPulls == 0 {
			rep.Notes = append(rep.Notes, fmt.Sprintf("%dKiB: no symbol pulls — loss model inert?", payload>>10))
		}
	}
	return rep
}

func avgOf(bytes, n int64) int64 {
	if n == 0 {
		return 0
	}
	return bytes / n
}
