package experiments

import (
	"testing"
)

func TestAblateC1ProducesBothVariants(t *testing.T) {
	rep := AblateC1(tinyScale())
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
	paper := parseSeconds(t, rep.Rows[0][1])
	strict := parseSeconds(t, rep.Rows[1][1])
	if paper <= 0 || strict <= 0 {
		t.Fatalf("latencies must be positive: %v vs %v", paper, strict)
	}
	// The paper's setting should not be (meaningfully) worse than the
	// strict variant.
	if paper > strict*1.2 {
		t.Errorf("paper C1 latency %.3fs much worse than strict %.3fs", paper, strict)
	}
}

func TestAblateDropTriggerChurn(t *testing.T) {
	rep := AblateDropTrigger(tinyScale())
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
	base := parseFloat(t, rep.Rows[0][1])
	aggressive := parseFloat(t, rep.Rows[1][1])
	if base <= 0 || aggressive <= 0 {
		t.Fatalf("link change counts must be positive")
	}
	// Paper: the aggressive trigger increases link changes (~1/3). Allow
	// noise at tiny scale but it must not *reduce* churn dramatically.
	if aggressive < base*0.8 {
		t.Errorf("aggressive trigger churn %v unexpectedly below paper setting %v", aggressive, base)
	}
}

func TestAblateC4Churn(t *testing.T) {
	rep := AblateC4(tinyScale())
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rep.Rows))
	}
	paper := parseFloat(t, rep.Rows[0][1])
	any := parseFloat(t, rep.Rows[1][1])
	// Accepting any improvement must churn more links than requiring a 2x
	// improvement — that is the entire point of C4.
	if any <= paper {
		t.Errorf("C4-off churn %v should exceed paper churn %v", any, paper)
	}
}
