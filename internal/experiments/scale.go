package experiments

import (
	"fmt"
	"time"

	"gocast/internal/core"
)

// ScaleSweep pushes one GoCast configuration through a series of system
// sizes — into the 10⁵–10⁶-node regime the paper's sequential C++
// simulator never reached — and reports, per size, the wall-clock cost
// of simulating it alongside the delivery quality. Unlike the figure
// runners the wall-clock column is real time, not virtual time, so the
// table is a performance record (it varies with the host); every other
// column is deterministic in the seed and identical at any shard count.
//
// Points run one after another (never through the sweep worker pool):
// each point is itself parallel across sc.Shards and is being timed.
func ScaleSweep(sc Scale, sizes []int) *Report {
	if len(sizes) == 0 {
		sizes = []int{1 << 10, 1 << 13, 1 << 15}
	}
	rep := &Report{
		Name: "Scale sweep: simulation cost and delivery vs system size",
		Header: []string{"nodes", "shards", "wall", "events", "ev/s",
			"p50", "p99", "delivered", "atomic-viol"},
	}
	for _, n := range sizes {
		p := sc
		p.Nodes = n
		c := buildOverlayCluster(p, overlayConfigOrDefault())
		start := time.Now()
		c.Run(p.Warmup)
		c.InjectStream(p.Messages, p.Rate, nil)
		c.Run(time.Duration(float64(p.Messages)/p.Rate*float64(time.Second)) + p.Drain)
		wall := time.Since(start)
		rec := c.Delays()
		cdf := rec.CDF()
		events := c.ExecutedEvents()
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", c.EffectiveShards()),
			fmt.Sprintf("%.1fs", wall.Seconds()),
			fmt.Sprintf("%d", events),
			fmt.Sprintf("%.2gM", float64(events)/wall.Seconds()/1e6),
			fmtDur(cdf.Quantile(0.50)),
			fmtDur(cdf.Quantile(0.99)),
			fmt.Sprintf("%.4f", rec.DeliveryRatio()),
			fmt.Sprintf("%d", c.AtomicityViolations(5*time.Second)),
		})
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("per point: %v warmup, %d messages at %.0f/s, %v drain, %d shards requested, seed %d",
			sc.Warmup, sc.Messages, sc.Rate, sc.Drain, sc.Shards, sc.Seed),
		"wall and ev/s are host wall-clock (not deterministic); all other columns are seed-deterministic and shard-count-independent",
	)
	return rep
}

// overlayConfigOrDefault returns the GoCast default configuration (the
// sweep measures the engine, not a protocol ablation).
func overlayConfigOrDefault() core.Config {
	c, _ := overlayConfig(ProtoGoCast)
	return c
}
