package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// tinyScale keeps the shape of the experiments while staying test-fast.
func tinyScale() Scale {
	return Scale{
		Nodes:    96,
		Warmup:   60 * time.Second,
		Messages: 20,
		Rate:     100,
		Drain:    30 * time.Second,
		Seed:     1,
	}
}

func parseSeconds(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "s"), 64)
	if err != nil {
		t.Fatalf("cannot parse duration cell %q: %v", cell, err)
	}
	return v
}

func parseFloat(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("cannot parse cell %q: %v", cell, err)
	}
	return v
}

func TestFigure1ClosedForm(t *testing.T) {
	rep := Figure1(1024, 20)
	if len(rep.Rows) != 20 {
		t.Fatalf("rows = %d, want 20", len(rep.Rows))
	}
	// Monotone increasing in fanout; 1000-message curve below the
	// 1-message curve; fanout 15 still below 0.5 for 1000 messages.
	var prev float64 = -1
	for _, row := range rep.Rows {
		p1 := parseFloat(t, row[1])
		p1000 := parseFloat(t, row[2])
		if p1 < prev {
			t.Fatalf("P(all hear) not monotone in fanout")
		}
		prev = p1
		if p1000 > p1 {
			t.Fatalf("1000-message reliability above single-message reliability")
		}
		// Paper: "lower than 0.5 when the fanout is smaller than 15".
		if row[0] == "14" && p1000 >= 0.5 {
			t.Errorf("fanout 14 should give < 0.5 for 1000 msgs, got %v", p1000)
		}
		if row[0] == "15" && p1000 < 0.5 {
			t.Errorf("fanout 15 should cross 0.5 for 1000 msgs, got %v", p1000)
		}
	}
}

func TestFigure3ShapeNoFailures(t *testing.T) {
	rep := Figure3(tinyScale(), 0)
	if len(rep.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 protocols", len(rep.Rows))
	}
	byName := map[string][]string{}
	for _, row := range rep.Rows {
		byName[row[0]] = row
	}
	gocast := parseSeconds(t, byName["gocast"][4]) // p99
	gossip := parseSeconds(t, byName["gossip"][4])
	prox := parseSeconds(t, byName["proximity-overlay"][4])
	if gocast >= gossip {
		t.Errorf("GoCast p99 %.3fs should beat gossip %.3fs", gocast, gossip)
	}
	if gocast >= prox {
		t.Errorf("GoCast p99 %.3fs should beat proximity overlay %.3fs", gocast, prox)
	}
	// Overlay-based protocols deliver everything without failures.
	for _, p := range []string{"gocast", "proximity-overlay", "random-overlay"} {
		if ratio := parseFloat(t, byName[p][6]); ratio < 1 {
			t.Errorf("%s delivery ratio %.4f, want 1", p, ratio)
		}
	}
}

func TestFigure3ShapeWithFailures(t *testing.T) {
	rep := Figure3(tinyScale(), 0.20)
	byName := map[string][]string{}
	for _, row := range rep.Rows {
		byName[row[0]] = row
	}
	// With 20% failures and no repair, the overlay protocols still
	// deliver every message to every live node.
	for _, p := range []string{"gocast", "proximity-overlay", "random-overlay"} {
		if ratio := parseFloat(t, byName[p][6]); ratio < 1 {
			t.Errorf("%s delivery ratio %.4f under failures, want 1", p, ratio)
		}
	}
}

func TestFigure5aConvergence(t *testing.T) {
	rep := Figure5a(tinyScale())
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 snapshots", len(rep.Rows))
	}
	first := parseFloat(t, rep.Rows[0][1])
	last := parseFloat(t, rep.Rows[2][1])
	if last <= first {
		t.Errorf("degree-6 fraction should grow: %v%% -> %v%%", first, last)
	}
	if last < 40 {
		t.Errorf("converged degree-6 fraction = %v%%, want >= 40%%", last)
	}
}

func TestFigure5bLatencyDrops(t *testing.T) {
	rep := Figure5b(tinyScale(), 60*time.Second, 20*time.Second)
	first := parseSeconds(t, rep.Rows[0][1])
	last := parseSeconds(t, rep.Rows[len(rep.Rows)-1][1])
	if last >= first {
		t.Errorf("overlay latency should fall during adaptation: %.3fs -> %.3fs", first, last)
	}
	lastTree := parseSeconds(t, rep.Rows[len(rep.Rows)-1][2])
	if lastTree > last {
		t.Errorf("tree links (%.3fs) should be no worse than overlay average (%.3fs)", lastTree, last)
	}
}

func TestFigure6RandomLinksMatter(t *testing.T) {
	sc := tinyScale()
	rep := Figure6(sc, []float64{0.25}, []int{0, 1})
	if len(rep.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rep.Rows))
	}
	q0 := parseFloat(t, rep.Rows[0][1])
	q1 := parseFloat(t, rep.Rows[0][2])
	if q1 < 0.99 {
		t.Errorf("C_rand=1 at 25%% failures: q=%.3f, want ~1 (paper)", q1)
	}
	if q0 >= q1 {
		t.Errorf("C_rand=0 (q=%.3f) should be worse than C_rand=1 (q=%.3f)", q0, q1)
	}
}

func TestHearCountsCensus(t *testing.T) {
	sc := tinyScale()
	sc.Nodes = 256
	rep := HearCounts(sc, 5)
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	mean := parseFloat(t, rep.Rows[1][1])
	if mean < 3.5 || mean > 6.5 {
		t.Errorf("mean hears = %.2f, want near fanout 5", mean)
	}
	max := parseFloat(t, rep.Rows[2][1])
	if max < 8 {
		t.Errorf("max hears = %.0f, want heavy tail", max)
	}
}

func TestRedundancyPullDelayHelps(t *testing.T) {
	rep := Redundancy(tinyScale(), []time.Duration{0, 300 * time.Millisecond})
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	dup0 := parseFloat(t, rep.Rows[0][2])
	dupF := parseFloat(t, rep.Rows[1][2])
	if dupF > dup0 {
		t.Errorf("pull delay should reduce redundancy: %.5f -> %.5f", dup0, dupF)
	}
}

func TestLinkChangesDecay(t *testing.T) {
	rep := LinkChanges(tinyScale(), 60*time.Second, 10*time.Second)
	if len(rep.Rows) < 3 {
		t.Fatalf("rows = %d, want >= 3 buckets", len(rep.Rows))
	}
	first := parseFloat(t, rep.Rows[0][1])
	last := parseFloat(t, rep.Rows[len(rep.Rows)-1][1])
	if last >= first {
		t.Errorf("link change rate should decay: %.1f/s -> %.1f/s", first, last)
	}
}

func TestFanoutSweepDiminishingReturns(t *testing.T) {
	sc := tinyScale()
	sc.Nodes = 256
	rep := FanoutSweep(sc, []int{5, 9, 15})
	m5 := parseSeconds(t, rep.Rows[0][1])
	m15 := parseSeconds(t, rep.Rows[2][1])
	// Tripling the fanout must not triple the speed; the improvement is
	// marginal (paper: ~5% from 5 to 9, none beyond).
	if m15 < m5*0.5 {
		t.Errorf("fanout 15 mean %.3fs vs fanout 5 %.3fs: improvement too large for the claim", m15, m5)
	}
}

func TestLinkStressFavorsGoCast(t *testing.T) {
	sc := tinyScale()
	sc.Nodes = 128
	sc.Messages = 50
	rep := LinkStress(sc, 64, 1000)
	gc := parseFloat(t, rep.Rows[0][1])
	pg := parseFloat(t, rep.Rows[1][1])
	if gc <= 0 || pg <= 0 {
		t.Fatalf("stress accounting produced zeros: gocast=%v gossip=%v", gc, pg)
	}
	if pg <= gc {
		t.Errorf("gossip bottleneck bytes (%v) should exceed gocast (%v)", pg, gc)
	}
}

func TestFigure3CurvesShape(t *testing.T) {
	sc := tinyScale()
	rep := Figure3Curves(sc, 0, 20, 3*time.Second)
	if len(rep.Rows) != 20 || len(rep.Header) != 6 {
		t.Fatalf("curve table %dx%d, want 20x6", len(rep.Rows), len(rep.Header))
	}
	// Each protocol column is monotone nondecreasing, and GoCast reaches a
	// high fraction by the last row.
	for col := 1; col < 6; col++ {
		prev := -1.0
		for _, row := range rep.Rows {
			v := parseFloat(t, row[col])
			if v < prev {
				t.Fatalf("column %s not monotone", rep.Header[col])
			}
			prev = v
		}
	}
	if last := parseFloat(t, rep.Rows[19][1]); last < 0.99 {
		t.Errorf("gocast fraction at 3s = %v, want ~1", last)
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{
		Name:   "test",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"note"},
	}
	s := rep.String()
	for _, want := range []string{"== test ==", "a", "1", "# note"} {
		if !strings.Contains(s, want) {
			t.Errorf("report rendering missing %q:\n%s", want, s)
		}
	}
}
