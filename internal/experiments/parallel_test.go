package experiments

import (
	"testing"
	"time"
)

// TestParallelMatchesSequential is the load-bearing guarantee behind
// `gocast-experiments -parallel`: fanning an experiment's independent
// simulations across workers must render byte-identical reports, because
// every simulation owns its engine and RNG chain and results are
// assembled in input order. Figure 3 fans across protocols, Figure 4
// across sweep points, and the CDF curves across protocols with shared
// column assembly — together they cover every runIndexed call shape.
func TestParallelMatchesSequential(t *testing.T) {
	sc := tinyScale()
	sc.Nodes = 64
	sc.Warmup = 40 * time.Second
	sc.Messages = 10
	large := sc
	large.Nodes = 96
	large.Seed = sc.Seed + 7

	cases := []struct {
		name string
		gen  func() *Report
	}{
		{"figure3", func() *Report { return Figure3(sc, 0.10) }},
		{"figure4", func() *Report { return Figure4(sc, large, 0.20) }},
		{"figure3curves", func() *Report { return Figure3Curves(sc, 0, 10, 4*time.Second) }},
	}

	defer SetParallelism(1)
	for _, tc := range cases {
		SetParallelism(1)
		seq := tc.gen().String()
		SetParallelism(8)
		par := tc.gen().String()
		if seq != par {
			t.Fatalf("%s: parallel output differs from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s",
				tc.name, seq, par)
		}
	}
}

// TestRunIndexedCoversAllIndices pins the worker-pool contract: every
// index is visited exactly once regardless of worker count.
func TestRunIndexedCoversAllIndices(t *testing.T) {
	defer SetParallelism(1)
	for _, workers := range []int{1, 2, 7, 64} {
		SetParallelism(workers)
		const n = 41
		hits := make([]int32, n)
		runIndexed(n, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}
