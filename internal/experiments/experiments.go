// Package experiments reproduces every table and figure of the GoCast
// paper's evaluation (Section 3), plus its in-text quantitative claims and
// the ablations DESIGN.md commits to. Each runner is a pure function of a
// Scale and returns a Report whose rows mirror the paper's plots.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"gocast/internal/churn"
	"gocast/internal/core"
	"gocast/internal/metrics"
	"gocast/internal/netsim"
	"gocast/internal/pushgossip"
)

// Scale sets the size/duration knobs shared by the experiment runners.
// PaperScale reproduces the paper's setup; QuickScale is for benchmarks
// and CI.
type Scale struct {
	// Nodes is the system size (paper: 1,024; Figure 4 also uses 8,192).
	Nodes int
	// Warmup is the adaptation period before messages are injected
	// (paper: 500 s).
	Warmup time.Duration
	// Messages is the number of multicasts measured (paper: 1,000).
	Messages int
	// Rate is the injection rate in messages/second (paper: 100).
	Rate float64
	// Drain is how long after the last injection the run keeps going so
	// stragglers arrive.
	Drain time.Duration
	// Seed drives all randomness.
	Seed int64
	// Shards requests conservative parallel simulation (netsim
	// Options.Shards): results are identical at any shard count, so it is
	// purely a wall-clock knob. 0 runs sequentially.
	Shards int
}

// PaperScale is the paper's experimental setup.
func PaperScale() Scale {
	return Scale{
		Nodes:    1024,
		Warmup:   500 * time.Second,
		Messages: 1000,
		Rate:     100,
		Drain:    60 * time.Second,
		Seed:     1,
	}
}

// QuickScale is a reduced setup for benchmarks: same shape, minutes less
// wall time.
func QuickScale() Scale {
	return Scale{
		Nodes:    256,
		Warmup:   150 * time.Second,
		Messages: 100,
		Rate:     100,
		Drain:    40 * time.Second,
		Seed:     1,
	}
}

// Report is a rendered experiment result.
type Report struct {
	Name   string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Name)
	b.WriteString(metrics.Table(r.Header, r.Rows))
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// Protocol names the five systems compared in Figure 3.
type Protocol string

// The protocols of Figure 3.
const (
	ProtoGoCast    Protocol = "gocast"
	ProtoProximity Protocol = "proximity-overlay"
	ProtoRandom    Protocol = "random-overlay"
	ProtoGossip    Protocol = "gossip"
	ProtoNoWait    Protocol = "no-wait-gossip"
)

// AllProtocols lists the Figure 3 lineup in the paper's order.
func AllProtocols() []Protocol {
	return []Protocol{ProtoGoCast, ProtoProximity, ProtoRandom, ProtoGossip, ProtoNoWait}
}

// overlayConfig maps a GoCast-family protocol to its node configuration.
func overlayConfig(p Protocol) (core.Config, bool) {
	switch p {
	case ProtoGoCast:
		return core.DefaultConfig(), true
	case ProtoProximity:
		return core.ProximityOverlayConfig(), true
	case ProtoRandom:
		return core.RandomOverlayConfig(), true
	default:
		return core.Config{}, false
	}
}

// buildOverlayCluster assembles a cluster per the paper's setup: random
// partial views, C_degree/2 random links initiated per node, node 0 root.
func buildOverlayCluster(sc Scale, cfg core.Config) *netsim.Cluster {
	c := netsim.New(netsim.Options{Nodes: sc.Nodes, Seed: sc.Seed, Config: cfg, Shards: sc.Shards})
	c.BootstrapMembership(cfg.MemberViewSize / 2)
	c.WireRandom(cfg.TargetDegree() / 2)
	c.Start(0)
	return c
}

// DelayResult is the outcome of one protocol's delay measurement.
type DelayResult struct {
	Protocol Protocol
	CDF      *metrics.CDF
	Ratio    float64 // delivery ratio over (message, live node) pairs
	Extra    core.Counters
}

// RunDelay measures the delivery-delay distribution of one protocol, with
// failFrac of nodes killed (maintenance and detection frozen first, as in
// the paper's stress test) right before messages are injected.
func RunDelay(p Protocol, sc Scale, failFrac float64) DelayResult {
	if cfg, ok := overlayConfig(p); ok {
		c := buildOverlayCluster(sc, cfg)
		c.Run(sc.Warmup)
		if failFrac > 0 {
			c.SetMaintenance(false)
			c.SetDetection(false)
			c.KillFraction(failFrac)
		}
		c.InjectStream(sc.Messages, sc.Rate, nil)
		c.Run(time.Duration(float64(sc.Messages)/sc.Rate*float64(time.Second)) + sc.Drain)
		rec := c.Delays()
		return DelayResult{Protocol: p, CDF: rec.CDF(), Ratio: rec.DeliveryRatio(), Extra: c.SumCounters()}
	}
	opts := pushgossip.Options{
		Nodes:  sc.Nodes,
		Seed:   sc.Seed,
		Fanout: 5,
	}
	if p == ProtoGossip {
		opts.GossipPeriod = 100 * time.Millisecond
	}
	s := pushgossip.New(opts)
	if failFrac > 0 {
		s.KillFraction(failFrac)
	}
	s.InjectStream(sc.Messages, sc.Rate)
	s.Run(time.Duration(float64(sc.Messages)/sc.Rate*float64(time.Second)) + sc.Drain)
	rec := s.Delays()
	return DelayResult{Protocol: p, CDF: rec.CDF(), Ratio: rec.DeliveryRatio()}
}

// Figure3 reproduces Figure 3: the delay CDFs of the five protocols, with
// no failures (failFrac 0, Figure 3a) or under concurrent failures without
// repair (e.g. 0.20, Figure 3b). Rows report the delay by which a given
// fraction of (message, node) pairs were delivered.
func Figure3(sc Scale, failFrac float64) *Report {
	name := "Figure 3(a): propagation delay CDF, no failures"
	if failFrac > 0 {
		name = fmt.Sprintf("Figure 3(b): propagation delay CDF, %.0f%% nodes fail, no repair", failFrac*100)
	}
	rep := &Report{
		Name:   name,
		Header: []string{"protocol", "mean", "p50", "p90", "p99", "max", "delivered"},
	}
	protocols := AllProtocols()
	results := make([]DelayResult, len(protocols))
	runIndexed(len(protocols), func(i int) {
		results[i] = RunDelay(protocols[i], sc, failFrac)
	})
	var gocastMean, gossipMean time.Duration
	for i, p := range protocols {
		r := results[i]
		switch p {
		case ProtoGoCast:
			gocastMean = r.CDF.Mean()
		case ProtoGossip:
			gossipMean = r.CDF.Mean()
		}
		rep.Rows = append(rep.Rows, []string{
			string(p),
			fmtDur(r.CDF.Mean()),
			fmtDur(r.CDF.Quantile(0.50)),
			fmtDur(r.CDF.Quantile(0.90)),
			fmtDur(r.CDF.Quantile(0.99)),
			fmtDur(r.CDF.Max()),
			fmt.Sprintf("%.4f", r.Ratio),
		})
	}
	if gocastMean > 0 {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"gossip/gocast mean-delay factor: %.1fx (paper abstract: 8.9x no failures, 2.3x at 20%%)",
			float64(gossipMean)/float64(gocastMean)))
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("%d nodes, %d messages at %.0f/s after %v adaptation, seed %d",
			sc.Nodes, sc.Messages, sc.Rate, sc.Warmup, sc.Seed),
		"paper shape: gocast fastest; proximity < random ~ gossip; gossip misses some nodes",
	)
	return rep
}

// Figure4 reproduces Figure 4: GoCast's delay CDF at two system sizes,
// without and with 20% failures.
func Figure4(small, large Scale, failFrac float64) *Report {
	rep := &Report{
		Name:   "Figure 4: GoCast delay vs system size",
		Header: []string{"nodes", "failures", "p50", "p90", "p99", "max", "delivered"},
	}
	type point struct {
		sc Scale
		ff float64
	}
	var points []point
	for _, sc := range []Scale{small, large} {
		for _, ff := range []float64{0, failFrac} {
			points = append(points, point{sc, ff})
		}
	}
	results := make([]DelayResult, len(points))
	runIndexed(len(points), func(i int) {
		results[i] = RunDelay(ProtoGoCast, points[i].sc, points[i].ff)
	})
	for i, pt := range points {
		r := results[i]
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", pt.sc.Nodes),
			fmt.Sprintf("%.0f%%", pt.ff*100),
			fmtDur(r.CDF.Quantile(0.50)),
			fmtDur(r.CDF.Quantile(0.90)),
			fmtDur(r.CDF.Quantile(0.99)),
			fmtDur(r.CDF.Max()),
			fmt.Sprintf("%.4f", r.Ratio),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper shape: small no-failure gap between sizes; with failures the larger system has a longer tail")
	return rep
}

// CDFSeries exposes plot-ready (seconds, fraction) series for one
// protocol, for users who want the actual curves of Figures 3/4.
func CDFSeries(p Protocol, sc Scale, failFrac float64, points int, max time.Duration) []metrics.Point {
	r := RunDelay(p, sc, failFrac)
	return r.CDF.Series(points, max)
}

// Figure3Curves renders the actual CDF curves of Figure 3 as a plot-ready
// table: one row per delay, one column per protocol, each cell the
// cumulative fraction of (message, live node) pairs delivered by that
// delay.
func Figure3Curves(sc Scale, failFrac float64, points int, max time.Duration) *Report {
	if points < 2 {
		points = 40
	}
	if max <= 0 {
		max = 4 * time.Second
	}
	name := "Figure 3(a) curves: delivery CDF by protocol"
	if failFrac > 0 {
		name = fmt.Sprintf("Figure 3(b) curves: delivery CDF by protocol, %.0f%% failures", failFrac*100)
	}
	rep := &Report{Name: name, Header: []string{"delay"}}
	protocols := AllProtocols()
	cols := make([][]metrics.Point, len(protocols))
	for _, p := range protocols {
		rep.Header = append(rep.Header, string(p))
	}
	runIndexed(len(protocols), func(i int) {
		cols[i] = CDFSeries(protocols[i], sc, failFrac, points, max)
	})
	for i := 0; i < points; i++ {
		row := []string{fmt.Sprintf("%.3fs", cols[0][i].X)}
		for _, col := range cols {
			row = append(row, fmt.Sprintf("%.4f", col[i].Y))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes, "each cell: cumulative fraction of (message, live node) pairs delivered by the row's delay")
	return rep
}

// ChurnSweep measures dependability under sustained membership churn: for
// each total event rate, a seeded Poisson mix of joins, graceful leaves,
// crashes, and restarts runs for a fixed window while multicasts flow from
// a protected (churn-ineligible) core. Rows report the delivery-delay
// distribution, atomicity violations among stably-up nodes, links left on
// dead incarnations, tree-repair latency, and overlay-degree recovery —
// the churn-resilience counterpart of the paper's static-failure stress
// tests.
func ChurnSweep(sc Scale, ratesPerMin []float64) *Report {
	if len(ratesPerMin) == 0 {
		ratesPerMin = []float64{0, 2, 6, 12}
	}
	cfg := core.DefaultConfig()
	window := 5 * time.Minute
	msgs := sc.Messages
	if msgs > 200 {
		msgs = 200
	}
	if msgs < 1 {
		msgs = 1
	}
	gap := window / time.Duration(msgs)
	protected := cfg.LandmarkCount
	if protected < sc.Nodes/16 {
		protected = sc.Nodes / 16
	}
	rep := &Report{
		Name: "Churn sweep: delivery and recovery vs churn rate",
		Header: []string{"events/min", "executed", "restarts", "p50", "p99", "delivered",
			"atomic-viol", "stale-links", "repair-p50", "degree-ok"},
	}
	rows := make([][]string, len(ratesPerMin))
	runIndexed(len(ratesPerMin), func(ri int) {
		rate := ratesPerMin[ri]
		c := buildOverlayCluster(sc, cfg)
		c.Run(sc.Warmup)
		plan := churn.Plan{
			Seed:          sc.Seed + 7,
			Duration:      window,
			JoinPerMin:    rate * 0.15,
			LeavePerMin:   rate * 0.25,
			CrashPerMin:   rate * 0.25,
			RestartPerMin: rate * 0.35,
		}
		st := c.StartChurn(netsim.ChurnOptions{
			Plan:      plan,
			Protected: protected,
			MinAlive:  sc.Nodes / 2,
			MaxNodes:  sc.Nodes * 3 / 2,
		})
		for k := 0; k < msgs; k++ {
			src := k % protected
			c.Engine.After(time.Duration(k)*gap, func() { c.Inject(src, nil) })
		}
		c.Run(window + sc.Drain + 2*time.Minute)

		rec := c.Delays()
		cdf := rec.CDF()
		repair := "-"
		if tr := c.TreeRepairs(); tr.Count() > 0 {
			repair = fmtDur(tr.CDF().Quantile(0.5))
		}
		rh := c.RandDegreeHistogram()
		rows[ri] = []string{
			fmt.Sprintf("%.1f", rate),
			fmt.Sprintf("%d", st.Events()),
			fmt.Sprintf("%d", c.Restarts()),
			fmtDur(cdf.Quantile(0.50)),
			fmtDur(cdf.Quantile(0.99)),
			fmt.Sprintf("%.4f", rec.DeliveryRatio()),
			fmt.Sprintf("%d", c.AtomicityViolations(30*time.Second)),
			fmt.Sprintf("%d", c.StaleLinks()),
			repair,
			fmt.Sprintf("%.3f", rh.Fraction(cfg.CRand)+rh.Fraction(cfg.CRand+1)),
		}
	})
	rep.Rows = append(rep.Rows, rows...)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("%d nodes, %d messages over a %v churn window, first %d nodes protected, seed %d",
			sc.Nodes, msgs, window, protected, sc.Seed),
		"event mix per rate: 15% join, 25% leave, 25% crash, 35% restart",
		"atomic-viol: messages missed by nodes stably up since before the injection (want 0)",
		"stale-links: links still naming a dead incarnation at the end (want 0)",
		"degree-ok: fraction of live nodes back at random degree C..C+1",
	)
	return rep
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}
