package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"gocast/internal/core"
	"gocast/internal/pushgossip"
)

// Figure6 reproduces Figure 6: the fraction q of live nodes remaining in
// the largest connected overlay component after killing 5%..50% of nodes
// concurrently (no repair), for C_rand in {0, 1, 2, 4} with total degree 6.
func Figure6(sc Scale, failRatios []float64, crands []int) *Report {
	if len(failRatios) == 0 {
		failRatios = []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50}
	}
	if len(crands) == 0 {
		crands = []int{0, 1, 2, 4}
	}
	rep := &Report{Name: "Figure 6: largest component after concurrent failures"}
	rep.Header = []string{"failed"}
	for _, cr := range crands {
		rep.Header = append(rep.Header, fmt.Sprintf("C_rand=%d", cr))
	}
	// Concurrent failure without repair is purely graph-theoretic: adapt
	// the overlay once per configuration, snapshot it, then evaluate every
	// failure ratio on the snapshot (averaged over several random kill
	// sets), exactly the quantity the paper plots.
	const trials = 5
	cols := make([][]float64, len(crands))
	runIndexed(len(crands), func(ci int) {
		cr := crands[ci]
		cfg := core.DefaultConfig()
		cfg.CRand = cr
		cfg.CNear = 6 - cr
		scp := sc
		scp.Seed = sc.Seed + int64(ci*1000)
		c := buildOverlayCluster(scp, cfg)
		c.Run(sc.Warmup)
		g := c.OverlayGraph()
		rng := rand.New(rand.NewSource(scp.Seed ^ 0xf16))
		for _, fr := range failRatios {
			var sum float64
			for trial := 0; trial < trials; trial++ {
				alive := make([]bool, sc.Nodes)
				perm := rng.Perm(sc.Nodes)
				kill := int(fr*float64(sc.Nodes) + 0.5)
				for i, p := range perm {
					alive[p] = i >= kill
				}
				largest, liveCount := g.LargestComponent(alive)
				if liveCount > 0 {
					sum += float64(largest) / float64(liveCount)
				}
			}
			cols[ci] = append(cols[ci], sum/trials)
		}
	})
	for fi, fr := range failRatios {
		row := []string{fmt.Sprintf("%.0f%%", fr*100)}
		for ci := range crands {
			row = append(row, fmt.Sprintf("%.3f", cols[ci][fi]))
		}
		rep.Rows = append(rep.Rows, row)
	}
	rep.Notes = append(rep.Notes,
		"paper shape: C_rand=0 is partitioned even without failures;",
		"C_rand=1 stays connected through ~25% failures and is close to C_rand=4",
	)
	return rep
}

// Figure1 reproduces Figure 1: the closed-form probability that all nodes
// in an n-node push-gossip system hear about 1 (and 1,000) messages as a
// function of the fanout F: e^{-e^{ln(n)-F}} and its 1,000th power.
func Figure1(n int, maxFanout int) *Report {
	rep := &Report{
		Name:   fmt.Sprintf("Figure 1: push-gossip reliability vs fanout (n=%d)", n),
		Header: []string{"fanout", "P(all hear 1 msg)", "P(all hear 1000 msgs)"},
	}
	for f := 1; f <= maxFanout; f++ {
		p1 := math.Exp(-math.Exp(math.Log(float64(n)) - float64(f)))
		p1000 := math.Exp(-1000 * math.Exp(math.Log(float64(n))-float64(f)))
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", f),
			fmt.Sprintf("%.6f", p1),
			fmt.Sprintf("%.6f", p1000),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper: with n=1024, every fanout below 15 gives < 0.5 probability for 1000 messages")
	return rep
}

// HearCounts reproduces the Section 1 census: with fanout 5 in a
// 1,024-node system, ~0.7% of nodes never hear about a given message while
// some hear about it up to ~19 times.
func HearCounts(sc Scale, fanout int) *Report {
	s := pushgossip.New(pushgossip.Options{
		Nodes:        sc.Nodes,
		Seed:         sc.Seed,
		Fanout:       fanout,
		GossipPeriod: 100 * time.Millisecond,
	})
	s.InjectStream(sc.Messages, sc.Rate)
	s.Run(time.Duration(float64(sc.Messages)/sc.Rate*float64(time.Second)) + sc.Drain)
	h := s.HearHistogram()
	rep := &Report{
		Name:   fmt.Sprintf("Section 1 census: gossip hear counts (fanout %d, n=%d)", fanout, sc.Nodes),
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"never hear a message", fmt.Sprintf("%.2f%%", h.Fraction(0)*100)},
			{"mean hears", fmt.Sprintf("%.2f", h.Mean())},
			{"max hears", fmt.Sprintf("%d", h.Max())},
		},
	}
	rep.Notes = append(rep.Notes, "paper: ~0.7% never hear; some nodes hear up to ~19 times (F=5, n=1024)")
	return rep
}

// Redundancy reproduces the Section 2.1 claims: with the pull delay f
// disabled each node receives a message ~1.02 times on average; raising f
// to the 90th-percentile tree delay (~0.3 s) cuts the redundant fraction
// to ~0.0005 without hurting delivery delay.
func Redundancy(sc Scale, pullDelays []time.Duration) *Report {
	if len(pullDelays) == 0 {
		pullDelays = []time.Duration{0, 300 * time.Millisecond}
	}
	rep := &Report{
		Name:   "Section 2.1: redundant receives vs pull delay f",
		Header: []string{"f", "avg receives/node", "P(redundant)", "p99 delay", "max delay"},
	}
	for _, f := range pullDelays {
		cfg := core.DefaultConfig()
		cfg.PullDelay = f
		c := buildOverlayCluster(sc, cfg)
		c.Run(sc.Warmup)
		c.InjectStream(sc.Messages, sc.Rate, nil)
		c.Run(time.Duration(float64(sc.Messages)/sc.Rate*float64(time.Second)) + sc.Drain)
		cnt := c.SumCounters()
		// Every (node, message) pair needs exactly one copy; duplicates
		// beyond that are the redundancy the paper quantifies.
		pairs := float64(sc.Nodes) * float64(sc.Messages)
		pdup := float64(cnt.Duplicates) / pairs
		cdf := c.Delays().CDF()
		rep.Rows = append(rep.Rows, []string{
			f.String(),
			fmt.Sprintf("%.4f", 1+pdup),
			fmt.Sprintf("%.5f", pdup),
			fmtDur(cdf.Quantile(0.99)),
			fmtDur(cdf.Max()),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper: f=0 gives ~1.02 receives/node; f=0.3 s gives ~1.0005 with no delay impact")
	return rep
}
