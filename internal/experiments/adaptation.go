package experiments

import (
	"fmt"
	"time"

	"gocast/internal/core"
	"gocast/internal/metrics"
	"gocast/internal/netsim"
)

// Figure5a reproduces Figure 5(a): the distribution of node degrees at
// 0 s, 5 s, and after full adaptation, plus the stabilized random/nearby
// degree censuses quoted in Sections 2.2.2 and 2.2.3 (~88%/12% at
// C_rand/C_rand+1; ~70%/30% at C_near/C_near+1).
func Figure5a(sc Scale) *Report {
	cfg := core.DefaultConfig()
	c := buildOverlayCluster(sc, cfg)
	target := cfg.TargetDegree()

	snapshot := func() (atTarget, atTargetPlus1 float64, mean float64) {
		h := c.DegreeHistogram()
		return h.Fraction(target), h.Fraction(target + 1), h.Mean()
	}
	rep := &Report{
		Name:   "Figure 5(a): node degree distribution over time",
		Header: []string{"time", "deg=6", "deg=7", "mean degree"},
	}
	addRow := func(label string) {
		a, b, m := snapshot()
		rep.Rows = append(rep.Rows, []string{
			label,
			fmt.Sprintf("%.0f%%", a*100), fmt.Sprintf("%.0f%%", b*100),
			fmt.Sprintf("%.2f", m),
		})
	}
	addRow("0s")
	c.Run(5 * time.Second)
	addRow("5s")
	c.Run(sc.Warmup - 5*time.Second)
	addRow(sc.Warmup.String())

	rh, nh := c.RandDegreeHistogram(), c.NearDegreeHistogram()
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("random degrees: %.0f%% at C_rand, %.0f%% at C_rand+1 (paper: ~88%%/12%%)",
			rh.Fraction(cfg.CRand)*100, rh.Fraction(cfg.CRand+1)*100),
		fmt.Sprintf("nearby degrees: %.0f%% at C_near, %.0f%% at C_near+1 (paper: ~70%%/30%%)",
			nh.Fraction(cfg.CNear)*100, nh.Fraction(cfg.CNear+1)*100),
		"paper shape: 22% at degree 6 initially, 57% after 5 s, ~60% converged, mean ~6.4",
	)
	return rep
}

// Figure5b reproduces Figure 5(b): the average latency of overlay links
// and tree links over the first part of the adaptation (paper: tree links
// reach ~15.5 ms after 100 s versus the 91 ms random-pair average).
func Figure5b(sc Scale, until, step time.Duration) *Report {
	cfg := core.DefaultConfig()
	c := buildOverlayCluster(sc, cfg)
	rep := &Report{
		Name:   "Figure 5(b): average link latency during adaptation",
		Header: []string{"time", "overlay links", "tree links"},
	}
	for now := time.Duration(0); now <= until; now += step {
		if now > 0 {
			c.Run(step)
		}
		rep.Rows = append(rep.Rows, []string{
			now.String(),
			fmtDur(c.AvgOverlayLinkLatency()),
			fmtDur(c.AvgTreeLinkLatency()),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper shape: both fall fast in the first minute; tree links end much cheaper than overlay average (15.5 ms vs 91 ms random baseline)")
	return rep
}

// LinkChanges reproduces adaptation summary (1): the number of changed
// links per second drops (approximately exponentially) as the overlay
// converges.
func LinkChanges(sc Scale, until, bucket time.Duration) *Report {
	cfg := core.DefaultConfig()
	c := netsim.New(netsim.Options{Nodes: sc.Nodes, Seed: sc.Seed, Config: cfg})
	c.BootstrapMembership(cfg.MemberViewSize / 2)
	c.WireRandom(cfg.TargetDegree() / 2)
	series := metrics.NewTimeSeries(bucket)
	for i := 0; i < sc.Nodes; i++ {
		i := i
		c.Node(i).OnLinkChange(func(bool, core.LinkKind, core.NodeID, time.Duration) {
			series.Observe(c.Now(), 1)
		})
	}
	c.Start(0)
	c.Run(until)
	rep := &Report{
		Name:   "Adaptation summary (1): link changes per second over time",
		Header: []string{"window start", "changes/s"},
	}
	for _, p := range series.Points() {
		rep.Rows = append(rep.Rows, []string{
			p.Start.String(),
			fmt.Sprintf("%.1f", p.Sum/bucket.Seconds()),
		})
	}
	rep.Notes = append(rep.Notes, "paper shape: the change rate drops exponentially over time")
	return rep
}

// RandomLinkSweep reproduces adaptation summary (2): the average overlay
// link latency grows almost linearly with the number of random links per
// node (total degree fixed at 6).
func RandomLinkSweep(sc Scale) *Report {
	rep := &Report{
		Name:   "Adaptation summary (2): link latency vs number of random links",
		Header: []string{"C_rand", "C_near", "avg overlay link latency", "connected"},
	}
	for crand := 0; crand <= 5; crand++ {
		cfg := core.DefaultConfig()
		cfg.CRand = crand
		cfg.CNear = 6 - crand
		c := buildOverlayCluster(sc, cfg)
		c.Run(sc.Warmup)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", crand),
			fmt.Sprintf("%d", cfg.CNear),
			fmtDur(c.AvgOverlayLinkLatency()),
			fmt.Sprintf("%.3f", c.LargestComponentRatio()),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper shape: latency grows ~linearly with C_rand; C_rand=0 leaves the overlay partitioned",
	)
	return rep
}

// Diameter reproduces adaptation summary (3): the overlay hop diameter
// grows slowly (6 -> 10) as the system grows from 256 to 8,192 nodes.
func Diameter(sizes []int, warmup time.Duration, seed int64) *Report {
	rep := &Report{
		Name:   "Adaptation summary (3): overlay diameter vs system size",
		Header: []string{"nodes", "diameter (hops)"},
	}
	for _, n := range sizes {
		sc := Scale{Nodes: n, Warmup: warmup, Seed: seed}
		cfg := core.DefaultConfig()
		c := buildOverlayCluster(sc, cfg)
		c.Run(warmup)
		d := c.OverlayGraph().Diameter()
		rep.Rows = append(rep.Rows, []string{fmt.Sprintf("%d", n), fmt.Sprintf("%d", d)})
	}
	rep.Notes = append(rep.Notes, "paper shape: 6 hops at 256 nodes growing to 10 at 8,192")
	return rep
}
