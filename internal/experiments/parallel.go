package experiments

import (
	"sync"
	"sync/atomic"
)

// Experiment runners fan independent simulations — one per protocol, seed,
// or sweep point — across a worker pool. Every simulation owns its engine,
// cluster, and RNG chain, so runs are independent by construction, and
// results are always written to an index-addressed slot and assembled in
// input order afterwards: the rendered tables are byte-identical at any
// worker count.

// parallelism is the worker count used by runIndexed. The package default
// is sequential; cmd/gocast-experiments raises it via SetParallelism.
var parallelism = 1

// SetParallelism sets how many experiment simulations may run
// concurrently. Values below 1 mean sequential.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	parallelism = n
}

// Parallelism returns the current worker count.
func Parallelism() int { return parallelism }

// runIndexed invokes fn(0..n-1), fanning the calls across up to
// min(parallelism, n) goroutines. fn must confine its writes to its own
// index's result slot.
func runIndexed(n int, fn func(i int)) {
	workers := parallelism
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
