package experiments

import (
	"strconv"
	"testing"
	"time"
)

func TestRecoverySyncClosesGapControlDoesNot(t *testing.T) {
	sc := tinyScale()
	rep := Recovery(sc, 10*time.Second)
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d, want sync and no-sync", len(rep.Rows))
	}
	syncRow, ctrlRow := rep.Rows[0], rep.Rows[1]
	if syncRow[0] != "sync" || ctrlRow[0] != "no-sync" {
		t.Fatalf("unexpected row order: %v / %v", syncRow, ctrlRow)
	}
	missed, err := strconv.Atoi(syncRow[1])
	if err != nil || missed < 50 {
		t.Fatalf("outage built a backlog of %q messages, want >= 50", syncRow[1])
	}
	if syncRow[2] == "never" {
		t.Errorf("sync mode never caught up: %v", syncRow)
	}
	if syncRow[3] != "0" {
		t.Errorf("sync mode left %s residual violations", syncRow[3])
	}
	if ctrlRow[3] == "0" {
		t.Errorf("control caught up without sync; the experiment no longer isolates the protocol")
	}
	if ctrlRow[2] != "never" {
		t.Errorf("control reports catch-up %q, want never", ctrlRow[2])
	}
}
