package experiments

import (
	"fmt"
	"time"

	"gocast/internal/core"
)

// Recovery measures restart catch-up through the anti-entropy sync
// protocol: one node is down while the group publishes for downFor of
// virtual time, then restarts with a bumped incarnation. With sync
// enabled the restarted node's recovery violations must reach zero (and
// the table reports how long that took); with sync disabled the backlog
// is unreachable — gossip announces each ID at most once per neighbor —
// so violations stay pinned at the number of missed messages.
func Recovery(sc Scale, downFor time.Duration) *Report {
	rep := &Report{
		Name: fmt.Sprintf("Recovery: %v-outage catch-up via anti-entropy sync (n=%d)",
			downFor, sc.Nodes),
		Header: []string{"mode", "missed", "catch-up", "residual violations", "sync items", "pulls"},
	}
	// Publishing runs at 10 msg/s during the outage: enough to build a
	// multi-hundred-message backlog at paper scale without dominating the
	// run time the way the full measurement rate would.
	const rate = 10.0
	count := int(downFor.Seconds() * rate)
	const catchUpCap = 2 * time.Minute

	for _, mode := range []struct {
		name string
		sync time.Duration
	}{
		{"sync", 10 * time.Second},
		{"no-sync", -1},
	} {
		cfg := core.DefaultConfig()
		cfg.SyncInterval = mode.sync
		c := buildOverlayCluster(sc, cfg)
		c.Run(sc.Warmup)

		victim := sc.Nodes / 3
		contact := sc.Nodes / 2
		c.Kill(victim)
		for k := 0; k < count; k++ {
			src := k % 8
			if src == victim {
				src = 8
			}
			s := src
			c.Engine.After(time.Duration(float64(k)/rate*float64(time.Second)), func() {
				c.Inject(s, []byte("published-during-outage"))
			})
		}
		c.Run(downFor)
		c.Restart(victim, contact)

		// Step virtual time until the restarted node holds every tracked
		// message, recording the first second at which the gap closes.
		restartAt := c.Engine.Now()
		catchUp := time.Duration(-1)
		for c.Engine.Now()-restartAt < catchUpCap {
			c.Run(time.Second)
			if c.RecoveryViolations(5*time.Second) == 0 {
				catchUp = c.Engine.Now() - restartAt
				break
			}
		}

		st := c.Node(victim).Stats()
		caught := "never"
		if catchUp >= 0 {
			caught = fmtDur(catchUp)
		}
		rep.Rows = append(rep.Rows, []string{
			mode.name,
			fmt.Sprintf("%d", count),
			caught,
			fmt.Sprintf("%d", c.RecoveryViolations(5*time.Second)),
			fmt.Sprintf("%d", st.SyncItemsRecv),
			fmt.Sprintf("%d", st.PullsSent),
		})
	}
	rep.Notes = append(rep.Notes,
		"sync: watermark-digest reconciliation pages the backlog over in budgeted batches",
		"no-sync: the restarted node never recovers messages published while it was down",
	)
	return rep
}
