package experiments

import (
	"fmt"

	"gocast/internal/core"
)

// AblateC1 compares the paper's C1 threshold (a neighbor is droppable
// while D_near(U) >= C_near - 1) against the stricter D_near(U) >= C_near.
// The paper reports the stricter variant yields dramatically higher link
// latencies because too few neighbors qualify for replacement.
func AblateC1(sc Scale) *Report {
	rep := &Report{
		Name:   "Ablation: condition C1 threshold",
		Header: []string{"C1 threshold", "avg overlay latency", "avg tree latency", "connected"},
	}
	for _, c1 := range []int{1, 0} {
		cfg := core.DefaultConfig()
		cfg.C1Lower = c1
		c := buildOverlayCluster(sc, cfg)
		c.Run(sc.Warmup)
		label := "C_near-1 (paper)"
		if c1 == 0 {
			label = "C_near (strict)"
		}
		rep.Rows = append(rep.Rows, []string{
			label,
			fmtDur(c.AvgOverlayLinkLatency()),
			fmtDur(c.AvgTreeLinkLatency()),
			fmt.Sprintf("%.3f", c.LargestComponentRatio()),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper: the strict threshold produces dramatically higher link latencies")
	return rep
}

// AblateDropTrigger compares dropping excess nearby links at C_near+2
// (paper) against the aggressive C_near+1, which the paper reports
// increases link changes by about a third and slows stabilization.
func AblateDropTrigger(sc Scale) *Report {
	rep := &Report{
		Name:   "Ablation: nearby drop trigger",
		Header: []string{"trigger", "total link changes", "avg overlay latency"},
	}
	for _, trig := range []int{2, 1} {
		cfg := core.DefaultConfig()
		cfg.DropTrigger = trig
		c := buildOverlayCluster(sc, cfg)
		c.Run(sc.Warmup)
		cnt := c.SumCounters()
		label := "C_near+2 (paper)"
		if trig == 1 {
			label = "C_near+1 (aggressive)"
		}
		rep.Rows = append(rep.Rows, []string{
			label,
			fmt.Sprintf("%d", cnt.LinkAdds+cnt.LinkDrops),
			fmtDur(c.AvgOverlayLinkLatency()),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper: the aggressive trigger increases link changes by about one third")
	return rep
}

// AblateC4 compares the paper's significant-improvement rule
// (RTT(X,Q) <= RTT(X,U)/2) against accepting any improvement, which
// causes futile minor adaptations (more link churn for little latency
// gain).
func AblateC4(sc Scale) *Report {
	rep := &Report{
		Name:   "Ablation: condition C4 replacement ratio",
		Header: []string{"ratio", "total link changes", "avg overlay latency"},
	}
	for _, ratio := range []float64{0.5, 0.99} {
		cfg := core.DefaultConfig()
		cfg.ReplaceRatio = ratio
		c := buildOverlayCluster(sc, cfg)
		c.Run(sc.Warmup)
		cnt := c.SumCounters()
		label := "1/2 (paper)"
		if ratio > 0.5 {
			label = "any improvement"
		}
		rep.Rows = append(rep.Rows, []string{
			label,
			fmt.Sprintf("%d", cnt.LinkAdds+cnt.LinkDrops),
			fmtDur(c.AvgOverlayLinkLatency()),
		})
	}
	rep.Notes = append(rep.Notes,
		"paper motivation: C4 avoids futile minor adaptations")
	return rep
}
