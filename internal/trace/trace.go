// Package trace provides lightweight, allocation-conscious event tracing
// for GoCast protocol runs. A bounded ring buffer records typed events
// (message sends, link changes, tree reparenting, deliveries); the buffer
// can be filtered and rendered for debugging protocol behaviour in both
// simulated and live deployments.
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Kind classifies trace events.
type Kind uint8

// Event kinds.
const (
	KindSend Kind = iota + 1
	KindDeliver
	KindLinkUp
	KindLinkDown
	KindParentChange
	KindRootChange
	KindPull
	KindNote
)

func (k Kind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindDeliver:
		return "deliver"
	case KindLinkUp:
		return "link-up"
	case KindLinkDown:
		return "link-down"
	case KindParentChange:
		return "parent"
	case KindRootChange:
		return "root"
	case KindPull:
		return "pull"
	case KindNote:
		return "note"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one recorded protocol event.
type Event struct {
	At   time.Duration
	Kind Kind
	// Node is the event's subject; Peer the counterparty (or -1).
	Node, Peer int32
	// Detail is a short free-form annotation.
	Detail string
}

func (e Event) String() string {
	if e.Peer >= 0 {
		return fmt.Sprintf("%12v %-9s node=%d peer=%d %s", e.At, e.Kind, e.Node, e.Peer, e.Detail)
	}
	return fmt.Sprintf("%12v %-9s node=%d %s", e.At, e.Kind, e.Node, e.Detail)
}

// Buffer is a bounded, concurrency-safe ring of events. The zero value is
// unusable; use NewBuffer.
type Buffer struct {
	mu      sync.Mutex
	events  []Event
	next    int
	wrapped bool
	dropped uint64
	enabled bool
}

// NewBuffer returns a ring holding up to capacity events.
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Buffer{events: make([]Event, capacity), enabled: true}
}

// SetEnabled toggles recording (cheap global gate for hot paths).
func (b *Buffer) SetEnabled(on bool) {
	b.mu.Lock()
	b.enabled = on
	b.mu.Unlock()
}

// Add records an event, evicting the oldest when full.
func (b *Buffer) Add(e Event) {
	b.mu.Lock()
	if !b.enabled {
		b.mu.Unlock()
		return
	}
	if b.wrapped {
		b.dropped++
	}
	b.events[b.next] = e
	b.next++
	if b.next == len(b.events) {
		b.next = 0
		b.wrapped = true
	}
	b.mu.Unlock()
}

// Addf records a note-style event with formatted detail.
func (b *Buffer) Addf(at time.Duration, kind Kind, node, peer int32, format string, args ...any) {
	b.Add(Event{At: at, Kind: kind, Node: node, Peer: peer, Detail: fmt.Sprintf(format, args...)})
}

// Len returns how many events are currently buffered.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.wrapped {
		return len(b.events)
	}
	return b.next
}

// Dropped returns how many events were evicted by wrap-around.
func (b *Buffer) Dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Snapshot returns the buffered events in chronological order.
func (b *Buffer) Snapshot() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.wrapped {
		return append([]Event(nil), b.events[:b.next]...)
	}
	out := make([]Event, 0, len(b.events))
	out = append(out, b.events[b.next:]...)
	out = append(out, b.events[:b.next]...)
	return out
}

// Filter describes which events to keep when querying.
type Filter struct {
	// Kinds restricts to the given kinds (nil = all).
	Kinds []Kind
	// Node restricts to events whose subject or peer matches (<0 = all).
	Node int32
	// Since drops events before this time.
	Since time.Duration
}

func (f Filter) match(e Event) bool {
	if e.At < f.Since {
		return false
	}
	if f.Node >= 0 && e.Node != f.Node && e.Peer != f.Node {
		return false
	}
	if len(f.Kinds) == 0 {
		return true
	}
	for _, k := range f.Kinds {
		if e.Kind == k {
			return true
		}
	}
	return false
}

// Query returns the matching events in chronological order.
func (b *Buffer) Query(f Filter) []Event {
	var out []Event
	for _, e := range b.Snapshot() {
		if f.match(e) {
			out = append(out, e)
		}
	}
	return out
}

// Dump writes matching events to w, one per line, with a summary footer.
func (b *Buffer) Dump(w io.Writer, f Filter) error {
	events := b.Query(f)
	for _, e := range events {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "-- %d events (%d evicted)\n", len(events), b.Dropped())
	return err
}

// Summary tallies buffered events per kind.
func (b *Buffer) Summary() string {
	counts := map[Kind]int{}
	for _, e := range b.Snapshot() {
		counts[e.Kind]++
	}
	parts := make([]string, 0, len(counts))
	for k := KindSend; k <= KindNote; k++ {
		if counts[k] > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
		}
	}
	return strings.Join(parts, " ")
}
