package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func ev(at int, k Kind, node, peer int32) Event {
	return Event{At: time.Duration(at) * time.Millisecond, Kind: k, Node: node, Peer: peer}
}

func TestAddAndSnapshotOrder(t *testing.T) {
	b := NewBuffer(8)
	for i := 0; i < 5; i++ {
		b.Add(ev(i, KindSend, int32(i), -1))
	}
	snap := b.Snapshot()
	if len(snap) != 5 || b.Len() != 5 {
		t.Fatalf("len = %d/%d, want 5", len(snap), b.Len())
	}
	for i, e := range snap {
		if e.Node != int32(i) {
			t.Fatalf("order broken: %v", snap)
		}
	}
	if b.Dropped() != 0 {
		t.Fatalf("dropped = %d", b.Dropped())
	}
}

func TestRingEviction(t *testing.T) {
	b := NewBuffer(4)
	for i := 0; i < 10; i++ {
		b.Add(ev(i, KindSend, int32(i), -1))
	}
	snap := b.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("len = %d, want 4", len(snap))
	}
	// Oldest surviving must be event 6.
	if snap[0].Node != 6 || snap[3].Node != 9 {
		t.Fatalf("eviction order wrong: %v", snap)
	}
	if b.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", b.Dropped())
	}
}

func TestFilterByKindNodeAndTime(t *testing.T) {
	b := NewBuffer(16)
	b.Add(ev(1, KindSend, 1, 2))
	b.Add(ev(2, KindDeliver, 2, -1))
	b.Add(ev(3, KindLinkUp, 1, 3))
	b.Add(ev(4, KindSend, 3, 1))

	if got := b.Query(Filter{Kinds: []Kind{KindSend}, Node: -1}); len(got) != 2 {
		t.Fatalf("kind filter: %v", got)
	}
	if got := b.Query(Filter{Node: 1}); len(got) != 3 {
		t.Fatalf("node filter (subject or peer): %v", got)
	}
	if got := b.Query(Filter{Node: -1, Since: 3 * time.Millisecond}); len(got) != 2 {
		t.Fatalf("since filter: %v", got)
	}
	if got := b.Query(Filter{Kinds: []Kind{KindDeliver}, Node: 2}); len(got) != 1 {
		t.Fatalf("combined filter: %v", got)
	}
}

func TestDisabledBufferRecordsNothing(t *testing.T) {
	b := NewBuffer(4)
	b.SetEnabled(false)
	b.Add(ev(1, KindSend, 1, -1))
	if b.Len() != 0 {
		t.Fatalf("disabled buffer recorded an event")
	}
	b.SetEnabled(true)
	b.Add(ev(2, KindSend, 1, -1))
	if b.Len() != 1 {
		t.Fatalf("re-enabled buffer did not record")
	}
}

func TestDumpAndSummary(t *testing.T) {
	b := NewBuffer(16)
	b.Addf(time.Millisecond, KindParentChange, 4, 7, "dist=%v", 30*time.Millisecond)
	b.Add(ev(2, KindDeliver, 4, -1))
	var sb strings.Builder
	if err := b.Dump(&sb, Filter{Node: -1}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"parent", "node=4 peer=7", "dist=30ms", "deliver", "2 events"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	sum := b.Summary()
	if !strings.Contains(sum, "deliver=1") || !strings.Contains(sum, "parent=1") {
		t.Errorf("summary = %q", sum)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindSend; k <= KindNote; k++ {
		if strings.HasPrefix(k.String(), "kind(") {
			t.Errorf("kind %d missing a name", k)
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Errorf("unknown kind should fall back")
	}
}

func TestConcurrentAdds(t *testing.T) {
	b := NewBuffer(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.Add(ev(i, KindSend, int32(g), -1))
			}
		}(g)
	}
	wg.Wait()
	if b.Len() != 128 {
		t.Fatalf("len = %d, want full ring", b.Len())
	}
	if b.Dropped() != 800-128 {
		t.Fatalf("dropped = %d, want %d", b.Dropped(), 800-128)
	}
}

func TestZeroCapacityDefaults(t *testing.T) {
	b := NewBuffer(0)
	for i := 0; i < 10; i++ {
		b.Add(ev(i, KindNote, 0, -1))
	}
	if b.Len() != 10 {
		t.Fatalf("default-capacity buffer mis-sized: %d", b.Len())
	}
}
