package metrics

import (
	"sync"
	"testing"
)

func TestAtomicCounterBasics(t *testing.T) {
	c := NewAtomicCounter()
	if got := c.Get("x"); got != 0 {
		t.Fatalf("fresh counter Get = %d, want 0", got)
	}
	c.Inc("x", 1)
	c.Inc("x", 2)
	c.Inc("y", 5)
	if got := c.Get("x"); got != 3 {
		t.Errorf("x = %d, want 3", got)
	}
	snap := c.Snapshot()
	if snap["x"] != 3 || snap["y"] != 5 {
		t.Errorf("snapshot = %v", snap)
	}
	// The snapshot is a copy, not a view.
	snap["x"] = 99
	if got := c.Get("x"); got != 3 {
		t.Errorf("snapshot aliased live state: x = %d", got)
	}
	if s := c.String(); s != "x=3 y=5" {
		t.Errorf("String() = %q, want sorted name=value pairs", s)
	}
}

func TestAtomicCounterConcurrent(t *testing.T) {
	c := NewAtomicCounter()
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc("n", 1)
				_ = c.Get("n")
				if i%100 == 0 {
					_ = c.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Get("n"); got != workers*each {
		t.Fatalf("n = %d, want %d", got, workers*each)
	}
}
