// Package metrics collects and summarizes measurements produced by the
// GoCast experiments: per-message delivery delays (CDFs over nodes, as in
// Figures 3 and 4), histograms (degree distributions, Figure 5a), and time
// series (link latency and link-change rates, Figure 5b and the adaptation
// results).
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// DelaySample records how long one node waited for one multicast message.
type DelaySample struct {
	Node  int
	Msg   int
	Delay time.Duration
}

// DelayRecorder accumulates delivery delays across messages and nodes.
type DelayRecorder struct {
	samples []time.Duration
	misses  int // node/message pairs that never received the message
}

// NewDelayRecorder returns an empty recorder.
func NewDelayRecorder() *DelayRecorder { return &DelayRecorder{} }

// Add records one delivery delay.
func (r *DelayRecorder) Add(d time.Duration) { r.samples = append(r.samples, d) }

// AddMiss records a node that never received a message.
func (r *DelayRecorder) AddMiss() { r.misses++ }

// Count returns the number of recorded deliveries.
func (r *DelayRecorder) Count() int { return len(r.samples) }

// Misses returns the number of recorded non-deliveries.
func (r *DelayRecorder) Misses() int { return r.misses }

// DeliveryRatio returns delivered / (delivered + missed), or 1 for no data.
func (r *DelayRecorder) DeliveryRatio() float64 {
	total := len(r.samples) + r.misses
	if total == 0 {
		return 1
	}
	return float64(len(r.samples)) / float64(total)
}

// CDF summarizes a delay distribution.
type CDF struct {
	sorted []time.Duration
	misses int
}

// CDF freezes the recorder into a queryable distribution.
func (r *DelayRecorder) CDF() *CDF {
	s := append([]time.Duration(nil), r.samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return &CDF{sorted: s, misses: r.misses}
}

// Quantile returns the q-quantile delay (0 <= q <= 1) over deliveries.
// It returns 0 when there are no samples.
func (c *CDF) Quantile(q float64) time.Duration {
	if len(c.sorted) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	idx := int(q * float64(len(c.sorted)-1))
	return c.sorted[idx]
}

// Mean returns the average delay over deliveries.
func (c *CDF) Mean() time.Duration {
	if len(c.sorted) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range c.sorted {
		sum += d
	}
	return sum / time.Duration(len(c.sorted))
}

// Max returns the largest delay.
func (c *CDF) Max() time.Duration {
	if len(c.sorted) == 0 {
		return 0
	}
	return c.sorted[len(c.sorted)-1]
}

// FractionWithin returns the fraction of ALL node/message pairs (including
// misses) delivered within d. This is the Y axis of Figures 3 and 4.
func (c *CDF) FractionWithin(d time.Duration) float64 {
	total := len(c.sorted) + c.misses
	if total == 0 {
		return 1
	}
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > d })
	return float64(i) / float64(total)
}

// Series samples the CDF at evenly spaced delays from 0 to max, returning
// (delay, fraction) points suitable for plotting.
func (c *CDF) Series(points int, max time.Duration) []Point {
	if points < 2 {
		points = 2
	}
	out := make([]Point, points)
	for i := 0; i < points; i++ {
		d := max * time.Duration(i) / time.Duration(points-1)
		out[i] = Point{X: d.Seconds(), Y: c.FractionWithin(d)}
	}
	return out
}

// Point is an (x, y) plot point.
type Point struct{ X, Y float64 }

// Table renders rows of labelled series as an aligned text table with a
// header, the common output format of the experiment runners.
func Table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			w := len(cell)
			if i < len(width) {
				w = width[i]
			}
			fmt.Fprintf(&b, "%-*s", w, cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// IntHistogram counts occurrences of small non-negative integers
// (e.g. node degrees).
type IntHistogram struct {
	counts []int
	total  int
}

// NewIntHistogram returns an empty histogram.
func NewIntHistogram() *IntHistogram { return &IntHistogram{} }

// Add increments the count for value v (negative values are clamped to 0).
func (h *IntHistogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	for len(h.counts) <= v {
		h.counts = append(h.counts, 0)
	}
	h.counts[v]++
	h.total++
}

// Total returns the number of added values.
func (h *IntHistogram) Total() int { return h.total }

// Fraction returns the fraction of values equal to v.
func (h *IntHistogram) Fraction(v int) float64 {
	if h.total == 0 || v < 0 || v >= len(h.counts) {
		return 0
	}
	return float64(h.counts[v]) / float64(h.total)
}

// CumulativeFraction returns the fraction of values <= v.
func (h *IntHistogram) CumulativeFraction(v int) float64 {
	if h.total == 0 {
		return 0
	}
	sum := 0
	for i := 0; i <= v && i < len(h.counts); i++ {
		sum += h.counts[i]
	}
	return float64(sum) / float64(h.total)
}

// Mean returns the average of the added values.
func (h *IntHistogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	sum := 0
	for v, c := range h.counts {
		sum += v * c
	}
	return float64(sum) / float64(h.total)
}

// Max returns the largest added value (0 if empty).
func (h *IntHistogram) Max() int {
	for v := len(h.counts) - 1; v >= 0; v-- {
		if h.counts[v] > 0 {
			return v
		}
	}
	return 0
}

// TimeSeries accumulates (time, value) observations bucketed by interval,
// reporting the per-bucket mean — used for "average link latency over time"
// and "link changes per second" plots.
type TimeSeries struct {
	interval time.Duration
	sum      map[int64]float64
	count    map[int64]int
}

// NewTimeSeries buckets observations into windows of the given interval.
func NewTimeSeries(interval time.Duration) *TimeSeries {
	if interval <= 0 {
		panic("metrics: non-positive time series interval")
	}
	return &TimeSeries{
		interval: interval,
		sum:      make(map[int64]float64),
		count:    make(map[int64]int),
	}
}

// Observe records value v at time at.
func (ts *TimeSeries) Observe(at time.Duration, v float64) {
	b := int64(at / ts.interval)
	ts.sum[b] += v
	ts.count[b]++
}

// SeriesPoint is one bucket of a time series.
type SeriesPoint struct {
	Start time.Duration
	Mean  float64
	Sum   float64
	Count int
}

// Points returns the buckets in time order.
func (ts *TimeSeries) Points() []SeriesPoint {
	buckets := make([]int64, 0, len(ts.sum))
	for b := range ts.sum {
		buckets = append(buckets, b)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i] < buckets[j] })
	out := make([]SeriesPoint, len(buckets))
	for i, b := range buckets {
		out[i] = SeriesPoint{
			Start: time.Duration(b) * ts.interval,
			Mean:  ts.sum[b] / float64(ts.count[b]),
			Sum:   ts.sum[b],
			Count: ts.count[b],
		}
	}
	return out
}

// Counter is a named monotonic counter set used for protocol accounting
// (messages sent, gossips, pulls, duplicates, ...). It is not safe for
// concurrent use; see AtomicCounter for the goroutine-safe variant.
type Counter struct {
	counts map[string]int64
}

// NewCounter returns an empty counter set.
func NewCounter() *Counter { return &Counter{counts: make(map[string]int64)} }

// Inc adds delta to the named counter.
func (c *Counter) Inc(name string, delta int64) { c.counts[name] += delta }

// Get returns the named counter's value.
func (c *Counter) Get(name string) int64 { return c.counts[name] }

// Names returns the counter names in sorted order.
func (c *Counter) Names() []string {
	names := make([]string, 0, len(c.counts))
	for n := range c.counts {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders the counters as "name=value" pairs, sorted by name.
func (c *Counter) String() string {
	parts := make([]string, 0, len(c.counts))
	for _, n := range c.Names() {
		parts = append(parts, fmt.Sprintf("%s=%d", n, c.counts[n]))
	}
	return strings.Join(parts, " ")
}

// AtomicCounter is a named monotonic counter set safe for concurrent use.
// Transports and fault injectors count events from many goroutines at once
// (dials, redials, dropped frames, injected faults); snapshots surface the
// totals to experiment harnesses and stats endpoints.
type AtomicCounter struct {
	mu     sync.Mutex
	counts map[string]int64
}

// NewAtomicCounter returns an empty goroutine-safe counter set.
func NewAtomicCounter() *AtomicCounter {
	return &AtomicCounter{counts: make(map[string]int64)}
}

// Inc adds delta to the named counter.
func (c *AtomicCounter) Inc(name string, delta int64) {
	c.mu.Lock()
	c.counts[name] += delta
	c.mu.Unlock()
}

// Get returns the named counter's value.
func (c *AtomicCounter) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts[name]
}

// Snapshot returns a point-in-time copy of all counters.
func (c *AtomicCounter) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.counts))
	for n, v := range c.counts {
		out[n] = v
	}
	return out
}

// String renders the counters as "name=value" pairs, sorted by name.
func (c *AtomicCounter) String() string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", n, snap[n]))
	}
	return strings.Join(parts, " ")
}
