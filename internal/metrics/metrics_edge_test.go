package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestSeriesMinimumPoints(t *testing.T) {
	r := NewDelayRecorder()
	r.Add(time.Second)
	pts := r.CDF().Series(1, 2*time.Second) // clamped to 2
	if len(pts) != 2 {
		t.Fatalf("points = %d, want clamp to 2", len(pts))
	}
	if pts[0].X != 0 || pts[1].X != 2 {
		t.Fatalf("series endpoints = %v", pts)
	}
}

func TestQuantileClamping(t *testing.T) {
	r := NewDelayRecorder()
	r.Add(10 * time.Millisecond)
	r.Add(20 * time.Millisecond)
	c := r.CDF()
	if c.Quantile(-0.5) != 10*time.Millisecond {
		t.Errorf("negative quantile should clamp to min")
	}
	if c.Quantile(2.0) != 20*time.Millisecond {
		t.Errorf("over-one quantile should clamp to max")
	}
}

func TestFractionWithinBoundaryInclusive(t *testing.T) {
	r := NewDelayRecorder()
	r.Add(100 * time.Millisecond)
	c := r.CDF()
	if got := c.FractionWithin(100 * time.Millisecond); got != 1 {
		t.Fatalf("boundary delay should count as delivered: %v", got)
	}
	if got := c.FractionWithin(99 * time.Millisecond); got != 0 {
		t.Fatalf("delay below sample should not count: %v", got)
	}
}

func TestTimeSeriesEmpty(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	if pts := ts.Points(); len(pts) != 0 {
		t.Fatalf("empty series has %d points", len(pts))
	}
}

func TestTableHandlesRaggedRows(t *testing.T) {
	out := Table([]string{"a", "b"}, [][]string{{"1", "2", "extra-is-kept"}, {"3"}})
	if !strings.Contains(out, "extra-is-kept") {
		// Extra cells beyond the header width are still printed; the
		// table must not panic or truncate silently.
		t.Fatalf("ragged row mishandled:\n%s", out)
	}
	if !strings.Contains(out, "3") {
		t.Fatalf("short row dropped:\n%s", out)
	}
}

func TestHistogramCumulativeBeyondMax(t *testing.T) {
	h := NewIntHistogram()
	h.Add(2)
	if got := h.CumulativeFraction(100); got != 1 {
		t.Fatalf("cumulative beyond max = %v, want 1", got)
	}
}

func TestCounterZeroValueSafety(t *testing.T) {
	c := NewCounter()
	if c.String() != "" {
		t.Fatalf("empty counter string = %q", c.String())
	}
	if len(c.Names()) != 0 {
		t.Fatalf("empty counter has names")
	}
}
