package metrics

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestDelayRecorderAndCDF(t *testing.T) {
	r := NewDelayRecorder()
	for _, ms := range []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		r.Add(time.Duration(ms) * time.Millisecond)
	}
	if r.Count() != 10 {
		t.Fatalf("Count = %d, want 10", r.Count())
	}
	c := r.CDF()
	if got := c.Quantile(0); got != 10*time.Millisecond {
		t.Errorf("Q0 = %v, want 10ms", got)
	}
	if got := c.Quantile(1); got != 100*time.Millisecond {
		t.Errorf("Q1 = %v, want 100ms", got)
	}
	if got := c.Mean(); got != 55*time.Millisecond {
		t.Errorf("Mean = %v, want 55ms", got)
	}
	if got := c.Max(); got != 100*time.Millisecond {
		t.Errorf("Max = %v, want 100ms", got)
	}
	if got := c.FractionWithin(50 * time.Millisecond); got != 0.5 {
		t.Errorf("FractionWithin(50ms) = %v, want 0.5", got)
	}
}

func TestMissesLowerTheCurve(t *testing.T) {
	r := NewDelayRecorder()
	r.Add(10 * time.Millisecond)
	r.AddMiss()
	if got := r.DeliveryRatio(); got != 0.5 {
		t.Fatalf("DeliveryRatio = %v, want 0.5", got)
	}
	c := r.CDF()
	if got := c.FractionWithin(time.Second); got != 0.5 {
		t.Fatalf("FractionWithin = %v, want 0.5 (miss never delivers)", got)
	}
}

func TestEmptyCDF(t *testing.T) {
	c := NewDelayRecorder().CDF()
	if c.Quantile(0.5) != 0 || c.Mean() != 0 || c.Max() != 0 {
		t.Fatalf("empty CDF should return zeros")
	}
	if c.FractionWithin(time.Second) != 1 {
		t.Fatalf("empty CDF FractionWithin should be 1")
	}
}

func TestCDFSeriesMonotone(t *testing.T) {
	r := NewDelayRecorder()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		r.Add(time.Duration(rng.Intn(1000)) * time.Millisecond)
	}
	r.AddMiss()
	pts := r.CDF().Series(50, time.Second)
	if len(pts) != 50 {
		t.Fatalf("points = %d, want 50", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Fatalf("CDF series not monotone at %d", i)
		}
	}
	if pts[len(pts)-1].Y >= 1 {
		t.Fatalf("with a miss the curve must stay below 1")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(raw []uint16, qa, qb float64) bool {
		if len(raw) == 0 {
			return true
		}
		qa, qb = clamp01(qa), clamp01(qb)
		if qa > qb {
			qa, qb = qb, qa
		}
		r := NewDelayRecorder()
		for _, v := range raw {
			r.Add(time.Duration(v) * time.Millisecond)
		}
		c := r.CDF()
		return c.Quantile(qa) <= c.Quantile(qb) &&
			c.Quantile(0) <= c.Mean() && c.Mean() <= c.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func clamp01(x float64) float64 {
	if x != x || x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func TestIntHistogram(t *testing.T) {
	h := NewIntHistogram()
	for _, v := range []int{6, 6, 6, 7, 5, 6} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d, want 6", h.Total())
	}
	if got := h.Fraction(6); got != 4.0/6 {
		t.Errorf("Fraction(6) = %v, want 2/3", got)
	}
	if got := h.CumulativeFraction(6); got != 5.0/6 {
		t.Errorf("CumulativeFraction(6) = %v, want 5/6", got)
	}
	if got := h.Mean(); got != 36.0/6 {
		t.Errorf("Mean = %v, want 6", got)
	}
	if got := h.Max(); got != 7 {
		t.Errorf("Max = %d, want 7", got)
	}
}

func TestIntHistogramEmptyAndNegative(t *testing.T) {
	h := NewIntHistogram()
	if h.Fraction(3) != 0 || h.Mean() != 0 || h.Max() != 0 || h.CumulativeFraction(5) != 0 {
		t.Fatalf("empty histogram should return zeros")
	}
	h.Add(-3)
	if h.Fraction(0) != 1 {
		t.Fatalf("negative values should clamp to 0")
	}
}

func TestTimeSeriesBucketing(t *testing.T) {
	ts := NewTimeSeries(time.Second)
	ts.Observe(100*time.Millisecond, 10)
	ts.Observe(900*time.Millisecond, 20)
	ts.Observe(1500*time.Millisecond, 100)
	pts := ts.Points()
	if len(pts) != 2 {
		t.Fatalf("buckets = %d, want 2", len(pts))
	}
	if pts[0].Start != 0 || pts[0].Mean != 15 || pts[0].Count != 2 || pts[0].Sum != 30 {
		t.Errorf("bucket 0 = %+v", pts[0])
	}
	if pts[1].Start != time.Second || pts[1].Mean != 100 {
		t.Errorf("bucket 1 = %+v", pts[1])
	}
}

func TestTimeSeriesPanicsOnBadInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("want panic on non-positive interval")
		}
	}()
	NewTimeSeries(0)
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Inc("sent", 3)
	c.Inc("sent", 2)
	c.Inc("dup", 1)
	if c.Get("sent") != 5 || c.Get("dup") != 1 || c.Get("absent") != 0 {
		t.Fatalf("counter values wrong: %s", c)
	}
	if got := c.String(); got != "dup=1 sent=5" {
		t.Fatalf("String = %q", got)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "dup" || names[1] != "sent" {
		t.Fatalf("Names = %v", names)
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"proto", "mean"}, [][]string{{"gocast", "0.33"}, {"gossip", "2.9"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "proto") || !strings.Contains(lines[0], "mean") {
		t.Fatalf("bad header: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "gocast") {
		t.Fatalf("bad row: %q", lines[1])
	}
}
