// Package underlay models an AS-level physical network for the paper's
// bottleneck-link-stress experiment ("GoCast reduces the traffic imposed on
// bottleneck network links by a factor of 4-7 compared with a push-based
// gossip protocol using fanout 5"; the paper used Internet AS snapshots).
//
// The synthetic underlay is a preferential-attachment graph (the standard
// stand-in for AS topologies) with per-link latencies. Overlay nodes are
// placed on ASes, end-to-end latencies are the shortest-path distances
// through the underlay, and every overlay transmission is routed along its
// shortest path, accumulating per-physical-link traffic. Deriving the
// latency matrix from the same underlay guarantees that latency proximity
// coincides with topological proximity, exactly the property the paper's
// experiment exploits.
package underlay

import (
	"container/heap"
	"math/rand"
	"sort"
	"time"

	"gocast/internal/latency"
)

// Graph is an undirected AS-level topology with per-edge latencies.
type Graph struct {
	n   int
	adj [][]edge // adjacency: adj[u] sorted by peer id
}

type edge struct {
	to int32
	// us is the one-way latency of the physical link in microseconds.
	us int32
}

// Generate builds a preferential-attachment graph over n ASes where each
// new AS attaches to m existing ones. Link latencies mix short regional
// links with long transit links, deterministic in seed.
func Generate(n, m int, seed int64) *Graph {
	if n < 2 {
		panic("underlay: need at least two ASes")
	}
	if m < 1 {
		m = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := &Graph{n: n, adj: make([][]edge, n)}
	// Repeated-endpoint list drives preferential attachment.
	var ends []int
	addEdge := func(a, b int) {
		if a == b {
			return
		}
		lat := linkLatency(rng)
		g.adj[a] = append(g.adj[a], edge{to: int32(b), us: lat})
		g.adj[b] = append(g.adj[b], edge{to: int32(a), us: lat})
		ends = append(ends, a, b)
	}
	addEdge(0, 1)
	for v := 2; v < n; v++ {
		attached := map[int]bool{}
		for len(attached) < m && len(attached) < v {
			t := ends[rng.Intn(len(ends))]
			if t != v && !attached[t] {
				attached[t] = true
			}
		}
		targets := make([]int, 0, len(attached))
		for t := range attached {
			targets = append(targets, t)
		}
		sort.Ints(targets) // deterministic order despite map iteration
		for _, t := range targets {
			addEdge(v, t)
		}
	}
	for u := range g.adj {
		sort.Slice(g.adj[u], func(i, j int) bool { return g.adj[u][i].to < g.adj[u][j].to })
	}
	return g
}

// linkLatency draws a physical link latency: mostly short regional links
// with a tail of long-haul transit links.
func linkLatency(rng *rand.Rand) int32 {
	ms := 2 + rng.ExpFloat64()*8
	if rng.Float64() < 0.15 {
		ms += 30 + rng.Float64()*60 // long-haul
	}
	return int32(ms * 1000)
}

// Nodes returns the number of ASes.
func (g *Graph) Nodes() int { return g.n }

// Edges returns the number of undirected physical links.
func (g *Graph) Edges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// Router precomputes shortest paths (by latency) between all AS pairs.
type Router struct {
	g *Graph
	// next[u*n+v] is u's next hop toward v (-1 when unreachable or u==v).
	next []int32
	// dist[u*n+v] is the shortest one-way latency in microseconds.
	dist []int64
}

// NewRouter runs Dijkstra from every AS. O(n * E log n): fine for the few
// hundred ASes the experiments use.
func NewRouter(g *Graph) *Router {
	n := g.n
	r := &Router{g: g, next: make([]int32, n*n), dist: make([]int64, n*n)}
	for src := 0; src < n; src++ {
		dist, parent := g.dijkstra(src)
		for v := 0; v < n; v++ {
			r.dist[src*n+v] = dist[v]
			r.next[src*n+v] = -1
		}
		// next hop from src toward v: walk v's parent chain back to src.
		for v := 0; v < n; v++ {
			if v == src || parent[v] < 0 {
				continue
			}
			hop := v
			for parent[hop] != int32(src) {
				hop = int(parent[hop])
			}
			r.next[src*n+v] = int32(hop)
		}
	}
	return r
}

func (g *Graph) dijkstra(src int) ([]int64, []int32) {
	const inf = int64(1) << 62
	dist := make([]int64, g.n)
	parent := make([]int32, g.n)
	for i := range dist {
		dist[i] = inf
		parent[i] = -1
	}
	dist[src] = 0
	pq := &nodeHeap{{id: int32(src), d: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(item)
		if it.d > dist[it.id] {
			continue
		}
		for _, e := range g.adj[it.id] {
			nd := it.d + int64(e.us)
			if nd < dist[e.to] || (nd == dist[e.to] && parent[e.to] > it.id) {
				// Tie-break deterministically toward smaller parent IDs.
				if nd < dist[e.to] {
					dist[e.to] = nd
					heap.Push(pq, item{id: e.to, d: nd})
				}
				parent[e.to] = it.id
			}
		}
	}
	return dist, parent
}

// Latency returns the shortest one-way latency between two ASes.
func (r *Router) Latency(a, b int) time.Duration {
	return time.Duration(r.dist[a*r.g.n+b]) * time.Microsecond
}

// Path returns the AS sequence of the shortest path from a to b,
// inclusive. It returns nil when unreachable.
func (r *Router) Path(a, b int) []int {
	if a == b {
		return []int{a}
	}
	if r.next[a*r.g.n+b] < 0 {
		return nil
	}
	path := []int{a}
	cur := a
	for cur != b {
		cur = int(r.next[cur*r.g.n+b])
		path = append(path, cur)
		if len(path) > r.g.n {
			return nil // defensive: routing loop
		}
	}
	return path
}

// Matrix converts the routed latencies into a latency.Matrix usable by the
// simulators, so overlay latency proximity equals underlay proximity.
func (r *Router) Matrix() *latency.Matrix {
	m := latency.NewMatrix(r.g.n)
	for i := 0; i < r.g.n; i++ {
		for j := i + 1; j < r.g.n; j++ {
			m.Set(i, j, r.Latency(i, j))
		}
	}
	return m
}

// Stress accumulates traffic per physical link.
type Stress struct {
	n      int
	router *Router
	bytes  map[int64]int64 // key: canonical edge id a*n+b with a<b
}

// NewStress returns an empty accumulator for the router's topology.
func NewStress(r *Router) *Stress {
	return &Stress{n: r.g.n, router: r, bytes: make(map[int64]int64)}
}

// AddTransmission routes one overlay transmission of the given size from
// AS a to AS b and charges every physical link on the path.
func (s *Stress) AddTransmission(a, b, size int) {
	if a == b {
		return
	}
	path := s.router.Path(a, b)
	for i := 0; i+1 < len(path); i++ {
		u, v := path[i], path[i+1]
		if u > v {
			u, v = v, u
		}
		s.bytes[int64(u)*int64(s.n)+int64(v)] += int64(size)
	}
}

// Reset clears the accumulated traffic (e.g. to exclude an adaptation
// warmup from a steady-state comparison).
func (s *Stress) Reset() { s.bytes = make(map[int64]int64) }

// Total returns the total bytes carried by all physical links.
func (s *Stress) Total() int64 {
	var t int64
	for _, b := range s.bytes {
		t += b
	}
	return t
}

// Max returns the load on the most stressed physical link.
func (s *Stress) Max() int64 {
	var m int64
	for _, b := range s.bytes {
		if b > m {
			m = b
		}
	}
	return m
}

// TopK returns the loads of the k most stressed links, descending.
func (s *Stress) TopK(k int) []int64 {
	loads := make([]int64, 0, len(s.bytes))
	for _, b := range s.bytes {
		loads = append(loads, b)
	}
	sort.Slice(loads, func(i, j int) bool { return loads[i] > loads[j] })
	if k > len(loads) {
		k = len(loads)
	}
	return loads[:k]
}

// Links returns how many physical links carried any traffic.
func (s *Stress) Links() int { return len(s.bytes) }

type item struct {
	id int32
	d  int64
}

type nodeHeap []item

func (h nodeHeap) Len() int { return len(h) }
func (h nodeHeap) Less(i, j int) bool {
	if h[i].d != h[j].d {
		return h[i].d < h[j].d
	}
	return h[i].id < h[j].id
}
func (h nodeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)   { *h = append(*h, x.(item)) }
func (h *nodeHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
