package underlay

import (
	"testing"
	"testing/quick"
	"time"
)

func TestGenerateConnectivityAndSize(t *testing.T) {
	g := Generate(100, 2, 1)
	if g.Nodes() != 100 {
		t.Fatalf("nodes = %d", g.Nodes())
	}
	// PA with m=2: roughly 2 edges per added node.
	if e := g.Edges(); e < 100 || e > 250 {
		t.Fatalf("edges = %d, want about 2n", e)
	}
	r := NewRouter(g)
	for v := 1; v < 100; v++ {
		if r.Path(0, v) == nil {
			t.Fatalf("AS %d unreachable: PA graphs must be connected", v)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(60, 2, 7), Generate(60, 2, 7)
	ra, rb := NewRouter(a), NewRouter(b)
	for i := 0; i < 60; i++ {
		for j := 0; j < 60; j++ {
			if ra.Latency(i, j) != rb.Latency(i, j) {
				t.Fatalf("same-seed underlays differ at (%d,%d)", i, j)
			}
		}
	}
}

func TestPowerLawishDegrees(t *testing.T) {
	g := Generate(400, 2, 3)
	maxDeg := 0
	for u := 0; u < 400; u++ {
		if d := len(g.adj[u]); d > maxDeg {
			maxDeg = d
		}
	}
	// Preferential attachment produces hubs far above the mean degree (~4).
	if maxDeg < 15 {
		t.Fatalf("max degree = %d, want hub formation", maxDeg)
	}
}

func TestPathsAreConsistentWithLatencies(t *testing.T) {
	g := Generate(80, 2, 5)
	r := NewRouter(g)
	for a := 0; a < 80; a += 7 {
		for b := 0; b < 80; b += 11 {
			path := r.Path(a, b)
			if a == b {
				if len(path) != 1 || path[0] != a {
					t.Fatalf("self path = %v", path)
				}
				continue
			}
			if path == nil {
				t.Fatalf("no path %d->%d", a, b)
			}
			if path[0] != a || path[len(path)-1] != b {
				t.Fatalf("path endpoints wrong: %v", path)
			}
			var sum time.Duration
			for i := 0; i+1 < len(path); i++ {
				sum += edgeLatency(t, g, path[i], path[i+1])
			}
			if sum != r.Latency(a, b) {
				t.Fatalf("path latency %v != routed latency %v for %d->%d",
					sum, r.Latency(a, b), a, b)
			}
		}
	}
}

func edgeLatency(t *testing.T, g *Graph, u, v int) time.Duration {
	t.Helper()
	for _, e := range g.adj[u] {
		if int(e.to) == v {
			return time.Duration(e.us) * time.Microsecond
		}
	}
	t.Fatalf("path uses non-edge %d-%d", u, v)
	return 0
}

func TestMatrixMatchesRouter(t *testing.T) {
	g := Generate(50, 2, 9)
	r := NewRouter(g)
	m := r.Matrix()
	for i := 0; i < 50; i++ {
		for j := 0; j < 50; j++ {
			if i == j {
				continue
			}
			if m.OneWay(i, j) != r.Latency(i, j) {
				t.Fatalf("matrix (%d,%d) = %v, router %v", i, j, m.OneWay(i, j), r.Latency(i, j))
			}
		}
	}
}

func TestStressAccounting(t *testing.T) {
	g := Generate(40, 2, 11)
	r := NewRouter(g)
	s := NewStress(r)
	s.AddTransmission(0, 39, 100)
	hops := len(r.Path(0, 39)) - 1
	if got := s.Total(); got != int64(100*hops) {
		t.Fatalf("total = %d, want %d (100 bytes x %d hops)", got, 100*hops, hops)
	}
	if s.Max() != 100 {
		t.Fatalf("max = %d, want 100", s.Max())
	}
	if s.Links() != hops {
		t.Fatalf("links touched = %d, want %d", s.Links(), hops)
	}
	s.AddTransmission(39, 0, 100) // reverse direction hits the same links
	if s.Max() != 200 {
		t.Fatalf("max after reverse = %d, want 200", s.Max())
	}
	s.AddTransmission(5, 5, 1000) // self transmissions are free
	if s.Max() != 200 {
		t.Fatalf("self transmission changed stress")
	}
	top := s.TopK(3)
	if len(top) == 0 || top[0] != s.Max() {
		t.Fatalf("TopK(3) = %v, want led by max", top)
	}
}

// Property: routed latency satisfies the triangle inequality through any
// relay (it is a shortest-path metric).
func TestPropertyShortestPathTriangle(t *testing.T) {
	g := Generate(60, 2, 13)
	r := NewRouter(g)
	f := func(a, b, c uint8) bool {
		x, y, z := int(a)%60, int(b)%60, int(c)%60
		return r.Latency(x, z) <= r.Latency(x, y)+r.Latency(y, z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: latency is symmetric.
func TestPropertyLatencySymmetric(t *testing.T) {
	g := Generate(60, 2, 17)
	r := NewRouter(g)
	f := func(a, b uint8) bool {
		x, y := int(a)%60, int(b)%60
		return r.Latency(x, y) == r.Latency(y, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRouter300(b *testing.B) {
	g := Generate(300, 2, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewRouter(g)
	}
}
