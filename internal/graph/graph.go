// Package graph provides the small graph algorithms used by the GoCast
// resilience and scalability experiments: union-find connected components
// (largest-component ratio after failures, Figure 6) and BFS hop diameter
// (overlay diameter versus system size).
package graph

// UnionFind is a disjoint-set structure over elements 0..n-1 with union by
// rank and path compression.
type UnionFind struct {
	parent []int32
	rank   []int8
	sets   int
}

// NewUnionFind returns a structure with n singleton sets.
func NewUnionFind(n int) *UnionFind {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	return &UnionFind{parent: p, rank: make([]int8, n), sets: n}
}

// Find returns the representative of x's set.
func (u *UnionFind) Find(x int) int {
	root := x
	for int(u.parent[root]) != root {
		root = int(u.parent[root])
	}
	for int(u.parent[x]) != root {
		u.parent[x], x = int32(root), int(u.parent[x])
	}
	return root
}

// Union merges the sets containing x and y and reports whether they were
// previously distinct.
func (u *UnionFind) Union(x, y int) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = int32(rx)
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	u.sets--
	return true
}

// Sets returns the current number of disjoint sets.
func (u *UnionFind) Sets() int { return u.sets }

// Connected reports whether x and y are in the same set.
func (u *UnionFind) Connected(x, y int) bool { return u.Find(x) == u.Find(y) }

// Undirected is an adjacency-list graph over nodes 0..n-1.
type Undirected struct {
	adj [][]int32
}

// NewUndirected returns an empty graph over n nodes.
func NewUndirected(n int) *Undirected {
	return &Undirected{adj: make([][]int32, n)}
}

// Nodes returns the number of nodes.
func (g *Undirected) Nodes() int { return len(g.adj) }

// AddEdge adds an undirected edge. Self-loops are ignored; parallel edges
// are allowed (harmless for components and BFS).
func (g *Undirected) AddEdge(a, b int) {
	if a == b {
		return
	}
	g.adj[a] = append(g.adj[a], int32(b))
	g.adj[b] = append(g.adj[b], int32(a))
}

// Degree returns node a's degree (counting parallel edges).
func (g *Undirected) Degree(a int) int { return len(g.adj[a]) }

// LargestComponent returns the size of the largest connected component
// restricted to nodes where alive[i] is true (edges incident to dead nodes
// are ignored), along with the number of alive nodes. A nil alive slice
// means all nodes are alive.
func (g *Undirected) LargestComponent(alive []bool) (largest, aliveCount int) {
	n := len(g.adj)
	isAlive := func(i int) bool { return alive == nil || alive[i] }
	uf := NewUnionFind(n)
	for a := 0; a < n; a++ {
		if !isAlive(a) {
			continue
		}
		aliveCount++
		for _, b := range g.adj[a] {
			if isAlive(int(b)) {
				uf.Union(a, int(b))
			}
		}
	}
	size := make(map[int]int)
	for i := 0; i < n; i++ {
		if isAlive(i) {
			r := uf.Find(i)
			size[r]++
			if size[r] > largest {
				largest = size[r]
			}
		}
	}
	return largest, aliveCount
}

// Components returns the number of connected components among alive nodes.
func (g *Undirected) Components(alive []bool) int {
	n := len(g.adj)
	isAlive := func(i int) bool { return alive == nil || alive[i] }
	uf := NewUnionFind(n)
	aliveCount := 0
	for a := 0; a < n; a++ {
		if !isAlive(a) {
			continue
		}
		aliveCount++
		for _, b := range g.adj[a] {
			if isAlive(int(b)) {
				uf.Union(a, int(b))
			}
		}
	}
	// Sets() counts dead singletons too; subtract them.
	return uf.Sets() - (n - aliveCount)
}

// Eccentricity returns the maximum BFS hop distance from src to any
// reachable node, and the number of nodes reached (including src).
func (g *Undirected) Eccentricity(src int) (ecc, reached int) {
	n := len(g.adj)
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, n)
	dist[src] = 0
	queue = append(queue, int32(src))
	reached = 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				if int(dist[w]) > ecc {
					ecc = int(dist[w])
				}
				reached++
				queue = append(queue, w)
			}
		}
	}
	return ecc, reached
}

// Diameter returns the exact hop diameter of the graph (max eccentricity
// over all sources). It returns -1 if the graph is disconnected or empty.
// Cost is O(V * E); intended for graphs up to ~10k nodes with small degree.
func (g *Undirected) Diameter() int {
	n := len(g.adj)
	if n == 0 {
		return -1
	}
	diam := 0
	for v := 0; v < n; v++ {
		ecc, reached := g.Eccentricity(v)
		if reached != n {
			return -1
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}
