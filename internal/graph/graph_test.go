package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnionFindBasics(t *testing.T) {
	u := NewUnionFind(5)
	if u.Sets() != 5 {
		t.Fatalf("Sets = %d, want 5", u.Sets())
	}
	if !u.Union(0, 1) || !u.Union(1, 2) {
		t.Fatalf("fresh unions should report true")
	}
	if u.Union(0, 2) {
		t.Fatalf("redundant union should report false")
	}
	if u.Sets() != 3 {
		t.Fatalf("Sets = %d, want 3", u.Sets())
	}
	if !u.Connected(0, 2) || u.Connected(0, 3) {
		t.Fatalf("connectivity wrong")
	}
}

func TestLargestComponentAllAlive(t *testing.T) {
	g := NewUndirected(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	largest, alive := g.LargestComponent(nil)
	if largest != 3 || alive != 6 {
		t.Fatalf("largest=%d alive=%d, want 3, 6", largest, alive)
	}
	if c := g.Components(nil); c != 3 {
		t.Fatalf("components = %d, want 3 ({0,1,2},{3,4},{5})", c)
	}
}

func TestLargestComponentWithFailures(t *testing.T) {
	// Path 0-1-2-3-4; killing node 2 splits it.
	g := NewUndirected(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1)
	}
	alive := []bool{true, true, false, true, true}
	largest, n := g.LargestComponent(alive)
	if largest != 2 || n != 4 {
		t.Fatalf("largest=%d alive=%d, want 2, 4", largest, n)
	}
	if c := g.Components(alive); c != 2 {
		t.Fatalf("components = %d, want 2", c)
	}
}

func TestSelfLoopsIgnored(t *testing.T) {
	g := NewUndirected(2)
	g.AddEdge(0, 0)
	if g.Degree(0) != 0 {
		t.Fatalf("self loop should be ignored")
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	// Path of 5 nodes: diameter 4.
	g := NewUndirected(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1)
	}
	ecc, reached := g.Eccentricity(0)
	if ecc != 4 || reached != 5 {
		t.Fatalf("ecc=%d reached=%d, want 4, 5", ecc, reached)
	}
	ecc, _ = g.Eccentricity(2)
	if ecc != 2 {
		t.Fatalf("center ecc=%d, want 2", ecc)
	}
	if d := g.Diameter(); d != 4 {
		t.Fatalf("diameter = %d, want 4", d)
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := NewUndirected(4)
	g.AddEdge(0, 1)
	if d := g.Diameter(); d != -1 {
		t.Fatalf("diameter of disconnected graph = %d, want -1", d)
	}
}

func TestDiameterCompleteGraph(t *testing.T) {
	g := NewUndirected(6)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			g.AddEdge(i, j)
		}
	}
	if d := g.Diameter(); d != 1 {
		t.Fatalf("diameter = %d, want 1", d)
	}
}

// Property: union-find agrees with BFS reachability on random graphs.
func TestPropertyUnionFindMatchesBFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := NewUndirected(n)
		u := NewUnionFind(n)
		for e := 0; e < rng.Intn(3*n); e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g.AddEdge(a, b)
				u.Union(a, b)
			}
		}
		// BFS from node 0; every reached node must be Connected(0, v).
		_, reached := g.Eccentricity(0)
		cnt := 0
		for v := 0; v < n; v++ {
			if u.Connected(0, v) {
				cnt++
			}
		}
		return cnt == reached
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: largest component size is between ceil(alive/sets) and alive.
func TestPropertyLargestComponentBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		g := NewUndirected(n)
		for e := 0; e < rng.Intn(2*n); e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		alive := make([]bool, n)
		aliveCount := 0
		for i := range alive {
			alive[i] = rng.Intn(4) > 0
			if alive[i] {
				aliveCount++
			}
		}
		largest, gotAlive := g.LargestComponent(alive)
		if gotAlive != aliveCount {
			return false
		}
		if aliveCount == 0 {
			return largest == 0
		}
		comps := g.Components(alive)
		if comps <= 0 {
			return false
		}
		minLargest := (aliveCount + comps - 1) / comps
		return largest >= minLargest && largest <= aliveCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLargestComponent1024(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := NewUndirected(1024)
	for i := 0; i < 1024*3; i++ {
		g.AddEdge(rng.Intn(1024), rng.Intn(1024))
	}
	alive := make([]bool, 1024)
	for i := range alive {
		alive[i] = rng.Intn(5) > 0
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.LargestComponent(alive)
	}
}
