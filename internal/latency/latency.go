// Package latency models wide-area network latencies between measurement
// sites, standing in for the King dataset used by the GoCast paper.
//
// The paper's experiments use measured RTTs between 1,740 DNS servers
// (average one-way latency 91 ms, maximum 399 ms) and exploit two properties
// of that data: heavy-tailed pairwise latencies, and geographic clustering
// (nearby links are much cheaper than random links; proximity-only overlays
// partition along continents). The synthetic generator reproduces both:
// sites are placed in weighted geographic clusters in a 2-D "milliseconds
// plane", per-site access delays and per-pair jitter are added, and the
// whole matrix is rescaled so the mean one-way latency matches the King
// dataset's 91 ms (values are clamped to the King maximum of 399 ms).
//
// Real measurements can be substituted via Load/Save, which use a plain
// text format.
package latency

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"time"
)

// Calibration targets from the King dataset as reported by the paper.
const (
	// KingMeanOneWay is the average one-way latency of the King dataset.
	KingMeanOneWay = 91 * time.Millisecond
	// KingMaxOneWay is the maximum one-way latency of the King dataset.
	KingMaxOneWay = 399 * time.Millisecond
	// KingSites is the number of DNS servers with usable measurements.
	KingSites = 1740
	// minOneWay is a floor for distinct sites; co-located nodes use LocalOneWay.
	minOneWay = 1 * time.Millisecond
	// LocalOneWay is the latency between two nodes mapped to the same site.
	LocalOneWay = 500 * time.Microsecond
)

// Matrix holds symmetric one-way latencies between n sites, in microseconds.
type Matrix struct {
	n  int
	us []int32 // row-major n*n, one-way latency in microseconds
	// regions labels each site with the geographic cluster it was
	// synthesized in (index into synthClusters), or is nil for matrices
	// built by NewMatrix/Load. Partition uses the labels as the natural
	// shard cut; unlabeled matrices are partitioned by distance instead.
	regions []int16
}

// NewMatrix returns an all-zero latency matrix over n sites.
func NewMatrix(n int) *Matrix {
	if n <= 0 {
		panic("latency: matrix size must be positive")
	}
	return &Matrix{n: n, us: make([]int32, n*n)}
}

// Sites returns the number of sites in the matrix.
func (m *Matrix) Sites() int { return m.n }

// OneWay returns the one-way latency between sites i and j. The latency
// between a site and itself is LocalOneWay, modelling co-located nodes.
func (m *Matrix) OneWay(i, j int) time.Duration {
	if i == j {
		return LocalOneWay
	}
	return time.Duration(m.us[i*m.n+j]) * time.Microsecond
}

// RTT returns the round-trip time between sites i and j.
func (m *Matrix) RTT(i, j int) time.Duration {
	return 2 * m.OneWay(i, j)
}

// Set assigns the one-way latency between sites i and j (both directions).
func (m *Matrix) Set(i, j int, d time.Duration) {
	us := int32(d / time.Microsecond)
	m.us[i*m.n+j] = us
	m.us[j*m.n+i] = us
}

// Stats summarizes the off-diagonal latency distribution.
type Stats struct {
	Mean, Min, Max time.Duration
	P50, P90, P99  time.Duration
}

// Stats computes distribution statistics over all off-diagonal pairs.
func (m *Matrix) Stats() Stats {
	var sum int64
	all := make([]int32, 0, m.n*(m.n-1))
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if i == j {
				continue
			}
			v := m.us[i*m.n+j]
			sum += int64(v)
			all = append(all, v)
		}
	}
	if len(all) == 0 {
		return Stats{}
	}
	sortInt32(all)
	pick := func(q float64) time.Duration {
		idx := int(q * float64(len(all)-1))
		return time.Duration(all[idx]) * time.Microsecond
	}
	return Stats{
		Mean: time.Duration(sum/int64(len(all))) * time.Microsecond,
		Min:  time.Duration(all[0]) * time.Microsecond,
		Max:  time.Duration(all[len(all)-1]) * time.Microsecond,
		P50:  pick(0.50),
		P90:  pick(0.90),
		P99:  pick(0.99),
	}
}

// cluster is a geographic region in the synthetic model. Positions and
// spreads are in pre-calibration "milliseconds" (rescaled afterwards).
type cluster struct {
	name   string
	x, y   float64
	spread float64 // std-dev of site placement around the center
	weight float64 // fraction of sites placed in this cluster
}

// synthClusters approximates the continental structure of the King data.
// Centers sit far apart relative to the intra-cluster spread, modelling
// the oceans between continents: without that separation, proximity-only
// overlays would not partition the way the paper observes (Figure 6,
// C_rand = 0).
var synthClusters = []cluster{
	{name: "north-america", x: 0, y: 0, spread: 11, weight: 0.35},
	{name: "europe", x: 130, y: 40, spread: 9, weight: 0.30},
	{name: "asia", x: 300, y: 85, spread: 13, weight: 0.20},
	{name: "south-america", x: 55, y: 220, spread: 10, weight: 0.08},
	{name: "oceania", x: 360, y: 230, spread: 8, weight: 0.07},
}

// Synthesize generates a King-like latency matrix over n sites,
// deterministic in seed, calibrated to KingMeanOneWay / KingMaxOneWay.
func Synthesize(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	type site struct {
		x, y   float64
		access float64 // per-site last-mile delay, ms
	}
	sites := make([]site, n)
	regions := make([]int16, n)
	for i := range sites {
		ci := pickCluster(rng)
		c := synthClusters[ci]
		regions[i] = int16(ci)
		sites[i] = site{
			x:      c.x + rng.NormFloat64()*c.spread,
			y:      c.y + rng.NormFloat64()*c.spread,
			access: rng.ExpFloat64() * 2, // mean 2 ms last-mile
		}
	}
	m := NewMatrix(n)
	m.regions = regions
	var sum float64
	var pairs int64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := sites[i].x-sites[j].x, sites[i].y-sites[j].y
			base := math.Sqrt(dx*dx+dy*dy) + sites[i].access + sites[j].access
			// Per-pair jitter models route inefficiency; it is what
			// produces triangle-inequality violations.
			jitter := 1 + 0.15*rng.Float64()
			ms := base * jitter
			m.us[i*n+j] = int32(ms * 1000)
			m.us[j*n+i] = m.us[i*n+j]
			sum += ms
			pairs++
		}
	}
	// Rescale the mean to the King mean, then clamp to [minOneWay, KingMaxOneWay].
	mean := sum / float64(pairs)
	scale := float64(KingMeanOneWay/time.Millisecond) / mean
	minUS := int32(minOneWay / time.Microsecond)
	maxUS := int32(KingMaxOneWay / time.Microsecond)
	for k, v := range m.us {
		if v == 0 {
			continue
		}
		s := int32(float64(v) * scale)
		if s < minUS {
			s = minUS
		}
		if s > maxUS {
			s = maxUS
		}
		m.us[k] = s
	}
	return m
}

func pickCluster(rng *rand.Rand) int {
	r := rng.Float64()
	acc := 0.0
	for i, c := range synthClusters {
		acc += c.weight
		if r < acc {
			return i
		}
	}
	return len(synthClusters) - 1
}

// Save writes the matrix in a plain text format: a header line "sites N"
// followed by one line per ordered pair "i j microseconds" for i<j.
func (m *Matrix) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "sites %d\n", m.n); err != nil {
		return err
	}
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			if _, err := fmt.Fprintf(bw, "%d %d %d\n", i, j, m.us[i*m.n+j]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reads a matrix in the format written by Save.
func Load(r io.Reader) (*Matrix, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("latency: empty input")
	}
	var n int
	if _, err := fmt.Sscanf(sc.Text(), "sites %d", &n); err != nil {
		return nil, fmt.Errorf("latency: bad header %q: %w", sc.Text(), err)
	}
	if n <= 0 {
		return nil, fmt.Errorf("latency: invalid site count %d", n)
	}
	m := NewMatrix(n)
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("latency: line %d: want 3 fields, got %d", line, len(fields))
		}
		i, err1 := strconv.Atoi(fields[0])
		j, err2 := strconv.Atoi(fields[1])
		us, err3 := strconv.ParseInt(fields[2], 10, 32)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("latency: line %d: malformed entry", line)
		}
		if i < 0 || i >= n || j < 0 || j >= n {
			return nil, fmt.Errorf("latency: line %d: site index out of range", line)
		}
		m.us[i*n+j] = int32(us)
		m.us[j*n+i] = int32(us)
	}
	return m, sc.Err()
}

// sortInt32 sorts in place (avoids a sort.Slice closure allocation on the
// hot path of Stats for large matrices).
func sortInt32(a []int32) {
	if len(a) < 2 {
		return
	}
	// Simple radix-free quicksort via sort is fine; use insertion for tiny.
	quickInt32(a)
}

func quickInt32(a []int32) {
	for len(a) > 12 {
		p := medianOfThree(a)
		i, j := 0, len(a)-1
		for i <= j {
			for a[i] < p {
				i++
			}
			for a[j] > p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if j < len(a)-i {
			quickInt32(a[:j+1])
			a = a[i:]
		} else {
			quickInt32(a[i:])
			a = a[:j+1]
		}
	}
	for i := 1; i < len(a); i++ {
		for k := i; k > 0 && a[k] < a[k-1]; k-- {
			a[k], a[k-1] = a[k-1], a[k]
		}
	}
}

func medianOfThree(a []int32) int32 {
	lo, mid, hi := a[0], a[len(a)/2], a[len(a)-1]
	if lo > mid {
		lo, mid = mid, lo
	}
	if mid > hi {
		mid = hi
	}
	if lo > mid {
		mid = lo
	}
	return mid
}
