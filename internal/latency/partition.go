package latency

import (
	"sort"
	"time"
)

// Region returns the geographic cluster label of site i for synthesized
// matrices, or -1 when the matrix carries no placement information
// (NewMatrix / Load).
func (m *Matrix) Region(i int) int {
	if m.regions == nil {
		return -1
	}
	return int(m.regions[i])
}

// Partition groups the matrix's sites into up to want shards for
// conservative parallel simulation, and computes each shard's lookahead
// bound. It returns the site→shard assignment and, per shard, the
// minimum one-way latency from any of the shard's sites to any site
// outside it — the latency floor below which the shard cannot affect
// another shard, i.e. the safe window for independent advancement.
//
// Synthesized matrices are cut along their geographic clusters, which
// is the natural partition: intra-site traffic is LocalOneWay and
// inter-region latencies are bounded well below by the ocean gaps, so
// region cuts maximize the lookahead. When fewer shards are requested
// than regions, the geographically closest groups are merged; when
// more are requested, the largest groups are split around their two
// most distant sites. Unlabeled matrices start as a single group and
// rely purely on distance splitting.
//
// The result is deterministic in the matrix alone. The effective shard
// count may be lower than want (few sites, or unsplittable groups);
// degenerate matrices whose cross-shard latency floor is not positive
// collapse to a single shard, for which minOut is []{0} — callers must
// treat a single-shard result as "run sequentially".
func Partition(m *Matrix, want int) (siteShard []int, minOut []time.Duration) {
	if want > m.n {
		want = m.n
	}
	siteShard = make([]int, m.n)
	if want <= 1 {
		return siteShard, []time.Duration{0}
	}

	var groups [][]int
	if m.regions != nil {
		byRegion := map[int16][]int{}
		for i, r := range m.regions {
			byRegion[r] = append(byRegion[r], i)
		}
		labels := make([]int16, 0, len(byRegion))
		for r := range byRegion {
			labels = append(labels, r)
		}
		sort.Slice(labels, func(a, b int) bool { return labels[a] < labels[b] })
		for _, r := range labels {
			groups = append(groups, byRegion[r])
		}
	} else {
		all := make([]int, m.n)
		for i := range all {
			all[i] = i
		}
		groups = [][]int{all}
	}

	for len(groups) > want {
		groups = mergeClosest(m, groups)
	}
	for len(groups) < want {
		split, ok := splitWidest(m, groups)
		if !ok {
			break
		}
		groups = split
	}

	// Canonical shard numbering: ascending minimum site index.
	sort.Slice(groups, func(a, b int) bool { return minSite(groups[a]) < minSite(groups[b]) })
	if len(groups) == 1 {
		return siteShard, []time.Duration{0}
	}
	for s, g := range groups {
		for _, site := range g {
			siteShard[site] = s
		}
	}
	minOut = make([]time.Duration, len(groups))
	for s := range minOut {
		minOut[s] = time.Duration(1) << 62
	}
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if i == j || siteShard[i] == siteShard[j] {
				continue
			}
			if d := m.OneWay(i, j); d < minOut[siteShard[i]] {
				minOut[siteShard[i]] = d
			}
		}
	}
	for _, d := range minOut {
		if d <= 0 {
			// A zero entry between shards (partially filled Load matrix)
			// leaves no safe window: fall back to one shard.
			return make([]int, m.n), []time.Duration{0}
		}
	}
	return siteShard, minOut
}

func minSite(g []int) int {
	min := g[0]
	for _, s := range g[1:] {
		if s < min {
			min = s
		}
	}
	return min
}

// groupDist is the minimum one-way latency between any site of a and
// any site of b.
func groupDist(m *Matrix, a, b []int) time.Duration {
	best := time.Duration(1) << 62
	for _, i := range a {
		for _, j := range b {
			if d := m.OneWay(i, j); d < best {
				best = d
			}
		}
	}
	return best
}

// mergeClosest merges the pair of groups with the smallest cross
// latency (ties broken by lowest site indexes), keeping the cut along
// the widest gaps so the surviving shards retain the most lookahead.
func mergeClosest(m *Matrix, groups [][]int) [][]int {
	ba, bb := 0, 1
	best := time.Duration(1)<<62 + 1
	for a := 0; a < len(groups); a++ {
		for b := a + 1; b < len(groups); b++ {
			d := groupDist(m, groups[a], groups[b])
			if d < best {
				best, ba, bb = d, a, b
			}
		}
	}
	merged := append(append([]int{}, groups[ba]...), groups[bb]...)
	sort.Ints(merged)
	out := make([][]int, 0, len(groups)-1)
	for i, g := range groups {
		if i == ba || i == bb {
			continue
		}
		out = append(out, g)
	}
	return append(out, merged)
}

// splitWidest splits the largest group (>= 2 sites) around its two most
// distant sites, assigning every site to the nearer pole. Returns false
// when no group can be split further.
func splitWidest(m *Matrix, groups [][]int) ([][]int, bool) {
	gi := -1
	for i, g := range groups {
		if len(g) < 2 {
			continue
		}
		if gi < 0 || len(g) > len(groups[gi]) ||
			(len(g) == len(groups[gi]) && minSite(g) < minSite(groups[gi])) {
			gi = i
		}
	}
	if gi < 0 {
		return groups, false
	}
	g := groups[gi]
	pa, pb := g[0], g[1]
	var widest time.Duration = -1
	for x := 0; x < len(g); x++ {
		for y := x + 1; y < len(g); y++ {
			if d := m.OneWay(g[x], g[y]); d > widest {
				widest, pa, pb = d, g[x], g[y]
			}
		}
	}
	var left, right []int
	for _, s := range g {
		// OneWay(s, s) is LocalOneWay, below any cross-site latency, so
		// each pole lands on its own side and both halves are non-empty.
		if m.OneWay(s, pa) <= m.OneWay(s, pb) {
			left = append(left, s)
		} else {
			right = append(right, s)
		}
	}
	out := make([][]int, 0, len(groups)+1)
	for i, grp := range groups {
		if i == gi {
			continue
		}
		out = append(out, grp)
	}
	return append(out, left, right), true
}
