package latency

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSynthesizeCalibration(t *testing.T) {
	m := Synthesize(400, 1)
	st := m.Stats()
	// Mean should be close to the King mean (clamping shifts it slightly).
	lo, hi := 75*time.Millisecond, 105*time.Millisecond
	if st.Mean < lo || st.Mean > hi {
		t.Errorf("mean one-way = %v, want within [%v, %v]", st.Mean, lo, hi)
	}
	if st.Max > KingMaxOneWay {
		t.Errorf("max one-way = %v, want <= %v", st.Max, KingMaxOneWay)
	}
	if st.Min < time.Millisecond {
		t.Errorf("min one-way = %v, want >= 1ms", st.Min)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a, b := Synthesize(50, 42), Synthesize(50, 42)
	for i := 0; i < 50; i++ {
		for j := 0; j < 50; j++ {
			if a.OneWay(i, j) != b.OneWay(i, j) {
				t.Fatalf("same-seed matrices differ at (%d,%d)", i, j)
			}
		}
	}
	c := Synthesize(50, 43)
	same := true
	for i := 0; i < 50 && same; i++ {
		for j := i + 1; j < 50; j++ {
			if a.OneWay(i, j) != c.OneWay(i, j) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatalf("different seeds produced identical matrices")
	}
}

func TestSymmetryAndDiagonal(t *testing.T) {
	m := Synthesize(80, 7)
	for i := 0; i < 80; i++ {
		if got := m.OneWay(i, i); got != LocalOneWay {
			t.Fatalf("OneWay(%d,%d) = %v, want %v", i, i, got, LocalOneWay)
		}
		for j := i + 1; j < 80; j++ {
			if m.OneWay(i, j) != m.OneWay(j, i) {
				t.Fatalf("asymmetric latency at (%d,%d)", i, j)
			}
		}
	}
}

func TestRTTIsTwiceOneWay(t *testing.T) {
	m := Synthesize(10, 3)
	if m.RTT(1, 2) != 2*m.OneWay(1, 2) {
		t.Fatalf("RTT = %v, want %v", m.RTT(1, 2), 2*m.OneWay(1, 2))
	}
}

// The synthetic model must exhibit geographic clustering: a node's nearest
// handful of peers must be far cheaper than a random peer, i.e.,
// proximity-aware neighbor selection (C_near=5) has something to exploit.
// The paper's Figure 5(b) relies on this: tree links average 15.5 ms versus
// the 91 ms random-pair mean.
func TestClusteringStructure(t *testing.T) {
	const n = 300
	m := Synthesize(n, 9)
	var nearSum, allSum time.Duration
	for i := 0; i < n; i++ {
		var ds []time.Duration
		for j := 0; j < n; j++ {
			if i != j {
				ds = append(ds, m.OneWay(i, j))
			}
		}
		sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
		nearSum += ds[4] // 5th-nearest, the marginal C_near neighbor
		for _, d := range ds {
			allSum += d / n
		}
	}
	near := nearSum / n
	mean := allSum / n
	if near*4 > mean {
		t.Errorf("5th-nearest latency %v not well below mean %v: no clustering", near, mean)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	m := Synthesize(30, 11)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sites() != m.Sites() {
		t.Fatalf("sites = %d, want %d", got.Sites(), m.Sites())
	}
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			if got.OneWay(i, j) != m.OneWay(i, j) {
				t.Fatalf("loaded matrix differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"bad header":   "hello 3\n0 1 5\n",
		"zero sites":   "sites 0\n",
		"neg sites":    "sites -4\n",
		"short line":   "sites 3\n0 1\n",
		"out of range": "sites 3\n0 9 100\n",
		"not a number": "sites 3\n0 1 x\n",
	}
	for name, in := range cases {
		if _, err := Load(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("%s: Load accepted malformed input", name)
		}
	}
}

func TestStatsPercentilesOrdered(t *testing.T) {
	m := Synthesize(120, 21)
	st := m.Stats()
	if !(st.Min <= st.P50 && st.P50 <= st.P90 && st.P90 <= st.P99 && st.P99 <= st.Max) {
		t.Fatalf("percentiles out of order: %+v", st)
	}
}

func TestSetUpdatesBothDirections(t *testing.T) {
	m := NewMatrix(4)
	m.Set(1, 3, 25*time.Millisecond)
	if m.OneWay(1, 3) != 25*time.Millisecond || m.OneWay(3, 1) != 25*time.Millisecond {
		t.Fatalf("Set did not update both directions")
	}
}

func TestNewMatrixPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("NewMatrix(0) should panic")
		}
	}()
	NewMatrix(0)
}

// Property: sortInt32 sorts any slice.
func TestPropertySortInt32(t *testing.T) {
	f := func(v []int32) bool {
		cp := append([]int32(nil), v...)
		sortInt32(cp)
		if !sort.SliceIsSorted(cp, func(i, j int) bool { return cp[i] < cp[j] }) {
			return false
		}
		// Same multiset.
		want := append([]int32(nil), v...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if cp[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: save/load round-trips random matrices.
func TestPropertySaveLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(20)
		m := NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				m.Set(i, j, time.Duration(rng.Intn(400_000))*time.Microsecond)
			}
		}
		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if got.OneWay(i, j) != m.OneWay(i, j) {
					t.Fatalf("trial %d: mismatch at (%d,%d)", trial, i, j)
				}
			}
		}
	}
}

func BenchmarkSynthesize1740(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Synthesize(KingSites, int64(i))
	}
}
