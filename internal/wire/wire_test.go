package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"gocast/internal/core"
	"gocast/internal/store"
)

func sampleMessages() []core.Message {
	entry := core.Entry{ID: 7, Inc: 3, Addr: "10.0.0.7:9000", Landmarks: []uint16{12, 99, 4}}
	bare := core.Entry{ID: 3}
	return []core.Message{
		&core.JoinRequest{From: entry},
		&core.JoinRequest{From: core.Entry{ID: 2, Inc: 0xFFFFFFFF}},
		&core.JoinReply{
			Members:   []core.Entry{entry, bare},
			Landmarks: []core.Entry{bare},
			Root:      5,
		},
		&core.JoinReply{Root: core.None},
		&core.Ping{From: entry, Nonce: 42},
		&core.Pong{From: bare, Nonce: 42, Degrees: core.Degrees{Rand: 1, Near: 5, MaxNearbyRTT: 80 * time.Millisecond}},
		&core.AddRequest{From: entry, LinkKind: core.Nearby, RTT: 33 * time.Millisecond, Degrees: core.Degrees{Near: 4}, ForRebalance: true},
		&core.AddReply{From: entry, LinkKind: core.Random, Accepted: true, RTT: time.Second, Degrees: core.Degrees{Rand: 2}},
		&core.Drop{Degrees: core.Degrees{Rand: 1, Near: 5}},
		&core.Drop{Degrees: core.Degrees{Near: 2}, Departing: true},
		&core.Rebalance{Target: entry},
		&core.RebalanceReply{Target: 9, OK: true},
		&core.Gossip{
			IDs: []core.GossipID{
				{ID: core.MessageID{Source: 1, Seq: 2}, Age: 50 * time.Millisecond},
				{ID: core.MessageID{Source: 3, Seq: 0}},
				{
					ID: core.MessageID{Source: 4, Seq: 1}, Age: time.Second,
					Hop: core.Hop{Sampled: true, Hops: 3, Origin: 90 * time.Second},
				},
			},
			Members: []core.Entry{entry},
			Degrees: core.Degrees{Rand: 1, Near: 6, MaxNearbyRTT: time.Millisecond},
			Obits:   []core.Obituary{{ID: 12, Inc: 1}, {ID: 40, Inc: 0}},
		},
		&core.Gossip{Obits: []core.Obituary{{ID: 9, Inc: 7}}},
		&core.Gossip{},
		&core.PullRequest{IDs: []core.MessageID{{Source: 4, Seq: 9}}},
		&core.PullRequest{},
		&core.Multicast{ID: core.MessageID{Source: 2, Seq: 7}, Age: 123 * time.Millisecond, Payload: []byte("payload"), ViaTree: true},
		&core.Multicast{ID: core.MessageID{Source: 2, Seq: 8}},
		// Sampled dissemination trace hop context riding on a push.
		&core.Multicast{
			ID: core.MessageID{Source: 2, Seq: 10}, Age: time.Millisecond,
			Payload: []byte("traced"), ViaTree: true,
			Hop: core.Hop{Sampled: true, Hops: 2, Origin: 5 * time.Minute},
		},
		&core.TreeAdvert{Root: 0, Epoch: 3, Wave: 17, Dist: 45 * time.Millisecond},
		&core.TreeParent{On: true},
		&core.TreeParent{},
		&core.TreeAdvertReq{},
		&core.SyncRequest{Ranges: []store.SourceRange{
			{Source: 1, Low: 0, High: 42},
			{Source: -9, Low: 7, High: 0xFFFFFFFF},
		}},
		&core.SyncRequest{},
		&core.SyncReply{
			Items: []core.SyncItem{
				{ID: core.MessageID{Source: 2, Seq: 5}, Age: 40 * time.Millisecond, Payload: []byte("recovered")},
				{ID: core.MessageID{Source: 3, Seq: 0}},
				{
					ID: core.MessageID{Source: 3, Seq: 9}, Payload: []byte("traced"),
					Hop: core.Hop{Sampled: true, Hops: 7, Origin: time.Hour},
				},
			},
			More: true,
		},
		&core.SyncReply{},
		&core.PullMiss{IDs: []core.MessageID{{Source: 4, Seq: 9}, {Source: 4, Seq: 10}}},
		&core.PullMiss{},
		// Coopcast: tree-striped symbol, pulled repair symbol, and the
		// degenerate zero-data symbol.
		&core.Symbol{
			ID: core.MessageID{Source: 6, Seq: 2}, Age: 9 * time.Millisecond,
			Index: 3, K: 8, N: 10, PayloadLen: 8 << 10,
			Data: []byte("symbol-data"), ViaTree: true,
		},
		&core.Symbol{ID: core.MessageID{Source: 6, Seq: 3}, Index: 9, K: 1, N: 2, PayloadLen: 1, Data: []byte{0xAB}},
		&core.Symbol{},
		&core.Symbol{
			ID: core.MessageID{Source: 6, Seq: 4}, Age: time.Millisecond,
			Index: 1, K: 4, N: 6, PayloadLen: 4 << 10,
			Data: []byte("traced-symbol"), ViaTree: true,
			Hop: core.Hop{Sampled: true, Hops: 1, Origin: 30 * time.Second},
		},
		&core.SymbolPull{
			ID:   core.MessageID{Source: 6, Seq: 2},
			Want: store.SymbolSet{0x5, 0, 0, 1 << 63},
		},
		&core.SymbolPull{},
		// Gossip carrying symbol adverts, including a K=1 geometry and a
		// saturated 256-bit bitmap.
		&core.Gossip{
			Degrees: core.Degrees{Rand: 2},
			Syms: []core.SymbolAdvert{
				{
					ID: core.MessageID{Source: 6, Seq: 2}, Age: time.Second,
					K: 8, N: 10, PayloadLen: 8 << 10,
					Have: store.SymbolSet{0x3FF, 0, 0, 0},
				},
				{
					ID: core.MessageID{Source: 7, Seq: 1},
					K:  1, N: 1, PayloadLen: 100,
					Have: store.SymbolSet{1, 0, 0, 0},
				},
				{
					ID: core.MessageID{Source: 8, Seq: 4}, Age: time.Minute,
					K: 252, N: 256, PayloadLen: 1 << 20,
					Have: store.SymbolSet{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)},
				},
			},
		},
		// Sync reply paging symbols alongside whole items.
		&core.SyncReply{
			Items: []core.SyncItem{{ID: core.MessageID{Source: 2, Seq: 5}, Payload: []byte("whole")}},
			Syms: []core.Symbol{
				{ID: core.MessageID{Source: 6, Seq: 2}, Index: 0, K: 2, N: 3, PayloadLen: 12, Data: []byte("half-a")},
				{ID: core.MessageID{Source: 6, Seq: 2}, Index: 2, K: 2, N: 3, PayloadLen: 12, Data: []byte("parity")},
			},
			More: true,
		},
	}
}

func TestRoundTripAllKinds(t *testing.T) {
	for _, m := range sampleMessages() {
		buf, err := Append(nil, 11, m)
		if err != nil {
			t.Fatalf("%T: encode: %v", m, err)
		}
		from, got, err := Decode(buf[4:])
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if from != 11 {
			t.Fatalf("%T: sender = %d, want 11", m, from)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("%T round trip mismatch:\n in: %#v\nout: %#v", m, m, got)
		}
	}
}

func TestStreamReadWrite(t *testing.T) {
	var buf bytes.Buffer
	msgs := sampleMessages()
	for _, m := range msgs {
		if err := WriteFrame(&buf, 3, m); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	for i, want := range msgs {
		from, got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if from != 3 || !reflect.DeepEqual(want, got) {
			t.Fatalf("frame %d mismatch: %#v vs %#v", i, want, got)
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d leftover bytes", buf.Len())
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	for _, m := range sampleMessages() {
		buf, err := Append(nil, 1, m)
		if err != nil {
			t.Fatal(err)
		}
		payload := buf[4:]
		for cut := 0; cut < len(payload); cut++ {
			if _, _, err := Decode(payload[:cut]); err == nil {
				// Cutting after all required fields of a message with no
				// trailing data cannot happen: Decode checks for exact
				// consumption, so any strict prefix must fail.
				t.Fatalf("%T: truncation to %d/%d bytes accepted", m, cut, len(payload))
			}
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	buf, err := Append(nil, 1, &core.TreeParent{On: true})
	if err != nil {
		t.Fatal(err)
	}
	payload := append(buf[4:], 0xEE)
	if _, _, err := Decode(payload); err == nil {
		t.Fatalf("trailing garbage accepted")
	}
}

func TestDecodeRejectsUnknownKind(t *testing.T) {
	payload := []byte{1, 0, 0, 0, 0xFF}
	if _, _, err := Decode(payload); err == nil {
		t.Fatalf("unknown kind accepted")
	}
}

func TestReadFrameRejectsHugeLength(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, err := ReadFrame(&buf); err != ErrFrameTooLarge {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestDecodeRejectsAbsurdCounts(t *testing.T) {
	// A gossip claiming 65535 IDs in a tiny frame must fail fast, not
	// allocate.
	payload := []byte{1, 0, 0, 0, byte(core.KindGossip), 0xFF, 0xFF}
	if _, _, err := Decode(payload); err == nil {
		t.Fatalf("absurd ID count accepted")
	}
}

// randHop returns a hop context that is sampled half the time; unsampled
// hops still carry arbitrary field values (the codec must not canonicalize).
func randHop(rng *rand.Rand) core.Hop {
	return core.Hop{
		Sampled: rng.Intn(2) == 0,
		Hops:    uint8(rng.Intn(256)),
		Origin:  time.Duration(rng.Intn(1e9)),
	}
}

// Property: random gossips and multicasts round-trip.
func TestPropertyRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		var m core.Message
		switch rng.Intn(5) {
		case 0:
			g := &core.Gossip{Degrees: core.Degrees{
				Rand:         int16(rng.Intn(8)),
				Near:         int16(rng.Intn(8)),
				MaxNearbyRTT: time.Duration(rng.Intn(1e9)),
			}}
			for i := 0; i < rng.Intn(5); i++ {
				g.IDs = append(g.IDs, core.GossipID{
					ID:  core.MessageID{Source: core.NodeID(rng.Intn(1000)), Seq: rng.Uint32()},
					Age: time.Duration(rng.Intn(1e9)),
					Hop: randHop(rng),
				})
			}
			for i := 0; i < rng.Intn(3); i++ {
				e := core.Entry{ID: core.NodeID(rng.Intn(1000)), Inc: rng.Uint32()}
				if rng.Intn(2) == 0 {
					e.Addr = "127.0.0.1:1"
				}
				for j := 0; j < rng.Intn(4); j++ {
					e.Landmarks = append(e.Landmarks, uint16(rng.Intn(1000)))
				}
				g.Members = append(g.Members, e)
			}
			for i := 0; i < rng.Intn(4); i++ {
				g.Obits = append(g.Obits, core.Obituary{
					ID:  core.NodeID(rng.Intn(1000)),
					Inc: rng.Uint32(),
				})
			}
			m = g
		case 1:
			mc := &core.Multicast{
				ID:      core.MessageID{Source: core.NodeID(rng.Intn(1000)), Seq: rng.Uint32()},
				Age:     time.Duration(rng.Intn(1e9)),
				ViaTree: rng.Intn(2) == 0,
				Hop:     randHop(rng),
			}
			if n := rng.Intn(64); n > 0 {
				mc.Payload = make([]byte, n)
				rng.Read(mc.Payload)
			}
			m = mc
		case 2:
			sr := &core.SyncRequest{}
			for i := 0; i < rng.Intn(6); i++ {
				low := rng.Uint32()
				sr.Ranges = append(sr.Ranges, store.SourceRange{
					Source: int32(rng.Intn(1000)),
					Low:    low,
					High:   low + uint32(rng.Intn(1000)),
				})
			}
			m = sr
		case 3:
			rep := &core.SyncReply{More: rng.Intn(2) == 0}
			for i := 0; i < rng.Intn(4); i++ {
				it := core.SyncItem{
					ID:  core.MessageID{Source: core.NodeID(rng.Intn(1000)), Seq: rng.Uint32()},
					Age: time.Duration(rng.Intn(1e9)),
					Hop: randHop(rng),
				}
				if n := rng.Intn(32); n > 0 {
					it.Payload = make([]byte, n)
					rng.Read(it.Payload)
				}
				rep.Items = append(rep.Items, it)
			}
			m = rep
		default:
			pr := &core.PullRequest{}
			for i := 0; i < rng.Intn(6); i++ {
				pr.IDs = append(pr.IDs, core.MessageID{Source: core.NodeID(rng.Intn(100)), Seq: rng.Uint32()})
			}
			m = pr
		}
		buf, err := Append(nil, core.NodeID(rng.Intn(1000)), m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		_, got, err := Decode(buf[4:])
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("trial %d mismatch:\n%#v\n%#v", trial, m, got)
		}
	}
}

func BenchmarkEncodeGossip(b *testing.B) {
	g := &core.Gossip{
		IDs: []core.GossipID{
			{ID: core.MessageID{Source: 1, Seq: 2}, Age: time.Millisecond},
			{ID: core.MessageID{Source: 5, Seq: 9}, Age: time.Second},
		},
		Members: []core.Entry{{ID: 4, Addr: "127.0.0.1:4", Landmarks: []uint16{1, 2, 3}}},
	}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = Append(buf[:0], 1, g)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeGossip(b *testing.B) {
	g := &core.Gossip{
		IDs:     []core.GossipID{{ID: core.MessageID{Source: 1, Seq: 2}, Age: time.Millisecond}},
		Members: []core.Entry{{ID: 4, Addr: "127.0.0.1:4"}},
	}
	buf, err := Append(nil, 1, g)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(buf[4:]); err != nil {
			b.Fatal(err)
		}
	}
}
