package wire

import (
	"math/rand"
	"testing"
)

// The decoder must never panic or over-allocate on adversarial input —
// live nodes read frames from the network.
func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		rng.Read(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on %x: %v", buf, r)
				}
			}()
			_, _, _ = Decode(buf)
		}()
	}
}

// Mutating valid frames must never panic either (bit flips in transit are
// caught by TCP checksums in practice, but a hostile peer can send
// anything).
func TestDecodeNeverPanicsOnMutatedFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range sampleMessages() {
		frame, err := Append(nil, 3, m)
		if err != nil {
			t.Fatal(err)
		}
		payload := frame[4:]
		for trial := 0; trial < 200; trial++ {
			mut := append([]byte(nil), payload...)
			for flips := 1 + rng.Intn(4); flips > 0; flips-- {
				mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%T: Decode panicked on mutation %x: %v", m, mut, r)
					}
				}()
				_, _, _ = Decode(mut)
			}()
		}
	}
}

func FuzzDecode(f *testing.F) {
	for _, m := range sampleMessages() {
		frame, err := Append(nil, 1, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		_, _, _ = Decode(payload) // must not panic
	})
}
