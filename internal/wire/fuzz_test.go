package wire

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
)

// TestWriteFuzzCorpus regenerates the committed fuzz corpus from
// sampleMessages when WIRE_SEED_WRITE=1, keeping testdata/fuzz/FuzzDecode
// in lockstep with the message set (one seed per sample, index-named).
// Without the env var it verifies every sample has a committed seed.
func TestWriteFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	msgs := sampleMessages()
	if os.Getenv("WIRE_SEED_WRITE") == "1" {
		old, err := filepath.Glob(filepath.Join(dir, "seed-*"))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range old {
			os.Remove(f)
		}
		for i, m := range msgs {
			frame, err := Append(nil, 1, m)
			if err != nil {
				t.Fatal(err)
			}
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(frame[4:])) + ")"
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d-%d", i, i+1))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	for i := range msgs {
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d-%d", i, i+1))
		if _, err := os.Stat(name); err != nil {
			t.Fatalf("missing committed fuzz seed for sample %d (%T): %v\nrun WIRE_SEED_WRITE=1 go test ./internal/wire -run TestWriteFuzzCorpus", i, msgs[i], err)
		}
	}
}

// The decoder must never panic or over-allocate on adversarial input —
// live nodes read frames from the network.
func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5000; trial++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		rng.Read(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Decode panicked on %x: %v", buf, r)
				}
			}()
			_, _, _ = Decode(buf)
		}()
	}
}

// Mutating valid frames must never panic either (bit flips in transit are
// caught by TCP checksums in practice, but a hostile peer can send
// anything).
func TestDecodeNeverPanicsOnMutatedFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range sampleMessages() {
		frame, err := Append(nil, 3, m)
		if err != nil {
			t.Fatal(err)
		}
		payload := frame[4:]
		for trial := 0; trial < 200; trial++ {
			mut := append([]byte(nil), payload...)
			for flips := 1 + rng.Intn(4); flips > 0; flips-- {
				mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%T: Decode panicked on mutation %x: %v", m, mut, r)
					}
				}()
				_, _, _ = Decode(mut)
			}()
		}
	}
}

// FuzzDecode checks two properties on arbitrary payloads: the decoder
// never panics, and any payload it accepts re-encodes and re-decodes to
// the identical message — the codec is canonical for its own output, so
// schema drift between the sim structs and the wire format (e.g. a field
// encoded but not decoded, or vice versa) is caught. The in-code seeds
// plus the committed corpus under testdata/fuzz/FuzzDecode cover every
// message kind including the incarnation and obituary fields; run
//
//	go test -fuzz=FuzzDecode ./internal/wire
//
// for an open-ended exploration.
func FuzzDecode(f *testing.F) {
	for _, m := range sampleMessages() {
		frame, err := Append(nil, 1, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	// Hostile shapes: empty, unknown kind, absurd element count.
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0xFF})
	f.Add([]byte{1, 0, 0, 0, 10, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, payload []byte) {
		from, m, err := Decode(payload)
		if err != nil {
			return
		}
		frame, err := Append(nil, from, m)
		if err != nil {
			t.Fatalf("decoded %T does not re-encode: %v", m, err)
		}
		from2, m2, err := Decode(frame[4:])
		if err != nil {
			t.Fatalf("re-encoded %T does not decode: %v", m, err)
		}
		if from2 != from || !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip not canonical:\n in: %d %#v\nout: %d %#v", from, m, from2, m2)
		}
	})
}
