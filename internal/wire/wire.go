// Package wire serializes GoCast protocol messages for the live transport
// (internal/live). Frames are length-prefixed:
//
//	uint32  payload length (not counting this prefix)
//	int32   sender node ID
//	uint8   message kind
//	...     kind-specific fields, little-endian
//
// Strings carry a uint16 length; slices a uint16 count. The format is
// symmetric and fully covered by round-trip tests against the in-memory
// message structs used by the simulator, so simulated and live deployments
// run byte-compatible protocols.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"gocast/internal/core"
	"gocast/internal/store"
)

// MaxFrame bounds a frame's payload, protecting receivers from bogus
// length prefixes.
const MaxFrame = 1 << 22 // 4 MiB

var (
	// ErrFrameTooLarge reports a length prefix above MaxFrame.
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	// ErrTruncated reports a frame shorter than its fields require.
	ErrTruncated = errors.New("wire: truncated frame")
)

// Append serializes one message (with its sender) onto buf and returns
// the extended slice, frame prefix included.
func Append(buf []byte, from core.NodeID, m core.Message) ([]byte, error) {
	start := len(buf)
	// Grow once up front: WireSize is the protocol's own size model, so a
	// frame encoding into a fresh or tight buffer reallocates at most one
	// time instead of log(frame) times through append.
	if need := m.WireSize() + 16; cap(buf)-start < need {
		grown := make([]byte, start, start+need)
		copy(grown, buf)
		buf = grown
	}
	buf = append(buf, 0, 0, 0, 0) // length placeholder
	var e encoder
	e.buf = buf
	e.i32(int32(from))
	e.u8(uint8(m.Kind()))
	if err := e.message(m); err != nil {
		return buf[:start], err
	}
	payload := len(e.buf) - start - 4
	if payload > MaxFrame {
		return buf[:start], ErrFrameTooLarge
	}
	binary.LittleEndian.PutUint32(e.buf[start:], uint32(payload))
	return e.buf, nil
}

// WriteFrame serializes and writes one framed message.
func WriteFrame(w io.Writer, from core.NodeID, m core.Message) error {
	buf, err := Append(nil, from, m)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one framed message from r.
func ReadFrame(r io.Reader) (core.NodeID, core.Message, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return core.None, nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n > MaxFrame {
		return core.None, nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return core.None, nil, err
	}
	return Decode(payload)
}

// Decode parses a frame payload (without the length prefix).
func Decode(payload []byte) (core.NodeID, core.Message, error) {
	d := decoder{buf: payload}
	from := core.NodeID(d.i32())
	kind := core.MsgKind(d.u8())
	m, err := d.message(kind)
	if err != nil {
		return core.None, nil, err
	}
	if d.err != nil {
		return core.None, nil, d.err
	}
	if d.off != len(d.buf) {
		return core.None, nil, fmt.Errorf("wire: %d trailing bytes", len(d.buf)-d.off)
	}
	return from, m, nil
}

// --- encoding ---

type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8)          { e.buf = append(e.buf, v) }
func (e *encoder) b(v bool)            { e.u8(boolByte(v)) }
func (e *encoder) u16(v uint16)        { e.buf = binary.LittleEndian.AppendUint16(e.buf, v) }
func (e *encoder) u32(v uint32)        { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) i32(v int32)         { e.u32(uint32(v)) }
func (e *encoder) i64(v int64)         { e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(v)) }
func (e *encoder) u64(v uint64)        { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) dur(d time.Duration) { e.i64(int64(d)) }

func (e *encoder) str(s string) error {
	if len(s) > math.MaxUint16 {
		return fmt.Errorf("wire: string too long (%d bytes)", len(s))
	}
	e.u16(uint16(len(s)))
	e.buf = append(e.buf, s...)
	return nil
}

func (e *encoder) bytes(b []byte) error {
	if len(b) > MaxFrame/2 {
		return fmt.Errorf("wire: byte slice too long (%d)", len(b))
	}
	e.u32(uint32(len(b)))
	e.buf = append(e.buf, b...)
	return nil
}

func (e *encoder) entry(en core.Entry) error {
	e.i32(int32(en.ID))
	e.u32(en.Inc)
	if err := e.str(en.Addr); err != nil {
		return err
	}
	if len(en.Landmarks) > math.MaxUint16 {
		return errors.New("wire: landmark vector too long")
	}
	e.u16(uint16(len(en.Landmarks)))
	for _, v := range en.Landmarks {
		e.u16(v)
	}
	return nil
}

func (e *encoder) entries(es []core.Entry) error {
	if len(es) > math.MaxUint16 {
		return errors.New("wire: too many entries")
	}
	e.u16(uint16(len(es)))
	for _, en := range es {
		if err := e.entry(en); err != nil {
			return err
		}
	}
	return nil
}

func (e *encoder) degrees(d core.Degrees) {
	e.u16(uint16(d.Rand))
	e.u16(uint16(d.Near))
	e.dur(d.MaxNearbyRTT)
}

func (e *encoder) msgID(id core.MessageID) {
	e.i32(int32(id.Source))
	e.u32(id.Seq)
}

// hop writes the 10-byte dissemination trace context: flags, hop count,
// origin stamp. All zeros for unsampled messages.
func (e *encoder) hop(h core.Hop) {
	e.b(h.Sampled)
	e.u8(h.Hops)
	e.dur(h.Origin)
}

func (e *encoder) symbolSet(s store.SymbolSet) {
	for _, w := range s {
		e.u64(w)
	}
}

func (e *encoder) symbol(v *core.Symbol) error {
	e.msgID(v.ID)
	e.dur(v.Age)
	e.u16(v.Index)
	e.u16(v.K)
	e.u16(v.N)
	e.u32(v.PayloadLen)
	if err := e.bytes(v.Data); err != nil {
		return err
	}
	e.b(v.ViaTree)
	e.hop(v.Hop)
	return nil
}

func (e *encoder) message(m core.Message) error {
	switch v := m.(type) {
	case *core.JoinRequest:
		return e.entry(v.From)
	case *core.JoinReply:
		if err := e.entries(v.Members); err != nil {
			return err
		}
		if err := e.entries(v.Landmarks); err != nil {
			return err
		}
		e.i32(int32(v.Root))
	case *core.Ping:
		if err := e.entry(v.From); err != nil {
			return err
		}
		e.u32(v.Nonce)
	case *core.Pong:
		if err := e.entry(v.From); err != nil {
			return err
		}
		e.u32(v.Nonce)
		e.degrees(v.Degrees)
	case *core.AddRequest:
		if err := e.entry(v.From); err != nil {
			return err
		}
		e.u8(uint8(v.LinkKind))
		e.dur(v.RTT)
		e.degrees(v.Degrees)
		e.b(v.ForRebalance)
	case *core.AddReply:
		if err := e.entry(v.From); err != nil {
			return err
		}
		e.u8(uint8(v.LinkKind))
		e.b(v.Accepted)
		e.dur(v.RTT)
		e.degrees(v.Degrees)
		e.b(v.ForRebalance)
	case *core.Drop:
		e.degrees(v.Degrees)
		e.b(v.Departing)
	case *core.Rebalance:
		return e.entry(v.Target)
	case *core.RebalanceReply:
		e.i32(int32(v.Target))
		e.b(v.OK)
	case *core.Gossip:
		if len(v.IDs) > math.MaxUint16 {
			return errors.New("wire: too many gossip IDs")
		}
		e.u16(uint16(len(v.IDs)))
		for _, g := range v.IDs {
			e.msgID(g.ID)
			e.dur(g.Age)
			e.hop(g.Hop)
		}
		if err := e.entries(v.Members); err != nil {
			return err
		}
		e.degrees(v.Degrees)
		if len(v.Obits) > math.MaxUint16 {
			return errors.New("wire: too many obituaries")
		}
		e.u16(uint16(len(v.Obits)))
		for _, ob := range v.Obits {
			e.i32(int32(ob.ID))
			e.u32(ob.Inc)
		}
		if len(v.Syms) > math.MaxUint16 {
			return errors.New("wire: too many symbol adverts")
		}
		e.u16(uint16(len(v.Syms)))
		for i := range v.Syms {
			ad := &v.Syms[i]
			e.msgID(ad.ID)
			e.dur(ad.Age)
			e.u16(ad.K)
			e.u16(ad.N)
			e.u32(ad.PayloadLen)
			e.symbolSet(ad.Have)
		}
	case *core.PullRequest:
		if len(v.IDs) > math.MaxUint16 {
			return errors.New("wire: too many pull IDs")
		}
		e.u16(uint16(len(v.IDs)))
		for _, id := range v.IDs {
			e.msgID(id)
		}
	case *core.Multicast:
		e.msgID(v.ID)
		e.dur(v.Age)
		if err := e.bytes(v.Payload); err != nil {
			return err
		}
		e.b(v.ViaTree)
		e.hop(v.Hop)
	case *core.TreeAdvert:
		e.i32(int32(v.Root))
		e.u32(v.Epoch)
		e.u32(v.Wave)
		e.dur(v.Dist)
	case *core.TreeParent:
		e.b(v.On)
	case *core.TreeAdvertReq:
		// No fields.
	case *core.SyncRequest:
		if len(v.Ranges) > math.MaxUint16 {
			return errors.New("wire: too many sync ranges")
		}
		e.u16(uint16(len(v.Ranges)))
		for _, r := range v.Ranges {
			e.i32(r.Source)
			e.u32(r.Low)
			e.u32(r.High)
		}
	case *core.SyncReply:
		if len(v.Items) > math.MaxUint16 {
			return errors.New("wire: too many sync items")
		}
		e.u16(uint16(len(v.Items)))
		for _, it := range v.Items {
			e.msgID(it.ID)
			e.dur(it.Age)
			if err := e.bytes(it.Payload); err != nil {
				return err
			}
			e.hop(it.Hop)
		}
		e.b(v.More)
		if len(v.Syms) > math.MaxUint16 {
			return errors.New("wire: too many sync symbols")
		}
		e.u16(uint16(len(v.Syms)))
		for i := range v.Syms {
			if err := e.symbol(&v.Syms[i]); err != nil {
				return err
			}
		}
	case *core.PullMiss:
		if len(v.IDs) > math.MaxUint16 {
			return errors.New("wire: too many pull-miss IDs")
		}
		e.u16(uint16(len(v.IDs)))
		for _, id := range v.IDs {
			e.msgID(id)
		}
	case *core.Symbol:
		return e.symbol(v)
	case *core.SymbolPull:
		e.msgID(v.ID)
		e.symbolSet(v.Want)
	default:
		return fmt.Errorf("wire: unknown message type %T", m)
	}
	return nil
}

// --- decoding ---

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = ErrTruncated
	}
}

func (d *decoder) u8() uint8 {
	if d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *decoder) b() bool { return d.u8() != 0 }

func (d *decoder) u16() uint16 {
	if d.off+2 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *decoder) i32() int32 { return int32(d.u32()) }

func (d *decoder) i64() int64 {
	if d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return int64(v)
}

func (d *decoder) dur() time.Duration { return time.Duration(d.i64()) }

func (d *decoder) str() string {
	n := int(d.u16())
	if d.off+n > len(d.buf) {
		d.fail()
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if n == 0 {
		return nil
	}
	// Mirror the encoder's cap so every accepted payload re-encodes.
	if n > MaxFrame/2 || d.off+n > len(d.buf) {
		d.fail()
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:])
	d.off += n
	return b
}

func (d *decoder) entry() core.Entry {
	var en core.Entry
	en.ID = core.NodeID(d.i32())
	en.Inc = d.u32()
	en.Addr = d.str()
	n := int(d.u16())
	if n > 0 {
		if d.off+2*n > len(d.buf) {
			d.fail()
			return en
		}
		en.Landmarks = make([]uint16, n)
		for i := range en.Landmarks {
			en.Landmarks[i] = d.u16()
		}
	}
	return en
}

func (d *decoder) entries() []core.Entry {
	n := int(d.u16())
	if n == 0 {
		return nil
	}
	// Each entry needs at least 8 bytes; reject absurd counts early.
	if d.off+8*n > len(d.buf) {
		d.fail()
		return nil
	}
	es := make([]core.Entry, n)
	for i := range es {
		es[i] = d.entry()
	}
	return es
}

func (d *decoder) degrees() core.Degrees {
	var deg core.Degrees
	deg.Rand = int16(d.u16())
	deg.Near = int16(d.u16())
	deg.MaxNearbyRTT = d.dur()
	return deg
}

func (d *decoder) msgID() core.MessageID {
	var id core.MessageID
	id.Source = core.NodeID(d.i32())
	id.Seq = d.u32()
	return id
}

func (d *decoder) hop() core.Hop {
	return core.Hop{Sampled: d.b(), Hops: d.u8(), Origin: d.dur()}
}

func (d *decoder) u64() uint64 {
	if d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *decoder) symbolSet() store.SymbolSet {
	var s store.SymbolSet
	for i := range s {
		s[i] = d.u64()
	}
	return s
}

func (d *decoder) symbol() core.Symbol {
	return core.Symbol{
		ID: d.msgID(), Age: d.dur(), Index: d.u16(),
		K: d.u16(), N: d.u16(), PayloadLen: d.u32(),
		Data: d.bytes(), ViaTree: d.b(), Hop: d.hop(),
	}
}

func (d *decoder) message(kind core.MsgKind) (core.Message, error) {
	switch kind {
	case core.KindJoinRequest:
		return &core.JoinRequest{From: d.entry()}, nil
	case core.KindJoinReply:
		m := &core.JoinReply{}
		m.Members = d.entries()
		m.Landmarks = d.entries()
		m.Root = core.NodeID(d.i32())
		return m, nil
	case core.KindPing:
		return &core.Ping{From: d.entry(), Nonce: d.u32()}, nil
	case core.KindPong:
		return &core.Pong{From: d.entry(), Nonce: d.u32(), Degrees: d.degrees()}, nil
	case core.KindAddRequest:
		return &core.AddRequest{
			From: d.entry(), LinkKind: core.LinkKind(d.u8()), RTT: d.dur(),
			Degrees: d.degrees(), ForRebalance: d.b(),
		}, nil
	case core.KindAddReply:
		return &core.AddReply{
			From: d.entry(), LinkKind: core.LinkKind(d.u8()), Accepted: d.b(),
			RTT: d.dur(), Degrees: d.degrees(), ForRebalance: d.b(),
		}, nil
	case core.KindDrop:
		return &core.Drop{Degrees: d.degrees(), Departing: d.b()}, nil
	case core.KindRebalance:
		return &core.Rebalance{Target: d.entry()}, nil
	case core.KindRebalanceReply:
		return &core.RebalanceReply{Target: core.NodeID(d.i32()), OK: d.b()}, nil
	case core.KindGossip:
		m := &core.Gossip{}
		n := int(d.u16())
		if n > 0 {
			// Each gossip ID is exactly 26 bytes (ID + age + hop context).
			if d.off+26*n > len(d.buf) {
				d.fail()
				return m, d.err
			}
			m.IDs = make([]core.GossipID, n)
			for i := range m.IDs {
				m.IDs[i] = core.GossipID{ID: d.msgID(), Age: d.dur(), Hop: d.hop()}
			}
		}
		m.Members = d.entries()
		m.Degrees = d.degrees()
		if n := int(d.u16()); n > 0 {
			if d.off+8*n > len(d.buf) {
				d.fail()
				return m, d.err
			}
			m.Obits = make([]core.Obituary, n)
			for i := range m.Obits {
				m.Obits[i] = core.Obituary{ID: core.NodeID(d.i32()), Inc: d.u32()}
			}
		}
		// Symbol-advert section (coopcast). Each advert is exactly 56 bytes.
		if n := int(d.u16()); n > 0 {
			if d.off+56*n > len(d.buf) {
				d.fail()
				return m, d.err
			}
			m.Syms = make([]core.SymbolAdvert, n)
			for i := range m.Syms {
				m.Syms[i] = core.SymbolAdvert{
					ID: d.msgID(), Age: d.dur(),
					K: d.u16(), N: d.u16(), PayloadLen: d.u32(),
					Have: d.symbolSet(),
				}
			}
		}
		return m, nil
	case core.KindPullRequest:
		m := &core.PullRequest{}
		n := int(d.u16())
		if n > 0 {
			if d.off+8*n > len(d.buf) {
				d.fail()
				return m, d.err
			}
			m.IDs = make([]core.MessageID, n)
			for i := range m.IDs {
				m.IDs[i] = d.msgID()
			}
		}
		return m, nil
	case core.KindMulticast:
		return &core.Multicast{ID: d.msgID(), Age: d.dur(), Payload: d.bytes(), ViaTree: d.b(), Hop: d.hop()}, nil
	case core.KindTreeAdvert:
		return &core.TreeAdvert{
			Root: core.NodeID(d.i32()), Epoch: d.u32(), Wave: d.u32(), Dist: d.dur(),
		}, nil
	case core.KindTreeParent:
		return &core.TreeParent{On: d.b()}, nil
	case core.KindTreeAdvertReq:
		return &core.TreeAdvertReq{}, nil
	case core.KindSyncRequest:
		m := &core.SyncRequest{}
		n := int(d.u16())
		if n > 0 {
			if d.off+12*n > len(d.buf) {
				d.fail()
				return m, d.err
			}
			m.Ranges = make([]store.SourceRange, n)
			for i := range m.Ranges {
				m.Ranges[i] = store.SourceRange{Source: d.i32(), Low: d.u32(), High: d.u32()}
			}
		}
		return m, nil
	case core.KindSyncReply:
		m := &core.SyncReply{}
		n := int(d.u16())
		if n > 0 {
			// Each item needs at least 30 bytes (ID + age + payload length +
			// hop context).
			if d.off+30*n > len(d.buf) {
				d.fail()
				return m, d.err
			}
			m.Items = make([]core.SyncItem, n)
			for i := range m.Items {
				m.Items[i] = core.SyncItem{ID: d.msgID(), Age: d.dur(), Payload: d.bytes(), Hop: d.hop()}
			}
		}
		m.More = d.b()
		// Symbol section (coopcast). Each symbol needs at least 41 bytes of
		// fixed fields.
		if n := int(d.u16()); n > 0 {
			if d.off+41*n > len(d.buf) {
				d.fail()
				return m, d.err
			}
			m.Syms = make([]core.Symbol, n)
			for i := range m.Syms {
				m.Syms[i] = d.symbol()
			}
		}
		return m, nil
	case core.KindPullMiss:
		m := &core.PullMiss{}
		n := int(d.u16())
		if n > 0 {
			if d.off+8*n > len(d.buf) {
				d.fail()
				return m, d.err
			}
			m.IDs = make([]core.MessageID, n)
			for i := range m.IDs {
				m.IDs[i] = d.msgID()
			}
		}
		return m, nil
	case core.KindSymbol:
		m := d.symbol()
		return &m, nil
	case core.KindSymbolPull:
		return &core.SymbolPull{ID: d.msgID(), Want: d.symbolSet()}, nil
	default:
		return nil, fmt.Errorf("wire: unknown message kind %d", kind)
	}
}

func boolByte(v bool) uint8 {
	if v {
		return 1
	}
	return 0
}
