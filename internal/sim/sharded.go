package sim

import (
	"fmt"
	"time"
)

// ShardGroup coordinates conservative parallel execution of several
// Engines. Each shard engine owns a disjoint set of simulated nodes;
// a separate control engine owns driver events (injection schedules,
// churn, failure timers) that may touch any shard's state. Execution
// alternates between single-threaded control phases at barriers and
// parallel windows in which every shard advances independently.
//
// Safety comes from latency-bounded lookahead: minOut[s] is a lower
// bound on the delay of any event a node in shard s can schedule onto
// another shard. Within a window [T, W) chosen so that
//
//	W <= min(nextControlEvent, min_s(nextEvent_s + minOut[s]))
//
// no shard can generate an event another shard would need to execute
// before W, so shards run the window concurrently without ever seeing
// an event out of timestamp order (the classic Chandy-Misra-Bryant
// bound, with the null-message machinery replaced by a global barrier).
// Cross-shard sends buffered during the window are handed over by the
// drain callback, which the group invokes only at barriers — while all
// shard goroutines are parked — so it may freely touch every shard.
//
// Determinism: barrier placement depends only on event timestamps, and
// each shard processes its own events in (at, key, seq) order. If every
// cross-engine event carries a globally unique canonical key (see
// ScheduleKeyed), results are independent of the shard count and of OS
// scheduling, and identical to a sequential run of the same workload.
type ShardGroup struct {
	control *Engine
	shards  []*Engine
	minOut  []time.Duration
	drain   func()

	work []chan window
	done chan shardDone
}

// window is one parallel work order: run events at <= until, then park
// the clock at advance.
type window struct {
	until   time.Duration
	advance time.Duration
}

type shardDone struct {
	panicked any
}

// NewShardGroup builds a coordinator over control plus one engine per
// shard. minOut[s] must be a positive lower bound on the latency of any
// cross-shard event shard s can generate; a zero bound would make the
// parallel window empty and the loop unable to advance, so it panics.
// drain (may be nil) is called at every barrier to inject buffered
// cross-shard events; it runs single-threaded.
func NewShardGroup(control *Engine, shards []*Engine, minOut []time.Duration, drain func()) *ShardGroup {
	if len(shards) != len(minOut) {
		panic("sim: NewShardGroup shards/minOut length mismatch")
	}
	for s, d := range minOut {
		if d <= 0 {
			panic(fmt.Sprintf("sim: NewShardGroup shard %d has non-positive lookahead %v", s, d))
		}
	}
	g := &ShardGroup{
		control: control,
		shards:  shards,
		minOut:  minOut,
		drain:   drain,
		work:    make([]chan window, len(shards)),
		done:    make(chan shardDone, len(shards)),
	}
	for i := range g.work {
		g.work[i] = make(chan window, 1)
	}
	return g
}

// runWindow dispatches one window to all shards and waits for the
// barrier. Worker panics (a node callback blowing up) are re-raised
// here so they surface on the caller's goroutine like they would in a
// sequential run.
func (g *ShardGroup) runWindow(w window) {
	for i := range g.shards {
		g.work[i] <- w
	}
	var panicked any
	for range g.shards {
		if d := <-g.done; d.panicked != nil {
			panicked = d.panicked
		}
	}
	if panicked != nil {
		panic(panicked)
	}
}

func shardWorker(e *Engine, work <-chan window, done chan<- shardDone) {
	for w := range work {
		func() {
			d := shardDone{}
			defer func() {
				if r := recover(); r != nil {
					d.panicked = r
				}
				done <- d
			}()
			e.Run(w.until)
			e.AdvanceTo(w.advance)
		}()
	}
}

// Run advances the whole group to absolute virtual time target: all
// control events at <= target fire, all shard events at <= target fire,
// and every engine's clock ends parked at target. It is the sharded
// equivalent of Engine.Run(target) and may be called repeatedly to
// continue the same simulation.
func (g *ShardGroup) Run(target time.Duration) {
	for i := range g.shards {
		go shardWorker(g.shards[i], g.work[i], g.done)
	}
	defer func() {
		for i := range g.work {
			close(g.work[i])
		}
		g.work = make([]chan window, len(g.shards))
		for i := range g.work {
			g.work[i] = make(chan window, 1)
		}
	}()

	t := g.control.Now()
	for {
		// Control phase: fire driver events due at the barrier, then let
		// them (and the window before them) hand over cross-shard sends.
		g.control.Run(t)
		if g.drain != nil {
			g.drain()
		}

		// Next barrier: the CMB lookahead bound. Control events run
		// single-threaded, so the next one is a hard ceiling; each shard
		// extends the window by its own outbound latency floor.
		w := target + 1
		if at, ok := g.control.NextAt(); ok && at < w {
			w = at
		}
		for s, e := range g.shards {
			if at, ok := e.NextAt(); ok && at+g.minOut[s] < w {
				w = at + g.minOut[s]
			}
		}
		if w > target {
			break
		}
		// Parallel half-open window [t, w): Run(w-1) fires events with
		// at <= w-1, AdvanceTo(w) parks every clock at the barrier.
		g.runWindow(window{until: w - time.Nanosecond, advance: w})
		if g.drain != nil {
			g.drain()
		}
		t = w
	}

	// Final inclusive pass: no control events remain at <= target and no
	// shard can schedule a cross-shard event at <= target anymore (every
	// pending shard event fires at > target - minOut), so the shards can
	// finish the closed interval concurrently.
	g.runWindow(window{until: target, advance: target})
	if g.drain != nil {
		g.drain()
	}
	g.control.Run(target) // no events left; park the control clock
}
