package sim

import (
	"testing"
	"time"
)

// Cancelling more than half of the queue must trigger compaction: the
// stale diagnostic drops to zero and the cancelled slots leave the queue
// without waiting for their deadlines.
func TestCancelCompactsWhenStaleExceedsHalf(t *testing.T) {
	e := NewEngine(1)
	var timers []Timer
	for i := 0; i < 100; i++ {
		timers = append(timers, e.After(time.Duration(i+1)*time.Second, func() {}))
	}
	// Cancel 50: exactly half, still lazy — queue keeps the stale slots.
	for i := 0; i < 50; i++ {
		if !timers[i].Stop() {
			t.Fatalf("Stop %d failed", i)
		}
	}
	if e.Cancelled() != 50 {
		t.Fatalf("Cancelled() = %d, want 50", e.Cancelled())
	}
	if e.Pending() != 100 {
		t.Fatalf("Pending() = %d, want 100 (lazy cancellation)", e.Pending())
	}
	// One more exceeds half of pending entries: compaction runs.
	if !timers[50].Stop() {
		t.Fatalf("Stop 50 failed")
	}
	if e.Cancelled() != 0 {
		t.Fatalf("Cancelled() = %d after compaction, want 0", e.Cancelled())
	}
	if e.Pending() != 49 {
		t.Fatalf("Pending() = %d after compaction, want 49", e.Pending())
	}
	// The survivors still fire in order and exactly once.
	e.RunAll()
	if e.Executed() != 49 {
		t.Fatalf("executed %d events, want 49", e.Executed())
	}
}

// After compaction the heap must still pop in strict (at, seq) order.
func TestCompactionPreservesOrder(t *testing.T) {
	e := NewEngine(7)
	var got []int
	var timers []Timer
	for i := 0; i < 200; i++ {
		i := i
		d := time.Duration(e.Rand().Intn(50)) * time.Millisecond
		timers = append(timers, e.After(d, func() { got = append(got, i) }))
	}
	for i := 0; i < 200; i += 2 {
		timers[i].Stop() // triggers compaction partway through
	}
	var last time.Duration
	e.After(0, func() {}) // ensure clock checks run from zero
	prev := -1
	e.RunAll()
	_ = last
	_ = prev
	if e.Executed() != 101 {
		t.Fatalf("executed %d, want 101 (100 odd timers + sentinel)", e.Executed())
	}
	for _, v := range got {
		if v%2 == 0 {
			t.Fatalf("cancelled timer %d fired", v)
		}
	}
}

// A churn burst must not pin queue capacity forever: after the burst
// drains, capacity shrinks to within 4x of the live length.
func TestQueueShrinksAfterChurnBurst(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 4096; i++ {
		e.After(time.Duration(i)*time.Millisecond, func() {})
	}
	e.RunAll()
	// Steady trickle: a handful of pending events.
	for i := 0; i < 8; i++ {
		e.After(time.Duration(i+1)*time.Second, func() {})
	}
	if c := cap(e.queue); c > 64 && c > 4*len(e.queue) {
		t.Fatalf("queue cap %d not shrunk for len %d", c, len(e.queue))
	}
}

// A handle kept after its event fired must not cancel an unrelated event
// that reuses the same slab slot (generation check).
func TestStaleHandleCannotCancelRecycledSlot(t *testing.T) {
	e := NewEngine(1)
	tm := e.After(0, func() {})
	e.RunAll()
	// The slot is recycled; the next schedule reuses it.
	fired := false
	e.After(time.Second, func() { fired = true })
	if tm.Stop() {
		t.Fatalf("stale handle Stop returned true")
	}
	e.RunAll()
	if !fired {
		t.Fatalf("stale handle cancelled the slot's new occupant")
	}
}

// Same ABA check through cancellation instead of firing.
func TestStaleHandleAfterCancelAndReuse(t *testing.T) {
	e := NewEngine(1)
	tm := e.After(time.Second, func() {})
	if !tm.Stop() {
		t.Fatalf("first Stop failed")
	}
	e.RunAll() // drains the stale slot, recycles it
	fired := false
	e.After(time.Second, func() { fired = true })
	if tm.Stop() {
		t.Fatalf("double Stop through a recycled slot returned true")
	}
	e.RunAll()
	if !fired {
		t.Fatalf("recycled slot's event was suppressed by a stale handle")
	}
}

// Schedule/Cancel round trips must not allocate once the slab and queue
// have grown to steady-state size.
func TestSteadyStateSchedulingDoesNotAllocate(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	// Warm up the slab and queue.
	for i := 0; i < 128; i++ {
		e.After(time.Duration(i)*time.Millisecond, fn)
	}
	e.RunAll()
	allocs := testing.AllocsPerRun(100, func() {
		tm := e.After(time.Millisecond, fn)
		tm.Stop()
		tm2 := e.After(time.Millisecond, fn)
		_ = tm2
		e.RunAll()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule/cancel/run allocated %.1f per run, want 0", allocs)
	}
}

func TestCancelledDiagnosticDrainsAtPop(t *testing.T) {
	e := NewEngine(1)
	a := e.After(time.Second, func() {})
	e.After(2*time.Second, func() {})
	e.After(3*time.Second, func() {})
	a.Stop()
	if e.Cancelled() != 1 {
		t.Fatalf("Cancelled() = %d, want 1", e.Cancelled())
	}
	e.RunAll()
	if e.Cancelled() != 0 {
		t.Fatalf("Cancelled() = %d after drain, want 0", e.Cancelled())
	}
}

func TestScheduleHandleCancelDirect(t *testing.T) {
	e := NewEngine(1)
	fired := false
	h := e.Schedule(time.Second, func() { fired = true })
	if !e.CancelTimer(uint64(h)) {
		t.Fatalf("CancelTimer failed on live handle")
	}
	if e.CancelTimer(uint64(h)) {
		t.Fatalf("CancelTimer succeeded twice")
	}
	if e.Cancel(0) {
		t.Fatalf("Cancel of zero handle returned true")
	}
	e.RunAll()
	if fired {
		t.Fatalf("cancelled event fired")
	}
}
