// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in scheduling order, so a run
// is fully reproducible given the same seed and the same sequence of
// scheduling calls. All protocol randomness should be drawn from the
// engine's RNG (or RNGs derived from it) to keep runs reproducible.
//
// The scheduler is built for allocation-free steady-state operation:
// event records live in a slab recycled through a free list, the priority
// queue is an index-free 4-ary heap of small value slots (no interface
// boxing, better cache behavior than container/heap's binary heap), and
// timers are generation-checked integer handles, so Schedule/Cancel touch
// no heap memory once the slab and queue have grown to the workload's
// high-water mark. Cancelled timers are discarded lazily: a stopped timer
// keeps its queue slot until it is popped or until cancelled entries
// exceed half of the queue, at which point the queue is compacted in one
// pass.
package sim

import (
	"fmt"
	"math/rand"
	"time"
)

// Handle identifies one scheduled event. The zero Handle is invalid and
// never issued; Cancel on it reports false. A handle encodes the event's
// slab slot and the slot's generation, so a handle kept after its event
// fired (or after Cancel) can never affect a later event that happens to
// reuse the same slot.
type Handle uint64

func makeHandle(idx, gen uint32) Handle { return Handle(uint64(gen)<<32 | uint64(idx)) }

func (h Handle) split() (idx, gen uint32) { return uint32(h), uint32(h >> 32) }

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now     time.Duration
	seq     uint64
	queue   []heapSlot // 4-ary min-heap ordered by (at, seq)
	events  []event    // slab; heapSlot.idx indexes into it
	free    []uint32   // recycled slab slots
	stale   int        // cancelled events still occupying queue slots
	rng     *rand.Rand
	stopped bool

	// Executed counts events that have fired, for diagnostics and tests.
	executed uint64
}

// heapSlot is one priority-queue entry: the event's deadline, its
// canonical ordering key, its scheduling sequence number (FIFO
// tie-break of last resort), and its slab slot.
//
// key exists for sharded execution: events carrying the same (at, key)
// on any engine fire in the same relative order regardless of which
// engine they were scheduled on or in what wall-clock interleaving, so
// a simulation whose events carry globally unique keys produces
// identical results at any shard count. Key 0 is the "unkeyed" class
// (control/driver events); it sorts before all keyed events at the
// same instant and falls back to seq order among itself.
type heapSlot struct {
	at  time.Duration
	key uint64
	seq uint64
	idx uint32
}

// event is one slab record. gen is bumped every time the slot is
// recycled, invalidating outstanding handles. A scheduled event holds its
// callback in fn; cancellation clears fn immediately (releasing the
// closure) and marks the record stale until its queue slot is discarded.
type event struct {
	fn        func()
	gen       uint32
	cancelled bool
}

// NewEngine returns an engine whose clock starts at zero and whose RNG is
// seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's RNG. It must only be used from event callbacks
// (the engine is single-threaded).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Executed returns the number of events that have fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events currently scheduled (including
// cancelled timers whose queue slots have not yet been discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// Cancelled returns the number of cancelled timers still occupying queue
// slots — the queue-bloat diagnostic. It drops to zero whenever the lazy
// compaction runs or the stale slots are popped.
func (e *Engine) Cancelled() int { return e.stale }

// Timer is a handle to a scheduled event; Stop cancels it. Timer is a
// small value: copy it freely and embed it in owner structs. The zero
// Timer is inert (Stop reports false).
type Timer struct {
	e *Engine
	h Handle
}

// Stop cancels the timer. It reports whether the call prevented the event
// from firing (false if the event already fired or was already stopped).
func (t Timer) Stop() bool {
	if t.e == nil {
		return false
	}
	return t.e.Cancel(t.h)
}

// After schedules fn to run d after the current time and returns a Timer
// that can cancel it. Negative d is treated as zero.
func (e *Engine) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// At schedules fn to run at absolute virtual time at. Times in the past are
// clamped to the current time (the event fires after all events already
// scheduled for the current instant).
func (e *Engine) At(at time.Duration, fn func()) Timer {
	return Timer{e: e, h: e.Schedule(at, fn)}
}

// Schedule is the raw scheduling primitive: it queues fn for absolute time
// at (clamped to now) and returns a Handle for Cancel. It allocates
// nothing once the slab and queue have reached the workload's steady-state
// size. Substrate adapters that wrap engine timers in their own handle
// types should use Schedule/Cancel directly to avoid the Timer wrapper.
func (e *Engine) Schedule(at time.Duration, fn func()) Handle {
	return e.ScheduleKeyed(at, 0, fn)
}

// ScheduleKeyed schedules fn with an explicit canonical ordering key.
// Events at the same instant fire in ascending key order (seq breaks
// remaining ties, so key 0 events keep FIFO order among themselves).
// Callers that need results independent of how events were distributed
// across shard engines must give every event a globally unique nonzero
// key; see heapSlot for the ordering contract.
func (e *Engine) ScheduleKeyed(at time.Duration, key uint64, fn func()) Handle {
	if fn == nil {
		panic("sim: nil event callback")
	}
	if at < e.now {
		at = e.now
	}
	var idx uint32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.events = append(e.events, event{gen: 1})
		idx = uint32(len(e.events) - 1)
	}
	ev := &e.events[idx]
	ev.fn = fn
	ev.cancelled = false
	e.push(heapSlot{at: at, key: key, seq: e.seq, idx: idx})
	e.seq++
	return makeHandle(idx, ev.gen)
}

// Cancel stops the event identified by h, reporting whether it prevented
// the callback from firing. The event's queue slot is discarded lazily:
// immediately freed slots would require a heap delete at a random
// position; instead the slot is skipped when popped, and when cancelled
// slots outnumber live ones the whole queue is compacted in one pass.
func (e *Engine) Cancel(h Handle) bool {
	idx, gen := h.split()
	if int(idx) >= len(e.events) {
		return false
	}
	ev := &e.events[idx]
	if ev.gen != gen || ev.cancelled || ev.fn == nil {
		return false
	}
	ev.cancelled = true
	ev.fn = nil // release the closure now, not at pop time
	e.stale++
	if e.stale*2 > len(e.queue) {
		e.compact()
	}
	return true
}

// CancelTimer is Cancel with an untyped handle, letting *Engine satisfy
// handle-canceller interfaces of packages that must not import sim (e.g.
// core.TimerCanceller).
func (e *Engine) CancelTimer(h uint64) bool { return e.Cancel(Handle(h)) }

// recycle returns a slab slot to the free list, invalidating handles.
func (e *Engine) recycle(idx uint32) {
	ev := &e.events[idx]
	ev.fn = nil
	ev.cancelled = false
	ev.gen++
	e.free = append(e.free, idx)
}

// compact rebuilds the queue without the cancelled slots, freeing them.
// It preserves the (at, seq) order relation, so pop order — and therefore
// simulation determinism — is unaffected.
func (e *Engine) compact() {
	kept := e.queue[:0]
	for _, s := range e.queue {
		if e.events[s.idx].cancelled {
			e.recycle(s.idx)
			continue
		}
		kept = append(kept, s)
	}
	e.queue = kept
	e.stale = 0
	// Heapify: sift down from the last internal node.
	for i := (len(e.queue) - 2) / 4; i >= 0; i-- {
		e.siftDown(i)
	}
	e.shrink()
}

// shrink reallocates the queue's backing array when a churn burst has left
// capacity more than 4x the live length, so one spike does not pin memory
// for the rest of a long run.
func (e *Engine) shrink() {
	if c := cap(e.queue); c > 64 && c > 4*len(e.queue) {
		q := make([]heapSlot, len(e.queue), 2*len(e.queue))
		copy(q, e.queue)
		e.queue = q
	}
}

func slotLess(a, b heapSlot) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.key != b.key {
		return a.key < b.key
	}
	return a.seq < b.seq
}

func (e *Engine) push(s heapSlot) {
	e.queue = append(e.queue, s)
	// Sift up.
	i := len(e.queue) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !slotLess(e.queue[i], e.queue[p]) {
			break
		}
		e.queue[i], e.queue[p] = e.queue[p], e.queue[i]
		i = p
	}
}

// popMin removes and returns the queue's minimum slot.
func (e *Engine) popMin() heapSlot {
	q := e.queue
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	e.queue = q[:n]
	if n > 0 {
		e.siftDown(0)
	}
	e.shrink()
	return top
}

func (e *Engine) siftDown(i int) {
	q := e.queue
	n := len(q)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if slotLess(q[c], q[best]) {
				best = c
			}
		}
		if !slotLess(q[best], q[i]) {
			return
		}
		q[i], q[best] = q[best], q[i]
		i = best
	}
}

// next pops slots until it finds a live event, discarding stale ones. It
// returns the slot and the callback, or false when the queue is empty.
// The slab slot is recycled before the callback is returned, so the
// callback may freely schedule new events.
func (e *Engine) next() (heapSlot, func(), bool) {
	for len(e.queue) > 0 {
		s := e.popMin()
		ev := &e.events[s.idx]
		if ev.cancelled {
			e.stale--
			e.recycle(s.idx)
			continue
		}
		fn := ev.fn
		e.recycle(s.idx)
		return s, fn, true
	}
	return heapSlot{}, nil, false
}

// NextAt reports the time of the earliest live pending event. Stale
// (cancelled) slots at the top of the queue are discarded as a side
// effect, so the call is amortized O(1). ok is false when no live
// events are pending.
func (e *Engine) NextAt() (at time.Duration, ok bool) {
	for len(e.queue) > 0 {
		top := e.queue[0]
		if !e.events[top.idx].cancelled {
			return top.at, true
		}
		e.popMin()
		e.stale--
		e.recycle(top.idx)
	}
	return 0, false
}

// AdvanceTo moves the clock forward to t without firing events. It is
// the barrier primitive for sharded execution: after Run(W-1) drains a
// half-open window [T, W), AdvanceTo(W) parks the engine exactly at the
// barrier so the next window starts from W. Calling it with a live
// event pending before t would silently reorder the simulation, so that
// is a panic; t in the past is a no-op.
func (e *Engine) AdvanceTo(t time.Duration) {
	if t <= e.now {
		return
	}
	if at, ok := e.NextAt(); ok && at < t {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) with live event pending at %v", t, at))
	}
	e.now = t
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the queue is empty or the next event
// is strictly after until. The clock is left at the time of the last fired
// event, or advanced to until if no event fired at/after it.
func (e *Engine) Run(until time.Duration) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		// Peek: discard stale slots at the top so a cancelled far-future
		// timer does not mask live events behind the horizon check.
		top := e.queue[0]
		if e.events[top.idx].cancelled {
			e.popMin()
			e.stale--
			e.recycle(top.idx)
			continue
		}
		if top.at > until {
			break
		}
		s, fn, ok := e.next()
		if !ok {
			break
		}
		if s.at < e.now {
			// Cannot happen: heap order plus clamping in Schedule.
			panic(fmt.Sprintf("sim: event at %v in the past (now %v)", s.at, e.now))
		}
		e.now = s.at
		e.executed++
		fn()
	}
	if e.now < until {
		e.now = until
	}
}

// RunAll executes events until the queue is empty. Use with care: recurring
// timers make this non-terminating.
func (e *Engine) RunAll() {
	e.stopped = false
	for !e.stopped {
		s, fn, ok := e.next()
		if !ok {
			return
		}
		e.now = s.at
		e.executed++
		fn()
	}
}

// Step fires the next pending event, if any, and reports whether one fired.
func (e *Engine) Step() bool {
	s, fn, ok := e.next()
	if !ok {
		return false
	}
	e.now = s.at
	e.executed++
	fn()
	return true
}
