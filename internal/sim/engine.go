// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events.
// Events scheduled for the same instant fire in scheduling order, so a run
// is fully reproducible given the same seed and the same sequence of
// scheduling calls. All protocol randomness should be drawn from the
// engine's RNG (or RNGs derived from it) to keep runs reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now     time.Duration
	seq     uint64
	queue   eventHeap
	rng     *rand.Rand
	stopped bool

	// Executed counts events that have fired, for diagnostics and tests.
	executed uint64
}

// NewEngine returns an engine whose clock starts at zero and whose RNG is
// seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's RNG. It must only be used from event callbacks
// (the engine is single-threaded).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Executed returns the number of events that have fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending returns the number of events currently scheduled (including
// cancelled timers that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// Timer is a handle to a scheduled event; Stop cancels it.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the call prevented the event
// from firing (false if the event already fired or was already stopped).
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// After schedules fn to run d after the current time and returns a Timer
// that can cancel it. Negative d is treated as zero.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// At schedules fn to run at absolute virtual time at. Times in the past are
// clamped to the current time (the event fires after all events already
// scheduled for the current instant).
func (e *Engine) At(at time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("sim: nil event callback")
	}
	if at < e.now {
		at = e.now
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return &Timer{ev: ev}
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in order until the queue is empty or the next event
// is strictly after until. The clock is left at the time of the last fired
// event, or advanced to until if no event fired at/after it.
func (e *Engine) Run(until time.Duration) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		ev := e.queue[0]
		if ev.at > until {
			break
		}
		heap.Pop(&e.queue)
		if ev.cancelled {
			continue
		}
		if ev.at < e.now {
			// Cannot happen: heap order plus clamping in At.
			panic(fmt.Sprintf("sim: event at %v in the past (now %v)", ev.at, e.now))
		}
		e.now = ev.at
		ev.fired = true
		e.executed++
		ev.fn()
	}
	if e.now < until {
		e.now = until
	}
}

// RunAll executes events until the queue is empty. Use with care: recurring
// timers make this non-terminating.
func (e *Engine) RunAll() {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fired = true
		e.executed++
		ev.fn()
	}
}

// Step fires the next pending event, if any, and reports whether one fired.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fired = true
		e.executed++
		ev.fn()
		return true
	}
	return false
}

type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
