package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var got []time.Duration
	for _, d := range []time.Duration{30, 10, 20, 10, 0} {
		d := d
		e.After(d*time.Millisecond, func() { got = append(got, e.Now()) })
	}
	e.RunAll()
	want := []time.Duration{0, 10 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineTieBreaksBySchedulingOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(5*time.Millisecond, func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v, want ascending scheduling order", order)
		}
	}
}

func TestEngineRunUntilStopsBeforeLaterEvents(t *testing.T) {
	e := NewEngine(1)
	fired := map[time.Duration]bool{}
	for _, d := range []time.Duration{1, 2, 3} {
		d := d * time.Second
		e.After(d, func() { fired[d] = true })
	}
	e.Run(2 * time.Second)
	if !fired[time.Second] || !fired[2*time.Second] {
		t.Errorf("events at or before the horizon should fire: %v", fired)
	}
	if fired[3*time.Second] {
		t.Errorf("event after the horizon fired early")
	}
	if e.Now() != 2*time.Second {
		t.Errorf("Now() = %v, want clock advanced to horizon 2s", e.Now())
	}
	e.Run(5 * time.Second)
	if !fired[3*time.Second] {
		t.Errorf("resumed run should fire remaining events")
	}
}

func TestEngineRunAdvancesClockToHorizonWithoutEvents(t *testing.T) {
	e := NewEngine(1)
	e.Run(42 * time.Second)
	if e.Now() != 42*time.Second {
		t.Fatalf("Now() = %v, want 42s", e.Now())
	}
}

func TestTimerStopPreventsFiring(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.After(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatalf("first Stop should report true")
	}
	if tm.Stop() {
		t.Fatalf("second Stop should report false")
	}
	e.RunAll()
	if fired {
		t.Fatalf("stopped timer fired")
	}
}

func TestTimerStopAfterFiringReportsFalse(t *testing.T) {
	e := NewEngine(1)
	tm := e.After(0, func() {})
	e.RunAll()
	if tm.Stop() {
		t.Fatalf("Stop after firing should report false")
	}
}

func TestEventsScheduledDuringRunFire(t *testing.T) {
	e := NewEngine(1)
	var seen []time.Duration
	e.After(time.Second, func() {
		e.After(time.Second, func() { seen = append(seen, e.Now()) })
	})
	e.Run(3 * time.Second)
	if len(seen) != 1 || seen[0] != 2*time.Second {
		t.Fatalf("nested event = %v, want fired at 2s", seen)
	}
}

func TestRecurringTimerPattern(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.After(100*time.Millisecond, tick)
		}
	}
	e.After(100*time.Millisecond, tick)
	e.Run(time.Minute)
	if count != 5 {
		t.Fatalf("ticked %d times, want 5", count)
	}
	if e.Now() != time.Minute {
		t.Fatalf("Now() = %v, want 1m", e.Now())
	}
}

func TestNegativeAndPastTimesClampToNow(t *testing.T) {
	e := NewEngine(1)
	e.After(time.Second, func() {
		fired := false
		e.At(0, func() { fired = true }) // in the past: clamp to now
		e.After(-time.Hour, func() {
			if !fired {
				t.Errorf("past-clamped events should fire in scheduling order")
			}
		})
	})
	e.RunAll()
	if e.Executed() != 3 {
		t.Fatalf("executed %d events, want 3", e.Executed())
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 0; i < 10; i++ {
		e.After(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run(time.Second)
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
}

func TestStepFiresExactlyOne(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 0; i < 3; i++ {
		e.After(time.Millisecond, func() { count++ })
	}
	if !e.Step() || count != 1 {
		t.Fatalf("Step fired %d events, want 1", count)
	}
	if !e.Step() || !e.Step() || e.Step() {
		t.Fatalf("Step over-reported pending events")
	}
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []int {
		e := NewEngine(seed)
		var out []int
		for i := 0; i < 100; i++ {
			i := i
			d := time.Duration(e.Rand().Intn(1000)) * time.Millisecond
			e.After(d, func() { out = append(out, i) })
		}
		e.RunAll()
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed runs diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and every scheduled event fires exactly once.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(3)
		var fired []time.Duration
		for _, d := range delays {
			e.After(time.Duration(d)*time.Millisecond, func() { fired = append(fired, e.Now()) })
		}
		e.RunAll()
		if len(fired) != len(delays) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		want := make([]time.Duration, len(delays))
		for i, d := range delays {
			want[i] = time.Duration(d) * time.Millisecond
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset of timers fires exactly the rest.
func TestPropertyCancellation(t *testing.T) {
	f := func(delays []uint16, cancelMask []bool) bool {
		e := NewEngine(5)
		fired := make([]bool, len(delays))
		timers := make([]Timer, len(delays))
		for i, d := range delays {
			i := i
			timers[i] = e.After(time.Duration(d)*time.Millisecond, func() { fired[i] = true })
		}
		cancelled := make([]bool, len(delays))
		for i := range timers {
			if i < len(cancelMask) && cancelMask[i] {
				timers[i].Stop()
				cancelled[i] = true
			}
		}
		e.RunAll()
		for i := range fired {
			if fired[i] == cancelled[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPanicOnNilCallback(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("scheduling a nil callback should panic")
		}
	}()
	NewEngine(1).After(time.Second, nil)
}

func BenchmarkScheduleAndRun(b *testing.B) {
	e := NewEngine(1)
	rng := rand.New(rand.NewSource(42))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(time.Duration(rng.Intn(1000))*time.Microsecond, func() {})
		if i%1024 == 1023 {
			e.RunAll()
		}
	}
	e.RunAll()
}
