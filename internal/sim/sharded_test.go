package sim

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestKeyedOrderingAtSameInstant pins the canonical order contract:
// same-instant events fire in ascending key order regardless of
// scheduling order, key 0 first, and seq breaks ties among equal keys.
func TestKeyedOrderingAtSameInstant(t *testing.T) {
	e := NewEngine(1)
	var got []uint64
	rec := func(k uint64) func() { return func() { got = append(got, k) } }
	at := 5 * time.Millisecond
	e.ScheduleKeyed(at, 30, rec(30))
	e.ScheduleKeyed(at, 10, rec(10))
	e.Schedule(at, rec(0))
	e.ScheduleKeyed(at, 20, rec(20))
	e.ScheduleKeyed(at-time.Millisecond, 99, rec(99))
	e.RunAll()
	want := []uint64{99, 0, 10, 20, 30}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("fire order = %v, want %v", got, want)
	}
}

// TestNextAtSkipsCancelled verifies the barrier peek sees through
// cancelled timers at the head of the queue.
func TestNextAtSkipsCancelled(t *testing.T) {
	e := NewEngine(1)
	h := e.Schedule(time.Millisecond, func() {})
	e.Schedule(5*time.Millisecond, func() {})
	if at, ok := e.NextAt(); !ok || at != time.Millisecond {
		t.Fatalf("NextAt = %v, %v; want 1ms, true", at, ok)
	}
	e.Cancel(h)
	if at, ok := e.NextAt(); !ok || at != 5*time.Millisecond {
		t.Errorf("NextAt after cancel = %v, %v; want 5ms, true", at, ok)
	}
	e.RunAll()
	if _, ok := e.NextAt(); ok {
		t.Error("NextAt on empty queue reported an event")
	}
}

// TestAdvanceTo pins the clock-parking primitive: forward moves the
// clock, backward is a no-op, and jumping over a live event panics
// (that would silently reorder the simulation).
func TestAdvanceTo(t *testing.T) {
	e := NewEngine(1)
	e.AdvanceTo(3 * time.Millisecond)
	if e.Now() != 3*time.Millisecond {
		t.Fatalf("Now = %v after AdvanceTo(3ms)", e.Now())
	}
	e.AdvanceTo(time.Millisecond)
	if e.Now() != 3*time.Millisecond {
		t.Errorf("backward AdvanceTo moved the clock to %v", e.Now())
	}
	e.Schedule(5*time.Millisecond, func() {})
	defer func() {
		if recover() == nil {
			t.Error("AdvanceTo past a live event did not panic")
		}
	}()
	e.AdvanceTo(10 * time.Millisecond)
}

// pingPong wires a two-node ping-pong across engines (or within one):
// each receipt at time t schedules the reply at t+lat on the other
// node's engine via the outbox, which a ShardGroup drains at barriers.
type pingPong struct {
	engines []*Engine
	outbox  [][]func() // [dst] buffered schedules
	log     []string
}

// TestShardGroupMatchesSequential runs the same cross-shard workload on
// one engine and on a two-shard group and demands identical event logs —
// the minimal version of the oracle harness netsim builds on top.
func TestShardGroupMatchesSequential(t *testing.T) {
	const lat = 3 * time.Millisecond
	run := func(shardCount int) []string {
		// The log is shared across shard goroutines (mutex), and the
		// interleaving of same-instant events on different shards is not
		// ordered — the contract is that the timestamped multiset of
		// events matches, so the log is sorted before comparison.
		var logMu sync.Mutex
		var log []string
		engines := make([]*Engine, shardCount)
		for i := range engines {
			engines[i] = NewEngine(int64(i))
		}
		type pending struct {
			at  time.Duration
			key uint64
			dst int
			fn  func()
		}
		// One outbox per sending shard, as in netsim: only the owning
		// shard's goroutine appends during a window, the drain callback
		// moves entries at barriers.
		outbox := make([][]pending, shardCount)
		engOf := func(node int) *Engine { return engines[node%shardCount] }
		var hop func(from, to int, hops int, key uint64) func()
		hop = func(from, to int, hops int, key uint64) func() {
			return func() {
				e := engOf(to)
				logMu.Lock()
				log = append(log, fmt.Sprintf("%d:%d->%d@%v", hops, from, to, e.Now()))
				logMu.Unlock()
				if hops <= 0 {
					return
				}
				at := e.Now() + lat
				nk := key*2 + uint64(to)
				next := hop(to, from, hops-1, nk)
				if engOf(from) == e {
					e.ScheduleKeyed(at, nk, next)
				} else {
					src := to % shardCount
					outbox[src] = append(outbox[src], pending{at: at, key: nk, dst: from % shardCount, fn: next})
				}
			}
		}
		drain := func() {
			for src := range outbox {
				for _, p := range outbox[src] {
					engines[p.dst].ScheduleKeyed(p.at, p.key, p.fn)
				}
				outbox[src] = outbox[src][:0]
			}
		}
		// Two interleaved ping-pong pairs with same-instant events.
		engOf(0).ScheduleKeyed(lat, 1, hop(1, 0, 6, 1))
		engOf(1).ScheduleKeyed(lat, 2, hop(0, 1, 6, 2))
		target := 100 * time.Millisecond
		if shardCount == 1 {
			drainRun := engines[0]
			drainRun.Run(target) // outbox never used: engOf always engines[0]
		} else {
			minOut := make([]time.Duration, shardCount)
			for i := range minOut {
				minOut[i] = lat
			}
			NewShardGroup(NewEngine(9), engines, minOut, drain).Run(target)
		}
		for _, e := range engines {
			if e.Now() != target {
				t.Fatalf("engine clock parked at %v, want %v", e.Now(), target)
			}
		}
		sort.Strings(log)
		return log
	}
	seq := run(1)
	par := run(2)
	if fmt.Sprint(seq) != fmt.Sprint(par) {
		t.Errorf("sharded log diverges\nseq: %v\npar: %v", seq, par)
	}
	if len(seq) == 0 {
		t.Fatal("workload fired no events")
	}
}

// TestShardGroupControlBarriers verifies control events fire exactly at
// their scheduled instants with all shard clocks agreeing (the fence
// invariant the netsim driver relies on).
func TestShardGroupControlBarriers(t *testing.T) {
	control := NewEngine(1)
	shards := []*Engine{NewEngine(2), NewEngine(3)}
	// Busy shards: self-rescheduling timers every 2ms.
	for i, e := range shards {
		var tick func()
		eng := e
		tick = func() { eng.ScheduleKeyed(eng.Now()+2*time.Millisecond, uint64(i+1)<<32|1, tick) }
		e.ScheduleKeyed(2*time.Millisecond, uint64(i+1)<<32|1, tick)
	}
	var fences []string
	for _, at := range []time.Duration{5 * time.Millisecond, 17 * time.Millisecond} {
		a := at
		control.Schedule(a, func() {
			fences = append(fences, fmt.Sprintf("%v/%v/%v/%v", a, control.Now(), shards[0].Now(), shards[1].Now()))
		})
	}
	g := NewShardGroup(control, shards, []time.Duration{time.Millisecond, time.Millisecond}, nil)
	g.Run(30 * time.Millisecond)
	want := "[5ms/5ms/5ms/5ms 17ms/17ms/17ms/17ms]"
	if got := fmt.Sprint(fences); got != want {
		t.Errorf("fence clocks = %v, want %v", got, want)
	}
}

// TestShardGroupPanicPropagates ensures a panicking node callback
// surfaces on the caller's goroutine instead of deadlocking the group.
func TestShardGroupPanicPropagates(t *testing.T) {
	shards := []*Engine{NewEngine(1), NewEngine(2)}
	shards[1].ScheduleKeyed(time.Millisecond, 1, func() { panic("boom") })
	g := NewShardGroup(NewEngine(0), shards, []time.Duration{time.Second, time.Second}, nil)
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want boom", r)
		}
	}()
	g.Run(10 * time.Millisecond)
}
