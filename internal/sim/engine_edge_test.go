package sim

import (
	"testing"
	"time"
)

func TestPendingCountsScheduledEvents(t *testing.T) {
	e := NewEngine(1)
	if e.Pending() != 0 {
		t.Fatalf("fresh engine pending = %d", e.Pending())
	}
	tm := e.After(time.Second, func() {})
	e.After(2*time.Second, func() {})
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	tm.Stop()
	// Cancelled events stay queued until popped.
	e.RunAll()
	if e.Pending() != 0 {
		t.Fatalf("pending after drain = %d", e.Pending())
	}
	if e.Executed() != 1 {
		t.Fatalf("executed = %d, want 1 (cancelled event skipped)", e.Executed())
	}
}

func TestRunAllSkipsCancelled(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	var timers []Timer
	for i := 0; i < 10; i++ {
		timers = append(timers, e.After(time.Duration(i)*time.Millisecond, func() { fired++ }))
	}
	for i := 0; i < 10; i += 2 {
		timers[i].Stop()
	}
	e.RunAll()
	if fired != 5 {
		t.Fatalf("fired = %d, want 5", fired)
	}
}

func TestClockNeverMovesBackward(t *testing.T) {
	e := NewEngine(2)
	var last time.Duration
	for i := 0; i < 50; i++ {
		d := time.Duration(e.Rand().Intn(100)) * time.Millisecond
		e.After(d, func() {
			if e.Now() < last {
				t.Fatalf("clock went backward: %v after %v", e.Now(), last)
			}
			last = e.Now()
			// Nested schedules at time zero delay.
			e.After(0, func() {})
		})
	}
	e.RunAll()
}

func TestStepOnEmptyEngine(t *testing.T) {
	e := NewEngine(1)
	if e.Step() {
		t.Fatalf("Step on empty engine reported an event")
	}
}

func TestZeroTimerStopIsSafe(t *testing.T) {
	var tm Timer
	if tm.Stop() {
		t.Fatalf("zero timer Stop returned true")
	}
}
