package core

import (
	"testing"
	"time"
)

func TestGossipServesAsKeepalive(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NeighborTimeout = 3 * time.Second
	f, a, b := pair(t, cfg)
	f.run(30 * time.Second)
	// Both nodes are idle traffic-wise (no multicasts), yet the periodic
	// gossips must keep the link alive well past the timeout.
	if a.Degree() != 1 || b.Degree() != 1 {
		t.Fatalf("idle link evicted despite gossip keepalives: %d, %d", a.Degree(), b.Degree())
	}
}

func TestGossipHolderDeduplication(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableTree = false
	cfg.PullDelay = 5 * time.Second // keep the pull pending
	f := newFixture(1)
	b := f.addNode(2, cfg)
	b.AddNeighborDirect(Entry{ID: 1}, Nearby, 20*time.Millisecond)
	b.Start()
	id := MessageID{Source: 9, Seq: 1}
	// The same neighbor announces the same ID twice (e.g. after a retry):
	// the holder list must not grow duplicates.
	b.HandleMessage(1, &Gossip{IDs: []GossipID{{ID: id}}})
	b.HandleMessage(1, &Gossip{IDs: []GossipID{{ID: id}}})
	ps := b.pending[pid(id)]
	if ps == nil {
		t.Fatalf("no pending pull created")
	}
	if len(ps.holders) != 1 {
		t.Fatalf("holders = %v, want deduplicated single entry", ps.holders)
	}
	_ = f
}

func TestGossipFromUnknownNodeStillLearnsMembers(t *testing.T) {
	f := newFixture(1)
	a := f.addNode(1, DefaultConfig())
	a.Start()
	// A gossip from a non-neighbor (e.g. a link the peer already dropped)
	// still carries usable membership entries.
	a.HandleMessage(99, &Gossip{Members: []Entry{{ID: 50}, {ID: 51}}})
	if a.MemberCount() < 2 {
		t.Fatalf("members = %d, want entries learned from stray gossip", a.MemberCount())
	}
}

func TestSeedMembers(t *testing.T) {
	f := newFixture(1)
	a := f.addNode(1, DefaultConfig())
	a.SeedMembers([]Entry{{ID: 2}, {ID: 3}, {ID: 1 /* self: ignored */}})
	if a.MemberCount() != 2 {
		t.Fatalf("members = %d, want 2", a.MemberCount())
	}
}

func TestDropFromNonNeighborIgnored(t *testing.T) {
	f := newFixture(1)
	a := f.addNode(1, DefaultConfig())
	a.Start()
	a.HandleMessage(42, &Drop{})
	if a.Stats().LinkDrops != 0 {
		t.Fatalf("drop from a stranger changed link state")
	}
}

func TestPullForUnknownMessageIgnored(t *testing.T) {
	cfg := DefaultConfig()
	f, a, b := pair(t, cfg)
	served := a.Stats().PullsServed
	a.HandleMessage(b.ID(), &PullRequest{IDs: []MessageID{{Source: 77, Seq: 0}}})
	f.run(time.Second)
	if a.Stats().PullsServed != served {
		t.Fatalf("served a message we never had")
	}
}

func TestMulticastToDetachedTreeStillGossips(t *testing.T) {
	// A node with tree enabled but no parent/children (e.g. mid-repair)
	// must still announce the message via gossips so neighbors can pull.
	cfg := DefaultConfig()
	f, a, b := pair(t, cfg)
	// No BecomeRoot anywhere: the tree never forms, both stay detached.
	var got []byte
	b.OnDeliver(func(_ MessageID, p []byte, _ time.Duration) { got = p })
	a.Multicast([]byte("detached"))
	f.run(10 * time.Second)
	if string(got) != "detached" {
		t.Fatalf("message stuck on a detached node: %q", got)
	}
}

func TestRebalanceCountersAndDegrees(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CNear = 0
	f := newFixture(7)
	x := f.addNode(1, cfg)
	for i := NodeID(2); i <= 4; i++ {
		f.addNode(i, cfg)
		f.link(1, i, Random)
	}
	for _, id := range []NodeID{1, 2, 3, 4} {
		f.nodes[id].Start()
	}
	f.run(30 * time.Second)
	if x.RandDegree() > cfg.CRand+1 {
		t.Fatalf("x random degree = %d after rebalancing window", x.RandDegree())
	}
	if x.Stats().Rebalances == 0 && x.RandDegree() > cfg.CRand {
		t.Logf("note: degree reduced without completed rebalance (drops used)")
	}
}

func TestHeardFromPreventsTreeEcho(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaintainPeriod = time.Hour
	f := newFixture(1)
	a := f.addNode(1, cfg)
	b := f.addNode(2, cfg)
	f.link(1, 2, Nearby)
	a.Start()
	b.Start()
	a.BecomeRoot()
	f.run(2 * time.Second)
	before := f.count(2, 1, func(m Message) bool {
		_, ok := m.(*Multicast)
		return ok
	})
	a.Multicast(nil)
	f.run(2 * time.Second)
	after := f.count(2, 1, func(m Message) bool {
		_, ok := m.(*Multicast)
		return ok
	})
	if after != before {
		t.Fatalf("b echoed the payload back to the node it came from")
	}
}
