package core

import (
	"testing"
	"testing/quick"
	"time"
)

func TestLearnEntryBasics(t *testing.T) {
	f := newFixture(1)
	n := f.addNode(1, DefaultConfig())
	n.learnEntry(Entry{ID: 2})
	n.learnEntry(Entry{ID: 3})
	n.learnEntry(Entry{ID: 1}) // self: ignored
	n.learnEntry(Entry{ID: None})
	if n.MemberCount() != 2 {
		t.Fatalf("members = %d, want 2", n.MemberCount())
	}
}

func TestLearnEntryUpgradesLandmarkVector(t *testing.T) {
	f := newFixture(1)
	n := f.addNode(1, DefaultConfig())
	n.learnEntry(Entry{ID: 2})
	n.learnEntry(Entry{ID: 2, Landmarks: []uint16{10, 20}})
	ms := n.Members()
	if len(ms) != 1 || len(ms[0].Landmarks) != 2 {
		t.Fatalf("vector-carrying entry should replace the bare one: %+v", ms)
	}
	// A bare entry must not erase a known vector.
	n.learnEntry(Entry{ID: 2})
	if ms = n.Members(); len(ms[0].Landmarks) != 2 {
		t.Fatalf("bare entry erased the landmark vector")
	}
}

func TestMemberViewBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemberViewSize = 10
	f := newFixture(1)
	n := f.addNode(1, cfg)
	for i := NodeID(2); i < 200; i++ {
		n.learnEntry(Entry{ID: i})
	}
	if got := n.MemberCount(); got > 10 {
		t.Fatalf("view size = %d, want <= 10", got)
	}
}

func TestForgetMember(t *testing.T) {
	f := newFixture(1)
	n := f.addNode(1, DefaultConfig())
	for i := NodeID(2); i <= 5; i++ {
		n.learnEntry(Entry{ID: i})
	}
	n.forgetMember(3)
	n.forgetMember(3) // idempotent
	if n.MemberCount() != 3 {
		t.Fatalf("members = %d, want 3", n.MemberCount())
	}
	for _, e := range n.Members() {
		if e.ID == 3 {
			t.Fatalf("forgotten member still present")
		}
	}
}

func TestSampleMembersExcludesAndIncludesSelf(t *testing.T) {
	f := newFixture(1)
	n := f.addNode(1, DefaultConfig())
	for i := NodeID(2); i <= 8; i++ {
		n.learnEntry(Entry{ID: i})
	}
	s := n.sampleMembers(3, 4)
	if len(s) != 4 { // 3 sampled + self
		t.Fatalf("sample size = %d, want 4 (3 + self)", len(s))
	}
	foundSelf := false
	for _, e := range s {
		if e.ID == 4 {
			t.Fatalf("sample includes excluded node")
		}
		if e.ID == 1 {
			foundSelf = true
		}
	}
	if !foundSelf {
		t.Fatalf("sample must carry the sender's own entry")
	}
	if got := n.sampleMembers(0, None); got != nil {
		t.Fatalf("k=0 should produce nil, got %v", got)
	}
}

func TestRandomMemberFilter(t *testing.T) {
	f := newFixture(1)
	n := f.addNode(1, DefaultConfig())
	for i := NodeID(2); i <= 6; i++ {
		n.learnEntry(Entry{ID: i})
	}
	got := n.randomMember(func(id NodeID) bool { return id == 5 })
	if got != 5 {
		t.Fatalf("randomMember with filter = %d, want 5", got)
	}
	if got := n.randomMember(func(NodeID) bool { return false }); got != None {
		t.Fatalf("impossible filter should return None, got %d", got)
	}
}

func TestNextCandidateRoundRobinSkips(t *testing.T) {
	f := newFixture(1)
	n := f.addNode(1, DefaultConfig())
	for i := NodeID(2); i <= 5; i++ {
		n.learnEntry(Entry{ID: i})
	}
	seen := map[NodeID]int{}
	for i := 0; i < 8; i++ {
		e, ok := n.nextCandidate(func(id NodeID) bool { return id == 3 })
		if !ok {
			t.Fatalf("candidate expected")
		}
		if e.ID == 3 {
			t.Fatalf("skip filter violated")
		}
		seen[e.ID]++
	}
	// Round-robin over {2,4,5}: each seen at least twice in 8 draws.
	for _, id := range []NodeID{2, 4, 5} {
		if seen[id] < 2 {
			t.Fatalf("round robin skipped %d: %v", id, seen)
		}
	}
	if _, ok := n.nextCandidate(func(NodeID) bool { return true }); ok {
		t.Fatalf("all-skipped should report no candidate")
	}
}

func TestEstimateRTTTriangulation(t *testing.T) {
	f := newFixture(1)
	n := f.addNode(1, DefaultConfig())
	n.landVec = []uint16{100, 50, 200}
	// Same vectors: lower bound 0, upper 2*min(a_i) -> small estimate.
	near := n.estimateRTT(Entry{ID: 2, Landmarks: []uint16{100, 50, 200}})
	far := n.estimateRTT(Entry{ID: 3, Landmarks: []uint16{400, 350, 500}})
	if near >= far {
		t.Fatalf("estimate(similar)=%v should be < estimate(distant)=%v", near, far)
	}
	// Triangle bounds: |100-400|=300 lower; 100+400=500 upper -> in range.
	if far < 300*time.Millisecond || far > 500*time.Millisecond {
		t.Fatalf("estimate %v outside triangle bounds [300ms, 500ms]", far)
	}
}

func TestEstimateRTTUnknownSortsLast(t *testing.T) {
	f := newFixture(1)
	n := f.addNode(1, DefaultConfig())
	n.landVec = []uint16{100}
	unknown := n.estimateRTT(Entry{ID: 2})
	known := n.estimateRTT(Entry{ID: 3, Landmarks: []uint16{150}})
	if unknown <= known {
		t.Fatalf("vector-less node should estimate worse than any measured node")
	}
	// Zero (unmeasured) slots are skipped.
	zeroed := n.estimateRTT(Entry{ID: 4, Landmarks: []uint16{0}})
	if zeroed != unknown {
		t.Fatalf("all-zero vector should behave as unknown")
	}
}

func TestBuildEstimatePassOrdersByEstimate(t *testing.T) {
	f := newFixture(1)
	n := f.addNode(1, DefaultConfig())
	n.landVec = []uint16{100}
	n.learnEntry(Entry{ID: 2, Landmarks: []uint16{300}}) // est ~ (200+400)/2
	n.learnEntry(Entry{ID: 3, Landmarks: []uint16{110}}) // est ~ (10+210)/2
	n.learnEntry(Entry{ID: 4, Landmarks: []uint16{180}}) // est ~ (80+280)/2
	n.buildEstimatePass()
	want := []NodeID{3, 4, 2}
	if len(n.estimated) != 3 {
		t.Fatalf("estimate pass size = %d", len(n.estimated))
	}
	for i, id := range want {
		if n.estimated[i] != id {
			t.Fatalf("estimate order = %v, want %v", n.estimated, want)
		}
	}
}

// Property: the triangulated estimate always lies within the triangle
// bounds implied by the vectors.
func TestPropertyEstimateWithinBounds(t *testing.T) {
	f := newFixture(1)
	n := f.addNode(1, DefaultConfig())
	check := func(mine, theirs []uint16) bool {
		if len(mine) == 0 {
			mine = []uint16{1}
		}
		if len(theirs) == 0 {
			theirs = []uint16{1}
		}
		for i := range mine {
			if mine[i] == 0 {
				mine[i] = 1
			}
		}
		for i := range theirs {
			if theirs[i] == 0 {
				theirs[i] = 1
			}
		}
		n.landVec = mine
		est := n.estimateRTT(Entry{ID: 2, Landmarks: theirs})
		m := len(mine)
		if len(theirs) < m {
			m = len(theirs)
		}
		lower, upper := int64(0), int64(1<<62)
		for i := 0; i < m; i++ {
			a, b := int64(mine[i]), int64(theirs[i])
			lo := a - b
			if lo < 0 {
				lo = -lo
			}
			if lo > lower {
				lower = lo
			}
			if a+b < upper {
				upper = a + b
			}
		}
		if upper < lower {
			upper = lower
		}
		ms := int64(est / time.Millisecond)
		return ms >= lower && ms <= upper
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSortNodeIDsAndSetHelpers(t *testing.T) {
	s := []NodeID{5, 1, 4, 1, 9}
	sortNodeIDs(s)
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			t.Fatalf("not sorted: %v", s)
		}
	}
	var ids []NodeID
	addID(&ids, 3)
	addID(&ids, 3)
	addID(&ids, 7)
	if len(ids) != 2 || !containsID(ids, 3) || !containsID(ids, 7) || containsID(ids, 4) {
		t.Fatalf("set helpers wrong: %v", ids)
	}
}
