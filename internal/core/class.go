package core

import "time"

// Message classing for overload protection. Every protocol message falls
// into one of three admission classes, ordered by how much the system is
// willing to sacrifice for it under load. Queues (the live node's mailbox,
// the TCP transport's per-peer frame queues, netsim's admission model) use
// the class to decide what to shed first when they saturate: Background
// sheds first, Repair next, and Critical only at a hard budget — because
// everything a Background or Repair message carries can be recovered later
// by the anti-entropy sync protocol, while Critical traffic (tree
// forwards, membership, failure detection) is what keeps the group
// correct and connected in the first place.

// Class is a message's admission class under overload.
type Class uint8

const (
	// ClassCritical traffic keeps the group correct: tree-forwarded
	// payloads, membership and overlay maintenance, failure detection
	// (gossip summaries double as link keepalives), and tree control.
	// Shed only at a hard memory budget.
	ClassCritical Class = iota
	// ClassRepair traffic recovers recent losses: gossip pulls, pull
	// responses, and pull-miss indications. Shedding it delays recovery
	// (the next gossip or a sync round retries) but loses nothing.
	ClassRepair
	// ClassBackground traffic is bulk catch-up that explicitly paces
	// itself: anti-entropy sync digests and pages. It is the first thing
	// shed; a dropped round is retried on the next sync interval.
	ClassBackground

	// NumClasses is the number of admission classes.
	NumClasses = 3
)

func (c Class) String() string {
	switch c {
	case ClassCritical:
		return "critical"
	case ClassRepair:
		return "repair"
	case ClassBackground:
		return "background"
	default:
		return "unknown"
	}
}

// ClassOf returns a message's admission class. Multicast payloads are
// Critical when pushed along a tree link (the primary dissemination path)
// and Repair when served in response to a pull.
func ClassOf(m Message) Class {
	switch v := m.(type) {
	case *Multicast:
		if v.ViaTree {
			return ClassCritical
		}
		return ClassRepair
	case *Symbol:
		// Same split as Multicast: tree-striped symbols are the primary
		// dissemination path, pulled symbols are loss repair.
		if v.ViaTree {
			return ClassCritical
		}
		return ClassRepair
	case *PullRequest, *PullMiss, *SymbolPull:
		return ClassRepair
	case *SyncRequest, *SyncReply:
		return ClassBackground
	default:
		// Join, ping/pong, add/drop/rebalance, gossip (keepalive +
		// summaries), and tree control all guard liveness.
		return ClassCritical
	}
}

// OverloadLevel is a node's degradation state, driven by queue occupancy
// and budget pressure (see internal/live's governor). The protocol reacts
// to it directly: a Degraded or Shedding node stretches its periodic
// gossip and sync intervals by Config.DegradedIntervalScale so it stops
// amplifying the load it cannot absorb.
type OverloadLevel uint8

const (
	// OverloadHealthy is normal operation.
	OverloadHealthy OverloadLevel = iota
	// OverloadDegraded stretches gossip/sync intervals; everything is
	// still admitted and delivered.
	OverloadDegraded
	// OverloadShedding additionally rejects new local publishes
	// (live.ErrOverloaded) so producers get backpressure instead of
	// silent loss.
	OverloadShedding
)

func (l OverloadLevel) String() string {
	switch l {
	case OverloadHealthy:
		return "healthy"
	case OverloadDegraded:
		return "degraded"
	case OverloadShedding:
		return "shedding"
	default:
		return "unknown"
	}
}

// SetOverload moves the node to the given degradation level. Must be
// called on the node's logical thread. Raising the level takes effect on
// the next periodic tick (timers are not re-armed mid-flight); lowering
// it restores the configured intervals the same way.
func (n *Node) SetOverload(l OverloadLevel) { n.overload = l }

// Overload returns the node's current degradation level.
func (n *Node) Overload() OverloadLevel { return n.overload }

// loadScale returns the multiplier applied to the periodic gossip and
// sync intervals at the node's current degradation level.
func (n *Node) loadScale() time.Duration {
	if n.overload == OverloadHealthy {
		return 1
	}
	return time.Duration(n.cfg.DegradedIntervalScale)
}

// scaledGossipPeriod is the effective gossip period under the current
// degradation level.
func (n *Node) scaledGossipPeriod() time.Duration {
	return n.cfg.GossipPeriod * n.loadScale()
}

// scaledSyncInterval is the effective sync interval under the current
// degradation level.
func (n *Node) scaledSyncInterval() time.Duration {
	return n.cfg.SyncInterval * n.loadScale()
}
