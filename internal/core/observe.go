package core

import (
	"time"

	"gocast/internal/dtrace"
)

// Observer receives protocol telemetry from a node. A nil observer (the
// default) costs a single nil-check per hook, so the discrete-event
// simulator pays nothing; the live runtime installs one that feeds the
// metrics registry and trace ring.
//
// All hooks run on the node's logical thread and must not call back into
// the node.
type Observer interface {
	// ObserveTreeForward records the estimated injection-to-delivery age of
	// a payload that arrived over a tree link.
	ObserveTreeForward(age time.Duration)
	// ObserveGossipRound records the wall time one gossip tick spent
	// building and sending its summary.
	ObserveGossipRound(d time.Duration)
	// ObservePullRTT records the time from sending a PullRequest to the
	// pulled payload landing.
	ObservePullRTT(d time.Duration)
	// ObserveSyncPage records one anti-entropy reply batch: item count and
	// total payload bytes.
	ObserveSyncPage(items int, bytes int64)
	// ObserveTreeRepair records the time the node spent detached from the
	// tree after losing its parent, until it re-attached or took over as
	// root.
	ObserveTreeRepair(d time.Duration)
	// ObserveStoreGC records one store GC sweep: payloads reclaimed,
	// records dropped entirely, and sweep duration.
	ObserveStoreGC(reclaimed, dropped int, d time.Duration)
	// ObserveReassembly records the time a coopcast message spent being
	// reassembled at this node: first symbol received to payload decoded.
	ObserveReassembly(d time.Duration)
	// Event reports one sampled protocol event. The meaning of a and b
	// depends on ev; see the ObsEvent constants. Message IDs are packed
	// with PackMessageID.
	Event(ev ObsEvent, peer NodeID, a, b int64)
}

// ObsEvent classifies protocol events reported via Observer.Event.
type ObsEvent uint8

const (
	// EvSend: a tree push left for peer; a = packed message ID.
	EvSend ObsEvent = iota + 1
	// EvDeliver: a payload was delivered locally; peer is the sender (None
	// for a local injection), a = packed message ID, b = estimated age in
	// nanoseconds.
	EvDeliver
	// EvLinkUp: an overlay link to peer appeared; a = LinkKind, b = RTT ns.
	EvLinkUp
	// EvLinkDown: an overlay link to peer vanished; a = LinkKind, b = RTT ns.
	EvLinkDown
	// EvParent: the tree parent changed to peer (None when detached);
	// a = old parent, b = new parent.
	EvParent
	// EvRoot: the node's view of the tree root changed to peer;
	// a = old root, b = new root.
	EvRoot
	// EvPull: a PullRequest left for peer; a = packed message ID,
	// b = attempt number (0 for the immediate first pull).
	EvPull
)

// PackMessageID packs a MessageID into one int64 for the Event hook.
func PackMessageID(id MessageID) int64 {
	return int64(id.Source)<<32 | int64(id.Seq)
}

// UnpackMessageID reverses PackMessageID.
func UnpackMessageID(v int64) MessageID {
	return MessageID{Source: NodeID(v >> 32), Seq: uint32(v)}
}

// SpanObserver receives causal dissemination trace spans for sampled
// messages (see internal/dtrace and Config.TraceSampleEvery). An
// Observer that also implements SpanObserver is wired up automatically
// by SetObserver; nodes without one still propagate the wire hop
// context so downstream nodes can trace.
//
// ObserveSpan runs on the node's logical thread and must not call back
// into the node.
type SpanObserver interface {
	ObserveSpan(s dtrace.Span)
}

// SetObserver installs (or removes, with nil) the node's observer. Must be
// called on the node's logical thread, normally before Start. If o also
// implements SpanObserver, the node emits dissemination trace spans to it
// for sampled messages.
func (n *Node) SetObserver(o Observer) {
	n.obs = o
	n.spanObs, _ = o.(SpanObserver)
}

// emitSpan records one dissemination trace span. Callers guard with
// n.spanObs != nil; the helper exists so emission sites stay one line.
func (n *Node) emitSpan(kind dtrace.Kind, id MessageID, from NodeID, hops uint8, start, end, age time.Duration, aux int64) {
	n.spanObs.ObserveSpan(dtrace.Span{
		Src:   int32(id.Source),
		Seq:   id.Seq,
		Node:  int32(n.id),
		From:  int32(from),
		Kind:  kind,
		Hops:  hops,
		Start: start,
		End:   end,
		Age:   age,
		Aux:   aux,
	})
}
