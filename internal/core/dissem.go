package core

import (
	"time"

	"gocast/internal/store"
)

// Message dissemination (Section 2.1). Multicast messages propagate
// unconditionally along tree links. In the background every GossipPeriod
// the node sends a summary of recently received message IDs to one overlay
// neighbor chosen round-robin, excluding IDs heard from that neighbor;
// receivers pull missing messages, optionally waiting until the message is
// at least PullDelay old so the tree gets the first chance.
//
// Payload buffering, retention, and reclamation live in the pluggable
// MessageStore (internal/store): this file keeps only the per-neighbor
// gossip bookkeeping and drives the store's stability-based GC — a payload
// becomes reclaimable once every current overlay neighbor has heard of the
// message, with the store's age cap as the fallback for neighbors that
// never acknowledge.

// msgState tracks the gossip bookkeeping of one multicast message at this
// node. The payload itself lives in the MessageStore; this record exists
// exactly as long as the store knows the ID (live or tombstoned), so the
// seen map doubles as the duplicate-suppression index.
type msgState struct {
	receivedAt   time.Duration
	ageAtReceipt time.Duration
	// announcedTo and heardFrom bound the per-neighbor gossip rule: gossip
	// each ID to each neighbor at most once, never back to a node it was
	// heard from.
	announcedTo  []NodeID
	heardFrom    []NodeID
	announceDone bool
}

// pullState tracks a message known only by ID (from gossips).
type pullState struct {
	holders    []NodeID
	learnedAt  time.Duration
	ageAtLearn time.Duration
	next       int
	timer      Timer
	// pullSentAt is when the most recent PullRequest for this ID left,
	// 0 while no pull has been issued yet (observability only).
	pullSentAt time.Duration
}

const reclaimScanPeriod = 5 * time.Second

// sid converts a MessageID to its store key.
func sid(id MessageID) store.ID {
	return store.ID{Source: int32(id.Source), Seq: id.Seq}
}

// mid converts a store key back to a MessageID.
func mid(id store.ID) MessageID {
	return MessageID{Source: NodeID(id.Source), Seq: id.Seq}
}

// NextMessageID returns the ID the next Multicast call will assign,
// letting callers register tracking before the synchronous local delivery.
func (n *Node) NextMessageID() MessageID {
	return MessageID{Source: n.id, Seq: n.nextSeq}
}

// Multicast injects a new message into the system from this node and
// returns its ID. Any node can start a multicast without involving the
// root.
func (n *Node) Multicast(payload []byte) MessageID {
	id := MessageID{Source: n.id, Seq: n.nextSeq}
	n.nextSeq++
	st := &msgState{receivedAt: n.env.Now()}
	n.seen[id] = st
	n.store.Put(sid(id), payload, n.env.Now())
	n.recent = append(n.recent, id)
	n.stats.Injected++
	n.deliverLocal(id, st, payload)
	if n.obs != nil {
		n.obs.Event(EvDeliver, None, PackMessageID(id), 0)
	}
	n.forwardTree(id, st, payload, None)
	return id
}

// deliverLocal invokes the application callback once.
func (n *Node) deliverLocal(id MessageID, st *msgState, payload []byte) {
	n.stats.Delivered++
	if n.deliver != nil {
		n.deliver(id, payload, n.ageOf(st))
	}
}

// ageOf estimates the time since the message was injected at its source.
func (n *Node) ageOf(st *msgState) time.Duration {
	return st.ageAtReceipt + (n.env.Now() - st.receivedAt)
}

// forwardTree pushes the message along all tree links except the one it
// arrived on (and any neighbor already known to have it).
func (n *Node) forwardTree(id MessageID, st *msgState, payload []byte, except NodeID) {
	if !n.cfg.EnableTree {
		return
	}
	for _, t := range n.TreeNeighbors() {
		if t == except || containsID(st.heardFrom, t) {
			continue
		}
		n.stats.TreeForwards++
		if n.obs != nil {
			n.obs.Event(EvSend, t, PackMessageID(id), 0)
		}
		n.env.Send(t, &Multicast{ID: id, Age: n.ageOf(st), Payload: payload, ViaTree: true})
	}
}

// handleMulticast receives a payload, via tree push, pull response, or
// sync recovery.
func (n *Node) handleMulticast(from NodeID, m *Multicast) {
	if st, ok := n.seen[m.ID]; ok {
		// Redundant copy (the 2% case discussed in Section 2.1).
		n.stats.Duplicates++
		addID(&st.heardFrom, from)
		return
	}
	// The age estimate accumulates hop by hop: the sender stamps its own
	// estimate and the receiver adds the link's propagation delay.
	age := m.Age
	if nb := n.neighbors[from]; nb != nil {
		age += n.linkLatency(nb)
	}
	st := &msgState{
		receivedAt:   n.env.Now(),
		ageAtReceipt: age,
		heardFrom:    []NodeID{from},
	}
	n.seen[m.ID] = st
	n.store.Put(sid(m.ID), m.Payload, n.env.Now())
	n.recent = append(n.recent, m.ID)
	n.stats.PayloadsRecv++
	if ps, ok := n.pending[m.ID]; ok {
		if ps.timer != nil {
			ps.timer.Stop()
		}
		if n.obs != nil && ps.pullSentAt > 0 {
			n.obs.ObservePullRTT(n.env.Now() - ps.pullSentAt)
		}
		delete(n.pending, m.ID)
	}
	n.deliverLocal(m.ID, st, m.Payload)
	if n.obs != nil {
		if m.ViaTree {
			n.obs.ObserveTreeForward(n.ageOf(st))
		}
		n.obs.Event(EvDeliver, from, PackMessageID(m.ID), int64(n.ageOf(st)))
	}
	n.forwardTree(m.ID, st, m.Payload, from)
}

// gossipTick re-arms the gossip timer and runs one round, timing it when
// an observer is installed.
func (n *Node) gossipTick() {
	if !n.running {
		return
	}
	n.gossipTimer = n.env.After(n.cfg.GossipPeriod, n.gossipTick)
	if n.obs == nil {
		n.gossipRound()
		return
	}
	start := n.env.Now()
	n.gossipRound()
	n.obs.ObserveGossipRound(n.env.Now() - start)
}

// gossipRound sends the periodic summary to the next neighbor round-robin.
func (n *Node) gossipRound() {
	if len(n.neighborOrder) == 0 {
		return
	}
	if n.gossipIdx >= len(n.neighborOrder) {
		n.gossipIdx = 0
	}
	y := n.neighborOrder[n.gossipIdx]
	n.gossipIdx = (n.gossipIdx + 1) % len(n.neighborOrder)
	nb := n.neighbors[y]
	if nb == nil {
		return
	}
	var ids []GossipID
	for _, id := range n.recent {
		st := n.seen[id]
		if st == nil || st.announceDone {
			continue
		}
		if containsID(st.heardFrom, y) || containsID(st.announcedTo, y) {
			continue
		}
		st.announcedTo = append(st.announcedTo, y)
		ids = append(ids, GossipID{ID: id, Age: n.ageOf(st)})
	}
	n.compactRecent()
	g := &Gossip{
		IDs:     ids,
		Members: n.sampleMembers(n.cfg.MemberSampleSize, y),
		Degrees: n.degrees(),
		Obits:   n.activeObits(),
	}
	n.stats.GossipsSent++
	n.stats.IDsAnnounced += int64(len(ids))
	n.env.Send(y, g)
}

// compactRecent retires messages that have been announced to (or heard
// from) every current neighbor; the store then holds their payload for
// ReclaimAfter (the paper's waiting period b) before reclaiming it — the
// stability-based GC rule.
func (n *Node) compactRecent() {
	out := n.recent[:0]
	for _, id := range n.recent {
		st := n.seen[id]
		if st == nil {
			continue
		}
		covered := true
		for _, y := range n.neighborOrder {
			if !containsID(st.heardFrom, y) && !containsID(st.announcedTo, y) {
				covered = false
				break
			}
		}
		if covered {
			st.announceDone = true
			n.store.MarkStable(sid(id), n.env.Now())
			continue
		}
		out = append(out, id)
	}
	n.recent = out
}

// reannounceTo reconciles dissemination state when a new neighbor appears.
// A neighbor can only be (re)added when it is not currently linked, so any
// announcement sent to it earlier went over a link that has since broken
// and may never have arrived: for messages still in flight (not yet
// retired) both the announcedTo mark and the heardFrom mark are scrubbed,
// so the next gossip to that peer announces them once more (heardFrom also
// records served pulls whose response may have died with the link; a
// redundant re-announcement is deduplicated by the receiver).
//
// Messages already retired (fully announced and handed to the store's
// stability GC) are NOT re-opened: re-announcing the whole buffer on every
// link change costs O(buffer) gossip per link, where a watermark digest
// exchange costs O(sources). The new link — which may be a healed
// partition — instead triggers a sync round, rate-limited per peer so
// routine overlay adaptation does not turn every link change into a
// digest exchange.
func (n *Node) reannounceTo(peer NodeID) {
	for _, id := range n.recent {
		st := n.seen[id]
		if st == nil || st.announceDone {
			continue
		}
		if containsID(st.announcedTo, peer) {
			n.stats.Reannounced++
		}
		removeID(&st.announcedTo, peer)
		removeID(&st.heardFrom, peer)
	}
	n.requestSync(peer, false)
}

// handleGossip ingests a summary from neighbor `from`.
func (n *Node) handleGossip(from NodeID, g *Gossip) {
	n.stats.GossipsRecv++
	if nb := n.neighbors[from]; nb != nil {
		nb.deg = g.Degrees
		nb.degKnown = true
	}
	for _, ob := range g.Obits {
		if ob.ID == n.id {
			// Rumor of our own death: refute it by bumping our incarnation
			// (SWIM-style), so our next entries supersede the obituary.
			if ob.Inc >= n.self.Inc {
				n.self.Inc = ob.Inc + 1
				n.stats.SelfRefutes++
			}
			continue
		}
		n.recordObit(ob.ID, ob.Inc, true)
	}
	for _, e := range g.Members {
		n.learnEntry(e)
	}
	var linkLat time.Duration
	if nb := n.neighbors[from]; nb != nil {
		linkLat = n.linkLatency(nb)
	}
	var pullNow []MessageID
	for _, gid := range g.IDs {
		if st, ok := n.seen[gid.ID]; ok {
			addID(&st.heardFrom, from)
			continue
		}
		if ps, ok := n.pending[gid.ID]; ok {
			addID(&ps.holders, from)
			continue
		}
		age := gid.Age + linkLat
		ps := &pullState{
			holders:    []NodeID{from},
			learnedAt:  n.env.Now(),
			ageAtLearn: age,
		}
		n.pending[gid.ID] = ps
		// Give the tree PullDelay (f) since injection before pulling.
		wait := n.cfg.PullDelay - age
		if wait <= 0 {
			pullNow = append(pullNow, gid.ID)
			ps.next = 1 // first holder about to be asked
			ps.pullSentAt = n.env.Now()
			if n.obs != nil {
				n.obs.Event(EvPull, from, PackMessageID(gid.ID), 0)
			}
			ps.timer = n.startPullRetry(gid.ID)
			continue
		}
		id := gid.ID
		ps.timer = n.env.After(wait, func() { n.firePull(id) })
	}
	if len(pullNow) > 0 {
		n.stats.PullsSent++
		n.env.Send(from, &PullRequest{IDs: pullNow})
	}
}

// firePull requests a message from the next known holder.
func (n *Node) firePull(id MessageID) {
	ps, ok := n.pending[id]
	if !ok {
		return
	}
	if len(ps.holders) == 0 {
		delete(n.pending, id)
		return
	}
	holder := ps.holders[ps.next%len(ps.holders)]
	attempt := ps.next
	ps.next++
	ps.pullSentAt = n.env.Now()
	n.stats.PullsSent++
	if n.obs != nil {
		n.obs.Event(EvPull, holder, PackMessageID(id), int64(attempt))
	}
	n.env.Send(holder, &PullRequest{IDs: []MessageID{id}})
	ps.timer = n.startPullRetry(id)
}

// startPullRetry arms the retry timer for an outstanding pull.
func (n *Node) startPullRetry(id MessageID) Timer {
	return n.env.After(n.cfg.PullRetry, func() {
		if ps, ok := n.pending[id]; ok {
			n.stats.PullRetries++
			if ps.next > len(ps.holders)+3 {
				// All known holders unresponsive; give up and wait for
				// another gossip to re-announce the ID.
				delete(n.pending, id)
				return
			}
			n.firePull(id)
		}
	})
}

// handlePullRequest serves buffered payloads. IDs whose payload is gone —
// reclaimed, evicted, or never held — are answered with an explicit
// PullMiss so the puller advances immediately instead of waiting out its
// retry timer.
func (n *Node) handlePullRequest(from NodeID, m *PullRequest) {
	var missed []MessageID
	for _, id := range m.IDs {
		payload, ok := n.store.Get(sid(id))
		if !ok {
			missed = append(missed, id)
			continue
		}
		st := n.seen[id]
		if st == nil {
			// The store and seen map are kept in lockstep; a live payload
			// without bookkeeping should not happen, but serve it anyway.
			st = &msgState{receivedAt: n.env.Now()}
			n.seen[id] = st
		}
		addID(&st.heardFrom, from) // requester will have it; never announce back
		n.stats.PullsServed++
		n.env.Send(from, &Multicast{ID: id, Age: n.ageOf(st), Payload: payload, ViaTree: false})
	}
	if len(missed) > 0 {
		n.stats.PullMissesSent += int64(len(missed))
		n.env.Send(from, &PullMiss{IDs: missed})
	}
}

// handlePullMiss reacts to a holder reporting it can no longer serve some
// pulled IDs: drop that holder and retry the next one now, or — when no
// holder remains — give up on pulling and fall back to a digest sync with
// the reporting peer, which can recover the payload if anyone in its
// reach still buffers it.
func (n *Node) handlePullMiss(from NodeID, m *PullMiss) {
	fellBack := false
	for _, id := range m.IDs {
		ps, ok := n.pending[id]
		if !ok {
			continue
		}
		n.stats.PullMissesRecv++
		removeID(&ps.holders, from)
		if ps.timer != nil {
			ps.timer.Stop()
		}
		if len(ps.holders) == 0 {
			delete(n.pending, id)
			fellBack = true
			continue
		}
		n.firePull(id)
	}
	if fellBack {
		n.requestSync(from, true)
	}
}

// reclaimTick drives the store's GC sweep and drops the gossip bookkeeping
// of records the store has forgotten entirely.
func (n *Node) reclaimTick() {
	if !n.running {
		return
	}
	n.reclaimTimer = n.env.After(reclaimScanPeriod, n.reclaimTick)
	var start time.Duration
	if n.obs != nil {
		start = n.env.Now()
	}
	res := n.store.GC(n.env.Now())
	for _, id := range res.Dropped {
		delete(n.seen, mid(id))
	}
	if n.obs != nil {
		n.obs.ObserveStoreGC(len(res.Reclaimed), len(res.Dropped), n.env.Now()-start)
	}
}

// Seen reports whether the node has received (or injected) the message.
func (n *Node) Seen(id MessageID) bool {
	_, ok := n.seen[id]
	return ok
}

// Store exposes the node's message store for inspection (stats surfacing,
// tests). Treat it as read-only outside the node's own thread discipline.
func (n *Node) Store() store.MessageStore { return n.store }

// containsID reports membership in a small NodeID slice.
func containsID(s []NodeID, id NodeID) bool {
	for _, v := range s {
		if v == id {
			return true
		}
	}
	return false
}

// addID appends id if absent.
func addID(s *[]NodeID, id NodeID) {
	if !containsID(*s, id) {
		*s = append(*s, id)
	}
}

// removeID deletes id from the slice if present.
func removeID(s *[]NodeID, id NodeID) {
	for i, v := range *s {
		if v == id {
			*s = append((*s)[:i], (*s)[i+1:]...)
			return
		}
	}
}
