package core

import (
	"math/bits"
	"time"

	"gocast/internal/dtrace"
	"gocast/internal/store"
)

// Message dissemination (Section 2.1). Multicast messages propagate
// unconditionally along tree links. In the background every GossipPeriod
// the node sends a summary of recently received message IDs to one overlay
// neighbor chosen round-robin, excluding IDs heard from that neighbor;
// receivers pull missing messages, optionally waiting until the message is
// at least PullDelay old so the tree gets the first chance.
//
// Payload buffering, retention, and reclamation live in the pluggable
// MessageStore (internal/store): this file keeps only the per-neighbor
// gossip bookkeeping and drives the store's stability-based GC — a payload
// becomes reclaimable once every current overlay neighbor has heard of the
// message, with the store's age cap as the fallback for neighbors that
// never acknowledge.

// msgState tracks the gossip bookkeeping of one multicast message at this
// node. The payload itself lives in the MessageStore; this record exists
// exactly as long as the store knows the ID (live or tombstoned), so the
// seen map doubles as the duplicate-suppression index.
type msgState struct {
	receivedAt   time.Duration
	ageAtReceipt time.Duration
	// announcedMask and heardMask bound the per-neighbor gossip rule
	// (gossip each ID to each neighbor at most once, never back to a node
	// it was heard from) as bitmasks over the node's neighbor-slot table:
	// bit s set means this ID was announced to / heard from the holder of
	// slot s. Degree is bounded at C+1 ≈ 6–7, so a uint64 is ample; peers
	// without a slot (non-neighbors) are simply not recorded, which is
	// equivalent — a re-added neighbor's marks are scrubbed either way
	// (see reannounceTo), and non-neighbors are never consulted.
	announcedMask uint64
	heardMask     uint64
	announceDone  bool
	// sym, when non-nil, marks a coopcast message assembled from
	// erasure-coded symbols (see coopcast.go). For these, heardMask means
	// "peer known able to reconstruct" (advertised >= K symbols), not
	// "peer holds the payload".
	sym *symState
	// traced marks a message sampled for dissemination tracing; hops and
	// origin mirror the incoming hop context (both zero at the origin).
	// Outgoing copies are re-stamped via hopOf.
	traced bool
	hops   uint8
	origin time.Duration
}

// adoptHop installs an incoming sampled hop context on a fresh message
// record so outgoing copies and trace spans carry the right depth. One
// branch for the unsampled majority.
func (st *msgState) adoptHop(h Hop) {
	if h.Sampled {
		st.traced = true
		st.hops = h.Hops
		st.origin = h.Origin
	}
}

// pullState tracks a message known only by ID (from gossips).
type pullState struct {
	holders    []NodeID
	learnedAt  time.Duration
	ageAtLearn time.Duration
	next       int
	timer      Timer
	// pullSentAt is when the most recent PullRequest for this ID left,
	// 0 while no pull has been issued yet (observability only).
	pullSentAt time.Duration
	// hop is the trace context from the gossip advert that opened this
	// pull, so pull-path spans know the message is sampled.
	hop Hop
}

// invalidSlot marks a neighbor holding no bitmask slot (only possible
// past 64 concurrent slot holders).
const invalidSlot = 0xFF

// slotBit returns the bitmask bit of peer's neighbor slot, or 0 when peer
// is not a current neighbor (OR-ing 0 into a mask is a no-op, matching
// the old slices' irrelevant bookkeeping for non-neighbors).
func (n *Node) slotBit(peer NodeID) uint64 {
	nb := n.neighbors[peer]
	if nb == nil || nb.slot == invalidSlot {
		return 0
	}
	return 1 << nb.slot
}

// allocSlot assigns a bitmask slot to a new neighbor: its parked slot
// from a previous link if one is retired, else a free slot.
func (n *Node) allocSlot(peer NodeID) uint8 {
	if s, ok := n.retiredSlots[peer]; ok {
		delete(n.retiredSlots, peer)
		return s
	}
	if n.slotUsed == ^uint64(0) {
		n.scrubRetiredSlots()
	}
	if n.slotUsed == ^uint64(0) {
		return invalidSlot
	}
	s := uint8(bits.TrailingZeros64(^n.slotUsed))
	n.slotUsed |= 1 << s
	return s
}

// retireSlot parks a removed neighbor's slot WITHOUT clearing its bits,
// so a later re-add still sees what was announced to that peer — the same
// information the old per-message NodeID slices retained across link
// breaks (it feeds the Reannounced accounting in reannounceTo).
func (n *Node) retireSlot(peer NodeID, slot uint8) {
	if slot == invalidSlot {
		return
	}
	n.retiredSlots[peer] = slot
}

// scrubRetiredSlots clears every retired slot's bits from the in-flight
// messages and frees the slots. Needed only when all 64 slots are taken,
// which bounded degree makes rare.
func (n *Node) scrubRetiredSlots() {
	if len(n.retiredSlots) == 0 {
		return
	}
	var mask uint64
	for _, s := range n.retiredSlots {
		mask |= 1 << s
	}
	for _, id := range n.recent {
		if st := n.seen[pid(id)]; st != nil {
			st.announcedMask &^= mask
			st.heardMask &^= mask
		}
	}
	n.slotUsed &^= mask
	for k := range n.retiredSlots {
		delete(n.retiredSlots, k)
	}
}

// getMsgState takes a zeroed record from the free list (or allocates).
func (n *Node) getMsgState() *msgState {
	if k := len(n.msgFree) - 1; k >= 0 {
		st := n.msgFree[k]
		n.msgFree = n.msgFree[:k]
		*st = msgState{}
		return st
	}
	return &msgState{}
}

// putMsgState returns a record whose ID left the seen map.
func (n *Node) putMsgState(st *msgState) { n.msgFree = append(n.msgFree, st) }

// getPullState takes a reset record from the free list, keeping the
// holders slice's capacity.
func (n *Node) getPullState() *pullState {
	if k := len(n.pullFree) - 1; k >= 0 {
		ps := n.pullFree[k]
		n.pullFree = n.pullFree[:k]
		h := ps.holders[:0]
		*ps = pullState{holders: h}
		return ps
	}
	return &pullState{}
}

// putPullState recycles a record removed from the pending map. Armed
// retry closures capture the MessageID, never the record, so a late
// firing after recycling finds nothing in pending and is inert.
func (n *Node) putPullState(ps *pullState) { n.pullFree = append(n.pullFree, ps) }

// newGossip, newMulticast, and newPullRequest take wire structs from the
// env's pool when it has one (the simulator recycles them after
// delivery); otherwise they allocate. After env.Send the struct belongs
// to the substrate and must not be touched again.
func (n *Node) newGossip() *Gossip {
	if n.pool != nil {
		return n.pool.GetGossip()
	}
	return &Gossip{}
}

func (n *Node) newMulticast(id MessageID, age time.Duration, payload []byte, viaTree bool, hop Hop) *Multicast {
	if n.pool != nil {
		m := n.pool.GetMulticast()
		m.ID, m.Age, m.Payload, m.ViaTree, m.Hop = id, age, payload, viaTree, hop
		return m
	}
	return &Multicast{ID: id, Age: age, Payload: payload, ViaTree: viaTree, Hop: hop}
}

// hopOf builds the outgoing trace hop context for a buffered message:
// all zeros (one branch) unless the message is sampled, in which case
// outgoing copies carry this node's arrival depth plus one.
func (n *Node) hopOf(st *msgState) Hop {
	if st == nil || !st.traced {
		return Hop{}
	}
	return Hop{Sampled: true, Hops: st.hops + 1, Origin: st.origin}
}

func (n *Node) newPullRequest() *PullRequest {
	if n.pool != nil {
		return n.pool.GetPullRequest()
	}
	return &PullRequest{}
}

const reclaimScanPeriod = 5 * time.Second

// pid packs a MessageID into the uint64 key of the seen and pending
// maps. Struct-keyed Go maps hash through the generic layout; a uint64
// key takes the runtime's fast64 path, which is measurably cheaper at
// millions of lookups per simulated second (the per-gossip-ID dedupe
// check is the single hottest map access in the simulator).
func pid(id MessageID) uint64 { return uint64(uint32(id.Source))<<32 | uint64(id.Seq) }

// sid converts a MessageID to its store key.
func sid(id MessageID) store.ID {
	return store.ID{Source: int32(id.Source), Seq: id.Seq}
}

// mid converts a store key back to a MessageID.
func mid(id store.ID) MessageID {
	return MessageID{Source: NodeID(id.Source), Seq: id.Seq}
}

// NextMessageID returns the ID the next Multicast call will assign,
// letting callers register tracking before the synchronous local delivery.
func (n *Node) NextMessageID() MessageID {
	return MessageID{Source: n.id, Seq: n.nextSeq}
}

// Multicast injects a new message into the system from this node and
// returns its ID. Any node can start a multicast without involving the
// root.
func (n *Node) Multicast(payload []byte) MessageID {
	if n.cfg.CoopcastThreshold > 0 && len(payload) >= n.cfg.CoopcastThreshold {
		if id, ok := n.multicastCoopcast(payload); ok {
			return id
		}
	}
	id := MessageID{Source: n.id, Seq: n.nextSeq}
	n.nextSeq++
	st := n.getMsgState()
	st.receivedAt = n.env.Now()
	n.seen[pid(id)] = st
	if n.cfg.TraceSampleEvery > 0 && id.Seq%uint32(n.cfg.TraceSampleEvery) == 0 {
		st.traced = true
		st.origin = n.env.Now()
		if n.spanObs != nil {
			n.emitSpan(dtrace.KindInject, id, None, 0, st.origin, st.origin, 0, 0)
		}
	}
	n.store.Put(sid(id), payload, n.env.Now())
	n.recent = append(n.recent, id)
	n.stats.Injected++
	n.deliverLocal(id, st, payload)
	if n.obs != nil {
		n.obs.Event(EvDeliver, None, PackMessageID(id), 0)
	}
	n.forwardTree(id, st, payload, None)
	return id
}

// deliverLocal invokes the application callback once.
func (n *Node) deliverLocal(id MessageID, st *msgState, payload []byte) {
	n.stats.Delivered++
	if n.deliver != nil {
		n.deliver(id, payload, n.ageOf(st))
	}
}

// ageOf estimates the time since the message was injected at its source.
func (n *Node) ageOf(st *msgState) time.Duration {
	return st.ageAtReceipt + (n.env.Now() - st.receivedAt)
}

// forwardTree pushes the message along all tree links except the one it
// arrived on (and any neighbor already known to have it).
func (n *Node) forwardTree(id MessageID, st *msgState, payload []byte, except NodeID) {
	if !n.cfg.EnableTree {
		return
	}
	hop := n.hopOf(st)
	for _, t := range n.TreeNeighbors() {
		if t == except || st.heardMask&n.slotBit(t) != 0 {
			continue
		}
		n.stats.TreeForwards++
		if n.obs != nil {
			n.obs.Event(EvSend, t, PackMessageID(id), 0)
		}
		n.env.Send(t, n.newMulticast(id, n.ageOf(st), payload, true, hop))
	}
}

// handleMulticast receives a payload via tree push or pull response.
func (n *Node) handleMulticast(from NodeID, m *Multicast) {
	n.receiveMulticast(from, m, false)
}

// receiveMulticast is the shared receive path for whole-payload
// multicasts: tree pushes and pull responses arrive through
// handleMulticast, sync catch-up items through handleSyncReply with
// viaSync set — the distinction only matters for trace attribution.
func (n *Node) receiveMulticast(from NodeID, m *Multicast, viaSync bool) {
	if st, ok := n.seen[pid(m.ID)]; ok {
		// Redundant copy (the 2% case discussed in Section 2.1).
		n.stats.Duplicates++
		st.heardMask |= n.slotBit(from)
		return
	}
	// The age estimate accumulates hop by hop: the sender stamps its own
	// estimate and the receiver adds the link's propagation delay.
	age := m.Age
	if nb := n.neighbors[from]; nb != nil {
		age += n.linkLatency(nb)
	}
	st := n.getMsgState()
	st.receivedAt = n.env.Now()
	st.ageAtReceipt = age
	st.heardMask = n.slotBit(from)
	st.adoptHop(m.Hop)
	n.seen[pid(m.ID)] = st
	n.store.Put(sid(m.ID), m.Payload, n.env.Now())
	n.recent = append(n.recent, m.ID)
	n.stats.PayloadsRecv++
	// pulledAt survives the pullState's recycling so the pull-delivery
	// span can report the request→reply RTT.
	var pulledAt time.Duration
	if ps, ok := n.pending[pid(m.ID)]; ok {
		ps.timer.Stop()
		pulledAt = ps.pullSentAt
		if n.obs != nil && ps.pullSentAt > 0 {
			n.obs.ObservePullRTT(n.env.Now() - ps.pullSentAt)
		}
		delete(n.pending, pid(m.ID))
		n.putPullState(ps)
	}
	n.deliverLocal(m.ID, st, m.Payload)
	if n.obs != nil {
		if m.ViaTree {
			n.obs.ObserveTreeForward(n.ageOf(st))
		}
		n.obs.Event(EvDeliver, from, PackMessageID(m.ID), int64(n.ageOf(st)))
	}
	if st.traced && n.spanObs != nil {
		now := n.env.Now()
		switch {
		case viaSync:
			n.emitSpan(dtrace.KindSyncDeliver, m.ID, from, m.Hop.Hops, now, now, n.ageOf(st), 0)
		case m.ViaTree:
			n.emitSpan(dtrace.KindTreeDeliver, m.ID, from, m.Hop.Hops, now, now, n.ageOf(st), 0)
		default:
			start := now
			if pulledAt > 0 {
				start = pulledAt
			}
			n.emitSpan(dtrace.KindPullDeliver, m.ID, from, m.Hop.Hops, start, now, n.ageOf(st), 0)
		}
	}
	n.forwardTree(m.ID, st, m.Payload, from)
}

// gossipTick re-arms the gossip timer and runs one round, timing it when
// an observer is installed.
func (n *Node) gossipTick() {
	if !n.running {
		return
	}
	n.gossipTimer = n.env.After(n.scaledGossipPeriod(), n.tickGossip)
	if n.obs == nil {
		n.gossipRound()
		return
	}
	start := n.env.Now()
	n.gossipRound()
	n.obs.ObserveGossipRound(n.env.Now() - start)
}

// gossipRound sends the periodic summary to the next neighbor round-robin.
func (n *Node) gossipRound() {
	if len(n.neighborOrder) == 0 {
		return
	}
	if n.gossipIdx >= len(n.neighborOrder) {
		n.gossipIdx = 0
	}
	y := n.neighborOrder[n.gossipIdx]
	n.gossipIdx = (n.gossipIdx + 1) % len(n.neighborOrder)
	nb := n.neighbors[y]
	if nb == nil {
		return
	}
	g := n.newGossip()
	var bit uint64
	if nb.slot != invalidSlot {
		bit = 1 << nb.slot
	}
	for _, id := range n.recent {
		st := n.seen[pid(id)]
		if st == nil || st.announceDone {
			continue
		}
		if st.sym != nil {
			// Coopcast: advertise the symbol bitmap instead of a bare ID.
			// Incomplete assemblies re-advertise every round (the bitmap
			// grows and neighbors pull against it); complete ones announce
			// once per neighbor like a whole message.
			if st.sym.failed || st.heardMask&bit != 0 {
				continue
			}
			if st.sym.complete {
				if st.announcedMask&bit != 0 {
					continue
				}
				st.announcedMask |= bit
			}
			g.Syms = append(g.Syms, SymbolAdvert{
				ID: id, Age: n.ageOf(st),
				K: st.sym.k, N: st.sym.total, PayloadLen: st.sym.payloadLen,
				Have: st.sym.have,
			})
			continue
		}
		if (st.heardMask|st.announcedMask)&bit != 0 {
			continue
		}
		st.announcedMask |= bit
		g.IDs = append(g.IDs, GossipID{ID: id, Age: n.ageOf(st), Hop: n.hopOf(st)})
	}
	n.compactRecent()
	g.Members = n.appendSampleMembers(g.Members, n.cfg.MemberSampleSize, y)
	g.Degrees = n.degrees()
	g.Obits = n.appendActiveObits(g.Obits)
	n.stats.GossipsSent++
	n.stats.IDsAnnounced += int64(len(g.IDs) + len(g.Syms))
	n.env.Send(y, g)
}

// compactRecent retires messages that have been announced to (or heard
// from) every current neighbor; the store then holds their payload for
// ReclaimAfter (the paper's waiting period b) before reclaiming it — the
// stability-based GC rule.
func (n *Node) compactRecent() {
	out := n.recent[:0]
	for _, id := range n.recent {
		st := n.seen[pid(id)]
		if st == nil {
			continue
		}
		// An incomplete coopcast assembly is never retired: it keeps
		// advertising (and pulling) until it completes or ages out.
		if st.sym != nil && !st.sym.complete {
			out = append(out, id)
			continue
		}
		// Covered once every current neighbor's slot bit is present in
		// either mask. liveMask is exactly the current neighbors' bits, so
		// stale bits from retired slots cannot count toward coverage.
		if (st.heardMask|st.announcedMask)&n.liveMask == n.liveMask {
			st.announceDone = true
			n.store.MarkStable(sid(id), n.env.Now())
			continue
		}
		out = append(out, id)
	}
	n.recent = out
}

// reannounceTo reconciles dissemination state when a new neighbor appears.
// A neighbor can only be (re)added when it is not currently linked, so any
// announcement sent to it earlier went over a link that has since broken
// and may never have arrived: for messages still in flight (not yet
// retired) both the announcedTo mark and the heardFrom mark are scrubbed,
// so the next gossip to that peer announces them once more (heardFrom also
// records served pulls whose response may have died with the link; a
// redundant re-announcement is deduplicated by the receiver).
//
// Messages already retired (fully announced and handed to the store's
// stability GC) are NOT re-opened: re-announcing the whole buffer on every
// link change costs O(buffer) gossip per link, where a watermark digest
// exchange costs O(sources). The new link — which may be a healed
// partition — instead triggers a sync round, rate-limited per peer so
// routine overlay adaptation does not turn every link change into a
// digest exchange.
func (n *Node) reannounceTo(peer NodeID) {
	if bit := n.slotBit(peer); bit != 0 {
		for _, id := range n.recent {
			st := n.seen[pid(id)]
			if st == nil || st.announceDone {
				continue
			}
			if st.announcedMask&bit != 0 {
				n.stats.Reannounced++
			}
			st.announcedMask &^= bit
			st.heardMask &^= bit
		}
	}
	n.requestSync(peer, false)
}

// handleGossip ingests a summary from neighbor `from`.
func (n *Node) handleGossip(from NodeID, g *Gossip) {
	n.stats.GossipsRecv++
	if nb := n.neighbors[from]; nb != nil {
		nb.deg = g.Degrees
		nb.degKnown = true
	}
	for _, ob := range g.Obits {
		if ob.ID == n.id {
			// Rumor of our own death: refute it by bumping our incarnation
			// (SWIM-style), so our next entries supersede the obituary.
			if ob.Inc >= n.self.Inc {
				n.self.Inc = ob.Inc + 1
				n.stats.SelfRefutes++
			}
			continue
		}
		n.recordObit(ob.ID, ob.Inc, true)
	}
	for _, e := range g.Members {
		n.learnEntry(e)
	}
	var linkLat time.Duration
	if nb := n.neighbors[from]; nb != nil {
		linkLat = n.linkLatency(nb)
	}
	for i := range g.Syms {
		n.handleSymbolAdvert(from, &g.Syms[i], linkLat)
	}
	var pull *PullRequest
	for _, gid := range g.IDs {
		if st, ok := n.seen[pid(gid.ID)]; ok {
			st.heardMask |= n.slotBit(from)
			continue
		}
		if ps, ok := n.pending[pid(gid.ID)]; ok {
			addID(&ps.holders, from)
			continue
		}
		age := gid.Age + linkLat
		ps := n.getPullState()
		ps.holders = append(ps.holders, from)
		ps.learnedAt = n.env.Now()
		ps.ageAtLearn = age
		ps.hop = gid.Hop
		n.pending[pid(gid.ID)] = ps
		if gid.Hop.Sampled && n.spanObs != nil {
			n.emitSpan(dtrace.KindAdvert, gid.ID, from, gid.Hop.Hops, ps.learnedAt, ps.learnedAt, age, 0)
		}
		// Give the tree PullDelay (f) since injection before pulling.
		wait := n.cfg.PullDelay - age
		if wait <= 0 {
			if pull == nil {
				pull = n.newPullRequest()
			}
			pull.IDs = append(pull.IDs, gid.ID)
			ps.next = 1 // first holder about to be asked
			ps.pullSentAt = n.env.Now()
			if n.obs != nil {
				n.obs.Event(EvPull, from, PackMessageID(gid.ID), 0)
			}
			if gid.Hop.Sampled && n.spanObs != nil {
				n.emitSpan(dtrace.KindPull, gid.ID, from, gid.Hop.Hops, ps.learnedAt, ps.pullSentAt, age, 0)
			}
			ps.timer = n.startPullRetry(gid.ID)
			continue
		}
		id := gid.ID
		ps.timer = n.env.After(wait, func() { n.firePull(id) })
	}
	if pull != nil {
		n.stats.PullsSent++
		n.env.Send(from, pull)
	}
}

// firePull requests a message from the next known holder.
func (n *Node) firePull(id MessageID) {
	ps, ok := n.pending[pid(id)]
	if !ok {
		return
	}
	if len(ps.holders) == 0 {
		delete(n.pending, pid(id))
		n.putPullState(ps)
		return
	}
	holder := ps.holders[ps.next%len(ps.holders)]
	attempt := ps.next
	ps.next++
	ps.pullSentAt = n.env.Now()
	n.stats.PullsSent++
	if n.obs != nil {
		n.obs.Event(EvPull, holder, PackMessageID(id), int64(attempt))
	}
	if ps.hop.Sampled && n.spanObs != nil {
		n.emitSpan(dtrace.KindPull, id, holder, ps.hop.Hops, ps.learnedAt, ps.pullSentAt, ps.ageAtLearn, int64(attempt))
	}
	pr := n.newPullRequest()
	pr.IDs = append(pr.IDs, id)
	n.env.Send(holder, pr)
	ps.timer = n.startPullRetry(id)
}

// startPullRetry arms the retry timer for an outstanding pull.
func (n *Node) startPullRetry(id MessageID) Timer {
	return n.env.After(n.cfg.PullRetry, func() {
		if ps, ok := n.pending[pid(id)]; ok {
			n.stats.PullRetries++
			if ps.next > len(ps.holders)+3 {
				// All known holders unresponsive; give up and wait for
				// another gossip to re-announce the ID.
				delete(n.pending, pid(id))
				n.putPullState(ps)
				return
			}
			n.firePull(id)
		}
	})
}

// handlePullRequest serves buffered payloads. IDs whose payload is gone —
// reclaimed, evicted, or never held — are answered with an explicit
// PullMiss so the puller advances immediately instead of waiting out its
// retry timer.
func (n *Node) handlePullRequest(from NodeID, m *PullRequest) {
	var missed []MessageID
	for _, id := range m.IDs {
		payload, ok := n.store.Get(sid(id))
		if !ok {
			missed = append(missed, id)
			continue
		}
		st := n.seen[pid(id)]
		if st == nil {
			// The store and seen map are kept in lockstep; a live payload
			// without bookkeeping should not happen, but serve it anyway.
			st = n.getMsgState()
			st.receivedAt = n.env.Now()
			n.seen[pid(id)] = st
		}
		st.heardMask |= n.slotBit(from) // requester will have it; never announce back
		n.stats.PullsServed++
		n.env.Send(from, n.newMulticast(id, n.ageOf(st), payload, false, n.hopOf(st)))
	}
	if len(missed) > 0 {
		n.stats.PullMissesSent += int64(len(missed))
		n.env.Send(from, &PullMiss{IDs: missed})
	}
}

// handlePullMiss reacts to a holder reporting it can no longer serve some
// pulled IDs: drop that holder and retry the next one now, or — when no
// holder remains — give up on pulling and fall back to a digest sync with
// the reporting peer, which can recover the payload if anyone in its
// reach still buffers it.
func (n *Node) handlePullMiss(from NodeID, m *PullMiss) {
	fellBack := false
	for _, id := range m.IDs {
		ps, ok := n.pending[pid(id)]
		if !ok {
			continue
		}
		n.stats.PullMissesRecv++
		removeID(&ps.holders, from)
		ps.timer.Stop()
		if len(ps.holders) == 0 {
			delete(n.pending, pid(id))
			n.putPullState(ps)
			fellBack = true
			continue
		}
		n.firePull(id)
	}
	if fellBack {
		n.requestSync(from, true)
	}
}

// reclaimTick drives the store's GC sweep and drops the gossip bookkeeping
// of records the store has forgotten entirely.
func (n *Node) reclaimTick() {
	if !n.running {
		return
	}
	n.reclaimTimer = n.env.After(reclaimScanPeriod, n.tickReclaim)
	var start time.Duration
	if n.obs != nil {
		start = n.env.Now()
	}
	res := n.store.GC(n.env.Now())
	for _, id := range res.Reclaimed {
		// A reclaimed coopcast record can no longer accept or serve
		// symbols; stop its pull loop instead of retrying into a tombstone.
		if st := n.seen[pid(mid(id))]; st != nil && st.sym != nil && !st.sym.complete {
			if !st.sym.failed {
				n.assembling--
			}
			st.sym.failed = true
			st.sym.timer.Stop()
		}
	}
	for _, id := range res.Dropped {
		key := pid(mid(id))
		if st := n.seen[key]; st != nil {
			if st.sym != nil {
				st.sym.timer.Stop()
				if !st.sym.complete && !st.sym.failed {
					n.assembling--
				}
			}
			delete(n.seen, key)
			n.putMsgState(st)
		}
	}
	if n.obs != nil {
		n.obs.ObserveStoreGC(len(res.Reclaimed), len(res.Dropped), n.env.Now()-start)
	}
}

// Seen reports whether the node has received (or injected) the message.
func (n *Node) Seen(id MessageID) bool {
	_, ok := n.seen[pid(id)]
	return ok
}

// Store exposes the node's message store for inspection (stats surfacing,
// tests). Treat it as read-only outside the node's own thread discipline.
func (n *Node) Store() store.MessageStore { return n.store }

// containsID reports membership in a small NodeID slice.
func containsID(s []NodeID, id NodeID) bool {
	for _, v := range s {
		if v == id {
			return true
		}
	}
	return false
}

// addID appends id if absent.
func addID(s *[]NodeID, id NodeID) {
	if !containsID(*s, id) {
		*s = append(*s, id)
	}
}

// removeID deletes id from the slice if present.
func removeID(s *[]NodeID, id NodeID) {
	for i, v := range *s {
		if v == id {
			*s = append((*s)[:i], (*s)[i+1:]...)
			return
		}
	}
}
