package core

import "time"

// Overlay maintenance (Section 2.2). Every MaintainPeriod a node runs one
// maintenance cycle: failure detection, the random-neighbor protocol
// (2.2.2), and the proximity-aware neighbor protocol (2.2.3). Neighbor
// additions are asynchronous multi-step operations (ping → evaluate →
// AddRequest → AddReply), tracked in pendingAdd.

// addPurpose distinguishes why an AddRequest was issued.
type addPurpose uint8

const (
	addFillRandom addPurpose = iota + 1
	addNearbyGrow
	addNearbyReplace
	addRebalanceLink
)

type addCtx struct {
	target    Entry
	kind      LinkKind
	purpose   addPurpose
	rtt       time.Duration
	startedAt time.Duration
	// rebalanceFrom is the node that asked us to create this link
	// (operation 1 of 2.2.2); it gets a RebalanceReply when we learn the
	// outcome.
	rebalanceFrom NodeID
}

type rebalanceCtx struct {
	via       NodeID // neighbor Y asked to link to target Z
	target    NodeID // Z
	startedAt time.Duration
}

const opTimeout = 3 * time.Second

// maintainTick is the periodic maintenance cycle.
func (n *Node) maintainTick() {
	if !n.running {
		return
	}
	n.maintainTimer = n.env.After(n.cfg.MaintainPeriod, n.maintainTick)
	if !n.maintenance {
		return
	}
	n.expirePings()
	n.expireOps()
	n.checkNeighborLiveness()
	n.maintainRandom()
	n.maintainNearby()
	n.checkRootLiveness()
}

// expireOps clears stuck add/rebalance operations.
func (n *Node) expireOps() {
	now := n.env.Now()
	var expired []NodeID
	for id, ctx := range n.pendingAdd {
		if now-ctx.startedAt > opTimeout {
			expired = append(expired, id)
		}
	}
	sortNodeIDs(expired)
	for _, id := range expired {
		ctx := n.pendingAdd[id]
		delete(n.pendingAdd, id)
		if ctx.purpose == addRebalanceLink {
			n.env.Send(ctx.rebalanceFrom, &RebalanceReply{Target: id, OK: false})
		}
	}
	if n.rebalance != nil && now-n.rebalance.startedAt > opTimeout {
		n.rebalance = nil
	}
}

// checkNeighborLiveness removes neighbors that have been silent for too
// long; gossips double as keepalives, so a healthy neighbor is heard from
// roughly every degree×GossipPeriod.
func (n *Node) checkNeighborLiveness() {
	now := n.env.Now()
	var dead []NodeID
	for _, id := range n.neighborOrder {
		if nb := n.neighbors[id]; nb != nil && now-nb.lastHeard > n.cfg.NeighborTimeout {
			dead = append(dead, id)
		}
	}
	for _, id := range dead {
		// Quarantine locally so in-flight gossip cannot immediately
		// re-teach us the dead entry; not spread, since silence may be a
		// partition rather than a death.
		n.recordObit(id, n.knownInc(id), false)
		n.removeNeighbor(id, false)
	}
}

// abortOpsWith clears operations that involve a failed peer.
func (n *Node) abortOpsWith(peer NodeID) {
	delete(n.pendingAdd, peer)
	if n.rebalance != nil && (n.rebalance.via == peer || n.rebalance.target == peer) {
		n.rebalance = nil
	}
}

// maintainRandom enforces the random-degree rules of Section 2.2.2:
// converge D_rand to C_rand or C_rand+1.
func (n *Node) maintainRandom() {
	drand := n.degreeOf(Random)
	switch {
	case drand < n.cfg.CRand:
		n.tryFillRandom()
	case drand >= n.cfg.CRand+2:
		n.tryRebalanceRandom()
	case drand == n.cfg.CRand+1:
		// Operation 2: drop the link to a random neighbor that itself has
		// more than C_rand random neighbors, reducing both degrees while
		// keeping both >= C_rand.
		for _, id := range n.neighborOrder {
			nb := n.neighbors[id]
			if nb != nil && nb.kind == Random && nb.degKnown && int(nb.deg.Rand) > n.cfg.CRand {
				n.dropLink(id)
				return
			}
		}
	}
}

// tryFillRandom starts adding one random neighbor.
func (n *Node) tryFillRandom() {
	id := n.randomMember(func(id NodeID) bool {
		_, isNb := n.neighbors[id]
		_, isPending := n.pendingAdd[id]
		return !isNb && !isPending
	})
	if id == None {
		return
	}
	n.sendPing(id, pingCtx{target: id, purpose: pingProbeAddRandom})
}

// resumeAddRandom continues a random add after the probe pong.
func (n *Node) resumeAddRandom(e Entry, rtt time.Duration, deg Degrees) {
	if n.degreeOf(Random) >= n.cfg.CRand {
		return // already fixed meanwhile
	}
	if _, ok := n.neighbors[e.ID]; ok {
		return
	}
	if int(deg.Rand) >= n.cfg.CRand+n.cfg.DegreeSlack {
		return // target too loaded; try another next cycle
	}
	n.requestAdd(e, Random, rtt, addFillRandom, None)
}

// tryRebalanceRandom runs operation 1 of Section 2.2.2: ask random
// neighbor Y to link to random neighbor Z, then drop both links, cutting
// our random degree by two without changing theirs.
func (n *Node) tryRebalanceRandom() {
	if n.rebalance != nil {
		return
	}
	var rands []*neighbor
	for _, id := range n.neighborOrder {
		if nb := n.neighbors[id]; nb != nil && nb.kind == Random {
			rands = append(rands, nb)
		}
	}
	if len(rands) < 2 {
		return
	}
	i := n.env.Rand(len(rands))
	j := n.env.Rand(len(rands) - 1)
	if j >= i {
		j++
	}
	y, z := rands[i], rands[j]
	n.rebalance = &rebalanceCtx{via: y.entry.ID, target: z.entry.ID, startedAt: n.env.Now()}
	n.env.Send(y.entry.ID, &Rebalance{Target: z.entry})
}

// handleRebalance is Y's side of operation 1: establish a random link to
// Target on X's behalf.
func (n *Node) handleRebalance(from NodeID, m *Rebalance) {
	t := m.Target
	if t.ID == n.id || t.ID == None || n.staleSender(t) {
		n.env.Send(from, &RebalanceReply{Target: t.ID, OK: false})
		return
	}
	if _, ok := n.neighbors[t.ID]; ok {
		// Already linked to Z; X can still drop its two links without
		// degree loss for us.
		n.env.Send(from, &RebalanceReply{Target: t.ID, OK: true})
		return
	}
	if _, ok := n.pendingAdd[t.ID]; ok {
		n.env.Send(from, &RebalanceReply{Target: t.ID, OK: false})
		return
	}
	n.learnEntry(t)
	n.requestAddFull(t, Random, n.rtt[t.ID], addRebalanceLink, from)
}

// handleRebalanceReply is X's side: on success drop the links to both Y
// and Z.
func (n *Node) handleRebalanceReply(from NodeID, m *RebalanceReply) {
	rb := n.rebalance
	if rb == nil || rb.via != from || rb.target != m.Target {
		return
	}
	n.rebalance = nil
	if !m.OK {
		return
	}
	if n.degreeOf(Random) < n.cfg.CRand+2 {
		return // degree already fell; keep the links
	}
	if _, ok := n.neighbors[rb.via]; ok {
		n.dropLink(rb.via)
	}
	if _, ok := n.neighbors[rb.target]; ok {
		n.dropLink(rb.target)
	}
	n.stats.Rebalances++
}

// maintainNearby runs the three sub-protocols of Section 2.2.3.
func (n *Node) maintainNearby() {
	if n.cfg.CNear == 0 {
		return
	}
	dnear := n.degreeOf(Nearby)
	if dnear >= n.cfg.CNear+n.cfg.DropTrigger {
		n.dropExcessNearby(dnear)
		return
	}
	if dnear < n.cfg.CNear {
		n.tryAddNearby()
		return
	}
	n.tryReplaceNearby()
}

// dropExcessNearby drops the longest-latency nearby links whose peers are
// not at dangerously low degree (condition C1), down to C_near.
func (n *Node) dropExcessNearby(dnear int) {
	for dnear > n.cfg.CNear {
		victim := n.pickReplaceVictim(None)
		if victim == None {
			return
		}
		n.dropLink(victim)
		dnear--
	}
}

// pickReplaceVictim chooses the nearby neighbor with the longest RTT among
// those satisfying C1 (D_near(U) >= C_near - 1), excluding `exclude`.
func (n *Node) pickReplaceVictim(exclude NodeID) NodeID {
	victim := None
	var worst time.Duration = -1
	for _, id := range n.neighborOrder {
		nb := n.neighbors[id]
		if nb == nil || nb.kind != Nearby || id == exclude {
			continue
		}
		if nb.degKnown && int(nb.deg.Near) < n.cfg.CNear-n.cfg.C1Lower {
			continue // C1: dropping would endanger connectivity
		}
		if nb.rtt > worst {
			worst = nb.rtt
			victim = id
		}
	}
	return victim
}

// tryAddNearby adds at most one nearby neighbor per cycle when below
// target.
func (n *Node) tryAddNearby() {
	cand, ok := n.nextCandidate(func(id NodeID) bool {
		_, isNb := n.neighbors[id]
		_, isPending := n.pendingAdd[id]
		return isNb || isPending
	})
	if !ok {
		return
	}
	if rtt, known := n.rtt[cand.ID]; known {
		n.resumeAddNearby(cand, rtt, Degrees{}) // degrees re-checked by acceptor
		return
	}
	n.sendPing(cand.ID, pingCtx{target: cand.ID, purpose: pingProbeAddNearby})
}

// resumeAddNearby continues a grow-add after the probe pong. The acceptor
// enforces the cap and worst-link conditions; the initiator only avoids
// obviously futile requests.
func (n *Node) resumeAddNearby(e Entry, rtt time.Duration, deg Degrees) {
	if n.degreeOf(Nearby) >= n.cfg.CNear {
		return
	}
	if _, ok := n.neighbors[e.ID]; ok {
		return
	}
	if int(deg.Near) >= n.cfg.CNear+n.cfg.DegreeSlack {
		return // C2 at the candidate
	}
	n.requestAdd(e, Nearby, rtt, addNearbyGrow, None)
}

// tryReplaceNearby performs the replacement sweep: measure the RTT to one
// candidate per cycle and switch to it if conditions C1-C4 hold.
func (n *Node) tryReplaceNearby() {
	if n.hasOutstandingProbe(pingProbeReplace) {
		return
	}
	cand, ok := n.nextCandidate(func(id NodeID) bool {
		_, isNb := n.neighbors[id]
		_, isPending := n.pendingAdd[id]
		return isNb || isPending
	})
	if !ok {
		return
	}
	n.sendPing(cand.ID, pingCtx{target: cand.ID, purpose: pingProbeReplace})
}

func (n *Node) hasOutstandingProbe(p pingPurpose) bool {
	for _, ctx := range n.pings {
		if ctx.purpose == p {
			return true
		}
	}
	return false
}

// resumeReplace evaluates conditions C1-C4 with the freshly measured RTT
// and, if they hold, requests the link to Q; the current worst neighbor U
// is dropped when the add is accepted.
func (n *Node) resumeReplace(q Entry, rtt time.Duration, deg Degrees) {
	if _, ok := n.neighbors[q.ID]; ok {
		return
	}
	// C1: there must be a droppable neighbor U (picked again at accept
	// time, since the neighborhood may change in between).
	u := n.pickReplaceVictim(q.ID)
	if u == None {
		return
	}
	// C2: D_near(Q) < C_near + 5.
	if int(deg.Near) >= n.cfg.CNear+n.cfg.DegreeSlack {
		return
	}
	// C3: if Q is at/above target, the new link must beat Q's worst.
	if int(deg.Near) >= n.cfg.CNear && deg.MaxNearbyRTT > 0 && rtt >= deg.MaxNearbyRTT {
		return
	}
	// C4: Q must be significantly better than U.
	if float64(rtt) > n.cfg.ReplaceRatio*float64(n.neighbors[u].rtt) {
		return
	}
	n.requestAdd(q, Nearby, rtt, addNearbyReplace, None)
}

// requestAdd issues an AddRequest and records the pending operation.
func (n *Node) requestAdd(e Entry, kind LinkKind, rtt time.Duration, purpose addPurpose, rebalanceFrom NodeID) {
	n.requestAddFull(e, kind, rtt, purpose, rebalanceFrom)
}

func (n *Node) requestAddFull(e Entry, kind LinkKind, rtt time.Duration, purpose addPurpose, rebalanceFrom NodeID) {
	n.pendingAdd[e.ID] = &addCtx{
		target:        e,
		kind:          kind,
		purpose:       purpose,
		rtt:           rtt,
		startedAt:     n.env.Now(),
		rebalanceFrom: rebalanceFrom,
	}
	n.stats.AddsSent++
	n.env.Send(e.ID, &AddRequest{
		From:         n.selfEntry(),
		LinkKind:     kind,
		RTT:          rtt,
		Degrees:      n.degrees(),
		ForRebalance: purpose == addRebalanceLink,
	})
}

// handleAddRequest decides whether to accept a new neighbor, enforcing
// the degree caps of Section 2.2.1 and the worst-link condition.
func (n *Node) handleAddRequest(from NodeID, m *AddRequest) {
	if n.staleSender(m.From) {
		// A dead past life must never be linked to: reject outright.
		n.env.Send(from, &AddReply{
			From:         n.selfEntry(),
			LinkKind:     m.LinkKind,
			Accepted:     false,
			RTT:          m.RTT,
			Degrees:      n.degrees(),
			ForRebalance: m.ForRebalance,
		})
		return
	}
	n.learnEntry(m.From)
	accepted := false
	if _, already := n.neighbors[from]; already {
		accepted = true // idempotent: link exists
	} else {
		switch m.LinkKind {
		case Random:
			accepted = n.degreeOf(Random) < n.cfg.CRand+n.cfg.DegreeSlack
		case Nearby:
			dnear := n.degreeOf(Nearby)
			accepted = dnear < n.cfg.CNear+n.cfg.DegreeSlack
			if accepted && dnear >= n.cfg.CNear && m.RTT > 0 {
				// The prospective link must not be worse than the worst
				// nearby link we already maintain.
				if worst := n.maxNearbyRTT(); worst > 0 && m.RTT >= worst {
					accepted = false
				}
			}
		}
		if accepted {
			n.addNeighbor(m.From, m.LinkKind, m.RTT)
			if nb := n.neighbors[from]; nb != nil {
				nb.deg = m.Degrees
				nb.degKnown = true
			}
			n.stats.AddsAccepted++
		} else {
			n.stats.AddsRejected++
		}
	}
	n.env.Send(from, &AddReply{
		From:         n.selfEntry(),
		LinkKind:     m.LinkKind,
		Accepted:     accepted,
		RTT:          m.RTT,
		Degrees:      n.degrees(),
		ForRebalance: m.ForRebalance,
	})
}

// handleAddReply finishes a pending add.
func (n *Node) handleAddReply(from NodeID, m *AddReply) {
	if n.staleSender(m.From) {
		return // a dead past life's acceptance must not install a link
	}
	ctx, ok := n.pendingAdd[from]
	if !ok {
		if m.Accepted {
			// We no longer want this link (op expired); tear it down so
			// the acceptor is not left with a half-open link.
			n.env.Send(from, &Drop{Degrees: n.degrees()})
		}
		return
	}
	delete(n.pendingAdd, from)
	if !m.Accepted {
		if ctx.purpose == addRebalanceLink {
			n.env.Send(ctx.rebalanceFrom, &RebalanceReply{Target: from, OK: false})
		}
		return
	}
	if _, already := n.neighbors[from]; !already {
		n.addNeighbor(m.From, ctx.kind, ctx.rtt)
	}
	if nb := n.neighbors[from]; nb != nil {
		nb.deg = m.Degrees
		nb.degKnown = true
		if nb.rtt == 0 {
			// Link created without a prior measurement (rebalance):
			// measure it now so tree costs and C-conditions have data.
			n.sendPing(from, pingCtx{target: from, purpose: pingMeasureLink})
		}
	}
	switch ctx.purpose {
	case addNearbyReplace:
		if u := n.pickReplaceVictim(from); u != None && n.degreeOf(Nearby) > n.cfg.CNear {
			n.dropLink(u)
		}
	case addRebalanceLink:
		n.env.Send(ctx.rebalanceFrom, &RebalanceReply{Target: from, OK: true})
	}
}

// dropLink removes the link to peer and notifies it.
func (n *Node) dropLink(peer NodeID) {
	if _, ok := n.neighbors[peer]; !ok {
		return
	}
	n.removeNeighbor(peer, true)
}

// handleDrop removes the link at the receiving end. A departing Drop
// (graceful leave) additionally records a spreading obituary so the member
// is quarantined group-wide, not merely unlinked here.
func (n *Node) handleDrop(from NodeID, m *Drop) {
	if m.Departing {
		n.recordObit(from, n.knownInc(from), true)
	}
	if _, ok := n.neighbors[from]; !ok {
		return
	}
	n.removeNeighbor(from, false)
}

// addNeighbor installs an overlay link.
func (n *Node) addNeighbor(e Entry, kind LinkKind, rtt time.Duration) {
	if e.ID == n.id || e.ID == None {
		return
	}
	if _, ok := n.neighbors[e.ID]; ok {
		return
	}
	n.learnEntry(e)
	if rtt == 0 {
		if known := n.rtt[e.ID]; known > 0 {
			rtt = known
		}
	}
	nb := &neighbor{entry: e, kind: kind, rtt: rtt, lastHeard: n.env.Now(), slot: n.allocSlot(e.ID)}
	n.neighbors[e.ID] = nb
	n.degCacheOK = false
	if nb.slot != invalidSlot {
		n.liveMask |= 1 << nb.slot
	}
	n.neighborOrder = append(n.neighborOrder, e.ID)
	n.stats.LinkAdds++
	if n.obs != nil {
		n.obs.Event(EvLinkUp, e.ID, int64(kind), int64(rtt))
	}
	n.reannounceTo(e.ID)
	if n.onLinkChange != nil {
		n.onLinkChange(true, kind, e.ID, rtt)
	}
	n.treeOnLinkUp(e.ID)
}

// removeNeighbor uninstalls an overlay link; if notify is set the peer is
// told to drop its end.
func (n *Node) removeNeighbor(peer NodeID, notify bool) {
	nb, ok := n.neighbors[peer]
	if !ok {
		return
	}
	delete(n.neighbors, peer)
	n.degCacheOK = false
	if nb.slot != invalidSlot {
		n.liveMask &^= 1 << nb.slot
	}
	n.retireSlot(peer, nb.slot)
	for i, v := range n.neighborOrder {
		if v == peer {
			n.neighborOrder = append(n.neighborOrder[:i], n.neighborOrder[i+1:]...)
			if n.gossipIdx > i {
				n.gossipIdx--
			}
			break
		}
	}
	n.stats.LinkDrops++
	if n.obs != nil {
		n.obs.Event(EvLinkDown, peer, int64(nb.kind), int64(nb.rtt))
	}
	if notify {
		n.env.Send(peer, &Drop{Degrees: n.degrees()})
	}
	if n.onLinkChange != nil {
		n.onLinkChange(false, nb.kind, peer, nb.rtt)
	}
	n.treeOnLinkDown(peer)
}

// NeighborInfo is an introspection record of one overlay link.
type NeighborInfo struct {
	ID   NodeID
	Kind LinkKind
	RTT  time.Duration
	// Inc is the peer incarnation the link was established under.
	Inc uint32
}

// Neighbors returns the node's current overlay links in a deterministic
// order (link creation order).
func (n *Node) Neighbors() []NeighborInfo {
	out := make([]NeighborInfo, 0, len(n.neighbors))
	for _, id := range n.neighborOrder {
		if nb := n.neighbors[id]; nb != nil {
			out = append(out, NeighborInfo{ID: id, Kind: nb.kind, RTT: nb.rtt, Inc: nb.entry.Inc})
		}
	}
	return out
}

// sortNodeIDs sorts a small NodeID slice ascending.
func sortNodeIDs(s []NodeID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Degree returns the node's total overlay degree.
func (n *Node) Degree() int { return len(n.neighbors) }

// RandDegree returns the number of random links.
func (n *Node) RandDegree() int { return n.degreeOf(Random) }

// NearDegree returns the number of nearby links.
func (n *Node) NearDegree() int { return n.degreeOf(Nearby) }

// AddNeighborDirect wires an overlay link without the handshake. Both
// endpoints must be wired symmetrically; it is intended for simulation
// bootstrap (the paper initializes each node with C_degree/2 random
// connections) and for tests.
func (n *Node) AddNeighborDirect(e Entry, kind LinkKind, rtt time.Duration) {
	n.addNeighbor(e, kind, rtt)
}
