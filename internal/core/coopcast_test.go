package core

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"gocast/internal/fec"
)

// coopcastConfig returns a config with coopcast enabled at a small
// threshold so tests exercise the symbol path with modest payloads.
func coopcastConfig() Config {
	cfg := DefaultConfig()
	cfg.CoopcastThreshold = 1024
	cfg.FECSymbolSize = 256
	cfg.FECRepair = 2
	return cfg
}

func coopcastPayload(n int, seed int64) []byte {
	p := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(p)
	return p
}

// TestCoopcastTreePushDelivers sends a large payload over one tree link:
// every symbol is striped to the single child, which reassembles and
// delivers the exact payload.
func TestCoopcastTreePushDelivers(t *testing.T) {
	cfg := coopcastConfig()
	f, a, b := pair(t, cfg)
	a.BecomeRoot()
	f.run(2 * time.Second)
	if b.Parent() != a.ID() {
		t.Fatalf("b's parent = %d, want root %d", b.Parent(), a.ID())
	}
	payload := coopcastPayload(8<<10, 1)
	var got []byte
	b.OnDeliver(func(_ MessageID, p []byte, _ time.Duration) { got = append([]byte(nil), p...) })
	a.Multicast(payload)
	f.run(5 * time.Second)
	if got == nil {
		t.Fatalf("payload not delivered")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("delivered payload differs from injected (%d vs %d bytes)", len(got), len(payload))
	}
	if a.Stats().SymbolsSent == 0 || b.Stats().SymbolsRecv == 0 {
		t.Fatalf("no symbol traffic: sent=%d recv=%d", a.Stats().SymbolsSent, b.Stats().SymbolsRecv)
	}
	if b.Stats().FECDecodes != 1 {
		t.Fatalf("FECDecodes = %d, want 1", b.Stats().FECDecodes)
	}
}

// TestCoopcastStripingSplitsLoad checks the striping rule: a root with two
// children sends each symbol down exactly one link, so neither link
// carries the whole message and both children still deliver (filling their
// gaps through gossip adverts and symbol pulls).
func TestCoopcastStripingSplitsLoad(t *testing.T) {
	cfg := coopcastConfig()
	cfg.SyncInterval = -1 // isolate tree stripes + gossip pulls from sync
	f := newFixture(3)
	a := f.addNode(1, cfg)
	b := f.addNode(2, cfg)
	c := f.addNode(3, cfg)
	f.link(1, 2, Nearby)
	f.link(1, 3, Nearby)
	a.Start()
	b.Start()
	c.Start()
	a.BecomeRoot()
	f.run(2 * time.Second)
	if b.Parent() != a.ID() || c.Parent() != a.ID() {
		t.Fatalf("tree not formed: parents %d %d", b.Parent(), c.Parent())
	}
	payload := coopcastPayload(16<<10, 2)
	deliveredB, deliveredC := false, false
	b.OnDeliver(func(_ MessageID, p []byte, _ time.Duration) { deliveredB = bytes.Equal(p, payload) })
	c.OnDeliver(func(_ MessageID, p []byte, _ time.Duration) { deliveredC = bytes.Equal(p, payload) })
	a.Multicast(payload)
	f.run(20 * time.Second)
	if !deliveredB || !deliveredC {
		t.Fatalf("delivery incomplete: b=%v c=%v", deliveredB, deliveredC)
	}
	p := fec.ParamsFor(len(payload), cfg.FECSymbolSize, cfg.FECRepair)
	isStripe := func(m Message) bool { s, ok := m.(*Symbol); return ok && s.ViaTree }
	toB := f.count(1, 2, isStripe)
	toC := f.count(1, 3, isStripe)
	// The source pushes each of the N symbols down exactly one link, so the
	// stripes sum to N and neither link carries the whole message.
	if toB+toC != p.N() {
		t.Fatalf("stripes do not sum to N: a->b %d, a->c %d, N=%d", toB, toC, p.N())
	}
	if toB == 0 || toC == 0 || toB >= p.N() || toC >= p.N() {
		t.Fatalf("striping did not split load: a->b %d, a->c %d, N=%d", toB, toC, p.N())
	}
	if b.Stats().SymbolPullsSent == 0 && c.Stats().SymbolPullsSent == 0 {
		t.Fatalf("no symbol pulls: children should repair their stripe gaps")
	}
}

// TestCoopcastAnyKOfNReassembly feeds a receiver an arbitrary K-subset of
// the N symbols — source and repair mixed, as a lossy link would leave
// them — and requires the exact payload out. This is the symbol-level
// lossy-link property: ANY K of N decode.
func TestCoopcastAnyKOfNReassembly(t *testing.T) {
	cfg := coopcastConfig()
	payload := coopcastPayload(4<<10, 3)
	p := fec.ParamsFor(len(payload), cfg.FECSymbolSize, cfg.FECRepair)
	coder, err := fec.NewRS(p)
	if err != nil {
		t.Fatal(err)
	}
	symbols, err := coder.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		f := newFixture(int64(10 + trial))
		n := f.addNode(1, cfg)
		var got []byte
		n.OnDeliver(func(_ MessageID, pl []byte, _ time.Duration) { got = append([]byte(nil), pl...) })
		n.Start()
		// Drop R random symbols: what survives is an arbitrary K-subset.
		perm := rng.Perm(p.N())
		keep := perm[:p.K]
		id := MessageID{Source: 99, Seq: uint32(trial)}
		for _, i := range keep {
			n.HandleMessage(100, &Symbol{
				ID: id, Index: uint16(i), K: uint16(p.K), N: uint16(p.N()),
				PayloadLen: uint32(len(payload)), Data: symbols[i], ViaTree: true,
			})
		}
		if got == nil {
			t.Fatalf("trial %d: %d-of-%d subset did not decode", trial, p.K, p.N())
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("trial %d: decoded payload differs", trial)
		}
		if s := n.Stats(); s.FECDecodes != 1 || s.SymbolsRecv != int64(p.K) {
			t.Fatalf("trial %d: decodes=%d symbolsRecv=%d", trial, s.FECDecodes, s.SymbolsRecv)
		}
	}
}

// TestCoopcastGossipRepairWithoutTree disables the tree entirely: the only
// path is gossip symbol adverts followed by symbol pulls. The receiver
// must learn the message from an advert, pull every symbol it misses, and
// deliver.
func TestCoopcastGossipRepairWithoutTree(t *testing.T) {
	cfg := coopcastConfig()
	cfg.EnableTree = false
	cfg.SyncInterval = -1 // force recovery through adverts + pulls
	f, a, b := pair(t, cfg)
	payload := coopcastPayload(4<<10, 5)
	var got []byte
	b.OnDeliver(func(_ MessageID, p []byte, _ time.Duration) { got = append([]byte(nil), p...) })
	a.Multicast(payload)
	f.run(15 * time.Second)
	if got == nil {
		t.Fatalf("payload not recovered through advert+pull")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("recovered payload differs")
	}
	if b.Stats().SymbolPullsSent == 0 {
		t.Fatalf("receiver sent no symbol pulls")
	}
	if a.Stats().SymbolsServed == 0 {
		t.Fatalf("source served no symbols")
	}
}

// TestCoopcastRejectsBadSymbols checks the validation path: impossible
// geometry, out-of-range index, and mis-sized data are counted and do not
// corrupt assembly state.
func TestCoopcastRejectsBadSymbols(t *testing.T) {
	f := newFixture(6)
	n := f.addNode(1, coopcastConfig())
	n.Start()
	id := MessageID{Source: 9, Seq: 1}
	// K=0 is impossible.
	n.HandleMessage(100, &Symbol{ID: id, K: 0, N: 4, PayloadLen: 100, Data: make([]byte, 25)})
	// Index beyond N.
	n.HandleMessage(100, &Symbol{ID: id, Index: 9, K: 4, N: 6, PayloadLen: 100, Data: make([]byte, 25)})
	if s := n.Stats(); s.SymbolsRejected != 2 {
		t.Fatalf("SymbolsRejected = %d, want 2", s.SymbolsRejected)
	}
	// Valid first symbol, then a mis-sized one for the same message.
	n.HandleMessage(100, &Symbol{ID: id, Index: 0, K: 4, N: 6, PayloadLen: 100, Data: make([]byte, 25)})
	n.HandleMessage(100, &Symbol{ID: id, Index: 1, K: 4, N: 6, PayloadLen: 100, Data: make([]byte, 7)})
	s := n.Stats()
	if s.SymbolsRecv != 1 || s.SymbolsRejected != 3 {
		t.Fatalf("recv=%d rejected=%d, want 1/3", s.SymbolsRecv, s.SymbolsRejected)
	}
	// A duplicate of the accepted symbol counts as a dup, not a reject.
	n.HandleMessage(100, &Symbol{ID: id, Index: 0, K: 4, N: 6, PayloadLen: 100, Data: make([]byte, 25)})
	if s := n.Stats(); s.SymbolDups != 1 {
		t.Fatalf("SymbolDups = %d, want 1", s.SymbolDups)
	}
}

// TestCoopcastDisabledSendsNoSymbols pins the compatibility guarantee:
// with CoopcastThreshold = 0 (the default) a large payload takes the
// classic whole-message path and no symbol traffic or adverts appear
// anywhere on the wire.
func TestCoopcastDisabledSendsNoSymbols(t *testing.T) {
	cfg := DefaultConfig()
	f, a, b := pair(t, cfg)
	a.BecomeRoot()
	f.run(2 * time.Second)
	payload := coopcastPayload(64<<10, 7)
	delivered := false
	b.OnDeliver(func(_ MessageID, p []byte, _ time.Duration) { delivered = bytes.Equal(p, payload) })
	a.Multicast(payload)
	f.run(5 * time.Second)
	if !delivered {
		t.Fatalf("whole-path delivery failed")
	}
	for _, s := range f.sent {
		switch m := s.msg.(type) {
		case *Symbol, *SymbolPull:
			t.Fatalf("symbol traffic with coopcast disabled: %T", s.msg)
		case *Gossip:
			if len(m.Syms) != 0 {
				t.Fatalf("gossip carried symbol adverts with coopcast disabled")
			}
		case *SyncReply:
			if len(m.Syms) != 0 {
				t.Fatalf("sync reply carried symbols with coopcast disabled")
			}
		}
	}
	if s := a.Stats(); s.SymbolsSent != 0 || s.FECDecodes != 0 {
		t.Fatalf("symbol counters moved with coopcast disabled: %+v", s)
	}
}

// TestCoopcastSyncPagesSymbols lets sync, not gossip, recover a partial
// assembly: the requester's watermark digest is behind, and the responder
// pages the coopcast record symbol by symbol inside SyncReply.
func TestCoopcastSyncPagesSymbols(t *testing.T) {
	cfg := coopcastConfig()
	cfg.EnableTree = false
	cfg.GossipPeriod = time.Hour // isolate sync: no adverts, no pulls
	cfg.SyncInterval = time.Second
	f, a, b := pair(t, cfg)
	payload := coopcastPayload(4<<10, 8)
	var got []byte
	b.OnDeliver(func(_ MessageID, p []byte, _ time.Duration) { got = append([]byte(nil), p...) })
	a.Multicast(payload)
	f.run(10 * time.Second)
	if got == nil {
		t.Fatalf("sync did not recover the coopcast message")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("sync-recovered payload differs")
	}
	if b.Stats().SymbolPullsSent != 0 {
		t.Fatalf("expected pure sync recovery, but %d symbol pulls were sent", b.Stats().SymbolPullsSent)
	}
	if a.Stats().SyncItemsSent == 0 {
		t.Fatalf("responder paged no sync items")
	}
}
