package core

import (
	"time"

	"gocast/internal/dtrace"
	"gocast/internal/fec"
	"gocast/internal/store"
)

// Coopcast: erasure-coded bulk dissemination, modeled on libunison's
// RaptorQ coopcast. Payloads of at least Config.CoopcastThreshold bytes
// are split into K source + R repair symbols (internal/fec); *different*
// symbols are striped down different tree links, gossip summaries carry
// per-message symbol bitmaps (SymbolAdvert), and repair pulls fetch
// individual missing symbols. A node delivers as soon as ANY K of the N
// symbols arrive, reconstructs the rest, and from then on can serve every
// symbol — so the tree spreads the push load across its links and the
// swarm of overlay neighbors fills the gaps laterally, instead of every
// tree link carrying the whole payload and every repair re-sending it.
//
// Striping rule: a symbol with index i travelling via the tree is
// forwarded to exactly ONE downstream tree link, chosen as i mod the
// number of eligible tree links. Each link therefore carries ~N/c symbols
// of an N-symbol message from a node with c downstream links; descendants
// recover the remainder through symbol pulls, which the adverts direct at
// neighbors that actually hold the wanted symbols.
//
// Reassembly state machine (per message, symState): assembling (0 <
// have < K: advertise every round, pull from advertised holders, retry
// every PullRetry) -> complete (have >= K: decode, deliver, store all N
// symbols, advertise once per neighbor like a whole message) or failed
// (decode error: inert; the store's MaxAge GC reclaims it). Partial
// messages are never marked stable, so the store's MaxAge fallback
// reclaims them — the GC path for partials needs no extra machinery.

// maxSymbolsPerPull bounds how many symbols one pull round requests in
// total, so a freshly-advertised large message does not trigger a burst
// of repair traffic the size of the payload.
const maxSymbolsPerPull = 64

// symState tracks the reassembly of one coopcast message. It hangs off
// the message's msgState; nil means the message is a classic whole-payload
// multicast.
type symState struct {
	k          uint16
	total      uint16 // N = K + R
	payloadLen uint32
	have       store.SymbolSet
	haveCnt    int
	complete   bool
	failed     bool
	// holders are neighbors that advertised symbols for this message,
	// with their last-seen bitmaps; nextHolder round-robins pull load.
	holders    []symHolder
	nextHolder int
	// timer drives the pull rounds; pullArmed dedupes arming.
	timer     Timer
	pullArmed bool
}

type symHolder struct {
	id   NodeID
	have store.SymbolSet
}

func (s *symState) meta() store.SymbolMeta {
	return store.SymbolMeta{K: s.k, N: s.total, PayloadLen: s.payloadLen}
}

// symbolSize is the uniform symbol size every holder derives locally.
func (s *symState) symbolSize() int {
	return fec.SymbolSizeFor(int(s.payloadLen), int(s.k))
}

// validGeometry rejects adverts and symbols whose coding parameters are
// impossible before any state is allocated for them.
func validGeometry(k, total uint16, payloadLen uint32) bool {
	return k > 0 && total >= k && int(total) <= fec.MaxSymbols && payloadLen > 0
}

// coderFor returns a coder for the given geometry, caching the last one:
// a workload's coopcast messages typically share parameters, and building
// the Cauchy parity matrix is O(K*R).
func (n *Node) coderFor(p fec.Params) (fec.Coder, error) {
	if n.fecCoder != nil && n.fecParams == p {
		return n.fecCoder, nil
	}
	c, err := fec.NewRS(p)
	if err != nil {
		return nil, err
	}
	n.fecCoder, n.fecParams = c, p
	return c, nil
}

// multicastCoopcast injects a payload as erasure-coded symbols. ok=false
// (impossible geometry, e.g. a payload too large for 256 symbols of the
// configured size class) makes the caller fall back to the whole path.
func (n *Node) multicastCoopcast(payload []byte) (MessageID, bool) {
	p := fec.ParamsFor(len(payload), n.cfg.FECSymbolSize, n.cfg.FECRepair)
	coder, err := n.coderFor(p)
	if err != nil {
		return MessageID{}, false
	}
	symbols, err := coder.Encode(payload)
	if err != nil {
		return MessageID{}, false
	}
	id := MessageID{Source: n.id, Seq: n.nextSeq}
	n.nextSeq++
	st := n.getMsgState()
	st.receivedAt = n.env.Now()
	if n.cfg.TraceSampleEvery > 0 && id.Seq%uint32(n.cfg.TraceSampleEvery) == 0 {
		st.traced = true
		st.origin = n.env.Now()
		if n.spanObs != nil {
			n.emitSpan(dtrace.KindInject, id, None, 0, st.origin, st.origin, 0, 0)
		}
	}
	sym := &symState{
		k:          uint16(p.K),
		total:      uint16(p.N()),
		payloadLen: uint32(len(payload)),
		haveCnt:    p.N(),
		complete:   true,
	}
	for i := 0; i < p.N(); i++ {
		sym.have.Add(i)
	}
	st.sym = sym
	n.seen[pid(id)] = st
	meta := sym.meta()
	for i, s := range symbols {
		n.store.PutSymbol(sid(id), i, s, meta, n.env.Now())
	}
	n.recent = append(n.recent, id)
	n.stats.Injected++
	n.deliverLocal(id, st, payload)
	if n.obs != nil {
		n.obs.Event(EvDeliver, None, PackMessageID(id), 0)
	}
	for i, s := range symbols {
		n.forwardSymbol(id, st, uint16(i), s, None)
	}
	return id, true
}

// forwardSymbol pushes one symbol down the single tree link the striping
// rule selects (Index mod eligible links), skipping the link it arrived on
// and peers already known to have the whole message.
func (n *Node) forwardSymbol(id MessageID, st *msgState, idx uint16, data []byte, except NodeID) {
	if !n.cfg.EnableTree {
		return
	}
	targets := n.symTargets[:0]
	for _, t := range n.TreeNeighbors() {
		if t == except || st.heardMask&n.slotBit(t) != 0 {
			continue
		}
		targets = append(targets, t)
	}
	n.symTargets = targets[:0]
	if len(targets) == 0 {
		return
	}
	t := targets[int(idx)%len(targets)]
	n.stats.SymbolsSent++
	if n.obs != nil {
		n.obs.Event(EvSend, t, PackMessageID(id), int64(idx))
	}
	n.env.Send(t, &Symbol{
		ID: id, Age: n.ageOf(st), Index: idx,
		K: st.sym.k, N: st.sym.total, PayloadLen: st.sym.payloadLen,
		Data: data, ViaTree: true, Hop: n.hopOf(st),
	})
}

// handleSymbol ingests one symbol, from a tree push, a pull response, or a
// sync page.
func (n *Node) handleSymbol(from NodeID, m *Symbol) {
	key := pid(m.ID)
	st, known := n.seen[key]
	if known && st.sym == nil {
		// Held as a whole payload (mixed-threshold deployments); redundant.
		n.stats.SymbolDups++
		return
	}
	if !known {
		if !validGeometry(m.K, m.N, m.PayloadLen) || m.Index >= m.N {
			n.stats.SymbolsRejected++
			return
		}
		age := m.Age
		if nb := n.neighbors[from]; nb != nil {
			age += n.linkLatency(nb)
		}
		st = n.getMsgState()
		st.receivedAt = n.env.Now()
		st.ageAtReceipt = age
		st.sym = &symState{k: m.K, total: m.N, payloadLen: m.PayloadLen}
		n.seen[key] = st
		n.recent = append(n.recent, m.ID)
		n.assembling++
	}
	if !st.traced {
		// An assembly opened by a bare advert has no hop context; the
		// first sampled symbol supplies it.
		st.adoptHop(m.Hop)
	}
	sym := st.sym
	if sym.failed {
		return
	}
	if m.K != sym.k || m.N != sym.total || m.PayloadLen != sym.payloadLen ||
		m.Index >= sym.total || len(m.Data) != sym.symbolSize() {
		n.stats.SymbolsRejected++
		return
	}
	idx := int(m.Index)
	if sym.have.Has(idx) {
		n.stats.SymbolDups++
		return
	}
	if !n.store.PutSymbol(sid(m.ID), idx, m.Data, sym.meta(), n.env.Now()) {
		// Tombstoned or geometry clash inside the store; nothing to track.
		n.stats.SymbolDups++
		return
	}
	sym.have.Add(idx)
	sym.haveCnt++
	n.stats.SymbolsRecv++
	if st.traced && n.spanObs != nil {
		now := n.env.Now()
		kind := dtrace.KindSymbolPull
		if m.ViaTree {
			kind = dtrace.KindSymbolTree
		}
		n.emitSpan(kind, m.ID, from, m.Hop.Hops, now, now, n.ageOf(st), int64(idx))
	}
	n.forwardSymbol(m.ID, st, m.Index, m.Data, from)
	if !sym.complete && sym.haveCnt >= int(sym.k) {
		n.completeAssembly(m.ID, st, from)
	}
}

// completeAssembly runs once the K-th symbol lands: reconstruct the
// remaining symbols, deliver the payload, and store all N so this node can
// serve any future pull.
func (n *Node) completeAssembly(id MessageID, st *msgState, from NodeID) {
	sym := st.sym
	total := int(sym.total)
	held := sym.haveCnt
	// Either outcome ends the in-progress assembly.
	n.assembling--
	p := fec.Params{K: int(sym.k), R: total - int(sym.k), SymbolSize: sym.symbolSize()}
	coder, err := n.coderFor(p)
	syms := make([][]byte, total)
	if err == nil {
		n.store.RangeSymbols(sid(id), func(i int, data []byte) bool {
			syms[i] = data
			return true
		})
		err = coder.Reconstruct(syms)
	}
	if err != nil {
		sym.failed = true
		sym.timer.Stop()
		n.stats.FECDecodeFailures++
		return
	}
	payload := fec.Join(syms, p, int(sym.payloadLen))
	meta := sym.meta()
	for i := 0; i < total; i++ {
		if !sym.have.Has(i) {
			n.store.PutSymbol(sid(id), i, syms[i], meta, n.env.Now())
			sym.have.Add(i)
		}
	}
	sym.haveCnt = total
	sym.complete = true
	sym.holders = nil
	sym.timer.Stop()
	sym.pullArmed = false
	n.stats.FECDecodes++
	n.stats.PayloadsRecv++
	n.deliverLocal(id, st, payload)
	if n.obs != nil {
		n.obs.ObserveReassembly(n.env.Now() - st.receivedAt)
		n.obs.Event(EvDeliver, from, PackMessageID(id), int64(n.ageOf(st)))
	}
	if st.traced && n.spanObs != nil {
		n.emitSpan(dtrace.KindReassembly, id, from, st.hops, st.receivedAt, n.env.Now(), n.ageOf(st), int64(held))
	}
}

// handleSymbolAdvert ingests one coopcast entry of a gossip summary.
func (n *Node) handleSymbolAdvert(from NodeID, ad *SymbolAdvert, linkLat time.Duration) {
	key := pid(ad.ID)
	peerComplete := ad.Have.Count() >= int(ad.K)
	if st, ok := n.seen[key]; ok {
		if st.sym == nil {
			// We hold the whole payload; a peer advertising >= K symbols
			// can reconstruct it and never needs an announcement from us.
			if peerComplete {
				st.heardMask |= n.slotBit(from)
			}
			return
		}
		sym := st.sym
		if peerComplete {
			st.heardMask |= n.slotBit(from)
		} else if sym.complete {
			// The peer is stuck partial while we are complete — the
			// symbol-level liveness hole watermark sync cannot see (the ID
			// is inside the peer's watermark). Re-open announcements toward
			// it so our next gossip re-advertises our full bitmap and the
			// peer pulls what it misses from us.
			if bit := n.slotBit(from); bit != 0 {
				st.announcedMask &^= bit
				st.heardMask &^= bit
			}
			if st.announceDone {
				st.announceDone = false
				n.recent = append(n.recent, ad.ID)
				n.store.Unstable(sid(ad.ID))
				n.stats.Reannounced++
			}
		}
		if sym.complete || sym.failed {
			return
		}
		if ad.K != sym.k || ad.N != sym.total || ad.PayloadLen != sym.payloadLen {
			n.stats.SymbolsRejected++
			return
		}
		n.noteSymbolHolder(ad.ID, st, from, &ad.Have)
		return
	}
	// First news of this message: start an empty assembly and pull.
	if !validGeometry(ad.K, ad.N, ad.PayloadLen) {
		n.stats.SymbolsRejected++
		return
	}
	st := n.getMsgState()
	st.receivedAt = n.env.Now()
	st.ageAtReceipt = ad.Age + linkLat
	st.sym = &symState{k: ad.K, total: ad.N, payloadLen: ad.PayloadLen}
	n.seen[key] = st
	n.recent = append(n.recent, ad.ID)
	n.assembling++
	if peerComplete {
		st.heardMask |= n.slotBit(from)
	}
	n.noteSymbolHolder(ad.ID, st, from, &ad.Have)
}

// noteSymbolHolder records (or refreshes) a holder's advertised bitmap and
// arms the pull timer when the holder has something we miss. The first
// pull waits out PullDelay from the message's estimated injection, giving
// the tree stripes the same head start whole-message pulls grant the tree.
func (n *Node) noteSymbolHolder(id MessageID, st *msgState, from NodeID, have *store.SymbolSet) {
	sym := st.sym
	found := false
	for i := range sym.holders {
		if sym.holders[i].id == from {
			sym.holders[i].have = *have
			found = true
			break
		}
	}
	if !found {
		sym.holders = append(sym.holders, symHolder{id: from, have: *have})
	}
	if sym.pullArmed || !have.AnyNotIn(&sym.have) {
		return
	}
	wait := n.cfg.PullDelay - n.ageOf(st)
	if wait < 0 {
		wait = 0
	}
	sym.pullArmed = true
	sym.timer = n.env.After(wait, func() { n.fireSymbolPulls(id) })
}

// fireSymbolPulls runs one pull round: every missing symbol some holder
// advertises is requested from exactly one holder, rotating through the
// holder list so repair load spreads. The round re-arms on PullRetry while
// the message stays incomplete — lost symbols or lost pulls are simply
// re-requested, and receipt shrinks the want set monotonically.
func (n *Node) fireSymbolPulls(id MessageID) {
	if !n.running {
		return
	}
	st, ok := n.seen[pid(id)]
	if !ok || st.sym == nil {
		return
	}
	sym := st.sym
	sym.pullArmed = false
	if sym.complete || sym.failed || len(sym.holders) == 0 {
		return
	}
	wants := make([]store.SymbolSet, len(sym.holders))
	requested, cursor := 0, sym.nextHolder
	for i := 0; i < int(sym.total) && requested < maxSymbolsPerPull; i++ {
		if sym.have.Has(i) {
			continue
		}
		for j := 0; j < len(sym.holders); j++ {
			h := (cursor + j) % len(sym.holders)
			if sym.holders[h].have.Has(i) {
				wants[h].Add(i)
				cursor = h + 1
				requested++
				break
			}
		}
	}
	sym.nextHolder = cursor % len(sym.holders)
	if requested == 0 {
		// No known holder advertises anything we miss; stay quiet until a
		// fresher advert re-arms the round.
		return
	}
	for h := range wants {
		if wants[h].Empty() {
			continue
		}
		n.stats.SymbolPullsSent++
		if n.obs != nil {
			n.obs.Event(EvPull, sym.holders[h].id, PackMessageID(id), int64(wants[h].Count()))
		}
		n.env.Send(sym.holders[h].id, &SymbolPull{ID: id, Want: wants[h]})
	}
	sym.pullArmed = true
	sym.timer = n.env.After(n.cfg.PullRetry, func() { n.fireSymbolPulls(id) })
}

// handleSymbolPull serves the wanted symbols this node holds. Symbols it
// lacks are silently skipped: the puller's retry round and the next advert
// exchange redirect the request, so no miss indication is needed at
// symbol granularity.
func (n *Node) handleSymbolPull(from NodeID, m *SymbolPull) {
	meta, have, ok := n.store.SymbolInfo(sid(m.ID))
	if !ok {
		return
	}
	var age time.Duration
	var hop Hop
	if st := n.seen[pid(m.ID)]; st != nil {
		age = n.ageOf(st)
		hop = n.hopOf(st)
	}
	for i := 0; i < int(meta.N); i++ {
		if !m.Want.Has(i) || !have.Has(i) {
			continue
		}
		data, ok := n.store.GetSymbol(sid(m.ID), i)
		if !ok {
			continue
		}
		n.stats.SymbolsServed++
		n.env.Send(from, &Symbol{
			ID: m.ID, Age: age, Index: uint16(i),
			K: meta.K, N: meta.N, PayloadLen: meta.PayloadLen,
			Data: data, ViaTree: false, Hop: hop,
		})
	}
}

// Assembling reports the node's in-progress coopcast reassemblies: how
// many messages sit between first symbol and decode, and the age of the
// oldest such assembly (0 when none). The count is O(1); the oldest-age
// scan only runs while assemblies exist. Must run on the node's logical
// thread.
func (n *Node) Assembling() (count int, oldest time.Duration) {
	if n.assembling <= 0 {
		return 0, 0
	}
	now := n.env.Now()
	for _, st := range n.seen {
		if st.sym != nil && !st.sym.complete && !st.sym.failed {
			count++
			if age := now - st.receivedAt; age > oldest {
				oldest = age
			}
		}
	}
	return count, oldest
}
