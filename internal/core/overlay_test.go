package core

import (
	"testing"
	"time"
)

func TestAddRequestRespectsRandomCap(t *testing.T) {
	cfg := DefaultConfig() // CRand=1, slack 5 -> cap 6
	f := newFixture(1)
	n := f.addNode(1, cfg)
	n.Start()
	for i := NodeID(10); i < 16; i++ {
		n.AddNeighborDirect(Entry{ID: i}, Random, 50*time.Millisecond)
	}
	n.HandleMessage(99, &AddRequest{From: Entry{ID: 99}, LinkKind: Random, RTT: 10 * time.Millisecond})
	if n.RandDegree() != 6 {
		t.Fatalf("random degree = %d; cap C_rand+5 violated", n.RandDegree())
	}
	if n.Stats().AddsRejected != 1 {
		t.Fatalf("rejected = %d, want 1", n.Stats().AddsRejected)
	}
	// The reply must be a rejection.
	for _, s := range f.sent {
		if r, ok := s.msg.(*AddReply); ok && s.to == 99 {
			if r.Accepted {
				t.Fatalf("reply accepted over cap")
			}
			return
		}
	}
	t.Fatalf("no AddReply sent")
}

func TestAddRequestWorstLinkCondition(t *testing.T) {
	cfg := DefaultConfig() // CNear=5
	f := newFixture(1)
	n := f.addNode(1, cfg)
	n.Start()
	for i := NodeID(10); i < 15; i++ { // exactly at target, worst RTT 90ms
		n.AddNeighborDirect(Entry{ID: i}, Nearby, time.Duration(50+i)*time.Millisecond)
	}
	worst := n.maxNearbyRTT()
	// A link worse than the current worst is refused...
	n.HandleMessage(98, &AddRequest{From: Entry{ID: 98}, LinkKind: Nearby, RTT: worst + time.Millisecond})
	if n.NearDegree() != 5 {
		t.Fatalf("worse-than-worst link accepted at target degree")
	}
	// ...but a better one is accepted.
	n.HandleMessage(99, &AddRequest{From: Entry{ID: 99}, LinkKind: Nearby, RTT: worst - time.Millisecond})
	if n.NearDegree() != 6 {
		t.Fatalf("better link rejected: near degree %d", n.NearDegree())
	}
}

func TestAddBelowTargetAcceptsAnyLatency(t *testing.T) {
	cfg := DefaultConfig()
	f := newFixture(1)
	n := f.addNode(1, cfg)
	n.Start()
	n.HandleMessage(99, &AddRequest{From: Entry{ID: 99}, LinkKind: Nearby, RTT: 5 * time.Second})
	if n.NearDegree() != 1 {
		t.Fatalf("below-target node must accept even slow links")
	}
}

func TestDropRemovesBothEnds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaintainPeriod = time.Hour // keep maintenance from re-adding the link
	f := newFixture(1)
	a := f.addNode(1, cfg)
	b := f.addNode(2, cfg)
	f.link(1, 2, Nearby)
	a.Start()
	b.Start()
	a.dropLink(2)
	f.run(time.Second)
	if a.Degree() != 0 || b.Degree() != 0 {
		t.Fatalf("degrees after drop = %d, %d; want 0, 0", a.Degree(), b.Degree())
	}
}

func TestRandomDegreeConvergesOnClique(t *testing.T) {
	// Five nodes all linked randomly to each other (degree 4 each with
	// CRand=1): maintenance must shed links down to C_rand or C_rand+1.
	cfg := DefaultConfig()
	cfg.CNear = 0 // isolate the random protocol
	f := newFixture(3)
	ids := []NodeID{1, 2, 3, 4, 5}
	for _, id := range ids {
		f.addNode(id, cfg)
	}
	for i, a := range ids {
		for _, b := range ids[i+1:] {
			f.link(a, b, Random)
		}
	}
	for _, id := range ids {
		for _, other := range ids {
			if other != id {
				f.nodes[id].learnEntry(Entry{ID: other})
			}
		}
		f.nodes[id].Start()
	}
	f.run(30 * time.Second)
	for _, id := range ids {
		d := f.nodes[id].RandDegree()
		if d < cfg.CRand || d > cfg.CRand+1 {
			t.Errorf("node %d random degree = %d, want %d or %d", id, d, cfg.CRand, cfg.CRand+1)
		}
	}
}

func TestRebalancePreservesPeerDegrees(t *testing.T) {
	// X has random links to Y and Z (degree 3 with CRand=1): operation 1
	// should connect Y-Z and drop X-Y, X-Z.
	cfg := DefaultConfig()
	cfg.CNear = 0
	f := newFixture(2)
	x := f.addNode(1, cfg)
	y := f.addNode(2, cfg)
	z := f.addNode(3, cfg)
	w := f.addNode(4, cfg)
	f.link(1, 2, Random)
	f.link(1, 3, Random)
	f.link(1, 4, Random)
	for _, n := range []*Node{x, y, z, w} {
		n.Start()
	}
	f.run(30 * time.Second)
	if d := x.RandDegree(); d < cfg.CRand || d > cfg.CRand+1 {
		t.Errorf("x degree = %d, want %d..%d", d, cfg.CRand, cfg.CRand+1)
	}
	total := x.RandDegree() + y.RandDegree() + z.RandDegree() + w.RandDegree()
	if total < 4 {
		t.Errorf("rebalancing lost too many links: total degree %d", total)
	}
}

func TestNeighborTimeoutEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NeighborTimeout = 2 * time.Second
	f := newFixture(1)
	a := f.addNode(1, cfg)
	b := f.addNode(2, cfg)
	f.link(1, 2, Nearby)
	a.Start()
	// b never starts: it sends no gossip, so a must evict it.
	f.run(10 * time.Second)
	if a.Degree() != 0 {
		t.Fatalf("silent neighbor not evicted (degree %d)", a.Degree())
	}
	_ = b
}

func TestPeerDownCleansState(t *testing.T) {
	f := newFixture(1)
	a := f.addNode(1, DefaultConfig())
	b := f.addNode(2, DefaultConfig())
	f.link(1, 2, Nearby)
	a.Start()
	b.Start()
	a.learnEntry(Entry{ID: 2})
	a.PeerDown(2)
	if a.Degree() != 0 {
		t.Fatalf("PeerDown left the link in place")
	}
	for _, e := range a.Members() {
		if e.ID == 2 {
			t.Fatalf("dead peer still in member view")
		}
	}
}

func TestPeerDownIgnoredWithoutMaintenance(t *testing.T) {
	f := newFixture(1)
	a := f.addNode(1, DefaultConfig())
	b := f.addNode(2, DefaultConfig())
	f.link(1, 2, Nearby)
	a.Start()
	b.Start()
	a.SetMaintenance(false)
	a.PeerDown(2)
	if a.Degree() != 1 {
		t.Fatalf("stress-test mode must not react to failures")
	}
}

func TestUnsolicitedAddReplyGetsDropped(t *testing.T) {
	f := newFixture(1)
	a := f.addNode(1, DefaultConfig())
	a.Start()
	// An accept for an operation we no longer track must trigger a Drop so
	// the other side does not keep a half-open link.
	a.HandleMessage(9, &AddReply{From: Entry{ID: 9}, LinkKind: Nearby, Accepted: true})
	found := false
	for _, s := range f.sent {
		if _, ok := s.msg.(*Drop); ok && s.to == 9 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no Drop sent for unsolicited accept")
	}
	if a.Degree() != 0 {
		t.Fatalf("unsolicited accept created a link")
	}
}

func TestLinkChangeCallback(t *testing.T) {
	f := newFixture(1)
	a := f.addNode(1, DefaultConfig())
	var events []bool
	a.OnLinkChange(func(added bool, _ LinkKind, _ NodeID, _ time.Duration) {
		events = append(events, added)
	})
	a.Start()
	a.AddNeighborDirect(Entry{ID: 5}, Nearby, 10*time.Millisecond)
	a.dropLink(5)
	if len(events) != 2 || !events[0] || events[1] {
		t.Fatalf("link change events = %v, want [add, drop]", events)
	}
}

func TestPickReplaceVictimHonorsC1(t *testing.T) {
	cfg := DefaultConfig()
	f := newFixture(1)
	n := f.addNode(1, cfg)
	n.AddNeighborDirect(Entry{ID: 10}, Nearby, 300*time.Millisecond)
	n.AddNeighborDirect(Entry{ID: 11}, Nearby, 100*time.Millisecond)
	// Node 10 is the worst link but its degree is dangerously low.
	n.neighbors[10].deg = Degrees{Near: int16(cfg.CNear - 2)}
	n.neighbors[10].degKnown = true
	n.neighbors[11].deg = Degrees{Near: int16(cfg.CNear)}
	n.neighbors[11].degKnown = true
	if got := n.pickReplaceVictim(None); got != 11 {
		t.Fatalf("victim = %d, want 11 (C1 must protect low-degree neighbors)", got)
	}
	// With the exclusion, no victim remains.
	if got := n.pickReplaceVictim(11); got != None {
		t.Fatalf("victim = %d, want None", got)
	}
}

func TestResumeReplaceEnforcesC4(t *testing.T) {
	cfg := DefaultConfig()
	f := newFixture(1)
	n := f.addNode(1, cfg)
	n.Start()
	n.AddNeighborDirect(Entry{ID: 10}, Nearby, 100*time.Millisecond)
	n.neighbors[10].deg = Degrees{Near: int16(cfg.CNear)}
	n.neighbors[10].degKnown = true
	before := n.Stats().AddsSent
	// Candidate with RTT 60ms: 2*60 > 100 -> C4 fails, no request.
	n.resumeReplace(Entry{ID: 20}, 60*time.Millisecond, Degrees{Near: 0})
	if n.Stats().AddsSent != before {
		t.Fatalf("C4 violated: add requested for a non-significant improvement")
	}
	// Candidate with RTT 40ms: 2*40 <= 100 -> request issued.
	n.resumeReplace(Entry{ID: 21}, 40*time.Millisecond, Degrees{Near: 0})
	if n.Stats().AddsSent != before+1 {
		t.Fatalf("C4-satisfying candidate not requested")
	}
}

func TestResumeReplaceEnforcesC3(t *testing.T) {
	cfg := DefaultConfig()
	f := newFixture(1)
	n := f.addNode(1, cfg)
	n.Start()
	n.AddNeighborDirect(Entry{ID: 10}, Nearby, 400*time.Millisecond)
	n.neighbors[10].deg = Degrees{Near: int16(cfg.CNear)}
	n.neighbors[10].degKnown = true
	before := n.Stats().AddsSent
	// Q at target degree whose worst link (50ms) beats our offer (80ms).
	n.resumeReplace(Entry{ID: 20}, 80*time.Millisecond,
		Degrees{Near: int16(cfg.CNear), MaxNearbyRTT: 50 * time.Millisecond})
	if n.Stats().AddsSent != before {
		t.Fatalf("C3 violated: requested a link Q would soon drop")
	}
}
