package core

import (
	"testing"
	"time"
)

func TestClassOfCoversEveryMessageKind(t *testing.T) {
	cases := []struct {
		m    Message
		want Class
	}{
		{&JoinRequest{}, ClassCritical},
		{&JoinReply{}, ClassCritical},
		{&Ping{}, ClassCritical},
		{&Pong{}, ClassCritical},
		{&AddRequest{}, ClassCritical},
		{&AddReply{}, ClassCritical},
		{&Drop{}, ClassCritical},
		{&Rebalance{}, ClassCritical},
		{&RebalanceReply{}, ClassCritical},
		{&Gossip{}, ClassCritical},
		{&TreeAdvert{}, ClassCritical},
		{&TreeParent{}, ClassCritical},
		{&TreeAdvertReq{}, ClassCritical},
		{&Multicast{ViaTree: true}, ClassCritical},
		{&Multicast{ViaTree: false}, ClassRepair},
		{&PullRequest{}, ClassRepair},
		{&PullMiss{}, ClassRepair},
		{&SyncRequest{}, ClassBackground},
		{&SyncReply{}, ClassBackground},
	}
	for _, c := range cases {
		if got := ClassOf(c.m); got != c.want {
			t.Errorf("ClassOf(%T{ViaTree?}) = %v, want %v", c.m, got, c.want)
		}
	}
}

func TestClassStrings(t *testing.T) {
	if ClassCritical.String() != "critical" || ClassRepair.String() != "repair" ||
		ClassBackground.String() != "background" {
		t.Fatalf("class names wrong: %v %v %v", ClassCritical, ClassRepair, ClassBackground)
	}
	if OverloadHealthy.String() != "healthy" || OverloadDegraded.String() != "degraded" ||
		OverloadShedding.String() != "shedding" {
		t.Fatalf("level names wrong: %v %v %v", OverloadHealthy, OverloadDegraded, OverloadShedding)
	}
}

// TestOverloadStretchesGossipAndSync pins the Degraded effect: the
// periodic gossip (and sync) rate drops by DegradedIntervalScale while the
// node is overloaded, and recovers once it returns to Healthy.
func TestOverloadStretchesGossipAndSync(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GossipPeriod = 100 * time.Millisecond
	cfg.SyncInterval = 500 * time.Millisecond
	cfg.DegradedIntervalScale = 4
	f := newFixture(1)
	a := f.addNode(1, cfg)
	b := f.addNode(2, cfg)
	a.Start()
	b.Start()
	f.link(1, 2, Nearby)
	f.run(3 * time.Second)

	rate := func(run func()) float64 {
		before := a.Stats().GossipsSent
		start := f.eng.Now()
		run()
		elapsed := f.eng.Now() - start
		return float64(a.Stats().GossipsSent-before) / elapsed.Seconds()
	}

	healthy := rate(func() { f.run(5 * time.Second) })
	a.SetOverload(OverloadDegraded)
	if a.Overload() != OverloadDegraded {
		t.Fatalf("Overload() = %v, want degraded", a.Overload())
	}
	degraded := rate(func() { f.run(5 * time.Second) })
	a.SetOverload(OverloadHealthy)
	f.run(time.Second) // let the last stretched re-arm expire
	recovered := rate(func() { f.run(5 * time.Second) })

	// ~10/s healthy vs ~2.5/s degraded; allow slack for timer phase.
	if degraded > healthy/2 {
		t.Fatalf("degraded gossip rate %.1f/s not stretched vs healthy %.1f/s", degraded, healthy)
	}
	if recovered < healthy*0.7 {
		t.Fatalf("recovered gossip rate %.1f/s did not return toward healthy %.1f/s", recovered, healthy)
	}
	syncs := a.Stats().SyncRequestsSent
	if syncs == 0 {
		t.Fatalf("expected periodic syncs to have run")
	}
}
