package core

import (
	"testing"
	"time"
)

// buildTriangle wires three started nodes into a triangle with seeded
// membership, the smallest group where gossip, obituaries, and rejoin all
// interact.
func buildTriangle(t *testing.T, seed int64) (*fixture, Config) {
	t.Helper()
	cfg := DefaultConfig()
	f := newFixture(seed)
	for id := NodeID(1); id <= 3; id++ {
		f.addNode(id, cfg)
	}
	f.link(1, 2, Random)
	f.link(2, 3, Random)
	f.link(1, 3, Random)
	for id := NodeID(1); id <= 3; id++ {
		for other := NodeID(1); other <= 3; other++ {
			if other != id {
				f.nodes[id].SeedMembers([]Entry{{ID: other}})
			}
		}
	}
	f.nodes[1].BecomeRoot()
	for id := NodeID(1); id <= 3; id++ {
		f.nodes[id].Start()
	}
	return f, cfg
}

func hasMember(n *Node, id NodeID) bool {
	for _, e := range n.Members() {
		if e.ID == id {
			return true
		}
	}
	return false
}

// After a graceful leave, the departed node must not be re-learned by any
// live node for the quarantine window, even though entries naming it keep
// circulating in gossip for a while.
func TestLeaveQuarantinesDepartedMember(t *testing.T) {
	f, cfg := buildTriangle(t, 1)
	f.run(2 * time.Second)

	f.nodes[3].Leave()
	f.down[3] = true

	// Sample membership well inside the quarantine window.
	checkAt := cfg.QuarantineWindow / 2
	f.run(checkAt)
	for id := NodeID(1); id <= 2; id++ {
		n := f.nodes[id]
		if hasMember(n, 3) {
			t.Errorf("node %d re-learned departed node 3 inside the quarantine window", id)
		}
		for _, nb := range n.Neighbors() {
			if nb.ID == 3 {
				t.Errorf("node %d still linked to departed node 3", id)
			}
		}
		if len(n.Obituaries()) == 0 {
			t.Errorf("node %d holds no obituary for the departure", id)
		}
	}
	if got := f.nodes[1].Stats().ObitsRecorded; got == 0 {
		t.Errorf("node 1 recorded no obituary")
	}
}

// A departure obituary must piggyback on gossip: a node that never saw the
// Drop itself still quarantines the departed peer.
func TestDepartureObituarySpreadsViaGossip(t *testing.T) {
	cfg := DefaultConfig()
	f := newFixture(2)
	// Line topology: 1-2, 2-3. Node 3 leaves; node 1 is not its neighbor
	// and only hears about the departure second-hand.
	for id := NodeID(1); id <= 3; id++ {
		f.addNode(id, cfg)
	}
	f.link(1, 2, Random)
	f.link(2, 3, Random)
	f.nodes[1].SeedMembers([]Entry{{ID: 2}, {ID: 3}})
	f.nodes[2].SeedMembers([]Entry{{ID: 1}, {ID: 3}})
	f.nodes[3].SeedMembers([]Entry{{ID: 1}, {ID: 2}})
	f.nodes[1].BecomeRoot()
	for id := NodeID(1); id <= 3; id++ {
		f.nodes[id].Start()
	}
	f.run(2 * time.Second)

	f.nodes[3].Leave()
	f.down[3] = true
	f.run(3 * cfg.GossipPeriod)

	if len(f.nodes[1].Obituaries()) == 0 {
		t.Fatalf("obituary did not reach the non-neighbor via gossip")
	}
	if hasMember(f.nodes[1], 3) {
		t.Fatalf("non-neighbor still lists the departed node")
	}
	if got := f.nodes[1].Stats().StaleLinksDropped; got != 0 {
		t.Errorf("unexpected stale link drops on non-neighbor: %d", got)
	}
}

// A higher incarnation supersedes an obituary: the rejoining life is
// learned immediately, without waiting out the quarantine window.
func TestRejoinOverridesObituary(t *testing.T) {
	f, _ := buildTriangle(t, 3)
	f.run(2 * time.Second)

	f.nodes[3].Leave()
	f.down[3] = true
	f.run(time.Second)
	if hasMember(f.nodes[1], 3) {
		t.Fatalf("departed node still a member before rejoin")
	}

	// The same ID comes back with a bumped incarnation.
	f.nodes[1].HandleMessage(2, &Gossip{Members: []Entry{{ID: 3, Inc: 1}}})
	if !hasMember(f.nodes[1], 3) {
		t.Fatalf("higher incarnation did not override the obituary")
	}
	if got := f.nodes[1].Stats().RejoinsObserved; got == 0 {
		t.Errorf("rejoin not counted")
	}
	if len(f.nodes[1].Obituaries()) != 0 {
		t.Errorf("obituary survived the rejoin")
	}
}

// Entries for a dead past life must lose to the live one: lower-incarnation
// entries are rejected while the same ID at the current incarnation stays.
func TestStaleIncarnationEntriesRejected(t *testing.T) {
	f, _ := buildTriangle(t, 4)
	f.run(2 * time.Second)

	// Node 1 learns that node 3 is now at incarnation 2.
	f.nodes[1].HandleMessage(2, &Gossip{Members: []Entry{{ID: 3, Inc: 2}}})
	before := f.nodes[1].Stats().StaleIncRejects
	// A stale copy of the old life arrives afterwards.
	f.nodes[1].HandleMessage(2, &Gossip{Members: []Entry{{ID: 3, Inc: 1}}})
	if got := f.nodes[1].Stats().StaleIncRejects; got != before+1 {
		t.Fatalf("stale entry not rejected (StaleIncRejects %d -> %d)", before, got)
	}
	for _, e := range f.nodes[1].Members() {
		if e.ID == 3 && e.Inc != 2 {
			t.Fatalf("member entry regressed to incarnation %d", e.Inc)
		}
	}
}

// A node hearing an obituary about itself must refute it by bumping its
// own incarnation (it is alive; the obituary is a false positive or a
// stale departure).
func TestSelfRefutationBumpsIncarnation(t *testing.T) {
	f, _ := buildTriangle(t, 5)
	f.run(2 * time.Second)

	if got := f.nodes[3].Incarnation(); got != 0 {
		t.Fatalf("unexpected starting incarnation %d", got)
	}
	f.nodes[3].HandleMessage(2, &Gossip{Obits: []Obituary{{ID: 3, Inc: 0}}})
	if got := f.nodes[3].Incarnation(); got != 1 {
		t.Fatalf("incarnation after false obituary = %d, want 1", got)
	}
	if got := f.nodes[3].Stats().SelfRefutes; got != 1 {
		t.Fatalf("SelfRefutes = %d, want 1", got)
	}
}

// Same-incarnation obituary copies must not re-arm the quarantine window:
// the window is armed once and an expired record lingers only as an inert
// tombstone, so circulating gossip cannot keep a node quarantined forever.
func TestObituaryWindowArmsOnce(t *testing.T) {
	cfg := DefaultConfig()
	f := newFixture(6)
	n := f.addNode(1, cfg)
	f.addNode(2, cfg)
	f.link(1, 2, Random)
	n.SeedMembers([]Entry{{ID: 2}, {ID: 3}})
	n.Start()

	n.HandleMessage(2, &Gossip{Obits: []Obituary{{ID: 3, Inc: 0}}})
	if len(n.Obituaries()) != 1 {
		t.Fatalf("obituary not recorded")
	}
	// Re-deliveries of the same obituary while the window runs, and again
	// after it expires.
	f.run(cfg.QuarantineWindow / 2)
	n.HandleMessage(2, &Gossip{Obits: []Obituary{{ID: 3, Inc: 0}}})
	f.run(cfg.QuarantineWindow) // window has expired by now
	n.HandleMessage(2, &Gossip{Obits: []Obituary{{ID: 3, Inc: 0}}})
	if got := len(n.Obituaries()); got != 0 {
		t.Fatalf("expired obituary still active after re-delivery (%d active)", got)
	}
	// With the tombstone inert, the node may be learned again.
	n.HandleMessage(2, &Gossip{Members: []Entry{{ID: 3, Inc: 0}}})
	if !hasMember(n, 3) {
		t.Fatalf("member not re-learnable after the quarantine window expired")
	}
}

// Messages from a dead past life of a peer must be ignored wholesale.
func TestStaleSenderJoinRejected(t *testing.T) {
	f, _ := buildTriangle(t, 7)
	f.run(2 * time.Second)

	// Node 1 knows node 3 is at incarnation 1 now.
	f.nodes[1].HandleMessage(2, &Gossip{Members: []Entry{{ID: 3, Inc: 1}}})
	before := f.nodes[1].Stats().StaleIncRejects
	f.nodes[1].HandleMessage(3, &JoinRequest{From: Entry{ID: 3, Inc: 0}})
	if got := f.nodes[1].Stats().StaleIncRejects; got == before {
		t.Fatalf("join request from a dead incarnation was processed")
	}
}
