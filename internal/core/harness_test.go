package core

import (
	"math/rand"
	"time"

	"gocast/internal/sim"
)

// fixture wires a handful of core nodes to a private event engine with a
// configurable latency function, for white-box protocol tests.
type fixture struct {
	eng   *sim.Engine
	nodes map[NodeID]*Node
	rng   *rand.Rand
	// lat returns one-way latency between two nodes.
	lat func(a, b NodeID) time.Duration
	// down marks unreachable nodes.
	down map[NodeID]bool
	// sent logs every transmission for assertions.
	sent []sentMsg
}

type sentMsg struct {
	from, to NodeID
	msg      Message
}

func newFixture(seed int64) *fixture {
	return &fixture{
		eng:   sim.NewEngine(seed),
		nodes: make(map[NodeID]*Node),
		rng:   rand.New(rand.NewSource(seed)),
		lat:   func(a, b NodeID) time.Duration { return 10 * time.Millisecond },
		down:  make(map[NodeID]bool),
	}
}

func (f *fixture) addNode(id NodeID, cfg Config) *Node {
	e := &fixtureEnv{f: f, id: id, rng: rand.New(rand.NewSource(f.rng.Int63()))}
	n := New(id, cfg, e)
	f.nodes[id] = n
	return n
}

// link wires two nodes as overlay neighbors directly.
func (f *fixture) link(a, b NodeID, kind LinkKind) {
	rtt := 2 * f.lat(a, b)
	f.nodes[a].AddNeighborDirect(Entry{ID: b}, kind, rtt)
	f.nodes[b].AddNeighborDirect(Entry{ID: a}, kind, rtt)
}

func (f *fixture) run(d time.Duration) { f.eng.Run(f.eng.Now() + d) }

// count returns how many logged messages from->to satisfy pred.
func (f *fixture) count(from, to NodeID, pred func(Message) bool) int {
	c := 0
	for _, s := range f.sent {
		if s.from == from && s.to == to && pred(s.msg) {
			c++
		}
	}
	return c
}

type fixtureEnv struct {
	f   *fixture
	id  NodeID
	rng *rand.Rand
}

var _ Env = (*fixtureEnv)(nil)

func (e *fixtureEnv) Now() time.Duration { return e.f.eng.Now() }

func (e *fixtureEnv) Rand(n int) int {
	if n <= 0 {
		return 0
	}
	return e.rng.Intn(n)
}

func (e *fixtureEnv) Learn(Entry) {}

func (e *fixtureEnv) After(d time.Duration, fn func()) Timer {
	// *sim.Engine satisfies TimerCanceller directly.
	return MakeTimer(e.f.eng, uint64(e.f.eng.Schedule(e.f.eng.Now()+d, fn)))
}

func (e *fixtureEnv) Send(to NodeID, m Message) { e.deliver(to, m) }

func (e *fixtureEnv) SendDatagram(to NodeID, m Message) { e.deliver(to, m) }

func (e *fixtureEnv) deliver(to NodeID, m Message) {
	e.f.sent = append(e.f.sent, sentMsg{from: e.id, to: to, msg: m})
	if e.f.down[to] || e.f.down[e.id] {
		return
	}
	target, ok := e.f.nodes[to]
	if !ok {
		return
	}
	from := e.id
	e.f.eng.After(e.f.lat(from, to), func() {
		if !e.f.down[to] {
			target.HandleMessage(from, m)
		}
	})
}
