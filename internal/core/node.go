package core

import (
	"math"
	"time"

	"gocast/internal/fec"
	"gocast/internal/store"
)

// DeliverFunc is invoked exactly once per multicast message a node
// receives. age is the estimated time since the message was injected.
type DeliverFunc func(id MessageID, payload []byte, age time.Duration)

// LinkChangeFunc observes overlay link additions and removals at this node.
type LinkChangeFunc func(added bool, kind LinkKind, peer NodeID, rtt time.Duration)

// ParentChangeFunc observes tree parent changes at this node (old or new
// may be None).
type ParentChangeFunc func(oldParent, newParent NodeID)

// Node is a single GoCast protocol participant. It is not safe for
// concurrent use: the Env must serialize all callbacks and API calls onto
// one logical thread (the simulator's event loop, or the live runtime's
// per-node mailbox goroutine).
type Node struct {
	id   NodeID
	self Entry
	cfg  Config
	env  Env

	running     bool
	maintenance bool
	// overload is the node's degradation level (set by the substrate's
	// governor); Degraded and Shedding stretch the periodic gossip and
	// sync intervals by cfg.DegradedIntervalScale.
	overload OverloadLevel

	// Partial membership view (Section 2.2.1): dense table scanned
	// directly for sampling and round-robin candidate selection.
	members memberTable
	scanIdx int
	// obits quarantines dead or departed incarnations so stale in-flight
	// gossip cannot resurrect them (see membership.go).
	obits map[NodeID]obitRecord
	// First-pass candidate list sorted by estimated latency; nil until
	// built, emptied as candidates are probed.
	estimated []NodeID

	// Measured RTT cache and landmark state (triangulated estimation).
	rtt       map[NodeID]time.Duration
	landmarks []Entry
	landVec   []uint16 // my RTT to each landmark, ms; 0 = unmeasured
	pings     map[uint32]*pingCtx
	pingNonce uint32
	// lastPong remembers when each member last answered a ping, so a stale
	// ping lost to a transient fault does not evict a member that has since
	// proven alive (see expirePings).
	lastPong map[NodeID]time.Duration

	// Overlay neighbors and in-flight maintenance operations.
	neighbors     map[NodeID]*neighbor
	neighborOrder []NodeID
	pendingAdd    map[NodeID]*addCtx
	rebalance     *rebalanceCtx

	// Neighbor-slot allocation for the per-message bitmasks (see
	// dissem.go). slotUsed marks slots taken by live or retired holders;
	// liveMask is the OR of current neighbors' slot bits; retiredSlots
	// parks a removed neighbor's slot with its bits intact so a re-add
	// still knows what was announced to that peer.
	slotUsed     uint64
	liveMask     uint64
	retiredSlots map[NodeID]uint8

	// Dissemination state (Section 2.1). Payload buffering, retention,
	// and reclamation are delegated to the pluggable store; seen keeps the
	// per-neighbor gossip bookkeeping in lockstep with it.
	store     store.MessageStore
	seen      map[uint64]*msgState  // keyed by pid(MessageID)
	pending   map[uint64]*pullState // keyed by pid(MessageID)
	recent    []MessageID
	nextSeq   uint32
	gossipIdx int
	// assembling counts coopcast messages with an in-progress (incomplete,
	// not failed) symbol assembly, maintained at symState transitions so
	// the gauge costs nothing to read.
	assembling int

	// Anti-entropy sync state: round-robin cursor over neighbors and the
	// last time a sync was initiated toward each peer (rate limit for the
	// event-triggered rounds).
	syncIdx    int
	lastSyncTo map[NodeID]time.Duration
	// digestScratch backs localDigest: reused across sync exchanges,
	// never sent on the wire.
	digestScratch []store.SourceRange

	// Tree state (Section 2.3).
	treeEpoch  uint32
	treeWave   uint32
	treeRoot   NodeID
	parent     NodeID
	distToRoot time.Duration
	children   map[NodeID]bool
	lastWaveAt time.Duration
	rootJitter time.Duration
	// lostDist remembers the distance held before the parent link broke;
	// while detached, only re-attachment offers at or below it are safe
	// (larger ones may come from our own descendants).
	lostDist time.Duration

	deliver        DeliverFunc
	onLinkChange   LinkChangeFunc
	onParentChange ParentChangeFunc

	gossipTimer   Timer
	maintainTimer Timer
	heartbeat     Timer
	reclaimTimer  Timer
	syncTimer     Timer

	stats Counters

	// obs, when non-nil, receives latency observations and sampled protocol
	// events (see observe.go). Nil keeps every hook a single branch.
	obs Observer
	// spanObs, when non-nil, receives dissemination trace spans for
	// sampled messages (set by SetObserver when the observer also
	// implements SpanObserver).
	spanObs SpanObserver

	// pool is the env's optional message-struct recycler (nil on envs
	// without the capability; the send helpers then allocate).
	pool MessagePool

	// Coopcast: cached erasure coder (rebuilt when the geometry changes)
	// and the striping-target scratch slice (see coopcast.go).
	fecCoder   fec.Coder
	fecParams  fec.Params
	symTargets []NodeID

	// Free lists for the per-message bookkeeping records and reusable
	// scratch, so steady-state dissemination allocates nothing.
	msgFree     []*msgState
	pullFree    []*pullState
	obitScratch []NodeID
	// selfLm caches the landmark-vector copy handed out in selfEntry;
	// selfLmOK is cleared whenever landVec changes.
	selfLm   []uint16
	selfLmOK bool
	// degCache caches degrees(); degCacheOK is cleared whenever the
	// neighbor set or a nearby link's RTT changes.
	degCache   Degrees
	degCacheOK bool

	// Periodic-tick callbacks are bound once at construction: method
	// values allocate per use, and the ticks re-arm every period.
	tickGossip    func()
	tickMaintain  func()
	tickReclaim   func()
	tickSync      func()
	tickHeartbeat func()

	// repairing/detachedAt time the window between losing the tree parent
	// and re-attaching (or taking over as root), for ObserveTreeRepair.
	repairing  bool
	detachedAt time.Duration
}

// distInfinity marks an unknown distance to the tree root.
const distInfinity = time.Duration(math.MaxInt64)

// neighbor is this node's record of one overlay neighbor.
type neighbor struct {
	entry     Entry
	kind      LinkKind
	rtt       time.Duration
	deg       Degrees // last piggybacked degrees from the peer
	degKnown  bool
	lastHeard time.Duration
	// slot indexes this neighbor's bit in the per-message bitmasks
	// (invalidSlot when more than 64 concurrent slots are in use, which
	// bounded degree makes unreachable in practice).
	slot uint8
	// advert is the peer's last tree advertisement, kept so a node whose
	// parent vanishes can re-pick a parent without waiting for a wave.
	advert    TreeAdvert
	hasAdvert bool
}

// New constructs a node. The returned node is inert until Start is called.
func New(id NodeID, cfg Config, env Env) *Node {
	cfg = cfg.validate()
	limits := store.Limits{
		MaxMessages: cfg.StoreMaxMessages,
		MaxBytes:    cfg.StoreMaxBytes,
		Retention:   cfg.ReclaimAfter,
	}
	var st store.MessageStore
	if cfg.NewStore != nil {
		st = cfg.NewStore(limits)
	} else {
		st = store.NewMemory(limits)
	}
	n := &Node{
		id:           id,
		self:         Entry{ID: id},
		cfg:          cfg,
		env:          env,
		maintenance:  true,
		members:      newMemberTable(),
		obits:        make(map[NodeID]obitRecord),
		rtt:          make(map[NodeID]time.Duration),
		pings:        make(map[uint32]*pingCtx),
		lastPong:     make(map[NodeID]time.Duration),
		neighbors:    make(map[NodeID]*neighbor),
		pendingAdd:   make(map[NodeID]*addCtx),
		retiredSlots: make(map[NodeID]uint8),
		store:        st,
		seen:         make(map[uint64]*msgState),
		pending:      make(map[uint64]*pullState),
		lastSyncTo:   make(map[NodeID]time.Duration),
		children:     make(map[NodeID]bool),
		treeRoot:     None,
		parent:       None,
		distToRoot:   distInfinity,
	}
	if p, ok := env.(MessagePool); ok {
		n.pool = p
	}
	n.tickGossip = n.gossipTick
	n.tickMaintain = n.maintainTick
	n.tickReclaim = n.reclaimTick
	n.tickSync = n.syncTick
	n.tickHeartbeat = n.heartbeatTick
	return n
}

// ID returns the node's identifier.
func (n *Node) ID() NodeID { return n.id }

// Config returns the node's configuration.
func (n *Node) Config() Config { return n.cfg }

// SetAddr records the node's own transport address, advertised in
// membership entries (live runtime only).
func (n *Node) SetAddr(addr string) { n.self.Addr = addr }

// SetIncarnation sets this node's incarnation number. A restarted node must
// be given a number strictly above any it used in a previous life, before
// Start/Join, so peers treat it as a fresh rejoin rather than a ghost.
func (n *Node) SetIncarnation(inc uint32) { n.self.Inc = inc }

// Incarnation returns this node's current incarnation number. It can grow
// at runtime when the node refutes a false obituary about itself.
func (n *Node) Incarnation() uint32 { return n.self.Inc }

// OnDeliver registers the multicast delivery callback. Must be set before
// Start.
func (n *Node) OnDeliver(fn DeliverFunc) { n.deliver = fn }

// OnLinkChange registers an observer of overlay link changes.
func (n *Node) OnLinkChange(fn LinkChangeFunc) { n.onLinkChange = fn }

// OnParentChange registers an observer of tree parent changes.
func (n *Node) OnParentChange(fn ParentChangeFunc) { n.onParentChange = fn }

// Start activates the node's periodic timers. Gossip and maintenance
// phases are randomized so nodes do not synchronize.
func (n *Node) Start() {
	if n.running {
		return
	}
	n.running = true
	n.rootJitter = time.Duration(n.env.Rand(int(5 * time.Second)))
	n.lastWaveAt = n.env.Now()
	n.gossipTimer = n.env.After(time.Duration(n.env.Rand(int(n.cfg.GossipPeriod)+1)), n.tickGossip)
	n.maintainTimer = n.env.After(time.Duration(n.env.Rand(int(n.cfg.MaintainPeriod)+1)), n.tickMaintain)
	n.reclaimTimer = n.env.After(reclaimScanPeriod, n.tickReclaim)
	if n.syncEnabled() {
		n.syncTimer = n.env.After(n.cfg.SyncInterval+time.Duration(n.env.Rand(int(n.cfg.SyncInterval)+1)), n.tickSync)
	}
	n.measureLandmarks()
	if n.treeRoot == n.id {
		n.scheduleHeartbeat(0)
	}
}

// Stop deactivates the node's timers. The node keeps its state and can be
// inspected afterwards; it will no longer react to anything.
func (n *Node) Stop() {
	n.running = false
	for _, t := range [...]Timer{n.gossipTimer, n.maintainTimer, n.heartbeat, n.reclaimTimer, n.syncTimer} {
		t.Stop()
	}
	for _, ps := range n.pending {
		ps.timer.Stop()
	}
	for _, st := range n.seen {
		if st.sym != nil {
			st.sym.timer.Stop()
		}
	}
}

// Leave gracefully departs: notifies all overlay neighbors with a departing
// Drop so they quarantine this incarnation (and spread the obituary via
// gossip piggyback), then stops.
func (n *Node) Leave() {
	for _, id := range n.neighborOrder {
		if n.neighbors[id] != nil {
			n.env.Send(id, &Drop{Degrees: n.degrees(), Departing: true})
		}
	}
	n.Stop()
}

// SetMaintenance enables or disables the overlay/tree maintenance
// protocols (including neighbor failure detection). The paper's stress
// tests (Figures 3b, 4b, 6) disable maintenance before killing nodes.
func (n *Node) SetMaintenance(on bool) { n.maintenance = on }

// BecomeRoot designates this node as the tree root (used for the first
// node of the system).
func (n *Node) BecomeRoot() {
	n.treeRoot = n.id
	n.treeEpoch++
	n.parent = None
	n.distToRoot = 0
	n.lastWaveAt = n.env.Now()
	if n.running && n.cfg.EnableTree {
		n.scheduleHeartbeat(0)
	}
}

// Join contacts a node already in the overlay and bootstraps membership
// from its reply (Section 2.2.1). The contact must be reachable via Send.
func (n *Node) Join(contact Entry) {
	n.learnEntry(contact)
	n.env.Send(contact.ID, &JoinRequest{From: n.self})
}

// HandleMessage dispatches one protocol message from peer `from`. It is
// the substrate's job to call this on the node's logical thread.
func (n *Node) HandleMessage(from NodeID, m Message) {
	if !n.running {
		return
	}
	if nb := n.neighbors[from]; nb != nil {
		nb.lastHeard = n.env.Now()
	}
	switch msg := m.(type) {
	case *JoinRequest:
		n.handleJoinRequest(from, msg)
	case *JoinReply:
		n.handleJoinReply(from, msg)
	case *Ping:
		n.handlePing(from, msg)
	case *Pong:
		n.handlePong(from, msg)
	case *AddRequest:
		n.handleAddRequest(from, msg)
	case *AddReply:
		n.handleAddReply(from, msg)
	case *Drop:
		n.handleDrop(from, msg)
	case *Rebalance:
		n.handleRebalance(from, msg)
	case *RebalanceReply:
		n.handleRebalanceReply(from, msg)
	case *Gossip:
		n.handleGossip(from, msg)
	case *PullRequest:
		n.handlePullRequest(from, msg)
	case *Multicast:
		n.handleMulticast(from, msg)
	case *TreeAdvert:
		n.handleTreeAdvert(from, msg)
	case *TreeParent:
		n.handleTreeParent(from, msg)
	case *TreeAdvertReq:
		n.handleTreeAdvertReq(from)
	case *SyncRequest:
		n.handleSyncRequest(from, msg)
	case *SyncReply:
		n.handleSyncReply(from, msg)
	case *PullMiss:
		n.handlePullMiss(from, msg)
	case *Symbol:
		n.handleSymbol(from, msg)
	case *SymbolPull:
		n.handleSymbolPull(from, msg)
	}
}

// PeerDown tells the node that the reliable channel to peer broke
// persistently. With the resilient TCP transport this fires only after
// redial attempts with backoff were exhausted (or a writer queue
// overflowed) — transient connection losses are absorbed by the transport
// and never reach the protocol. Ignored while maintenance is disabled,
// which models the paper's "no repair" stress tests.
func (n *Node) PeerDown(peer NodeID) {
	if !n.running || !n.maintenance {
		return
	}
	n.stats.PeerDowns++
	// Quarantine locally (not spread: a broken channel may be a partition,
	// not a death, and a false obituary epidemic would make it worse).
	n.recordObit(peer, n.knownInc(peer), false)
	if n.neighbors[peer] != nil {
		n.removeNeighbor(peer, false)
	}
	n.abortOpsWith(peer)
}

// handleJoinRequest answers with a membership sample, the landmark set,
// and the current root.
func (n *Node) handleJoinRequest(from NodeID, m *JoinRequest) {
	if n.staleSender(m.From) {
		return
	}
	n.learnEntry(m.From)
	reply := &JoinReply{
		Members:   n.sampleMembers(n.cfg.MemberViewSize, m.From.ID),
		Landmarks: append([]Entry(nil), n.landmarks...),
		Root:      n.treeRoot,
	}
	n.env.Send(from, reply)
}

// handleJoinReply installs the contact's view as our initial member list
// and kicks off landmark measurement; the maintenance cycle then builds
// our neighborhoods.
func (n *Node) handleJoinReply(from NodeID, m *JoinReply) {
	for _, e := range m.Members {
		n.learnEntry(e)
	}
	if len(n.landmarks) == 0 && len(m.Landmarks) > 0 {
		n.SetLandmarks(m.Landmarks)
		n.measureLandmarks()
	}
	if m.Root != None && n.treeRoot == None {
		n.treeRoot = m.Root
	}
	// A (re)joining node may have missed arbitrarily many messages while
	// away; its gossip neighbors will only ever announce IDs received from
	// now on. The join contact is reachable and up to date, so open a sync
	// round with it immediately to recover the backlog.
	n.requestSync(from, true)
}

// degrees snapshots this node's current degrees for piggybacking. The
// snapshot is cached between neighbor-set (or nearby-RTT) changes: every
// gossip and most overlay messages carry degrees, so recounting the
// neighbor map each time shows up in profiles.
func (n *Node) degrees() Degrees {
	if n.degCacheOK {
		return n.degCache
	}
	var d Degrees
	var maxNear time.Duration
	for _, nb := range n.neighbors {
		switch nb.kind {
		case Random:
			d.Rand++
		case Nearby:
			d.Near++
			if nb.rtt > maxNear {
				maxNear = nb.rtt
			}
		}
	}
	d.MaxNearbyRTT = maxNear
	n.degCache = d
	n.degCacheOK = true
	return d
}

// degreeOf counts this node's neighbors of one kind.
func (n *Node) degreeOf(kind LinkKind) int {
	d := n.degrees()
	if kind == Random {
		return int(d.Rand)
	}
	return int(d.Near)
}

// maxNearbyRTT returns the worst nearby-link RTT (condition C3).
func (n *Node) maxNearbyRTT() time.Duration {
	return n.degrees().MaxNearbyRTT
}
