package core

import (
	"math/rand"
	"testing"
	"time"
)

// sliceModel is the pre-bitmask bookkeeping: per-message NodeID slices,
// kept as the reference implementation the masks must agree with on every
// decision the protocol actually takes.
type sliceModel struct {
	announcedTo []NodeID
	heardFrom   []NodeID
}

// TestBitmaskMatchesSliceModel drives a node's per-message neighbor
// bitmasks and the old slice-scan model through a randomized schedule of
// link adds/removes, hear events (including from non-neighbors), and
// gossip announcements, asserting that every protocol-visible decision —
// the announce-skip check, the retirement coverage check, and the
// Reannounced accounting on re-link — is identical.
func TestBitmaskMatchesSliceModel(t *testing.T) {
	f := newFixture(77)
	cfg := DefaultConfig()
	cfg.SyncInterval = -1
	a := f.addNode(1, cfg)
	a.Start()

	rng := rand.New(rand.NewSource(99))
	peers := []NodeID{2, 3, 4, 5, 6, 7, 8, 9}
	isNeighbor := func(p NodeID) bool { return a.neighbors[p] != nil }

	// One tracked message, kept un-retired by hand so decisions stay live.
	id := a.Multicast([]byte("m"))
	st := a.seen[pid(id)]
	model := &sliceModel{}

	checkDecisions := func(step int) {
		t.Helper()
		for _, y := range a.neighborOrder {
			bit := a.slotBit(y)
			gotSkip := (st.heardMask|st.announcedMask)&bit != 0
			wantSkip := containsID(model.heardFrom, y) || containsID(model.announcedTo, y)
			if gotSkip != wantSkip {
				t.Fatalf("step %d: announce-skip for %d = %v, slice model says %v", step, y, gotSkip, wantSkip)
			}
		}
		gotCovered := (st.heardMask|st.announcedMask)&a.liveMask == a.liveMask
		wantCovered := true
		for _, y := range a.neighborOrder {
			if !containsID(model.heardFrom, y) && !containsID(model.announcedTo, y) {
				wantCovered = false
				break
			}
		}
		if gotCovered != wantCovered {
			t.Fatalf("step %d: coverage = %v, slice model says %v", step, gotCovered, wantCovered)
		}
	}

	for step := 0; step < 2000; step++ {
		p := peers[rng.Intn(len(peers))]
		switch rng.Intn(4) {
		case 0: // link the peer (scrubs its stale marks, counts reannounces)
			if !isNeighbor(p) {
				wantRe := int64(0)
				if containsID(model.announcedTo, p) {
					wantRe = 1
				}
				before := a.stats.Reannounced
				a.AddNeighborDirect(Entry{ID: p}, Random, 10*time.Millisecond)
				if got := a.stats.Reannounced - before; got != wantRe {
					t.Fatalf("step %d: relink of %d counted %d reannounces, slice model says %d", step, p, got, wantRe)
				}
				removeID(&model.announcedTo, p)
				removeID(&model.heardFrom, p)
			}
		case 1: // break the link (marks are retained in both designs)
			if isNeighbor(p) {
				a.removeNeighbor(p, false)
			}
		case 2: // hear the ID from p — neighbor or not
			st.heardMask |= a.slotBit(p)
			addID(&model.heardFrom, p)
		case 3: // gossip-announce to p if it is a neighbor and not skipped
			if isNeighbor(p) {
				bit := a.slotBit(p)
				if (st.heardMask|st.announcedMask)&bit == 0 {
					st.announcedMask |= bit
					addID(&model.announcedTo, p)
				}
			}
		}
		checkDecisions(step)
	}
}

// TestSlotExhaustionScrub forces all 64 slots into use so the retired
// slots are scrubbed, and checks in-flight masks drop the scrubbed bits.
func TestSlotExhaustionScrub(t *testing.T) {
	f := newFixture(78)
	cfg := DefaultConfig()
	cfg.SyncInterval = -1
	a := f.addNode(1, cfg)
	a.Start()

	id := a.Multicast([]byte("m"))
	st := a.seen[pid(id)]

	// Cycle 64 distinct peers through a link: each retires a distinct slot
	// with a heard bit set in the tracked message.
	for p := NodeID(100); p < 164; p++ {
		a.AddNeighborDirect(Entry{ID: p}, Random, time.Millisecond)
		st.heardMask |= a.slotBit(p)
		a.removeNeighbor(p, false)
	}
	if a.slotUsed != ^uint64(0) {
		t.Fatalf("expected all 64 slots retired, used=%064b", a.slotUsed)
	}
	// The 65th holder forces a scrub: retired bits must leave the message.
	a.AddNeighborDirect(Entry{ID: 200}, Random, time.Millisecond)
	nb := a.neighbors[200]
	if nb == nil || nb.slot == invalidSlot {
		t.Fatalf("new neighbor got no slot after scrub")
	}
	if st.heardMask&^(1<<nb.slot) != 0 {
		t.Fatalf("scrub left stale bits: %064b", st.heardMask)
	}
	if len(a.retiredSlots) != 0 {
		t.Fatalf("retired slots not cleared by scrub: %v", a.retiredSlots)
	}
}
