package core

import (
	"testing"
	"time"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.CRand != 1 || c.CNear != 5 {
		t.Errorf("target degrees = %d random + %d nearby, paper uses 1 + 5", c.CRand, c.CNear)
	}
	if c.GossipPeriod != 100*time.Millisecond {
		t.Errorf("gossip period = %v, paper uses 0.1 s", c.GossipPeriod)
	}
	if c.MaintainPeriod != 100*time.Millisecond {
		t.Errorf("maintenance period = %v, paper uses 0.1 s", c.MaintainPeriod)
	}
	if c.HeartbeatPeriod != 15*time.Second {
		t.Errorf("heartbeat = %v, paper uses 15 s", c.HeartbeatPeriod)
	}
	if c.ReclaimAfter != 2*time.Minute {
		t.Errorf("reclaim window = %v, paper uses 2 min", c.ReclaimAfter)
	}
	if !c.EnableTree {
		t.Errorf("tree must be enabled by default")
	}
	if c.TargetDegree() != 6 {
		t.Errorf("target degree = %d, want 6", c.TargetDegree())
	}
}

func TestVariantConfigs(t *testing.T) {
	p := ProximityOverlayConfig()
	if p.EnableTree {
		t.Errorf("proximity overlay must disable the tree")
	}
	if p.CRand != 1 || p.CNear != 5 {
		t.Errorf("proximity overlay keeps the 1+5 overlay, got %d+%d", p.CRand, p.CNear)
	}
	r := RandomOverlayConfig()
	if r.EnableTree {
		t.Errorf("random overlay must disable the tree")
	}
	if r.CRand != 6 || r.CNear != 0 {
		t.Errorf("random overlay uses 6 random neighbors, got %d+%d", r.CRand, r.CNear)
	}
}

func TestValidateFixesPathologicalValues(t *testing.T) {
	var c Config
	c.CRand, c.CNear = -1, -2
	v := c.validate()
	if v.GossipPeriod <= 0 || v.MaintainPeriod <= 0 || v.HeartbeatPeriod <= 0 {
		t.Errorf("validate left non-positive periods: %+v", v)
	}
	if v.CRand != 0 || v.CNear != 0 {
		t.Errorf("negative degrees should clamp to zero")
	}
	if v.MemberViewSize <= 0 || v.DegreeSlack <= 0 {
		t.Errorf("validate left non-positive sizes: %+v", v)
	}
}

func TestMessageWireSizes(t *testing.T) {
	msgs := []Message{
		&JoinRequest{},
		&JoinReply{Members: make([]Entry, 3)},
		&Ping{},
		&Pong{},
		&AddRequest{},
		&AddReply{},
		&Drop{},
		&Rebalance{},
		&RebalanceReply{},
		&Gossip{IDs: make([]GossipID, 4), Members: make([]Entry, 2)},
		&PullRequest{IDs: make([]MessageID, 2)},
		&Multicast{Payload: make([]byte, 100)},
		&TreeAdvert{},
		&TreeParent{},
	}
	kinds := map[MsgKind]bool{}
	for _, m := range msgs {
		if m.WireSize() <= 0 {
			t.Errorf("%T has non-positive wire size", m)
		}
		if kinds[m.Kind()] {
			t.Errorf("duplicate kind %v", m.Kind())
		}
		kinds[m.Kind()] = true
	}
	small := (&Gossip{}).WireSize()
	big := (&Gossip{IDs: make([]GossipID, 10)}).WireSize()
	if big <= small {
		t.Errorf("gossip wire size must grow with content")
	}
	if (&Multicast{Payload: make([]byte, 1000)}).WireSize() < 1000 {
		t.Errorf("multicast wire size must include the payload")
	}
}

func TestLinkKindString(t *testing.T) {
	if Random.String() != "random" || Nearby.String() != "nearby" {
		t.Errorf("LinkKind strings wrong: %v %v", Random, Nearby)
	}
	if LinkKind(9).String() == "" {
		t.Errorf("unknown kind should still stringify")
	}
}

func TestMessageIDString(t *testing.T) {
	id := MessageID{Source: 12, Seq: 34}
	if id.String() != "12/34" {
		t.Errorf("MessageID.String() = %q", id.String())
	}
}
