package core

import "time"

// Tree construction (Section 2.3). The tree is embedded in the overlay:
// tree links are overlay links on latency-shortest paths from a conceptual
// root. The root floods a heartbeat wave over every overlay link every
// HeartbeatPeriod; each wave rebuilds the shortest-path tree from scratch
// (which also heals any damage), and between waves nodes react to improved
// distance advertisements and to link changes. Root takeover is ordered by
// (epoch, smaller node ID).

// scheduleHeartbeat arms the root's wave timer.
func (n *Node) scheduleHeartbeat(d time.Duration) {
	n.heartbeat.Stop()
	n.heartbeat = n.env.After(d, n.tickHeartbeat)
}

// heartbeatTick floods a new wave if this node still believes it is root.
func (n *Node) heartbeatTick() {
	if !n.running || !n.cfg.EnableTree || n.treeRoot != n.id {
		return
	}
	n.scheduleHeartbeat(n.cfg.HeartbeatPeriod)
	if !n.maintenance {
		return
	}
	n.treeWave++
	n.lastWaveAt = n.env.Now()
	n.parent = None
	n.distToRoot = 0
	n.advertiseTree(None)
}

// advertiseTree sends the node's current tree distance to all overlay
// neighbors except `skip`.
func (n *Node) advertiseTree(skip NodeID) {
	if n.distToRoot == distInfinity {
		return
	}
	adv := &TreeAdvert{Root: n.treeRoot, Epoch: n.treeEpoch, Wave: n.treeWave, Dist: n.distToRoot}
	for _, id := range n.neighborOrder {
		if id == skip {
			continue
		}
		n.stats.TreeAdverts++
		n.env.Send(id, adv)
	}
}

// advertRank orders tree advertisements: higher epoch wins; within an
// epoch the smaller root ID wins (resolving concurrent takeovers); within
// a root, the higher wave is newer.
func advertRank(epoch uint32, root NodeID, wave uint32) [3]int64 {
	return [3]int64{int64(epoch), -int64(root), int64(wave)}
}

func rankLess(a, b [3]int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// handleTreeAdvert processes a distance advertisement from a neighbor.
func (n *Node) handleTreeAdvert(from NodeID, m *TreeAdvert) {
	if !n.cfg.EnableTree {
		return
	}
	nb := n.neighbors[from]
	if nb == nil {
		return // adverts only travel over overlay links
	}
	nb.advert = *m
	nb.hasAdvert = true
	cur := advertRank(n.treeEpoch, n.treeRoot, n.treeWave)
	got := advertRank(m.Epoch, m.Root, m.Wave)
	if rankLess(got, cur) {
		return // stale
	}
	d := m.Dist + n.linkLatency(nb)
	if rankLess(cur, got) {
		// New wave (or new root): adopt unconditionally.
		if n.treeRoot == n.id && m.Root != n.id {
			// Someone with higher rank is root; stand down.
			n.heartbeat.Stop()
		}
		oldRoot := n.treeRoot
		n.treeEpoch, n.treeRoot, n.treeWave = m.Epoch, m.Root, m.Wave
		n.lastWaveAt = n.env.Now()
		n.distToRoot = d
		n.lostDist = 0
		if n.obs != nil && oldRoot != m.Root {
			n.obs.Event(EvRoot, m.Root, int64(oldRoot), int64(m.Root))
		}
		n.setParent(from)
		n.advertiseTree(None)
		return
	}
	// Same wave: adopt only strict improvements. While detached after a
	// parent loss, additionally require the offer to be no worse than the
	// lost distance: anything larger could be our own descendant still
	// advertising a path through us.
	if d < n.distToRoot {
		if n.distToRoot == distInfinity && n.lostDist > 0 && d > n.lostDist {
			return
		}
		n.distToRoot = d
		n.lostDist = 0
		n.setParent(from)
		n.advertiseTree(None)
	}
}

// linkLatency estimates one-way latency of the link to a neighbor.
func (n *Node) linkLatency(nb *neighbor) time.Duration {
	if nb.rtt > 0 {
		return nb.rtt / 2
	}
	// Unmeasured link: assume an average-ish wide-area latency so it is
	// usable but not preferred.
	return 100 * time.Millisecond
}

// setParent switches the tree parent, notifying both the old and the new
// parent so their children sets stay accurate.
func (n *Node) setParent(p NodeID) {
	if n.parent == p {
		return
	}
	old := n.parent
	if old != None {
		if _, ok := n.neighbors[old]; ok {
			n.env.Send(old, &TreeParent{On: false})
		}
	}
	n.parent = p
	if p != None {
		n.env.Send(p, &TreeParent{On: true})
	}
	if n.obs != nil {
		if p != None && n.repairing {
			n.obs.ObserveTreeRepair(n.env.Now() - n.detachedAt)
		}
		n.obs.Event(EvParent, p, int64(old), int64(p))
	}
	if p != None {
		n.repairing = false
	}
	if n.onParentChange != nil {
		n.onParentChange(old, p)
	}
}

// handleTreeParent maintains the children set.
func (n *Node) handleTreeParent(from NodeID, m *TreeParent) {
	if _, ok := n.neighbors[from]; !ok {
		return
	}
	if m.On {
		n.children[from] = true
	} else {
		delete(n.children, from)
	}
}

// treeOnLinkUp extends the tree over a freshly created overlay link by
// advertising our distance to the new neighbor.
func (n *Node) treeOnLinkUp(peer NodeID) {
	if !n.cfg.EnableTree || n.distToRoot == distInfinity {
		return
	}
	n.stats.TreeAdverts++
	n.env.Send(peer, &TreeAdvert{Root: n.treeRoot, Epoch: n.treeEpoch, Wave: n.treeWave, Dist: n.distToRoot})
}

// treeOnLinkDown repairs tree state after an overlay link disappears.
func (n *Node) treeOnLinkDown(peer NodeID) {
	delete(n.children, peer)
	if n.parent != peer {
		return
	}
	n.parent = None
	if n.onParentChange != nil {
		n.onParentChange(peer, None)
	}
	if n.obs != nil {
		n.obs.Event(EvParent, None, int64(peer), int64(None))
	}
	if !n.cfg.EnableTree {
		return
	}
	n.repairing = true
	n.detachedAt = n.env.Now()
	old := n.distToRoot
	n.distToRoot = distInfinity
	// Re-pick from cached same-wave advertisements. Only accept paths
	// strictly better than our old distance: a cached advert with a larger
	// distance may come from our own descendant and would form a loop
	// (healed at the next wave anyway, but avoid when we can).
	best := None
	var bestDist time.Duration = distInfinity
	for _, id := range n.neighborOrder {
		nb := n.neighbors[id]
		if nb == nil || !nb.hasAdvert {
			continue
		}
		a := nb.advert
		if a.Epoch != n.treeEpoch || a.Root != n.treeRoot || a.Wave != n.treeWave {
			continue
		}
		if d := a.Dist + n.linkLatency(nb); d < bestDist && d <= old {
			bestDist, best = d, id
		}
	}
	if best != None {
		n.distToRoot = bestDist
		n.setParent(best)
		n.advertiseTree(None)
		return
	}
	// No cached alternative: solicit fresh adverts (triggered update) so
	// re-attachment does not have to wait for the next heartbeat wave.
	n.lostDist = old
	req := &TreeAdvertReq{}
	for _, id := range n.neighborOrder {
		n.env.Send(id, req)
	}
}

// handleTreeAdvertReq answers a detached neighbor with our current state.
func (n *Node) handleTreeAdvertReq(from NodeID) {
	if !n.cfg.EnableTree || n.distToRoot == distInfinity {
		return
	}
	if _, ok := n.neighbors[from]; !ok {
		return
	}
	n.stats.TreeAdverts++
	n.env.Send(from, &TreeAdvert{Root: n.treeRoot, Epoch: n.treeEpoch, Wave: n.treeWave, Dist: n.distToRoot})
}

// checkRootLiveness self-promotes when no wave has been observed for
// RootTimeout (+ a per-node jitter to avoid synchronized takeovers). The
// paper: "If the root fails, one of its neighbors will take over its
// role"; epoch/ID ordering resolves concurrent promotions.
func (n *Node) checkRootLiveness() {
	if !n.cfg.EnableTree || n.treeRoot == n.id {
		return
	}
	if n.env.Now()-n.lastWaveAt <= n.cfg.RootTimeout+n.rootJitter {
		return
	}
	oldRoot := n.treeRoot
	n.treeEpoch++
	n.treeRoot = n.id
	n.treeWave = 0
	n.parent = None
	n.distToRoot = 0
	n.lastWaveAt = n.env.Now()
	n.stats.RootTakeovers++
	if n.obs != nil {
		if n.repairing {
			n.obs.ObserveTreeRepair(n.env.Now() - n.detachedAt)
		}
		n.obs.Event(EvRoot, n.id, int64(oldRoot), int64(n.id))
	}
	n.repairing = false
	n.scheduleHeartbeat(0)
}

// Parent returns the node's tree parent (None at the root or when
// detached).
func (n *Node) Parent() NodeID { return n.parent }

// Root returns the node's current view of the tree root.
func (n *Node) Root() NodeID { return n.treeRoot }

// DistToRoot returns the node's latency distance to the root, or
// (true, d) when attached.
func (n *Node) DistToRoot() (time.Duration, bool) {
	if n.distToRoot == distInfinity {
		return 0, false
	}
	return n.distToRoot, true
}

// TreeNeighbors returns the node's current tree links (parent plus
// children) in a deterministic order.
func (n *Node) TreeNeighbors() []NodeID {
	out := make([]NodeID, 0, len(n.children)+1)
	if n.parent != None {
		out = append(out, n.parent)
	}
	for _, id := range n.neighborOrder {
		if n.children[id] {
			out = append(out, id)
		}
	}
	return out
}

// TreeLinkRTTs returns the RTTs of the node's tree links that are still
// overlay links (used by the link-quality experiments).
func (n *Node) TreeLinkRTTs() []time.Duration {
	var out []time.Duration
	for _, id := range n.TreeNeighbors() {
		if nb := n.neighbors[id]; nb != nil {
			out = append(out, nb.rtt)
		}
	}
	return out
}
