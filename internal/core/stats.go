package core

// Counters accumulates per-node protocol activity. All fields are event
// counts since the node was created.
type Counters struct {
	// Dissemination.
	Injected     int64 // multicasts started at this node
	Delivered    int64 // messages delivered to the application
	PayloadsRecv int64 // payloads received from peers (first copies)
	Duplicates   int64 // redundant payload copies received
	TreeForwards int64 // payloads pushed along tree links
	GossipsSent  int64
	GossipsRecv  int64
	IDsAnnounced int64 // message IDs included in sent gossips
	PullsSent    int64 // pull requests issued
	PullsServed  int64 // payloads served to pullers
	PullRetries  int64
	Reannounced  int64 // retired messages re-opened for a new neighbor

	// Anti-entropy recovery (digest-based store sync).
	SyncRequestsSent int64 // digest exchanges initiated
	SyncRequestsRecv int64
	SyncRepliesSent  int64 // non-empty reply batches served
	SyncRepliesRecv  int64
	SyncItemsSent    int64 // payloads served through sync replies
	SyncItemsRecv    int64 // payloads recovered through sync replies
	SyncBytesSent    int64 // payload bytes served through sync replies
	PullMissesSent   int64 // expired-pull indications sent to stalled pullers
	PullMissesRecv   int64

	// Coopcast (erasure-coded bulk dissemination).
	SymbolsSent       int64 // symbols pushed down tree links
	SymbolsRecv       int64 // new symbols accepted from peers
	SymbolsServed     int64 // symbols served in response to symbol pulls
	SymbolDups        int64 // redundant symbol copies received
	SymbolsRejected   int64 // symbols/adverts rejected (bad geometry or size)
	SymbolPullsSent   int64 // SymbolPull requests issued
	FECDecodes        int64 // payloads reconstructed from K-of-N symbols
	FECDecodeFailures int64 // reassemblies abandoned on decode error

	// Overlay maintenance.
	AddsSent      int64
	AddsAccepted  int64 // add requests this node accepted
	AddsRejected  int64 // add requests this node rejected
	LinkAdds      int64 // links installed at this node
	LinkDrops     int64 // links removed at this node
	Rebalances    int64 // completed random-degree rebalance operations
	PingsSent     int64
	TreeAdverts   int64
	RootTakeovers int64
	PeerDowns     int64 // transport-reported persistent channel failures

	// Churn hygiene (incarnation-numbered membership).
	StaleIncRejects   int64 // messages/entries rejected as a peer's dead past life
	ObitsRecorded     int64 // obituaries recorded (local evidence or gossip)
	ObitsHonored      int64 // entry re-learns blocked by an active obituary
	StaleLinksDropped int64 // links torn down because the peer rejoined with a higher incarnation
	RejoinsObserved   int64 // higher-incarnation entries observed for a known node
	SelfRefutes       int64 // incarnation bumps refuting a false obituary about this node
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Counters { return n.stats }
