package core

import (
	"testing"
	"testing/quick"
	"time"
)

func TestAdvertRankOrdering(t *testing.T) {
	// Higher epoch wins.
	if !rankLess(advertRank(1, 5, 9), advertRank(2, 9, 0)) {
		t.Errorf("higher epoch must outrank")
	}
	// Same epoch: smaller root wins.
	if !rankLess(advertRank(1, 9, 5), advertRank(1, 3, 0)) {
		t.Errorf("smaller root must outrank within an epoch")
	}
	// Same epoch and root: higher wave is newer.
	if !rankLess(advertRank(1, 3, 4), advertRank(1, 3, 5)) {
		t.Errorf("higher wave must outrank")
	}
	// Equal ranks are not less.
	if rankLess(advertRank(1, 3, 4), advertRank(1, 3, 4)) {
		t.Errorf("equal ranks must not compare less")
	}
}

func TestPropertyRankLessIsStrictOrder(t *testing.T) {
	f := func(e1, w1 uint32, r1 int32, e2, w2 uint32, r2 int32) bool {
		a := advertRank(e1, NodeID(r1), w1)
		b := advertRank(e2, NodeID(r2), w2)
		// Antisymmetry and totality.
		if rankLess(a, b) && rankLess(b, a) {
			return false
		}
		if a == b {
			return !rankLess(a, b)
		}
		return rankLess(a, b) || rankLess(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// chain builds nodes 1..k in a line with the given per-hop latency.
func chain(f *fixture, cfg Config, k int, hop time.Duration) []*Node {
	f.lat = func(a, b NodeID) time.Duration { return hop }
	nodes := make([]*Node, k)
	for i := 0; i < k; i++ {
		nodes[i] = f.addNode(NodeID(i+1), cfg)
	}
	for i := 0; i+1 < k; i++ {
		f.link(NodeID(i+1), NodeID(i+2), Nearby)
	}
	for _, n := range nodes {
		n.Start()
	}
	return nodes
}

func TestTreeFormsAlongShortestPath(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaintainPeriod = time.Hour // freeze topology
	f := newFixture(1)
	nodes := chain(f, cfg, 4, 50*time.Millisecond)
	nodes[0].BecomeRoot()
	f.run(5 * time.Second)
	for i := 1; i < 4; i++ {
		if p := nodes[i].Parent(); p != NodeID(i) {
			t.Errorf("node %d parent = %d, want %d", i+1, p, i)
		}
		d, ok := nodes[i].DistToRoot()
		if !ok {
			t.Fatalf("node %d not attached", i+1)
		}
		want := time.Duration(i) * 50 * time.Millisecond
		if d != want {
			t.Errorf("node %d dist = %v, want %v", i+1, d, want)
		}
	}
	// Children are symmetric to parents.
	tn := nodes[1].TreeNeighbors()
	if len(tn) != 2 {
		t.Errorf("middle node tree neighbors = %v, want parent+child", tn)
	}
	if got, ok := nodes[0].DistToRoot(); !ok || got != 0 {
		t.Errorf("root distance = %v, want 0", got)
	}
}

func TestTreePrefersLowLatencyPath(t *testing.T) {
	// Triangle: root(1)-2 slow, root(1)-3 fast, 2-3 fast. Node 2 should
	// parent via 3 when 1-3-2 is cheaper than 1-2.
	cfg := DefaultConfig()
	cfg.MaintainPeriod = time.Hour
	f := newFixture(1)
	f.lat = func(a, b NodeID) time.Duration {
		if (a == 1 && b == 2) || (a == 2 && b == 1) {
			return 200 * time.Millisecond
		}
		return 20 * time.Millisecond
	}
	n1 := f.addNode(1, cfg)
	n2 := f.addNode(2, cfg)
	n3 := f.addNode(3, cfg)
	f.link(1, 2, Nearby)
	f.link(1, 3, Nearby)
	f.link(2, 3, Nearby)
	for _, n := range []*Node{n1, n2, n3} {
		n.Start()
	}
	n1.BecomeRoot()
	f.run(5 * time.Second)
	if p := n2.Parent(); p != 3 {
		t.Fatalf("node 2 parent = %d, want 3 (cheaper two-hop path)", p)
	}
	if d, _ := n2.DistToRoot(); d != 40*time.Millisecond {
		t.Fatalf("node 2 dist = %v, want 40ms", d)
	}
}

func TestParentLossRepairsFromCachedAdverts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaintainPeriod = time.Hour
	f := newFixture(1)
	// Diamond: 1-2, 1-3, 2-4, 3-4.
	f.lat = func(a, b NodeID) time.Duration { return 30 * time.Millisecond }
	var ns []*Node
	for i := NodeID(1); i <= 4; i++ {
		ns = append(ns, f.addNode(i, cfg))
	}
	f.link(1, 2, Nearby)
	f.link(1, 3, Nearby)
	f.link(2, 4, Nearby)
	f.link(3, 4, Nearby)
	for _, n := range ns {
		n.Start()
	}
	ns[0].BecomeRoot()
	f.run(5 * time.Second)
	n4 := ns[3]
	oldParent := n4.Parent()
	if oldParent != 2 && oldParent != 3 {
		t.Fatalf("node 4 parent = %d, want 2 or 3", oldParent)
	}
	// Drop the link to the current parent: node 4 must re-attach through
	// the other side of the diamond without waiting for the next wave.
	n4.removeNeighbor(oldParent, true)
	f.run(time.Second)
	if p := n4.Parent(); p == oldParent || p == None {
		t.Fatalf("node 4 did not re-parent after link loss (parent=%d)", p)
	}
	if _, ok := n4.DistToRoot(); !ok {
		t.Fatalf("node 4 left detached despite a cached alternative")
	}
}

func TestRootStandsDownToHigherRank(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaintainPeriod = time.Hour
	f := newFixture(1)
	a := f.addNode(1, cfg)
	b := f.addNode(2, cfg)
	f.link(1, 2, Nearby)
	a.Start()
	b.Start()
	// Both promote; same epoch -> smaller ID (1) must win.
	a.BecomeRoot()
	b.BecomeRoot()
	f.run(20 * time.Second)
	if a.Root() != 1 || b.Root() != 1 {
		t.Fatalf("roots = %d, %d; want both 1", a.Root(), b.Root())
	}
	if b.Parent() != 1 {
		t.Fatalf("b parent = %d, want 1", b.Parent())
	}
}

func TestRootTimeoutPromotion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaintainPeriod = 100 * time.Millisecond
	cfg.RootTimeout = 3 * time.Second
	f := newFixture(1)
	a := f.addNode(1, cfg)
	b := f.addNode(2, cfg)
	f.link(1, 2, Nearby)
	a.Start()
	b.Start()
	a.BecomeRoot()
	f.run(5 * time.Second)
	if b.Parent() != 1 {
		t.Fatalf("setup failed: b not attached to a")
	}
	// Root dies silently; b must eventually promote itself.
	f.down[1] = true
	a.Stop()
	f.run(30 * time.Second)
	if b.Root() != 2 {
		t.Fatalf("b root = %d, want self-promotion to 2", b.Root())
	}
	if b.Stats().RootTakeovers != 1 {
		t.Fatalf("takeovers = %d, want 1", b.Stats().RootTakeovers)
	}
}

func TestTreeDisabledIgnoresAdverts(t *testing.T) {
	cfg := ProximityOverlayConfig()
	f := newFixture(1)
	a := f.addNode(1, cfg)
	b := f.addNode(2, cfg)
	f.link(1, 2, Nearby)
	a.Start()
	b.Start()
	b.HandleMessage(1, &TreeAdvert{Root: 1, Epoch: 1, Wave: 1, Dist: 0})
	if b.Parent() != None {
		t.Fatalf("tree-disabled node adopted a parent")
	}
	if _, ok := b.DistToRoot(); ok {
		t.Fatalf("tree-disabled node has a root distance")
	}
}

func TestAdvertFromNonNeighborIgnored(t *testing.T) {
	f := newFixture(1)
	a := f.addNode(1, DefaultConfig())
	a.Start()
	a.HandleMessage(77, &TreeAdvert{Root: 77, Epoch: 5, Wave: 1, Dist: 0})
	if a.Parent() != None || a.Root() == 77 {
		t.Fatalf("advert over a non-existent link was honored")
	}
}

func TestStaleWaveIgnored(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaintainPeriod = time.Hour
	f := newFixture(1)
	nodes := chain(f, cfg, 2, 10*time.Millisecond)
	nodes[0].BecomeRoot()
	f.run(20 * time.Second) // at least two waves
	b := nodes[1]
	d0, _ := b.DistToRoot()
	// Replay an old wave with a tempting distance; it must be ignored.
	b.HandleMessage(1, &TreeAdvert{Root: 1, Epoch: b.treeEpoch, Wave: 0, Dist: 0})
	if d, _ := b.DistToRoot(); d != d0 {
		t.Fatalf("stale wave changed distance: %v -> %v", d0, d)
	}
}
