package core

import (
	"time"

	"gocast/internal/store"
)

// Config holds the GoCast protocol parameters. DefaultConfig returns the
// values recommended by the paper; the named constructors build the
// protocol variants evaluated in Section 3.
type Config struct {
	// CRand is the target number of random neighbors (paper: 1).
	CRand int
	// CNear is the target number of proximity-selected neighbors (paper: 5).
	CNear int
	// DegreeSlack is how far above target a node lets its degree grow
	// before refusing new links (paper: accept while D < C + 5).
	DegreeSlack int
	// C1Lower tunes condition C1: a nearby neighbor qualifies as
	// droppable only while D_near(U) >= C_near - C1Lower. The paper uses
	// 1 and discusses why 0 (requiring D_near(U) >= C_near) produces a
	// dramatically worse overlay.
	C1Lower int
	// DropTrigger is how far above C_near the nearby degree must grow
	// before excess links are dropped. The paper uses 2 (letting degrees
	// stabilize at C or C+1) and reports that the aggressive value 1
	// increases link changes by about a third.
	DropTrigger int
	// ReplaceRatio is condition C4: a candidate replaces the worst
	// neighbor only if RTT(X,Q) <= ReplaceRatio * RTT(X,U). The paper
	// uses 1/2 to avoid futile minor adaptations.
	ReplaceRatio float64

	// GossipPeriod is t: every t the node sends a summary to one overlay
	// neighbor chosen round-robin (paper: 0.1 s).
	GossipPeriod time.Duration
	// MaintainPeriod is r: the overlay adaptation cycle (paper: 0.1 s).
	MaintainPeriod time.Duration
	// HeartbeatPeriod is how often the root floods a tree wave (paper: 15 s).
	HeartbeatPeriod time.Duration
	// PullDelay is f: on learning a message ID from a gossip, wait until
	// the message is at least f old before pulling it, giving the tree
	// time to deliver it first (paper recommends the 90th-percentile tree
	// delay, 0.3 s for 1,024 nodes; 0 disables the optimization).
	PullDelay time.Duration
	// PullRetry is how long to wait for a pulled payload before asking
	// another holder.
	PullRetry time.Duration
	// ReclaimAfter is b: how long after gossiping a message ID to the last
	// neighbor the payload buffer is retained for pull requests
	// (paper: 2 min).
	ReclaimAfter time.Duration
	// StoreMaxMessages caps the message store's live payload count; the
	// oldest buffered payloads are evicted first (0 = store default,
	// negative = unlimited).
	StoreMaxMessages int
	// StoreMaxBytes caps the message store's total payload bytes
	// (0 = store default, negative = unlimited).
	StoreMaxBytes int64
	// SyncInterval is the background anti-entropy period: every interval
	// the node exchanges store digests with one overlay neighbor chosen
	// round-robin and recovers anything missing. 0 selects the default
	// (30 s); a negative value disables the sync protocol entirely,
	// including the rejoin-, heal-, and expired-pull-triggered rounds.
	SyncInterval time.Duration
	// SyncBatchBytes caps payload bytes per SyncReply, pacing recovery so
	// a rejoining node cannot be flooded (0 = default 256 KiB).
	SyncBatchBytes int
	// CoopcastThreshold enables erasure-coded bulk dissemination: payloads
	// of at least this many bytes are split into K source + R repair
	// symbols, striped across tree links, and repaired by per-symbol
	// gossip pulls instead of whole-payload transfers. 0 (the default)
	// disables coopcast entirely — every payload takes the classic
	// whole-message path.
	CoopcastThreshold int
	// FECSymbolSize is the target erasure-coding symbol size in bytes for
	// coopcast messages (0 = default 1024). The actual symbol size is
	// re-derived per message once K is fixed, and K+R is capped at the
	// coder's 256-symbol limit, so very large payloads get proportionally
	// larger symbols.
	FECSymbolSize int
	// FECRepair is R, the number of repair symbols added per coopcast
	// message; any K of the K+R symbols reconstruct the payload. 0 is
	// valid (no redundancy: every source symbol must eventually arrive);
	// negative values are normalized to the default 2.
	FECRepair int
	// DegradedIntervalScale is the factor by which an overloaded node
	// (OverloadDegraded or OverloadShedding, see SetOverload) stretches
	// its periodic gossip and sync intervals, reducing the traffic it
	// generates while it catches up (0 = default 4; 1 disables
	// stretching).
	DegradedIntervalScale int
	// NeighborTimeout declares an overlay neighbor dead when nothing has
	// been heard from it for this long (gossips act as keepalives).
	NeighborTimeout time.Duration
	// QuarantineWindow is how long an obituaried (dead or departed)
	// incarnation stays quarantined: entries at or below the obituary's
	// incarnation are not re-learned from in-flight gossip during the
	// window. A rejoin with a higher incarnation passes immediately.
	QuarantineWindow time.Duration
	// RootTimeout triggers root takeover when no new tree wave arrives for
	// this long.
	RootTimeout time.Duration

	// TraceSampleEvery enables causal dissemination tracing: every Nth
	// locally injected multicast (by sequence number) carries a sampled
	// hop context, and every node it touches records dtrace spans for it
	// (given an installed SpanObserver). 0 — the default — disables
	// sampling entirely; the hot path then pays one branch per receive.
	// 1 traces every message.
	TraceSampleEvery int

	// EnableTree turns tree construction and tree forwarding on. The
	// "proximity overlay" and "random overlay" baselines disable it and
	// disseminate through neighbor gossip only.
	EnableTree bool

	// MemberViewSize bounds the partial membership view (paper cites
	// lpbcast-style partial views).
	MemberViewSize int
	// MemberSampleSize is how many membership entries piggyback on each
	// gossip.
	MemberSampleSize int
	// LandmarkCount is how many landmark nodes anchor triangulated latency
	// estimation.
	LandmarkCount int

	// NewStore, when non-nil, constructs the node's message store instead
	// of the default bounded in-memory implementation — the hook for
	// alternative backends and instrumented test doubles.
	NewStore func(store.Limits) store.MessageStore
}

// DefaultConfig returns the paper's recommended parameters for the complete
// GoCast protocol.
func DefaultConfig() Config {
	return Config{
		CRand:                 1,
		CNear:                 5,
		DegreeSlack:           5,
		C1Lower:               1,
		DropTrigger:           2,
		ReplaceRatio:          0.5,
		GossipPeriod:          100 * time.Millisecond,
		MaintainPeriod:        100 * time.Millisecond,
		HeartbeatPeriod:       15 * time.Second,
		PullDelay:             0,
		PullRetry:             time.Second,
		ReclaimAfter:          2 * time.Minute,
		SyncInterval:          30 * time.Second,
		SyncBatchBytes:        256 << 10,
		FECSymbolSize:         1024,
		FECRepair:             2,
		DegradedIntervalScale: 4,
		NeighborTimeout:       5 * time.Second,
		QuarantineWindow:      30 * time.Second,
		RootTimeout:           40 * time.Second,
		EnableTree:            true,
		MemberViewSize:        96,
		MemberSampleSize:      3,
		LandmarkCount:         8,
	}
}

// ProximityOverlayConfig returns the "proximity overlay" baseline: the
// GoCast overlay (1 random + 5 nearby neighbors) with the tree disabled;
// messages propagate only through gossips between overlay neighbors.
func ProximityOverlayConfig() Config {
	c := DefaultConfig()
	c.EnableTree = false
	return c
}

// RandomOverlayConfig returns the "random overlay" baseline: 6 random
// neighbors, no proximity awareness, tree disabled.
func RandomOverlayConfig() Config {
	c := DefaultConfig()
	c.EnableTree = false
	c.CRand = 6
	c.CNear = 0
	return c
}

// TargetDegree returns CRand + CNear.
func (c Config) TargetDegree() int { return c.CRand + c.CNear }

// validate normalizes pathological values so a zero-ish config cannot hang
// the node (tests construct partial configs).
func (c Config) validate() Config {
	if c.GossipPeriod <= 0 {
		c.GossipPeriod = 100 * time.Millisecond
	}
	if c.MaintainPeriod <= 0 {
		c.MaintainPeriod = 100 * time.Millisecond
	}
	if c.HeartbeatPeriod <= 0 {
		c.HeartbeatPeriod = 15 * time.Second
	}
	if c.PullRetry <= 0 {
		c.PullRetry = time.Second
	}
	if c.ReclaimAfter <= 0 {
		c.ReclaimAfter = 2 * time.Minute
	}
	if c.SyncInterval == 0 {
		c.SyncInterval = 30 * time.Second
	}
	if c.SyncBatchBytes <= 0 {
		c.SyncBatchBytes = 256 << 10
	}
	if c.DegradedIntervalScale <= 0 {
		c.DegradedIntervalScale = 4
	}
	if c.CoopcastThreshold < 0 {
		c.CoopcastThreshold = 0
	}
	if c.TraceSampleEvery < 0 {
		c.TraceSampleEvery = 0
	}
	if c.FECSymbolSize <= 0 {
		c.FECSymbolSize = 1024
	}
	if c.FECRepair < 0 {
		c.FECRepair = 2
	}
	if c.NeighborTimeout <= 0 {
		c.NeighborTimeout = 5 * time.Second
	}
	if c.QuarantineWindow <= 0 {
		c.QuarantineWindow = 30 * time.Second
	}
	if c.RootTimeout <= 0 {
		c.RootTimeout = 40 * time.Second
	}
	if c.MemberViewSize <= 0 {
		c.MemberViewSize = 96
	}
	if c.MemberSampleSize < 0 {
		c.MemberSampleSize = 0
	}
	if c.DegreeSlack <= 0 {
		c.DegreeSlack = 5
	}
	if c.C1Lower < 0 {
		c.C1Lower = 0
	}
	if c.DropTrigger < 1 {
		c.DropTrigger = 2
	}
	if c.ReplaceRatio <= 0 || c.ReplaceRatio > 1 {
		c.ReplaceRatio = 0.5
	}
	if c.CRand < 0 {
		c.CRand = 0
	}
	if c.CNear < 0 {
		c.CNear = 0
	}
	if c.LandmarkCount < 0 {
		c.LandmarkCount = 0
	}
	return c
}
