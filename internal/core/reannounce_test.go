package core

import (
	"testing"
	"time"
)

// TestReannounceToLateNeighbor models the dissemination side of a healed
// partition: a message that was fully announced (and therefore retired)
// while a node was unreachable must still reach that node when a link is
// installed later. Retired messages are not re-opened for gossip — the
// new link triggers a watermark digest sync, which carries the payload.
func TestReannounceToLateNeighbor(t *testing.T) {
	f := newFixture(11)
	cfg := DefaultConfig()
	a := f.addNode(1, cfg)
	b := f.addNode(2, cfg)
	c := f.addNode(3, cfg)
	for _, n := range []*Node{a, b, c} {
		n.Start()
	}
	a.BecomeRoot()
	f.link(1, 2, Random)

	id := a.Multicast([]byte("before-heal"))
	f.run(3 * time.Second)
	if !b.Seen(id) {
		t.Fatalf("linked neighbor never received the multicast")
	}
	if c.Seen(id) {
		t.Fatalf("isolated node received the multicast with no link")
	}
	if st := a.seen[pid(id)]; st == nil || !st.announceDone {
		t.Fatalf("message not retired at the source; the test setup is wrong")
	}

	// The "heal": node 3 becomes a neighbor of the source well after the
	// message was retired.
	f.link(1, 3, Random)
	f.run(5 * time.Second)
	if !c.Seen(id) {
		t.Fatalf("late neighbor never received the retired message")
	}
	if c.Stats().SyncItemsRecv == 0 {
		t.Fatalf("heal did not go through digest sync")
	}
}

// TestReannounceScrubsStaleAnnouncedTo covers the re-linked-peer case: an
// announcement of a still-in-flight message sent over a link that broke
// may never have arrived, so when the same peer is linked again the
// message must be announced once more.
func TestReannounceScrubsStaleAnnouncedTo(t *testing.T) {
	f := newFixture(12)
	cfg := DefaultConfig()
	cfg.SyncInterval = -1 // pin the gossip path; sync would also reconcile
	a := f.addNode(1, cfg)
	b := f.addNode(2, cfg)
	a.Start()
	b.Start()
	a.BecomeRoot()

	// The message is still in flight (a has no neighbors, so it cannot
	// retire), but a believes it already told 2 over a link that broke:
	// peer 2 holds a retired slot whose announced/heard bits are still set.
	id := a.Multicast([]byte("x"))
	st := a.seen[pid(id)]
	slot := a.allocSlot(2)
	st.announcedMask = 1 << slot
	st.heardMask = 1 << slot
	a.retireSlot(2, slot)

	// Re-linking the peer must scrub both stale marks so the next gossip
	// announces the message once more and b can pull it.
	f.link(1, 2, Random)
	f.run(3 * time.Second)
	if st.announcedMask&(1<<slot) != 0 && !b.Seen(id) {
		t.Fatalf("stale announced mark not scrubbed on re-link")
	}
	if !b.Seen(id) {
		t.Fatalf("re-linked peer never recovered the lost announcement")
	}
	if a.Stats().Reannounced == 0 {
		t.Fatalf("Reannounced counter not incremented")
	}
}

// TestStalePingExpiryKeepsAnsweredMember checks that a ping swallowed by a
// transient fault does not evict a member that answered a later ping.
func TestStalePingExpiryKeepsAnsweredMember(t *testing.T) {
	f := newFixture(13)
	a := f.addNode(1, DefaultConfig())
	a.learnEntry(Entry{ID: 2})

	// Advance the simulated clock past the ping timeout (the engine's clock
	// only moves through events).
	a.env.After(pingTimeout+time.Second, func() {})
	f.run(pingTimeout + time.Second)

	// A stale ping context that predates a successful pong must not evict.
	a.lastPong[2] = a.env.Now()
	a.pings[1] = &pingCtx{target: 2, purpose: pingProbeReplace, sentAt: 0}
	a.expirePings()
	if !a.members.has(2) {
		t.Fatalf("member evicted despite a pong newer than the stale ping")
	}
	if len(a.pings) != 0 {
		t.Fatalf("stale ping context not discarded")
	}

	// Control: with no fresh pong the same stale context does evict.
	delete(a.lastPong, 2)
	a.pings[2] = &pingCtx{target: 2, purpose: pingProbeReplace, sentAt: 0}
	a.expirePings()
	if a.members.has(2) {
		t.Fatalf("member not evicted for an unanswered stale ping")
	}
}
