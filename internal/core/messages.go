package core

import (
	"time"

	"gocast/internal/store"
)

// Message is the union of all GoCast protocol messages. WireSize returns an
// approximate serialized size in bytes, used by the link-stress experiments
// to account traffic on underlay links.
type Message interface {
	Kind() MsgKind
	WireSize() int
}

// MsgKind enumerates protocol message types.
type MsgKind uint8

// Message kinds.
const (
	KindJoinRequest MsgKind = iota + 1
	KindJoinReply
	KindPing
	KindPong
	KindAddRequest
	KindAddReply
	KindDrop
	KindRebalance
	KindRebalanceReply
	KindGossip
	KindPullRequest
	KindMulticast
	KindTreeAdvert
	KindTreeParent
	KindTreeAdvertReq
	KindSyncRequest
	KindSyncReply
	KindPullMiss
	KindSymbol
	KindSymbolPull
)

const (
	entryWire  = 20 // id + incarnation + addr ref + landmark vector, approximate
	headerWire = 8  // kind + sender + framing, approximate
	obitWire   = 8  // id + incarnation
	hopWire    = 10 // trace hop context: flags + hop count + origin stamp
)

// Hop is the per-message trace context carried by payload-bearing wire
// messages (Multicast, GossipID, SyncItem, Symbol). For unsampled
// messages — the overwhelming majority — it is all zeros and costs one
// branch on the receive path. When a multicast is sampled for
// dissemination tracing, Sampled is set at the origin and every node
// that stores the message re-stamps outgoing copies with its own hop
// count + 1, so receivers know their overlay depth and record trace
// spans (see internal/dtrace).
type Hop struct {
	// Sampled marks the message as traced; nodes holding a span observer
	// record spans for it.
	Sampled bool
	// Hops is how many overlay hops the carrying message has traveled
	// when it arrives: 1 on a copy sent by the origin, each relay stamps
	// its own arrival count plus one.
	Hops uint8
	// Origin is the origin node's clock at inject, meaningful where
	// clocks are comparable (netsim virtual time); live stitching relies
	// on the skew-free Age instead.
	Origin time.Duration
}

// Degrees is the sender's current degree information, piggybacked on most
// messages so neighbors can evaluate the maintenance conditions (Section
// 2.2) without extra round trips.
type Degrees struct {
	Rand int16
	Near int16
	// MaxNearbyRTT is the largest RTT between the sender and its nearby
	// neighbors (condition C3); zero when it has none.
	MaxNearbyRTT time.Duration
}

func degreesWire() int { return 8 }

// JoinRequest asks a contact node for its membership view.
type JoinRequest struct {
	From Entry
}

func (*JoinRequest) Kind() MsgKind { return KindJoinRequest }
func (m *JoinRequest) WireSize() int {
	return headerWire + entryWire
}

// JoinReply returns the contact's member list and the landmark set.
type JoinReply struct {
	Members   []Entry
	Landmarks []Entry
	Root      NodeID
}

func (*JoinReply) Kind() MsgKind { return KindJoinReply }
func (m *JoinReply) WireSize() int {
	return headerWire + entryWire*(len(m.Members)+len(m.Landmarks)) + 4
}

// Ping measures RTT and requests the target's degree information
// (datagram; works between non-neighbors).
type Ping struct {
	From  Entry
	Nonce uint32
}

func (*Ping) Kind() MsgKind { return KindPing }
func (*Ping) WireSize() int { return headerWire + entryWire + 4 }

// Pong answers a Ping with the responder's degrees.
type Pong struct {
	From    Entry
	Nonce   uint32
	Degrees Degrees
}

func (*Pong) Kind() MsgKind { return KindPong }
func (*Pong) WireSize() int { return headerWire + entryWire + 4 + degreesWire() }

// AddRequest asks the receiver to become the sender's neighbor over a link
// of the given kind. RTT is the sender-measured round-trip time of the
// prospective link so the receiver can evaluate condition C3 and cache the
// link latency.
type AddRequest struct {
	From     Entry
	LinkKind LinkKind
	RTT      time.Duration
	Degrees  Degrees
	// ForRebalance marks links created by the random-degree rebalancing
	// operation (Section 2.2.2, operation 1).
	ForRebalance bool
}

func (*AddRequest) Kind() MsgKind { return KindAddRequest }
func (*AddRequest) WireSize() int { return headerWire + entryWire + 1 + 8 + degreesWire() + 1 }

// AddReply accepts or rejects an AddRequest.
type AddReply struct {
	From         Entry
	LinkKind     LinkKind
	Accepted     bool
	RTT          time.Duration
	Degrees      Degrees
	ForRebalance bool
}

func (*AddReply) Kind() MsgKind { return KindAddReply }
func (*AddReply) WireSize() int { return headerWire + entryWire + 2 + 8 + degreesWire() + 1 }

// Drop tears down the overlay link between sender and receiver. Departing
// marks a graceful leave: the receiver records an obituary so the departed
// member is quarantined, not just unlinked, and the obituary spreads to the
// rest of the group via gossip piggyback.
type Drop struct {
	Degrees   Degrees
	Departing bool
}

func (*Drop) Kind() MsgKind { return KindDrop }
func (*Drop) WireSize() int { return headerWire + degreesWire() + 1 }

// Rebalance implements operation 1 of random-degree maintenance: X (the
// sender) asks its random neighbor Y (the receiver) to establish a random
// link to Z (Target); on success X drops its links to both Y and Z,
// reducing X's random degree by two without changing Y's or Z's.
type Rebalance struct {
	Target Entry
}

func (*Rebalance) Kind() MsgKind { return KindRebalance }
func (*Rebalance) WireSize() int { return headerWire + entryWire }

// RebalanceReply reports whether Y established the link to Target.
type RebalanceReply struct {
	Target NodeID
	OK     bool
}

func (*RebalanceReply) Kind() MsgKind { return KindRebalanceReply }
func (*RebalanceReply) WireSize() int { return headerWire + 5 }

// GossipID is one message summary inside a gossip: the message ID plus the
// estimated time elapsed since the message was injected, which receivers
// use to delay pulls until the message had a chance to arrive via the tree.
type GossipID struct {
	ID  MessageID
	Age time.Duration
	// Hop carries the trace context so pull-path recovery of sampled
	// messages stays traceable end to end.
	Hop Hop
}

// Gossip is the periodic summary a node sends to one overlay neighbor
// (round-robin, every GossipPeriod). It carries the IDs of messages
// received since the last gossip to that neighbor (excluding those heard
// from it), a sample of membership entries, and the sender's degrees. It
// also serves as a keepalive on the link.
type Gossip struct {
	IDs     []GossipID
	Members []Entry
	Degrees Degrees
	// Obits piggybacks the sender's active departure obituaries so
	// quarantine of gracefully-departed members spreads epidemically rather
	// than staying neighbor-local.
	Obits []Obituary
	// Syms advertises the sender's symbol-granular (coopcast) messages:
	// the coding geometry plus a bitmap of the symbols it holds, so
	// receivers can pull exactly the symbols they miss.
	Syms []SymbolAdvert
}

func (*Gossip) Kind() MsgKind { return KindGossip }
func (m *Gossip) WireSize() int {
	return headerWire + (12+hopWire)*len(m.IDs) + entryWire*len(m.Members) + degreesWire() +
		obitWire*len(m.Obits) + symAdvertWire*len(m.Syms)
}

// Obituary announces that a specific incarnation of a node is dead or has
// departed; receivers quarantine entries at or below that incarnation for
// QuarantineWindow so stale gossip cannot resurrect the member.
type Obituary struct {
	ID  NodeID
	Inc uint32
}

// PullRequest asks the receiver (a gossip sender) for the payloads of
// messages the sender has not received.
type PullRequest struct {
	IDs []MessageID
}

func (*PullRequest) Kind() MsgKind   { return KindPullRequest }
func (m *PullRequest) WireSize() int { return headerWire + 8*len(m.IDs) }

// Multicast carries a multicast message payload, either forwarded along a
// tree link or served in response to a PullRequest.
type Multicast struct {
	ID MessageID
	// Age is the estimated time elapsed since the message was injected at
	// its source, accumulated hop by hop.
	Age     time.Duration
	Payload []byte
	// ViaTree is true for unconditional tree forwarding, false for pull
	// responses.
	ViaTree bool
	// Hop is the dissemination trace context (zero unless sampled).
	Hop Hop
}

func (*Multicast) Kind() MsgKind   { return KindMulticast }
func (m *Multicast) WireSize() int { return headerWire + 8 + 8 + 1 + hopWire + len(m.Payload) }

// TreeAdvert propagates root distance information. The root floods a new
// Wave every heartbeat period; every node adopts as parent the neighbor
// offering the lowest latency path to the root and re-advertises. Epochs
// order root takeovers.
type TreeAdvert struct {
	Root  NodeID
	Epoch uint32
	Wave  uint32
	// Dist is the advertised latency from the sender to the root.
	Dist time.Duration
}

func (*TreeAdvert) Kind() MsgKind { return KindTreeAdvert }
func (*TreeAdvert) WireSize() int { return headerWire + 4 + 4 + 4 + 8 }

// TreeParent tells a neighbor it became (On) or stopped being (Off) the
// sender's tree parent, maintaining the receiver's children set.
type TreeParent struct {
	On bool
}

func (*TreeParent) Kind() MsgKind { return KindTreeParent }
func (*TreeParent) WireSize() int { return headerWire + 1 }

// TreeAdvertReq asks a neighbor for its current tree advertisement; sent
// by a node whose parent link vanished, so it can re-attach without
// waiting for the next heartbeat wave (a DVMRP-style triggered update).
type TreeAdvertReq struct{}

func (*TreeAdvertReq) Kind() MsgKind { return KindTreeAdvertReq }
func (*TreeAdvertReq) WireSize() int { return headerWire }

// SyncRequest opens one round of anti-entropy reconciliation: the sender
// summarizes its message store as per-source [low, high] sequence
// watermarks and asks the receiver for everything it holds beyond them.
// Sent on rejoin, on partition heal (new overlay link), periodically at
// low frequency between overlay neighbors, and as the fallback after an
// expired pull.
type SyncRequest struct {
	Ranges []store.SourceRange
}

func (*SyncRequest) Kind() MsgKind   { return KindSyncRequest }
func (m *SyncRequest) WireSize() int { return headerWire + 12*len(m.Ranges) }

// SyncItem is one recovered message inside a SyncReply.
type SyncItem struct {
	ID      MessageID
	Age     time.Duration
	Payload []byte
	// Hop is the dissemination trace context (zero unless sampled).
	Hop Hop
}

// SyncReply returns the payloads the requester's digest was missing,
// bounded per reply by the responder's SyncBatchBytes budget. More marks a
// truncated batch: the requester issues a fresh SyncRequest (its digest
// now advanced) until a reply arrives with More unset, which paces the
// transfer request-by-request. Symbol-granular (coopcast) messages are
// paged symbol by symbol through Syms under the same byte budget, so
// catch-up transfers stop at symbol granularity instead of whole payloads.
type SyncReply struct {
	Items []SyncItem
	Syms  []Symbol
	More  bool
}

func (*SyncReply) Kind() MsgKind { return KindSyncReply }
func (m *SyncReply) WireSize() int {
	n := headerWire + 1
	for _, it := range m.Items {
		n += 8 + 8 + 4 + hopWire + len(it.Payload)
	}
	for i := range m.Syms {
		n += symbolWire + len(m.Syms[i].Data)
	}
	return n
}

// PullMiss answers the part of a PullRequest the responder can no longer
// serve — IDs whose payload was reclaimed, evicted, or never held. An
// explicit miss lets the puller advance to another holder immediately (or
// fall back to sync) instead of waiting out its retry timer.
type PullMiss struct {
	IDs []MessageID
}

func (*PullMiss) Kind() MsgKind   { return KindPullMiss }
func (m *PullMiss) WireSize() int { return headerWire + 8*len(m.IDs) }

const (
	// symbolWire is a Symbol's fixed overhead: ID + age + index/K/N +
	// payload length + data length prefix + via-tree flag + trace hop
	// context, approximate.
	symbolWire = 8 + 8 + 6 + 4 + 4 + 1 + hopWire
	// symAdvertWire is one SymbolAdvert: ID + age + geometry + bitmap.
	symAdvertWire = 8 + 8 + 8 + 8*store.SymbolWords
)

// Symbol carries one erasure-coded symbol of a coopcast (bulk) message —
// pushed down a tree link (ViaTree), served in response to a SymbolPull,
// or paged inside a SyncReply. Indexes below K are systematic source
// symbols; the rest are repair symbols. Every holder derives the uniform
// symbol size as ceil(PayloadLen/K); it is never transmitted.
type Symbol struct {
	ID MessageID
	// Age is the estimated time since the message was injected at its
	// source, accumulated hop by hop like Multicast.Age.
	Age        time.Duration
	Index      uint16
	K, N       uint16
	PayloadLen uint32
	Data       []byte
	ViaTree    bool
	// Hop is the dissemination trace context (zero unless sampled).
	Hop Hop
}

func (*Symbol) Kind() MsgKind   { return KindSymbol }
func (m *Symbol) WireSize() int { return headerWire + symbolWire + len(m.Data) }

// SymbolPull asks a holder (learned from a gossip SymbolAdvert) for the
// Want-marked symbols of one coopcast message. Unlike PullRequest, which
// fetches whole payloads, a symbol pull transfers only the missing
// fraction — repair cost is per-symbol, not per-payload.
type SymbolPull struct {
	ID   MessageID
	Want store.SymbolSet
}

func (*SymbolPull) Kind() MsgKind   { return KindSymbolPull }
func (m *SymbolPull) WireSize() int { return headerWire + 8 + 8*store.SymbolWords }

// SymbolAdvert is one coopcast entry in a gossip summary: the message's
// coding geometry plus the bitmap of symbols the sender currently holds.
// Incomplete holders re-advertise every round (their bitmap grows), so
// neighbors always know where to pull missing symbols from.
type SymbolAdvert struct {
	ID         MessageID
	Age        time.Duration
	K, N       uint16
	PayloadLen uint32
	Have       store.SymbolSet
}
