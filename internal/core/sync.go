package core

import (
	"time"

	"gocast/internal/store"
)

// Digest-based anti-entropy sync. Gossip summaries announce each message ID
// at most once per neighbor, so a node that was down, partitioned away, or
// whose pulls expired can miss messages with no remaining path to them.
// Sync closes that gap: the requester summarizes its store as per-source
// [low, high] watermark ranges and the responder streams back everything it
// holds beyond them, paced by a per-reply byte budget.
//
// Rounds are triggered on rejoin (the join contact is the first sync peer),
// on partition heal (a new overlay link re-opens announcements AND digests),
// after an expired pull exhausts its holders, and periodically at low
// frequency between overlay neighbors as a safety net.

// syncEnabled reports whether the sync protocol is active. validate() maps
// SyncInterval 0 to the default, so only an explicitly negative interval
// disables sync.
func (n *Node) syncEnabled() bool { return n.cfg.SyncInterval > 0 }

// syncTick runs the periodic background round against one overlay neighbor
// chosen round-robin.
func (n *Node) syncTick() {
	if !n.running {
		return
	}
	n.syncTimer = n.env.After(n.scaledSyncInterval(), n.tickSync)
	if len(n.neighborOrder) == 0 {
		return
	}
	if n.syncIdx >= len(n.neighborOrder) {
		n.syncIdx = 0
	}
	peer := n.neighborOrder[n.syncIdx]
	n.syncIdx = (n.syncIdx + 1) % len(n.neighborOrder)
	n.requestSync(peer, false)
}

// requestSync initiates one sync round with peer. Non-forced requests are
// rate-limited to one per SyncInterval per peer so event triggers (link
// adds during overlay adaptation) cannot flood; forced requests (rejoin,
// expired-pull fallback, More-loop continuation) always go out.
func (n *Node) requestSync(peer NodeID, force bool) {
	if !n.syncEnabled() || peer == n.id || peer == None {
		return
	}
	now := n.env.Now()
	if !force {
		if last, ok := n.lastSyncTo[peer]; ok && now-last < n.cfg.SyncInterval {
			return
		}
	}
	n.lastSyncTo[peer] = now
	n.stats.SyncRequestsSent++
	// The outgoing digest must be freshly allocated: Send may deliver
	// asynchronously (netsim holds the message until its event fires), so
	// a scratch slice reused here would be mutated under the request.
	n.env.Send(peer, &SyncRequest{Ranges: n.store.Digest()})
}

// digestAppender is the optional store fast path: summarize into a
// retained scratch slice instead of allocating per call.
type digestAppender interface {
	DigestAppend([]store.SourceRange) []store.SourceRange
}

// localDigest returns this node's watermark digest for transient,
// same-event use only (compared and discarded before returning to the
// event loop). The slice is node-owned scratch: it must never be sent or
// retained past the current handler.
func (n *Node) localDigest() []store.SourceRange {
	if da, ok := n.store.(digestAppender); ok {
		n.digestScratch = da.DigestAppend(n.digestScratch[:0])
		return n.digestScratch
	}
	return n.store.Digest()
}

// handleSyncRequest serves one reply batch: everything this node's store
// holds beyond the requester's watermarks, oldest sources first, truncated
// at SyncBatchBytes of payload (but always at least one item, so progress
// is guaranteed). A truncated reply carries More=true and the requester
// comes back with an advanced digest — the transfer paces itself
// request-by-request, bounding the burst a recovering node (or this
// responder) must absorb.
func (n *Node) handleSyncRequest(from NodeID, m *SyncRequest) {
	n.stats.SyncRequestsRecv++
	missing := store.Missing(n.localDigest(), m.Ranges)
	if len(missing) == 0 {
		return
	}
	var items []SyncItem
	var syms []Symbol
	budget := n.cfg.SyncBatchBytes
	more := false
	for _, r := range missing {
		if more {
			break
		}
		n.store.Range(r.Source, r.Low, r.High, func(id store.ID, payload []byte) bool {
			mID := mid(id)
			var age time.Duration
			st := n.seen[pid(mID)]
			if st != nil {
				age = n.ageOf(st)
			}
			if meta, _, ok := n.store.SymbolInfo(id); payload == nil && ok {
				// Symbol-granular (coopcast) record: page its symbols
				// individually under the same byte budget. The requester
				// reassembles through the normal symbol path; transfers
				// truncate at symbol granularity, not whole payloads.
				// (A nil payload with no symbol info is a legitimately
				// empty whole message and takes the item path below.)
				n.store.RangeSymbols(id, func(idx int, data []byte) bool {
					if (len(items) > 0 || len(syms) > 0) && len(data) > budget {
						more = true
						return false
					}
					syms = append(syms, Symbol{
						ID: mID, Age: age, Index: uint16(idx),
						K: meta.K, N: meta.N, PayloadLen: meta.PayloadLen,
						Data: data, Hop: n.hopOf(st),
					})
					budget -= len(data)
					return true
				})
				return !more
			}
			if (len(items) > 0 || len(syms) > 0) && len(payload) > budget {
				more = true
				return false
			}
			if st != nil {
				// The requester holds the payload once the reply lands;
				// never gossip-announce this ID back to it.
				st.heardMask |= n.slotBit(from)
			}
			items = append(items, SyncItem{ID: mID, Age: age, Payload: payload, Hop: n.hopOf(st)})
			budget -= len(payload)
			return true
		})
	}
	if len(items) == 0 && len(syms) == 0 {
		return
	}
	var pageBytes int64
	for _, it := range items {
		pageBytes += int64(len(it.Payload))
	}
	for i := range syms {
		pageBytes += int64(len(syms[i].Data))
	}
	n.stats.SyncRepliesSent++
	n.stats.SyncItemsSent += int64(len(items) + len(syms))
	n.stats.SyncBytesSent += pageBytes
	if n.obs != nil {
		n.obs.ObserveSyncPage(len(items)+len(syms), pageBytes)
	}
	n.env.Send(from, &SyncReply{Items: items, Syms: syms, More: more})
}

// handleSyncReply ingests recovered payloads. Each item goes through the
// normal multicast receive path, which deduplicates, delivers to the
// application, forwards along tree links, and cancels any outstanding pull
// for the same ID. More=true means the responder truncated the batch: ask
// again immediately — the advanced digest shifts the window forward.
func (n *Node) handleSyncReply(from NodeID, m *SyncReply) {
	n.stats.SyncRepliesRecv++
	for _, it := range m.Items {
		if _, dup := n.seen[pid(it.ID)]; !dup {
			n.stats.SyncItemsRecv++
		}
		n.receiveMulticast(from, &Multicast{ID: it.ID, Age: it.Age, Payload: it.Payload, Hop: it.Hop}, true)
	}
	for i := range m.Syms {
		s := m.Syms[i]
		if st, ok := n.seen[pid(s.ID)]; !ok || st.sym != nil && !st.sym.have.Has(int(s.Index)) {
			n.stats.SyncItemsRecv++
		}
		n.handleSymbol(from, &s)
	}
	if m.More {
		n.requestSync(from, true)
	}
}
