package core

// memberTable is the partial view's backing store: a dense entry slice
// for scan- and sample-heavy access plus a position index for O(1)
// lookup. The previous representation (map[NodeID]Entry plus a separate
// scan-order slice) paid a map lookup per visited element on every
// gossip sample and an O(N) slice splice on every removal; here sampling
// walks the dense slice directly and removal is a swap with the last
// element. Slice order is deterministic for a given operation history
// but is NOT insertion order once anything has been removed.
type memberTable struct {
	entries []Entry
	pos     map[NodeID]int32
}

func newMemberTable() memberTable {
	return memberTable{pos: make(map[NodeID]int32)}
}

func (t *memberTable) len() int { return len(t.entries) }

// get returns the entry for id, if present.
func (t *memberTable) get(id NodeID) (Entry, bool) {
	if i, ok := t.pos[id]; ok {
		return t.entries[i], true
	}
	return Entry{}, false
}

// has reports whether id is in the view without copying the entry.
func (t *memberTable) has(id NodeID) bool {
	_, ok := t.pos[id]
	return ok
}

// ptr returns a pointer for in-place update, nil if absent. The pointer
// is invalidated by any set or remove.
func (t *memberTable) ptr(id NodeID) *Entry {
	if i, ok := t.pos[id]; ok {
		return &t.entries[i]
	}
	return nil
}

// at returns the entry at dense index i (0 <= i < len).
func (t *memberTable) at(i int) Entry { return t.entries[i] }

// set inserts or replaces the entry for e.ID.
func (t *memberTable) set(e Entry) {
	if i, ok := t.pos[e.ID]; ok {
		t.entries[i] = e
		return
	}
	t.pos[e.ID] = int32(len(t.entries))
	t.entries = append(t.entries, e)
}

// remove deletes id by swapping the last entry into its slot. It returns
// the dense index the removal happened at (-1 if id was absent) so
// callers can fix up any cursor into the slice.
func (t *memberTable) remove(id NodeID) int {
	i, ok := t.pos[id]
	if !ok {
		return -1
	}
	last := len(t.entries) - 1
	if int(i) != last {
		moved := t.entries[last]
		t.entries[i] = moved
		t.pos[moved.ID] = i
	}
	t.entries[last] = Entry{}
	t.entries = t.entries[:last]
	delete(t.pos, id)
	return int(i)
}
