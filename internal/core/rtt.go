package core

import "time"

// RTT measurement and triangulated latency estimation.
//
// Real RTTs are measured with Ping/Pong datagrams (one measurement per
// maintenance cycle during the replacement sweep, per Section 2.2.3).
// Cheap estimates use the triangular heuristic the paper cites [13]:
// every node measures its RTT to a small set of landmark nodes once;
// membership entries carry the resulting vector; the estimate for a pair
// is the midpoint of the triangle-inequality bounds their vectors imply.

// pingPurpose says why a ping was sent, so the pong resumes the right
// operation.
type pingPurpose uint8

const (
	pingProbeReplace pingPurpose = iota + 1
	pingProbeAddNearby
	pingProbeAddRandom
	pingMeasureLink
	pingLandmark
)

type pingCtx struct {
	target   NodeID
	purpose  pingPurpose
	sentAt   time.Duration
	landmark int // index into landmarks for pingLandmark
}

// SetLandmarks installs the landmark set used for latency estimation.
func (n *Node) SetLandmarks(ls []Entry) {
	n.landmarks = append([]Entry(nil), ls...)
	n.landVec = make([]uint16, len(ls))
	n.selfLmOK = false
	for _, e := range ls {
		n.learnEntry(e)
	}
}

// Landmarks returns the installed landmark set.
func (n *Node) Landmarks() []Entry { return append([]Entry(nil), n.landmarks...) }

// measureLandmarks pings each landmark once to build this node's vector.
func (n *Node) measureLandmarks() {
	for i, lm := range n.landmarks {
		if lm.ID == n.id {
			n.landVec[i] = 1 // RTT to self: local loopback, ~1 ms
			n.selfLmOK = false
			continue
		}
		n.sendPing(lm.ID, pingCtx{target: lm.ID, purpose: pingLandmark, landmark: i})
	}
}

// landmarksReady reports whether enough of the landmark vector has been
// measured to produce estimates (at least half).
func (n *Node) landmarksReady() bool {
	if len(n.landVec) == 0 {
		return false
	}
	got := 0
	for _, v := range n.landVec {
		if v > 0 {
			got++
		}
	}
	return got*2 >= len(n.landVec)
}

// estimateRTT estimates the RTT to a node from landmark vectors using the
// triangular heuristic: for every landmark i, |a_i - b_i| is a lower bound
// and a_i + b_i an upper bound on the pair RTT; the estimate is the
// midpoint of the tightest bounds. Nodes without vectors sort last.
func (n *Node) estimateRTT(e Entry) time.Duration {
	const unknown = time.Hour
	if len(e.Landmarks) == 0 || len(n.landVec) == 0 {
		return unknown
	}
	lower, upper := int64(0), int64(1<<62)
	found := false
	m := len(n.landVec)
	if len(e.Landmarks) < m {
		m = len(e.Landmarks)
	}
	for i := 0; i < m; i++ {
		a, b := int64(n.landVec[i]), int64(e.Landmarks[i])
		if a == 0 || b == 0 {
			continue
		}
		found = true
		lo := a - b
		if lo < 0 {
			lo = -lo
		}
		if lo > lower {
			lower = lo
		}
		if hi := a + b; hi < upper {
			upper = hi
		}
	}
	if !found {
		return unknown
	}
	if upper < lower {
		upper = lower
	}
	return time.Duration((lower+upper)/2) * time.Millisecond
}

// sendPing issues a datagram ping and registers its context.
func (n *Node) sendPing(to NodeID, ctx pingCtx) {
	n.pingNonce++
	ctx.sentAt = n.env.Now()
	n.pings[n.pingNonce] = &ctx
	n.stats.PingsSent++
	n.env.SendDatagram(to, &Ping{From: n.selfEntry(), Nonce: n.pingNonce})
}

// handlePing answers with the node's degrees; pings also spread contact
// information.
func (n *Node) handlePing(from NodeID, m *Ping) {
	if n.staleSender(m.From) {
		return // no pong for a dead past life
	}
	n.learnEntry(m.From)
	n.env.SendDatagram(from, &Pong{From: n.selfEntry(), Nonce: m.Nonce, Degrees: n.degrees()})
}

// handlePong records the measured RTT and resumes the operation that
// triggered the ping.
func (n *Node) handlePong(from NodeID, m *Pong) {
	if n.staleSender(m.From) {
		return
	}
	ctx, ok := n.pings[m.Nonce]
	if !ok || ctx.target != from {
		return
	}
	delete(n.pings, m.Nonce)
	rtt := n.env.Now() - ctx.sentAt
	if rtt <= 0 {
		rtt = time.Millisecond
	}
	n.rtt[from] = rtt
	n.lastPong[from] = n.env.Now()
	n.learnEntry(m.From)
	if nb := n.neighbors[from]; nb != nil {
		nb.deg = m.Degrees
		nb.degKnown = true
		if ctx.purpose == pingMeasureLink || nb.rtt == 0 {
			nb.rtt = rtt
			n.degCacheOK = false
		}
	}
	switch ctx.purpose {
	case pingLandmark:
		if ctx.landmark < len(n.landVec) {
			ms := rtt / time.Millisecond
			if ms < 1 {
				ms = 1
			}
			if ms > 0xffff {
				ms = 0xffff
			}
			n.landVec[ctx.landmark] = uint16(ms)
			n.selfLmOK = false
		}
	case pingProbeReplace:
		n.resumeReplace(m.From, rtt, m.Degrees)
	case pingProbeAddNearby:
		n.resumeAddNearby(m.From, rtt, m.Degrees)
	case pingProbeAddRandom:
		n.resumeAddRandom(m.From, rtt, m.Degrees)
	case pingMeasureLink:
		// RTT already recorded above.
	}
}

// expirePings drops ping contexts that never got a pong, and evicts the
// unresponsive target from the member view (it is likely dead).
func (n *Node) expirePings() {
	now := n.env.Now()
	var expired []uint32
	for nonce, ctx := range n.pings {
		if now-ctx.sentAt > pingTimeout {
			expired = append(expired, nonce)
		}
	}
	// Deterministic processing order: member-view eviction must not depend
	// on map iteration order.
	for i := 1; i < len(expired); i++ {
		for j := i; j > 0 && expired[j] < expired[j-1]; j-- {
			expired[j], expired[j-1] = expired[j-1], expired[j]
		}
	}
	for _, nonce := range expired {
		ctx := n.pings[nonce]
		delete(n.pings, nonce)
		if ctx.purpose == pingLandmark || ctx.purpose == pingMeasureLink {
			continue
		}
		// A ping swallowed by a transient fault (e.g. a partition that has
		// since healed) must not evict a member that answered a later ping.
		if n.lastPong[ctx.target] > ctx.sentAt {
			continue
		}
		if n.neighbors[ctx.target] == nil {
			// Quarantine locally so stale gossip cannot immediately
			// re-teach us the likely-dead entry (not spread: one lost
			// datagram is weak evidence).
			n.recordObit(ctx.target, n.knownInc(ctx.target), false)
		} else {
			n.forgetMember(ctx.target)
		}
	}
}

const pingTimeout = 3 * time.Second
