package core

import (
	"testing"
	"time"
)

// pair builds two started, linked nodes with the given config.
func pair(t *testing.T, cfg Config) (*fixture, *Node, *Node) {
	t.Helper()
	f := newFixture(1)
	a := f.addNode(1, cfg)
	b := f.addNode(2, cfg)
	f.link(1, 2, Nearby)
	a.Start()
	b.Start()
	return f, a, b
}

func isGossipWithIDs(m Message) bool {
	g, ok := m.(*Gossip)
	return ok && len(g.IDs) > 0
}

func TestMulticastDeliversLocallyAndAssignsSequentialIDs(t *testing.T) {
	f := newFixture(1)
	n := f.addNode(1, DefaultConfig())
	var got []MessageID
	n.OnDeliver(func(id MessageID, payload []byte, _ time.Duration) {
		if string(payload) != "x" {
			t.Errorf("payload = %q", payload)
		}
		got = append(got, id)
	})
	n.Start()
	want1 := n.NextMessageID()
	id1 := n.Multicast([]byte("x"))
	id2 := n.Multicast([]byte("x"))
	if id1 != want1 {
		t.Errorf("NextMessageID mismatch: %v vs %v", want1, id1)
	}
	if id1.Source != 1 || id2.Seq != id1.Seq+1 {
		t.Errorf("IDs not sequential: %v %v", id1, id2)
	}
	if len(got) != 2 {
		t.Errorf("local deliveries = %d, want 2", len(got))
	}
	if !n.Seen(id1) || !n.Seen(id2) {
		t.Errorf("Seen must report injected messages")
	}
}

func TestTreeForwardingBetweenNeighbors(t *testing.T) {
	cfg := DefaultConfig()
	f, a, b := pair(t, cfg)
	a.BecomeRoot()
	f.run(2 * time.Second) // let the heartbeat establish parenthood
	if b.Parent() != a.ID() {
		t.Fatalf("b's parent = %d, want root %d", b.Parent(), a.ID())
	}
	delivered := false
	b.OnDeliver(func(_ MessageID, payload []byte, _ time.Duration) {
		delivered = string(payload) == "tree"
	})
	a.Multicast([]byte("tree"))
	f.run(time.Second)
	if !delivered {
		t.Fatalf("payload did not traverse the tree link")
	}
	if a.Stats().TreeForwards == 0 {
		t.Fatalf("tree forward counter not incremented")
	}
}

func TestGossipNeverAnnouncesBackToSource(t *testing.T) {
	cfg := DefaultConfig()
	f, a, b := pair(t, cfg)
	a.BecomeRoot()
	f.run(2 * time.Second)
	a.Multicast(nil)
	f.run(5 * time.Second) // many gossip periods
	id := MessageID{Source: a.ID(), Seq: 0}
	// b received the payload from a via the tree; b's gossips to a must
	// exclude the ID ("excludes the IDs of messages that X heard from Y").
	for _, s := range f.sent {
		if s.from != b.ID() || s.to != a.ID() {
			continue
		}
		if g, ok := s.msg.(*Gossip); ok {
			for _, gid := range g.IDs {
				if gid.ID == id {
					t.Fatalf("b announced message back to the node it heard it from")
				}
			}
		}
	}
}

func TestGossipAnnouncesAtMostOncePerNeighbor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableTree = false // force gossip-only so announcements happen
	f := newFixture(1)
	a := f.addNode(1, cfg)
	b := f.addNode(2, cfg)
	c := f.addNode(3, cfg)
	f.link(1, 2, Nearby)
	f.link(1, 3, Nearby)
	a.Start()
	b.Start()
	c.Start()
	a.Multicast(nil)
	f.run(10 * time.Second)
	if got := f.count(1, 2, isGossipWithIDs); got > 1 {
		t.Fatalf("a announced the message to b %d times, want <= 1", got)
	}
	if got := f.count(1, 3, isGossipWithIDs); got > 1 {
		t.Fatalf("a announced the message to c %d times, want <= 1", got)
	}
}

func TestGossipTriggersPull(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableTree = false
	cfg.SyncInterval = -1 // pin the pull path; sync would also recover it
	f, a, b := pair(t, cfg)
	var got []byte
	b.OnDeliver(func(_ MessageID, payload []byte, _ time.Duration) { got = payload })
	a.Multicast([]byte("pulled"))
	f.run(5 * time.Second)
	if string(got) != "pulled" {
		t.Fatalf("b did not pull the message; got %q", got)
	}
	if b.Stats().PullsSent == 0 || a.Stats().PullsServed == 0 {
		t.Fatalf("pull counters: sent=%d served=%d", b.Stats().PullsSent, a.Stats().PullsServed)
	}
}

func TestPullDelayDefersRequests(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableTree = false
	cfg.SyncInterval = -1 // pin the pull path; sync would deliver early
	cfg.PullDelay = 2 * time.Second
	f, a, b := pair(t, cfg)
	var deliveredAt time.Duration = -1
	b.OnDeliver(func(MessageID, []byte, time.Duration) { deliveredAt = f.eng.Now() })
	start := f.eng.Now()
	a.Multicast(nil)
	f.run(10 * time.Second)
	if deliveredAt < 0 {
		t.Fatalf("message never delivered")
	}
	if deliveredAt-start < cfg.PullDelay {
		t.Fatalf("pull fired at %v since injection, want >= %v (f-delay)", deliveredAt-start, cfg.PullDelay)
	}
}

func TestPullDelaySkippedForOldMessages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PullDelay = 300 * time.Millisecond
	f := newFixture(1)
	b := f.addNode(2, cfg)
	b.AddNeighborDirect(Entry{ID: 1}, Nearby, 20*time.Millisecond)
	b.Start()
	// A gossip announcing a message already older than f must pull at once.
	b.HandleMessage(1, &Gossip{IDs: []GossipID{{ID: MessageID{Source: 9, Seq: 0}, Age: time.Second}}})
	if b.Stats().PullsSent != 1 {
		t.Fatalf("pulls sent = %d, want immediate pull for old message", b.Stats().PullsSent)
	}
}

func TestDuplicatePayloadSuppressed(t *testing.T) {
	cfg := DefaultConfig()
	f, _, b := pair(t, cfg)
	deliveries := 0
	b.OnDeliver(func(MessageID, []byte, time.Duration) { deliveries++ })
	id := MessageID{Source: 7, Seq: 0}
	b.HandleMessage(1, &Multicast{ID: id, Payload: nil, ViaTree: true})
	b.HandleMessage(1, &Multicast{ID: id, Payload: nil, ViaTree: false})
	f.run(time.Second)
	if deliveries != 1 {
		t.Fatalf("deliveries = %d, want exactly 1", deliveries)
	}
	if b.Stats().Duplicates != 1 {
		t.Fatalf("duplicates = %d, want 1", b.Stats().Duplicates)
	}
}

func TestPullRetryMovesToNextHolder(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableTree = false
	cfg.SyncInterval = -1 // pin the retry path; sync would also recover it
	cfg.PullRetry = 500 * time.Millisecond
	f := newFixture(1)
	a := f.addNode(1, cfg) // will die
	b := f.addNode(2, cfg)
	c := f.addNode(3, cfg) // second holder
	f.link(1, 2, Nearby)
	f.link(2, 3, Nearby)
	a.Start()
	b.Start()
	c.Start()
	id := MessageID{Source: 9, Seq: 0}
	// Both a and c hold the message; b hears from a first, then c.
	c.HandleMessage(9, &Multicast{ID: id, Payload: []byte("v")})
	var got []byte
	b.OnDeliver(func(_ MessageID, p []byte, _ time.Duration) { got = p })
	f.down[1] = true // a cannot serve
	b.HandleMessage(1, &Gossip{IDs: []GossipID{{ID: id}}})
	b.HandleMessage(3, &Gossip{IDs: []GossipID{{ID: id}}})
	f.run(5 * time.Second)
	if string(got) != "v" {
		t.Fatalf("retry did not fetch from the second holder; got %q", got)
	}
	if b.Stats().PullRetries == 0 {
		t.Fatalf("expected at least one pull retry")
	}
}

func TestReclaimFreesPayloadButKeepsDedup(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ReclaimAfter = 20 * time.Second
	f, a, b := pair(t, cfg)
	a.BecomeRoot()
	f.run(2 * time.Second)
	id := a.Multicast([]byte("data"))
	f.run(30 * time.Second) // past announce + reclaim window + scan period
	st := a.seen[pid(id)]
	if st == nil {
		t.Fatalf("dedup record dropped too early")
	}
	if _, live := a.Store().Get(sid(id)); live {
		t.Fatalf("payload not reclaimed after window")
	}
	if !a.Store().Has(sid(id)) {
		t.Fatalf("tombstone dropped too early")
	}
	// A pull for a reclaimed message is not served; the puller gets an
	// explicit miss instead of silence.
	served := a.Stats().PullsServed
	a.HandleMessage(b.ID(), &PullRequest{IDs: []MessageID{id}})
	if a.Stats().PullsServed != served {
		t.Fatalf("reclaimed message must not be served")
	}
	if a.Stats().PullMissesSent != 1 {
		t.Fatalf("pull miss not sent; counters = %+v", a.Stats())
	}
	// Far later even the dedup record goes away.
	f.run(time.Minute)
	if a.seen[pid(id)] != nil {
		t.Fatalf("dedup record should eventually be dropped")
	}
}

func TestAgeAccumulatesAcrossHops(t *testing.T) {
	cfg := DefaultConfig()
	// Effectively freeze overlay adaptation so the chain a-b-c stays two
	// hops (heartbeats still run, so the tree forms along the chain).
	cfg.MaintainPeriod = time.Hour
	f := newFixture(1)
	f.lat = func(a, b NodeID) time.Duration { return 100 * time.Millisecond }
	a := f.addNode(1, cfg)
	b := f.addNode(2, cfg)
	c := f.addNode(3, cfg)
	f.link(1, 2, Nearby)
	f.link(2, 3, Nearby)
	a.Start()
	b.Start()
	c.Start()
	a.BecomeRoot()
	f.run(3 * time.Second)
	var age time.Duration = -1
	c.OnDeliver(func(_ MessageID, _ []byte, a time.Duration) { age = a })
	a.Multicast(nil)
	f.run(2 * time.Second)
	if age < 200*time.Millisecond {
		t.Fatalf("age at two hops = %v, want >= 200ms", age)
	}
}

func TestGossipCarriesMembershipSample(t *testing.T) {
	cfg := DefaultConfig()
	f, a, b := pair(t, cfg)
	for i := NodeID(10); i < 20; i++ {
		a.learnEntry(Entry{ID: i})
	}
	// Check before the 3s ping timeout: the seeded IDs have no backing sim
	// node, so after that the churn hygiene correctly quarantines them as
	// dead and the views shrink back down.
	f.run(2 * time.Second)
	// b should have learned about some of a's members via gossip.
	if b.MemberCount() < 2 {
		t.Fatalf("b learned %d members, want >= 2", b.MemberCount())
	}
	f.run(3 * time.Second)
}

func TestStopSilencesNode(t *testing.T) {
	cfg := DefaultConfig()
	f, a, b := pair(t, cfg)
	f.run(time.Second)
	b.Stop()
	before := len(f.sent)
	deliveries := 0
	b.OnDeliver(func(MessageID, []byte, time.Duration) { deliveries++ })
	b.HandleMessage(1, &Multicast{ID: MessageID{Source: 1, Seq: 99}})
	f.run(5 * time.Second)
	if deliveries != 0 {
		t.Fatalf("stopped node delivered a message")
	}
	for _, s := range f.sent[before:] {
		if s.from == b.ID() {
			t.Fatalf("stopped node sent %T", s.msg)
		}
	}
	_ = a
}
