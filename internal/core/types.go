// Package core implements the GoCast protocol (Tang, Chang, Ward — DSN
// 2005): a proximity-aware, degree-constrained overlay; an efficient
// latency-based multicast tree embedded in the overlay; and gossip-enhanced
// dissemination in which multicast messages propagate unconditionally along
// tree links while message-ID summaries are gossiped between overlay
// neighbors so that nodes can pull messages lost to tree disruptions.
//
// A Node is a single-threaded state machine driven entirely through the Env
// interface: the discrete-event simulator (internal/netsim) and the
// real-time runtime (internal/live) both drive the same code.
package core

import (
	"fmt"
	"time"
)

// NodeID identifies a node. IDs are assigned by the deployment (the
// simulator uses dense indexes; the live runtime assigns them at join).
type NodeID int32

// None is the absent-node sentinel (e.g. "no parent").
const None NodeID = -1

// Entry is a partial-membership record: enough information to contact a
// node and to estimate its network distance without measuring it.
type Entry struct {
	ID NodeID
	// Inc is the node's incarnation number, bumped every time the node
	// restarts under the same ID. Entries with a higher incarnation always
	// supersede lower ones; messages and links carrying a lower incarnation
	// than the best known one belong to a dead past life and are rejected.
	Inc uint32
	// Addr is the node's transport address; unused in simulation.
	Addr string
	// Landmarks holds the node's measured RTTs to the system landmarks in
	// milliseconds, used for triangulated latency estimation. May be empty
	// if the node has not yet measured them.
	Landmarks []uint16
}

// MessageID uniquely identifies a multicast message: the injecting node's
// ID plus a sequence number local to that node.
type MessageID struct {
	Source NodeID
	Seq    uint32
}

func (m MessageID) String() string { return fmt.Sprintf("%d/%d", m.Source, m.Seq) }

// LinkKind distinguishes the two classes of overlay links.
type LinkKind uint8

const (
	// Random links connect randomly chosen neighbors; they provide the
	// long-range connectivity that keeps remote clusters attached.
	Random LinkKind = iota + 1
	// Nearby links are chosen by network proximity; they carry most
	// traffic and keep latency low.
	Nearby
)

func (k LinkKind) String() string {
	switch k {
	case Random:
		return "random"
	case Nearby:
		return "nearby"
	default:
		return fmt.Sprintf("LinkKind(%d)", uint8(k))
	}
}

// TimerCanceller cancels scheduled callbacks by handle. Substrates
// implement it once (e.g. *sim.Engine satisfies it directly), so a Timer
// is two words and creating one allocates nothing.
type TimerCanceller interface {
	// CancelTimer cancels the callback identified by id, reporting whether
	// it prevented the callback from running.
	CancelTimer(id uint64) bool
}

// Timer is a cancellable scheduled callback provided by the Env. It is a
// small value — copy it freely. The zero Timer is inert: Stop reports
// false, so owners need no nil checks.
type Timer struct {
	c  TimerCanceller
	id uint64
}

// MakeTimer binds a substrate canceller and its handle into a Timer.
func MakeTimer(c TimerCanceller, id uint64) Timer { return Timer{c: c, id: id} }

// Stop cancels the timer, reporting whether it prevented the callback.
func (t Timer) Stop() bool {
	if t.c == nil {
		return false
	}
	return t.c.CancelTimer(t.id)
}

// Env is the substrate a Node runs on. Implementations must deliver all
// callbacks (message handling, timer callbacks) on a single logical thread
// per node; Node performs no internal locking.
type Env interface {
	// Now returns the current time on this substrate's clock.
	Now() time.Duration
	// Send delivers m to the given node over the reliable channel
	// (pre-established TCP connections between overlay neighbors in the
	// paper). Sends to unreachable nodes are dropped; the substrate may
	// later surface the breakage via Node.PeerDown.
	Send(to NodeID, m Message)
	// SendDatagram delivers m best-effort (UDP in the paper), used for
	// communication between non-neighbors such as RTT probes.
	SendDatagram(to NodeID, m Message)
	// After schedules fn to run after d on this node's event loop.
	After(d time.Duration, fn func()) Timer
	// Rand returns a uniform random value in [0, n). Substrates seed this
	// deterministically in simulation.
	Rand(n int) int
	// Learn tells the substrate about another node's contact information
	// (needed by live transports to resolve NodeIDs to addresses).
	Learn(e Entry)
}

// MessagePool is an optional Env capability: substrates that recycle the
// high-volume wire structs (the simulator releases a message back to its
// pool once HandleMessage returns) implement it so the dissemination hot
// path allocates no message structs in steady state. Pooled structs come
// back with their slice fields truncated to zero length but with capacity
// retained; the node appends into them. Envs without the capability fall
// back to plain allocation.
type MessagePool interface {
	GetGossip() *Gossip
	GetMulticast() *Multicast
	GetPullRequest() *PullRequest
}
