package core

import (
	"math/rand"
	"testing"
	"time"
)

func TestJoinBootstrapsMembershipAndLandmarks(t *testing.T) {
	cfg := DefaultConfig()
	f := newFixture(1)
	seed := f.addNode(1, cfg)
	joiner := f.addNode(2, cfg)
	for i := NodeID(10); i < 30; i++ {
		seed.learnEntry(Entry{ID: i})
	}
	seed.SetLandmarks([]Entry{{ID: 1}})
	seed.Start()
	joiner.Start()
	joiner.Join(Entry{ID: 1})
	f.run(2 * time.Second)
	if joiner.MemberCount() < 10 {
		t.Fatalf("joiner learned %d members, want a good share of the seed's view", joiner.MemberCount())
	}
	if len(joiner.Landmarks()) != 1 {
		t.Fatalf("joiner landmarks = %d, want 1 (from JoinReply)", len(joiner.Landmarks()))
	}
	if joiner.Root() != 1 && joiner.Root() != None {
		t.Fatalf("joiner root = %d", joiner.Root())
	}
}

func TestJoinerAcquiresNeighborsViaMaintenance(t *testing.T) {
	cfg := DefaultConfig()
	f := newFixture(2)
	var ids []NodeID
	for i := NodeID(1); i <= 8; i++ {
		ids = append(ids, i)
		f.addNode(i, cfg)
	}
	// Ring among 1..7; node 8 joins via 1.
	for i := 0; i < 7; i++ {
		f.link(ids[i], ids[(i+1)%7], Nearby)
	}
	for _, id := range ids[:7] {
		for _, other := range ids[:7] {
			if other != id {
				f.nodes[id].learnEntry(Entry{ID: other})
			}
		}
	}
	for _, id := range ids {
		f.nodes[id].Start()
	}
	f.nodes[8].Join(Entry{ID: 1})
	f.run(60 * time.Second)
	if d := f.nodes[8].Degree(); d < cfg.CRand+1 {
		t.Fatalf("joiner degree = %d after maintenance, want >= %d", d, cfg.CRand+1)
	}
}

func TestStartIsIdempotent(t *testing.T) {
	f := newFixture(1)
	n := f.addNode(1, DefaultConfig())
	n.Start()
	n.Start() // second start must not double timers
	f.run(time.Second)
	gossips := n.Stats().GossipsSent
	_ = gossips // no neighbors: zero gossips, but no panic/duplication either
	if n.Stats().GossipsSent != 0 {
		t.Fatalf("gossips without neighbors = %d", n.Stats().GossipsSent)
	}
}

func TestCountersTrackActivity(t *testing.T) {
	cfg := DefaultConfig()
	f, a, b := pair(t, cfg)
	a.BecomeRoot()
	f.run(5 * time.Second)
	a.Multicast([]byte("x"))
	f.run(3 * time.Second)
	as, bs := a.Stats(), b.Stats()
	if as.Injected != 1 {
		t.Errorf("injected = %d", as.Injected)
	}
	if as.Delivered != 1 || bs.Delivered != 1 {
		t.Errorf("delivered = %d, %d", as.Delivered, bs.Delivered)
	}
	if bs.PayloadsRecv != 1 {
		t.Errorf("payloads received at b = %d", bs.PayloadsRecv)
	}
	if as.GossipsSent == 0 || bs.GossipsRecv == 0 {
		t.Errorf("gossip counters silent: %d sent, %d recv", as.GossipsSent, bs.GossipsRecv)
	}
	if as.TreeAdverts == 0 {
		t.Errorf("tree adverts = 0 on the root")
	}
	// With only each other in their member views there is nobody to
	// probe, so no pings — maintenance wastes no traffic.
	if as.PingsSent != 0 {
		t.Errorf("pings sent with no probe candidates: %d", as.PingsSent)
	}
}

func TestGossipRoundRobinCoversAllNeighbors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableTree = false
	f := newFixture(3)
	hub := f.addNode(1, cfg)
	for i := NodeID(2); i <= 6; i++ {
		f.addNode(i, cfg)
		f.link(1, i, Nearby)
	}
	hub.Start()
	f.run(3 * time.Second)
	// Over 3 s at t=0.1 s the hub sends ~30 gossips round-robin across 5
	// neighbors: each must have received several and the counts must be
	// balanced within one.
	counts := map[NodeID]int{}
	for _, s := range f.sent {
		if s.from == 1 {
			if _, ok := s.msg.(*Gossip); ok {
				counts[s.to]++
			}
		}
	}
	if len(counts) != 5 {
		t.Fatalf("gossips reached %d neighbors, want 5", len(counts))
	}
	min, max := 1<<30, 0
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 1 {
		t.Fatalf("round robin unbalanced: %v", counts)
	}
}

func TestSelfEntryCarriesLandmarkVector(t *testing.T) {
	f := newFixture(1)
	a := f.addNode(1, DefaultConfig())
	b := f.addNode(2, DefaultConfig())
	a.SetLandmarks([]Entry{{ID: 2}})
	a.Start()
	b.Start()
	f.run(2 * time.Second) // landmark ping measured
	e := a.selfEntry()
	if len(e.Landmarks) != 1 || e.Landmarks[0] == 0 {
		t.Fatalf("self entry landmark vector = %v, want measured", e.Landmarks)
	}
}

// Randomized protocol soak: a small cluster under random message, link,
// and failure events must preserve the core invariants — degree caps,
// exactly-once delivery, and no self-links.
func TestRandomizedProtocolInvariants(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(time.Duration(seed).String(), func(t *testing.T) {
			cfg := DefaultConfig()
			f := newFixture(seed)
			rng := rand.New(rand.NewSource(seed))
			f.lat = func(a, b NodeID) time.Duration {
				return time.Duration(5+((int(a)*7+int(b)*13)%90)) * time.Millisecond
			}
			const n = 12
			delivered := map[NodeID]map[MessageID]int{}
			for i := NodeID(1); i <= n; i++ {
				i := i
				node := f.addNode(i, cfg)
				delivered[i] = map[MessageID]int{}
				node.OnDeliver(func(id MessageID, _ []byte, _ time.Duration) {
					delivered[i][id]++
				})
			}
			for i := NodeID(1); i <= n; i++ {
				f.link(i, i%n+1, Random) // ring
				for j := NodeID(1); j <= n; j++ {
					if i != j {
						f.nodes[i].learnEntry(Entry{ID: j})
					}
				}
			}
			for i := NodeID(1); i <= n; i++ {
				f.nodes[i].Start()
			}
			f.nodes[1].BecomeRoot()

			for step := 0; step < 60; step++ {
				f.run(time.Second)
				switch rng.Intn(4) {
				case 0, 1:
					src := NodeID(1 + rng.Intn(n))
					if !f.down[src] {
						f.nodes[src].Multicast(nil)
					}
				case 2:
					victim := NodeID(2 + rng.Intn(n-1))
					if !f.down[victim] && countDown(f) < n/4 {
						f.down[victim] = true
						f.nodes[victim].Stop()
					}
				case 3:
					// no-op step: let maintenance churn
				}
				// Invariants hold at every step for live nodes.
				for i := NodeID(1); i <= n; i++ {
					if f.down[i] {
						continue
					}
					node := f.nodes[i]
					if d := node.RandDegree(); d > cfg.CRand+cfg.DegreeSlack {
						t.Fatalf("step %d: node %d random degree %d over cap", step, i, d)
					}
					if d := node.NearDegree(); d > cfg.CNear+cfg.DegreeSlack {
						t.Fatalf("step %d: node %d nearby degree %d over cap", step, i, d)
					}
					for _, nb := range node.Neighbors() {
						if nb.ID == i {
							t.Fatalf("node %d linked to itself", i)
						}
					}
				}
			}
			f.run(30 * time.Second)
			for i := NodeID(1); i <= n; i++ {
				if f.down[i] {
					continue
				}
				for id, count := range delivered[i] {
					if count != 1 {
						t.Fatalf("node %d delivered %s %d times", i, id, count)
					}
				}
			}
		})
	}
}

func countDown(f *fixture) int {
	c := 0
	for _, v := range f.down {
		if v {
			c++
		}
	}
	return c
}
