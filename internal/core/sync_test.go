package core

import (
	"testing"
	"time"

	"gocast/internal/store"
)

func isSyncRequest(m Message) bool { _, ok := m.(*SyncRequest); return ok }
func isSyncReply(m Message) bool   { _, ok := m.(*SyncReply); return ok }

// quietConfig returns a config with gossip and tree effectively frozen so
// only the sync protocol can move payloads between nodes.
func quietConfig() Config {
	cfg := DefaultConfig()
	cfg.EnableTree = false
	cfg.GossipPeriod = time.Hour
	cfg.MaintainPeriod = time.Hour
	return cfg
}

func TestSyncRecoversBacklogForEmptyRequester(t *testing.T) {
	cfg := quietConfig()
	f := newFixture(21)
	a := f.addNode(1, cfg)
	b := f.addNode(2, cfg)
	// Deliberately unlinked: sync must work between any reachable pair
	// (the rejoin trigger targets the join contact, not a neighbor).
	a.Start()
	b.Start()
	for i := 0; i < 5; i++ {
		a.Multicast([]byte("backlog"))
	}
	got := 0
	b.OnDeliver(func(MessageID, []byte, time.Duration) { got++ })
	// b opens a sync round with an (empty-store) digest.
	b.requestSync(1, true)
	f.run(time.Second)
	if got != 5 {
		t.Fatalf("recovered %d messages via sync, want 5", got)
	}
	if a.Stats().SyncItemsSent != 5 || b.Stats().SyncItemsRecv != 5 {
		t.Fatalf("sync item counters: sent=%d recv=%d", a.Stats().SyncItemsSent, b.Stats().SyncItemsRecv)
	}
	if b.Stats().PullsSent != 0 {
		t.Fatalf("recovery used pulls, not sync")
	}
}

func TestSyncReplyRespectsByteBudgetAndPaces(t *testing.T) {
	cfg := quietConfig()
	cfg.SyncBatchBytes = 1024 // each reply carries at most ~1 KiB of payload
	f := newFixture(22)
	a := f.addNode(1, cfg)
	b := f.addNode(2, cfg)
	f.link(1, 2, Nearby)
	a.Start()
	b.Start()
	payload := make([]byte, 400)
	for i := 0; i < 10; i++ {
		a.Multicast(payload)
	}
	got := 0
	b.OnDeliver(func(MessageID, []byte, time.Duration) { got++ })
	b.requestSync(1, true)
	f.run(5 * time.Second)
	if got != 10 {
		t.Fatalf("recovered %d messages, want 10", got)
	}
	// 10 * 400 B at <= 1024 B per reply (plus the guaranteed first item)
	// needs at least 4 reply batches, so the More loop must have run.
	if n := f.count(1, 2, isSyncReply); n < 4 {
		t.Fatalf("reply batches = %d, want >= 4 (budget not respected)", n)
	}
	if n := f.count(2, 1, isSyncRequest); n < 4 {
		t.Fatalf("sync requests = %d, want >= 4 (More loop did not pace)", n)
	}
	for _, s := range f.sent {
		r, ok := s.msg.(*SyncReply)
		if !ok {
			continue
		}
		bytes := 0
		for _, it := range r.Items {
			bytes += len(it.Payload)
		}
		if bytes > cfg.SyncBatchBytes+len(payload) {
			t.Fatalf("reply carried %d payload bytes, budget %d", bytes, cfg.SyncBatchBytes)
		}
	}
}

func TestSyncSkipsReclaimedBelowRemoteLowWatermark(t *testing.T) {
	cfg := quietConfig()
	f := newFixture(23)
	a := f.addNode(1, cfg)
	b := f.addNode(2, cfg)
	// Unlinked, so the link-add heal round cannot reconcile them first.
	a.Start()
	b.Start()
	for i := 0; i < 4; i++ {
		a.Multicast([]byte("x"))
	}
	// b already holds seq 0..1 and has deliberately reclaimed nothing; its
	// digest says [0,1], so only 2..3 must flow.
	for seq := uint32(0); seq < 2; seq++ {
		id := MessageID{Source: 1, Seq: seq}
		payload, _ := a.Store().Get(sid(id))
		b.HandleMessage(1, &Multicast{ID: id, Payload: payload})
	}
	f.run(time.Second)
	recvBefore := b.Stats().SyncItemsRecv
	b.requestSync(1, true)
	f.run(time.Second)
	if got := b.Stats().SyncItemsRecv - recvBefore; got != 2 {
		t.Fatalf("sync transferred %d items, want exactly the 2 missing", got)
	}
}

func TestPullMissAdvancesToNextHolderImmediately(t *testing.T) {
	cfg := quietConfig()
	cfg.SyncInterval = -1     // pin the pull-miss path; sync would also recover it
	cfg.PullRetry = time.Hour // retries must not be what saves us
	f := newFixture(24)
	b := f.addNode(2, cfg)
	c := f.addNode(3, cfg)
	b.AddNeighborDirect(Entry{ID: 1}, Nearby, 20*time.Millisecond)
	f.link(2, 3, Nearby)
	b.Start()
	c.Start()
	id := MessageID{Source: 9, Seq: 0}
	c.HandleMessage(9, &Multicast{ID: id, Payload: []byte("v")})
	var got []byte
	b.OnDeliver(func(_ MessageID, p []byte, _ time.Duration) { got = p })
	// b learns the ID from node 1 (which no longer holds it) and from c.
	b.HandleMessage(1, &Gossip{IDs: []GossipID{{ID: id}}})
	b.HandleMessage(3, &Gossip{IDs: []GossipID{{ID: id}}})
	f.run(100 * time.Millisecond)
	// Node 1 reports the payload gone; b must move to c at once.
	b.HandleMessage(1, &PullMiss{IDs: []MessageID{id}})
	f.run(time.Second)
	if string(got) != "v" {
		t.Fatalf("pull miss did not advance to the next holder; got %q", got)
	}
	if b.Stats().PullMissesRecv != 1 {
		t.Fatalf("PullMissesRecv = %d, want 1", b.Stats().PullMissesRecv)
	}
	if b.Stats().PullRetries != 0 {
		t.Fatalf("delivery needed %d timer retries; miss handling failed", b.Stats().PullRetries)
	}
}

func TestPullMissWithNoHoldersFallsBackToSync(t *testing.T) {
	cfg := quietConfig()
	cfg.PullRetry = time.Hour
	f := newFixture(25)
	b := f.addNode(2, cfg)
	b.Start()
	id := MessageID{Source: 9, Seq: 0}
	// b learns the ID from its only known holder, which then reports the
	// payload reclaimed: no holder remains, so b must open a digest sync
	// with the reporting peer instead of stalling forever.
	b.AddNeighborDirect(Entry{ID: 5}, Nearby, 20*time.Millisecond)
	b.HandleMessage(5, &Gossip{IDs: []GossipID{{ID: id}}})
	f.run(100 * time.Millisecond)
	reqBefore := f.count(2, 5, isSyncRequest)
	b.HandleMessage(5, &PullMiss{IDs: []MessageID{id}})
	f.run(time.Second)
	if f.count(2, 5, isSyncRequest) != reqBefore+1 {
		t.Fatalf("expired pull did not fall back to sync")
	}
	if _, stillPending := b.pending[pid(id)]; stillPending {
		t.Fatalf("pull state not cleared after final miss")
	}
}

func TestSyncDisabledSendsNothing(t *testing.T) {
	cfg := quietConfig()
	cfg.SyncInterval = -1
	f := newFixture(26)
	a := f.addNode(1, cfg)
	b := f.addNode(2, cfg)
	f.link(1, 2, Nearby)
	a.Start()
	b.Start()
	a.Multicast([]byte("x"))
	b.requestSync(1, true)
	b.requestSync(1, false)
	f.run(2 * time.Minute)
	if n := f.count(2, 1, isSyncRequest); n != 0 {
		t.Fatalf("disabled sync still sent %d requests", n)
	}
}

func TestPeriodicSyncReconcilesNeighbors(t *testing.T) {
	cfg := quietConfig()
	cfg.SyncInterval = 10 * time.Second
	f := newFixture(27)
	a := f.addNode(1, cfg)
	b := f.addNode(2, cfg)
	a.Start()
	b.Start()
	// The message lands at a before any link to b exists; freezing gossip
	// means only the periodic sync round can reconcile after linking.
	a.Multicast([]byte("periodic"))
	var got []byte
	b.OnDeliver(func(_ MessageID, p []byte, _ time.Duration) { got = p })
	f.link(1, 2, Nearby)
	// The link-add heal round and the periodic round both qualify; either
	// way the payload must arrive within a couple of intervals.
	f.run(3 * cfg.SyncInterval)
	if string(got) != "periodic" {
		t.Fatalf("periodic sync never reconciled the pair")
	}
}

func TestCountingStoreSwapsInViaConfig(t *testing.T) {
	cfg := quietConfig()
	var counting *store.Counting
	cfg.NewStore = func(l store.Limits) store.MessageStore {
		counting = store.NewCounting(store.NewMemory(l))
		return counting
	}
	f := newFixture(28)
	a := f.addNode(1, cfg)
	a.Start()
	a.Multicast([]byte("x"))
	if counting == nil {
		t.Fatalf("NewStore hook never invoked")
	}
	if counting.Calls("Put") != 1 {
		t.Fatalf("Put calls = %d, want 1 (dissemination not routed through the store)", counting.Calls("Put"))
	}
	a.HandleMessage(2, &PullRequest{IDs: []MessageID{{Source: 1, Seq: 0}}})
	if counting.Calls("Get") == 0 {
		t.Fatalf("pull serving bypassed the store interface")
	}
}
